package pipeline

import "repro/internal/core"

// Result is the merged outcome of one pipeline run. Stats counters equal
// the sequential tracker's exactly; the watermarks are the largest any
// shard reached (identical to sequential whenever taint lives in one
// process at a time). Verdicts are in canonical (PID, Seq, Tag) order —
// sort a sequential tracker's verdicts with core.SortVerdicts to compare
// the two byte for byte.
type Result struct {
	Stats    core.Stats
	Verdicts []core.SinkVerdict
	Events   uint64 // events dispatched, all shards
	Workers  int
	// Err is the first worker failure (a recovered panic), nil on a
	// clean run. A failed worker discards its remaining batches, so the
	// merged Stats and Verdicts are partial when Err is non-nil.
	Err error
}

// Detected reports whether any sink verdict found taint — the accuracy
// predicate the DroidBench suite scores.
func (r Result) Detected() bool {
	for _, v := range r.Verdicts {
		if v.Tainted {
			return true
		}
	}
	return false
}
