package pipeline

import "repro/internal/core"

// Result is the merged outcome of one pipeline run. Stats counters equal
// the sequential tracker's exactly; the watermarks are the largest any
// shard reached (identical to sequential whenever taint lives in one
// process at a time). Verdicts are in canonical (PID, Seq, Tag) order —
// sort a sequential tracker's verdicts with core.SortVerdicts to compare
// the two byte for byte.
type Result struct {
	Stats    core.Stats
	Verdicts []core.SinkVerdict
	Events   uint64 // events dispatched, all shards, including pre-restore history
	Workers  int
	// Faults lists every shard that recovered at least one panic, in
	// worker-index order. A shard may appear here with Failed=false — it
	// restarted within budget and completed the rest of its stream — in
	// which case only the skipped poisonous events are missing from the
	// merge.
	Faults []ShardFault
	// Degraded reports that at least one shard exhausted its restart
	// budget: the run completed on the surviving shards and the merged
	// Stats and Verdicts exclude whatever the failed shards discarded
	// (itemized per shard in Faults).
	Degraded bool
	// Err is the first failed shard's fault (a recovered panic), nil when
	// every shard completed — including shards that restarted within
	// budget, whose faults are reported only in Faults.
	Err error
}

// ShardFault is one shard's fault report: how often it restarted, whether
// it ultimately failed, and how much of its stream was discarded.
type ShardFault struct {
	Worker         int
	Restarts       int    // panics recovered by skip-and-resume
	Failed         bool   // restart budget exhausted; shard abandoned
	DroppedEvents  uint64 // skipped poisonous events + everything discarded after failure
	DroppedBatches uint64 // whole batches discarded after failure
	Err            error  // first recovered panic
}

// Detected reports whether any sink verdict found taint — the accuracy
// predicate the DroidBench suite scores.
func (r Result) Detected() bool {
	for _, v := range r.Verdicts {
		if v.Tainted {
			return true
		}
	}
	return false
}
