package pipeline

import (
	"fmt"

	"repro/internal/core"
)

// Session-embeddable construction: a pipeline seeded from live trackers
// instead of a checkpoint file. The serving layer splits a tenant's
// sequential tracker by PID (core.Tracker.SplitByPID with ShardOf as the
// shard function), seeds a pipeline with the shards at the session's
// acked offset, drains the remainder of the stream through DrainTrace or
// Drain, and merges the shards back (core.MergeTrackers) at commit
// points it owns — checkpointing stays external, the pipeline only
// promises quiescence at the boundaries the caller already gets from
// Sync, OnCheckpoint, and Close.

// NewSeeded builds a pipeline whose shard i analyzes with trackers[i],
// resuming the stream position at offset — the in-memory analogue of
// Restore. The tracker slice determines the worker count; as with
// Restore, conflicting opts are an error rather than silently ignored,
// and NewStore must be nil because the seeds carry their own stores.
// The caller must have partitioned state with the same shard function
// the pipeline routes with (ShardOf at len(trackers) workers), or shards
// will see events for PIDs whose state lives elsewhere.
func NewSeeded(opts Options, trackers []*core.Tracker, offset uint64) (*Pipeline, error) {
	if len(trackers) == 0 {
		return nil, fmt.Errorf("pipeline: seeded with zero trackers")
	}
	if opts.NewStore != nil {
		return nil, fmt.Errorf("pipeline: seeded trackers carry their own stores (NewStore must be nil)")
	}
	if opts.Workers > 0 && opts.Workers != len(trackers) {
		return nil, fmt.Errorf("pipeline: %d seed trackers, options demand %d workers", len(trackers), opts.Workers)
	}
	cfg := trackers[0].Config()
	for i, tr := range trackers {
		if tr.Config() != cfg {
			return nil, fmt.Errorf("pipeline: seed tracker %d config %v differs from tracker 0's %v", i, tr.Config(), cfg)
		}
	}
	if opts.Config != (core.Config{}) && opts.Config != cfg {
		return nil, fmt.Errorf("pipeline: seed config %v, options demand %v", cfg, opts.Config)
	}
	opts.Workers = len(trackers)
	opts.Config = cfg
	opts = opts.withDefaults()
	p := newShell(opts)
	for i, tr := range trackers {
		p.start(i, tr)
	}
	p.events = offset
	return p, nil
}

// ShardTrackers exposes the per-shard trackers for an external merge.
// Only valid while the pipeline is quiescent — inside an OnCheckpoint
// hook after calling Sync, after a caller's own Sync, or after Close —
// otherwise worker goroutines are still mutating them.
func (p *Pipeline) ShardTrackers() []*core.Tracker {
	trs := make([]*core.Tracker, len(p.workers))
	for i, w := range p.workers {
		trs[i] = w.tr
	}
	return trs
}
