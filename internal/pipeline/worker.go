package pipeline

import (
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
)

// worker owns one shard: a bounded batch queue feeding a private tracker.
// All tracker state is confined to the worker goroutine between New and
// the done signal, so no locking is needed anywhere in the hot path.
type worker struct {
	idx  int
	ch   chan []cpu.Event
	tr   *core.Tracker
	done chan struct{}
}

func newWorker(idx int, tr *core.Tracker, queueDepth int) *worker {
	return &worker{
		idx:  idx,
		ch:   make(chan []cpu.Event, queueDepth),
		tr:   tr,
		done: make(chan struct{}),
	}
}

// run drains batches until the dispatcher closes the channel, returning
// spent batch slices to the shared pool.
func (w *worker) run(obs func(int, cpu.Event), pool *sync.Pool) {
	defer close(w.done)
	for batch := range w.ch {
		for _, ev := range batch {
			if obs != nil {
				obs(w.idx, ev)
			}
			w.tr.Event(ev)
		}
		b := batch[:0]
		pool.Put(&b)
	}
}
