package pipeline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
)

// worker owns one shard: a bounded batch queue feeding a private tracker.
// All tracker state is confined to the worker goroutine between New and
// the done signal, so no locking is needed anywhere in the hot path.
type worker struct {
	idx  int
	ch   chan []cpu.Event
	tr   *core.Tracker
	done chan struct{}
	// err records the first panic the worker recovered. It is written
	// only by the worker goroutine before done is closed and read only
	// after <-done, so it needs no lock.
	err error
}

func newWorker(idx int, tr *core.Tracker, queueDepth int) *worker {
	return &worker{
		idx:  idx,
		ch:   make(chan []cpu.Event, queueDepth),
		tr:   tr,
		done: make(chan struct{}),
	}
}

// run drains batches until the dispatcher closes the channel, returning
// spent batch slices to the shared pool. A panic out of the tracker (or
// an observer) poisons the worker: the panic is recorded for Close to
// report, and the worker keeps draining — discarding further batches —
// so the dispatcher's bounded sends can never hang on a dead consumer.
func (w *worker) run(obs func(int, cpu.Event), pool *sync.Pool, pm PipelineMetrics) {
	defer close(w.done)
	for batch := range w.ch {
		w.process(batch, obs, pm)
		b := batch[:0]
		pool.Put(&b)
		pm.QueueDepth.Dec()
	}
}

// process analyzes one batch, converting a panic into the worker's
// sticky error.
func (w *worker) process(batch []cpu.Event, obs func(int, cpu.Event), pm PipelineMetrics) {
	defer func() {
		if r := recover(); r != nil {
			pm.WorkerPanics.Inc()
			if w.err == nil {
				w.err = fmt.Errorf("pipeline: worker %d panicked: %v", w.idx, r)
			}
		}
	}()
	if w.err != nil {
		return // poisoned: tracker state is suspect, discard the work
	}
	var start time.Time
	if pm.BatchSeconds != nil {
		start = time.Now()
	}
	for _, ev := range batch {
		if obs != nil {
			obs(w.idx, ev)
		}
		w.tr.Event(ev)
	}
	if pm.BatchSeconds != nil {
		pm.BatchSeconds.Observe(time.Since(start).Seconds())
	}
}
