package pipeline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ring"
)

// job is one unit of work on a worker's input ring: either a single
// pre-sharded batch (push mode, the dispatcher's hand-off) or a phase of
// the shard-owned drain (phase non-nil), in which the worker pulls its
// batches straight off the segment readers' SPSC rings.
type job struct {
	batch []cpu.Event
	phase *phaseJob
}

// phaseJob hands a worker its view of one shard-owned phase: the data
// rings carrying this worker's events, one per segment reader, to be
// drained in reader (= trace) order. Draining ring r to exhaustion before
// touching ring r+1 is what preserves per-PID event order: the segments
// are contiguous in the trace, so a PID's events arrive ring by ring in
// exactly their stream order. wg is the phase barrier the coordinator
// waits on.
type phaseJob struct {
	rings []*ring.Ring[[]cpu.Event]
	wg    *sync.WaitGroup
}

// worker owns one shard: a bounded SPSC job queue feeding a private
// tracker. All tracker state is confined to the worker goroutine between
// New and the done signal, so no locking is needed anywhere in the hot
// path. The fault-bookkeeping fields are likewise written only by the
// worker goroutine; the dispatcher reads them only after a quiesce point —
// the inflight WaitGroup's Wait in Sync, a phase barrier in the
// shard-owned drain, or <-done in Close — all of which establish the
// necessary happens-before edge.
type worker struct {
	idx  int
	q    *ring.Ring[job]
	tr   *core.Tracker
	done chan struct{}

	// maxRestarts is the shard's panic budget K (Options.MaxRestarts).
	maxRestarts int
	// cursor tracks the index of the event currently being analyzed, so
	// a recovered panic knows exactly where to resume the batch.
	cursor int
	// panics counts panics recovered on this shard; the first maxRestarts
	// of them restart the shard, the next one fails it for good.
	panics int
	// failed marks the shard permanently poisoned: its tracker state is
	// suspect and all further batches are discarded (and counted).
	failed bool
	// firstErr records the first recovered panic, for the fault report.
	firstErr error
	// droppedEvents and droppedBatches count work this shard discarded —
	// skipped poisonous events plus everything thrown away after failure.
	droppedEvents  uint64
	droppedBatches uint64
}

func newWorker(idx int, tr *core.Tracker, queueDepth, maxRestarts int) *worker {
	return &worker{
		idx:         idx,
		q:           ring.New[job](queueDepth),
		tr:          tr,
		done:        make(chan struct{}),
		maxRestarts: maxRestarts,
	}
}

// run drains jobs until the dispatcher closes the input ring, returning
// spent batch slices to the shared pool and marking each push-mode batch
// done on the inflight WaitGroup — the quiesce barrier Sync waits on. A
// failed worker keeps draining — discarding further batches — so the
// dispatcher's bounded sends can never hang on a dead consumer.
func (w *worker) run(obs func(int, cpu.Event), pool *sync.Pool, inflight *sync.WaitGroup, pm PipelineMetrics) {
	defer close(w.done)
	for {
		j, ok := w.q.Pop()
		if !ok {
			return
		}
		if j.phase != nil {
			w.runPhase(j.phase, obs, pool, pm)
			continue
		}
		w.process(j.batch, obs, pm)
		b := j.batch[:0]
		pool.Put(&b)
		pm.QueueDepth.Dec()
		inflight.Done()
	}
}

// runPhase consumes one shard-owned phase: every data ring drained to
// exhaustion, in reader order. The rings are closed by their producing
// readers when the segment ends (or fails), so a ring's Pop returning
// false is the segment's end marker. Fault policy is identical to push
// mode — the batches flow through the same process() path, restart budget
// and all.
func (w *worker) runPhase(ph *phaseJob, obs func(int, cpu.Event), pool *sync.Pool, pm PipelineMetrics) {
	defer ph.wg.Done()
	for _, src := range ph.rings {
		for {
			batch, ok := src.Pop()
			if !ok {
				break
			}
			w.process(batch, obs, pm)
			b := batch[:0]
			pool.Put(&b)
		}
	}
}

// process analyzes one batch under the restart policy: a panic out of the
// tracker (or an observer) is recovered, the poisonous event skipped, and
// the batch resumed — up to the shard's restart budget. The panic that
// exhausts the budget fails the shard: the rest of this batch and every
// later one are discarded and counted, never analyzed against the suspect
// tracker state.
func (w *worker) process(batch []cpu.Event, obs func(int, cpu.Event), pm PipelineMetrics) {
	if w.failed {
		w.droppedBatches++
		w.droppedEvents += uint64(len(batch))
		pm.DroppedEvents.Add(uint64(len(batch)))
		return
	}
	var start time.Time
	if pm.BatchSeconds != nil {
		start = time.Now()
	}
	for off := 0; off < len(batch); {
		n, ok := w.consume(batch[off:], obs)
		if ok {
			break
		}
		// batch[off+n] panicked. Spend one unit of restart budget to skip
		// it and resume, or fail the shard if the budget is gone.
		pm.WorkerPanics.Inc()
		w.panics++
		if w.panics > w.maxRestarts {
			w.failed = true
			dropped := uint64(len(batch) - off - n) // the poisonous event and everything after it
			w.droppedEvents += dropped
			pm.DroppedEvents.Add(dropped)
			pm.ShardFailures.Inc()
			return
		}
		pm.WorkerRestarts.Inc()
		w.droppedEvents++
		pm.DroppedEvents.Add(1)
		off += n + 1
	}
	if pm.BatchSeconds != nil {
		pm.BatchSeconds.Observe(time.Since(start).Seconds())
	}
}

// consume feeds events to the tracker until the slice is exhausted or a
// panic escapes the tracker/observer. It reports how many events were
// fully analyzed before the fault and whether the slice completed; on a
// fault, evs[n] is the event whose analysis panicked.
func (w *worker) consume(evs []cpu.Event, obs func(int, cpu.Event)) (n int, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if w.firstErr == nil {
				w.firstErr = fmt.Errorf("pipeline: worker %d panicked: %v", w.idx, r)
			}
			n, ok = w.cursor, false
		}
	}()
	for i, ev := range evs {
		w.cursor = i
		if obs != nil {
			obs(w.idx, ev)
		}
		w.tr.Event(ev)
	}
	return len(evs), true
}

// fault summarizes the shard's fault state for Result.Faults; zero-value
// when the shard never panicked.
func (w *worker) fault() (ShardFault, bool) {
	if w.panics == 0 {
		return ShardFault{}, false
	}
	restarts := w.panics
	if w.failed {
		restarts--
	}
	return ShardFault{
		Worker:         w.idx,
		Restarts:       restarts,
		Failed:         w.failed,
		DroppedEvents:  w.droppedEvents,
		DroppedBatches: w.droppedBatches,
		Err:            w.firstErr,
	}, true
}
