package pipeline

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cpu"
)

// EventSource is a pull-based event stream terminated by io.EOF.
// trace.Reader implements it, so a serialized trace can feed the pipeline
// without being materialized; any other streaming producer (a socket, a
// generator) fits the same shape.
type EventSource interface {
	Next() (cpu.Event, error)
}

// BatchSource is an EventSource that can also deliver events in bulk.
// Drain detects it and pulls whole batches into a reused buffer — one
// decode loop and zero per-event interface calls — instead of one Next
// call per event. The contract mirrors trace.Reader.NextBatch: up to
// len(dst) events are decoded into dst; a clean end returns (0, io.EOF)
// with no events; a failing record returns every event before it together
// with the error a per-event Next loop would have produced, so the two
// drain paths are observationally identical.
type BatchSource interface {
	EventSource
	NextBatch(dst []cpu.Event) (int, error)
}

// Run drains src through a fresh pipeline and returns the merged result.
// On a source error the pipeline is still shut down cleanly (no leaked
// goroutines) and the error is returned; a worker failure surfaces the
// same way (and in Result.Err).
func Run(src EventSource, opts Options) (Result, error) {
	return RunContext(context.Background(), src, opts)
}

// RunContext is Run under a context: cancellation is checked between
// events (between batches for a BatchSource), so an unbounded source
// cannot pin the dispatcher once the caller gives up. A batch send already in flight still completes —
// backpressure blocks are bounded by the workers' queue drain, which the
// deferred Close performs regardless — and the pipeline's goroutines are
// always released.
func RunContext(ctx context.Context, src EventSource, opts Options) (Result, error) {
	return New(opts).Drain(ctx, src)
}

// Drain feeds src into the pipeline until io.EOF, honoring the
// checkpoint policy (Options.CheckpointEvery/OnCheckpoint), then closes
// and returns the merged result. It is RunContext's engine, exposed so a
// pipeline restored from a checkpoint can consume the remainder of a
// stream: Restore, Skip the source to Offset(), Drain. Checkpoint
// boundaries are absolute event offsets (multiples of CheckpointEvery
// from stream start), so a resumed run keeps the original cadence. On a
// source or checkpoint error the pipeline is shut down cleanly and the
// error returned; the partial Result is discarded.
func (p *Pipeline) Drain(ctx context.Context, src EventSource) (Result, error) {
	if bs, ok := src.(BatchSource); ok {
		return p.drainBatched(ctx, bs)
	}
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				p.Close()
				return Result{}, ctx.Err()
			default:
			}
		}
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			p.Close()
			return Result{}, err
		}
		p.Event(ev)
		if err := p.maybeCheckpoint(); err != nil {
			p.Close()
			return Result{}, err
		}
	}
	res := p.Close()
	return res, res.Err
}

// drainBatched is Drain's bulk path: events arrive len(buf) at a time
// through one reused buffer, and cancellation is checked once per batch
// instead of once per event. Checkpoint boundaries stay exact — a batch is
// capped at the distance to the next CheckpointEvery multiple, so a
// boundary can only ever fall on a batch edge and the checkpoint fires at
// precisely the same absolute offsets as the per-event path.
func (p *Pipeline) drainBatched(ctx context.Context, src BatchSource) (Result, error) {
	done := ctx.Done()
	buf := make([]cpu.Event, p.opts.BatchSize)
	for {
		if done != nil {
			select {
			case <-done:
				p.Close()
				return Result{}, ctx.Err()
			default:
			}
		}
		limit := len(buf)
		if p.opts.CheckpointEvery > 0 {
			if togo := p.opts.CheckpointEvery - p.events%p.opts.CheckpointEvery; uint64(limit) > togo {
				limit = int(togo)
			}
		}
		n, err := src.NextBatch(buf[:limit])
		for _, ev := range buf[:n] {
			p.Event(ev)
		}
		if n > 0 {
			if cerr := p.maybeCheckpoint(); cerr != nil {
				p.Close()
				return Result{}, cerr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			p.Close()
			return Result{}, err
		}
	}
	res := p.Close()
	return res, res.Err
}

// maybeCheckpoint runs the checkpoint hook when the dispatch count sits on
// a CheckpointEvery boundary.
func (p *Pipeline) maybeCheckpoint() error {
	if p.opts.CheckpointEvery > 0 && p.events%p.opts.CheckpointEvery == 0 && p.opts.OnCheckpoint != nil {
		if err := p.opts.OnCheckpoint(p); err != nil {
			return fmt.Errorf("pipeline: checkpoint at offset %d: %w", p.events, err)
		}
	}
	return nil
}
