package pipeline

import (
	"context"
	"io"

	"repro/internal/cpu"
)

// EventSource is a pull-based event stream terminated by io.EOF.
// trace.Reader implements it, so a serialized trace can feed the pipeline
// without being materialized; any other streaming producer (a socket, a
// generator) fits the same shape.
type EventSource interface {
	Next() (cpu.Event, error)
}

// Run drains src through a fresh pipeline and returns the merged result.
// On a source error the pipeline is still shut down cleanly (no leaked
// goroutines) and the error is returned; a worker failure surfaces the
// same way (and in Result.Err).
func Run(src EventSource, opts Options) (Result, error) {
	return RunContext(context.Background(), src, opts)
}

// RunContext is Run under a context: cancellation is checked between
// events, so an unbounded source cannot pin the dispatcher once the
// caller gives up. A batch send already in flight still completes —
// backpressure blocks are bounded by the workers' queue drain, which the
// deferred Close performs regardless — and the pipeline's goroutines are
// always released.
func RunContext(ctx context.Context, src EventSource, opts Options) (Result, error) {
	p := New(opts)
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				p.Close()
				return Result{}, ctx.Err()
			default:
			}
		}
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			p.Close()
			return Result{}, err
		}
		p.Event(ev)
	}
	res := p.Close()
	return res, res.Err
}
