package pipeline

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cpu"
)

// EventSource is a pull-based event stream terminated by io.EOF.
// trace.Reader implements it, so a serialized trace can feed the pipeline
// without being materialized; any other streaming producer (a socket, a
// generator) fits the same shape.
type EventSource interface {
	Next() (cpu.Event, error)
}

// Run drains src through a fresh pipeline and returns the merged result.
// On a source error the pipeline is still shut down cleanly (no leaked
// goroutines) and the error is returned; a worker failure surfaces the
// same way (and in Result.Err).
func Run(src EventSource, opts Options) (Result, error) {
	return RunContext(context.Background(), src, opts)
}

// RunContext is Run under a context: cancellation is checked between
// events, so an unbounded source cannot pin the dispatcher once the
// caller gives up. A batch send already in flight still completes —
// backpressure blocks are bounded by the workers' queue drain, which the
// deferred Close performs regardless — and the pipeline's goroutines are
// always released.
func RunContext(ctx context.Context, src EventSource, opts Options) (Result, error) {
	return New(opts).Drain(ctx, src)
}

// Drain feeds src into the pipeline until io.EOF, honoring the
// checkpoint policy (Options.CheckpointEvery/OnCheckpoint), then closes
// and returns the merged result. It is RunContext's engine, exposed so a
// pipeline restored from a checkpoint can consume the remainder of a
// stream: Restore, Skip the source to Offset(), Drain. Checkpoint
// boundaries are absolute event offsets (multiples of CheckpointEvery
// from stream start), so a resumed run keeps the original cadence. On a
// source or checkpoint error the pipeline is shut down cleanly and the
// error returned; the partial Result is discarded.
func (p *Pipeline) Drain(ctx context.Context, src EventSource) (Result, error) {
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				p.Close()
				return Result{}, ctx.Err()
			default:
			}
		}
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			p.Close()
			return Result{}, err
		}
		p.Event(ev)
		if p.opts.CheckpointEvery > 0 && p.events%p.opts.CheckpointEvery == 0 && p.opts.OnCheckpoint != nil {
			if err := p.opts.OnCheckpoint(p); err != nil {
				p.Close()
				return Result{}, fmt.Errorf("pipeline: checkpoint at offset %d: %w", p.events, err)
			}
		}
	}
	res := p.Close()
	return res, res.Err
}
