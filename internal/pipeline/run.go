package pipeline

import (
	"io"

	"repro/internal/cpu"
)

// EventSource is a pull-based event stream terminated by io.EOF.
// trace.Reader implements it, so a serialized trace can feed the pipeline
// without being materialized; any other streaming producer (a socket, a
// generator) fits the same shape.
type EventSource interface {
	Next() (cpu.Event, error)
}

// Run drains src through a fresh pipeline and returns the merged result.
// On a source error the pipeline is still shut down cleanly (no leaked
// goroutines) and the error is returned.
func Run(src EventSource, opts Options) (Result, error) {
	p := New(opts)
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			p.Close()
			return Result{}, err
		}
		p.Event(ev)
	}
	return p.Close(), nil
}
