package pipeline_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/pipeline"
)

// TestBackpressureBlocksDispatcher pins a worker inside the observer and
// verifies the dispatcher stalls once the worker's bounded queue is full —
// events are neither dropped nor reordered, the producer just waits.
func TestBackpressureBlocksDispatcher(t *testing.T) {
	const total = 64
	gate := make(chan struct{})
	delivered := make(chan cpu.Event, total)

	// BatchSize 1 + QueueDepth 1: the worker holds one event (blocked on
	// the gate), the channel buffers one batch, and the dispatcher's
	// third send blocks. So exactly 2 Event calls may complete before the
	// gate opens.
	p := pipeline.New(pipeline.Options{
		Workers:    1,
		BatchSize:  1,
		QueueDepth: 1,
		Config:     testCfg,
		Observer: func(w int, ev cpu.Event) {
			delivered <- ev
			<-gate
		},
	})

	var dispatched atomic.Int64
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		for i := 0; i < total; i++ {
			p.Event(cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: uint64(i + 1),
				Range: mem.MakeRange(mem.Addr(i*16), 4)})
			dispatched.Add(1)
		}
	}()

	// Wait until the worker is pinned on the first event, then give the
	// feeder ample time to run as far as backpressure allows.
	first := <-delivered
	if first.Seq != 1 {
		t.Fatalf("first delivered event has seq %d, want 1", first.Seq)
	}
	const stalledAt = 2
	deadline := time.Now().Add(2 * time.Second)
	for dispatched.Load() < stalledAt && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if n := dispatched.Load(); n != stalledAt {
		t.Fatalf("dispatcher accepted %d events while worker was blocked, want exactly %d", n, stalledAt)
	}
	select {
	case <-feederDone:
		t.Fatal("feeder finished despite a blocked worker — no backpressure")
	default:
	}

	// Release the worker: every event must now flow through, in order.
	close(gate)
	select {
	case <-feederDone:
	case <-time.After(5 * time.Second):
		t.Fatal("feeder did not finish after releasing the worker")
	}
	res := p.Close()
	if res.Events != total {
		t.Fatalf("dispatched %d events, want %d", res.Events, total)
	}
	close(delivered)
	i := 1 // the first event was consumed by the sync above
	for ev := range delivered {
		i++
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d delivered with seq %d — reordered or dropped", i, ev.Seq)
		}
	}
	if i != total {
		t.Fatalf("worker saw %d events, want %d", i, total)
	}
	if res.Stats.Loads != total {
		t.Fatalf("tracker counted %d loads, want %d", res.Stats.Loads, total)
	}
}

// TestBackpressureBoundsQueue generalizes the stall bound to larger batch
// and queue parameters: with the worker pinned, the dispatcher can run at
// most QueueDepth+1 full batches ahead plus the partial batch under
// construction.
func TestBackpressureBoundsQueue(t *testing.T) {
	const batch, depth = 8, 2
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var seen atomic.Int64
	p := pipeline.New(pipeline.Options{
		Workers:    1,
		BatchSize:  batch,
		QueueDepth: depth,
		Config:     testCfg,
		Observer: func(w int, ev cpu.Event) {
			if seen.Add(1) == 1 {
				started <- struct{}{}
			}
			<-gate
		},
	})
	var dispatched atomic.Int64
	feederDone := make(chan struct{})
	const total = 1000
	go func() {
		defer close(feederDone)
		for i := 0; i < total; i++ {
			p.Event(cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: uint64(i + 1),
				Range: mem.MakeRange(mem.Addr(i*16), 4)})
			dispatched.Add(1)
		}
	}()
	<-started
	// Upper bound on accepted events while the worker is pinned: the
	// batch the worker holds, depth queued batches, one batch blocked in
	// the send, and BatchSize-1 events pending in the dispatcher.
	const bound = batch*(depth+2) + batch - 1
	time.Sleep(100 * time.Millisecond)
	if n := dispatched.Load(); n > bound {
		t.Fatalf("dispatcher ran %d events ahead, bound is %d", n, bound)
	}
	close(gate)
	<-feederDone
	res := p.Close()
	if res.Events != total || res.Stats.Loads != total {
		t.Fatalf("after release: %d dispatched / %d loads, want %d", res.Events, res.Stats.Loads, total)
	}
}
