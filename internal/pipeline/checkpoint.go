package pipeline

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
)

// Pipeline checkpoint format — a versioned, deterministic binary snapshot
// of the whole analyzer, in the same magic/length-prefix style as the
// trace codec. Layout (little-endian):
//
//	magic   [8]byte  "PIFTCKP1"
//	length  u64      payload byte count
//	payload          events u64, workers u32,
//	                 workers × { snapLen u64, snapshot (core tracker snapshot) }
//	crc     u32      CRC-32C (Castagnoli) of the payload
//
// The payload pairs the resumable stream offset (events dispatched, all
// analyzed — WriteCheckpoint quiesces first) with one core tracker
// snapshot per shard. Because the PID→shard map is a pure function of the
// PID and the worker count, restoring the same worker count puts every
// snapshot back in front of exactly the events its shard would have seen,
// so a restored pipeline fed the remaining stream produces byte-identical
// merged stats and verdicts to an uninterrupted run. The length/CRC frame
// lets Restore reject torn or bit-flipped checkpoint files outright
// instead of resuming from garbage.

var ckptMagic = [8]byte{'P', 'I', 'F', 'T', 'C', 'K', 'P', '1'}

// ckptMaxPayload caps the declared payload size (1 GiB) so a corrupt
// length field fails fast instead of provoking a giant allocation.
const ckptMaxPayload = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteCheckpoint quiesces the pipeline (Sync) and serializes its state.
// It refuses to checkpoint a pipeline any shard of which has faulted —
// such state has already diverged from the uninterrupted run, and a
// checkpoint must only ever capture states the clean execution passes
// through. The pipeline remains usable afterwards.
func (p *Pipeline) WriteCheckpoint(w io.Writer) (int64, error) {
	p.Sync()
	for _, wk := range p.workers {
		// Safe to read after Sync: the WaitGroup edge ordered all worker
		// writes before this goroutine's reads.
		if wk.panics > 0 {
			return 0, fmt.Errorf("pipeline: checkpoint refused: shard %d faulted: %w", wk.idx, wk.firstErr)
		}
	}
	var payload bytes.Buffer
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], p.events)
	payload.Write(scratch[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(p.workers)))
	payload.Write(scratch[:4])
	for _, wk := range p.workers {
		var snap bytes.Buffer
		if _, err := wk.tr.WriteSnapshot(&snap); err != nil {
			return 0, fmt.Errorf("pipeline: checkpointing shard %d: %w", wk.idx, err)
		}
		binary.LittleEndian.PutUint64(scratch[:], uint64(snap.Len()))
		payload.Write(scratch[:])
		payload.Write(snap.Bytes())
	}

	var n int64
	count := func(written int, err error) error {
		n += int64(written)
		return err
	}
	if err := count(w.Write(ckptMagic[:])); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(payload.Len()))
	if err := count(w.Write(scratch[:])); err != nil {
		return n, err
	}
	if err := count(w.Write(payload.Bytes())); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc32.Checksum(payload.Bytes(), crcTable))
	if err := count(w.Write(scratch[:4])); err != nil {
		return n, err
	}
	p.m.Checkpoints.Inc()
	p.m.CheckpointBytes.Add(uint64(n))
	return n, nil
}

// Restore rebuilds a pipeline from a checkpoint and starts its workers.
// The worker count and tracker configuration are authoritative in the
// checkpoint; opts may leave them zero, and explicitly conflicting values
// are an error (resuming under different parameters would break the
// resume-equals-uninterrupted guarantee). NewStore must be nil — the
// snapshot codec restores the unbounded IdealStore. Feed the restored
// pipeline the stream from Offset() onward (trace.Reader.Skip) and the
// merged result is byte-identical to an uninterrupted run.
func Restore(r io.Reader, opts Options) (*Pipeline, error) {
	if opts.NewStore != nil {
		return nil, fmt.Errorf("pipeline: restore supports only the ideal store (NewStore must be nil)")
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint magic: %w", unexpectEOF(err))
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("pipeline: bad checkpoint magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint length: %w", unexpectEOF(err))
	}
	length := binary.LittleEndian.Uint64(hdr[:])
	if length > ckptMaxPayload {
		return nil, fmt.Errorf("pipeline: implausible checkpoint payload %d bytes", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint payload: %w", unexpectEOF(err))
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint crc: %w", unexpectEOF(err))
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("pipeline: checkpoint crc mismatch: computed %08x, stored %08x", got, want)
	}

	body := bytes.NewReader(payload)
	var events uint64
	var workers uint32
	if err := binary.Read(body, binary.LittleEndian, &events); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint events: %w", unexpectEOF(err))
	}
	if err := binary.Read(body, binary.LittleEndian, &workers); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint worker count: %w", unexpectEOF(err))
	}
	if workers < 1 || workers > 1<<16 {
		return nil, fmt.Errorf("pipeline: implausible checkpoint worker count %d", workers)
	}
	if opts.Workers > 0 && opts.Workers != int(workers) {
		return nil, fmt.Errorf("pipeline: checkpoint has %d workers, options demand %d", workers, opts.Workers)
	}

	trackers := make([]*core.Tracker, workers)
	for i := range trackers {
		var snapLen uint64
		if err := binary.Read(body, binary.LittleEndian, &snapLen); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint shard %d length: %w", i, unexpectEOF(err))
		}
		if snapLen > uint64(body.Len()) {
			return nil, fmt.Errorf("pipeline: checkpoint shard %d overruns payload", i)
		}
		tr, err := core.ReadSnapshot(io.LimitReader(body, int64(snapLen)))
		if err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint shard %d: %w", i, err)
		}
		trackers[i] = tr
	}
	cfg := trackers[0].Config()
	for i, tr := range trackers {
		if tr.Config() != cfg {
			return nil, fmt.Errorf("pipeline: checkpoint shard %d config %v differs from shard 0's %v", i, tr.Config(), cfg)
		}
	}
	if opts.Config != (core.Config{}) && opts.Config != cfg {
		return nil, fmt.Errorf("pipeline: checkpoint config %v, options demand %v", cfg, opts.Config)
	}

	opts.Workers = int(workers)
	opts.Config = cfg
	opts = opts.withDefaults()
	p := newShell(opts)
	for i, tr := range trackers {
		p.start(i, tr)
	}
	p.events = events
	return p, nil
}

// unexpectEOF normalizes a clean-EOF short read into the truncation error
// it actually is: a checkpoint never validly ends early.
func unexpectEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
