package pipeline

import "repro/internal/metrics"

// PipelineMetrics wires the dispatcher/worker machinery into live
// gauges and histograms. The zero value disables instrumentation; all
// mutations are nil-receiver-safe.
type PipelineMetrics struct {
	// EventsDispatched and BatchesDispatched count the producer side.
	EventsDispatched  *metrics.Counter
	BatchesDispatched *metrics.Counter
	// QueueDepth is the number of batches currently sitting in worker
	// channels: incremented at dispatch, decremented after a worker
	// finishes a batch. QueueDepthHigh is its high-water mark.
	QueueDepth     *metrics.Gauge
	QueueDepthHigh *metrics.Gauge
	// Stalls counts dispatcher sends that found the worker queue full —
	// each one is a backpressure block on the producer.
	Stalls *metrics.Counter
	// BatchSeconds is the per-batch analysis latency on the worker
	// (receive-to-done), and BatchEvents the batch-size distribution.
	BatchSeconds *metrics.Histogram
	BatchEvents  *metrics.Histogram
	// MergeNanos is the duration of the last Close drain+merge.
	MergeNanos *metrics.Gauge
	// WorkerPanics counts panics recovered inside workers — both those
	// absorbed by a restart and the one that fails the shard.
	WorkerPanics *metrics.Counter
	// WorkerRestarts counts panics absorbed by the restart policy: the
	// shard skipped the poisonous event and resumed within its budget.
	WorkerRestarts *metrics.Counter
	// ShardFailures counts shards that exhausted their restart budget and
	// were abandoned — each one degrades the merged Result.
	ShardFailures *metrics.Counter
	// DroppedEvents counts events discarded to faults: poisonous events
	// skipped by restarts plus everything a failed shard threw away.
	DroppedEvents *metrics.Counter
	// Checkpoints counts checkpoints written, and CheckpointBytes the
	// total bytes serialized into them.
	Checkpoints     *metrics.Counter
	CheckpointBytes *metrics.Counter
}

// NewPipelineMetrics registers the pipeline metric set under its
// canonical names; registration is idempotent, so every pipeline built
// over the same registry shares one set.
func NewPipelineMetrics(r *metrics.Registry) PipelineMetrics {
	return PipelineMetrics{
		EventsDispatched: r.Counter("pift_pipeline_events_total",
			"Events routed to workers by the dispatcher."),
		BatchesDispatched: r.Counter("pift_pipeline_batches_total",
			"Batches handed to worker queues."),
		QueueDepth: r.Gauge("pift_pipeline_queue_depth",
			"Batches currently enqueued across all worker channels."),
		QueueDepthHigh: r.Gauge("pift_pipeline_queue_depth_highwater",
			"High-water mark of enqueued batches."),
		Stalls: r.Counter("pift_pipeline_backpressure_stalls_total",
			"Dispatcher sends that blocked on a full worker queue."),
		BatchSeconds: r.Histogram("pift_pipeline_batch_seconds",
			"Per-batch worker analysis latency in seconds.",
			metrics.LatencyBuckets),
		BatchEvents: r.Histogram("pift_pipeline_batch_events",
			"Events per dispatched batch.", metrics.CountBuckets),
		MergeNanos: r.Gauge("pift_pipeline_merge_duration_ns",
			"Duration of the last Close drain and merge, in nanoseconds."),
		WorkerPanics: r.Counter("pift_pipeline_worker_panics_total",
			"Panics recovered inside pipeline workers."),
		WorkerRestarts: r.Counter("pift_pipeline_worker_restarts_total",
			"Worker panics absorbed by skip-and-resume restarts."),
		ShardFailures: r.Counter("pift_pipeline_shard_failures_total",
			"Shards abandoned after exhausting their restart budget."),
		DroppedEvents: r.Counter("pift_pipeline_dropped_events_total",
			"Events discarded to shard faults (skipped or abandoned)."),
		Checkpoints: r.Counter("pift_pipeline_checkpoints_total",
			"Pipeline checkpoints written."),
		CheckpointBytes: r.Counter("pift_pipeline_checkpoint_bytes_total",
			"Total bytes serialized into pipeline checkpoints."),
	}
}
