package pipeline_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// TestRestartWithinBudget: a worker that panics once under a nonzero
// restart budget must skip the poisonous event, finish its stream, and
// report the fault without failing the run. Exactly the skipped event is
// missing from the merged stats.
func TestRestartWithinBudget(t *testing.T) {
	evs := syntheticStream(30_000, 1, 17) // single PID: one shard carries everything
	want, _ := sequentialOracle(evs, testCfg)

	var seen uint64
	res, err := pipeline.Run(&sliceSource{evs: evs}, pipeline.Options{
		Workers:     2,
		BatchSize:   64,
		Config:      testCfg,
		MaxRestarts: 2,
		Observer: func(worker int, ev cpu.Event) {
			seen++
			if seen == 5_000 {
				panic("transient fault")
			}
		},
	})
	if err != nil {
		t.Fatalf("Run failed despite restart budget: %v", err)
	}
	if res.Degraded {
		t.Fatal("run marked degraded after an in-budget restart")
	}
	if len(res.Faults) != 1 {
		t.Fatalf("Faults = %+v, want exactly one report", res.Faults)
	}
	f := res.Faults[0]
	if f.Failed || f.Restarts != 1 || f.DroppedEvents != 1 || f.DroppedBatches != 0 {
		t.Fatalf("fault report %+v, want one restart dropping one event", f)
	}
	if f.Err == nil || !strings.Contains(f.Err.Error(), "transient fault") {
		t.Fatalf("fault error %v", f.Err)
	}
	// Exactly one event is missing from the merge.
	got := res.Stats.Loads + res.Stats.Stores + res.Stats.SourceRegs + res.Stats.SinkChecks
	total := want.Loads + want.Stores + want.SourceRegs + want.SinkChecks
	if got != total-1 {
		t.Fatalf("merged %d events, want %d (all but the skipped one)", got, total-1)
	}
}

// TestRestartBudgetExhausted: K+1 panics on one shard must fail that
// shard only — the run completes, the other shards' results are intact,
// and the Result reports the degradation explicitly. Run under -race this
// is the no-hang/no-escape acceptance proof.
func TestRestartBudgetExhausted(t *testing.T) {
	const workers, maxRestarts = 4, 2
	evs := syntheticStream(20_000, 1, 12) // PID 1: healthy stream
	// Find a PID on a different shard to poison.
	poisonPID := uint32(2)
	for pipeline.ShardOf(poisonPID, workers) == pipeline.ShardOf(1, workers) {
		poisonPID++
	}
	poisonShard := pipeline.ShardOf(poisonPID, workers)
	var poison []cpu.Event
	for i := 0; i < 1_000; i++ {
		poison = append(poison, cpu.Event{Kind: cpu.EvLoad, PID: poisonPID, Seq: uint64(i + 1)})
	}
	seqStats, seqVerdicts := sequentialOracle(evs, testCfg)

	reg := metrics.NewRegistry()
	all := append(append([]cpu.Event(nil), poison...), evs...)
	res, err := pipeline.Run(&sliceSource{evs: all}, pipeline.Options{
		Workers:     workers,
		BatchSize:   32,
		Config:      testCfg,
		MaxRestarts: maxRestarts,
		Metrics:     reg,
		Observer: func(worker int, ev cpu.Event) {
			if ev.PID == poisonPID {
				panic("persistent fault")
			}
		},
	})
	if err == nil || res.Err == nil {
		t.Fatal("exhausted restart budget must surface as an error")
	}
	if !res.Degraded {
		t.Fatal("Result not marked Degraded")
	}
	if len(res.Faults) != 1 {
		t.Fatalf("Faults = %+v, want one report", res.Faults)
	}
	f := res.Faults[0]
	if f.Worker != poisonShard || !f.Failed || f.Restarts != maxRestarts {
		t.Fatalf("fault report %+v, want failed shard %d after %d restarts", f, poisonShard, maxRestarts)
	}
	// Every poison event was discarded: the restarted ones one at a time,
	// the rest with the shard's abandonment.
	if want := uint64(len(poison)); f.DroppedEvents != want {
		t.Fatalf("DroppedEvents = %d, want %d", f.DroppedEvents, want)
	}
	// The healthy shards' merged output is complete and correct.
	if res.Stats.SinkChecks != seqStats.SinkChecks || res.Stats.TaintOps != seqStats.TaintOps {
		t.Fatalf("healthy shard stats corrupted: got %+v, want %+v", res.Stats, seqStats)
	}
	if len(res.Verdicts) != len(seqVerdicts) {
		t.Fatalf("healthy shard verdicts lost: %d, want %d", len(res.Verdicts), len(seqVerdicts))
	}
	// The degradation counters tell the same story.
	snap := reg.Snapshot()
	if got := snap.Counters["pift_pipeline_worker_restarts_total"]; got != maxRestarts {
		t.Fatalf("restart counter = %d, want %d", got, maxRestarts)
	}
	if got := snap.Counters["pift_pipeline_shard_failures_total"]; got != 1 {
		t.Fatalf("shard failure counter = %d, want 1", got)
	}
	if got := snap.Counters["pift_pipeline_dropped_events_total"]; got != uint64(len(poison)) {
		t.Fatalf("dropped events counter = %d, want %d", got, len(poison))
	}
}

// TestCheckpointRefusedAfterFault: a faulted pipeline must refuse to
// checkpoint — its state diverged from the clean execution, and resuming
// from it would silently bake the divergence in.
func TestCheckpointRefusedAfterFault(t *testing.T) {
	evs := syntheticStream(5_000, 1, 4)
	var seen uint64
	p := pipeline.New(pipeline.Options{
		Workers:     1,
		BatchSize:   32,
		Config:      testCfg,
		MaxRestarts: 5,
		Observer: func(worker int, ev cpu.Event) {
			seen++
			if seen == 100 {
				panic("sneaky fault")
			}
		},
	})
	for _, ev := range evs {
		p.Event(ev)
	}
	var buf bytes.Buffer
	if _, err := p.WriteCheckpoint(&buf); err == nil ||
		!strings.Contains(err.Error(), "checkpoint refused") {
		t.Fatalf("WriteCheckpoint after fault: err = %v, want refusal", err)
	}
	res := p.Close()
	if res.Degraded {
		t.Fatal("in-budget restart must not degrade the run")
	}
}
