// Package pipeline decouples front-end event production from taint
// analysis, reproducing in software the split the paper builds in
// hardware (§3): the application core streams load/store events to a
// separate analysis core that runs the PIFT heuristic asynchronously.
//
// A single-threaded dispatcher shards events by PID onto N worker
// goroutines, each running its own core.Tracker. Sharding by PID is
// semantics-preserving because the tainting-window algorithm and the
// taint store are both per-process (Algorithm 1 keeps one window per PID;
// Figure 6 tags every storage entry with the PID): events of different
// processes never read or write shared tracker state, so any per-PID-
// order-preserving parallel schedule computes exactly what the sequential
// tracker does. Events are delivered in batches over bounded channels —
// batching amortizes channel synchronization, and the bound turns a slow
// worker into dispatcher backpressure instead of unbounded buffering or
// event loss. Close drains the workers and merges their statistics and
// sink verdicts into a deterministic Result.
package pipeline

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
)

// Pipeline is an asynchronous sharded taint analyzer. It implements
// cpu.EventSink, so it can be attached to a live machine or fed a
// recorded trace exactly like a sequential tracker. The producer side
// (Event, Close) must be driven by one goroutine at a time; the analysis
// runs concurrently behind it.
type Pipeline struct {
	opts     Options
	workers  []*worker
	pending  [][]cpu.Event  // per-worker batch under construction
	pool     sync.Pool      // recycles batch slices: *[]cpu.Event
	inflight sync.WaitGroup // batches dispatched but not yet fully analyzed
	m        PipelineMetrics
	tm       core.TrackerMetrics
	events   uint64
	closed   bool
}

// New builds the pipeline and starts its worker goroutines. The result
// must be Closed to release them. Invalid configs panic, as in
// core.NewTracker: they are experiment bugs, not runtime conditions.
func New(opts Options) *Pipeline {
	opts = opts.withDefaults()
	if err := opts.Config.Validate(); err != nil {
		panic(err)
	}
	p := newShell(opts)
	for i := range p.workers {
		var store core.Store
		if opts.NewStore != nil {
			store = opts.NewStore()
		}
		p.start(i, core.NewTracker(opts.Config, store))
	}
	return p
}

// newShell allocates the pipeline chassis — metrics, pool, per-worker
// slots — without starting workers; New and Restore differ only in where
// each worker's tracker comes from.
func newShell(opts Options) *Pipeline {
	p := &Pipeline{opts: opts}
	if opts.Metrics != nil {
		// Registration is idempotent: every pipeline over this registry —
		// and every worker within it — shares one metric set, so counters
		// aggregate across shards and runs.
		p.m = NewPipelineMetrics(opts.Metrics)
		p.tm = core.NewTrackerMetrics(opts.Metrics)
	}
	p.pool.New = func() any {
		b := make([]cpu.Event, 0, opts.BatchSize)
		return &b
	}
	p.workers = make([]*worker, opts.Workers)
	p.pending = make([][]cpu.Event, opts.Workers)
	return p
}

// start installs tracker tr as shard i's analyzer and launches the shard.
func (p *Pipeline) start(i int, tr *core.Tracker) {
	tr.SetMetrics(p.tm)
	w := newWorker(i, tr, p.opts.QueueDepth, p.opts.MaxRestarts)
	p.workers[i] = w
	p.pending[i] = p.batch()
	go w.run(p.opts.Observer, &p.pool, &p.inflight, p.m)
}

// Workers returns the worker count.
func (p *Pipeline) Workers() int { return len(p.workers) }

// shard maps a PID to a worker index. The multiply-xorshift mix (the
// murmur3 finalizer) spreads consecutive PIDs evenly regardless of the
// worker count; it is a pure function of the PID, so the assignment is
// deterministic across runs.
func shard(pid uint32, n int) int {
	x := pid
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x % uint32(n))
}

// ShardOf reports which worker index a PID maps to at the given worker
// count — the shard layout is part of the pipeline's observable contract
// (per-worker metrics, failure isolation), so tests and operators can
// predict placement.
func ShardOf(pid uint32, workers int) int {
	if workers <= 1 {
		return 0
	}
	return shard(pid, workers)
}

// Event implements cpu.EventSink: route the event to its PID's shard,
// flushing the shard's batch when full. A full worker queue blocks here —
// that is the backpressure contract.
func (p *Pipeline) Event(ev cpu.Event) {
	if p.closed {
		panic("pipeline: Event after Close")
	}
	i := 0
	if len(p.workers) > 1 {
		i = shard(ev.PID, len(p.workers))
	}
	b := append(p.pending[i], ev)
	p.events++
	p.m.EventsDispatched.Inc()
	if len(b) >= p.opts.BatchSize {
		p.send(p.workers[i], b)
		b = p.batch()
	}
	p.pending[i] = b
}

// Offset returns the number of events dispatched over the pipeline's
// lifetime, counted from the start of the stream — a restored pipeline
// continues the count from its checkpoint. It is the resume position to
// pair with trace.Reader.Skip.
func (p *Pipeline) Offset() uint64 { return p.events }

// Sync flushes every shard's partial batch and blocks until all
// dispatched events have been analyzed. On return the worker trackers are
// quiescent — the WaitGroup edge makes their state (and any fault
// bookkeeping) safely visible to the caller's goroutine — which is what
// makes a mid-stream checkpoint consistent. The pipeline stays usable;
// Sync is a barrier, not a shutdown.
func (p *Pipeline) Sync() {
	if p.closed {
		panic("pipeline: Sync after Close")
	}
	for i, w := range p.workers {
		if len(p.pending[i]) > 0 {
			p.send(w, p.pending[i])
			p.pending[i] = p.batch()
		}
	}
	p.inflight.Wait()
}

// send hands a batch to a worker's input ring, accounting for dispatch
// and for backpressure: a full ring counts one stall before the blocking
// push.
func (p *Pipeline) send(w *worker, b []cpu.Event) {
	p.inflight.Add(1)
	p.m.BatchesDispatched.Inc()
	p.m.BatchEvents.Observe(float64(len(b)))
	// Depth counts batches handed off but not yet fully analyzed. The
	// increment precedes the push, so it happens-before the worker's
	// decrement and the gauge can never read negative.
	p.m.QueueDepth.Inc()
	p.m.QueueDepthHigh.TrackMax(p.m.QueueDepth.Value())
	if !w.q.TryPush(job{batch: b}) {
		p.m.Stalls.Inc()
		if !w.q.Push(job{batch: b}) {
			// Unreachable while the Event/Close contract holds: only Close
			// closes the ring, and Event-after-Close already panics.
			panic("pipeline: send on closed worker queue")
		}
	}
}

// batch takes a fresh (or recycled) empty batch slice from the pool.
func (p *Pipeline) batch() []cpu.Event {
	return (*p.pool.Get().(*[]cpu.Event))[:0]
}

// Close flushes partial batches, waits for every worker to drain, and
// merges their outputs: counters sum, watermarks max (see
// core.Stats.Merge for the exactness argument), and sink verdicts sort
// into the canonical (PID, Seq, Tag) order, so the merged Result is a
// deterministic function of the input stream alone — independent of
// worker count, batch size, and scheduling. Shards that panicked are
// itemized in Result.Faults; a shard that exhausted its restart budget
// marks the Result Degraded and reports the first such fault in
// Result.Err, while the surviving shards' output is merged normally — a
// partial result with an explicit fault report, never a hang and never a
// silently incomplete success.
func (p *Pipeline) Close() Result {
	if p.closed {
		panic("pipeline: double Close")
	}
	p.closed = true
	start := time.Now()
	for i, w := range p.workers {
		if len(p.pending[i]) > 0 {
			p.send(w, p.pending[i])
		}
		p.pending[i] = nil
		w.q.Close()
	}
	res := Result{Workers: len(p.workers), Events: p.events}
	for _, w := range p.workers {
		<-w.done
		if f, faulted := w.fault(); faulted {
			res.Faults = append(res.Faults, f)
			if f.Failed {
				res.Degraded = true
				if res.Err == nil {
					res.Err = f.Err
				}
			}
		}
		res.Stats.Merge(w.tr.Stats())
		res.Verdicts = append(res.Verdicts, w.tr.Verdicts()...)
	}
	core.SortVerdicts(res.Verdicts)
	p.m.MergeNanos.Set(time.Since(start).Nanoseconds())
	return res
}
