package pipeline_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

var testCfg = core.Config{NI: 13, NT: 3, Untaint: true}

// syntheticStream builds a multi-process stream with per-PID monotonic
// sequence numbers, periodic source registrations, and sink checks —
// every event kind the tracker handles.
func syntheticStream(n, pids int, seed int64) []cpu.Event {
	rng := rand.New(rand.NewSource(seed))
	seq := make([]uint64, pids+1)
	tag := 0
	evs := make([]cpu.Event, 0, n)
	for i := 0; i < n; i++ {
		pid := uint32(rng.Intn(pids) + 1)
		seq[pid] += uint64(rng.Intn(3) + 1)
		r := mem.MakeRange(mem.Addr(uint32(pid)<<16|uint32(rng.Intn(1<<12))), uint32(rng.Intn(16)+1))
		ev := cpu.Event{PID: pid, Seq: seq[pid], Range: r}
		switch k := rng.Intn(100); {
		case k < 2:
			ev.Kind = cpu.EvSourceRegister
		case k < 5:
			ev.Kind = cpu.EvSinkCheck
			tag++
			ev.Tag = tag
		case k < 55:
			ev.Kind = cpu.EvLoad
		default:
			ev.Kind = cpu.EvStore
		}
		evs = append(evs, ev)
	}
	return evs
}

// sequentialOracle runs the events through one core.Tracker and returns
// its stats and canonically sorted verdicts.
func sequentialOracle(evs []cpu.Event, cfg core.Config) (core.Stats, []core.SinkVerdict) {
	tr := core.NewTracker(cfg, nil)
	for _, ev := range evs {
		tr.Event(ev)
	}
	vs := append([]core.SinkVerdict(nil), tr.Verdicts()...)
	core.SortVerdicts(vs)
	return tr.Stats(), vs
}

func TestPipelineMatchesSequential(t *testing.T) {
	evs := syntheticStream(50_000, 7, 42)
	wantStats, wantVerdicts := sequentialOracle(evs, testCfg)
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := pipeline.New(pipeline.Options{Workers: workers, Config: testCfg})
			for _, ev := range evs {
				p.Event(ev)
			}
			res := p.Close()
			if res.Events != uint64(len(evs)) {
				t.Fatalf("dispatched %d events, want %d", res.Events, len(evs))
			}
			got := fmt.Sprintf("%#v", res.Verdicts)
			want := fmt.Sprintf("%#v", wantVerdicts)
			if got != want {
				t.Errorf("verdicts differ:\n got %s\nwant %s", got, want)
			}
			// Counters must be exact; watermarks are per-shard maxima and
			// may only fall below the sequential cross-process total.
			cmp := res.Stats
			cmp.MaxBytes, cmp.MaxRanges = wantStats.MaxBytes, wantStats.MaxRanges
			if cmp != wantStats {
				t.Errorf("counters differ: %+v, want %+v", res.Stats, wantStats)
			}
			if res.Stats.MaxBytes > wantStats.MaxBytes || res.Stats.MaxRanges > wantStats.MaxRanges {
				t.Errorf("watermarks %d/%d exceed sequential %d/%d",
					res.Stats.MaxBytes, res.Stats.MaxRanges,
					wantStats.MaxBytes, wantStats.MaxRanges)
			}
			// With a single worker the whole stream hits one tracker, so
			// even the watermarks must be byte-identical.
			if workers == 1 && res.Stats != wantStats {
				t.Errorf("1-worker stats %+v, want %+v", res.Stats, wantStats)
			}
		})
	}
}

// TestPipelineBatchSizes checks the batch boundary cases: size 1 (every
// event its own batch), a size that does not divide the stream length,
// and a size larger than the whole stream (flush happens only at Close).
func TestPipelineBatchSizes(t *testing.T) {
	evs := syntheticStream(1000, 3, 7)
	wantStats, wantVerdicts := sequentialOracle(evs, testCfg)
	for _, batch := range []int{1, 7, 256, 4096} {
		p := pipeline.New(pipeline.Options{Workers: 2, BatchSize: batch, Config: testCfg})
		for _, ev := range evs {
			p.Event(ev)
		}
		res := p.Close()
		if got, want := fmt.Sprintf("%#v", res.Verdicts), fmt.Sprintf("%#v", wantVerdicts); got != want {
			t.Errorf("batch=%d: verdicts differ", batch)
		}
		cmp := res.Stats
		cmp.MaxBytes, cmp.MaxRanges = wantStats.MaxBytes, wantStats.MaxRanges
		if cmp != wantStats {
			t.Errorf("batch=%d: counters %+v, want %+v", batch, res.Stats, wantStats)
		}
	}
}

// TestPipelinePerPIDOrdering asserts the core correctness invariant: each
// worker observes its PIDs' events in exactly the original stream order.
func TestPipelinePerPIDOrdering(t *testing.T) {
	evs := syntheticStream(20_000, 5, 99)
	perWorker := make([][]cpu.Event, 4)
	var mu sync.Mutex // workers never share an index, but -race can't know that
	p := pipeline.New(pipeline.Options{
		Workers:   4,
		BatchSize: 16,
		Config:    testCfg,
		Observer: func(w int, ev cpu.Event) {
			mu.Lock()
			perWorker[w] = append(perWorker[w], ev)
			mu.Unlock()
		},
	})
	for _, ev := range evs {
		p.Event(ev)
	}
	p.Close()

	// Reassemble each PID's subsequence as the workers saw it and compare
	// with the input's per-PID subsequence.
	gotByPID := map[uint32][]cpu.Event{}
	for _, seq := range perWorker {
		for _, ev := range seq {
			gotByPID[ev.PID] = append(gotByPID[ev.PID], ev)
		}
	}
	wantByPID := map[uint32][]cpu.Event{}
	for _, ev := range evs {
		wantByPID[ev.PID] = append(wantByPID[ev.PID], ev)
	}
	for pid, want := range wantByPID {
		got := gotByPID[pid]
		if len(got) != len(want) {
			t.Fatalf("pid %d: saw %d events, want %d", pid, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pid %d: event %d reordered: %+v vs %+v", pid, i, got[i], want[i])
			}
		}
	}
}

// TestRunStreamsFromReader wires the streaming trace.Reader into the
// pipeline end to end: serialize, stream, analyze, compare to sequential.
func TestRunStreamsFromReader(t *testing.T) {
	evs := syntheticStream(10_000, 4, 5)
	rec := &trace.Recorder{Events: evs}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(sr, pipeline.Options{Workers: 4, Config: testCfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != uint64(len(evs)) {
		t.Fatalf("streamed %d events, want %d", res.Events, len(evs))
	}
	_, wantVerdicts := sequentialOracle(evs, testCfg)
	if got, want := fmt.Sprintf("%#v", res.Verdicts), fmt.Sprintf("%#v", wantVerdicts); got != want {
		t.Errorf("verdicts differ:\n got %s\nwant %s", got, want)
	}
}

// TestRunPropagatesSourceError ensures a failing source shuts the
// pipeline down cleanly and surfaces the error.
func TestRunPropagatesSourceError(t *testing.T) {
	evs := syntheticStream(100, 2, 3)
	rec := &trace.Recorder{Events: evs}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-5]
	sr, err := trace.NewReader(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Run(sr, pipeline.Options{Workers: 2, Config: testCfg}); err == nil {
		t.Fatal("truncated stream analyzed without error")
	}
}

func TestPipelineEventAfterClosePanics(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 1, Config: testCfg})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Event after Close did not panic")
		}
	}()
	p.Event(cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: 1, Range: mem.MakeRange(0, 4)})
}

func TestPipelineDefaultsAndAccessors(t *testing.T) {
	p := pipeline.New(pipeline.Options{Config: testCfg})
	if p.Workers() < 1 {
		t.Fatalf("defaulted worker count %d", p.Workers())
	}
	res := p.Close()
	if res.Workers != p.Workers() || res.Events != 0 || len(res.Verdicts) != 0 {
		t.Fatalf("empty-run result %+v", res)
	}
	if res.Detected() {
		t.Fatal("empty run detected taint")
	}
}
