package pipeline_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// genWire materializes a tracegen spec as PIFTTRC1 wire bytes plus the
// in-memory recorder, so one generation feeds the oracle, the push path,
// and the shard-owned path alike.
func genWire(t testing.TB, spec tracegen.Spec) ([]byte, *trace.Recorder) {
	t.Helper()
	rec := tracegen.Generate(spec)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rec
}

// oracle replays the recorder through one sequential tracker and returns
// the canonical "stats|verdicts" fingerprint every parallel schedule must
// reproduce verdict-for-verdict.
func oracle(rec *trace.Recorder) (core.Stats, []core.SinkVerdict) {
	return sequentialOracle(rec.Events, testCfg)
}

// TestShardOwnedMatchesSequential is the core parity claim of the
// shard-owned ingest: for every worker count, DrainTrace over the
// serialized corpus merges to byte-identical verdicts and exact counters
// against the sequential oracle.
func TestShardOwnedMatchesSequential(t *testing.T) {
	wire, rec := genWire(t, tracegen.Spec{Seed: 11, Events: 200_000, PIDs: 32, Quantum: 64})
	wantStats, wantVerdicts := oracle(rec)
	want := fmt.Sprintf("%#v", wantVerdicts)
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := pipeline.New(pipeline.Options{Workers: workers, Config: testCfg})
			res, err := p.DrainTrace(context.Background(), bytes.NewReader(wire))
			if err != nil {
				t.Fatal(err)
			}
			if res.Events != uint64(rec.Len()) {
				t.Fatalf("accounted %d events, want %d", res.Events, rec.Len())
			}
			if got := fmt.Sprintf("%#v", res.Verdicts); got != want {
				t.Errorf("verdicts diverge from sequential oracle\n got %.300s\nwant %.300s", got, want)
			}
			cmp := res.Stats
			cmp.MaxBytes, cmp.MaxRanges = wantStats.MaxBytes, wantStats.MaxRanges
			if cmp != wantStats {
				t.Errorf("counters differ: %+v, want %+v", res.Stats, wantStats)
			}
			if workers == 1 && res.Stats != wantStats {
				t.Errorf("1-worker stats %+v, want %+v", res.Stats, wantStats)
			}
		})
	}
}

// TestShardOwnedMatchesPushPath pins the two ingest paths to each other
// at equal worker counts: same shard layout, same per-shard event
// subsequences, so stats — watermarks included — and verdicts must be
// fully identical, not merely oracle-equivalent.
func TestShardOwnedMatchesPushPath(t *testing.T) {
	wire, rec := genWire(t, tracegen.Spec{Seed: 12, Events: 100_000, PIDs: 16})
	for _, workers := range []int{1, 3, 4, 8} {
		opts := pipeline.Options{Workers: workers, BatchSize: 128, Config: testCfg}
		src, err := trace.NewReader(bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		push, err := pipeline.New(opts).Drain(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		shard, err := pipeline.New(opts).DrainTrace(context.Background(), bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%#v|%#v", shard.Stats, shard.Verdicts)
		want := fmt.Sprintf("%#v|%#v", push.Stats, push.Verdicts)
		if got != want {
			t.Errorf("workers=%d: shard-owned result diverges from push path\n got %.300s\nwant %.300s",
				workers, got, want)
		}
		if shard.Events != uint64(rec.Len()) || push.Events != shard.Events {
			t.Errorf("workers=%d: event accounting %d vs %d", workers, shard.Events, push.Events)
		}
	}
}

// TestShardOwnedScalingCorpus is the multi-million-event acceptance run:
// a 2M+ event, 64-PID synthetic trace drained shard-owned at 1/2/4/8
// workers, every run byte-identical to the sequential oracle.
func TestShardOwnedScalingCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-event corpus skipped under -short")
	}
	const events = 1 << 21 // 2,097,152
	wire, rec := genWire(t, tracegen.Spec{Seed: 1, Events: events, PIDs: 64})
	_, wantVerdicts := oracle(rec)
	want := fmt.Sprintf("%#v", wantVerdicts)
	if len(wantVerdicts) == 0 {
		t.Fatal("scaling corpus produced no sink verdicts; workload is degenerate")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := pipeline.New(pipeline.Options{Workers: workers, Config: testCfg})
		res, err := p.DrainTrace(context.Background(), bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Events != events {
			t.Fatalf("workers=%d: accounted %d events, want %d", workers, res.Events, events)
		}
		if got := fmt.Sprintf("%#v", res.Verdicts); got != want {
			t.Errorf("workers=%d: verdicts diverge from sequential oracle on %d-event corpus", workers, events)
		}
	}
}

// TestShardOwnedCheckpointOffsetParity: both ingest paths must fire
// checkpoints at exactly the same absolute offsets, and a checkpoint
// written under the shard-owned drain must restore onto either path and
// finish byte-identical to a clean run.
func TestShardOwnedCheckpointOffsetParity(t *testing.T) {
	wire, rec := genWire(t, tracegen.Spec{Seed: 13, Events: 10_000, PIDs: 8})
	opts := pipeline.Options{Workers: 4, BatchSize: 64, CheckpointEvery: 1000, Config: testCfg}

	run := func(drain func(p *pipeline.Pipeline) (pipeline.Result, error)) ([]uint64, *bytes.Buffer, pipeline.Result) {
		var offsets []uint64
		var ckpt bytes.Buffer
		o := opts
		o.OnCheckpoint = func(p *pipeline.Pipeline) error {
			offsets = append(offsets, p.Offset())
			if p.Offset() == 5000 {
				ckpt.Reset()
				if _, err := p.WriteCheckpoint(&ckpt); err != nil {
					return err
				}
			}
			return nil
		}
		res, err := drain(pipeline.New(o))
		if err != nil {
			t.Fatal(err)
		}
		return offsets, &ckpt, res
	}

	pushOffsets, _, pushRes := run(func(p *pipeline.Pipeline) (pipeline.Result, error) {
		src, err := trace.NewReader(bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		return p.Drain(context.Background(), src)
	})
	shardOffsets, ckpt, shardRes := run(func(p *pipeline.Pipeline) (pipeline.Result, error) {
		return p.DrainTrace(context.Background(), bytes.NewReader(wire))
	})

	if fmt.Sprint(pushOffsets) != fmt.Sprint(shardOffsets) {
		t.Fatalf("checkpoint offsets diverge:\npush  %v\nshard %v", pushOffsets, shardOffsets)
	}
	if len(shardOffsets) != rec.Len()/1000 {
		t.Fatalf("fired %d checkpoints, want %d", len(shardOffsets), rec.Len()/1000)
	}
	want := fmt.Sprintf("%#v|%#v", pushRes.Stats, pushRes.Verdicts)
	if got := fmt.Sprintf("%#v|%#v", shardRes.Stats, shardRes.Verdicts); got != want {
		t.Fatalf("clean results diverge between paths")
	}

	// Resume the mid-stream checkpoint through the shard-owned path: the
	// planner starts at Offset(), no Skip required.
	r2, err := pipeline.Restore(bytes.NewReader(ckpt.Bytes()), pipeline.Options{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Offset() != 5000 {
		t.Fatalf("restored offset %d, want 5000", r2.Offset())
	}
	res, err := r2.DrainTrace(context.Background(), bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts); got != want {
		t.Fatalf("shard-owned resume diverges from clean run\n got %.300s\nwant %.300s", got, want)
	}

	// And through the push path, proving the checkpoint is path-agnostic.
	r3, err := pipeline.Restore(bytes.NewReader(ckpt.Bytes()), pipeline.Options{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Skip(r3.Offset()); err != nil {
		t.Fatal(err)
	}
	res, err = r3.Drain(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts); got != want {
		t.Fatalf("push-path resume of shard-owned checkpoint diverges from clean run")
	}
}

// TestShardOwnedCancel: cancellation between phases shuts the pipeline
// down cleanly — readers close their rings, workers drain, goroutines
// exit — and surfaces ctx.Err().
func TestShardOwnedCancel(t *testing.T) {
	wire, _ := genWire(t, tracegen.Spec{Seed: 14, Events: 20_000, PIDs: 8})
	ctx, cancel := context.WithCancel(context.Background())
	opts := pipeline.Options{
		Workers:         2,
		CheckpointEvery: 1000,
		Config:          testCfg,
		OnCheckpoint: func(p *pipeline.Pipeline) error {
			cancel() // seen by the phase loop before the next phase starts
			return nil
		},
	}
	_, err := pipeline.New(opts).DrainTrace(ctx, bytes.NewReader(wire))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestShardOwnedDegraded: the worker fault policy carries over unchanged —
// a shard that exhausts its restart budget under the shard-owned drain
// fails in place, the other shards finish, and the merged Result reports
// the fault exactly like the push path.
func TestShardOwnedDegraded(t *testing.T) {
	wire, rec := genWire(t, tracegen.Spec{Seed: 15, Events: 50_000, PIDs: 16})
	var poison cpu.Event
	for _, ev := range rec.Events[10_000:] {
		if pipeline.ShardOf(ev.PID, 4) == 2 {
			poison = ev
			break
		}
	}
	opts := pipeline.Options{
		Workers: 4,
		Config:  testCfg,
		Observer: func(w int, ev cpu.Event) {
			if ev == poison {
				panic("injected fault")
			}
		},
	}
	res, err := pipeline.New(opts).DrainTrace(context.Background(), bytes.NewReader(wire))
	if err == nil {
		t.Fatal("degraded run returned nil error")
	}
	if !res.Degraded {
		t.Fatal("Result not marked Degraded")
	}
	if len(res.Faults) != 1 || res.Faults[0].Worker != 2 || !res.Faults[0].Failed {
		t.Fatalf("fault report %+v, want worker 2 failed", res.Faults)
	}
	if res.Events != uint64(rec.Len()) {
		t.Fatalf("accounted %d events, want %d", res.Events, rec.Len())
	}
	if len(res.Verdicts) == 0 {
		t.Fatal("surviving shards produced no verdicts")
	}
}

// TestShardOwnedTruncated: a trace cut mid-record fails the drain with
// the reader's truncation classification, and the pipeline still shuts
// down cleanly.
func TestShardOwnedTruncated(t *testing.T) {
	wire, _ := genWire(t, tracegen.Spec{Seed: 16, Events: 5_000, PIDs: 4})
	cut := wire[:len(wire)-7]
	_, err := pipeline.New(pipeline.Options{Workers: 4, Config: testCfg}).
		DrainTrace(context.Background(), bytes.NewReader(cut))
	if !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

// TestShardOwnedBadHeader: header validation happens before any worker
// sees an event.
func TestShardOwnedBadHeader(t *testing.T) {
	wire, _ := genWire(t, tracegen.Spec{Seed: 17, Events: 100, PIDs: 2})
	bad := append([]byte(nil), wire...)
	bad[0] ^= 0xff
	_, err := pipeline.New(pipeline.Options{Workers: 2, Config: testCfg}).
		DrainTrace(context.Background(), bytes.NewReader(bad))
	if !errors.Is(err, trace.ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

// TestShardOwnedEmptyTrace: a zero-event trace drains to an empty clean
// Result.
func TestShardOwnedEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := trace.NewRecorder(0).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.New(pipeline.Options{Workers: 4, Config: testCfg}).
		DrainTrace(context.Background(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 0 || len(res.Verdicts) != 0 {
		t.Fatalf("empty trace produced %d events, %d verdicts", res.Events, len(res.Verdicts))
	}
}
