package pipeline

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/cpu"
	"repro/internal/ring"
	"repro/internal/trace"
)

// Shard-owned ingest — the scaling path. Drain/drainBatched funnel every
// event through one dispatcher goroutine, which decodes, shards, and
// batches alone while N workers wait on it; past a few workers the
// dispatcher IS the pipeline. DrainTrace removes it: a segment planner
// pre-splits the trace by pure arithmetic — over the fixed record stride
// for PIFTTRC1, over the block index for PIFTTRC2 (trace.LoadIndex) —
// and each of N readers then owns its segment from bytes to batches —
// its own trace.Reader, its own decode buffer, its own shard
// partitioning — handing batches to workers over
// single-producer/single-consumer rings (one per reader×worker pair, so
// every ring really is SPSC).
//
// Correctness is an ordering argument. Tracker state is per-PID, so the
// merged Result is byte-identical to the sequential tracker's as long as
// each shard sees its PIDs' events in trace order (see the package
// comment). Segments are contiguous and planned in trace order, and each
// worker drains its per-reader rings strictly in reader order — ring r
// exhausted before ring r+1 — so a shard's event sequence is the
// concatenation of its per-segment subsequences in segment order: exactly
// the trace-order subsequence the dispatcher path delivers.
//
// Checkpoint offsets keep their contract by phasing: the trace is drained
// in phases bounded at CheckpointEvery multiples, with a full barrier
// (readers done, workers drained) between phases. Checkpoints therefore
// fire at precisely the same absolute offsets as Drain, against quiescent
// trackers, and a checkpoint written here restores onto either path.

// DrainTrace consumes the serialized trace in ra — either wire format,
// sniffed from the header — through shard-owned readers and returns the
// merged result, honoring the same checkpoint policy as Drain. For a
// block-compressed PIFTTRC2 trace the planner works over the block index
// (trace.LoadIndex) instead of the fixed record stride; segment
// boundaries snap to blocks but phase and checkpoint offsets stay in
// event counts, so checkpoints fire at identical offsets on both
// formats. A pipeline restored from a checkpoint resumes by calling
// DrainTrace on the same bytes: the planner starts at Offset(), no Skip
// needed. On a decode, checkpoint, or cancellation error the pipeline is
// shut down cleanly and the error returned; the partial Result is
// discarded.
func (p *Pipeline) DrainTrace(ctx context.Context, ra io.ReaderAt) (Result, error) {
	idx, err := trace.LoadIndex(ra)
	if err != nil {
		p.Close()
		return Result{}, err
	}
	total := idx.Count()
	if p.events > total {
		p.Close()
		return Result{}, fmt.Errorf("pipeline: resume offset %d beyond trace length %d", p.events, total)
	}
	done := ctx.Done()
	for p.events < total {
		if done != nil {
			select {
			case <-done:
				p.Close()
				return Result{}, ctx.Err()
			default:
			}
		}
		end := total
		if p.opts.CheckpointEvery > 0 {
			if next := p.events + p.opts.CheckpointEvery - p.events%p.opts.CheckpointEvery; next < end {
				end = next
			}
		}
		if err := p.runPhase(ctx, idx, ra, p.events, end); err != nil {
			p.Close()
			return Result{}, err
		}
		p.events = end
		if err := p.maybeCheckpoint(); err != nil {
			p.Close()
			return Result{}, err
		}
	}
	res := p.Close()
	return res, res.Err
}

// runPhase drains the event range [first, end) of ra: one segment per
// reader, one ring per reader×worker pair, and a phase barrier at the
// end. On return every event of the range has been analyzed (or the
// error says why not) and the workers are quiescent — the phase
// WaitGroup's Wait edge publishes their tracker state to this goroutine,
// which is what entitles the caller to checkpoint next.
func (p *Pipeline) runPhase(ctx context.Context, idx *trace.Index, ra io.ReaderAt, first, end uint64) error {
	nw := len(p.workers)
	segs := idx.PlanRange(first, end-first, nw, p.opts.BatchSize)
	rings := make([][]*ring.Ring[[]cpu.Event], len(segs)) // [reader][worker]
	for r := range rings {
		rings[r] = make([]*ring.Ring[[]cpu.Event], nw)
		for w := range rings[r] {
			rings[r][w] = ring.New[[]cpu.Event](p.opts.QueueDepth)
		}
	}
	var phase sync.WaitGroup
	phase.Add(nw)
	for w, wk := range p.workers {
		col := make([]*ring.Ring[[]cpu.Event], len(segs))
		for r := range col {
			col[r] = rings[r][w]
		}
		if !wk.q.Push(job{phase: &phaseJob{rings: col, wg: &phase}}) {
			panic("pipeline: phase pushed on closed worker queue")
		}
	}
	errs := make([]error, len(segs))
	var readers sync.WaitGroup
	readers.Add(len(segs))
	for r, seg := range segs {
		go func(r int, seg trace.Segment) {
			defer readers.Done()
			errs[r] = p.readSegment(ctx, idx, ra, seg, rings[r])
		}(r, seg)
	}
	readers.Wait()
	phase.Wait()
	for _, err := range errs { // first failure in trace order
		if err != nil {
			return err
		}
	}
	return nil
}

// readSegment is one reader's whole job: decode the segment batch by
// batch, partition events by shard, and push full batches onto the
// owning workers' rings, blocking when a ring is full — the same bounded
// backpressure as the dispatcher path, now per reader×worker. All output
// rings are closed on the way out, success or not: a closed ring is the
// segment-end marker the draining worker keys on, and closing even on
// error is what keeps a failed phase from wedging its workers.
func (p *Pipeline) readSegment(ctx context.Context, idx *trace.Index, ra io.ReaderAt, seg trace.Segment, out []*ring.Ring[[]cpu.Event]) (err error) {
	defer func() {
		for _, q := range out {
			q.Close()
		}
	}()
	r := idx.SegmentReader(ra, seg)
	buf := make([]cpu.Event, p.opts.BatchSize)
	pending := make([][]cpu.Event, len(out))
	for w := range pending {
		pending[w] = p.batch()
	}
	flush := func(w int) {
		b := pending[w]
		if len(b) == 0 {
			return
		}
		p.m.BatchesDispatched.Inc()
		p.m.BatchEvents.Observe(float64(len(b)))
		if !out[w].TryPush(b) {
			p.m.Stalls.Inc()
			out[w].Push(b) // worker never closes its input ring
		}
		pending[w] = p.batch()
	}
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		n, rerr := r.NextBatch(buf)
		for _, ev := range buf[:n] {
			w := 0
			if len(out) > 1 {
				w = shard(ev.PID, len(out))
			}
			pending[w] = append(pending[w], ev)
			if len(pending[w]) >= p.opts.BatchSize {
				flush(w)
			}
		}
		p.m.EventsDispatched.Add(uint64(n))
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rerr
		}
	}
	for w := range out {
		flush(w)
		b := pending[w][:0]
		p.pool.Put(&b)
	}
	return nil
}
