package pipeline_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// TestCrashPointSweepDroidBench is the checkpoint/kill/restore sweep of
// the acceptance criteria: a real DroidBench trace is run through the
// pipeline with a checkpoint taken at every batch boundary; at each
// boundary the run is "killed" (fed a little further, then discarded), a
// fresh pipeline restored from the checkpoint bytes, the serialized trace
// re-opened and Skip()ed to the checkpoint offset, and the tail drained.
// Every resumed run must merge to byte-identical stats and canonically
// sorted verdicts against the sequential oracle.
func TestCrashPointSweepDroidBench(t *testing.T) {
	const batchSize = 32
	h := eval.NewHarness(1)
	apps := h.Apps()
	// Pick the longest trace of the suite so the sweep crosses many
	// batch boundaries and real window/taint state.
	var rec *trace.Recorder
	var appName string
	for _, a := range apps {
		r, err := h.AppTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil || r.Len() > rec.Len() {
			rec, appName = r, a.Name
		}
	}
	var wire bytes.Buffer
	if _, err := rec.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()
	n := rec.Len()
	t.Logf("sweeping %s: %d events, %d crash points", appName, n, n/batchSize+1)

	seq := core.NewTracker(testCfg, nil)
	rec.Replay(seq)
	wantVerdicts := append([]core.SinkVerdict(nil), seq.Verdicts()...)
	core.SortVerdicts(wantVerdicts)
	want := fmt.Sprintf("%#v|%#v", seq.Stats(), wantVerdicts)

	opts := pipeline.Options{Workers: 4, BatchSize: batchSize, Config: testCfg}
	crashPoints := []int{}
	for b := 0; b <= n; b += batchSize {
		crashPoints = append(crashPoints, b)
	}
	crashPoints = append(crashPoints, n) // resume-at-EOF edge
	for _, cut := range crashPoints {
		// Run to the crash point, checkpoint there.
		p := pipeline.New(opts)
		for _, ev := range rec.Events[:cut] {
			p.Event(ev)
		}
		var ckpt bytes.Buffer
		if _, err := p.WriteCheckpoint(&ckpt); err != nil {
			t.Fatalf("cut %d: WriteCheckpoint: %v", cut, err)
		}
		// "Kill": let the doomed run continue a bit, then discard it.
		for _, ev := range rec.Events[cut:min(cut+2*batchSize, n)] {
			p.Event(ev)
		}
		p.Close()

		// Restore and resume from the serialized trace at the offset.
		r2, err := pipeline.Restore(bytes.NewReader(ckpt.Bytes()), pipeline.Options{BatchSize: batchSize})
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		src, err := trace.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Skip(r2.Offset()); err != nil {
			t.Fatalf("cut %d: Skip(%d): %v", cut, r2.Offset(), err)
		}
		res, err := r2.Drain(context.Background(), src)
		if err != nil {
			t.Fatalf("cut %d: resumed drain: %v", cut, err)
		}
		if res.Events != uint64(n) {
			t.Fatalf("cut %d: resumed run accounts %d events, want %d", cut, res.Events, n)
		}
		if got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts); got != want {
			t.Fatalf("cut %d: resumed result diverges from sequential oracle\n got %.300s\nwant %.300s",
				cut, got, want)
		}
	}
}

// TestCrashPointSweepShardOwned is the same kill/restore sweep under the
// shard-owned ingest: with CheckpointEvery equal to the batch size, the
// phased DrainTrace checkpoints at every batch boundary. At each boundary
// the run is killed mid-flight (the checkpoint hook writes the snapshot,
// then aborts the drain), a fresh pipeline is restored from the bytes,
// and DrainTrace resumes on the same backing trace — the planner starts
// at the restored offset, no Skip. Every resumed run must be
// byte-identical to the clean shard-owned run, which itself must match
// the sequential oracle.
func TestCrashPointSweepShardOwned(t *testing.T) {
	const batchSize = 32
	const n = 4096
	rec := tracegen.Generate(tracegen.Spec{Seed: 21, Events: n, PIDs: 8, Quantum: 16})
	var wire bytes.Buffer
	if _, err := rec.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()

	seq := core.NewTracker(testCfg, nil)
	rec.Replay(seq)
	wantVerdicts := append([]core.SinkVerdict(nil), seq.Verdicts()...)
	core.SortVerdicts(wantVerdicts)
	want := fmt.Sprintf("%#v|%#v", seq.Stats(), wantVerdicts)

	opts := pipeline.Options{Workers: 4, BatchSize: batchSize, Config: testCfg}
	clean, err := pipeline.New(opts).DrainTrace(context.Background(), bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%#v|%#v", clean.Stats, clean.Verdicts); got != want {
		t.Fatalf("clean shard-owned run diverges from sequential oracle\n got %.300s\nwant %.300s", got, want)
	}

	errKilled := errors.New("sweep: killed at crash point")
	t.Logf("sweeping synthetic trace: %d events, %d crash points", n, n/batchSize)
	for cut := uint64(batchSize); cut <= n; cut += batchSize {
		// Run shard-owned to the crash point; the hook checkpoints there
		// and then kills the run.
		o := opts
		o.CheckpointEvery = batchSize
		var ckpt bytes.Buffer
		o.OnCheckpoint = func(p *pipeline.Pipeline) error {
			if p.Offset() != cut {
				return nil
			}
			if _, err := p.WriteCheckpoint(&ckpt); err != nil {
				return err
			}
			return errKilled
		}
		if _, err := pipeline.New(o).DrainTrace(context.Background(), bytes.NewReader(raw)); !errors.Is(err, errKilled) {
			t.Fatalf("cut %d: kill did not propagate: %v", cut, err)
		}

		// Restore from the snapshot and resume shard-owned.
		r2, err := pipeline.Restore(bytes.NewReader(ckpt.Bytes()), pipeline.Options{BatchSize: batchSize})
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		if r2.Offset() != cut {
			t.Fatalf("cut %d: restored offset %d", cut, r2.Offset())
		}
		res, err := r2.DrainTrace(context.Background(), bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("cut %d: resumed drain: %v", cut, err)
		}
		if res.Events != n {
			t.Fatalf("cut %d: resumed run accounts %d events, want %d", cut, res.Events, n)
		}
		if got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts); got != want {
			t.Fatalf("cut %d: resumed result diverges from sequential oracle\n got %.300s\nwant %.300s",
				cut, got, want)
		}
	}
}
