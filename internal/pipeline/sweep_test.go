package pipeline_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestCrashPointSweepDroidBench is the checkpoint/kill/restore sweep of
// the acceptance criteria: a real DroidBench trace is run through the
// pipeline with a checkpoint taken at every batch boundary; at each
// boundary the run is "killed" (fed a little further, then discarded), a
// fresh pipeline restored from the checkpoint bytes, the serialized trace
// re-opened and Skip()ed to the checkpoint offset, and the tail drained.
// Every resumed run must merge to byte-identical stats and canonically
// sorted verdicts against the sequential oracle.
func TestCrashPointSweepDroidBench(t *testing.T) {
	const batchSize = 32
	h := eval.NewHarness(1)
	apps := h.Apps()
	// Pick the longest trace of the suite so the sweep crosses many
	// batch boundaries and real window/taint state.
	var rec *trace.Recorder
	var appName string
	for _, a := range apps {
		r, err := h.AppTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil || r.Len() > rec.Len() {
			rec, appName = r, a.Name
		}
	}
	var wire bytes.Buffer
	if _, err := rec.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()
	n := rec.Len()
	t.Logf("sweeping %s: %d events, %d crash points", appName, n, n/batchSize+1)

	seq := core.NewTracker(testCfg, nil)
	rec.Replay(seq)
	wantVerdicts := append([]core.SinkVerdict(nil), seq.Verdicts()...)
	core.SortVerdicts(wantVerdicts)
	want := fmt.Sprintf("%#v|%#v", seq.Stats(), wantVerdicts)

	opts := pipeline.Options{Workers: 4, BatchSize: batchSize, Config: testCfg}
	crashPoints := []int{}
	for b := 0; b <= n; b += batchSize {
		crashPoints = append(crashPoints, b)
	}
	crashPoints = append(crashPoints, n) // resume-at-EOF edge
	for _, cut := range crashPoints {
		// Run to the crash point, checkpoint there.
		p := pipeline.New(opts)
		for _, ev := range rec.Events[:cut] {
			p.Event(ev)
		}
		var ckpt bytes.Buffer
		if _, err := p.WriteCheckpoint(&ckpt); err != nil {
			t.Fatalf("cut %d: WriteCheckpoint: %v", cut, err)
		}
		// "Kill": let the doomed run continue a bit, then discard it.
		for _, ev := range rec.Events[cut:min(cut+2*batchSize, n)] {
			p.Event(ev)
		}
		p.Close()

		// Restore and resume from the serialized trace at the offset.
		r2, err := pipeline.Restore(bytes.NewReader(ckpt.Bytes()), pipeline.Options{BatchSize: batchSize})
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		src, err := trace.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Skip(r2.Offset()); err != nil {
			t.Fatalf("cut %d: Skip(%d): %v", cut, r2.Offset(), err)
		}
		res, err := r2.Drain(context.Background(), src)
		if err != nil {
			t.Fatalf("cut %d: resumed drain: %v", cut, err)
		}
		if res.Events != uint64(n) {
			t.Fatalf("cut %d: resumed run accounts %d events, want %d", cut, res.Events, n)
		}
		if got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts); got != want {
			t.Fatalf("cut %d: resumed result diverges from sequential oracle\n got %.300s\nwant %.300s",
				cut, got, want)
		}
	}
}
