package pipeline_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/trace/tracegen"
)

// TestSeededResumeParity is the session-embedding contract: replay a
// prefix on one sequential tracker (a live session), split it by PID
// with the pipeline's own shard function, seed a pipeline at the prefix
// offset, drain the full wire stream (DrainTrace skips the prefix), and
// the merged outcome must match a fresh pipeline that saw everything.
func TestSeededResumeParity(t *testing.T) {
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	spec := tracegen.Spec{Seed: 4, Events: 80000}
	rec := tracegen.Generate(spec)
	var wire bytes.Buffer
	if _, err := rec.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}

	ref := pipeline.New(pipeline.Options{Workers: 4, Config: cfg})
	refRes, err := ref.DrainTrace(context.Background(), bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int{0, 1, len(rec.Events) / 2, len(rec.Events)} {
		prefix := core.NewTracker(cfg, nil)
		for _, ev := range rec.Events[:off] {
			prefix.Event(ev)
		}
		parts, err := prefix.SplitByPID(4, func(pid uint32) int { return pipeline.ShardOf(pid, 4) })
		if err != nil {
			t.Fatal(err)
		}
		p, err := pipeline.NewSeeded(pipeline.Options{}, parts, uint64(off))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.DrainTrace(context.Background(), bytes.NewReader(wire.Bytes()))
		if err != nil {
			t.Fatalf("off=%d: %v", off, err)
		}
		if !reflect.DeepEqual(res.Verdicts, refRes.Verdicts) {
			t.Fatalf("off=%d: verdicts diverge: %d vs %d", off, len(res.Verdicts), len(refRes.Verdicts))
		}
		// Counters are exact; watermarks may only legitimately differ when
		// the seeded prefix tracker observed cross-PID totals no single
		// shard sees, so compare everything else.
		a, b := res.Stats, refRes.Stats
		a.MaxBytes, a.MaxRanges = 0, 0
		b.MaxBytes, b.MaxRanges = 0, 0
		if a != b {
			t.Fatalf("off=%d: counters diverge:\nseeded %+v\nfresh  %+v", off, a, b)
		}
		// ShardTrackers is valid after Close (DrainTrace closed the
		// pipeline); an external merge must agree with the drain result.
		merged, err := core.MergeTrackers(p.ShardTrackers())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(merged.Verdicts(), refRes.Verdicts) {
			t.Fatalf("off=%d: external merge diverges from drain result", off)
		}
	}
}

func TestNewSeededValidation(t *testing.T) {
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	seed := func(c core.Config) *core.Tracker { return core.NewTracker(c, nil) }

	if _, err := pipeline.NewSeeded(pipeline.Options{}, nil, 0); err == nil {
		t.Fatal("zero trackers accepted")
	}
	if _, err := pipeline.NewSeeded(pipeline.Options{Workers: 3}, []*core.Tracker{seed(cfg), seed(cfg)}, 0); err == nil {
		t.Fatal("conflicting Workers accepted")
	}
	if _, err := pipeline.NewSeeded(pipeline.Options{NewStore: func() core.Store { return core.NewIdealStore() }},
		[]*core.Tracker{seed(cfg)}, 0); err == nil {
		t.Fatal("NewStore accepted alongside seeds")
	}
	if _, err := pipeline.NewSeeded(pipeline.Options{},
		[]*core.Tracker{seed(cfg), seed(core.Config{NI: 7, NT: 2})}, 0); err == nil {
		t.Fatal("mismatched seed configs accepted")
	}
	if _, err := pipeline.NewSeeded(pipeline.Options{Config: core.Config{NI: 7, NT: 2}},
		[]*core.Tracker{seed(cfg)}, 0); err == nil {
		t.Fatal("conflicting Config accepted")
	}

	p, err := pipeline.NewSeeded(pipeline.Options{}, []*core.Tracker{seed(cfg), seed(cfg)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.Offset(); got != 100 {
		t.Fatalf("seeded offset = %d, want 100", got)
	}
	if got := len(p.ShardTrackers()); got != 2 {
		t.Fatalf("ShardTrackers len = %d, want 2", got)
	}
}
