package pipeline_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// parityKey reduces a run to a comparable string: stats plus canonically
// sorted verdicts. Byte-identical across wire formats on the same path
// and worker count.
func parityKey(stats core.Stats, verdicts []core.SinkVerdict) string {
	v := append([]core.SinkVerdict(nil), verdicts...)
	core.SortVerdicts(v)
	return fmt.Sprintf("%#v|%#v", stats, v)
}

// oracleKey is parityKey with the watermark fields masked: MaxBytes and
// MaxRanges are per-shard maxima, so on multi-process streams they are
// only comparable between runs at the same worker count, not against the
// sequential tracker.
func oracleKey(stats core.Stats, verdicts []core.SinkVerdict) string {
	stats.MaxBytes, stats.MaxRanges = 0, 0
	return parityKey(stats, verdicts)
}

// TestDrainTraceV2Parity is the cross-format acceptance matrix: the same
// workloads serialized as PIFTTRC1 and PIFTTRC2 must produce
// byte-identical stats and verdicts on the sequential oracle, the
// dispatcher Drain, and the shard-owned DrainTrace at 1/2/4/8 workers.
func TestDrainTraceV2Parity(t *testing.T) {
	workloads := map[string]*trace.Recorder{
		"synthetic": tracegen.Generate(tracegen.Spec{Seed: 99, Events: 3*trace.DefaultBlockEvents + 777}),
	}
	h := eval.NewHarness(1)
	var longest *trace.Recorder
	for _, a := range h.Apps() {
		r, err := h.AppTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		if longest == nil || r.Len() > longest.Len() {
			longest = r
		}
	}
	workloads["droidbench"] = longest

	for name, rec := range workloads {
		t.Run(name, func(t *testing.T) {
			seq := core.NewTracker(testCfg, nil)
			rec.Replay(seq)
			want := oracleKey(seq.Stats(), seq.Verdicts())

			wire := map[trace.Format][]byte{}
			for _, f := range []trace.Format{trace.FormatV1, trace.FormatV2} {
				var buf bytes.Buffer
				if _, err := rec.WriteToFormat(&buf, f); err != nil {
					t.Fatal(err)
				}
				wire[f] = buf.Bytes()
			}
			if 4*len(wire[trace.FormatV2]) > len(wire[trace.FormatV1]) {
				t.Errorf("v2 is only %.2fx smaller than v1 (%d vs %d bytes), want ≥4x",
					float64(len(wire[trace.FormatV1]))/float64(len(wire[trace.FormatV2])),
					len(wire[trace.FormatV1]), len(wire[trace.FormatV2]))
			}

			// Each consumption path runs once per format; the two runs
			// must agree byte for byte (including watermarks — same path,
			// same worker count), and both must match the sequential
			// oracle on everything but the per-shard watermarks.
			runDrain := func(raw []byte) (pipeline.Result, error) {
				sr, err := trace.NewReader(bytes.NewReader(raw))
				if err != nil {
					return pipeline.Result{}, err
				}
				return pipeline.New(pipeline.Options{Workers: 4, BatchSize: 256, Config: testCfg}).
					Drain(context.Background(), sr)
			}
			paths := map[string]func([]byte) (pipeline.Result, error){"Drain@4": runDrain}
			for _, workers := range []int{1, 2, 4, 8} {
				w := workers
				paths[fmt.Sprintf("DrainTrace@%d", w)] = func(raw []byte) (pipeline.Result, error) {
					return pipeline.New(pipeline.Options{Workers: w, BatchSize: 256, Config: testCfg}).
						DrainTrace(context.Background(), bytes.NewReader(raw))
				}
			}
			for path, run := range paths {
				v1res, err := run(wire[trace.FormatV1])
				if err != nil {
					t.Fatalf("%s over v1: %v", path, err)
				}
				v2res, err := run(wire[trace.FormatV2])
				if err != nil {
					t.Fatalf("%s over v2: %v", path, err)
				}
				if v2res.Events != uint64(rec.Len()) {
					t.Fatalf("%s over v2: accounted %d events, want %d", path, v2res.Events, rec.Len())
				}
				if g1, g2 := parityKey(v1res.Stats, v1res.Verdicts), parityKey(v2res.Stats, v2res.Verdicts); g1 != g2 {
					t.Fatalf("%s: v1 and v2 results differ\n  v1 %.300s\n  v2 %.300s", path, g1, g2)
				}
				if got := oracleKey(v2res.Stats, v2res.Verdicts); got != want {
					t.Fatalf("%s: diverges from sequential oracle\n got %.300s\nwant %.300s", path, got, want)
				}
			}
		})
	}
}

// TestCrashPointSweepV2 is the kill/restore sweep on the v2 path: the
// shard-owned drain over a multi-block compressed trace checkpoints at
// every CheckpointEvery boundary — including offsets that land mid-block,
// where resume has to decode the containing block and discard the prefix.
func TestCrashPointSweepV2(t *testing.T) {
	const checkpointEvery = 1024
	const n = 3*trace.DefaultBlockEvents + 300
	rec := tracegen.Generate(tracegen.Spec{Seed: 23, Events: n, PIDs: 8, Quantum: 48})
	var wire bytes.Buffer
	if _, err := rec.WriteToFormat(&wire, trace.FormatV2); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()

	seq := core.NewTracker(testCfg, nil)
	rec.Replay(seq)

	opts := pipeline.Options{Workers: 4, BatchSize: 256, Config: testCfg}
	clean, err := pipeline.New(opts).DrainTrace(context.Background(), bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got, oracle := oracleKey(clean.Stats, clean.Verdicts), oracleKey(seq.Stats(), seq.Verdicts()); got != oracle {
		t.Fatalf("clean v2 run diverges from sequential oracle\n got %.300s\nwant %.300s", got, oracle)
	}
	// Resumed runs are compared against the clean run at the same worker
	// count, where per-shard watermarks are preserved exactly.
	want := parityKey(clean.Stats, clean.Verdicts)

	errKilled := errors.New("sweep: killed at crash point")
	t.Logf("sweeping v2 trace: %d events, %d crash points", n, n/checkpointEvery)
	for cut := uint64(checkpointEvery); cut <= n; cut += checkpointEvery {
		o := opts
		o.CheckpointEvery = checkpointEvery
		var ckpt bytes.Buffer
		o.OnCheckpoint = func(p *pipeline.Pipeline) error {
			if p.Offset() != cut {
				return nil
			}
			if _, err := p.WriteCheckpoint(&ckpt); err != nil {
				return err
			}
			return errKilled
		}
		if _, err := pipeline.New(o).DrainTrace(context.Background(), bytes.NewReader(raw)); !errors.Is(err, errKilled) {
			t.Fatalf("cut %d: kill did not propagate: %v", cut, err)
		}

		r2, err := pipeline.Restore(bytes.NewReader(ckpt.Bytes()), pipeline.Options{BatchSize: 256})
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		if r2.Offset() != cut {
			t.Fatalf("cut %d: restored offset %d", cut, r2.Offset())
		}
		res, err := r2.DrainTrace(context.Background(), bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("cut %d: resumed drain: %v", cut, err)
		}
		if res.Events != n {
			t.Fatalf("cut %d: resumed run accounts %d events, want %d", cut, res.Events, n)
		}
		if got := parityKey(res.Stats, res.Verdicts); got != want {
			t.Fatalf("cut %d: resumed result diverges from the clean run\n got %.300s\nwant %.300s",
				cut, got, want)
		}
	}
}
