package pipeline_test

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// sliceSource adapts an event slice to pipeline.EventSource.
type sliceSource struct {
	evs []cpu.Event
	i   int
}

func (s *sliceSource) Next() (cpu.Event, error) {
	if s.i >= len(s.evs) {
		return cpu.Event{}, io.EOF
	}
	ev := s.evs[s.i]
	s.i++
	return ev, nil
}

// TestWorkerPanicReported drives far more events than the worker queues
// can hold through a pipeline whose observer panics early. The panic must
// not hang the dispatcher (the poisoned worker keeps draining) and must
// surface as an error from Run and in Result.Err, not as a process crash.
func TestWorkerPanicReported(t *testing.T) {
	evs := syntheticStream(100_000, 1, 11) // one PID: every event hits the poisoned worker
	var n atomic.Uint64
	res, err := pipeline.Run(&sliceSource{evs: evs}, pipeline.Options{
		Workers:    2,
		BatchSize:  64,
		QueueDepth: 2,
		Config:     testCfg,
		Observer: func(worker int, ev cpu.Event) {
			if n.Add(1) == 1000 {
				panic("injected failure")
			}
		},
	})
	if err == nil {
		t.Fatal("Run returned nil error after a worker panic")
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "injected failure") ||
		!strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("Result.Err = %v, want worker panic report", res.Err)
	}
	if res.Events != uint64(len(evs)) {
		t.Fatalf("dispatcher stopped early: %d of %d events dispatched", res.Events, len(evs))
	}
}

// TestWorkerPanicKeepsHealthyShards: a panic on one shard must not
// corrupt the results of the others.
func TestWorkerPanicKeepsHealthyShards(t *testing.T) {
	// PID 1 carries a working stream; PID 2 only exists to panic its
	// worker. With ≥ 2 workers the two PIDs may share a shard (hash), so
	// pick PIDs that land on different workers.
	const workers = 4
	evs := syntheticStream(20_000, 1, 12) // all PID 1
	poison := cpu.Event{Kind: cpu.EvLoad, PID: 2, Seq: 1, Range: mem.MakeRange(0, 4)}
	if pipeline.ShardOf(poison.PID, workers) == pipeline.ShardOf(1, workers) {
		t.Skip("PIDs 1 and 2 share a shard at this worker count")
	}
	seq, wantVerdicts := sequentialOracle(evs, testCfg)

	all := append([]cpu.Event{poison}, evs...)
	res, err := pipeline.Run(&sliceSource{evs: all}, pipeline.Options{
		Workers: workers,
		Config:  testCfg,
		Observer: func(worker int, ev cpu.Event) {
			if ev.PID == 2 {
				panic("poison pill")
			}
		},
	})
	if err == nil || res.Err == nil {
		t.Fatal("expected the poisoned shard's panic to be reported")
	}
	// The healthy shard's results must be complete and correct.
	if res.Stats.SinkChecks != seq.SinkChecks || res.Stats.TaintOps != seq.TaintOps {
		t.Fatalf("healthy shard stats corrupted: got %+v, want %+v", res.Stats, seq)
	}
	if len(res.Verdicts) != len(wantVerdicts) {
		t.Fatalf("healthy shard verdicts lost: %d, want %d", len(res.Verdicts), len(wantVerdicts))
	}
}

// endlessSource produces events forever; only cancellation can stop a
// Run over it.
type endlessSource struct {
	seq    uint64
	cancel func()
	after  uint64
}

func (s *endlessSource) Next() (cpu.Event, error) {
	s.seq++
	if s.cancel != nil && s.seq == s.after {
		s.cancel()
	}
	return cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: s.seq,
		Range: mem.MakeRange(mem.Addr(s.seq%4096), 4)}, nil
}

// TestRunContextCancellation: RunContext must return promptly with the
// context's error once it is canceled, releasing all worker goroutines,
// even though the source never ends.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := &endlessSource{cancel: cancel, after: 50_000}
	done := make(chan error, 1)
	go func() {
		_, err := pipeline.RunContext(ctx, src, pipeline.Options{Workers: 2, Config: testCfg})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not honor cancellation")
	}
}

// TestRunContextPreCanceled: an already-canceled context stops the run
// before any event is consumed.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &endlessSource{}
	_, err := pipeline.RunContext(ctx, src, pipeline.Options{Workers: 1, Config: testCfg})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.seq != 0 {
		t.Fatalf("source consumed %d events under a dead context", src.seq)
	}
}

// TestMetricsConsistentUnderLoad samples the queue-depth gauge from a
// separate goroutine while the pipeline runs under real backpressure
// (slow observer, tiny queues) and checks the invariants: depth never
// negative, never above capacity+workers (one batch may be in flight per
// worker), zero once drained, and the dispatch counters mutually
// consistent. Run under -race this also proves the gauges are safe to
// scrape concurrently.
func TestMetricsConsistentUnderLoad(t *testing.T) {
	const workers, queueDepth, batch = 4, 2, 32
	reg := metrics.NewRegistry()
	pm := pipeline.NewPipelineMetrics(reg)
	evs := syntheticStream(60_000, 8, 13)

	stop := make(chan struct{})
	sampled := make(chan int64, 1)
	go func() {
		var peak int64
		for {
			select {
			case <-stop:
				sampled <- peak
				return
			default:
			}
			d := pm.QueueDepth.Value()
			if d < 0 {
				t.Errorf("queue depth went negative: %d", d)
				sampled <- peak
				return
			}
			if d > peak {
				peak = d
			}
		}
	}()

	res, err := pipeline.Run(&sliceSource{evs: evs}, pipeline.Options{
		Workers:    workers,
		BatchSize:  batch,
		QueueDepth: queueDepth,
		Config:     testCfg,
		Metrics:    reg,
		Observer: func(worker int, ev cpu.Event) {
			if ev.Seq%1024 == 0 {
				time.Sleep(50 * time.Microsecond) // force real backpressure
			}
		},
	})
	close(stop)
	peak := <-sampled
	if err != nil {
		t.Fatal(err)
	}

	// Every batch dispatched was fully analyzed: depth is back to zero.
	if d := pm.QueueDepth.Value(); d != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", d)
	}
	// A worker holds at most one batch beyond its queue, and the
	// dispatcher's increment-before-send can overshoot by the one batch
	// it is still handing off.
	if maxDepth := int64(workers*(queueDepth+1) + 1); peak > maxDepth {
		t.Fatalf("sampled queue depth %d exceeds bound %d", peak, maxDepth)
	}
	if got := pm.EventsDispatched.Value(); got != uint64(len(evs)) {
		t.Fatalf("events dispatched = %d, want %d", got, len(evs))
	}
	if pm.BatchesDispatched.Value() == 0 {
		t.Fatal("no batches recorded")
	}
	if got := pm.BatchEvents.Count(); got != pm.BatchesDispatched.Value() {
		t.Fatalf("batch histogram count %d != batches dispatched %d",
			got, pm.BatchesDispatched.Value())
	}
	if got := uint64(pm.BatchEvents.Sum()); got != uint64(len(evs)) {
		t.Fatalf("batch histogram sum %d != events %d", got, len(evs))
	}
	if got, want := pm.BatchSeconds.Count(), pm.BatchesDispatched.Value(); got != want {
		t.Fatalf("batch latency observations %d != batches %d", got, want)
	}
	if pm.QueueDepthHigh.Value() < peak {
		t.Fatalf("high-water %d below sampled peak %d", pm.QueueDepthHigh.Value(), peak)
	}
	if res.Stats.Loads+res.Stats.Stores == 0 {
		t.Fatal("tracker metrics never saw the stream")
	}
}

// TestPipelineMetricsParity: instrumenting a pipeline must not change
// its merged result.
func TestPipelineMetricsParity(t *testing.T) {
	evs := syntheticStream(30_000, 5, 14)
	wantStats, wantVerdicts := sequentialOracle(evs, testCfg)

	reg := metrics.NewRegistry()
	p := pipeline.New(pipeline.Options{Workers: 4, Config: testCfg, Metrics: reg})
	for _, ev := range evs {
		p.Event(ev)
	}
	res := p.Close()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Counters must be exact; the watermarks are per-shard maxima on a
	// multi-process stream, so they may only be ≤ the sequential values.
	cmp := res.Stats
	cmp.MaxBytes, cmp.MaxRanges = wantStats.MaxBytes, wantStats.MaxRanges
	if cmp != wantStats {
		t.Fatalf("stats diverge under instrumentation:\n got %+v\nwant %+v", res.Stats, wantStats)
	}
	if res.Stats.MaxBytes > wantStats.MaxBytes || res.Stats.MaxRanges > wantStats.MaxRanges {
		t.Fatalf("watermarks %d/%d exceed sequential %d/%d",
			res.Stats.MaxBytes, res.Stats.MaxRanges, wantStats.MaxBytes, wantStats.MaxRanges)
	}
	if len(res.Verdicts) != len(wantVerdicts) {
		t.Fatalf("verdicts diverge: %d vs %d", len(res.Verdicts), len(wantVerdicts))
	}
	for i := range wantVerdicts {
		if res.Verdicts[i] != wantVerdicts[i] {
			t.Fatalf("verdict %d diverges", i)
		}
	}
	// The merge gauge was set and the sum of tracker metrics matches the
	// merged stats.
	pm := pipeline.NewPipelineMetrics(reg)
	if pm.MergeNanos.Value() <= 0 {
		t.Fatal("merge duration gauge not set")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pift_tracker_taint_adds_total"]; got != wantStats.TaintOps {
		t.Fatalf("aggregated taint adds = %d, want %d", got, wantStats.TaintOps)
	}
	if got := snap.Counters["pift_tracker_sink_checks_total"]; got != wantStats.SinkChecks {
		t.Fatalf("aggregated sink checks = %d, want %d", got, wantStats.SinkChecks)
	}
}
