package pipeline_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestPipelineDeterminismDroidBench is the acceptance property: every
// DroidBench trace, analyzed by the pipeline at 1/2/4/8 workers, must
// produce output byte-identical to the sequential tracker's — same merged
// Stats (DroidBench traces are single-process, so even the watermarks
// must match exactly) and same canonically ordered sink verdicts. Run
// under -race this also exercises the concurrency layer for data races.
func TestPipelineDeterminismDroidBench(t *testing.T) {
	h := eval.NewHarness(4)
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	for _, app := range h.Apps() {
		rec, err := h.AppTrace(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		seq := core.NewTracker(cfg, nil)
		rec.Replay(seq)
		verdicts := append([]core.SinkVerdict(nil), seq.Verdicts()...)
		core.SortVerdicts(verdicts)
		want := fmt.Sprintf("%#v|%#v", seq.Stats(), verdicts)
		for _, workers := range []int{1, 2, 4, 8} {
			p := pipeline.New(pipeline.Options{Workers: workers, Config: cfg})
			rec.Replay(p)
			res := p.Close()
			got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts)
			if got != want {
				t.Errorf("%s @ %d workers diverges from sequential:\n got %s\nwant %s",
					app.Name, workers, got, want)
			}
		}
	}
}

// TestPipelineDeterminismInterleaved runs the same property on a genuine
// multi-process stream: a subset of app traces remapped to distinct PIDs
// and interleaved with a context-switch quantum, so events of different
// processes really do land on different workers. Counters and verdicts
// must still match the sequential oracle exactly; the watermarks may only
// be bounded above by it (they become per-shard maxima).
func TestPipelineDeterminismInterleaved(t *testing.T) {
	h := eval.NewHarness(4)
	apps := h.Apps()
	if len(apps) > 12 {
		apps = apps[:12]
	}
	streams := make([][]cpu.Event, 0, len(apps))
	for i, app := range apps {
		rec, err := h.AppTrace(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		pid := uint32(i + 1)
		evs := make([]cpu.Event, len(rec.Events))
		for j, ev := range rec.Events {
			ev.PID = pid
			evs[j] = ev
		}
		streams = append(streams, evs)
	}
	merged := trace.Interleave(64, streams...)
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	wantStats, wantVerdicts := func() (core.Stats, []core.SinkVerdict) {
		tr := core.NewTracker(cfg, nil)
		for _, ev := range merged {
			tr.Event(ev)
		}
		vs := append([]core.SinkVerdict(nil), tr.Verdicts()...)
		core.SortVerdicts(vs)
		return tr.Stats(), vs
	}()

	for _, workers := range []int{1, 2, 4, 8} {
		p := pipeline.New(pipeline.Options{Workers: workers, Config: cfg})
		for _, ev := range merged {
			p.Event(ev)
		}
		res := p.Close()
		if got, want := fmt.Sprintf("%#v", res.Verdicts), fmt.Sprintf("%#v", wantVerdicts); got != want {
			t.Errorf("interleaved @ %d workers: verdicts differ", workers)
		}
		cmp := res.Stats
		cmp.MaxBytes, cmp.MaxRanges = wantStats.MaxBytes, wantStats.MaxRanges
		if cmp != wantStats {
			t.Errorf("interleaved @ %d workers: counters %+v, want %+v", workers, res.Stats, wantStats)
		}
		if res.Stats.MaxBytes > wantStats.MaxBytes || res.Stats.MaxRanges > wantStats.MaxRanges {
			t.Errorf("interleaved @ %d workers: watermarks exceed sequential", workers)
		}
	}
}
