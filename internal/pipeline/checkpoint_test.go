package pipeline_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/pipeline"
)

// resultKey canonicalizes the comparable part of a merged result. The
// watermarks are per-shard maxima on multi-process streams, so resumed-
// versus-clean comparisons at the SAME worker count may include them —
// per-shard state is preserved exactly across checkpoint/restore.
func resultKey(stats core.Stats, verdicts []core.SinkVerdict, events uint64) string {
	return fmt.Sprintf("%#v|%#v|%d", stats, verdicts, events)
}

// cleanPipelineRun replays evs through a fresh pipeline.
func cleanPipelineRun(t *testing.T, evs []cpu.Event, opts pipeline.Options) pipeline.Result {
	t.Helper()
	p := pipeline.New(opts)
	for _, ev := range evs {
		p.Event(ev)
	}
	res := p.Close()
	if res.Err != nil {
		t.Fatalf("clean run failed: %v", res.Err)
	}
	return res
}

// TestCheckpointResumeEquivalence cuts a multi-process synthetic stream
// at assorted offsets — batch-aligned and not — checkpoints there, keeps
// feeding the original pipeline past the cut (the "kill" then discards
// it), restores a second pipeline from the checkpoint bytes, feeds it the
// tail, and demands a byte-identical merged result.
func TestCheckpointResumeEquivalence(t *testing.T) {
	evs := syntheticStream(40_000, 6, 21)
	opts := pipeline.Options{Workers: 4, BatchSize: 64, Config: testCfg}
	want := cleanPipelineRun(t, evs, opts)
	wantKey := resultKey(want.Stats, want.Verdicts, want.Events)

	for _, cut := range []int{0, 1, 63, 64, 65, 8_192, 20_011, 39_999, 40_000} {
		p := pipeline.New(opts)
		for _, ev := range evs[:cut] {
			p.Event(ev)
		}
		var ckpt bytes.Buffer
		if _, err := p.WriteCheckpoint(&ckpt); err != nil {
			t.Fatalf("cut %d: WriteCheckpoint: %v", cut, err)
		}
		// Simulate the crash: the original keeps running past the
		// checkpoint, then its progress is discarded.
		for _, ev := range evs[cut:min(cut+500, len(evs))] {
			p.Event(ev)
		}
		p.Close()

		r, err := pipeline.Restore(bytes.NewReader(ckpt.Bytes()), pipeline.Options{BatchSize: 64})
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		if r.Offset() != uint64(cut) {
			t.Fatalf("cut %d: restored offset %d", cut, r.Offset())
		}
		if r.Workers() != opts.Workers {
			t.Fatalf("cut %d: restored workers %d, want %d", cut, r.Workers(), opts.Workers)
		}
		for _, ev := range evs[cut:] {
			r.Event(ev)
		}
		res := r.Close()
		if res.Err != nil {
			t.Fatalf("cut %d: resumed run failed: %v", cut, res.Err)
		}
		if got := resultKey(res.Stats, res.Verdicts, res.Events); got != wantKey {
			t.Fatalf("cut %d: resumed result diverges from clean run\n got %.200s\nwant %.200s", cut, got, wantKey)
		}
	}
}

// TestCheckpointDeterministic: checkpointing the same prefix twice — even
// across distinct pipelines — yields identical bytes.
func TestCheckpointDeterministic(t *testing.T) {
	evs := syntheticStream(10_000, 4, 5)
	opts := pipeline.Options{Workers: 3, BatchSize: 32, Config: testCfg}
	var want []byte
	for trial := 0; trial < 3; trial++ {
		p := pipeline.New(opts)
		for _, ev := range evs {
			p.Event(ev)
		}
		var buf bytes.Buffer
		if _, err := p.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		p.Close()
		if trial == 0 {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("trial %d: checkpoint bytes differ", trial)
		}
	}
}

// TestCheckpointUsableMidStream: Sync/WriteCheckpoint are barriers, not
// shutdowns — the pipeline must keep analyzing afterwards, and repeated
// checkpoints must each capture the then-current offset.
func TestCheckpointUsableMidStream(t *testing.T) {
	evs := syntheticStream(9_000, 3, 9)
	opts := pipeline.Options{Workers: 2, BatchSize: 16, Config: testCfg}
	want := cleanPipelineRun(t, evs, opts)

	p := pipeline.New(opts)
	var offsets []uint64
	for i, ev := range evs {
		p.Event(ev)
		if (i+1)%2_000 == 0 {
			var buf bytes.Buffer
			if _, err := p.WriteCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			offsets = append(offsets, p.Offset())
		}
	}
	res := p.Close()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got, wantK := resultKey(res.Stats, res.Verdicts, res.Events),
		resultKey(want.Stats, want.Verdicts, want.Events); got != wantK {
		t.Fatal("checkpointing mid-stream changed the merged result")
	}
	for i, off := range offsets {
		if off != uint64(2_000*(i+1)) {
			t.Fatalf("checkpoint %d at offset %d", i, off)
		}
	}
}

// TestRestoreRejectsCorruption: bad magic, flipped payload bits (CRC),
// truncations, and conflicting options must all fail loudly.
func TestRestoreRejectsCorruption(t *testing.T) {
	evs := syntheticStream(5_000, 3, 2)
	p := pipeline.New(pipeline.Options{Workers: 2, Config: testCfg})
	for _, ev := range evs {
		p.Event(ev)
	}
	var buf bytes.Buffer
	if _, err := p.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	p.Close()
	full := buf.Bytes()

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), full...)
		mutate(b)
		_, err := pipeline.Restore(bytes.NewReader(b), pipeline.Options{})
		return err
	}
	if err := corrupt(func(b []byte) { b[0] ^= 1 }); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := corrupt(func(b []byte) { b[len(b)/2] ^= 0x10 }); err == nil {
		t.Fatal("bit flip in payload accepted (CRC failed to catch it)")
	}
	if err := corrupt(func(b []byte) { b[len(b)-1] ^= 0xff }); err == nil {
		t.Fatal("bit flip in CRC trailer accepted")
	}
	for _, cut := range []int{0, 7, 8, 15, 16, len(full) / 2, len(full) - 1} {
		if _, err := pipeline.Restore(bytes.NewReader(full[:cut]), pipeline.Options{}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := pipeline.Restore(bytes.NewReader(full), pipeline.Options{Workers: 5}); err == nil {
		t.Fatal("conflicting worker count accepted")
	}
	if _, err := pipeline.Restore(bytes.NewReader(full), pipeline.Options{
		Config: core.Config{NI: 99, NT: 1},
	}); err == nil {
		t.Fatal("conflicting config accepted")
	}
	if _, err := pipeline.Restore(bytes.NewReader(full), pipeline.Options{
		NewStore: func() core.Store { return core.NewIdealStore() },
	}); err == nil {
		t.Fatal("restore with NewStore accepted")
	}
	// The pristine checkpoint must still restore (the mutations above
	// worked on copies).
	r, err := pipeline.Restore(bytes.NewReader(full), pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}
