package pipeline

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/metrics"
)

// Default tuning parameters. The batch size amortizes channel send/receive
// overhead across many events (one synchronization per ~256 events keeps
// dispatch cost well under the tracker's per-event work); the queue depth
// bounds how far a worker may fall behind before the dispatcher blocks.
const (
	DefaultBatchSize  = 256
	DefaultQueueDepth = 8
)

// Options configures a Pipeline.
type Options struct {
	// Workers is the number of analysis goroutines; events are sharded
	// onto them by PID. Defaults to GOMAXPROCS.
	Workers int
	// BatchSize is how many events the dispatcher accumulates per shard
	// before handing the batch to the worker. Defaults to
	// DefaultBatchSize.
	BatchSize int
	// QueueDepth is the per-worker channel capacity, in batches. Once a
	// worker's queue is full the dispatcher blocks — explicit
	// backpressure, never drops. Defaults to DefaultQueueDepth.
	QueueDepth int
	// Config holds the tainting-window parameters every worker's tracker
	// runs with. Invalid configs panic in New, matching core.NewTracker.
	Config core.Config
	// NewStore builds each worker's taint store; nil means a fresh
	// unbounded IdealStore per worker. Note that bounded stores size
	// per worker: capacity-induced evictions then depend on the shard
	// layout, unlike the exact per-PID semantics of the ideal store.
	NewStore func() core.Store
	// Observer, when non-nil, is invoked on the worker goroutine for
	// every event just before the tracker consumes it. It exists for
	// tests and metrics; it must not call back into the pipeline.
	Observer func(worker int, ev cpu.Event)
	// Metrics, when non-nil, instruments the pipeline and every worker
	// tracker against this registry (see NewPipelineMetrics and
	// core.NewTrackerMetrics for the metric names). Nil runs
	// uninstrumented at zero cost beyond predicted branches.
	Metrics *metrics.Registry
	// MaxRestarts is the per-shard restart budget K: a worker that
	// panics restarts — skips the poisonous event and resumes the batch —
	// up to K times. The panic after that marks the shard failed: its
	// remaining batches are discarded (counted in the shard's fault
	// report) while every other shard completes normally, and the merged
	// Result comes back Degraded instead of the run hanging or losing
	// everything. 0 — the default — fails a shard on its first panic.
	MaxRestarts int
	// CheckpointEvery asks Drain/RunContext to quiesce the pipeline and
	// invoke OnCheckpoint every that many dispatched events (counted from
	// stream start, so a resumed run keeps the original cadence). 0
	// disables periodic checkpoints.
	CheckpointEvery uint64
	// OnCheckpoint receives the quiesced pipeline at each checkpoint
	// boundary; it typically calls WriteCheckpoint into durable storage.
	// An error aborts the run — a checkpoint that cannot be written must
	// not be silently skipped.
	OnCheckpoint func(p *Pipeline) error
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize < 1 {
		o.BatchSize = DefaultBatchSize
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.MaxRestarts < 0 {
		o.MaxRestarts = 0
	}
	return o
}
