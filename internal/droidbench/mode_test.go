package droidbench

import (
	"testing"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/trace"
)

// TestSuiteUnderAOT runs the full suite under the ART-style ahead-of-time
// translation (§4.1) at the paper's configuration: accuracy must not
// degrade — no false positives, and every flow PIFT catches under the
// interpreter is still caught when the interpreter scaffolding (and its
// extra distance) is compiled away.
func TestSuiteUnderAOT(t *testing.T) {
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	for _, a := range Suite() {
		rec := trace.NewRecorder(1 << 14)
		if _, err := android.Run(a.Prog, android.RunOptions{
			Sinks: []cpu.EventSink{rec},
			Mode:  dalvik.ModeAOT,
		}); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		det := detectedAt(rec, cfg)
		if det && !a.Leaky {
			t.Errorf("%s: false positive under AOT", a.Name)
		}
		// AOT shortens every load→store distance, so any app detected
		// under the interpreter must still be detected; the implicit
		// flow may flip from missed to caught (distances shrink), which
		// is fine.
		if !det && a.Leaky && a.Name != "ImplicitSwitch" {
			t.Errorf("%s: missed under AOT", a.Name)
		}
	}
}

// TestSuitePayloadsIdenticalAcrossModes spot-checks semantic equivalence
// of the translation tiers on real applications: identical sink payloads.
func TestSuitePayloadsIdenticalAcrossModes(t *testing.T) {
	picks := map[string]bool{
		"DirectImeiSms": true, "XorImeiHttp": true, "ArrayImeiSms": true,
		"LocationHttp": true, "ImplicitSwitch": true, "LongObfuscation": true,
	}
	for _, a := range Suite() {
		if !picks[a.Name] {
			continue
		}
		var payloads []string
		for _, mode := range []dalvik.Mode{dalvik.ModeInterp, dalvik.ModeJIT, dalvik.ModeAOT} {
			res, err := android.Run(a.Prog, android.RunOptions{Mode: mode})
			if err != nil {
				t.Fatalf("%s under %v: %v", a.Name, mode, err)
			}
			if len(res.Sinks) == 0 {
				t.Fatalf("%s under %v: no sink call", a.Name, mode)
			}
			payloads = append(payloads, res.Sinks[0].Payload)
		}
		if payloads[0] != payloads[1] || payloads[1] != payloads[2] {
			t.Errorf("%s: payloads differ across modes: %q", a.Name, payloads)
		}
	}
}
