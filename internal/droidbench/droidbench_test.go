package droidbench

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/trace"
)

func TestSuiteComposition(t *testing.T) {
	apps := Suite()
	if len(apps) != 57 {
		t.Fatalf("suite has %d apps, want 57", len(apps))
	}
	leaky, benign := Counts(apps)
	if leaky != 41 || benign != 16 {
		t.Fatalf("composition %d leaky / %d benign, want 41/16", leaky, benign)
	}
	sub := Subset()
	if len(sub) != 48 {
		t.Fatalf("subset has %d apps, want 48", len(sub))
	}
	sl, sb := Counts(sub)
	if sl != 36 || sb != 12 {
		t.Fatalf("subset composition %d/%d, want 36/12", sl, sb)
	}
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		names[a.Name] = true
	}
}

// record runs an app once and returns its recorded event stream.
func record(t *testing.T, a App) (*trace.Recorder, *android.RunResult) {
	t.Helper()
	rec := trace.NewRecorder(1 << 14)
	res, err := android.Run(a.Prog, android.RunOptions{Sinks: []cpu.EventSink{rec}})
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return rec, res
}

func detectedAt(rec *trace.Recorder, cfg core.Config) bool {
	tr := core.NewTracker(cfg, nil)
	rec.Replay(tr)
	for _, v := range tr.Verdicts() {
		if v.Tainted {
			return true
		}
	}
	return false
}

func TestAllAppsExecuteWithCorrectGroundTruth(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			_, res := record(t, a)
			if len(res.Sinks) == 0 {
				t.Fatal("app performed no sink call")
			}
			// Content-based ground truth must agree with the designed
			// ground truth except for apps that obfuscate the payload.
			if a.Name == "ImplicitSwitch" {
				if res.Framework.LeakedByContent() {
					t.Error("implicit app should obfuscate the payload")
				}
				return
			}
			if res.Framework.LeakedByContent() != a.Leaky {
				t.Errorf("content ground truth %v, designed %v (payload %q)",
					res.Framework.LeakedByContent(), a.Leaky, res.Sinks[0].Payload)
			}
		})
	}
}

// TestHeadlineAccuracy reproduces §5.1: at NI=13, NT=3 the suite yields 0
// false positives (0/16) and 1 false negative (1/41) — 98% accuracy.
func TestHeadlineAccuracy(t *testing.T) {
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	var fp, fn int
	var fnNames []string
	for _, a := range Suite() {
		rec, _ := record(t, a)
		det := detectedAt(rec, cfg)
		if det && !a.Leaky {
			fp++
			t.Errorf("false positive: %s", a.Name)
		}
		if !det && a.Leaky {
			fn++
			fnNames = append(fnNames, a.Name)
		}
	}
	if fp != 0 {
		t.Errorf("false positives = %d, want 0", fp)
	}
	if fn != 1 || fnNames[0] != "ImplicitSwitch" {
		t.Errorf("false negatives = %v, want exactly [ImplicitSwitch]", fnNames)
	}
}

// TestFullAccuracyAtWideWindow reproduces "to achieve a 100% accuracy, the
// window size should be set to NI=18 and NT=3" on the heatmap subset.
func TestFullAccuracyAtWideWindow(t *testing.T) {
	cfg := core.Config{NI: 18, NT: 3, Untaint: true}
	for _, a := range Subset() {
		rec, _ := record(t, a)
		if det := detectedAt(rec, cfg); det != a.Leaky {
			t.Errorf("%s: detected=%v, leaky=%v at (18,3)", a.Name, det, a.Leaky)
		}
	}
}

// TestNoFalsePositivesAnywhere reproduces "in all experiments, no false
// positive occurred" across the full parameter grid.
func TestNoFalsePositivesAnywhere(t *testing.T) {
	var benign []*trace.Recorder
	var names []string
	for _, a := range Suite() {
		if a.Leaky {
			continue
		}
		rec, _ := record(t, a)
		benign = append(benign, rec)
		names = append(names, a.Name)
	}
	for ni := uint64(1); ni <= 20; ni++ {
		for nt := 1; nt <= 10; nt++ {
			for i, rec := range benign {
				if detectedAt(rec, core.Config{NI: ni, NT: nt, Untaint: true}) {
					t.Fatalf("false positive: %s at NI=%d NT=%d", names[i], ni, nt)
				}
			}
		}
	}
}

// TestProbeRegions prints every app's detection region; a development aid.
func TestProbeRegions(t *testing.T) {
	if os.Getenv("PIFT_PROBE") == "" {
		t.Skip("set PIFT_PROBE=1 to print detection regions")
	}
	for _, a := range Suite() {
		if !a.Leaky {
			continue
		}
		rec, _ := record(t, a)
		var b strings.Builder
		for nt := 1; nt <= 3; nt++ {
			min := -1
			for ni := 1; ni <= 24; ni++ {
				if detectedAt(rec, core.Config{NI: uint64(ni), NT: nt, Untaint: true}) {
					min = ni
					break
				}
			}
			fmt.Fprintf(&b, " NT%d:minNI=%d", nt, min)
		}
		t.Logf("%-22s%s", a.Name, b.String())
	}
}

func TestRenderInventory(t *testing.T) {
	out := RenderInventory()
	if !strings.Contains(out, "DirectImeiSms") || !strings.Contains(out, "57 applications: 41 leaky, 16 benign") {
		t.Fatalf("inventory:\n%s", out)
	}
	if strings.Count(out, "| ") < 57 {
		t.Error("inventory rows missing")
	}
}
