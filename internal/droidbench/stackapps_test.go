package droidbench

import (
	"testing"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dift"
	"repro/internal/trace"
)

var (
	paperCfg     = core.Config{NI: 13, NT: 3, Untaint: true}
	unboundedCfg = core.Config{NI: 1 << 62, NT: 1 << 30, Untaint: false}
)

func TestStackSuiteComposition(t *testing.T) {
	apps := StackApps()
	if len(apps) != 11 {
		t.Fatalf("stack suite has %d apps, want 11", len(apps))
	}
	leaky, benign := Counts(apps)
	if leaky != 8 || benign != 3 {
		t.Fatalf("composition %d leaky / %d benign, want 8/3", leaky, benign)
	}
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		names[a.Name] = true
		if a.InSubset {
			t.Errorf("%s: stack apps are not part of the paper's Dalvik subset", a.Name)
		}
	}
	sv := StackVMSuite()
	if got := sv.Frontend().Name(); got != "stackvm" {
		t.Fatalf("suite front end %q, want stackvm", got)
	}
	if sv.Name() == "" || len(sv.Apps()) != len(apps) {
		t.Fatalf("suite descriptor: name %q, %d apps", sv.Name(), len(sv.Apps()))
	}
	dv := DalvikSuite()
	if dv.Frontend().Name() != "dalvik" || dv.Name() == "" || len(dv.Apps()) != 57 {
		t.Fatalf("dalvik suite descriptor: name %q, front %q, %d apps",
			dv.Name(), dv.Frontend().Name(), len(dv.Apps()))
	}
	for _, fe := range []string{"dalvik", "stackvm"} {
		s, err := SuiteFor(fe)
		if err != nil {
			t.Fatalf("SuiteFor(%s): %v", fe, err)
		}
		if s.Frontend().Name() != fe {
			t.Fatalf("SuiteFor(%s) resolved to %q", fe, s.Frontend().Name())
		}
	}
	if _, err := SuiteFor("bogus"); err == nil {
		t.Fatal("SuiteFor accepted an unknown front end")
	}
}

// TestStackAppsVerdicts pins the ground truth of the stack-VM family:
// the DIFT oracle is exact, PIFT with an unbounded window matches it
// (the mechanism carries every flow, no overtainting on the benign
// apps), and the paper's NI=13/NT=3 window misses exactly the two
// spill/reload apps whose carrying store sits beyond it.
func TestStackAppsVerdicts(t *testing.T) {
	windowMiss := map[string]bool{
		"SSpillReloadSerialSms": true, // K=6: 6th store > NT=3
		"SSpillDeepImeiHttp":    true, // K=8: distance 16 > NI=13 and 8th store > NT=3
	}
	for _, a := range StackApps() {
		rec := trace.NewRecorder(1 << 14)
		oracle := dift.New()
		if _, err := android.Run(a.Prog, android.RunOptions{
			Sinks: []cpu.EventSink{rec, oracle},
			Hooks: []cpu.InstrHook{oracle},
		}); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		diftHit := false
		for _, v := range oracle.Verdicts() {
			diftHit = diftHit || v.Tainted
		}
		if diftHit != a.Leaky {
			t.Errorf("%s: DIFT oracle says %v, ground truth %v", a.Name, diftHit, a.Leaky)
		}
		if infHit := detectedAt(rec, unboundedCfg); infHit != a.Leaky {
			t.Errorf("%s: PIFT@inf says %v, ground truth %v", a.Name, infHit, a.Leaky)
		}
		wantPaper := a.Leaky && !windowMiss[a.Name]
		if paperHit := detectedAt(rec, paperCfg); paperHit != wantPaper {
			t.Errorf("%s: PIFT@13/3 says %v, want %v", a.Name, paperHit, wantPaper)
		}
	}
}

// TestCrossFrontendDifferential runs both front ends' suites through the
// identical recording path and checks the invariants that make them
// interchangeable behind internal/frontend: every app produces a
// non-empty event stream with at least one sink, and detection is
// monotone in the window (a paper-window hit is always an
// unbounded-window hit — the configs differ only in how much taint they
// retain).
func TestCrossFrontendDifferential(t *testing.T) {
	for _, s := range []struct {
		name string
		apps []App
	}{
		{"dalvik", Suite()},
		{"stackvm", StackApps()},
	} {
		s := s
		t.Run(s.name, func(t *testing.T) {
			for _, a := range s.apps {
				rec, _ := record(t, a)
				if rec.Len() == 0 {
					t.Errorf("%s: empty trace", a.Name)
					continue
				}
				sum := rec.Summarize()
				if sum.Sinks == 0 {
					t.Errorf("%s: no sink events", a.Name)
				}
				if detectedAt(rec, paperCfg) && !detectedAt(rec, unboundedCfg) {
					t.Errorf("%s: detected at NI=13/NT=3 but not at NI=inf", a.Name)
				}
			}
		})
	}
}
