// Package droidbench is the synthetic stand-in for DroidBench 1.1, the
// benchmark the paper evaluates accuracy on (§5): 57 applications — 41 that
// leak sensitive data and 16 benign — moving data "through arrays, lists,
// callbacks, exceptions, intents" and obfuscating flow "through method
// overriding, reflection, and object inheritance".
//
// Each application is a real program for the Dalvik-like VM; its ground
// truth (leaky or benign) is fixed by construction, exactly as in
// DroidBench. A 48-app subset mirrors the set used for the paper's
// Figure 11 accuracy heatmap.
package droidbench

import (
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/dalvik"
	"repro/internal/frontend"
	"repro/internal/jrt"
)

// App is one benchmark application; the type is the front-end-agnostic
// frontend.App, so suites of either VM interoperate with the harness.
type App = frontend.App

// DalvikSuite returns the Dalvik DroidBench suite descriptor.
func DalvikSuite() frontend.Suite { return dalvikSuite{} }

type dalvikSuite struct{}

func (dalvikSuite) Name() string                { return "droidbench" }
func (dalvikSuite) Frontend() frontend.Frontend { return dalvik.Front{} }
func (dalvikSuite) Apps() []App                 { return Suite() }

// SuiteFor maps a front-end flag value to its benchmark suite.
func SuiteFor(feName string) (frontend.Suite, error) {
	switch feName {
	case "dalvik":
		return DalvikSuite(), nil
	case "stackvm":
		return StackVMSuite(), nil
	}
	return nil, fmt.Errorf("droidbench: unknown frontend %q (want dalvik or stackvm)", feName)
}

type source struct {
	name   string
	method string
}

type sinkSpec struct {
	name   string
	method string
	dest   string
}

var sources = []source{
	{"Imei", android.MethodGetDeviceID},
	{"Serial", android.MethodGetSerial},
	{"Phone", android.MethodGetLine1},
}

var sinks = []sinkSpec{
	{"Sms", android.MethodSendSMS, "5551337"},
	{"Http", android.MethodSendHTTP, "http://collect.example/q"},
	{"Log", android.MethodLog, "LEAK"},
}

// Suite returns all 57 applications in a stable order.
func Suite() []App {
	var apps []App
	add := func(a App, err error) {
		if err != nil {
			panic(fmt.Sprintf("droidbench: %s: %v", a.Name, err))
		}
		apps = append(apps, a)
	}

	// --- Leaky, 48-subset (36 apps) ---

	// 1. Direct string concatenation, every source × sink (9).
	for _, src := range sources {
		for _, snk := range sinks {
			add(directLeak(src, snk, true))
		}
	}
	// 2. Flow through an application helper method (3).
	for i, src := range sources {
		add(viaHelper(src, sinks[i%len(sinks)]))
	}
	// 3. Flow through a static field (3).
	for i, src := range sources {
		add(viaStaticField(src, sinks[(i+1)%len(sinks)]))
	}
	// 4. Flow through an instance field of a holder object (3).
	for i, src := range sources {
		add(viaObjectField(src, sinks[(i+2)%len(sinks)]))
	}
	// 5. Flow through an Intent-like extras object (2).
	add(viaIntent(sources[0], sinks[1]))
	add(viaIntent(sources[2], sinks[0]))
	// 6. Flow through a callback dispatched on a runtime value (2).
	add(viaCallback(sources[0], sinks[2]))
	add(viaCallback(sources[1], sinks[0]))
	// 7. Flow through char arrays and arraycopy (4).
	for i, src := range sources {
		add(viaCharArray(src, sinks[i%len(sinks)]))
	}
	add(viaCharArray(source{"Imei2", android.MethodGetDeviceID}, sinks[2]))
	// 8. XOR obfuscation per character (2).
	add(xorObfuscation(sources[0], sinks[1], true))
	add(xorObfuscation(sources[1], sinks[2], true))
	// 9. Char-by-char through the bounds-checked insert (6) — the flows
	// that need NT >= 2.
	for _, src := range sources {
		add(viaInsertChar(src, sinks[0]))
		add(viaInsertChar(src, sinks[1]))
	}
	// 10. GPS location through numeric formatting (1) — needs NI >= 10.
	add(locationLeak(sinks[1]))
	// 11. Implicit flow via switch obfuscation (1) — the paper's
	// ImplicitFlow1, detected only with the widest windows.
	add(implicitSwitch(sources[0], sinks[0]))

	// --- Benign, 48-subset (12 apps) ---
	for i := 0; i < 4; i++ {
		add(benignNoSource(i))
	}
	for i, src := range sources {
		add(benignUnusedSource(src, sinks[i%len(sinks)]))
	}
	add(benignUnusedSource(source{"Location", android.MethodGetLocation}, sinks[2]))
	for i := 0; i < 4; i++ {
		add(benignComputeOnly(i))
	}

	// --- Leaky, outside the heatmap subset (5 apps) ---
	add(xorObfuscation(sources[2], sinks[0], false))
	add(doubleSourceLeak())
	add(longObfuscationLeak())
	add(viaReturnChain())
	add(viaException())

	// --- Benign, outside the heatmap subset (4 apps) ---
	add(benignEcho(0))
	add(benignEcho(1))
	add(benignStaticShuffle())
	add(benignArithmetic())

	return apps
}

// Subset returns the 48 applications of the Figure 11 heatmap.
func Subset() []App {
	var out []App
	for _, a := range Suite() {
		if a.InSubset {
			out = append(out, a)
		}
	}
	return out
}

// RenderInventory prints the full suite as a markdown table: name,
// category, ground truth, heatmap-subset membership, and static size.
func RenderInventory() string {
	var b strings.Builder
	b.WriteString("| # | App | Category | Ground truth | In Fig. 11 subset | Bytecodes |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for i, a := range Suite() {
		truth := "benign"
		if a.Leaky {
			truth = "LEAKY"
		}
		subset := ""
		if a.InSubset {
			subset = "yes"
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %d |\n",
			i+1, a.Name, a.Category, truth, subset, a.Prog.Instructions())
	}
	leaky, benign := Counts(Suite())
	fmt.Fprintf(&b, "\n%d applications: %d leaky, %d benign; %d in the heatmap subset.\n",
		len(Suite()), leaky, benign, len(Subset()))
	return b.String()
}

// Counts tallies the ground-truth composition.
func Counts(apps []App) (leaky, benign int) {
	for _, a := range apps {
		if a.Leaky {
			leaky++
		} else {
			benign++
		}
	}
	return leaky, benign
}

func build(name string, b *dalvik.Builder, category string, leaky, subset bool) (App, error) {
	prog, err := b.Build(android.KnownExterns())
	return App{Name: name, Category: category, Leaky: leaky, InSubset: subset, Prog: prog}, err
}

// directLeak: msg = "id=" + secret, sent directly (the paper's §2 shape).
func directLeak(src source, snk sinkSpec, subset bool) (App, error) {
	name := "Direct" + src.name + snk.name
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.ConstString(1, "id=")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppend, 0, 2)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(3)
	m.ConstString(4, snk.dest)
	m.InvokeStatic(snk.method, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "direct", true, subset)
}

// viaHelper: the secret reference flows through an app method that does
// the message assembly.
func viaHelper(src source, snk sinkSpec) (App, error) {
	name := "Helper" + src.name + snk.name
	b := dalvik.NewProgram(name)
	h := b.Method("Main.build", 8, 1) // arg: secret ref in v7
	h.InvokeStatic(jrt.MethodBuilderNew)
	h.MoveResultObject(0)
	h.ConstString(1, "payload:")
	h.InvokeVirtual(jrt.MethodAppend, 0, 1)
	h.MoveResultObject(0)
	h.InvokeVirtual(jrt.MethodAppend, 0, 7)
	h.MoveResultObject(0)
	h.InvokeVirtual(jrt.MethodToString, 0)
	h.MoveResultObject(2)
	h.ReturnObject(2)
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(0)
	m.InvokeStatic("Main.build", 0)
	m.MoveResultObject(1)
	m.ConstString(2, snk.dest)
	m.InvokeStatic(snk.method, 2, 1)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "helper-method", true, true)
}

// viaStaticField: the secret reference is parked in a static field and
// fetched back before exfiltration.
func viaStaticField(src source, snk sinkSpec) (App, error) {
	name := "Static" + src.name + snk.name
	b := dalvik.NewProgram(name)
	b.Statics("stash")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(0)
	m.SputObject(0, "stash")
	// Unrelated work in between.
	m.Const16(1, 100)
	m.AddIntLit8(1, 1, 23)
	m.SgetObject(2, "stash")
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodAppend, 3, 2)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodToString, 3)
	m.MoveResultObject(4)
	m.ConstString(5, snk.dest)
	m.InvokeStatic(snk.method, 5, 4)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "static-field", true, true)
}

// viaObjectField: the secret reference is stored in a holder object's
// instance field.
func viaObjectField(src source, snk sinkSpec) (App, error) {
	name := "Field" + src.name + snk.name
	b := dalvik.NewProgram(name)
	b.Class("Holder", "data", "count")
	m := b.Method("Main.main", 8, 0)
	m.NewInstance(0, "Holder")
	m.InvokeStatic(src.method)
	m.MoveResultObject(1)
	m.IputObject(1, 0, "Holder.data")
	m.Const4(2, 3)
	m.Iput(2, 0, "Holder.count")
	m.IgetObject(3, 0, "Holder.data")
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(4)
	m.InvokeVirtual(jrt.MethodAppend, 4, 3)
	m.MoveResultObject(4)
	m.InvokeVirtual(jrt.MethodToString, 4)
	m.MoveResultObject(5)
	m.ConstString(6, snk.dest)
	m.InvokeStatic(snk.method, 6, 5)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "instance-field", true, true)
}

// viaIntent: the secret travels inside an Intent-like extras object handed
// to a "receiver" method, DroidBench's inter-component pattern.
func viaIntent(src source, snk sinkSpec) (App, error) {
	name := "Intent" + src.name + snk.name
	b := dalvik.NewProgram(name)
	b.Class("Intent", "action", "extra")
	r := b.Method("Main.onReceive", 8, 1) // arg: intent in v7
	r.IgetObject(0, 7, "Intent.extra")
	r.InvokeStatic(jrt.MethodBuilderNew)
	r.MoveResultObject(1)
	r.InvokeVirtual(jrt.MethodAppend, 1, 0)
	r.MoveResultObject(1)
	r.InvokeVirtual(jrt.MethodToString, 1)
	r.MoveResultObject(2)
	r.ConstString(3, snk.dest)
	r.InvokeStatic(snk.method, 3, 2)
	r.ReturnVoid()
	m := b.Method("Main.main", 8, 0)
	m.NewInstance(0, "Intent")
	m.ConstString(1, "android.intent.SEND")
	m.IputObject(1, 0, "Intent.action")
	m.InvokeStatic(src.method)
	m.MoveResultObject(2)
	m.IputObject(2, 0, "Intent.extra")
	m.InvokeStatic("Main.onReceive", 0)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "intent", true, true)
}

// viaCallback: the sink-reaching method is selected at run time from a
// dispatch value — DroidBench's callback/override pattern.
func viaCallback(src source, snk sinkSpec) (App, error) {
	name := "Callback" + src.name + snk.name
	b := dalvik.NewProgram(name)
	leak := b.Method("Main.onEvent", 8, 1) // v7 = secret
	leak.InvokeStatic(jrt.MethodBuilderNew)
	leak.MoveResultObject(0)
	leak.InvokeVirtual(jrt.MethodAppend, 0, 7)
	leak.MoveResultObject(0)
	leak.InvokeVirtual(jrt.MethodToString, 0)
	leak.MoveResultObject(1)
	leak.ConstString(2, snk.dest)
	leak.InvokeStatic(snk.method, 2, 1)
	leak.ReturnVoid()
	noop := b.Method("Main.onIdle", 4, 1)
	noop.ReturnVoid()
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(0)
	m.Const4(1, 1) // "event fired"
	m.IfEqz(1, "idle")
	m.InvokeStatic("Main.onEvent", 0)
	m.ReturnVoid()
	m.Label("idle")
	m.InvokeStatic("Main.onIdle", 0)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "callback", true, true)
}

// viaCharArray: chars are pulled into a char array, copied to a second
// array, and rebuilt into a string.
func viaCharArray(src source, snk sinkSpec) (App, error) {
	name := "Array" + src.name + snk.name
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 10, 0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodStringLength, 0)
	m.MoveResult(1)
	m.NewCharArray(2, 1) // a
	m.NewCharArray(3, 1) // b
	m.Const4(4, 0)
	m.Label("fill")
	m.If(dalvik.OpIfGe, 4, 1, "copy")
	m.InvokeVirtual(jrt.MethodCharAt, 0, 4)
	m.MoveResult(5)
	m.AputChar(5, 2, 4)
	m.AddIntLit8(4, 4, 1)
	m.Goto("fill")
	m.Label("copy")
	m.InvokeStatic(jrt.MethodArraycopyChar, 2, 3, 1)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(6)
	m.Const4(4, 0)
	m.Label("rebuild")
	m.If(dalvik.OpIfGe, 4, 1, "send")
	m.AgetChar(5, 3, 4)
	m.InvokeVirtual(jrt.MethodAppendChar, 6, 5)
	m.MoveResultObject(6)
	m.AddIntLit8(4, 4, 1)
	m.Goto("rebuild")
	m.Label("send")
	m.InvokeVirtual(jrt.MethodToString, 6)
	m.MoveResultObject(7)
	m.ConstString(8, snk.dest)
	m.InvokeStatic(snk.method, 8, 7)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "char-array", true, true)
}

// xorObfuscation: each character is XOR-scrambled and unscrambled before
// being appended — arithmetic links with template distance 5.
func xorObfuscation(src source, snk sinkSpec, subset bool) (App, error) {
	name := "Xor" + src.name + snk.name
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 10, 0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodStringLength, 0)
	m.MoveResult(1)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	m.Const4(3, 0)
	m.Label("loop")
	m.If(dalvik.OpIfGe, 3, 1, "send")
	m.InvokeVirtual(jrt.MethodCharAt, 0, 3)
	m.MoveResult(4)
	m.XorIntLit8(4, 4, 0x55)
	m.XorIntLit8(4, 4, 0x55)
	m.InvokeVirtual(jrt.MethodAppendChar, 2, 4)
	m.MoveResultObject(2)
	m.AddIntLit8(3, 3, 1)
	m.Goto("loop")
	m.Label("send")
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(5)
	m.ConstString(6, snk.dest)
	m.InvokeStatic(snk.method, 6, 5)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "xor-obfuscation", true, subset)
}

// viaInsertChar: char-by-char through the bounds-checked insert, whose
// window spends its first propagation on the bounds spill (needs NT >= 2).
func viaInsertChar(src source, snk sinkSpec) (App, error) {
	name := "Insert" + src.name + snk.name
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 10, 0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodStringLength, 0)
	m.MoveResult(1)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	m.Const4(3, 0)
	m.Label("loop")
	m.If(dalvik.OpIfGe, 3, 1, "send")
	m.InvokeVirtual(jrt.MethodCharAt, 0, 3)
	m.MoveResult(4)
	m.InvokeVirtual(jrt.MethodInsertChar, 2, 4)
	m.MoveResultObject(2)
	m.AddIntLit8(3, 3, 1)
	m.Goto("loop")
	m.Label("send")
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(5)
	m.ConstString(6, snk.dest)
	m.InvokeStatic(snk.method, 6, 5)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "insert-char", true, true)
}

// locationLeak: the GPS latitude is formatted through the numeric
// intrinsic — the paper's "NI had to be at least 10" case.
func locationLeak(snk sinkSpec) (App, error) {
	const name = "LocationHttp"
	b := dalvik.NewProgram(name)
	b.Class(android.LocationClass, "lat", "lon")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetLocation)
	m.MoveResultObject(0)
	m.Iget(1, 0, "Location.lat")
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	m.ConstString(3, "lat=")
	m.InvokeVirtual(jrt.MethodAppend, 2, 3)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppendInt, 2, 1)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(3)
	m.ConstString(4, snk.dest)
	m.InvokeStatic(snk.method, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "location", true, true)
}

// implicitSwitch is the paper's ImplicitFlow1 (§4.2): the secret is never
// copied; each character selects a switch case that appends a constant.
// The distance from the tainted switch load to the first carrying store is
// long, so only the widest windows catch it.
func implicitSwitch(src source, snk sinkSpec) (App, error) {
	const name = "ImplicitSwitch"
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 16, 0)
	m.InvokeStatic(src.method)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodStringLength, 0)
	m.MoveResult(1)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	// Pre-materialized constant characters 'a'..'j' in v6..v15 so the
	// case bodies perform no constant stores of their own.
	for d := 0; d < 10; d++ {
		m.Const16(6+d, int32('a'+d))
	}
	m.Const4(3, 0)
	m.Label("loop")
	m.If(dalvik.OpIfGe, 3, 1, "send")
	m.InvokeVirtual(jrt.MethodCharAt, 0, 3)
	m.MoveResult(4)
	var cases []dalvik.SwitchCase
	for d := 0; d < 10; d++ {
		cases = append(cases, dalvik.SwitchCase{
			Value:  int32('0' + d),
			Target: fmt.Sprintf("case%d", d),
		})
	}
	m.PackedSwitch(4, cases...)
	m.Goto("next") // non-digit: skipped
	for d := 0; d < 10; d++ {
		m.Label(fmt.Sprintf("case%d", d))
		m.InvokeVirtual(jrt.MethodInsertChar, 2, 6+d)
		m.MoveResultObject(2)
		m.Goto("next")
	}
	m.Label("next")
	m.AddIntLit8(3, 3, 1)
	m.Goto("loop")
	m.Label("send")
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(5)
	m.ConstString(6, snk.dest)
	m.InvokeStatic(snk.method, 6, 5)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "implicit-switch", true, true)
}

// --- Benign applications ---

// benignNoSource never touches sensitive data.
func benignNoSource(i int) (App, error) {
	name := fmt.Sprintf("BenignPlain%d", i)
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.ConstString(1, "status=ok&seq=")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.Const16(2, int32(100+i))
	m.InvokeVirtual(jrt.MethodAppendInt, 0, 2)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(3)
	m.ConstString(4, sinks[i%len(sinks)].dest)
	m.InvokeStatic(sinks[i%len(sinks)].method, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "benign-plain", false, true)
}

// benignUnusedSource fetches sensitive data but sends a message that was
// fully assembled *before* the fetch.
func benignUnusedSource(src source, snk sinkSpec) (App, error) {
	name := "BenignFetch" + src.name
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.ConstString(1, "heartbeat")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(2)
	// Sensitive fetch after the message exists; the reference is parked
	// and never dereferenced.
	m.InvokeStatic(src.method)
	m.MoveResultObject(3)
	m.ConstString(4, snk.dest)
	m.InvokeStatic(snk.method, 4, 2)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "benign-unused-source", false, true)
}

// benignComputeOnly reads sensitive characters and computes a local
// checksum, but exfiltrates nothing derived from it: the sink payload is a
// constant built before the sensitive reads.
func benignComputeOnly(i int) (App, error) {
	name := fmt.Sprintf("BenignCompute%d", i)
	b := dalvik.NewProgram(name)
	b.Statics("check")
	m := b.Method("Main.main", 10, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.ConstString(1, "ping")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(2) // payload finished before any sensitive load
	m.InvokeStatic(sources[i%len(sources)].method)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodStringLength, 3)
	m.MoveResult(4)
	m.Const4(5, 0) // i
	m.Const4(6, 0) // checksum
	m.Label("sum")
	m.If(dalvik.OpIfGe, 5, 4, "send")
	m.InvokeVirtual(jrt.MethodCharAt, 3, 5)
	m.MoveResult(7)
	m.Binop(dalvik.OpAddInt, 6, 6, 7)
	m.AddIntLit8(5, 5, 1)
	m.Goto("sum")
	m.Label("send")
	m.Sput(6, "check") // checksum stays on the device
	m.ConstString(8, sinks[i%len(sinks)].dest)
	m.InvokeStatic(sinks[i%len(sinks)].method, 8, 2)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "benign-compute", false, true)
}

// --- Extra apps outside the 48 subset ---

// doubleSourceLeak concatenates two secrets into one message.
func doubleSourceLeak() (App, error) {
	const name = "DoubleSource"
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.InvokeStatic(android.MethodGetDeviceID)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.ConstString(1, "/")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeStatic(android.MethodGetLine1)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(2)
	m.ConstString(3, sinks[0].dest)
	m.InvokeStatic(sinks[0].method, 3, 2)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "direct", true, false)
}

// longObfuscationLeak shuttles each character through 64-bit arithmetic
// (int-to-long, shl-long, shr-long, long-to-int) before rebuilding the
// string — the Table 1 "9–12 distance" bytecodes on the data path.
func longObfuscationLeak() (App, error) {
	const name = "LongObfuscation"
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 16, 0)
	m.InvokeStatic(android.MethodGetSerial)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodStringLength, 0)
	m.MoveResult(1)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	m.Const4(3, 0)
	m.Const4(5, 8) // shift amount
	m.Label("loop")
	m.If(dalvik.OpIfGe, 3, 1, "send")
	m.InvokeVirtual(jrt.MethodCharAt, 0, 3)
	m.MoveResult(4)
	m.IntToLong(6, 4)   // widen the char
	m.ShlLong(8, 6, 5)  // << 8
	m.ShrLong(10, 8, 5) // >> 8 (identity, through the long path)
	m.LongToInt(4, 10)
	m.InvokeVirtual(jrt.MethodAppendChar, 2, 4)
	m.MoveResultObject(2)
	m.AddIntLit8(3, 3, 1)
	m.Goto("loop")
	m.Label("send")
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(12)
	m.ConstString(13, sinks[1].dest)
	m.InvokeStatic(sinks[1].method, 13, 12)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "long-obfuscation", true, false)
}

// viaReturnChain passes the secret through a chain of returning methods.
func viaReturnChain() (App, error) {
	const name = "ReturnChain"
	b := dalvik.NewProgram(name)
	c := b.Method("Main.level2", 4, 1)
	c.ReturnObject(3)
	d := b.Method("Main.level1", 4, 1)
	d.InvokeStatic("Main.level2", 3)
	d.MoveResultObject(0)
	d.ReturnObject(0)
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetDeviceID)
	m.MoveResultObject(0)
	m.InvokeStatic("Main.level1", 0)
	m.MoveResultObject(1)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppend, 2, 1)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(3)
	m.ConstString(4, sinks[2].dest)
	m.InvokeStatic(sinks[2].method, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "return-chain", true, false)
}

// viaException routes the secret through an exception object's message
// field: the "throw" transfers control to a handler that extracts and
// exfiltrates it — DroidBench's Exceptions category.
func viaException() (App, error) {
	const name = "ExceptionFlow"
	b := dalvik.NewProgram(name)
	b.Class("AppException", "message")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetLine1)
	m.MoveResultObject(0)
	m.NewInstance(1, "AppException")
	m.IputObject(0, 1, "AppException.message")
	m.Const4(2, 1)
	m.IfNez(2, "catch") // the throw: always taken
	m.ReturnVoid()      // unreachable fall-through
	m.Label("catch")
	m.IgetObject(3, 1, "AppException.message")
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(4)
	m.ConstString(5, "err:")
	m.InvokeVirtual(jrt.MethodAppend, 4, 5)
	m.MoveResultObject(4)
	m.InvokeVirtual(jrt.MethodAppend, 4, 3)
	m.MoveResultObject(4)
	m.InvokeVirtual(jrt.MethodToString, 4)
	m.MoveResultObject(5)
	m.ConstString(6, sinks[1].dest)
	m.InvokeStatic(sinks[1].method, 6, 5)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "exception", true, false)
}

// benignEcho sends back data derived from non-sensitive framework calls.
func benignEcho(i int) (App, error) {
	name := fmt.Sprintf("BenignEcho%d", i)
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetModel)
	m.MoveResultObject(0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(1)
	m.ConstString(2, "model=")
	m.InvokeVirtual(jrt.MethodAppend, 1, 2)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodAppend, 1, 0)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodToString, 1)
	m.MoveResultObject(3)
	m.ConstString(4, sinks[i%len(sinks)].dest)
	m.InvokeStatic(sinks[i%len(sinks)].method, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "benign-echo", false, false)
}

// benignStaticShuffle moves benign strings through static fields.
func benignStaticShuffle() (App, error) {
	const name = "BenignShuffle"
	b := dalvik.NewProgram(name)
	b.Statics("a", "b")
	m := b.Method("Main.main", 8, 0)
	m.ConstString(0, "alpha")
	m.SputObject(0, "a")
	m.SgetObject(1, "a")
	m.SputObject(1, "b")
	m.SgetObject(2, "b")
	m.ConstString(3, sinks[0].dest)
	m.InvokeStatic(sinks[0].method, 3, 2)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "benign-shuffle", false, false)
}

// benignArithmetic exercises the division helpers on benign data.
func benignArithmetic() (App, error) {
	const name = "BenignArith"
	b := dalvik.NewProgram(name)
	m := b.Method("Main.main", 8, 0)
	m.Const(0, 86400)
	m.DivIntLit8(1, 0, 60)
	m.RemIntLit8(2, 0, 7)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodAppendInt, 3, 1)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodAppendInt, 3, 2)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodToString, 3)
	m.MoveResultObject(4)
	m.ConstString(5, sinks[2].dest)
	m.InvokeStatic(sinks[2].method, 5, 4)
	m.ReturnVoid()
	b.Entry("Main.main")
	return build(name, b, "benign-arith", false, false)
}
