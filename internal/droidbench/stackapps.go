package droidbench

import (
	"fmt"

	"repro/internal/android"
	"repro/internal/frontend"
	"repro/internal/jrt"
	"repro/internal/stackvm"
)

// The stack-VM benchmark family: the same DroidBench-style flows ported to
// the second front end, plus spill/reload applications only a stack
// machine exhibits — the operand stack lives in memory, so stack.save /
// stack.restore groups give a value K deep a load→store distance of 2K as
// the window's K-th store. At the paper's NI=13/NT=3 operating point that
// assumption holds for shallow groups and breaks for deep ones, which is
// exactly what the `-exp stackvm` experiment quantifies.

// StackVMSuite returns the stack-VM benchmark suite descriptor.
func StackVMSuite() frontend.Suite { return stackSuite{} }

type stackSuite struct{}

func (stackSuite) Name() string                { return "droidbench-stackvm" }
func (stackSuite) Frontend() frontend.Frontend { return stackvm.Front{} }
func (stackSuite) Apps() []App                 { return StackApps() }

// StackApps returns the stack-VM applications in a stable order: eight
// leaky (three direct, one helper-call, one local-shuffle, three
// spill/reload at depths 2, 6, and 8) and three benign.
func StackApps() []App {
	var apps []App
	add := func(a App, err error) {
		if err != nil {
			panic(fmt.Sprintf("droidbench: %s: %v", a.Name, err))
		}
		apps = append(apps, a)
	}

	add(sDirectLeak(sources[0], sinks[0]))
	add(sDirectLeak(sources[1], sinks[1]))
	add(sDirectLeak(sources[2], sinks[2]))
	add(sHelperLeak(sources[0], sinks[1]))
	add(sShuffleLeak(sources[1], sinks[0]))
	// Spill depths: 2 is comfortably inside the paper's window
	// (distance 4, 2nd store); 6 fits NI=13 (distance 12) but the carrying
	// store is the 6th after the load, past NT=3; 8 breaks both margins
	// (distance 16 > 13).
	add(sSpillCopy("SSpillShallowImeiSms", "spill-shallow", sources[0], sinks[0], 2))
	add(sSpillCopy("SSpillReloadSerialSms", "spill-reload", sources[1], sinks[0], 6))
	add(sSpillCopy("SSpillDeepImeiHttp", "spill-deep", sources[0], sinks[1], 8))
	add(sBenignFetch(sources[0], sinks[2]))
	add(sBenignSpillEcho(sinks[1]))
	add(sBenignCompute(sinks[0]))

	return apps
}

func sBuild(name string, b *stackvm.Builder, category string, leaky bool) (App, error) {
	prog, err := b.Build(android.KnownExterns())
	return App{Name: name, Category: category, Leaky: leaky, Prog: prog}, err
}

// sDirectLeak: msg = "id=" + secret, sent directly — the §2 shape on the
// stack machine.
func sDirectLeak(src source, snk sinkSpec) (App, error) {
	name := "SDirect" + src.name + snk.name
	b := stackvm.NewProgram(name)
	// locals: 0=builder 1=secret 2=msg
	f := b.Func("main", 0, 3, 6)
	f.CallExtern(jrt.MethodBuilderNew, 0)
	f.Result()
	f.LocalSet(0)
	f.LocalGet(0)
	f.ConstStr("id=")
	f.CallExtern(jrt.MethodAppend, 2)
	f.CallExtern(src.method, 0)
	f.Result()
	f.LocalSet(1)
	f.LocalGet(0)
	f.LocalGet(1)
	f.CallExtern(jrt.MethodAppend, 2)
	f.LocalGet(0)
	f.CallExtern(jrt.MethodToString, 1)
	f.Result()
	f.LocalSet(2)
	f.ConstStr(snk.dest)
	f.LocalGet(2)
	f.CallExtern(snk.method, 2)
	f.Ret()
	b.Entry("main")
	return sBuild(name, b, "direct", true)
}

// sHelperLeak: the secret crosses an app-level call — argument passing
// through the callee's parameter locals and the return-value slot.
func sHelperLeak(src source, snk sinkSpec) (App, error) {
	name := "SHelper" + src.name + snk.name
	b := stackvm.NewProgram(name)
	// wrap(secret) → "payload:" + secret
	h := b.Func("wrap", 1, 2, 6)
	h.CallExtern(jrt.MethodBuilderNew, 0)
	h.Result()
	h.LocalSet(1)
	h.LocalGet(1)
	h.ConstStr("payload:")
	h.CallExtern(jrt.MethodAppend, 2)
	h.LocalGet(1)
	h.LocalGet(0)
	h.CallExtern(jrt.MethodAppend, 2)
	h.LocalGet(1)
	h.CallExtern(jrt.MethodToString, 1)
	h.Result()
	h.RetVal()

	f := b.Func("main", 0, 1, 6)
	f.CallExtern(src.method, 0)
	f.Result()
	f.Call("wrap")
	f.Result()
	f.LocalSet(0)
	f.ConstStr(snk.dest)
	f.LocalGet(0)
	f.CallExtern(snk.method, 2)
	f.Ret()
	b.Entry("main")
	return sBuild(name, b, "helper", true)
}

// sShuffleLeak: the secret reference bounces through dup/drop and several
// locals before reaching the sink — pure frame traffic, all within the
// per-template distances.
func sShuffleLeak(src source, snk sinkSpec) (App, error) {
	name := "SShuffle" + src.name + snk.name
	b := stackvm.NewProgram(name)
	// locals: 0..3 shuffle chain, 4=builder, 5=msg
	f := b.Func("main", 0, 6, 6)
	f.CallExtern(src.method, 0)
	f.Result()
	f.LocalSet(0)
	f.LocalGet(0)
	f.Dup()
	f.LocalSet(1)
	f.LocalSet(2)
	f.LocalGet(2)
	f.LocalSet(3)
	f.CallExtern(jrt.MethodBuilderNew, 0)
	f.Result()
	f.LocalSet(4)
	f.LocalGet(4)
	f.LocalGet(3)
	f.CallExtern(jrt.MethodAppend, 2)
	f.LocalGet(4)
	f.CallExtern(jrt.MethodToString, 1)
	f.Result()
	f.LocalSet(5)
	f.ConstStr(snk.dest)
	f.LocalGet(5)
	f.CallExtern(snk.method, 2)
	f.Ret()
	b.Entry("main")
	return sBuild(name, b, "local-shuffle", true)
}

// sSpillCopy copies the secret char by char; each char is pushed, buried
// under depth-1 filler operands, spilled to the native stack with
// stack.save, and reloaded with stack.restore before being appended. The
// char's save-side store lands 2·depth instructions after its load as the
// window's depth-th store, so PIFT's propagation depends on NI ≥ 2·depth
// and NT ≥ depth.
func sSpillCopy(name, category string, src source, snk sinkSpec, depth int) (App, error) {
	b := stackvm.NewProgram(name)
	// locals: 0=secret ref, 1=builder, 2=i, 3=len, 4=char stash, 5=msg
	f := b.Func("main", 0, 6, depth+4)
	f.CallExtern(src.method, 0)
	f.Result()
	f.LocalSet(0)
	f.CallExtern(jrt.MethodBuilderNew, 0)
	f.Result()
	f.LocalSet(1)
	f.LocalGet(0)
	f.Load() // String length at offset 0
	f.LocalSet(3)
	f.Const(0)
	f.LocalSet(2)
	f.Label("loop")
	f.LocalGet(3)
	f.LocalGet(2)
	f.Sub()
	f.Eqz()
	f.BrIf("done")
	// char = *(u16)(ref + 4 + 2*i)
	f.LocalGet(0)
	f.Const(4)
	f.Add()
	f.LocalGet(2)
	f.LocalGet(2)
	f.Add()
	f.Add()
	f.Load16()
	// Bury the char under depth-1 untainted fillers and bounce the whole
	// group off the native stack.
	for j := 0; j < depth-1; j++ {
		f.Const(int32(0x20 + j))
	}
	f.Save(depth)
	f.Restore(depth)
	for j := 0; j < depth-1; j++ {
		f.Drop()
	}
	f.LocalSet(4)
	f.LocalGet(1)
	f.LocalGet(4)
	f.CallExtern(jrt.MethodAppendChar, 2)
	f.LocalGet(2)
	f.Const(1)
	f.Add()
	f.LocalSet(2)
	f.Br("loop")
	f.Label("done")
	f.LocalGet(1)
	f.CallExtern(jrt.MethodToString, 1)
	f.Result()
	f.LocalSet(5)
	f.ConstStr(snk.dest)
	f.LocalGet(5)
	f.CallExtern(snk.method, 2)
	f.Ret()
	b.Entry("main")
	return sBuild(name, b, category, true)
}

// sBenignFetch reads a secret but sends an unrelated constant — the
// classic false-positive probe.
func sBenignFetch(src source, snk sinkSpec) (App, error) {
	name := "SBenignFetch" + src.name
	b := stackvm.NewProgram(name)
	// locals: 0=secret (parked), 1=builder, 2=msg
	f := b.Func("main", 0, 3, 6)
	f.CallExtern(src.method, 0)
	f.Result()
	f.LocalSet(0)
	f.CallExtern(jrt.MethodBuilderNew, 0)
	f.Result()
	f.LocalSet(1)
	f.LocalGet(1)
	f.ConstStr("heartbeat ok")
	f.CallExtern(jrt.MethodAppend, 2)
	f.LocalGet(1)
	f.CallExtern(jrt.MethodToString, 1)
	f.Result()
	f.LocalSet(2)
	f.ConstStr(snk.dest)
	f.LocalGet(2)
	f.CallExtern(snk.method, 2)
	f.Ret()
	b.Entry("main")
	return sBuild(name, b, "benign-unused-source", false)
}

// sBenignSpillEcho runs the deepest spill loop over a non-sensitive
// string (the device model): maximum stress on the save/restore machinery
// with zero taint in flight.
func sBenignSpillEcho(snk sinkSpec) (App, error) {
	name := "SBenignSpillEcho"
	a, err := sSpillCopy(name, "benign-spill",
		source{"Model", android.MethodGetModel}, snk, 8)
	a.Leaky = false
	return a, err
}

// sBenignCompute: arithmetic on constants formatted through the numeric
// intrinsic — no source at all.
func sBenignCompute(snk sinkSpec) (App, error) {
	name := "SBenignCompute"
	b := stackvm.NewProgram(name)
	// locals: 0=builder, 1=scratch
	f := b.Func("main", 0, 2, 6)
	f.CallExtern(jrt.MethodBuilderNew, 0)
	f.Result()
	f.LocalSet(0)
	f.Const(1234)
	f.Const(3)
	f.Mul()
	f.Const(2)
	f.Shr()
	f.LocalSet(1)
	f.LocalGet(0)
	f.LocalGet(1)
	f.CallExtern(jrt.MethodAppendInt, 2)
	f.LocalGet(0)
	f.CallExtern(jrt.MethodToString, 1)
	f.Result()
	f.LocalSet(1)
	f.ConstStr(snk.dest)
	f.LocalGet(1)
	f.CallExtern(snk.method, 2)
	f.Ret()
	b.Entry("main")
	return sBuild(name, b, "benign-compute", false)
}
