// Package ring provides a bounded single-producer/single-consumer queue —
// the hand-off primitive of the shard-owned pipeline. A Go channel is a
// multi-producer/multi-consumer structure and pays for that generality
// with a mutex on every operation; the pipeline's hand-offs are all
// strictly one producer to one consumer (dispatcher→worker, and segment
// reader→worker in the shard-owned path), so the ring replaces the lock
// with two monotonic cursors: the producer owns the tail, the consumer
// owns the head, and each side only ever loads the other's cursor. The
// uncontended fast path is two atomic operations and no allocation; a
// full (or empty) ring parks the blocked side on a one-token wake channel
// instead of spinning.
package ring

import "sync/atomic"

// Ring is a bounded SPSC queue of T. Exactly one goroutine may call
// Push/TryPush (the producer) and exactly one may call Pop/TryPop (the
// consumer); the two may be — and usually are — different goroutines.
// Close may be called from any goroutine and is idempotent. Items pushed
// before Close remain poppable: the consumer drains the buffer and only
// then observes the closed state.
type Ring[T any] struct {
	buf  []T
	mask uint64

	// The cursors live on their own cache lines so the producer's tail
	// stores never invalidate the line the consumer's head lives on.
	_    [64]byte
	tail atomic.Uint64 // next slot to write; advanced only by the producer
	_    [56]byte
	head atomic.Uint64 // next slot to read; advanced only by the consumer
	_    [56]byte

	closed atomic.Bool
	// notEmpty and notFull each hold at most one wake token; a blocked
	// side re-checks its condition after every wake, so a stale token
	// costs one loop iteration, never a lost update.
	notEmpty chan struct{}
	notFull  chan struct{}
	done     chan struct{}
}

// New builds a ring with capacity rounded up to the next power of two
// (minimum 1), so slot indexing is a mask instead of a modulo.
func New[T any](capacity int) *Ring[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{
		buf:      make([]T, n),
		mask:     uint64(n - 1),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// Cap returns the ring's slot capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of items currently buffered. It is exact from
// either endpoint's own goroutine and a point-in-time estimate elsewhere.
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Push appends v, blocking while the ring is full. It reports false —
// and does not deliver v — once the ring is closed; a producer seeing
// false can stop producing, its consumer has gone away.
func (r *Ring[T]) Push(v T) bool {
	for {
		if r.closed.Load() {
			return false
		}
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.buf)) {
			r.buf[t&r.mask] = v
			r.tail.Store(t + 1)
			select {
			case r.notEmpty <- struct{}{}:
			default:
			}
			return true
		}
		select {
		case <-r.notFull:
		case <-r.done:
			return false
		}
	}
}

// TryPush appends v without blocking; false means the ring was full or
// closed.
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	select {
	case r.notEmpty <- struct{}{}:
	default:
	}
	return true
}

// Pop removes and returns the oldest item, blocking while the ring is
// open and empty. It reports false only when the ring is closed AND
// drained — every item pushed before Close is still delivered.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	for {
		h := r.head.Load()
		if r.tail.Load() != h {
			v := r.buf[h&r.mask]
			r.buf[h&r.mask] = zero // drop the reference so the GC can reclaim it
			r.head.Store(h + 1)
			select {
			case r.notFull <- struct{}{}:
			default:
			}
			return v, true
		}
		if r.closed.Load() {
			// Re-check after observing closed: a final Push may have
			// landed between the emptiness check and the closed check.
			if r.tail.Load() == h {
				return zero, false
			}
			continue
		}
		select {
		case <-r.notEmpty:
		case <-r.done:
		}
	}
}

// TryPop removes the oldest item without blocking; false means the ring
// was empty (closed or not).
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	if r.tail.Load() == h {
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	select {
	case r.notFull <- struct{}{}:
	default:
	}
	return v, true
}

// Close marks the ring closed and wakes both endpoints: a blocked Push
// returns false, a blocked Pop drains whatever is buffered and then
// returns false. Idempotent, callable from any goroutine.
func (r *Ring[T]) Close() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.done)
	}
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }
