package ring

import (
	"sync"
	"testing"
	"time"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestFullEmptyWrap(t *testing.T) {
	r := New[int](4)
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring succeeded")
	}
	// Fill to capacity, overflow must be rejected.
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) on non-full ring failed", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush on full ring succeeded")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	// Drain in FIFO order.
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on drained ring succeeded")
	}
}

func TestFIFOAcrossWraps(t *testing.T) {
	r := New[int](8)
	next := 0 // next value expected out
	sent := 0
	for round := 0; round < 500; round++ {
		for r.TryPush(sent) {
			sent++
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok {
				t.Fatalf("round %d: ring empty early", round)
			}
			if v != next {
				t.Fatalf("round %d: popped %d, want %d", round, v, next)
			}
			next++
		}
	}
}

func TestPopDrainsAfterClose(t *testing.T) {
	r := New[string](8)
	r.Push("a")
	r.Push("b")
	r.Close()
	if r.Push("c") {
		t.Fatal("Push after Close succeeded")
	}
	if v, ok := r.Pop(); !ok || v != "a" {
		t.Fatalf("Pop = %q,%v, want a,true", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != "b" {
		t.Fatalf("Pop = %q,%v, want b,true", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop past the drained items succeeded after Close")
	}
	r.Close() // idempotent
}

func TestCloseWakesBlockedConsumer(t *testing.T) {
	r := New[int](4)
	got := make(chan bool, 1)
	go func() {
		_, ok := r.Pop() // blocks: ring empty
		got <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer park
	r.Close()
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Pop on closed empty ring reported an item")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked consumer")
	}
}

func TestCloseWakesBlockedProducer(t *testing.T) {
	r := New[int](2)
	r.Push(1)
	r.Push(2)
	got := make(chan bool, 1)
	go func() {
		got <- r.Push(3) // blocks: ring full
	}()
	time.Sleep(10 * time.Millisecond) // let the producer park
	r.Close()
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Push on closed ring reported delivery")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked producer")
	}
	// The items pushed before Close are still there.
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = %d,%v, want 1,true", v, ok)
	}
}

func TestBlockedProducerResumesOnPop(t *testing.T) {
	r := New[int](1)
	r.Push(0)
	delivered := make(chan bool, 1)
	go func() {
		delivered <- r.Push(1)
	}()
	time.Sleep(10 * time.Millisecond)
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("Pop = %d,%v, want 0,true", v, ok)
	}
	select {
	case ok := <-delivered:
		if !ok {
			t.Fatal("resumed Push failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not unblock the waiting producer")
	}
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = %d,%v, want 1,true", v, ok)
	}
}

// TestStressSPSC hammers one producer against one consumer for 10M ops
// (1M under -short), mixing blocking and non-blocking calls, and checks
// that every value arrives exactly once in order. Run under -race this is
// the ring's memory-model proof.
func TestStressSPSC(t *testing.T) {
	const full = 10_000_000
	n := uint64(full)
	if testing.Short() {
		n = full / 10
	}
	r := New[uint64](256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			if i%7 == 0 { // exercise both push paths
				if !r.TryPush(i) && !r.Push(i) {
					t.Error("push failed mid-stream")
					return
				}
			} else if !r.Push(i) {
				t.Error("push failed mid-stream")
				return
			}
		}
		r.Close()
	}()
	var next, sum uint64
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("popped %d, want %d (reorder or loss)", v, next)
		}
		next++
		sum += v
	}
	wg.Wait()
	if next != n {
		t.Fatalf("consumed %d values, want %d", next, n)
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}

// TestRingHotPathAllocationFree is the alloc gate in the RangeSet style:
// the uncontended push/pop cycle must not allocate.
func TestRingHotPathAllocationFree(t *testing.T) {
	r := New[int](64)
	if allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			if !r.TryPush(i) {
				t.Fatal("TryPush failed on non-full ring")
			}
		}
		for i := 0; i < 32; i++ {
			if _, ok := r.TryPop(); !ok {
				t.Fatal("TryPop failed on non-empty ring")
			}
		}
	}); allocs != 0 {
		t.Fatalf("ring push/pop cycle allocates %v times per run, want 0", allocs)
	}
	// Blocking entry points on a never-full, never-empty ring take the
	// same fast path and must also be allocation-free.
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Push(1)
		r.Pop()
	}); allocs != 0 {
		t.Fatalf("uncontended Push/Pop allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := New[uint64](256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(uint64(i))
		r.Pop()
	}
}

// BenchmarkRingPingPong measures the cross-goroutine hand-off rate — the
// number the pipeline's batch forwarding actually pays.
func BenchmarkRingPingPong(b *testing.B) {
	r := New[uint64](256)
	done := make(chan uint64)
	go func() {
		var sum uint64
		for {
			v, ok := r.Pop()
			if !ok {
				break
			}
			sum += v
		}
		done <- sum
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(1)
	}
	r.Close()
	<-done
}
