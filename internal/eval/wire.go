package eval

// Wire-format experiments: how many bytes an event costs on the wire in
// each trace format, and what decoding it back costs in time. The
// compression table is quoted per corpus — DroidBench apps compress
// differently from synthetic multi-process interleaves because PID
// locality and range reuse drive the delta and dictionary columns — and
// the average bytes/event over all corpora is the number benchgate's
// -max-bytes-per-event gate enforces.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// WireRow compares one corpus's serialized size across formats.
type WireRow struct {
	Corpus  string `json:"corpus"`
	Events  int    `json:"events"`
	V1Bytes int    `json:"v1_bytes"`
	V2Bytes int    `json:"v2_bytes"`
	// BytesPerEvent is the v2 wire cost per event, header included.
	BytesPerEvent float64 `json:"bytes_per_event"`
	// Ratio is V1Bytes/V2Bytes — how many times smaller v2 is.
	Ratio float64 `json:"ratio"`
}

// wireRow encodes one corpus both ways and verifies the v2 bytes decode
// back to the exact event sequence before quoting a size on them.
func wireRow(name string, rec *trace.Recorder) (WireRow, error) {
	var v1, v2 bytes.Buffer
	if _, err := rec.WriteToFormat(&v1, trace.FormatV1); err != nil {
		return WireRow{}, err
	}
	if _, err := rec.WriteToFormat(&v2, trace.FormatV2); err != nil {
		return WireRow{}, err
	}
	back, err := trace.ReadFrom(bytes.NewReader(v2.Bytes()))
	if err != nil {
		return WireRow{}, fmt.Errorf("eval: %s: v2 re-decode: %w", name, err)
	}
	if len(back.Events) != rec.Len() {
		return WireRow{}, fmt.Errorf("eval: %s: v2 re-decode dropped events", name)
	}
	for i := range back.Events {
		if back.Events[i] != rec.Events[i] {
			return WireRow{}, fmt.Errorf("eval: %s: v2 re-decode changed event %d", name, i)
		}
	}
	return WireRow{
		Corpus:        name,
		Events:        rec.Len(),
		V1Bytes:       v1.Len(),
		V2Bytes:       v2.Len(),
		BytesPerEvent: float64(v2.Len()) / float64(rec.Len()),
		Ratio:         float64(v1.Len()) / float64(v2.Len()),
	}, nil
}

// WireCompression measures both wire formats over the paper's corpora:
// every DroidBench app, the multi-process suite interleave, and — when
// syntheticEvents > 0 — single- and multi-process tracegen corpora of
// that size.
func WireCompression(h *Harness, quantum, syntheticEvents int) ([]WireRow, error) {
	var rows []WireRow
	for _, app := range h.Apps() {
		rec, err := h.AppTrace(app)
		if err != nil {
			return nil, err
		}
		row, err := wireRow("droidbench/"+app.Name, rec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	suite, err := h.SuiteWorkload(quantum)
	if err != nil {
		return nil, err
	}
	row, err := wireRow("suite-interleave", suite)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	if syntheticEvents > 0 {
		for _, spec := range []struct {
			name string
			spec tracegen.Spec
		}{
			{"synthetic", tracegen.Spec{Seed: 1, Events: syntheticEvents}},
			{"synthetic-multiproc", tracegen.Spec{Seed: 1, Events: syntheticEvents, PIDs: 16}},
		} {
			row, err := wireRow(spec.name, tracegen.Generate(spec.spec))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AverageBytesPerEvent is the event-weighted v2 wire cost across rows —
// the single number the benchgate compression gate enforces.
func AverageBytesPerEvent(rows []WireRow) float64 {
	var events, v2 int
	for _, r := range rows {
		events += r.Events
		v2 += r.V2Bytes
	}
	if events == 0 {
		return 0
	}
	return float64(v2) / float64(events)
}

// DecodeBenchResult compares full-drain decode throughput of the two
// formats over the same event sequence. Ratio is V2PerSec/V1PerSec; the
// benchgate -min-decode-ratio gate keeps the compressed format from
// buying its bytes with decode time.
type DecodeBenchResult struct {
	Events   int     `json:"events"`
	V1PerSec float64 `json:"v1_per_sec"`
	V2PerSec float64 `json:"v2_per_sec"`
	Ratio    float64 `json:"ratio"`
}

// DecodeBench times NextBatch drains of one seeded multi-process corpus
// serialized in each format, best of repeats, and verifies every drain
// delivers the full declared count.
func DecodeBench(events, repeats int) (*DecodeBenchResult, error) {
	if repeats < 1 {
		repeats = 3
	}
	rec := tracegen.Generate(tracegen.Spec{Seed: 1, Events: events, PIDs: 8})
	drain := func(raw []byte) (time.Duration, error) {
		start := time.Now()
		r, err := trace.NewReader(bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		dst := make([]cpu.Event, 1024)
		var n uint64
		for {
			k, err := r.NextBatch(dst)
			n += uint64(k)
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, err
			}
		}
		if n != uint64(events) {
			return 0, fmt.Errorf("eval: decode bench drained %d of %d events", n, events)
		}
		return time.Since(start), nil
	}
	best := map[trace.Format]time.Duration{}
	for _, f := range []trace.Format{trace.FormatV1, trace.FormatV2} {
		var buf bytes.Buffer
		if _, err := rec.WriteToFormat(&buf, f); err != nil {
			return nil, err
		}
		for k := 0; k < repeats; k++ {
			elapsed, err := drain(buf.Bytes())
			if err != nil {
				return nil, err
			}
			if best[f] == 0 || elapsed < best[f] {
				best[f] = elapsed
			}
		}
	}
	res := &DecodeBenchResult{
		Events:   events,
		V1PerSec: float64(events) / best[trace.FormatV1].Seconds(),
		V2PerSec: float64(events) / best[trace.FormatV2].Seconds(),
	}
	res.Ratio = res.V2PerSec / res.V1PerSec
	return res, nil
}

// RenderWire prints the compression table and, when dec is non-nil, the
// decode-throughput comparison under it.
func RenderWire(rows []WireRow, dec *DecodeBenchResult) string {
	var b strings.Builder
	b.WriteString("Wire formats (PIFTTRC1 fixed records vs PIFTTRC2 compressed blocks)\n")
	b.WriteString("  corpus                        events   v1 bytes   v2 bytes   B/event   ratio\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %7d  %9d  %9d  %8.2f  %5.2fx\n",
			r.Corpus, r.Events, r.V1Bytes, r.V2Bytes, r.BytesPerEvent, r.Ratio)
	}
	fmt.Fprintf(&b, "  average v2 bytes/event: %.2f\n", AverageBytesPerEvent(rows))
	if dec != nil {
		fmt.Fprintf(&b, "  decode throughput (%d events): v1 %.0f ev/s, v2 %.0f ev/s (%.2fx)",
			dec.Events, dec.V1PerSec, dec.V2PerSec, dec.Ratio)
	}
	return strings.TrimRight(b.String(), "\n")
}
