package eval

import (
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/malware"
	"repro/internal/trace"
)

// Figure11Result is the accuracy heatmap of the paper's Figure 11: the
// fraction of the 48-app subset classified correctly at each (NI, NT).
type Figure11Result struct {
	Grid *Grid
	// Levels are the distinct accuracy plateaus that occur, ascending —
	// the paper's color-bar values (79.2%, 83.3%, 95.8%, 97.9%, 100%).
	Levels []float64
}

// Figure11 sweeps the 200 window configurations over the heatmap subset.
func Figure11(h *Harness) (*Figure11Result, error) {
	subset := make([]appTrace, 0, 48)
	for _, a := range h.Apps() {
		if !a.InSubset {
			continue
		}
		rec, err := h.AppTrace(a)
		if err != nil {
			return nil, err
		}
		subset = append(subset, appTrace{leaky: a.Leaky, rec: rec})
	}

	g := NewGrid()
	g.Sweep(func(cfg core.Config) float64 {
		correct := 0
		for _, at := range subset {
			if Detected(at.rec, cfg) == at.leaky {
				correct++
			}
		}
		return float64(correct) / float64(len(subset))
	})

	seen := map[string]float64{}
	for _, row := range g.Cells {
		for _, v := range row {
			seen[fmt.Sprintf("%.4f", v)] = v
		}
	}
	var levels []float64
	for _, v := range seen {
		levels = append(levels, v)
	}
	sortFloats(levels)
	return &Figure11Result{Grid: g, Levels: levels}, nil
}

type appTrace struct {
	leaky bool
	rec   *trace.Recorder
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Render implements the experiment output.
func (r *Figure11Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Grid.Render(
		"Figure 11: accuracy over NI=[1,20] x NT=[1,10], 48-app subset", Pct))
	b.WriteString("plateaus:")
	for _, l := range r.Levels {
		fmt.Fprintf(&b, " %s", Pct(l))
	}
	b.WriteString("\n")
	return b.String()
}

// HeadlineResult is §5.1's summary over the full 57-app suite plus the
// seven malware samples.
type HeadlineResult struct {
	Config         core.Config
	Apps           int
	TruePositives  int
	TrueNegatives  int
	FalsePositives int
	FalseNegatives int
	MissedApps     []string

	MalwareConfig   core.Config
	MalwareDetected int
	MalwareTotal    int
}

// Accuracy returns (TP+TN)/total.
func (r *HeadlineResult) Accuracy() float64 {
	return float64(r.TruePositives+r.TrueNegatives) / float64(r.Apps)
}

// Headline evaluates the paper's headline numbers: the 57 apps at
// (NI=13, NT=3) and the malware at (NI=3, NT=2).
func Headline(h *Harness) (*HeadlineResult, error) {
	res := &HeadlineResult{
		Config:        core.Config{NI: 13, NT: 3, Untaint: true},
		MalwareConfig: core.Config{NI: 3, NT: 2, Untaint: true},
	}
	for _, a := range h.Apps() {
		rec, err := h.AppTrace(a)
		if err != nil {
			return nil, err
		}
		res.Apps++
		det := Detected(rec, res.Config)
		switch {
		case det && a.Leaky:
			res.TruePositives++
		case !det && !a.Leaky:
			res.TrueNegatives++
		case det && !a.Leaky:
			res.FalsePositives++
		default:
			res.FalseNegatives++
			res.MissedApps = append(res.MissedApps, a.Name)
		}
	}

	for _, s := range malware.Samples() {
		res.MalwareTotal++
		tr := core.NewTracker(res.MalwareConfig, nil)
		if _, err := android.Run(s.Prog, android.RunOptions{
			Sinks: []cpu.EventSink{tr},
		}); err != nil {
			return nil, err
		}
		for _, v := range tr.Verdicts() {
			if v.Tainted {
				res.MalwareDetected++
				break
			}
		}
	}
	return res, nil
}

// CategoryRow is the per-category accuracy breakdown (DroidBench reports
// results per flow category).
type CategoryRow struct {
	Category string
	Apps     int
	Correct  int
}

// CategoryBreakdown scores each flow category at the given configuration.
func CategoryBreakdown(h *Harness, cfg core.Config) ([]CategoryRow, error) {
	byCat := map[string]*CategoryRow{}
	var order []string
	for _, a := range h.Apps() {
		rec, err := h.AppTrace(a)
		if err != nil {
			return nil, err
		}
		row := byCat[a.Category]
		if row == nil {
			row = &CategoryRow{Category: a.Category}
			byCat[a.Category] = row
			order = append(order, a.Category)
		}
		row.Apps++
		if Detected(rec, cfg) == a.Leaky {
			row.Correct++
		}
	}
	out := make([]CategoryRow, 0, len(order))
	for _, c := range order {
		out = append(out, *byCat[c])
	}
	return out, nil
}

// RenderCategoryBreakdown prints the per-category table.
func RenderCategoryBreakdown(rows []CategoryRow, cfg core.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-category accuracy at %v\n", cfg)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %2d/%2d\n", r.Category, r.Correct, r.Apps)
	}
	return b.String()
}

// Render implements the experiment output.
func (r *HeadlineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline (§5.1) at %v over %d apps:\n", r.Config, r.Apps)
	fmt.Fprintf(&b, "  accuracy        %s\n", Pct(r.Accuracy()))
	fmt.Fprintf(&b, "  false positives %d (paper: 0 of 16)\n", r.FalsePositives)
	fmt.Fprintf(&b, "  false negatives %d (paper: 1 of 41)", r.FalseNegatives)
	if len(r.MissedApps) > 0 {
		fmt.Fprintf(&b, " — missed: %s", strings.Join(r.MissedApps, ", "))
	}
	fmt.Fprintf(&b, "\n  malware at %v: %d/%d detected (paper: 7/7)\n",
		r.MalwareConfig, r.MalwareDetected, r.MalwareTotal)
	return b.String()
}
