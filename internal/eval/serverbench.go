package eval

// Server ingest benchmark: the serving-layer analogue of the pipeline
// scaling sweep. A real server.Server behind a real HTTP listener
// ingests a serialized multi-process corpus at each worker count; the
// artifact it produces (BENCH_server.json) is what CI's
// server-scaling-gate job compares against the committed baseline.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// ServerBenchResult is the JSON artifact piftbench -exp server writes.
// Scaling rows measure end-to-end ingest through the HTTP boundary —
// spool, sharded decode, split/merge, ack — not just tracker math, so
// the gate certifies what a tenant actually experiences.
type ServerBenchResult struct {
	Config  core.Config `json:"config"`
	Events  int         `json:"events"`
	Workers []int       `json:"workers"`
	Repeats int         `json:"repeats"`
	// NumCPU records the measuring machine's parallelism; benchgate's
	// -min-server-scaling floor consults it and skips enforcement on
	// machines that physically cannot exhibit the gated speedup.
	NumCPU int `json:"num_cpu"`
	// WireFormat is the trace format the corpus crossed the wire in.
	WireFormat string               `json:"wire_format,omitempty"`
	Scaling    []PipelineScalingRow `json:"scaling"`
	Snapshot   metrics.Snapshot     `json:"metrics"`
}

// ServerBench times whole-stream session ingest at each worker count
// over one seeded multi-process corpus serialized in format f,
// best-of-repeats. Every run's verdicts are checked against the
// sequential replay in canonical order, so a scaling number can never be
// quoted on a wrong answer. Worker count 1 disables parallel ingest
// entirely — it is the sequential baseline the speedup column is
// relative to.
func ServerBench(cfg core.Config, workerCounts []int, events, repeats int, f trace.Format) (*ServerBenchResult, error) {
	if repeats < 1 {
		repeats = 3
	}
	rec := tracegen.Generate(tracegen.Spec{Seed: 7, Events: events})
	var wire bytes.Buffer
	if _, err := rec.WriteToFormat(&wire, f); err != nil {
		return nil, err
	}
	raw := wire.Bytes()
	want := OneShotVerdicts(rec.Events, cfg)
	core.SortVerdicts(want)

	reg := metrics.NewRegistry()
	var rows []PipelineScalingRow
	for _, n := range workerCounts {
		dir, err := os.MkdirTemp("", "pift-serverbench-*")
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Tracker:           cfg,
			SpillDir:          dir,
			Registry:          reg,
			MemoryBudget:      1 << 40, // never spill mid-measurement
			IngestWorkers:     n,
			WorkerBudget:      n,
			ParallelThreshold: 1,
			SpoolMemBytes:     int64(len(raw)) + 1, // spool in memory, measure compute not disk
			MaxSpoolBytes:     int64(len(raw)) + 1,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		mux := http.NewServeMux()
		srv.Register(mux)
		ts := httptest.NewServer(mux)

		best := time.Duration(0)
		for k := 0; k < repeats; k++ {
			id := fmt.Sprintf("bench-w%d-r%d", n, k)
			elapsed, err := timedIngest(ts, id, raw, uint64(events))
			if err == nil {
				err = checkFinalize(ts, id, want)
			}
			if err != nil {
				ts.Close()
				os.RemoveAll(dir)
				return nil, fmt.Errorf("eval: server bench %d workers repeat %d: %w", n, k, err)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		ts.Close()
		os.RemoveAll(dir)

		row := PipelineScalingRow{
			Workers:   n,
			Events:    events,
			Elapsed:   best,
			PerSecond: float64(events) / best.Seconds(),
		}
		if len(rows) > 0 {
			row.Speedup = row.PerSecond / rows[0].PerSecond
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return &ServerBenchResult{
		Config:     cfg,
		Events:     events,
		Workers:    workerCounts,
		Repeats:    repeats,
		NumCPU:     runtime.NumCPU(),
		WireFormat: f.String(),
		Scaling:    rows,
		Snapshot:   reg.Snapshot(),
	}, nil
}

// timedIngest posts the whole corpus as one session upload and returns
// the wall time of the request.
func timedIngest(ts *httptest.Server, id string, raw []byte, events uint64) (time.Duration, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+id+"/events", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("PIFT-Offset", "0")
	start := time.Now()
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	var ir server.IngestResponse
	derr := json.NewDecoder(resp.Body).Decode(&ir)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if derr != nil || resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("ingest status %d (decode %v, error %q)", resp.StatusCode, derr, ir.Error)
	}
	if ir.Acked != events {
		return 0, fmt.Errorf("acked %d of %d events", ir.Acked, events)
	}
	return elapsed, nil
}

// checkFinalize DELETEs the session — freeing its tracker before the
// next repeat — and verifies the returned verdicts match the sequential
// replay in canonical order.
func checkFinalize(ts *httptest.Server, id string, want []core.SinkVerdict) error {
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return err
	}
	var vr server.VerdictsResponse
	derr := json.NewDecoder(resp.Body).Decode(&vr)
	resp.Body.Close()
	if derr != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("finalize status %d (decode %v)", resp.StatusCode, derr)
	}
	got := make([]core.SinkVerdict, len(vr.Verdicts))
	for i, v := range vr.Verdicts {
		got[i] = core.SinkVerdict{Tag: v.Tag, PID: v.PID, Seq: v.Seq, Tainted: v.Tainted}
	}
	core.SortVerdicts(got)
	if !VerdictsEqual(got, want) {
		return fmt.Errorf("verdicts diverge from sequential replay (%d vs %d)", len(got), len(want))
	}
	return nil
}

// WriteJSON serializes the artifact, indented for human diffing.
func (r *ServerBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
