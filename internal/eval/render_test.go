package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestGridRenderAndAt(t *testing.T) {
	g := NewGrid()
	if len(g.NIs) != 20 || len(g.NTs) != 10 {
		t.Fatalf("grid dims %dx%d", len(g.NIs), len(g.NTs))
	}
	g.Set(12, 2, 0.979) // NI=13, NT=3
	if v, ok := g.At(13, 3); !ok || v != 0.979 {
		t.Fatalf("At(13,3) = %v, %v", v, ok)
	}
	if _, ok := g.At(99, 1); ok {
		t.Fatal("unknown NI accepted")
	}
	if _, ok := g.At(1, 99); ok {
		t.Fatal("unknown NT accepted")
	}
	out := g.Render("test grid", Pct)
	if !strings.Contains(out, "test grid") || !strings.Contains(out, "97.9%") {
		t.Fatalf("render:\n%s", out)
	}
	// NT rows render top-down from the highest.
	if strings.Index(out, "NT=10") > strings.Index(out, "NT=1 ") {
		t.Error("NT rows not descending")
	}
}

func TestSweepParallelDeterminism(t *testing.T) {
	g1, g2 := NewGrid(), NewGrid()
	fn := func(cfg core.Config) float64 {
		return float64(cfg.NI)*100 + float64(cfg.NT)
	}
	g1.Sweep(fn)
	g2.Sweep(fn)
	for j := range g1.Cells {
		for i := range g1.Cells[j] {
			if g1.Cells[j][i] != g2.Cells[j][i] {
				t.Fatalf("nondeterministic sweep at [%d][%d]", j, i)
			}
			want := float64(g1.NIs[i])*100 + float64(g1.NTs[j])
			if g1.Cells[j][i] != want {
				t.Fatalf("cell [%d][%d] = %v, want %v", j, i, g1.Cells[j][i], want)
			}
		}
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.979) != "97.9%" {
		t.Errorf("Pct = %q", Pct(0.979))
	}
	if Count(1234.0) != "1234" {
		t.Errorf("Count = %q", Count(1234))
	}
}

func TestAllSampleStats(t *testing.T) {
	rows, err := AllSampleStats(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's claim must hold on every execution: "the range
		// 0–10 captures 99% of all loads and stores".
		if r.CDF10 < 0.99 {
			t.Errorf("%s: CDF(10) = %.3f", r.Name, r.CDF10)
		}
		if r.CDF5 < 0.5 {
			t.Errorf("%s: bulk not within 0–5 (CDF=%.3f)", r.Name, r.CDF5)
		}
		if r.Events == 0 {
			t.Errorf("%s: empty trace", r.Name)
		}
	}
	if out := RenderSampleStats(rows); !strings.Contains(out, "LGRoot") {
		t.Error("render missing sample name")
	}
}

func TestCategoryBreakdown(t *testing.T) {
	h := newTestHarness()
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	rows, err := CategoryBreakdown(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total, correct := 0, 0
	for _, r := range rows {
		total += r.Apps
		correct += r.Correct
		if r.Category == "implicit-switch" && r.Correct != 0 {
			t.Error("implicit-switch should be the miss at (13,3)")
		}
		if strings.HasPrefix(r.Category, "benign") && r.Correct != r.Apps {
			t.Errorf("benign category %s not fully correct", r.Category)
		}
	}
	if total != 57 || correct != 56 {
		t.Fatalf("breakdown sums %d/%d, want 56/57", correct, total)
	}
	if out := RenderCategoryBreakdown(rows, cfg); !strings.Contains(out, "direct") {
		t.Error("render missing categories")
	}
}

func TestTimeSeriesRender(t *testing.T) {
	h := newTestHarness()
	r, err := TimeSeries(h, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"Figure 15", "Figure 16", "( 5,1)", "(20,3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("time series render missing %q", want)
		}
	}
}

func TestFigure11Render(t *testing.T) {
	h := newTestHarness()
	r, err := Figure11(h)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "plateaus:") || !strings.Contains(out, "100.0%") {
		t.Fatalf("figure 11 render:\n%s", out)
	}
}

func TestSummaryAllClaimsHold(t *testing.T) {
	h := newTestHarness()
	rows, err := Summary(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d summary rows", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("claim not reproduced: %s (paper %s, measured %s)",
				r.Claim, r.Paper, r.Measured)
		}
	}
	if out := RenderSummary(rows); !strings.Contains(out, "all claims reproduced") {
		t.Error("render should confirm all claims")
	}
}
