package eval

import (
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/malware"
	"repro/internal/trace"
	"repro/internal/tracestat"
)

// ModeStats is the memory-operation profile of LGRoot under one execution
// tier (§4.1: interpreter vs Dalvik JIT vs ART AOT).
type ModeStats struct {
	Mode      dalvik.Mode
	Collector *tracestat.Collector
	Instr     uint64
	Events    int
	Detected  bool // at the paper's (13,3)
}

// JITComparisonResult compares the profiles across the three execution
// tiers — §4.1's "we profiled the memory operation profile as in Figure 2
// without JIT, but the patterns were identical" and "ART does not impact
// the accuracy of our taint-propagation algorithm".
type JITComparisonResult struct {
	Rows []ModeStats
}

// JITComparison runs LGRoot under every translation tier, collects each
// Figure 2 distribution, and checks the (13,3) detection verdicts.
func JITComparison(scale int) (*JITComparisonResult, error) {
	res := &JITComparisonResult{}
	for _, mode := range []dalvik.Mode{dalvik.ModeInterp, dalvik.ModeJIT, dalvik.ModeAOT} {
		rec := trace.NewRecorder(1 << 16)
		r, err := android.Run(malware.LGRoot(scale), android.RunOptions{
			Sinks: []cpu.EventSink{rec},
			Mode:  mode,
		})
		if err != nil {
			return nil, fmt.Errorf("mode %v: %w", mode, err)
		}
		c := tracestat.NewCollector()
		rec.Replay(c)
		c.Finish()
		res.Rows = append(res.Rows, ModeStats{
			Mode:      mode,
			Collector: c,
			Instr:     r.Instructions,
			Events:    rec.Len(),
			Detected:  Detected(rec, core.Config{NI: 13, NT: 3, Untaint: true}),
		})
	}
	return res, nil
}

// Baseline returns the interpreter row.
func (r *JITComparisonResult) Baseline() ModeStats { return r.Rows[0] }

// MaxCDFDelta returns the largest absolute difference between the baseline
// store-to-last-load CDF and the given tier's, over distances 0..30 — the
// "patterns identical" metric.
func (r *JITComparisonResult) MaxCDFDelta(row ModeStats) float64 {
	var max float64
	base := r.Baseline().Collector.StoreToLastLoad
	for d := 0; d <= 30; d++ {
		delta := base.CDF(d) - row.Collector.StoreToLastLoad.CDF(d)
		if delta < 0 {
			delta = -delta
		}
		if delta > max {
			max = delta
		}
	}
	return max
}

// Render prints the comparison.
func (r *JITComparisonResult) Render() string {
	var b strings.Builder
	b.WriteString("JIT/AOT ablation (§4.1): execution tiers on LGRoot\n")
	b.WriteString("  tier     instructions   mem events   CDF(5)  CDF(10)  maxΔCDF  detected(13,3)\n")
	for _, row := range r.Rows {
		h := row.Collector.StoreToLastLoad
		fmt.Fprintf(&b, "  %-7s  %12d  %11d   %.3f    %.3f    %.3f   %v\n",
			row.Mode, row.Instr, row.Events, h.CDF(5), h.CDF(10),
			r.MaxCDFDelta(row), row.Detected)
	}
	return b.String()
}

// DetectedStore is Detected with an explicit hardware store model.
func DetectedStore(rec *trace.Recorder, cfg core.Config, store core.Store) bool {
	tr := core.NewTracker(cfg, store)
	rec.Replay(tr)
	for _, v := range tr.Verdicts() {
		if v.Tainted {
			return true
		}
	}
	return false
}

// StoreAblationRow is the accuracy of one taint-storage design over the
// full 57-app suite at the paper's configuration.
type StoreAblationRow struct {
	Name           string
	Correct        int
	Total          int
	FalsePositives int
	FalseNegatives int
}

// Accuracy returns the fraction classified correctly.
func (r StoreAblationRow) Accuracy() float64 { return float64(r.Correct) / float64(r.Total) }

// StoreAblation compares the §3.3 storage designs: the unbounded ideal
// store, bounded range caches (LRU with secondary storage, and drop), and
// the fixed-granularity word store, all at (NI=13, NT=3).
func StoreAblation(h *Harness) ([]StoreAblationRow, error) {
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	designs := []struct {
		name string
		mk   func() core.Store
	}{
		{"ideal (unbounded)", func() core.Store { return core.NewIdealStore() }},
		{"range cache 32KiB LRU", func() core.Store { return core.NewRangeCacheBytes(32*1024, core.EvictLRU) }},
		{"range cache 64-entry LRU", func() core.Store { return core.NewRangeCache(64, core.EvictLRU) }},
		{"range cache 64-entry drop", func() core.Store { return core.NewRangeCache(64, core.EvictDrop) }},
		{"range cache 8-entry drop", func() core.Store { return core.NewRangeCache(8, core.EvictDrop) }},
		{"word-granularity (4B)", func() core.Store { return core.NewWordStore(2) }},
		{"mondrian trie", func() core.Store { return core.NewMondrianStore() }},
	}
	var rows []StoreAblationRow
	for _, d := range designs {
		row := StoreAblationRow{Name: d.name}
		for _, a := range h.Apps() {
			rec, err := h.AppTrace(a)
			if err != nil {
				return nil, err
			}
			row.Total++
			det := DetectedStore(rec, cfg, d.mk())
			switch {
			case det == a.Leaky:
				row.Correct++
			case det && !a.Leaky:
				row.FalsePositives++
			default:
				row.FalseNegatives++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderStoreAblation prints the comparison.
func RenderStoreAblation(rows []StoreAblationRow) string {
	var b strings.Builder
	b.WriteString("Taint-storage ablation (§3.3) at NI=13, NT=3 over 57 apps\n")
	b.WriteString("  design                        accuracy   FP  FN\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s  %7s  %3d %3d\n",
			r.Name, Pct(r.Accuracy()), r.FalsePositives, r.FalseNegatives)
	}
	return b.String()
}

// CacheCapacityRow is one point of the capacity sweep: how a drop-policy
// cache's size bounds detection on the long LGRoot trace.
type CacheCapacityRow struct {
	Capacity int
	Detected bool
	Drops    uint64
	Lookups  uint64
}

// CacheCapacity sweeps drop-policy cache sizes on the LGRoot trace — the
// §3.3 trade-off "it may increase the possibility of false negative
// because it may lose some sensitive data flow".
func CacheCapacity(h *Harness, capacities []int) ([]CacheCapacityRow, error) {
	rec, err := h.LGRootTrace()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	var rows []CacheCapacityRow
	for _, cap := range capacities {
		store := core.NewRangeCache(cap, core.EvictDrop)
		det := DetectedStore(rec, cfg, store)
		st := store.Stats()
		rows = append(rows, CacheCapacityRow{
			Capacity: cap,
			Detected: det,
			Drops:    st.Drops,
			Lookups:  st.Lookups,
		})
	}
	return rows, nil
}

// RenderCacheCapacity prints the sweep.
func RenderCacheCapacity(rows []CacheCapacityRow) string {
	var b strings.Builder
	b.WriteString("Range-cache capacity sweep (drop policy, LGRoot, NI=13 NT=3)\n")
	b.WriteString("  entries   detected   drops      lookups\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %7d   %-8v   %-9d  %d\n", r.Capacity, r.Detected, r.Drops, r.Lookups)
	}
	return b.String()
}
