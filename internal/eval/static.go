package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/frontend"
	"repro/internal/malware"
)

// Table1Row groups bytecodes by their within-template native load→store
// distance, as in the paper's Table 1.
type Table1Row struct {
	Distance int // -1 = unknown (ABI helper call)
	Opcodes  []string
}

// Table1 measures every translation template of the default (Dalvik) front
// end and groups opcodes by the measured distance.
func Table1() ([]Table1Row, error) {
	return Table1For(defaultFrontend())
}

// Table1For measures every translation template of the given front end and
// groups opcodes by the measured distance. The measurement is live: each
// opcode is translated and the emitted template's data load/store positions
// are inspected, so a template regression would change this table.
func Table1For(fe frontend.Frontend) ([]Table1Row, error) {
	infos, err := fe.Templates()
	if err != nil {
		return nil, err
	}
	byDist := map[int][]string{}
	seen := map[string]bool{}
	for _, m := range infos {
		if seen[m.Op] {
			continue
		}
		seen[m.Op] = true
		if !m.MovesData {
			continue
		}
		if m.HelperCall {
			byDist[-1] = append(byDist[-1], m.Op)
			continue
		}
		if m.HasDistance {
			byDist[m.Distance] = append(byDist[m.Distance], m.Op)
		}
	}
	var dists []int
	for d := range byDist {
		dists = append(dists, d)
	}
	sort.Ints(dists)
	// Unknown (-1) sorts first; the paper lists it last.
	if len(dists) > 0 && dists[0] == -1 {
		dists = append(dists[1:], -1)
	}
	var rows []Table1Row
	for _, d := range dists {
		ops := byDist[d]
		sort.Strings(ops)
		rows = append(rows, Table1Row{Distance: d, Opcodes: ops})
	}
	return rows, nil
}

// RenderTable1 prints the distance groups for the Dalvik front end.
func RenderTable1(rows []Table1Row) string {
	return RenderTable1For("Dalvik", rows)
}

// RenderTable1For prints the distance groups, naming the front end.
func RenderTable1For(feName string, rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: native load-store distances within %s bytecodes\n", feName)
	b.WriteString("  Distance  Cnt  Bytecodes\n")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Distance)
		if r.Distance == -1 {
			label = "Unknown"
		}
		ops := strings.Join(r.Opcodes, ", ")
		if len(ops) > 70 {
			ops = ops[:67] + "..."
		}
		fmt.Fprintf(&b, "  %-8s  %3d  %s\n", label, len(r.Opcodes), ops)
	}
	return b.String()
}

// Figure10Row is one line of the bytecode-frequency table.
type Figure10Row struct {
	Opcode    string
	Fraction  float64
	MovesData bool
	Distance  int // 0 when not applicable, -1 unknown
}

// Figure10Result holds the two static-frequency tables of the paper's
// Figure 10. The paper scans the dex files of Google stock applications
// and the Android system libraries; this reproduction scans the harness's
// benchmark suite (the "applications" corpus) and, for the Dalvik front
// end, the malware suite (standing in for a second, independently-written
// corpus).
type Figure10Result struct {
	Suite  string
	Apps   []Figure10Row
	System []Figure10Row
}

// Figure10 computes the top-N opcode frequencies for both corpora, using
// the harness's suite as the application corpus and its front end's
// live-measured templates for the distance annotations.
func Figure10(h *Harness, topN int) *Figure10Result {
	moves, dist := templateAnnotations(h.Frontend())
	appCount := map[string]int{}
	for _, a := range h.Apps() {
		countOps(a.Prog, appCount)
	}
	res := &Figure10Result{
		Suite: h.Suite().Name(),
		Apps:  topRows(appCount, topN, moves, dist),
	}
	// The malware corpus is Dalvik bytecode; annotate it only when the
	// harness's template measurements apply to it.
	if h.Frontend().Name() == "dalvik" {
		sysCount := map[string]int{}
		for _, s := range malware.Samples() {
			countOps(s.Prog, sysCount)
		}
		res.System = topRows(sysCount, topN, moves, dist)
	}
	return res
}

// templateAnnotations reduces the front end's template measurements to
// per-opcode annotations. Templates that never measured a distance (or
// span helpers) map to -1, matching the paper's "unknown" rows.
func templateAnnotations(fe frontend.Frontend) (moves map[string]bool, dist map[string]int) {
	moves = map[string]bool{}
	dist = map[string]int{}
	infos, err := fe.Templates()
	if err != nil {
		return moves, dist
	}
	for _, m := range infos {
		if _, ok := moves[m.Op]; ok {
			continue
		}
		moves[m.Op] = m.MovesData
		switch {
		case m.HelperCall:
			dist[m.Op] = -1
		case m.HasDistance:
			dist[m.Op] = m.Distance
		}
	}
	return moves, dist
}

func countOps(p frontend.Program, into map[string]int) {
	for op, n := range p.OpCounts() {
		into[op] += n
	}
}

func topRows(count map[string]int, topN int, moves map[string]bool, dist map[string]int) []Figure10Row {
	total := 0
	for _, n := range count {
		total += n
	}
	type kv struct {
		op string
		n  int
	}
	var all []kv
	for op, n := range count {
		all = append(all, kv{op, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].op < all[j].op
	})
	if topN > 0 && len(all) > topN {
		all = all[:topN]
	}
	var rows []Figure10Row
	for _, e := range all {
		rows = append(rows, Figure10Row{
			Opcode:    e.op,
			Fraction:  float64(e.n) / float64(total),
			MovesData: moves[e.op],
			Distance:  dist[e.op],
		})
	}
	return rows
}

// Render prints both corpora side by side in the paper's format: share of
// appearances, with the data-moving bytecodes carrying their load-store
// distance.
func (r *Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: bytecode frequency (top rows)\n")
	dump := func(title string, rows []Figure10Row) {
		fmt.Fprintf(&b, "  %s\n", title)
		for _, row := range rows {
			dist := ""
			if row.MovesData {
				if row.Distance == -1 {
					dist = "  L-S: unknown"
				} else if row.Distance > 0 {
					dist = fmt.Sprintf("  L-S: %d", row.Distance)
				}
			}
			fmt.Fprintf(&b, "    %-22s %6.2f%%%s\n",
				row.Opcode, 100*row.Fraction, dist)
		}
	}
	dump("(a) DroidBench applications", r.Apps)
	if r.System != nil {
		dump("(b) malware corpus", r.System)
	}
	return b.String()
}
