package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arm"
	"repro/internal/dalvik"
	"repro/internal/malware"
	"repro/internal/mem"
)

// Table1Row groups bytecodes by their within-template native load→store
// distance, as in the paper's Table 1.
type Table1Row struct {
	Distance int // -1 = unknown (ABI helper call)
	Opcodes  []string
}

// Table1 measures every translation template and groups opcodes by the
// measured distance. The measurement is live: each opcode is translated
// and the emitted template's data load/store positions are inspected, so a
// template regression would change this table.
func Table1() ([]Table1Row, error) {
	metas, err := translateAllOps()
	if err != nil {
		return nil, err
	}
	byDist := map[int][]string{}
	seen := map[dalvik.Opcode]bool{}
	for _, m := range metas {
		if seen[m.Op] {
			continue
		}
		seen[m.Op] = true
		if !m.Op.MovesData() {
			continue
		}
		if m.HelperCall {
			byDist[-1] = append(byDist[-1], m.Op.String())
			continue
		}
		if d, ok := m.Distance(); ok {
			byDist[d] = append(byDist[d], m.Op.String())
		}
	}
	var dists []int
	for d := range byDist {
		dists = append(dists, d)
	}
	sort.Ints(dists)
	// Unknown (-1) sorts first; the paper lists it last.
	if len(dists) > 0 && dists[0] == -1 {
		dists = append(dists[1:], -1)
	}
	var rows []Table1Row
	for _, d := range dists {
		ops := byDist[d]
		sort.Strings(ops)
		rows = append(rows, Table1Row{Distance: d, Opcodes: ops})
	}
	return rows, nil
}

// translateAllOps builds a program exercising every opcode and returns the
// translation metadata.
func translateAllOps() ([]dalvik.InsnMeta, error) {
	b := dalvik.NewProgram("table1")
	b.Class("C", "f")
	b.Statics("s")
	b.Method("Callee.m", 4, 1).Return(0)
	m := b.Method("Main.main", 6, 0)
	m.Move(0, 1)
	m.MoveFrom16(0, 1)
	m.Move16(0, 1)
	m.MoveObject(0, 1)
	m.MoveObjectFrom16(0, 1)
	m.InvokeStatic("Callee.m", 1)
	m.MoveResult(0)
	m.InvokeStatic("Callee.m", 1)
	m.MoveResultObject(0)
	for _, op := range []dalvik.Opcode{
		dalvik.OpAddInt, dalvik.OpSubInt, dalvik.OpMulInt, dalvik.OpAndInt,
		dalvik.OpOrInt, dalvik.OpXorInt, dalvik.OpShlInt, dalvik.OpShrInt,
	} {
		m.Binop(op, 0, 1, 2)
	}
	for _, op := range []dalvik.Opcode{
		dalvik.OpAddInt2Addr, dalvik.OpSubInt2Addr, dalvik.OpMulInt2Addr,
		dalvik.OpAndInt2Addr, dalvik.OpOrInt2Addr, dalvik.OpXorInt2Addr,
		dalvik.OpShlInt2Addr, dalvik.OpShrInt2Addr,
	} {
		m.Binop2Addr(op, 0, 1)
	}
	for _, op := range []dalvik.Opcode{
		dalvik.OpAddIntLit8, dalvik.OpMulIntLit8, dalvik.OpAndIntLit8,
		dalvik.OpRsubIntLit8, dalvik.OpXorIntLit8, dalvik.OpDivIntLit8,
		dalvik.OpRemIntLit8,
	} {
		m.BinopLit8(op, 0, 1, 3)
	}
	m.Binop(dalvik.OpDivInt, 0, 1, 2)
	m.Binop(dalvik.OpRemInt, 0, 1, 2)
	m.NegInt(0, 1)
	m.Binop2Addr(dalvik.OpNotInt, 0, 1)
	m.IntToChar(0, 1)
	m.Binop2Addr(dalvik.OpIntToByte, 0, 1)
	m.ArrayLength(0, 1)
	m.Aget(0, 1, 2)
	m.Aput(0, 1, 2)
	m.AgetChar(0, 1, 2)
	m.AputChar(0, 1, 2)
	m.AgetObject(0, 1, 2)
	m.AputObject(0, 1, 2)
	m.Iget(0, 1, "C.f")
	m.Iput(0, 1, "C.f")
	m.IgetObject(0, 1, "C.f")
	m.IputObject(0, 1, "C.f")
	m.Sget(0, "s")
	m.Sput(0, "s")
	m.SgetObject(0, "s")
	m.SputObject(0, "s")
	m.Return(0)
	b.Entry("Main.main")
	prog, err := b.Build(map[string]bool{})
	if err != nil {
		return nil, err
	}

	asm := arm.NewAssembler(dalvik.CodeBase)
	rt := &measureRuntime{asm: asm}
	asm.Label("measure$extern")
	asm.Emit(arm.BxLR())
	tr, err := dalvik.Translate(prog, asm, rt)
	if err != nil {
		return nil, err
	}
	return tr.Meta, nil
}

// measureRuntime is the minimal dalvik.Runtime needed to translate for
// measurement: no real heap, every extern resolves to a stub.
type measureRuntime struct {
	asm  *arm.Assembler
	next mem.Addr
}

func (m *measureRuntime) InternString(string) mem.Addr {
	m.next += 0x40
	return dalvik.HeapBase + m.next
}

func (m *measureRuntime) ExternEntry(string) (string, bool) {
	return "measure$extern", true
}

// RenderTable1 prints the distance groups.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: native load-store distances within Dalvik bytecodes\n")
	b.WriteString("  Distance  Cnt  Bytecodes\n")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Distance)
		if r.Distance == -1 {
			label = "Unknown"
		}
		ops := strings.Join(r.Opcodes, ", ")
		if len(ops) > 70 {
			ops = ops[:67] + "..."
		}
		fmt.Fprintf(&b, "  %-8s  %3d  %s\n", label, len(r.Opcodes), ops)
	}
	return b.String()
}

// Figure10Row is one line of the bytecode-frequency table.
type Figure10Row struct {
	Opcode    dalvik.Opcode
	Fraction  float64
	MovesData bool
	Distance  int // 0 when not applicable, -1 unknown
}

// Figure10Result holds the two static-frequency tables of the paper's
// Figure 10. The paper scans the dex files of Google stock applications
// and the Android system libraries; this reproduction scans the DroidBench
// suite (the "applications" corpus) and the malware suite (standing in for
// a second, independently-written corpus).
type Figure10Result struct {
	Apps   []Figure10Row
	System []Figure10Row
}

// Figure10 computes the top-N opcode frequencies for both corpora.
func Figure10(h *Harness, topN int) *Figure10Result {
	appCount := map[dalvik.Opcode]int{}
	for _, a := range h.Apps() {
		countOps(a.Prog, appCount)
	}
	sysCount := map[dalvik.Opcode]int{}
	for _, s := range malware.Samples() {
		countOps(s.Prog, sysCount)
	}
	return &Figure10Result{
		Apps:   topRows(appCount, topN),
		System: topRows(sysCount, topN),
	}
}

func countOps(p *dalvik.Program, into map[dalvik.Opcode]int) {
	for _, name := range p.MethodNames() {
		for _, in := range p.Methods[name].Insns {
			into[in.Op]++
		}
	}
}

func topRows(count map[dalvik.Opcode]int, topN int) []Figure10Row {
	total := 0
	for _, n := range count {
		total += n
	}
	type kv struct {
		op dalvik.Opcode
		n  int
	}
	var all []kv
	for op, n := range count {
		all = append(all, kv{op, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].op < all[j].op
	})
	if topN > 0 && len(all) > topN {
		all = all[:topN]
	}
	var rows []Figure10Row
	for _, e := range all {
		row := Figure10Row{
			Opcode:    e.op,
			Fraction:  float64(e.n) / float64(total),
			MovesData: e.op.MovesData(),
		}
		if d, ok := e.op.TableDistance(); ok {
			row.Distance = d
		}
		rows = append(rows, row)
	}
	return rows
}

// Render prints both corpora side by side in the paper's format: share of
// appearances, with the data-moving bytecodes carrying their load-store
// distance.
func (r *Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: bytecode frequency (top rows)\n")
	dump := func(title string, rows []Figure10Row) {
		fmt.Fprintf(&b, "  %s\n", title)
		for _, row := range rows {
			dist := ""
			if row.MovesData {
				if row.Distance == -1 {
					dist = "  L-S: unknown"
				} else if row.Distance > 0 {
					dist = fmt.Sprintf("  L-S: %d", row.Distance)
				}
			}
			fmt.Fprintf(&b, "    %-22s %6.2f%%%s\n",
				row.Opcode, 100*row.Fraction, dist)
		}
	}
	dump("(a) DroidBench applications", r.Apps)
	dump("(b) malware corpus", r.System)
	return b.String()
}
