package eval_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

// TestWireCompression is the compression acceptance bar from the wire
// format's design brief: at most 6 bytes/event averaged over DroidBench
// and the synthetic corpora (25 bytes/event on v1 — at least a 4x
// reduction), with every corpus's v2 bytes verified to decode back to
// the exact event sequence before a size is quoted.
func TestWireCompression(t *testing.T) {
	h := eval.NewHarness(10)
	rows, err := eval.WireCompression(h, 64, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d corpora measured", len(rows))
	}
	avg := eval.AverageBytesPerEvent(rows)
	t.Logf("\n%s", eval.RenderWire(rows, nil))
	if avg > 6 {
		t.Fatalf("average v2 wire cost %.2f bytes/event, want ≤6", avg)
	}
	// The ≥4x reduction is an aggregate bar: tiny apps (tens of events)
	// amortize the fixed 16-byte header badly, so individually they only
	// need to clear a 3x sanity floor.
	var v1Total, v2Total int
	for _, r := range rows {
		v1Total += r.V1Bytes
		v2Total += r.V2Bytes
		if r.Ratio < 3 {
			t.Errorf("%s: v2 only %.2fx smaller than v1, want ≥3x", r.Corpus, r.Ratio)
		}
	}
	if overall := float64(v1Total) / float64(v2Total); overall < 4 {
		t.Fatalf("overall reduction %.2fx across all corpora, want ≥4x", overall)
	}
}

// TestDecodeBench smoke-tests the decode comparison: both drains complete
// and the render includes both numbers. The throughput floor itself is
// benchgate's job, on a quiet machine.
func TestDecodeBench(t *testing.T) {
	dec, err := eval.DecodeBench(30000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dec.V1PerSec <= 0 || dec.V2PerSec <= 0 || dec.Ratio <= 0 {
		t.Fatalf("degenerate decode bench: %+v", dec)
	}
	out := eval.RenderWire(nil, dec)
	if !strings.Contains(out, "decode throughput") {
		t.Fatalf("render missing decode line:\n%s", out)
	}
}

// TestSyntheticScalingV2 runs the shard-owned scaling sweep over a
// v2-serialized corpus — the configuration the scaling-gate CI job uses.
func TestSyntheticScalingV2(t *testing.T) {
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	rows, err := eval.SyntheticScaling(cfg, []int{1, 2}, 30000, 1, trace.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Events != 30000 {
		t.Fatalf("unexpected sweep shape: %+v", rows)
	}
}
