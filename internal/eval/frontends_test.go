package eval

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/droidbench"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestStackVMExperiment runs the -exp stackvm analysis end to end and
// pins its headline result: the DIFT oracle is exact, the unbounded
// window matches it, and the finite window misses exactly the deep
// spill/reload apps.
func TestStackVMExperiment(t *testing.T) {
	h := NewHarness(3)
	r, err := StackVM(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("%d rows, want 11", len(r.Rows))
	}
	wantMiss := map[string]bool{
		"SSpillReloadSerialSms": true,
		"SSpillDeepImeiHttp":    true,
	}
	for _, row := range r.Rows {
		if row.Dift != row.Leaky {
			t.Errorf("%s: DIFT %v vs ground truth %v", row.App, row.Dift, row.Leaky)
		}
		if row.Unbounded != row.Leaky {
			t.Errorf("%s: PIFT@inf %v vs ground truth %v", row.App, row.Unbounded, row.Leaky)
		}
		wantPaper := row.Leaky && !wantMiss[row.App]
		if row.Paper != wantPaper {
			t.Errorf("%s: PIFT@paper %v, want %v", row.App, row.Paper, wantPaper)
		}
		if row.Events == 0 {
			t.Errorf("%s: empty trace", row.App)
		}
	}
	fes := r.Breakdown.Frontends()
	if len(fes) != 2 || fes[0] != "dalvik" || fes[1] != "stackvm" {
		t.Fatalf("breakdown frontends %v, want [dalvik stackvm]", fes)
	}
	for _, fe := range fes {
		c, ok := r.Breakdown.Get(fe)
		if !ok || c.StoreToLastLoad.Count() == 0 {
			t.Errorf("%s: empty distance population", fe)
		}
	}
	out := r.Render()
	for _, want := range []string{"window miss", "dalvik", "stackvm", "8/8"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FALSE POSITIVE") {
		t.Errorf("render reports a false positive:\n%s", out)
	}
}

// TestStackVMPipelineParity is the cross-frontend pipeline parity gate:
// stack-VM traces must flow through the concurrent pipeline — via the
// in-process sink, the streaming Drain reader, and the shard-owned
// DrainTrace planner — byte-identically to the sequential tracker at
// every worker count.
func TestStackVMPipelineParity(t *testing.T) {
	h := NewHarnessSuite(3, droidbench.StackVMSuite())
	workers := []int{1, 2, 4, 8}

	rows, err := PipelineParity(h, PaperConfig, workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("sink path: %s @ %d workers diverges", r.App, r.Workers)
		}
	}

	for _, a := range h.Apps() {
		rec, err := h.AppTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()

		seq := core.NewTracker(PaperConfig, nil)
		rec.Replay(seq)
		verdicts := append([]core.SinkVerdict(nil), seq.Verdicts()...)
		core.SortVerdicts(verdicts)
		want := fmt.Sprintf("%#v|%#v", seq.Stats(), verdicts)

		for _, n := range workers {
			opts := pipeline.Options{Workers: n, Config: PaperConfig}
			sr, err := trace.NewReader(bytes.NewReader(wire))
			if err != nil {
				t.Fatal(err)
			}
			res, err := pipeline.New(opts).Drain(context.Background(), sr)
			if err != nil {
				t.Fatalf("%s @ %d workers: Drain: %v", a.Name, n, err)
			}
			if got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts); got != want {
				t.Errorf("%s @ %d workers: Drain diverges from sequential tracker", a.Name, n)
			}
			res, err = pipeline.New(opts).DrainTrace(context.Background(), bytes.NewReader(wire))
			if err != nil {
				t.Fatalf("%s @ %d workers: DrainTrace: %v", a.Name, n, err)
			}
			if got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts); got != want {
				t.Errorf("%s @ %d workers: DrainTrace diverges from sequential tracker", a.Name, n)
			}
		}
	}
}
