package eval

import (
	"fmt"
	"strings"

	"repro/internal/malware"
	"repro/internal/tracestat"
)

// Figure2 computes the memory-operation distributions of the paper's
// empirical study (Figure 2a/2b/2c) plus the stores-in-window (Figure 12)
// and k-th store distance (Figure 13) statistics, all over the LGRoot
// trace.
func Figure2(h *Harness) (*tracestat.Collector, error) {
	rec, err := h.LGRootTrace()
	if err != nil {
		return nil, err
	}
	c := tracestat.NewCollector()
	rec.Replay(c)
	c.Finish()
	return c, nil
}

// RenderFigure12 prints the probability distributions of the number of
// stores within each window size.
func RenderFigure12(c *tracestat.Collector) string {
	var b strings.Builder
	b.WriteString("Figure 12: stores within window (LGRoot)\n")
	for _, w := range c.WindowSizes() {
		h, _ := c.StoresInWindow(w)
		fmt.Fprintf(&b, "  NI=%-3d mean=%.2f P(0)=%.3f P(<=3)=%.3f P(<=10)=%.3f\n",
			w, h.Mean(), h.P(0), h.CDF(3), h.CDF(10))
	}
	return b.String()
}

// RenderFigure13 prints the average distance to the 1st, 2nd, and 3rd
// stores within each window size.
func RenderFigure13(c *tracestat.Collector) string {
	var b strings.Builder
	b.WriteString("Figure 13: mean distance to k-th store within window (LGRoot)\n")
	b.WriteString("   NI     1st     2nd     3rd\n")
	for _, w := range c.KthWindowSizes() {
		fmt.Fprintf(&b, "  %3d", w)
		for k := 1; k <= 3; k++ {
			mean, _, _ := c.KthStoreMean(w, k)
			fmt.Fprintf(&b, "  %6.2f", mean)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SampleStats is the per-app distance summary of the cross-execution study
// ("while it is possible for loads and stores to appear anywhere ... we
// also analyzed a number of app executions").
type SampleStats struct {
	Name   string
	Events int
	CDF5   float64 // store→last-load CDF at distance 5
	CDF10  float64 // ... at distance 10 (the paper's "99%" claim)
	Mean   float64
}

// AllSampleStats collects the Figure 2a summary for every malware sample,
// verifying the temporal-locality claim holds across executions, not just
// on LGRoot.
func AllSampleStats(scale int) ([]SampleStats, error) {
	var out []SampleStats
	for _, s := range malware.Samples() {
		prog := s.Prog
		if s.Name == "LGRoot" {
			prog = malware.LGRoot(scale)
		}
		rec, err := Record(prog)
		if err != nil {
			return nil, err
		}
		c := tracestat.NewCollector()
		rec.Replay(c)
		c.Finish()
		out = append(out, SampleStats{
			Name:   s.Name,
			Events: rec.Len(),
			CDF5:   c.StoreToLastLoad.CDF(5),
			CDF10:  c.StoreToLastLoad.CDF(10),
			Mean:   c.StoreToLastLoad.Mean(),
		})
	}
	return out, nil
}

// RenderSampleStats prints the cross-sample table.
func RenderSampleStats(rows []SampleStats) string {
	var b strings.Builder
	b.WriteString("Store→last-load distances across all malware executions\n")
	b.WriteString("  sample        events    mean   CDF(5)  CDF(10)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %8d  %6.2f   %.3f    %.3f\n",
			r.Name, r.Events, r.Mean, r.CDF5, r.CDF10)
	}
	return b.String()
}
