package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// replayStats replays the LGRoot trace under one configuration and returns
// the tracker's final statistics.
func replayStats(rec *trace.Recorder, cfg core.Config) core.Stats {
	tr := core.NewTracker(cfg, nil)
	rec.Replay(tr)
	return tr.Stats()
}

// Figure14 sweeps the maximum tainted-address size (bytes) over the
// NI × NT grid on the LGRoot trace.
func Figure14(h *Harness) (*Grid, error) {
	rec, err := h.LGRootTrace()
	if err != nil {
		return nil, err
	}
	g := NewGrid()
	g.Sweep(func(cfg core.Config) float64 {
		return float64(replayStats(rec, cfg).MaxBytes)
	})
	return g, nil
}

// Figure17 sweeps the maximum number of distinct tainted ranges over the
// NI × NT grid on the LGRoot trace.
func Figure17(h *Harness) (*Grid, error) {
	rec, err := h.LGRootTrace()
	if err != nil {
		return nil, err
	}
	g := NewGrid()
	g.Sweep(func(cfg core.Config) float64 {
		return float64(replayStats(rec, cfg).MaxRanges)
	})
	return g, nil
}

// SeriesPoint is one sample of a time series.
type SeriesPoint struct {
	Events uint64 // events delivered so far (a proxy for instruction time)
	Value  uint64
}

// Series is one (NI, NT) line of Figures 15 or 16.
type Series struct {
	Config core.Config
	Points []SeriesPoint
}

// TimeSeriesResult carries the Figure 15 (tainted bytes over time) and
// Figure 16 (cumulative tainting+untainting operations over time) lines.
type TimeSeriesResult struct {
	Bytes []Series // Figure 15
	Ops   []Series // Figure 16
}

// timeSeriesConfigs are the paper's Figure 15/16 parameter lines:
// NI ∈ {5, 10, 15, 20} × NT ∈ {1, 2, 3}.
func timeSeriesConfigs() []core.Config {
	var out []core.Config
	for _, ni := range []uint64{5, 10, 15, 20} {
		for _, nt := range []int{1, 2, 3} {
			out = append(out, core.Config{NI: ni, NT: nt, Untaint: true})
		}
	}
	return out
}

// TimeSeries produces Figures 15 and 16 with the given number of samples
// along the trace.
func TimeSeries(h *Harness, samples int) (*TimeSeriesResult, error) {
	rec, err := h.LGRootTrace()
	if err != nil {
		return nil, err
	}
	if samples < 2 {
		samples = 2
	}
	every := rec.Len() / samples
	if every < 1 {
		every = 1
	}
	res := &TimeSeriesResult{}
	for _, cfg := range timeSeriesConfigs() {
		tr := core.NewTracker(cfg, nil)
		bytesLine := Series{Config: cfg}
		opsLine := Series{Config: cfg}
		rec.ReplaySampled(tr, every, func(delivered int) {
			bytesLine.Points = append(bytesLine.Points, SeriesPoint{
				Events: uint64(delivered), Value: tr.TaintedBytes(),
			})
			opsLine.Points = append(opsLine.Points, SeriesPoint{
				Events: uint64(delivered), Value: tr.Ops(),
			})
		})
		res.Bytes = append(res.Bytes, bytesLine)
		res.Ops = append(res.Ops, opsLine)
	}
	return res, nil
}

// Final returns a series' last value (0 when empty).
func (s Series) Final() uint64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// Max returns a series' peak value.
func (s Series) Max() uint64 {
	var m uint64
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Render prints both figures as compact per-line tables.
func (r *TimeSeriesResult) Render() string {
	var b strings.Builder
	render := func(title string, lines []Series) {
		fmt.Fprintf(&b, "%s\n", title)
		for _, s := range lines {
			fmt.Fprintf(&b, "  (%2d,%d): ", s.Config.NI, s.Config.NT)
			step := len(s.Points) / 10
			if step < 1 {
				step = 1
			}
			for i := 0; i < len(s.Points); i += step {
				fmt.Fprintf(&b, "%8d", s.Points[i].Value)
			}
			fmt.Fprintf(&b, "  (final %d, max %d)\n", s.Final(), s.Max())
		}
	}
	render("Figure 15: tainted bytes over time (LGRoot)", r.Bytes)
	render("Figure 16: cumulative taint+untaint operations over time (LGRoot)", r.Ops)
	return b.String()
}

// UntaintEffectRow compares one window size with untainting on and off.
type UntaintEffectRow struct {
	Config        core.Config // with Untaint=true
	BytesWith     uint64
	BytesWithout  uint64
	RangesWith    int
	RangesWithout int
}

// BytesFactor is the Figure 18 reduction factor.
func (r UntaintEffectRow) BytesFactor() float64 {
	if r.BytesWith == 0 {
		return 0
	}
	return float64(r.BytesWithout) / float64(r.BytesWith)
}

// RangesFactor is the Figure 19 reduction factor.
func (r UntaintEffectRow) RangesFactor() float64 {
	if r.RangesWith == 0 {
		return 0
	}
	return float64(r.RangesWithout) / float64(r.RangesWith)
}

// UntaintEffect reproduces Figures 18 and 19: maximum tainted bytes and
// maximum distinct ranges for NI ∈ {5,10,15,20}, NT=3, with untainting
// enabled versus disabled.
func UntaintEffect(h *Harness) ([]UntaintEffectRow, error) {
	rec, err := h.LGRootTrace()
	if err != nil {
		return nil, err
	}
	var rows []UntaintEffectRow
	for _, ni := range []uint64{5, 10, 15, 20} {
		on := replayStats(rec, core.Config{NI: ni, NT: 3, Untaint: true})
		off := replayStats(rec, core.Config{NI: ni, NT: 3, Untaint: false})
		rows = append(rows, UntaintEffectRow{
			Config:        core.Config{NI: ni, NT: 3, Untaint: true},
			BytesWith:     on.MaxBytes,
			BytesWithout:  off.MaxBytes,
			RangesWith:    on.MaxRanges,
			RangesWithout: off.MaxRanges,
		})
	}
	return rows, nil
}

// RenderUntaintEffect prints the Figure 18/19 comparison.
func RenderUntaintEffect(rows []UntaintEffectRow) string {
	var b strings.Builder
	b.WriteString("Figures 18/19: effect of untainting (LGRoot, NT=3)\n")
	b.WriteString("   NI   bytes(on)  bytes(off)  factor   ranges(on)  ranges(off)  factor\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %3d  %10d  %10d  %5.1fx   %10d  %11d  %5.1fx\n",
			r.Config.NI, r.BytesWith, r.BytesWithout, r.BytesFactor(),
			r.RangesWith, r.RangesWithout, r.RangesFactor())
	}
	return b.String()
}
