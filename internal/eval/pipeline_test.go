package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSuiteWorkload(t *testing.T) {
	h := NewHarness(2)
	wl, err := h.SuiteWorkload(64)
	if err != nil {
		t.Fatal(err)
	}
	apps := h.Apps()
	total := 0
	for _, a := range apps {
		rec, err := h.AppTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		total += rec.Len()
	}
	if wl.Len() != total {
		t.Fatalf("workload has %d events, suite traces total %d", wl.Len(), total)
	}
	pids := map[uint32]bool{}
	for _, ev := range wl.Events {
		pids[ev.PID] = true
	}
	if len(pids) != len(apps) {
		t.Fatalf("workload spans %d PIDs, want one per app (%d)", len(pids), len(apps))
	}
	// Caching: same quantum must return the identical recorder.
	again, err := h.SuiteWorkload(64)
	if err != nil {
		t.Fatal(err)
	}
	if again != wl {
		t.Fatal("SuiteWorkload did not cache")
	}
}

func TestPipelineParityAndRender(t *testing.T) {
	h := NewHarness(2)
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	rows, err := PipelineParity(h, cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(h.Apps()) * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("%s @ %d workers diverges from sequential tracker", r.App, r.Workers)
		}
	}
	out := RenderPipelineParity(rows, cfg)
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("render reports mismatch:\n%s", out)
	}
	if !strings.Contains(out, "byte-identical") {
		t.Errorf("render missing summary:\n%s", out)
	}
}

func TestPipelineScalingAndRender(t *testing.T) {
	h := NewHarness(2)
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	rows, err := PipelineScaling(h, cfg, []int{1, 2}, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Events <= 0 || r.PerSecond <= 0 || r.Elapsed <= 0 {
			t.Errorf("implausible scaling row %+v", r)
		}
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup %v, want 1", rows[0].Speedup)
	}
	out := RenderPipelineScaling(rows)
	if !strings.Contains(out, "events/sec") {
		t.Errorf("render missing header:\n%s", out)
	}
}

func TestDetectedPipelineAgreesWithDetected(t *testing.T) {
	h := NewHarness(2)
	cfg := core.Config{NI: 13, NT: 3, Untaint: true}
	for _, a := range h.Apps()[:8] {
		rec, err := h.AppTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := DetectedPipeline(rec, cfg, 4), Detected(rec, cfg); got != want {
			t.Errorf("%s: pipeline detected=%v, sequential=%v", a.Name, got, want)
		}
	}
}
