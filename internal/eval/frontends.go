package eval

import (
	"fmt"
	"strings"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dift"
	"repro/internal/droidbench"
	"repro/internal/trace"
	"repro/internal/tracestat"
)

// PaperConfig is the operating point the paper ships: NI=13, NT=3, with
// the untainting rule on.
var PaperConfig = core.Config{NI: 13, NT: 3, Untaint: true}

// UnboundedConfig emulates NI=∞: windows that never expire, effectively
// unlimited propagations, and no untainting. Any flow PIFT's mechanism can
// carry at all is carried under this configuration, so the gap between it
// and PaperConfig is precisely what the finite window costs.
var UnboundedConfig = core.Config{NI: 1 << 62, NT: 1 << 30, Untaint: false}

// FrontendParityRow is one stack-VM application's verdict across the
// trackers: the exact DIFT oracle and PIFT at the paper's window and at
// the unbounded window.
type FrontendParityRow struct {
	App       string
	Category  string
	Leaky     bool
	Dift      bool
	Paper     bool
	Unbounded bool
	Events    int
}

// StackVMResult is the `-exp stackvm` output: per-app parity plus the
// per-frontend distance breakdown over both suites.
type StackVMResult struct {
	Rows      []FrontendParityRow
	Breakdown *tracestat.FrontendBreakdown
}

// StackVM runs the stack-VM benchmark family against the DIFT oracle and
// PIFT at NI=13/NT=3 and NI=∞, quantifying where the finite load→store
// window misses flows that the mechanism itself (NI=∞) still carries —
// the spill/reload apps are built to sit on both sides of that line. The
// dalvik harness h contributes its cached suite traces to the
// per-frontend distance comparison.
func StackVM(h *Harness) (*StackVMResult, error) {
	res := &StackVMResult{Breakdown: tracestat.NewFrontendBreakdown()}

	// Dalvik side of the breakdown, from the harness's cached traces.
	dcol := res.Breakdown.Collector(h.Frontend().Name())
	for _, a := range h.Apps() {
		rec, err := h.AppTrace(a)
		if err != nil {
			return nil, err
		}
		rec.Replay(dcol)
	}

	suite := droidbench.StackVMSuite()
	scol := res.Breakdown.Collector(suite.Frontend().Name())
	for _, a := range suite.Apps() {
		rec := trace.NewRecorder(1 << 16)
		oracle := dift.New()
		if _, err := android.Run(a.Prog, android.RunOptions{
			Sinks: []cpu.EventSink{rec, oracle},
			Hooks: []cpu.InstrHook{oracle},
		}); err != nil {
			return nil, fmt.Errorf("stackvm experiment: %s: %w", a.Name, err)
		}
		rec.Replay(scol)
		diftHit := false
		for _, v := range oracle.Verdicts() {
			diftHit = diftHit || v.Tainted
		}
		res.Rows = append(res.Rows, FrontendParityRow{
			App:       a.Name,
			Category:  a.Category,
			Leaky:     a.Leaky,
			Dift:      diftHit,
			Paper:     Detected(rec, PaperConfig),
			Unbounded: Detected(rec, UnboundedConfig),
			Events:    rec.Len(),
		})
	}
	res.Breakdown.Finish()
	return res, nil
}

// Render prints the parity table, the window-miss accounting, and the
// per-frontend distance comparison.
func (r *StackVMResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stack-VM suite vs DIFT oracle (PIFT at NI=%d/NT=%d and NI=inf)\n",
		PaperConfig.NI, PaperConfig.NT)
	b.WriteString("  app                    category              truth   DIFT  PIFT@paper  PIFT@inf\n")
	verdict := func(hit bool) string {
		if hit {
			return "hit"
		}
		return "-"
	}
	var leaky, paperHits, unboundHits, windowMisses int
	diftExact := true
	var missed []string
	for _, row := range r.Rows {
		truth := "benign"
		if row.Leaky {
			truth = "LEAKY"
		}
		note := ""
		if row.Leaky && row.Dift && !row.Paper {
			if row.Unbounded {
				note = "  <- window miss"
			} else {
				note = "  <- mechanism miss"
			}
		}
		if !row.Leaky && row.Paper {
			note = "  <- FALSE POSITIVE"
		}
		fmt.Fprintf(&b, "  %-22s %-20s %-7s %-5s %-11s %s%s\n",
			row.App, row.Category, truth,
			verdict(row.Dift), verdict(row.Paper), verdict(row.Unbounded), note)
		if row.Leaky {
			leaky++
			if row.Paper {
				paperHits++
			}
			if row.Unbounded {
				unboundHits++
			}
			if row.Unbounded && !row.Paper {
				windowMisses++
				missed = append(missed, row.App)
			}
		}
		if row.Dift != row.Leaky {
			diftExact = false
		}
	}
	fmt.Fprintf(&b, "\n  DIFT oracle exact on ground truth: %v\n", diftExact)
	fmt.Fprintf(&b, "  PIFT at NI=%d/NT=%d: %d/%d leaky apps detected; at NI=inf: %d/%d\n",
		PaperConfig.NI, PaperConfig.NT, paperHits, leaky, unboundHits, leaky)
	fmt.Fprintf(&b, "  flows carried by the mechanism but lost to the finite window: %d (%s)\n",
		windowMisses, strings.Join(missed, ", "))
	b.WriteString("\n")
	b.WriteString(r.Breakdown.RenderComparison())
	return b.String()
}
