package eval

// Machine-readable pipeline benchmark artifact: the parity and scaling
// experiments of pipeline.go re-run with an instrumented registry, so CI
// can archive one JSON file holding both the experiment tables and the
// full metrics snapshot (queue depths, stall counts, batch latency
// histograms) behind them.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// PipelineBenchResult is the JSON artifact piftbench -exp pipeline writes.
// Scaling rows come from an instrumented sweep, so the embedded snapshot's
// pipeline counters cover exactly the runs reported in Scaling.
type PipelineBenchResult struct {
	Config   core.Config          `json:"config"`
	Workers  []int                `json:"workers"`
	Quantum  int                  `json:"quantum"`
	Repeats  int                  `json:"repeats"`
	Parity   []PipelineParityRow  `json:"parity"`
	Scaling  []PipelineScalingRow `json:"scaling"`
	Snapshot metrics.Snapshot     `json:"metrics"`
}

// PipelineBench runs the parity check and an instrumented scaling sweep,
// returning both tables plus the registry snapshot of the sweep.
func PipelineBench(h *Harness, cfg core.Config, workerCounts []int, quantum, repeats int) (*PipelineBenchResult, error) {
	parity, err := PipelineParity(h, cfg, workerCounts)
	if err != nil {
		return nil, err
	}
	wl, err := h.SuiteWorkload(quantum)
	if err != nil {
		return nil, err
	}
	if repeats < 1 {
		repeats = 3
	}
	reg := metrics.NewRegistry()
	var rows []PipelineScalingRow
	for _, n := range workerCounts {
		best := time.Duration(0)
		for k := 0; k < repeats; k++ {
			p := pipeline.New(pipeline.Options{Workers: n, Config: cfg, Metrics: reg})
			start := time.Now()
			wl.Replay(p)
			res := p.Close()
			elapsed := time.Since(start)
			if res.Err != nil {
				return nil, res.Err
			}
			if res.Events != uint64(wl.Len()) {
				return nil, fmt.Errorf("eval: pipeline dropped events: %d of %d", res.Events, wl.Len())
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		row := PipelineScalingRow{
			Workers:   n,
			Events:    wl.Len(),
			Elapsed:   best,
			PerSecond: float64(wl.Len()) / best.Seconds(),
		}
		if len(rows) > 0 {
			row.Speedup = row.PerSecond / rows[0].PerSecond
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return &PipelineBenchResult{
		Config:   cfg,
		Workers:  workerCounts,
		Quantum:  quantum,
		Repeats:  repeats,
		Parity:   parity,
		Scaling:  rows,
		Snapshot: reg.Snapshot(),
	}, nil
}

// WriteJSON serializes the artifact, indented for human diffing.
func (r *PipelineBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
