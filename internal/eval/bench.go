package eval

// Machine-readable pipeline benchmark artifact: the parity and scaling
// experiments of pipeline.go re-run with an instrumented registry, so CI
// can archive one JSON file holding both the experiment tables and the
// full metrics snapshot (queue depths, stall counts, batch latency
// histograms) behind them.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// PipelineBenchResult is the JSON artifact piftbench -exp pipeline writes.
// Scaling rows come from an instrumented sweep, so the embedded snapshot's
// pipeline counters cover exactly the runs reported in Scaling.
type PipelineBenchResult struct {
	Config  core.Config `json:"config"`
	Workers []int       `json:"workers"`
	Quantum int         `json:"quantum"`
	Repeats int         `json:"repeats"`
	// NumCPU records the parallelism of the measuring machine
	// (runtime.NumCPU at measurement time). Scaling assertions are only
	// physically meaningful when the machine has at least as many CPUs as
	// the run has workers; benchgate's -min-scaling gate consults this
	// field and skips enforcement on machines that cannot exhibit the
	// speedup being gated.
	NumCPU  int                  `json:"num_cpu"`
	Parity  []PipelineParityRow  `json:"parity"`
	Scaling []PipelineScalingRow `json:"scaling"`
	// SyntheticEvents is the size of the tracegen corpus behind
	// Synthetic; zero means the synthetic sweep was not run.
	SyntheticEvents int `json:"synthetic_events,omitempty"`
	// WireFormat is the trace format the synthetic corpus was serialized
	// in for the Synthetic sweep ("PIFTTRC1" or "PIFTTRC2").
	WireFormat string `json:"wire_format,omitempty"`
	// Synthetic is the shard-owned ingest scaling sweep (DrainTrace over
	// the serialized synthetic corpus) — the table the scaling-gate CI
	// job enforces.
	Synthetic []PipelineScalingRow `json:"synthetic_scaling,omitempty"`
	// Wire is the per-corpus compression table (DroidBench apps, the
	// suite interleave, synthetic corpora) and BytesPerEventV2 its
	// event-weighted average — the number -max-bytes-per-event gates.
	Wire            []WireRow `json:"wire,omitempty"`
	BytesPerEventV2 float64   `json:"bytes_per_event_v2,omitempty"`
	// DecodeV1PerSec / DecodeV2PerSec compare full-drain decode
	// throughput of the two formats; -min-decode-ratio gates their ratio.
	DecodeV1PerSec float64 `json:"decode_v1_per_sec,omitempty"`
	DecodeV2PerSec float64 `json:"decode_v2_per_sec,omitempty"`
	// AllocsPerEvent is the steady-state heap allocation rate of a warm
	// single-worker pipeline (second replay of the suite workload through
	// the same pipeline, Mallocs delta over event count). The hot path is
	// allocation-free by design, so this sits near zero; it is nonzero only
	// because a GC between the warm-up and the measured pass may empty the
	// dispatcher's batch sync.Pool, forcing a bounded refill.
	AllocsPerEvent float64          `json:"allocs_per_event"`
	Snapshot       metrics.Snapshot `json:"metrics"`
}

// PipelineBench runs the parity check, an instrumented scaling sweep
// over the DroidBench suite workload, and — when syntheticEvents > 0 —
// the shard-owned synthetic scaling sweep (over the corpus serialized in
// wireFormat), the wire-compression table, and the cross-format decode
// benchmark, returning the tables plus the registry snapshot of the
// suite sweep.
func PipelineBench(h *Harness, cfg core.Config, workerCounts []int, quantum, repeats, syntheticEvents int, wireFormat trace.Format) (*PipelineBenchResult, error) {
	parity, err := PipelineParity(h, cfg, workerCounts)
	if err != nil {
		return nil, err
	}
	wl, err := h.SuiteWorkload(quantum)
	if err != nil {
		return nil, err
	}
	if repeats < 1 {
		repeats = 3
	}
	reg := metrics.NewRegistry()
	var rows []PipelineScalingRow
	for _, n := range workerCounts {
		best := time.Duration(0)
		for k := 0; k < repeats; k++ {
			p := pipeline.New(pipeline.Options{Workers: n, Config: cfg, Metrics: reg})
			start := time.Now()
			wl.Replay(p)
			res := p.Close()
			elapsed := time.Since(start)
			if res.Err != nil {
				return nil, res.Err
			}
			if res.Events != uint64(wl.Len()) {
				return nil, fmt.Errorf("eval: pipeline dropped events: %d of %d", res.Events, wl.Len())
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		row := PipelineScalingRow{
			Workers:   n,
			Events:    wl.Len(),
			Elapsed:   best,
			PerSecond: float64(wl.Len()) / best.Seconds(),
		}
		if len(rows) > 0 {
			row.Speedup = row.PerSecond / rows[0].PerSecond
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	allocs, err := allocsPerEvent(wl, cfg)
	if err != nil {
		return nil, err
	}
	var synthetic []PipelineScalingRow
	var wire []WireRow
	var decode *DecodeBenchResult
	if syntheticEvents > 0 {
		synthetic, err = SyntheticScaling(cfg, workerCounts, syntheticEvents, repeats, wireFormat)
		if err != nil {
			return nil, err
		}
		wire, err = WireCompression(h, quantum, syntheticEvents)
		if err != nil {
			return nil, err
		}
		decode, err = DecodeBench(syntheticEvents, repeats)
		if err != nil {
			return nil, err
		}
	}
	res := &PipelineBenchResult{
		Config:          cfg,
		Workers:         workerCounts,
		Quantum:         quantum,
		Repeats:         repeats,
		NumCPU:          runtime.NumCPU(),
		Parity:          parity,
		Scaling:         rows,
		SyntheticEvents: syntheticEvents,
		WireFormat:      wireFormat.String(),
		Synthetic:       synthetic,
		Wire:            wire,
		BytesPerEventV2: AverageBytesPerEvent(wire),
		AllocsPerEvent:  allocs,
		Snapshot:        reg.Snapshot(),
	}
	if decode != nil {
		res.DecodeV1PerSec = decode.V1PerSec
		res.DecodeV2PerSec = decode.V2PerSec
	}
	return res, nil
}

// SyntheticScaling times the shard-owned ingest (Pipeline.DrainTrace)
// over a seeded tracegen corpus, serialized in format f, at each worker
// count. Unlike PipelineScaling — which replays an in-memory recorder
// through the single-dispatcher push path — this sweep starts from
// serialized bytes, so decode, sharding, and batching all scale with the
// worker count: it measures the whole ingest, not just the analysis.
// Every run's verdicts are checked byte-identical to the first, so a
// scaling number can never be quoted on a wrong answer.
func SyntheticScaling(cfg core.Config, workerCounts []int, events, repeats int, f trace.Format) ([]PipelineScalingRow, error) {
	if repeats < 1 {
		repeats = 3
	}
	var wire bytes.Buffer
	if _, err := tracegen.Generate(tracegen.Spec{Seed: 1, Events: events}).WriteToFormat(&wire, f); err != nil {
		return nil, err
	}
	raw := wire.Bytes()
	var want string
	var rows []PipelineScalingRow
	for _, n := range workerCounts {
		best := time.Duration(0)
		for k := 0; k < repeats; k++ {
			p := pipeline.New(pipeline.Options{Workers: n, Config: cfg})
			start := time.Now()
			res, err := p.DrainTrace(context.Background(), bytes.NewReader(raw))
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			if res.Events != uint64(events) {
				return nil, fmt.Errorf("eval: shard-owned drain accounted %d of %d events", res.Events, events)
			}
			key := fmt.Sprintf("%#v", res.Verdicts)
			if want == "" {
				want = key
			} else if key != want {
				return nil, fmt.Errorf("eval: %d-worker verdicts diverge on the synthetic corpus", n)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		row := PipelineScalingRow{
			Workers:   n,
			Events:    events,
			Elapsed:   best,
			PerSecond: float64(events) / best.Seconds(),
		}
		if len(rows) > 0 {
			row.Speedup = row.PerSecond / rows[0].PerSecond
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// allocsPerEvent measures the steady-state allocation rate of the hot
// path: one warm-up replay grows every reusable buffer (range-set backing
// arrays, the dispatcher's pooled batches, worker queues) to its high-water
// size, then a second replay through the same pipeline is bracketed by
// MemStats reads. Sync, not Close, bounds each replay so the pipeline —
// and its warm state — survives into the measured pass.
func allocsPerEvent(wl *trace.Recorder, cfg core.Config) (float64, error) {
	if wl.Len() == 0 {
		return 0, nil
	}
	p := pipeline.New(pipeline.Options{Workers: 1, Config: cfg})
	wl.Replay(p)
	p.Sync()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	wl.Replay(p)
	p.Sync()
	runtime.ReadMemStats(&after)
	res := p.Close()
	if res.Err != nil {
		return 0, res.Err
	}
	return float64(after.Mallocs-before.Mallocs) / float64(wl.Len()), nil
}

// WriteJSON serializes the artifact, indented for human diffing.
func (r *PipelineBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
