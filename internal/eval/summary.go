package eval

import (
	"fmt"
	"strings"
)

// SummaryRow pairs one of the paper's claims with the live measurement.
type SummaryRow struct {
	Claim    string
	Paper    string
	Measured string
	OK       bool
}

// Summary regenerates the paper-vs-measured table from live runs: the
// headline accuracy, the key heatmap cells, the GPS threshold, the
// distance distributions, and the overhead characteristics.
func Summary(h *Harness) ([]SummaryRow, error) {
	var rows []SummaryRow
	add := func(claim, paper, measured string, ok bool) {
		rows = append(rows, SummaryRow{Claim: claim, Paper: paper, Measured: measured, OK: ok})
	}

	head, err := Headline(h)
	if err != nil {
		return nil, err
	}
	add("accuracy at (13,3) over 57 apps", "98%",
		Pct(head.Accuracy()), head.Accuracy() > 0.975)
	add("false positives", "0 of 16",
		fmt.Sprintf("%d of 16", head.FalsePositives), head.FalsePositives == 0)
	add("false negatives", "1 of 41 (implicit flow)",
		fmt.Sprintf("%d of 41 (%s)", head.FalseNegatives, strings.Join(head.MissedApps, ",")),
		head.FalseNegatives == 1)
	add("malware detected at (3,2)", "7/7",
		fmt.Sprintf("%d/%d", head.MalwareDetected, head.MalwareTotal),
		head.MalwareDetected == head.MalwareTotal)

	fig11, err := Figure11(h)
	if err != nil {
		return nil, err
	}
	v1318, _ := fig11.Grid.At(18, 3)
	add("100% accuracy at (18,3) on the subset", "100%", Pct(v1318), v1318 == 1)
	v139, _ := fig11.Grid.At(9, 3)
	v1310, _ := fig11.Grid.At(10, 3)
	add("GPS leak needs NI >= 10", "undetected below 10",
		fmt.Sprintf("accuracy steps %s→%s at NI=10", Pct(v139), Pct(v1310)),
		v1310 > v139)

	c, err := Figure2(h)
	if err != nil {
		return nil, err
	}
	cdf10 := c.StoreToLastLoad.CDF(10)
	add("store→load distances: 0–10 captures 99%", "99%",
		fmt.Sprintf("CDF(10) = %.3f", cdf10), cdf10 >= 0.99)
	cdf5 := c.StoreToLastLoad.CDF(5)
	add("bulk of distances in 0–5", "bulk",
		fmt.Sprintf("CDF(5) = %.3f", cdf5), cdf5 >= 0.5)

	g17, err := Figure17(h)
	if err != nil {
		return nil, err
	}
	maxRanges := 0.0
	for ni := uint64(1); ni <= 10; ni++ {
		for nt := 1; nt <= 10; nt++ {
			if v, _ := g17.At(ni, nt); v > maxRanges {
				maxRanges = v
			}
		}
	}
	add("<100 distinct ranges for NI <= 10", "<100",
		fmt.Sprintf("max %d", int(maxRanges)), maxRanges < 100)

	ue, err := UntaintEffect(h)
	if err != nil {
		return nil, err
	}
	add("untainting shrinks regions at (5,3)", "~26x smaller",
		fmt.Sprintf("%.0fx smaller", ue[0].BytesFactor()), ue[0].BytesFactor() > 5)
	add("untainting shrinks range count at (5,3)", ">60x fewer",
		fmt.Sprintf("%.0fx fewer", ue[0].RangesFactor()), ue[0].RangesFactor() > 5)

	g14, err := Figure14(h)
	if err != nil {
		return nil, err
	}
	bounded, _ := g14.At(10, 3)
	exploded, _ := g14.At(20, 3)
	add("tainted-region explosion at (20,3) vs (10,3)", "exponential expansion",
		fmt.Sprintf("%d B vs %d B", int(exploded), int(bounded)), exploded > 10*bounded)

	return rows, nil
}

// RenderSummary prints the table with a ✓/✗ per row.
func RenderSummary(rows []SummaryRow) string {
	var b strings.Builder
	b.WriteString("Paper vs. measured (regenerated live)\n")
	allOK := true
	for _, r := range rows {
		mark := "ok "
		if !r.OK {
			mark = "MISMATCH"
			allOK = false
		}
		fmt.Fprintf(&b, "  [%s] %-45s paper: %-24s measured: %s\n",
			mark, r.Claim, r.Paper, r.Measured)
	}
	if allOK {
		b.WriteString("all claims reproduced\n")
	}
	return b.String()
}
