package eval

import (
	"testing"

	"repro/internal/core"
)

// TestUntaintingDoesNotDegradeAccuracy verifies §3.2's claim that "our
// experimental results indicate that untaintings do not degrade the
// detection accuracy while significantly reducing the tainted regions".
//
// Measured nuance: with untainting OFF, stale over-taint accumulates
// without bound and eventually brushes even the implicit-switch app's
// payload (FN drops from 1 to 0 — a detection by luck, not by flow).
// The claim to lock in is that untainting never *introduces* false
// positives and that the single miss it leaves is the distance-limited
// implicit flow, not an untainting casualty of a direct flow.
func TestUntaintingDoesNotDegradeAccuracy(t *testing.T) {
	h := newTestHarness()
	for _, untaint := range []bool{true, false} {
		cfg := core.Config{NI: 13, NT: 3, Untaint: untaint}
		fp := 0
		var missed []string
		for _, a := range h.Apps() {
			rec, err := h.AppTrace(a)
			if err != nil {
				t.Fatal(err)
			}
			det := Detected(rec, cfg)
			if det && !a.Leaky {
				fp++
			}
			if !det && a.Leaky {
				missed = append(missed, a.Name)
			}
		}
		if fp != 0 {
			t.Errorf("untaint=%v: %d false positives", untaint, fp)
		}
		if untaint {
			if len(missed) != 1 || missed[0] != "ImplicitSwitch" {
				t.Errorf("untaint=on: misses %v, want only the implicit flow", missed)
			}
		} else if len(missed) > 1 {
			t.Errorf("untaint=off: misses %v", missed)
		}
	}
}

// TestUntaintingReducesState verifies the other half of the claim on the
// same traces: with untainting the residual tainted state is strictly
// smaller on the long-running workload.
func TestUntaintingReducesState(t *testing.T) {
	h := newTestHarness()
	rec, err := h.LGRootTrace()
	if err != nil {
		t.Fatal(err)
	}
	on := replayStats(rec, core.Config{NI: 10, NT: 3, Untaint: true})
	off := replayStats(rec, core.Config{NI: 10, NT: 3, Untaint: false})
	if on.MaxBytes >= off.MaxBytes {
		t.Errorf("untainting did not reduce bytes: %d vs %d", on.MaxBytes, off.MaxBytes)
	}
	if on.MaxRanges >= off.MaxRanges {
		t.Errorf("untainting did not reduce ranges: %d vs %d", on.MaxRanges, off.MaxRanges)
	}
}
