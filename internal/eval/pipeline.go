package eval

// This file holds the pipeline experiments: parity of the sharded
// asynchronous analyzer against the sequential oracle on the DroidBench
// suite, and its scaling on a multi-process workload — the software
// analogue of the paper's application-core/analysis-core split (§3).

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// SuiteWorkload builds the multi-process DroidBench workload: every app
// of the Figure 10/11 corpus re-tagged with a distinct PID and
// interleaved round-robin with the given context-switch quantum. This is
// the stream a phone's analysis core would see with the whole suite
// running concurrently, and the workload the pipeline scaling numbers are
// quoted on. The result is cached per quantum.
func (h *Harness) SuiteWorkload(quantum int) (*trace.Recorder, error) {
	if h.suiteWorkloads == nil {
		h.suiteWorkloads = make(map[int]*trace.Recorder)
	}
	if rec, ok := h.suiteWorkloads[quantum]; ok {
		return rec, nil
	}
	apps := h.Apps()
	streams := make([][]cpu.Event, 0, len(apps))
	for i, a := range apps {
		rec, err := h.AppTrace(a)
		if err != nil {
			return nil, err
		}
		pid := uint32(i + 1)
		evs := make([]cpu.Event, len(rec.Events))
		for j, ev := range rec.Events {
			ev.PID = pid
			evs[j] = ev
		}
		streams = append(streams, evs)
	}
	rec := &trace.Recorder{Events: trace.Interleave(quantum, streams...)}
	h.suiteWorkloads[quantum] = rec
	return rec, nil
}

// PipelineParityRow records one app × worker-count comparison between the
// pipeline and the sequential tracker.
type PipelineParityRow struct {
	App     string
	Workers int
	Match   bool
}

// PipelineParity replays every DroidBench trace through the sequential
// tracker and through the pipeline at each worker count, comparing merged
// stats and canonically ordered verdicts byte for byte.
func PipelineParity(h *Harness, cfg core.Config, workerCounts []int) ([]PipelineParityRow, error) {
	var rows []PipelineParityRow
	for _, app := range h.Apps() {
		rec, err := h.AppTrace(app)
		if err != nil {
			return nil, err
		}
		seq := core.NewTracker(cfg, nil)
		rec.Replay(seq)
		verdicts := append([]core.SinkVerdict(nil), seq.Verdicts()...)
		core.SortVerdicts(verdicts)
		want := fmt.Sprintf("%#v|%#v", seq.Stats(), verdicts)
		for _, n := range workerCounts {
			p := pipeline.New(pipeline.Options{Workers: n, Config: cfg})
			rec.Replay(p)
			res := p.Close()
			got := fmt.Sprintf("%#v|%#v", res.Stats, res.Verdicts)
			rows = append(rows, PipelineParityRow{App: app.Name, Workers: n, Match: got == want})
		}
	}
	return rows, nil
}

// RenderPipelineParity summarizes the parity sweep, listing any diverging
// combination explicitly.
func RenderPipelineParity(rows []PipelineParityRow, cfg core.Config) string {
	var b strings.Builder
	mismatches := 0
	for _, r := range rows {
		if !r.Match {
			mismatches++
			fmt.Fprintf(&b, "  MISMATCH: %s @ %d workers\n", r.App, r.Workers)
		}
	}
	head := fmt.Sprintf("Pipeline parity (%v): %d of %d app×worker runs byte-identical to the sequential tracker",
		cfg, len(rows)-mismatches, len(rows))
	if mismatches == 0 {
		return head
	}
	return head + "\n" + b.String()
}

// PipelineScalingRow is one point of the worker-count sweep.
type PipelineScalingRow struct {
	Workers   int
	Events    int
	Elapsed   time.Duration
	PerSecond float64
	Speedup   float64 // relative to the first row
}

// PipelineScaling times the pipeline over the multi-process suite
// workload at each worker count. Repeats takes the best of k runs to damp
// scheduler noise; k < 1 means 3.
func PipelineScaling(h *Harness, cfg core.Config, workerCounts []int, quantum, repeats int) ([]PipelineScalingRow, error) {
	wl, err := h.SuiteWorkload(quantum)
	if err != nil {
		return nil, err
	}
	if repeats < 1 {
		repeats = 3
	}
	var rows []PipelineScalingRow
	for _, n := range workerCounts {
		best := time.Duration(0)
		for k := 0; k < repeats; k++ {
			p := pipeline.New(pipeline.Options{Workers: n, Config: cfg})
			start := time.Now()
			wl.Replay(p)
			res := p.Close()
			elapsed := time.Since(start)
			if res.Events != uint64(wl.Len()) {
				return nil, fmt.Errorf("eval: pipeline dropped events: %d of %d", res.Events, wl.Len())
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		row := PipelineScalingRow{
			Workers:   n,
			Events:    wl.Len(),
			Elapsed:   best,
			PerSecond: float64(wl.Len()) / best.Seconds(),
		}
		if len(rows) > 0 {
			row.Speedup = row.PerSecond / rows[0].PerSecond
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPipelineScaling prints the suite scaling sweep as a table.
func RenderPipelineScaling(rows []PipelineScalingRow) string {
	return RenderScalingTable("Pipeline scaling (DroidBench suite, multi-process interleave)", rows)
}

// RenderScalingTable prints any scaling sweep under the given title.
func RenderScalingTable(title string, rows []PipelineScalingRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("  workers   events      time    events/sec  speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %7d  %7d  %8s  %12.0f  %6.2fx\n",
			r.Workers, r.Events, r.Elapsed.Round(time.Microsecond), r.PerSecond, r.Speedup)
	}
	return strings.TrimRight(b.String(), "\n")
}

// DetectedPipeline is Detected's pipeline twin: replays a trace through
// the sharded analyzer and reports whether any sink verdict found taint.
func DetectedPipeline(rec *trace.Recorder, cfg core.Config, workers int) bool {
	p := pipeline.New(pipeline.Options{Workers: workers, Config: cfg})
	rec.Replay(p)
	return p.Close().Detected()
}
