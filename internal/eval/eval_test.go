package eval

import (
	"math"
	"testing"

	"repro/internal/dalvik"
)

// newTestHarness uses a small LGRoot scale to keep sweeps fast.
func newTestHarness() *Harness { return NewHarness(4) }

func TestFigure11KeyCells(t *testing.T) {
	h := newTestHarness()
	r, err := Figure11(h)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 97.9% at (13,3), 100% at (18,3).
	if v, _ := r.Grid.At(13, 3); math.Abs(v-47.0/48) > 1e-9 {
		t.Errorf("accuracy(13,3) = %.4f, want %.4f", v, 47.0/48)
	}
	if v, _ := r.Grid.At(18, 3); v != 1 {
		t.Errorf("accuracy(18,3) = %.4f, want 1", v)
	}
	// Figure 11's color-bar plateaus: 79.2, 83.3, 95.8, 97.9, 100.
	want := []float64{38.0 / 48, 40.0 / 48, 46.0 / 48, 47.0 / 48, 1}
	for _, w := range want {
		found := false
		for _, l := range r.Levels {
			if math.Abs(l-w) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Errorf("plateau %.3f missing from levels %v", w, r.Levels)
		}
	}
}

func TestFigure11Monotone(t *testing.T) {
	h := newTestHarness()
	r, err := Figure11(h)
	if err != nil {
		t.Fatal(err)
	}
	// With 0 false positives, accuracy must be monotone in both NI and NT.
	for j := range r.Grid.NTs {
		for i := 1; i < len(r.Grid.NIs); i++ {
			if r.Grid.Cells[j][i] < r.Grid.Cells[j][i-1]-1e-9 {
				t.Errorf("accuracy not monotone in NI at NT=%d, NI=%d",
					r.Grid.NTs[j], r.Grid.NIs[i])
			}
		}
	}
	for i := range r.Grid.NIs {
		for j := 1; j < len(r.Grid.NTs); j++ {
			if r.Grid.Cells[j][i] < r.Grid.Cells[j-1][i]-1e-9 {
				t.Errorf("accuracy not monotone in NT at NI=%d, NT=%d",
					r.Grid.NIs[i], r.Grid.NTs[j])
			}
		}
	}
}

func TestHeadline(t *testing.T) {
	h := newTestHarness()
	r, err := Headline(h)
	if err != nil {
		t.Fatal(err)
	}
	if r.Apps != 57 {
		t.Fatalf("apps = %d", r.Apps)
	}
	if r.FalsePositives != 0 {
		t.Errorf("FP = %d, want 0", r.FalsePositives)
	}
	if r.FalseNegatives != 1 {
		t.Errorf("FN = %d, want 1", r.FalseNegatives)
	}
	if acc := r.Accuracy(); math.Abs(acc-56.0/57) > 1e-9 {
		t.Errorf("accuracy = %.4f, want %.4f (≈98%%)", acc, 56.0/57)
	}
	if r.MalwareDetected != 7 || r.MalwareTotal != 7 {
		t.Errorf("malware %d/%d, want 7/7", r.MalwareDetected, r.MalwareTotal)
	}
	if out := r.Render(); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestFigure2Shape(t *testing.T) {
	h := newTestHarness()
	c, err := Figure2(h)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "the bulk of load–store distance values cluster in the range
	// 0–5" and "the range 0–10 captures 99% of all loads and stores".
	if cdf5 := c.StoreToLastLoad.CDF(5); cdf5 < 0.5 {
		t.Errorf("CDF(5) = %.3f, want the bulk within 0-5", cdf5)
	}
	if cdf10 := c.StoreToLastLoad.CDF(10); cdf10 < 0.95 {
		t.Errorf("CDF(10) = %.3f, want ~0.99", cdf10)
	}
	// Paper Fig 2b: the number of stores between consecutive loads is
	// small.
	if mean := c.StoresBetweenLoads.Mean(); mean > 3 {
		t.Errorf("mean stores between loads = %.2f, want small", mean)
	}
	// Paper Fig 2c: loads are spread throughout execution (non-degenerate
	// distribution with most mass at short distances).
	if c.LoadToLoad.Count() == 0 || c.LoadToLoad.CDF(10) < 0.5 {
		t.Errorf("load-to-load distribution degenerate: n=%d CDF(10)=%.3f",
			c.LoadToLoad.Count(), c.LoadToLoad.CDF(10))
	}
}

func TestFigure12DiminishingReturns(t *testing.T) {
	h := newTestHarness()
	c, err := Figure2(h)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "increasing the window size above 10 or 15 does not capture
	// more stores" — the mean count grows sublinearly past 15.
	m5, _ := c.StoresInWindow(5)
	m15, _ := c.StoresInWindow(15)
	m100, _ := c.StoresInWindow(100)
	if m15.Mean() <= m5.Mean() {
		t.Error("store counts should grow from NI=5 to NI=15")
	}
	growthSmall := m15.Mean() / m5.Mean()
	growthLarge := m100.Mean() / m15.Mean()
	perNIsmall := (m15.Mean() - m5.Mean()) / 10
	perNIlarge := (m100.Mean() - m15.Mean()) / 85
	if perNIlarge > perNIsmall {
		t.Errorf("no diminishing returns: %.3f/NI early vs %.3f/NI late (ratios %.2f, %.2f)",
			perNIsmall, perNIlarge, growthSmall, growthLarge)
	}
}

func TestFigure13StoresNearLoads(t *testing.T) {
	h := newTestHarness()
	c, err := Figure2(h)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "stores are in close proximity of loads"; the k-th store
	// means are ordered and within the window.
	for _, w := range c.KthWindowSizes() {
		prev := 0.0
		for k := 1; k <= 3; k++ {
			mean, n, ok := c.KthStoreMean(w, k)
			if !ok {
				t.Fatalf("no data for window %d k %d", w, k)
			}
			if n == 0 {
				continue
			}
			if mean < prev {
				t.Errorf("window %d: mean distance to store %d (%.2f) < store %d (%.2f)",
					w, k, mean, k-1, prev)
			}
			if mean > float64(w) {
				t.Errorf("window %d: k=%d mean %.2f exceeds window", w, k, mean)
			}
			prev = mean
		}
	}
}

func TestFigure14And17Trends(t *testing.T) {
	h := newTestHarness()
	g14, err := Figure14(h)
	if err != nil {
		t.Fatal(err)
	}
	g17, err := Figure17(h)
	if err != nil {
		t.Fatal(err)
	}
	// The tainted region grows with the window parameters (paper: "the
	// increasing trend of tainted regions with tainting window
	// parameters").
	small14, _ := g14.At(5, 1)
	big14, _ := g14.At(20, 3)
	if big14 < 2*small14 {
		t.Errorf("Fig14: bytes at (20,3)=%v not >> (5,1)=%v", big14, small14)
	}
	small17, _ := g17.At(5, 1)
	big17, _ := g17.At(20, 3)
	if big17 <= small17 {
		t.Errorf("Fig17: ranges at (20,3)=%v not > (5,1)=%v", big17, small17)
	}
	// Paper §5.2: "for window sizes not larger than NI=10, there were
	// less than 100 distinct ranges at any time instant".
	for nt := 1; nt <= 3; nt++ {
		for ni := uint64(1); ni <= 10; ni++ {
			if v, _ := g17.At(ni, nt); v >= 100 {
				t.Errorf("Fig17: %v ranges at (%d,%d), paper expects <100", v, ni, nt)
			}
		}
	}
}

func TestTimeSeriesFlatThenGrowth(t *testing.T) {
	h := newTestHarness()
	r, err := TimeSeries(h, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bytes) != 12 || len(r.Ops) != 12 {
		t.Fatalf("series count = %d/%d", len(r.Bytes), len(r.Ops))
	}
	for _, s := range r.Ops {
		// Cumulative operations must be non-decreasing.
		prev := uint64(0)
		for _, p := range s.Points {
			if p.Value < prev {
				t.Fatalf("ops series %v decreased", s.Config)
			}
			prev = p.Value
		}
	}
	// Larger windows accumulate at least as much taint as small ones.
	byCfg := map[[2]uint64]uint64{}
	for _, s := range r.Bytes {
		byCfg[[2]uint64{s.Config.NI, uint64(s.Config.NT)}] = s.Max()
	}
	if byCfg[[2]uint64{20, 3}] < byCfg[[2]uint64{5, 1}] {
		t.Errorf("max bytes (20,3)=%d < (5,1)=%d",
			byCfg[[2]uint64{20, 3}], byCfg[[2]uint64{5, 1}])
	}
}

func TestUntaintEffect(t *testing.T) {
	h := newTestHarness()
	rows, err := UntaintEffect(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper: "for the case of NI=5 and NT=3, untainting resulted in 26
	// times smaller tainted regions" and "more than 60 times fewer
	// ranges". The shape target: substantial reduction, strongest effect
	// at the smallest window.
	if rows[0].Config.NI != 5 {
		t.Fatalf("first row NI = %d", rows[0].Config.NI)
	}
	if f := rows[0].BytesFactor(); f < 3 {
		t.Errorf("untainting bytes factor at NI=5 only %.1fx", f)
	}
	if f := rows[0].RangesFactor(); f < 3 {
		t.Errorf("untainting ranges factor at NI=5 only %.1fx", f)
	}
	// Without untainting, window size barely matters (paper: "without
	// untainting, the varying window size does not make a considerable
	// difference").
	spread := float64(rows[3].BytesWithout) / float64(rows[0].BytesWithout)
	if spread > 4 {
		t.Errorf("without untainting, bytes spread %.1fx across NI; expected flat-ish", spread)
	}
}

func TestTable1Groups(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	byDist := map[int][]string{}
	for _, r := range rows {
		byDist[r.Distance] = r.Opcodes
	}
	expect := map[int][]string{
		1: {"return"},
		2: {"move-result", "aget", "aput", "sput"},
		3: {"move", "move-object", "sget"},
		4: {"iput", "neg-int"},
		5: {"iget", "iget-object", "add-int/lit8", "add-int/2addr"},
		6: {"int-to-char"},
	}
	for d, ops := range expect {
		for _, op := range ops {
			found := false
			for _, got := range byDist[d] {
				if got == op {
					found = true
				}
			}
			if !found {
				t.Errorf("distance %d should contain %q; has %v", d, op, byDist[d])
			}
		}
	}
	if len(byDist[10]) == 0 || byDist[10][0] != "aput-object" {
		t.Errorf("distance 10 should be aput-object, got %v", byDist[10])
	}
	if len(byDist[-1]) < 4 {
		t.Errorf("unknown group too small: %v", byDist[-1])
	}
	if out := RenderTable1(rows); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestFigure10(t *testing.T) {
	h := newTestHarness()
	r := Figure10(h, 30)
	if len(r.Apps) == 0 || len(r.System) == 0 {
		t.Fatal("empty corpora")
	}
	// Fractions are probabilities.
	sum := 0.0
	for _, row := range r.Apps {
		if row.Fraction <= 0 || row.Fraction > 1 {
			t.Errorf("bad fraction %f for %v", row.Fraction, row.Opcode)
		}
		sum += row.Fraction
	}
	if sum > 1.0001 {
		t.Errorf("fractions sum to %f", sum)
	}
	// The dominant rows include the invoke/move-result plumbing, as in
	// the paper.
	names := map[string]bool{}
	for i, row := range r.Apps {
		if i < 8 {
			names[row.Opcode] = true
		}
	}
	if !names["invoke-virtual"] && !names["invoke-static"] {
		t.Error("invokes missing from the top rows")
	}
	if !names["move-result-object"] && !names["move-result"] {
		t.Error("move-result plumbing missing from the top rows")
	}
	if out := r.Render(); len(out) == 0 {
		t.Error("empty render")
	}
}

var _ = dalvik.OpNop // keep the import when expectations change
