package eval

import (
	"strings"
	"testing"
)

func TestJITComparison(t *testing.T) {
	r, err := JITComparison(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base := r.Baseline()
	if base.Collector.StoreToLastLoad.Count() == 0 {
		t.Fatal("empty baseline distribution")
	}
	for _, row := range r.Rows[1:] {
		// Each optimizing tier removes instructions but not data ops.
		if row.Instr >= base.Instr {
			t.Errorf("%v run not shorter: %d vs %d", row.Mode, row.Instr, base.Instr)
		}
		// §4.1: "the patterns were identical" / "ART does not impact the
		// accuracy" — short distances dominate in every tier and the
		// verdict never changes.
		if cdf := row.Collector.StoreToLastLoad.CDF(10); cdf < 0.95 {
			t.Errorf("%v CDF(10) = %.3f", row.Mode, cdf)
		}
		if delta := r.MaxCDFDelta(row); delta > 0.5 {
			t.Errorf("%v shifted the distance CDF by %.3f", row.Mode, delta)
		}
		if row.Detected != base.Detected {
			t.Errorf("%v changed the detection verdict", row.Mode)
		}
	}
	// AOT removes the bytecode fetch loads entirely: far fewer events.
	aot := r.Rows[2]
	if aot.Events >= r.Rows[1].Events {
		t.Errorf("AOT events %d not below JIT's %d (fetch loads should vanish)",
			aot.Events, r.Rows[1].Events)
	}
	if !strings.Contains(r.Render(), "JIT/AOT ablation") {
		t.Error("render broken")
	}
}

func TestStoreAblation(t *testing.T) {
	h := newTestHarness()
	rows, err := StoreAblation(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]StoreAblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	ideal := byName["ideal (unbounded)"]
	if ideal.FalsePositives != 0 || ideal.FalseNegatives != 1 {
		t.Errorf("ideal store drifted: %+v", ideal)
	}
	// A 32KiB cache is effectively unbounded for these workloads (§3.3:
	// ~2730 entries vs <100 live ranges).
	big := byName["range cache 32KiB LRU"]
	if big.Accuracy() != ideal.Accuracy() {
		t.Errorf("32KiB cache accuracy %f != ideal %f", big.Accuracy(), ideal.Accuracy())
	}
	// LRU with secondary storage never loses flows; drop may.
	lru := byName["range cache 64-entry LRU"]
	if lru.FalseNegatives > ideal.FalseNegatives {
		t.Errorf("LRU cache lost flows: %+v", lru)
	}
	tiny := byName["range cache 8-entry drop"]
	if tiny.FalseNegatives < ideal.FalseNegatives {
		t.Errorf("tiny drop cache cannot beat ideal: %+v", tiny)
	}
	// Word granularity over-taints; it must never *miss* more than the
	// ideal store (§3.3: the risk is false positives, not negatives).
	word := byName["word-granularity (4B)"]
	if word.FalseNegatives > ideal.FalseNegatives {
		t.Errorf("word store lost flows: %+v", word)
	}
	// The Mondrian trie is byte-exact: identical accuracy to the ideal
	// store.
	mond := byName["mondrian trie"]
	if mond.Accuracy() != ideal.Accuracy() || mond.FalsePositives != 0 {
		t.Errorf("mondrian trie drifted: %+v", mond)
	}
	if out := RenderStoreAblation(rows); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestCacheCapacity(t *testing.T) {
	h := newTestHarness()
	rows, err := CacheCapacity(h, []int{2, 16, 128, 2730})
	if err != nil {
		t.Fatal(err)
	}
	// Large caches must detect the LGRoot leak with no drops needed once
	// capacity exceeds the live range count (<100 for NI<=13).
	last := rows[len(rows)-1]
	if !last.Detected {
		t.Error("paper-sized cache (2730 entries) missed the leak")
	}
	// Drops decrease with capacity.
	for i := 1; i < len(rows); i++ {
		if rows[i].Drops > rows[i-1].Drops {
			t.Errorf("drops not monotone: %+v", rows)
		}
	}
	if out := RenderCacheCapacity(rows); len(out) == 0 {
		t.Error("empty render")
	}
}
