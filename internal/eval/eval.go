// Package eval contains one driver per table and figure of the paper's
// evaluation (§2 Figure 2, §4 Table 1 and Figure 10, §5 Figures 11–19 plus
// the headline accuracy numbers), each regenerating the corresponding
// result from the simulated platform and rendering it as text.
//
// Experiments record an application's front-end event stream once and
// replay it under many tracker configurations, mirroring how the paper fed
// gem5 traces to "the PIFT analysis code".
package eval

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/droidbench"
	"repro/internal/frontend"
	"repro/internal/malware"
	"repro/internal/trace"
)

// Harness caches recorded traces so the sweeps re-execute nothing. A
// harness is bound to one benchmark suite (and therefore one front end);
// the default is the Dalvik DroidBench suite.
type Harness struct {
	suite          frontend.Suite
	lgrootScale    int
	lgroot         *trace.Recorder
	apps           []frontend.App
	appTraces      map[string]*trace.Recorder
	suiteWorkloads map[int]*trace.Recorder
}

// NewHarness builds a harness over the Dalvik DroidBench suite; scale
// sizes the LGRoot busy-work loops (malware.DefaultScale is a good
// interactive value).
func NewHarness(scale int) *Harness {
	return NewHarnessSuite(scale, droidbench.DalvikSuite())
}

// NewHarnessSuite builds a harness over an arbitrary benchmark suite.
func NewHarnessSuite(scale int, suite frontend.Suite) *Harness {
	return &Harness{
		suite:       suite,
		lgrootScale: scale,
		appTraces:   make(map[string]*trace.Recorder),
	}
}

// Suite returns the harness's benchmark suite.
func (h *Harness) Suite() frontend.Suite { return h.suite }

// Frontend returns the front end the harness's suite targets.
func (h *Harness) Frontend() frontend.Frontend { return h.suite.Frontend() }

// defaultFrontend is the front end experiments use when none is named.
func defaultFrontend() frontend.Frontend { return droidbench.DalvikSuite().Frontend() }

// Record executes a program of any front end and returns its event trace.
func Record(prog frontend.Program) (*trace.Recorder, error) {
	rec := trace.NewRecorder(1 << 16)
	_, err := android.Run(prog, android.RunOptions{Sinks: []cpu.EventSink{rec}})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// LGRootTrace returns (and caches) the LGRoot execution trace used by all
// overhead experiments.
func (h *Harness) LGRootTrace() (*trace.Recorder, error) {
	if h.lgroot == nil {
		rec, err := Record(malware.LGRoot(h.lgrootScale))
		if err != nil {
			return nil, err
		}
		h.lgroot = rec
	}
	return h.lgroot, nil
}

// Apps returns the harness suite's applications (cached).
func (h *Harness) Apps() []frontend.App {
	if h.apps == nil {
		h.apps = h.suite.Apps()
	}
	return h.apps
}

// AppTrace returns (and caches) one app's event trace.
func (h *Harness) AppTrace(a frontend.App) (*trace.Recorder, error) {
	if rec, ok := h.appTraces[a.Name]; ok {
		return rec, nil
	}
	rec, err := Record(a.Prog)
	if err != nil {
		return nil, err
	}
	h.appTraces[a.Name] = rec
	return rec, nil
}

// Detected replays a trace under the configuration and reports whether any
// sink query found taint.
func Detected(rec *trace.Recorder, cfg core.Config) bool {
	tr := core.NewTracker(cfg, nil)
	rec.Replay(tr)
	for _, v := range tr.Verdicts() {
		if v.Tainted {
			return true
		}
	}
	return false
}

// Grid is a dense NI × NT result matrix.
type Grid struct {
	NIs   []uint64
	NTs   []int
	Cells [][]float64 // [ntIdx][niIdx]
}

// NewGrid allocates a grid over the standard sweep of the paper's
// heatmaps: NI = [1,20], NT = [1,10] — 200 combinations.
func NewGrid() *Grid {
	g := &Grid{}
	for ni := uint64(1); ni <= 20; ni++ {
		g.NIs = append(g.NIs, ni)
	}
	for nt := 1; nt <= 10; nt++ {
		g.NTs = append(g.NTs, nt)
	}
	g.Cells = make([][]float64, len(g.NTs))
	for i := range g.Cells {
		g.Cells[i] = make([]float64, len(g.NIs))
	}
	return g
}

// Set writes one cell.
func (g *Grid) Set(niIdx, ntIdx int, v float64) { g.Cells[ntIdx][niIdx] = v }

// At reads the cell for specific parameter values.
func (g *Grid) At(ni uint64, nt int) (float64, bool) {
	for i, n := range g.NIs {
		if n != ni {
			continue
		}
		for j, m := range g.NTs {
			if m == nt {
				return g.Cells[j][i], true
			}
		}
	}
	return 0, false
}

// Render prints the grid with NT rows (top = highest, as in the paper's
// heatmaps) and NI columns, using the supplied cell formatter.
func (g *Grid) Render(title string, format func(float64) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n        NI:", title)
	for _, ni := range g.NIs {
		fmt.Fprintf(&b, "%7d", ni)
	}
	b.WriteString("\n")
	for j := len(g.NTs) - 1; j >= 0; j-- {
		fmt.Fprintf(&b, "  NT=%-2d    ", g.NTs[j])
		for i := range g.NIs {
			fmt.Fprintf(&b, "%7s", format(g.Cells[j][i]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Sweep fills a grid by evaluating fn at every (NI, NT), in parallel: the
// 200 configurations are independent replays (fn must be safe to call
// concurrently — trackers are per-call; recorded traces are read-only).
func (g *Grid) Sweep(fn func(cfg core.Config) float64) {
	type cell struct{ i, j int }
	work := make(chan cell)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(g.NIs)*len(g.NTs) {
		workers = len(g.NIs) * len(g.NTs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				g.Cells[c.j][c.i] = fn(core.Config{
					NI: g.NIs[c.i], NT: g.NTs[c.j], Untaint: true,
				})
			}
		}()
	}
	for j := range g.NTs {
		for i := range g.NIs {
			work <- cell{i, j}
		}
	}
	close(work)
	wg.Wait()
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Count formats a numeric cell.
func Count(v float64) string { return fmt.Sprintf("%.0f", v) }
