package eval

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/trace"
)

// Serving workload helpers: the taint service's tests and load drivers
// need many distinct tenants whose ground truth is known exactly. Each
// synthetic tenant replays one DroidBench-like app (chosen round-robin)
// with its PIDs offset by the tenant index, so tenant i looks like a
// distinct device running a distinct process — but its verdicts are
// computable by an inline one-shot tracker, which is what "the server
// must be byte-identical to the CLI" is measured against.

// TenantID names synthetic tenant i. Fixed-width so session listings
// sort in tenant order.
func TenantID(i int) string { return fmt.Sprintf("tenant-%05d", i) }

// TenantEvents returns tenant i's event stream: the suite app chosen
// round-robin by index, re-PIDed by the tenant index. The PID offset is
// uniform across the trace, so window and taint-store behavior — and
// therefore every verdict's Tag/Seq/Tainted — match the original app
// exactly.
func (h *Harness) TenantEvents(i int) ([]cpu.Event, error) {
	apps := h.Apps()
	rec, err := h.AppTrace(apps[i%len(apps)])
	if err != nil {
		return nil, err
	}
	out := make([]cpu.Event, len(rec.Events))
	for j, ev := range rec.Events {
		ev.PID += uint32(i)
		out[j] = ev
	}
	return out, nil
}

// OneShotVerdicts replays an event stream through a fresh inline tracker
// — the ground truth every serving-path result must reproduce.
func OneShotVerdicts(events []cpu.Event, cfg core.Config) []core.SinkVerdict {
	tr := core.NewTracker(cfg, nil)
	for _, ev := range events {
		tr.Event(ev)
	}
	return tr.Verdicts()
}

// EncodeTrace serializes events as one self-contained PIFTTRC1 stream —
// the body of one ingest request. A sub-slice encodes the resumed tail of
// a stream: same format, sent with the PIFT-Offset of its first event.
func EncodeTrace(events []cpu.Event) []byte {
	return EncodeTraceFormat(events, trace.FormatV1)
}

// EncodeTraceFormat is EncodeTrace with the wire format chosen by the
// caller: PIFTTRC1 fixed records or PIFTTRC2 compressed blocks. Both are
// self-contained and both serve as a resumed tail — v2 re-blocks the
// sub-slice from event zero, which the server accepts because offsets
// travel in the PIFT-Offset header, not the payload.
func EncodeTraceFormat(events []cpu.Event, f trace.Format) []byte {
	var buf bytes.Buffer
	rec := &trace.Recorder{Events: events}
	if _, err := rec.WriteToFormat(&buf, f); err != nil {
		// bytes.Buffer writes cannot fail; a codec error here is a bug.
		panic(err)
	}
	return buf.Bytes()
}

// VerdictsEqual reports whether two verdict slices are identical —
// length, order, and every field.
func VerdictsEqual(a, b []core.SinkVerdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
