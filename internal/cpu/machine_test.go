package cpu

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/mem"
)

// buildImage links the given assembler body at base 0x1000.
func buildImage(t *testing.T, build func(a *arm.Assembler)) *Image {
	t.Helper()
	a := arm.NewAssembler(0x1000)
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return &Image{Base: 0x1000, Code: code}
}

type eventLog struct{ events []Event }

func (l *eventLog) Event(ev Event) { l.events = append(l.events, ev) }

func TestRunStraightLine(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R0, 21),
			arm.AddImm(arm.R0, arm.R0, 21),
			arm.Svc(0),
		)
	})
	m := NewMachine()
	p := NewProc(1, im, im.Base)
	n, err := m.Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("retired %d instructions, want 3", n)
	}
	if p.State.R[arm.R0] != 42 {
		t.Fatalf("r0 = %d", p.State.R[arm.R0])
	}
	if !p.Halted || p.ExitCode != 0 {
		t.Fatalf("halt state: %+v", p)
	}
}

func TestLoopAndBranches(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(arm.MovImm(arm.R0, 0), arm.MovImm(arm.R1, 0))
		a.Label("loop")
		a.Emit(arm.AddImm(arm.R1, arm.R1, 5), arm.AddsImm(arm.R0, arm.R0, 1),
			arm.CmpImm(arm.R0, 10))
		a.B(arm.LT, "loop")
		a.Emit(arm.Svc(0))
	})
	m := NewMachine()
	p := NewProc(1, im, im.Base)
	if _, err := m.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if p.State.R[arm.R1] != 50 {
		t.Fatalf("r1 = %d, want 50", p.State.R[arm.R1])
	}
}

func TestFrontEndEvents(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.MovImm(arm.R0, 7),
			arm.Str(arm.R0, arm.R1, 0), // store word at 0x5000, seq 3
			arm.Nop(),
			arm.Ldr(arm.R2, arm.R1, 0),  // load word, seq 5
			arm.Strh(arm.R2, arm.R1, 8), // store halfword at 0x5008, seq 6
			arm.Svc(0),
		)
	})
	m := NewMachine()
	log := &eventLog{}
	m.AttachSink(log)
	p := NewProc(3, im, im.Base)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: EvStore, PID: 3, Seq: 3, Range: mem.MakeRange(0x5000, 4)},
		{Kind: EvLoad, PID: 3, Seq: 5, Range: mem.MakeRange(0x5000, 4)},
		{Kind: EvStore, PID: 3, Seq: 6, Range: mem.MakeRange(0x5008, 2)},
	}
	if len(log.events) != len(want) {
		t.Fatalf("got %d events: %v", len(log.events), log.events)
	}
	for i, ev := range want {
		if log.events[i] != ev {
			t.Errorf("event %d = %+v, want %+v", i, log.events[i], ev)
		}
	}
}

func TestBridgeHandler(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(arm.MovImm(arm.R0, 5), arm.Bridge(1), arm.Svc(0))
	})
	m := NewMachine()
	m.RegisterBridge(1, func(mm *Machine, p *Proc) {
		p.State.R[arm.R0] *= 3 // host handler doubles as "framework call"
	})
	p := NewProc(1, im, im.Base)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if p.State.R[arm.R0] != 15 {
		t.Fatalf("r0 = %d, want 15", p.State.R[arm.R0])
	}
}

func TestUnboundBridgeFaults(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(arm.Bridge(99), arm.Svc(0))
	})
	m := NewMachine()
	p := NewProc(1, im, im.Base)
	if _, err := m.Run(p, 100); err == nil {
		t.Fatal("expected fault for unbound bridge")
	}
}

func TestFetchFault(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(arm.MovImm(arm.R0, 0x9999000), Bx(arm.R0))
	})
	m := NewMachine()
	p := NewProc(1, im, im.Base)
	if _, err := m.Run(p, 100); err == nil {
		t.Fatal("expected fetch fault")
	}
}

// Bx builds "bx rm" (test helper; arm exposes only BxLR).
func Bx(rm arm.Reg) arm.Instr { return arm.Instr{Op: arm.OpBX, Rm: rm} }

func TestInstructionBudget(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Label("spin")
		a.B(arm.AL, "spin")
	})
	m := NewMachine()
	p := NewProc(1, im, im.Base)
	n, err := m.Run(p, 50)
	if err == nil {
		t.Fatal("expected budget exhaustion error")
	}
	if n != 50 {
		t.Fatalf("retired %d, want 50", n)
	}
}

func TestSubroutineCall(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(arm.MovImm(arm.SP, 0x8000), arm.MovImm(arm.R0, 4))
		a.BL("double")
		a.Emit(arm.Svc(0))
		a.Label("double")
		a.Emit(arm.Push(arm.LR),
			arm.Add(arm.R0, arm.R0, arm.R0),
			arm.Pop(arm.PC))
	})
	m := NewMachine()
	p := NewProc(1, im, im.Base)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if p.State.R[arm.R0] != 8 {
		t.Fatalf("r0 = %d, want 8", p.State.R[arm.R0])
	}
}

func TestPerProcessCounters(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(arm.MovImm(arm.R1, 0x5000), arm.Ldr(arm.R0, arm.R1, 0), arm.Svc(0))
	})
	m := NewMachine()
	log := &eventLog{}
	m.AttachSink(log)
	p1 := NewProc(1, im, im.Base)
	p2 := NewProc(2, im, im.Base)
	// Interleave: one step each, alternating.
	for !p1.Halted || !p2.Halted {
		m.Step(p1)
		m.Step(p2)
	}
	if len(log.events) != 2 {
		t.Fatalf("events = %v", log.events)
	}
	for _, ev := range log.events {
		if ev.Seq != 2 {
			t.Errorf("pid %d load at seq %d, want per-process seq 2", ev.PID, ev.Seq)
		}
	}
	if log.events[0].PID == log.events[1].PID {
		t.Error("expected events from two distinct PIDs")
	}
}

func TestSourceAndSinkInjection(t *testing.T) {
	m := NewMachine()
	log := &eventLog{}
	m.AttachSink(log)
	p := &Proc{PID: 9, InstrCount: 123}
	m.RegisterSource(p, mem.MakeRange(0x100, 16))
	tag := m.CheckSink(p, mem.MakeRange(0x200, 8))
	if tag != 1 {
		t.Fatalf("first sink tag = %d", tag)
	}
	if tag2 := m.CheckSink(p, mem.MakeRange(0x300, 8)); tag2 != 2 {
		t.Fatalf("second sink tag = %d", tag2)
	}
	if log.events[0].Kind != EvSourceRegister || log.events[0].Seq != 123 {
		t.Fatalf("source event = %+v", log.events[0])
	}
	if log.events[1].Kind != EvSinkCheck || log.events[1].Tag != 1 {
		t.Fatalf("sink event = %+v", log.events[1])
	}
}
