package cpu

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/mem"
)

func TestImageEncodeInto(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R0, 7),
			arm.AddImm(arm.R1, arm.R0, 1),
			arm.Ldr(arm.R2, arm.R1, 4),
			arm.Str(arm.R2, arm.R1, 8),
			arm.Svc(0),
		)
	})
	m := mem.NewMemory()
	encoded, skipped := im.EncodeInto(m)
	if encoded != 5 || skipped != 0 {
		t.Fatalf("encoded=%d skipped=%d", encoded, skipped)
	}
	// Every word in memory must decode back to an instruction with the
	// same disassembly.
	for i := range im.Code {
		addr := im.Base + mem.Addr(4*i)
		word := m.Load32(addr)
		back, err := arm.Decode(word, addr)
		if err != nil {
			t.Fatalf("decode at %#x: %v", addr, err)
		}
		if back.String() != im.Code[i].String() {
			t.Errorf("at %#x: %q decoded as %q", addr, im.Code[i], back)
		}
	}
}

func TestImageEncodeIntoSkipsBigImmediates(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R0, 0x12345678), // needs movw/movt: unencodable
			arm.MovImm(arm.R1, 0xff),       // fine
			arm.Svc(0),
		)
	})
	m := mem.NewMemory()
	encoded, skipped := im.EncodeInto(m)
	if skipped != 1 || encoded != 2 {
		t.Fatalf("encoded=%d skipped=%d", encoded, skipped)
	}
}
