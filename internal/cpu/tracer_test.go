package cpu

import (
	"strings"
	"testing"

	"repro/internal/arm"
)

func TestTracerListing(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0),
			arm.Strh(arm.R0, arm.R1, 8),
			arm.Svc(0),
		)
	})
	var sb strings.Builder
	m := NewMachine()
	tr := NewTracer(&sb, 0)
	m.AttachHook(tr)
	p := NewProc(7, im, im.Base)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if tr.Count() != 4 {
		t.Fatalf("lines = %d, want 4\n%s", tr.Count(), out)
	}
	for _, want := range []string{
		"[pid 7 #1] 0x00001000: mov r1, #20480",
		"ldr r0, [r1]   ; <- mem[0x00005000,0x00005003]",
		"strh r0, [r1, #8]   ; -> mem[0x00005008,0x00005009]",
		"svc #0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q\n%s", want, out)
		}
	}
}

func TestTracerLimit(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		for i := 0; i < 10; i++ {
			a.Emit(arm.Nop())
		}
		a.Emit(arm.Svc(0))
	})
	var sb strings.Builder
	m := NewMachine()
	tr := NewTracer(&sb, 3)
	m.AttachHook(tr)
	p := NewProc(1, im, im.Base)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 3 {
		t.Fatalf("limit ignored: %d lines", tr.Count())
	}
	if n := strings.Count(sb.String(), "\n"); n != 3 {
		t.Fatalf("output has %d lines", n)
	}
}

func TestTracerMarksSkipped(t *testing.T) {
	im := buildImage(t, func(a *arm.Assembler) {
		skipped := arm.MovImm(arm.R2, 9)
		skipped.Cond = arm.NE
		a.Emit(
			arm.MovImm(arm.R0, 0),
			arm.CmpImm(arm.R0, 0), // Z set → NE fails
			skipped,
			arm.Svc(0),
		)
	})
	var sb strings.Builder
	m := NewMachine()
	m.AttachHook(NewTracer(&sb, 0))
	p := NewProc(1, im, im.Base)
	if _, err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(skipped)") {
		t.Fatalf("skipped conditional not marked:\n%s", sb.String())
	}
}
