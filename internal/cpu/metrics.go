package cpu

import "repro/internal/metrics"

// MachineMetrics wires the front end's retirement stream into live
// counters: the denominators of every PIFT-vs-DIFT work ratio. The zero
// value disables instrumentation (all mutations are nil-receiver-safe).
type MachineMetrics struct {
	// Instructions counts instructions retired across all processes.
	Instructions *metrics.Counter
	// Loads and Stores count data-memory accesses the front end emitted —
	// exactly the event stream PIFT shadow-processes.
	Loads  *metrics.Counter
	Stores *metrics.Counter
}

// NewMachineMetrics registers the machine metric set under its canonical
// names; registration is idempotent, so several machines can share a
// registry and aggregate.
func NewMachineMetrics(r *metrics.Registry) MachineMetrics {
	return MachineMetrics{
		Instructions: r.Counter("pift_cpu_instructions_total",
			"Instructions retired by the simulated CPU."),
		Loads: r.Counter("pift_cpu_loads_total",
			"Data-memory load events emitted by the front end."),
		Stores: r.Counter("pift_cpu_stores_total",
			"Data-memory store events emitted by the front end."),
	}
}

// SetMetrics attaches (or, with the zero value, detaches) live metrics.
func (m *Machine) SetMetrics(mm MachineMetrics) { m.metrics = mm }
