package cpu

import (
	"fmt"
	"io"

	"repro/internal/arm"
)

// Tracer is an InstrHook that writes a gem5-style disassembly listing of
// retired instructions — the kind of trace the paper's Figures 1 and 9
// show ("0x407c7bc8: ldr r1, [r5, r3, lsl #2]"), with the memory ranges
// each instruction touched. Useful for debugging templates and for
// demonstrating the load–store structure by eye.
type Tracer struct {
	w     io.Writer
	limit uint64
	count uint64
	err   error
}

// NewTracer writes up to limit instruction lines to w (0 = unlimited).
func NewTracer(w io.Writer, limit uint64) *Tracer {
	return &Tracer{w: w, limit: limit}
}

// Count returns the number of lines written so far.
func (t *Tracer) Count() uint64 { return t.count }

// Err returns the first write error, if any.
func (t *Tracer) Err() error { return t.err }

// Retired implements InstrHook.
func (t *Tracer) Retired(p *Proc, in *arm.Instr, res *arm.Result) {
	if t.err != nil || (t.limit > 0 && t.count >= t.limit) {
		return
	}
	t.count++
	pc := p.State.R[arm.PC]
	suffix := ""
	if !res.Executed {
		suffix = "   ; (skipped)"
	}
	for i := 0; i < res.NAcc; i++ {
		acc := res.Acc[i]
		dir := "<-"
		if acc.Store {
			dir = "->"
		}
		suffix += fmt.Sprintf("   ; %s mem%v", dir, acc.Range)
	}
	if _, err := fmt.Fprintf(t.w, "[pid %d #%d] 0x%08x: %v%s\n",
		p.PID, p.InstrCount, pc, in, suffix); err != nil {
		t.err = err
	}
}
