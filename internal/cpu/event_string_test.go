package cpu

import "testing"

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvLoad:           "load",
		EvStore:          "store",
		EvSourceRegister: "source",
		EvSinkCheck:      "sink",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, s)
		}
	}
}

type countingSink struct{ n int }

func (c *countingSink) Event(Event) { c.n++ }

func TestEventSinksFanOut(t *testing.T) {
	a, b := &countingSink{}, &countingSink{}
	s := EventSinks{a, b}
	s.Event(Event{Kind: EvLoad})
	s.Event(Event{Kind: EvStore})
	if a.n != 2 || b.n != 2 {
		t.Fatalf("fan-out delivered %d/%d events, want 2/2", a.n, b.n)
	}
}
