package cpu

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/mem"
)

// Image is a linked native-code image: instructions at consecutive word
// addresses starting at Base. Instruction fetch goes through the image, not
// through data memory, matching the front end's view (only data accesses
// become taint events; the Dalvik *bytecode* stream, which the interpreter
// templates do fetch via data loads, lives in data memory).
type Image struct {
	Base mem.Addr
	Code []arm.Instr
}

// At returns the instruction at addr, or nil when addr is outside the image.
func (im *Image) At(addr mem.Addr) *arm.Instr {
	if addr < im.Base || addr&3 != 0 {
		return nil
	}
	idx := (addr - im.Base) / 4
	if idx >= mem.Addr(len(im.Code)) {
		return nil
	}
	return &im.Code[idx]
}

// End returns the first address past the image.
func (im *Image) End() mem.Addr { return im.Base + mem.Addr(4*len(im.Code)) }

// EncodeInto writes the image's instructions as real A32 words into data
// memory at their own addresses, so debuggers (and curious programs) can
// inspect the code bytes the way they would on the real platform.
// Instructions outside the binary subset (large immediates, shifted
// halfword offsets) are skipped; the counts are returned. Execution always
// uses the symbolic image, so skipped encodings are cosmetic.
func (im *Image) EncodeInto(m *mem.Memory) (encoded, skipped int) {
	for i := range im.Code {
		addr := im.Base + mem.Addr(4*i)
		w, err := arm.Encode(im.Code[i], addr)
		if err != nil {
			skipped++
			continue
		}
		m.Store32(addr, w)
		encoded++
	}
	return encoded, skipped
}

// Proc is one schedulable process: a register context, its code image, and
// the per-process instruction counter the PIFT front end maintains
// ("indexed by a process-specific ID such as PID or TTBR").
type Proc struct {
	PID        uint32
	State      arm.State
	Image      *Image
	InstrCount uint64
	Halted     bool
	ExitCode   int32
}

// NewProc creates a process that will begin execution at entry.
func NewProc(pid uint32, im *Image, entry mem.Addr) *Proc {
	p := &Proc{PID: pid, Image: im}
	p.State.R[arm.PC] = entry
	return p
}

// BridgeFunc is a host handler bound to an OpBRIDGE instruction. Handlers
// model work the paper performs outside the traced CPU data path (framework
// and kernel layers): heap allocation, source registration, sink checks.
// Memory writes a handler performs are intentionally invisible to the
// front end, like kernel/driver writes on the real system.
type BridgeFunc func(m *Machine, p *Proc)

// Machine executes processes over a shared memory and fans front-end
// events out to the attached sinks.
type Machine struct {
	Mem     *mem.Memory
	sinks   []EventSink
	hooks   []InstrHook
	bridges map[int32]BridgeFunc

	res      arm.Result
	stepErr  error
	sinkTags int
	metrics  MachineMetrics
}

// InstrHook observes every retired instruction with full architectural
// detail. The DIFT baseline (exact register-level tracking) attaches here;
// PIFT itself never needs this level of visibility — that asymmetry is the
// paper's point.
type InstrHook interface {
	Retired(p *Proc, in *arm.Instr, res *arm.Result)
}

// NewMachine returns a machine over fresh memory.
func NewMachine() *Machine {
	return &Machine{
		Mem:     mem.NewMemory(),
		bridges: make(map[int32]BridgeFunc),
	}
}

// AttachSink adds a front-end event consumer.
func (m *Machine) AttachSink(s EventSink) { m.sinks = append(m.sinks, s) }

// AttachHook adds a full-detail instruction observer.
func (m *Machine) AttachHook(h InstrHook) { m.hooks = append(m.hooks, h) }

// RegisterBridge binds a host handler to a bridge ID. Rebinding an ID is a
// programming error and panics.
func (m *Machine) RegisterBridge(id int32, fn BridgeFunc) {
	if _, dup := m.bridges[id]; dup {
		panic(fmt.Sprintf("cpu: duplicate bridge id %d", id))
	}
	m.bridges[id] = fn
}

// Emit delivers an event to every attached sink.
func (m *Machine) Emit(ev Event) {
	for _, s := range m.sinks {
		s.Event(ev)
	}
}

// RegisterSource injects an EvSourceRegister for the range, stamped with
// the process's current instruction counter.
func (m *Machine) RegisterSource(p *Proc, r mem.Range) {
	m.Emit(Event{Kind: EvSourceRegister, PID: p.PID, Seq: p.InstrCount, Range: r})
}

// CheckSink injects an EvSinkCheck for the range and returns the tag
// assigned to this sink call (tags are unique per machine so replayed
// verdicts can be matched to sink calls).
func (m *Machine) CheckSink(p *Proc, r mem.Range) int {
	m.sinkTags++
	tag := m.sinkTags
	m.Emit(Event{Kind: EvSinkCheck, PID: p.PID, Seq: p.InstrCount, Range: r, Tag: tag})
	return tag
}

// Step executes one instruction of p. It returns false once p is halted or
// a fault occurs (fault details via Err).
func (m *Machine) Step(p *Proc) bool {
	if p.Halted || m.stepErr != nil {
		return false
	}
	pc := p.State.R[arm.PC]
	in := p.Image.At(pc)
	if in == nil {
		m.stepErr = fmt.Errorf("cpu: pid %d: fetch fault at 0x%08x", p.PID, pc)
		p.Halted = true
		return false
	}

	arm.Exec(&p.State, in, m.Mem, &m.res)
	p.InstrCount++
	m.metrics.Instructions.Inc()

	// Front-end logic: forward every data access.
	for i := 0; i < m.res.NAcc; i++ {
		acc := &m.res.Acc[i]
		kind := EvLoad
		if acc.Store {
			kind = EvStore
			m.metrics.Stores.Inc()
		} else {
			m.metrics.Loads.Inc()
		}
		m.Emit(Event{Kind: kind, PID: p.PID, Seq: p.InstrCount, Range: acc.Range})
	}
	for _, h := range m.hooks {
		h.Retired(p, in, &m.res)
	}

	switch {
	case m.res.SVC:
		p.Halted = true
		p.ExitCode = m.res.SVCNum
	case m.res.Bridge:
		fn := m.bridges[m.res.BridgeID]
		if fn == nil {
			m.stepErr = fmt.Errorf("cpu: pid %d: unbound bridge %d at 0x%08x",
				p.PID, m.res.BridgeID, pc)
			p.Halted = true
			return false
		}
		p.State.R[arm.PC] = pc + 4
		fn(m, p)
	case m.res.Branched:
		p.State.R[arm.PC] = m.res.Target
	default:
		p.State.R[arm.PC] = pc + 4
	}
	return !p.Halted
}

// Run executes p until it halts or the instruction budget is exhausted.
// It returns the number of instructions retired and a non-nil error on a
// fault or budget exhaustion (a runaway program is a bug in the workload).
func (m *Machine) Run(p *Proc, budget uint64) (uint64, error) {
	start := p.InstrCount
	for !p.Halted {
		if p.InstrCount-start >= budget {
			return p.InstrCount - start, fmt.Errorf(
				"cpu: pid %d: instruction budget %d exhausted at pc 0x%08x",
				p.PID, budget, p.State.R[arm.PC])
		}
		m.Step(p)
	}
	if m.stepErr != nil {
		return p.InstrCount - start, m.stepErr
	}
	return p.InstrCount - start, nil
}

// Err returns the sticky fault, if any.
func (m *Machine) Err() error { return m.stepErr }
