// Package atomicfile is the one implementation of the write-temp-then-
// rename idiom the repo's durable artifacts rely on: pipeline checkpoint
// files, benchmark JSON baselines, and server session spill files. The
// invariant every caller buys is crash atomicity — at any instant the
// target path either holds the complete previous contents or the complete
// new contents, never a torn prefix — because the temp file lives in the
// target's directory (same filesystem, so os.Rename is atomic) and is
// renamed into place only after the producer finished without error.
package atomicfile

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the target path atomically: write streams the contents
// into a temp file beside path, and only a fully successful write (and
// close) is renamed over path. On any error the temp file is removed and
// the previous contents of path are untouched.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}
