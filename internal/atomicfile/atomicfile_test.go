package atomicfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "v1" {
		t.Fatalf("contents = %q, want v1", got)
	}
	// Overwrite replaces the whole file, not appends.
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "version-two")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "version-two" {
		t.Fatalf("contents = %q, want version-two", got)
	}
}

// TestCrashSafety is the helper's reason to exist: a producer that dies
// mid-write (simulated by an error return after a partial write) must
// leave the previous contents intact and no temp litter behind — the
// "newest file in the directory is always a complete artifact" property
// the checkpoint scanner and spill hydrator both depend on.
func TestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.pift")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good checkpoint")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash mid-write")
	err := WriteFile(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "torn par"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the producer's crash error", err)
	}
	if got := readFile(t, path); got != "good checkpoint" {
		t.Fatalf("crashed write damaged the target: %q", got)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the target", len(entries))
	}
}

// TestConcurrentWriters: racing writers must each leave a complete value —
// the final file is one of the candidates, never an interleaving.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared")
	var wg sync.WaitGroup
	const writers = 16
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := fmt.Sprintf("writer-%02d|%s", i, strings.Repeat("x", 4096))
			if err := WriteFile(path, func(w io.Writer) error {
				_, err := io.WriteString(w, payload)
				return err
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	got := readFile(t, path)
	if !strings.HasPrefix(got, "writer-") || len(got) != len("writer-00|")+4096 {
		t.Fatalf("final contents are not one complete write (len %d)", len(got))
	}
}

func TestMissingDirectory(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "f"), func(io.Writer) error {
		return nil
	})
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
