// Package kernel models the Linux-kernel layer of the paper's Figure 3:
// the PIFT Module that "interacts with the PIFT Hardware Module to register
// sensitive data's address ranges and make taint queries for check
// requests. Upon detecting any taint associated with the given address
// range, it may generate an event to the upper layer to inform of the
// potential leakage."
//
// The module owns a tracker (the hardware model), consumes the front-end
// event stream, maintains a process table, and raises leak events to a
// registered handler. It also exposes the deferred-analysis mode the
// paper's introduction sketches: "the load–store stream is buffered for
// delayed processing at a more convenient time (while trading prevention
// for detection, of course)".
package kernel

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

// LeakEvent is the notification the module sends to the upper layer when a
// sink check finds tainted data.
type LeakEvent struct {
	PID  uint32
	Seq  uint64
	Tag  int
	Proc string // process name, if registered
}

// ProcInfo is one process-table entry with per-process accounting.
type ProcInfo struct {
	PID     uint32
	Name    string
	Sources int
	Sinks   int
	Leaks   int
}

// Module is the kernel-side driver of the PIFT hardware.
type Module struct {
	tracker *core.Tracker
	onLeak  func(LeakEvent)
	procs   map[uint32]*ProcInfo
	nextPID uint32
}

// New builds a module around a fresh tracker with the given configuration
// and hardware taint store (nil store = unbounded). onLeak may be nil.
func New(cfg core.Config, store core.Store, onLeak func(LeakEvent)) *Module {
	return &Module{
		tracker: core.NewTracker(cfg, store),
		onLeak:  onLeak,
		procs:   make(map[uint32]*ProcInfo),
		nextPID: 1,
	}
}

// Tracker exposes the underlying hardware model.
func (m *Module) Tracker() *core.Tracker { return m.tracker }

// RegisterProcess allocates a PID for a named process.
func (m *Module) RegisterProcess(name string) uint32 {
	pid := m.nextPID
	m.nextPID++
	m.procs[pid] = &ProcInfo{PID: pid, Name: name}
	return pid
}

// Processes returns the process table sorted by PID.
func (m *Module) Processes() []ProcInfo {
	out := make([]ProcInfo, 0, len(m.procs))
	for _, p := range m.procs {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

func (m *Module) proc(pid uint32) *ProcInfo {
	p := m.procs[pid]
	if p == nil {
		p = &ProcInfo{PID: pid, Name: fmt.Sprintf("pid%d", pid)}
		m.procs[pid] = p
	}
	return p
}

// Event implements cpu.EventSink: every event is forwarded to the hardware
// model; sink checks additionally update the process table and raise leak
// events.
func (m *Module) Event(ev cpu.Event) {
	before := len(m.tracker.Verdicts())
	m.tracker.Event(ev)
	switch ev.Kind {
	case cpu.EvSourceRegister:
		m.proc(ev.PID).Sources++
	case cpu.EvSinkCheck:
		p := m.proc(ev.PID)
		p.Sinks++
		verdicts := m.tracker.Verdicts()
		if len(verdicts) > before && verdicts[len(verdicts)-1].Tainted {
			p.Leaks++
			if m.onLeak != nil {
				m.onLeak(LeakEvent{PID: ev.PID, Seq: ev.Seq, Tag: ev.Tag, Proc: p.Name})
			}
		}
	}
}

// Check performs a synchronous software taint query, as the framework's
// check path does.
func (m *Module) Check(pid uint32, r mem.Range) bool {
	return m.tracker.Check(pid, r)
}

// ScanDeferred runs the module over a buffered event stream — the paper's
// off-critical-path mode, where the hardware only logs the load–store
// stream and analysis happens later. It returns the leaks found.
func ScanDeferred(cfg core.Config, store core.Store, rec *trace.Recorder) []LeakEvent {
	var leaks []LeakEvent
	m := New(cfg, store, func(e LeakEvent) { leaks = append(leaks, e) })
	rec.Replay(m)
	return leaks
}
