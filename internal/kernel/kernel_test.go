package kernel

import (
	"testing"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/droidbench"
	"repro/internal/jrt"
	"repro/internal/mem"
	"repro/internal/trace"
)

func leakApp(t *testing.T) *dalvik.Program {
	t.Helper()
	b := dalvik.NewProgram("leak")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetDeviceID)
	m.MoveResultObject(0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodAppend, 1, 0)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodToString, 1)
	m.MoveResultObject(2)
	m.ConstString(3, "555")
	m.InvokeStatic(android.MethodSendSMS, 3, 2)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(android.KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestLeakEventRaised(t *testing.T) {
	var leaks []LeakEvent
	mod := New(core.Config{NI: 13, NT: 3, Untaint: true}, nil,
		func(e LeakEvent) { leaks = append(leaks, e) })
	pid := mod.RegisterProcess("leaky.apk")
	if _, err := android.Run(leakApp(t), android.RunOptions{
		PID:   pid,
		Sinks: []cpu.EventSink{mod},
	}); err != nil {
		t.Fatal(err)
	}
	if len(leaks) != 1 {
		t.Fatalf("leak events = %d, want 1", len(leaks))
	}
	if leaks[0].Proc != "leaky.apk" || leaks[0].PID != pid {
		t.Fatalf("leak event = %+v", leaks[0])
	}
	procs := mod.Processes()
	if len(procs) != 1 || procs[0].Leaks != 1 || procs[0].Sources != 1 || procs[0].Sinks != 1 {
		t.Fatalf("process table = %+v", procs)
	}
}

func TestNoLeakEventForBenign(t *testing.T) {
	var leaks []LeakEvent
	mod := New(core.Config{NI: 20, NT: 10, Untaint: true}, nil,
		func(e LeakEvent) { leaks = append(leaks, e) })
	for _, a := range droidbench.Suite() {
		if a.Leaky {
			continue
		}
		pid := mod.RegisterProcess(a.Name)
		if _, err := android.Run(a.Prog, android.RunOptions{
			PID:   pid,
			Sinks: []cpu.EventSink{mod},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(leaks) != 0 {
		t.Fatalf("benign apps raised %d leak events: %+v", len(leaks), leaks)
	}
}

// TestDeferredScan exercises the off-critical-path mode: record first,
// analyze later, same verdicts.
func TestDeferredScan(t *testing.T) {
	rec := trace.NewRecorder(1 << 12)
	if _, err := android.Run(leakApp(t), android.RunOptions{
		Sinks: []cpu.EventSink{rec},
	}); err != nil {
		t.Fatal(err)
	}
	leaks := ScanDeferred(core.Config{NI: 13, NT: 3, Untaint: true}, nil, rec)
	if len(leaks) != 1 {
		t.Fatalf("deferred scan found %d leaks, want 1", len(leaks))
	}
	// A too-small window misses the same trace.
	leaks = ScanDeferred(core.Config{NI: 1, NT: 1, Untaint: true}, nil, rec)
	if len(leaks) != 0 {
		t.Fatalf("NI=1 deferred scan found %d leaks, want 0", len(leaks))
	}
}

// TestContextSwitchIsolation interleaves a leaky and a benign process at a
// small quantum and checks the PID tagging of Figure 6 keeps their taint
// apart: the leaky process is still flagged, the benign one stays clean,
// and the verdicts are identical to the un-interleaved runs.
func TestContextSwitchIsolation(t *testing.T) {
	leakRec := trace.NewRecorder(1 << 12)
	if _, err := android.Run(leakApp(t), android.RunOptions{
		PID: 1, Sinks: []cpu.EventSink{leakRec},
	}); err != nil {
		t.Fatal(err)
	}
	var benign *droidbench.App
	for _, a := range droidbench.Suite() {
		if !a.Leaky {
			a := a
			benign = &a
			break
		}
	}
	benignRec := trace.NewRecorder(1 << 12)
	if _, err := android.Run(benign.Prog, android.RunOptions{
		PID: 2, Sinks: []cpu.EventSink{benignRec},
	}); err != nil {
		t.Fatal(err)
	}

	for _, quantum := range []int{1, 7, 64} {
		merged := trace.Interleave(quantum, leakRec.Events, benignRec.Events)
		if len(merged) != len(leakRec.Events)+len(benignRec.Events) {
			t.Fatalf("quantum %d: interleave lost events", quantum)
		}
		var leaks []LeakEvent
		mod := New(core.Config{NI: 13, NT: 3, Untaint: true}, nil,
			func(e LeakEvent) { leaks = append(leaks, e) })
		for _, ev := range merged {
			mod.Event(ev)
		}
		if len(leaks) != 1 || leaks[0].PID != 1 {
			t.Fatalf("quantum %d: leaks = %+v, want exactly one from PID 1",
				quantum, leaks)
		}
	}
}

// TestModuleCheckPath verifies the synchronous query path the framework's
// Check(addr) request uses.
func TestModuleCheckPath(t *testing.T) {
	mod := New(core.Config{NI: 5, NT: 2, Untaint: true}, nil, nil)
	mod.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 3, Range: mem.MakeRange(0x100, 16)})
	if !mod.Check(3, mem.MakeRange(0x108, 2)) {
		t.Error("registered range not found")
	}
	if mod.Check(4, mem.MakeRange(0x108, 2)) {
		t.Error("cross-PID query hit")
	}
}

// TestBoundedHardwareStore runs the module over a leaky app with a tiny
// range cache and the drop policy: §3.3's "may increase the possibility of
// false negative" trade-off must not produce false positives.
func TestBoundedHardwareStore(t *testing.T) {
	for _, capacity := range []int{1, 4, 64, 4096} {
		store := core.NewRangeCache(capacity, core.EvictDrop)
		var leaks []LeakEvent
		mod := New(core.Config{NI: 13, NT: 3, Untaint: true}, store,
			func(e LeakEvent) { leaks = append(leaks, e) })
		if _, err := android.Run(leakApp(t), android.RunOptions{
			Sinks: []cpu.EventSink{mod},
		}); err != nil {
			t.Fatal(err)
		}
		if capacity >= 64 && len(leaks) != 1 {
			t.Errorf("capacity %d: leak missed (drops=%d)",
				capacity, store.Stats().Drops)
		}
	}
	// LRU with backing never loses taint regardless of capacity.
	for _, capacity := range []int{1, 4} {
		store := core.NewRangeCache(capacity, core.EvictLRU)
		var leaks []LeakEvent
		mod := New(core.Config{NI: 13, NT: 3, Untaint: true}, store,
			func(e LeakEvent) { leaks = append(leaks, e) })
		if _, err := android.Run(leakApp(t), android.RunOptions{
			Sinks: []cpu.EventSink{mod},
		}); err != nil {
			t.Fatal(err)
		}
		if len(leaks) != 1 {
			t.Errorf("LRU capacity %d: leak missed despite secondary storage", capacity)
		}
	}
}
