package taint

import (
	"testing"

	"repro/internal/mem"
)

// FuzzRangeSet drives an op-coded script against the set and its
// invariants: every byte-level mutation is mirrored in a map model.
// Run with `go test -fuzz FuzzRangeSet ./internal/taint` for deep fuzzing;
// the seed corpus runs as a normal test.
func FuzzRangeSet(f *testing.F) {
	f.Add([]byte{0, 10, 4, 1, 12, 4, 2, 8, 8})
	f.Add([]byte{0, 0, 255, 1, 10, 10, 0, 5, 1, 2, 0, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		var s RangeSet
		ref := map[mem.Addr]bool{}
		for i := 0; i+2 < len(script); i += 3 {
			op := script[i] % 3
			start := mem.Addr(script[i+1])
			length := uint32(script[i+2]%32) + 1
			r := mem.MakeRange(start, length)
			switch op {
			case 0:
				s.Add(r)
				for a := r.Start; a <= r.End; a++ {
					ref[a] = true
				}
			case 1:
				s.Remove(r)
				for a := r.Start; a <= r.End; a++ {
					delete(ref, a)
				}
			case 2:
				want := false
				for a := r.Start; a <= r.End; a++ {
					want = want || ref[a]
				}
				if got := s.Overlaps(r); got != want {
					t.Fatalf("Overlaps(%v) = %v, model %v", r, got, want)
				}
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("invariant broken after op %d: %v", i/3, err)
			}
			if s.Bytes() != uint64(len(ref)) {
				t.Fatalf("bytes %d, model %d", s.Bytes(), len(ref))
			}
		}
	})
}
