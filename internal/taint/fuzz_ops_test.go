package taint

import (
	"testing"

	"repro/internal/mem"
)

// FuzzRangeSetOps hammers the in-place mutation paths with random
// Add/Remove/Overlaps sequences over a 16-bit address space (wide enough
// to populate long range arrays and hit every shift/splice branch) and
// validates, after every op: the normalization invariants, the byte-level
// model, and — the part FuzzRangeSet cannot see — the per-op deltas that
// core.IdealStore aggregates incrementally. A mutation that leaves the set
// normalized but misreports its delta would silently skew TaintedBytes and
// RangeCount; this target pins them to the set's own Bytes/Count.
//
// Run with `go test -fuzz FuzzRangeSetOps ./internal/taint` for deep
// fuzzing; the seed corpus runs as a normal test.
func FuzzRangeSetOps(f *testing.F) {
	f.Add([]byte{0, 0, 10, 4, 0, 0, 20, 4, 1, 0, 12, 16})
	f.Add([]byte{0, 1, 0, 255, 1, 1, 100, 10, 2, 0, 50, 1, 0, 1, 0, 255})
	f.Add([]byte{0, 255, 255, 32, 1, 255, 255, 32})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		var s RangeSet
		ref := map[mem.Addr]bool{}
		var aggBytes uint64 // mirrors IdealStore's incremental bookkeeping
		aggRanges := 0
		for i := 0; i+3 < len(script); i += 4 {
			op := script[i] % 3
			start := mem.Addr(script[i+1])<<8 | mem.Addr(script[i+2])
			length := uint32(script[i+3]%64) + 1
			r := mem.MakeRange(start, length)
			switch op {
			case 0:
				added, delta := s.Add(r)
				aggBytes += added
				aggRanges += delta
				var want uint64
				for a := r.Start; a <= r.End; a++ {
					if !ref[a] {
						want++
					}
					ref[a] = true
				}
				if added != want {
					t.Fatalf("Add(%v) reported %d bytes added, model %d", r, added, want)
				}
			case 1:
				removed, delta := s.Remove(r)
				aggBytes -= removed
				aggRanges += delta
				var want uint64
				for a := r.Start; a <= r.End; a++ {
					if ref[a] {
						want++
					}
					delete(ref, a)
				}
				if removed != want {
					t.Fatalf("Remove(%v) reported %d bytes removed, model %d", r, removed, want)
				}
			case 2:
				want := false
				for a := r.Start; a <= r.End; a++ {
					want = want || ref[a]
				}
				if got := s.Overlaps(r); got != want {
					t.Fatalf("Overlaps(%v) = %v, model %v", r, got, want)
				}
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("invariant broken after op %d: %v", i/4, err)
			}
			if s.Bytes() != uint64(len(ref)) {
				t.Fatalf("bytes %d, model %d", s.Bytes(), len(ref))
			}
			if aggBytes != s.Bytes() {
				t.Fatalf("delta-aggregated bytes %d, set reports %d", aggBytes, s.Bytes())
			}
			if aggRanges != s.Count() {
				t.Fatalf("delta-aggregated range count %d, set reports %d", aggRanges, s.Count())
			}
		}
		// AppendRanges must agree with Ranges and leave dst's prefix alone.
		prefix := []mem.Range{{Start: 1, End: 2}}
		got := s.AppendRanges(prefix)
		want := s.Ranges()
		if len(got) != 1+len(want) || got[0] != prefix[0] {
			t.Fatalf("AppendRanges mangled dst: %v", got)
		}
		for i, r := range want {
			if got[1+i] != r {
				t.Fatalf("AppendRanges[%d] = %v, Ranges %v", i, got[1+i], r)
			}
		}
	})
}
