package taint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func mustValid(t *testing.T, s *RangeSet) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("invariant violated: %v (%v)", err, s)
	}
}

func TestAddDisjoint(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 10, End: 19})
	s.Add(mem.Range{Start: 30, End: 39})
	mustValid(t, &s)
	if s.Count() != 2 || s.Bytes() != 20 {
		t.Fatalf("count=%d bytes=%d", s.Count(), s.Bytes())
	}
}

func TestAddMergesOverlap(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 10, End: 19})
	s.Add(mem.Range{Start: 15, End: 25})
	mustValid(t, &s)
	if s.Count() != 1 || s.Bytes() != 16 {
		t.Fatalf("merge: %v bytes=%d", &s, s.Bytes())
	}
}

func TestAddMergesAdjacent(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 10, End: 19})
	s.Add(mem.Range{Start: 20, End: 29})
	mustValid(t, &s)
	if s.Count() != 1 || s.Bytes() != 20 {
		t.Fatalf("adjacent merge: %v", &s)
	}
}

func TestAddBridgesMany(t *testing.T) {
	var s RangeSet
	for i := mem.Addr(0); i < 5; i++ {
		s.Add(mem.Range{Start: i * 10, End: i*10 + 3})
	}
	if s.Count() != 5 {
		t.Fatalf("setup count = %d", s.Count())
	}
	s.Add(mem.Range{Start: 0, End: 49}) // swallows all
	mustValid(t, &s)
	if s.Count() != 1 || s.Bytes() != 50 {
		t.Fatalf("bridge: %v", &s)
	}
}

func TestRemoveSplits(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 0, End: 99})
	s.Remove(mem.Range{Start: 40, End: 59})
	mustValid(t, &s)
	if s.Count() != 2 || s.Bytes() != 80 {
		t.Fatalf("split: %v bytes=%d", &s, s.Bytes())
	}
	if s.Contains(40) || s.Contains(59) || !s.Contains(39) || !s.Contains(60) {
		t.Fatalf("split boundaries wrong: %v", &s)
	}
}

func TestRemoveExact(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 10, End: 19})
	s.Remove(mem.Range{Start: 10, End: 19})
	mustValid(t, &s)
	if !s.Empty() || s.Bytes() != 0 {
		t.Fatalf("exact remove: %v", &s)
	}
}

func TestRemoveDisjointNoop(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 10, End: 19})
	s.Remove(mem.Range{Start: 50, End: 60})
	mustValid(t, &s)
	if s.Count() != 1 || s.Bytes() != 10 {
		t.Fatalf("noop remove changed set: %v", &s)
	}
}

func TestRemoveSpansMultiple(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 0, End: 9})
	s.Add(mem.Range{Start: 20, End: 29})
	s.Add(mem.Range{Start: 40, End: 49})
	s.Remove(mem.Range{Start: 5, End: 44})
	mustValid(t, &s)
	if s.Count() != 2 || s.Bytes() != 10 {
		t.Fatalf("span remove: %v", &s)
	}
}

func TestOverlapsQueries(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 0x3f8510b4, End: 0x3f8510bb}) // Fig. 6 entry
	if !s.Overlaps(mem.Range{Start: 0x3f8510b0, End: 0x3f8510b4}) {
		t.Error("one-byte overlap at start missed")
	}
	if !s.Overlaps(mem.Range{Start: 0x3f8510bb, End: 0x3f8510ff}) {
		t.Error("one-byte overlap at end missed")
	}
	if s.Overlaps(mem.Range{Start: 0x3f8510bc, End: 0x3f8510ff}) {
		t.Error("false overlap past end")
	}
	if s.Overlaps(mem.Range{Start: 0, End: 0x3f8510b3}) {
		t.Error("false overlap before start")
	}
}

func TestIntersectBytes(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 10, End: 19})
	s.Add(mem.Range{Start: 30, End: 39})
	if n := s.IntersectBytes(mem.Range{Start: 15, End: 34}); n != 10 {
		t.Fatalf("IntersectBytes = %d, want 10", n)
	}
	if n := s.IntersectBytes(mem.Range{Start: 0, End: 5}); n != 0 {
		t.Fatalf("IntersectBytes disjoint = %d", n)
	}
}

func TestClone(t *testing.T) {
	var s RangeSet
	s.Add(mem.Range{Start: 1, End: 5})
	c := s.Clone()
	c.Add(mem.Range{Start: 100, End: 105})
	if s.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: s=%v c=%v", &s, c)
	}
}

// model is a brute-force reference: a map from address to tainted.
type model map[mem.Addr]bool

func (m model) add(r mem.Range) {
	for a := r.Start; ; a++ {
		m[a] = true
		if a == r.End {
			break
		}
	}
}
func (m model) remove(r mem.Range) {
	for a := r.Start; ; a++ {
		delete(m, a)
		if a == r.End {
			break
		}
	}
}
func (m model) overlaps(r mem.Range) bool {
	for a := r.Start; ; a++ {
		if m[a] {
			return true
		}
		if a == r.End {
			break
		}
	}
	return false
}

// TestModelEquivalence drives random add/remove/query sequences over a
// small address universe and checks RangeSet against the brute-force model.
func TestModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var s RangeSet
		ref := model{}
		for step := 0; step < 100; step++ {
			start := mem.Addr(rng.Intn(256))
			length := uint32(rng.Intn(16) + 1)
			r := mem.MakeRange(start, length)
			switch rng.Intn(3) {
			case 0:
				s.Add(r)
				ref.add(r)
			case 1:
				s.Remove(r)
				ref.remove(r)
			case 2:
				if got, want := s.Overlaps(r), ref.overlaps(r); got != want {
					t.Fatalf("trial %d step %d: Overlaps(%v)=%v, model=%v\nset=%v",
						trial, step, r, got, want, &s)
				}
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if uint64(len(ref)) != s.Bytes() {
				t.Fatalf("trial %d step %d: bytes=%d, model=%d",
					trial, step, s.Bytes(), len(ref))
			}
		}
	}
}

// Property: after Add(r), Overlaps(r) holds and every sub-range of r is
// covered; after Remove(r), Overlaps(r) is false.
func TestAddRemoveQuick(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s RangeSet
		for i := 0; i < int(ops%40)+1; i++ {
			r := mem.MakeRange(mem.Addr(rng.Intn(1000)), uint32(rng.Intn(50)+1))
			if rng.Intn(2) == 0 {
				s.Add(r)
				if !s.Overlaps(r) {
					return false
				}
			} else {
				s.Remove(r)
				if s.Overlaps(r) {
					return false
				}
			}
			if s.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
