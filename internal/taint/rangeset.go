// Package taint provides the set-of-address-ranges representation shared by
// the PIFT tracker (internal/core) and the exact DIFT baseline
// (internal/dift).
//
// The paper's tracked state is R = {r1..rn}, a set of tainted inclusive
// address ranges (Algorithm 1). RangeSet keeps R normalized — sorted,
// non-overlapping, with adjacent ranges coalesced — so that "number of
// distinct ranges" (Figures 17 and 19) and "size of tainted addresses"
// (Figures 14, 15, 18) are well-defined metrics.
//
// Mutations are in place: Add and Remove shift the backing slice within
// its capacity instead of building a new one, so the steady-state event
// loop — where the set's range count oscillates around a stable working
// size — performs no allocations. Both return the byte and range-count
// deltas they applied, which lets callers (core.IdealStore) maintain
// cross-set aggregates incrementally instead of rescanning every set.
package taint

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// RangeSet is a normalized set of inclusive address ranges. The zero value
// is an empty set ready to use. RangeSet is not safe for concurrent use:
// even read-only queries update the internal last-hit search cache.
type RangeSet struct {
	// ranges is sorted by Start; entries neither overlap nor touch.
	ranges []mem.Range
	bytes  uint64
	// hint caches the most recent searchStart result. The paper's
	// locality argument (§5.1: short load→store distances) means
	// consecutive lookups overwhelmingly land in the same range, so the
	// cached index usually verifies in two comparisons and the binary
	// search is skipped entirely.
	hint int
}

// Count returns the number of distinct (maximal) tainted ranges.
func (s *RangeSet) Count() int { return len(s.ranges) }

// Bytes returns the total number of tainted bytes.
func (s *RangeSet) Bytes() uint64 { return s.bytes }

// Empty reports whether no byte is tainted.
func (s *RangeSet) Empty() bool { return len(s.ranges) == 0 }

// Clear removes all ranges.
func (s *RangeSet) Clear() {
	s.ranges = s.ranges[:0]
	s.bytes = 0
	s.hint = 0
}

// Ranges returns a copy of the normalized ranges in ascending order.
func (s *RangeSet) Ranges() []mem.Range {
	out := make([]mem.Range, len(s.ranges))
	copy(out, s.ranges)
	return out
}

// AppendRanges appends the normalized ranges in ascending order to dst and
// returns the extended slice. Callers that serialize or inspect many sets
// reuse one scratch buffer across calls instead of forcing a fresh copy
// per set the way Ranges does.
func (s *RangeSet) AppendRanges(dst []mem.Range) []mem.Range {
	return append(dst, s.ranges...)
}

// searchStart returns the index of the first range with Start >= addr.
func (s *RangeSet) searchStart(addr mem.Addr) int {
	n := len(s.ranges)
	// Last-hit fast path: the cached index is the answer iff it still
	// satisfies the binary-search postcondition.
	if h := s.hint; h <= n &&
		(h == n || s.ranges[h].Start >= addr) &&
		(h == 0 || s.ranges[h-1].Start < addr) {
		return h
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ranges[mid].Start >= addr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.hint = lo
	return lo
}

// Overlaps reports whether any byte of r is tainted — the paper's lookup:
// ∃ ri ∈ R with max(si, sL) <= min(ei, eL).
func (s *RangeSet) Overlaps(r mem.Range) bool {
	i := s.searchStart(r.Start)
	// A range beginning before r.Start may still cover it.
	if i > 0 && s.ranges[i-1].End >= r.Start {
		return true
	}
	return i < len(s.ranges) && s.ranges[i].Start <= r.End
}

// Contains reports whether addr is tainted.
func (s *RangeSet) Contains(addr mem.Addr) bool {
	return s.Overlaps(mem.Range{Start: addr, End: addr})
}

// Add taints r, merging it with any overlapping or adjacent ranges. It
// returns the number of bytes that became tainted and the signed change in
// the distinct-range count (a merge of k existing ranges yields 1-k; a
// pure insert yields +1).
func (s *RangeSet) Add(r mem.Range) (bytesAdded uint64, rangesDelta int) {
	// Find the window of existing ranges that r overlaps or touches.
	lo := s.searchStart(r.Start)
	if lo > 0 && s.ranges[lo-1].End != ^mem.Addr(0) && s.ranges[lo-1].End+1 >= r.Start {
		lo--
	}
	hi := lo
	merged := r
	var swallowed uint64
	for hi < len(s.ranges) {
		cand := s.ranges[hi]
		touches := cand.Start <= merged.End ||
			(merged.End != ^mem.Addr(0) && cand.Start == merged.End+1)
		if !touches {
			break
		}
		merged = merged.Union(cand)
		swallowed += cand.Size()
		hi++
	}
	// merged covers every swallowed range, so the difference is the
	// newly tainted volume.
	bytesAdded = merged.Size() - swallowed
	s.bytes += bytesAdded
	// Replace ranges[lo:hi] with merged, shifting in place.
	if hi == lo {
		// Pure insert: open one slot at lo. The append reallocates only
		// when the working set outgrows its high-water capacity.
		s.ranges = append(s.ranges, mem.Range{})
		copy(s.ranges[lo+1:], s.ranges[lo:])
	} else if hi > lo+1 {
		n := copy(s.ranges[lo+1:], s.ranges[hi:])
		s.ranges = s.ranges[:lo+1+n]
	}
	s.ranges[lo] = merged
	s.hint = lo
	return bytesAdded, 1 - (hi - lo)
}

// Remove untaints r, splitting any range it partially covers. It returns
// the number of bytes actually untainted (0 when nothing overlapped) and
// the signed change in the distinct-range count (+1 on a mid-range split,
// -k when k ranges vanish entirely).
func (s *RangeSet) Remove(r mem.Range) (bytesRemoved uint64, rangesDelta int) {
	lo := s.searchStart(r.Start)
	if lo > 0 && s.ranges[lo-1].End >= r.Start {
		lo--
	}
	// At most two fragments survive the cut: a left remainder from the
	// first overlapped range and a right remainder from the last, so a
	// fixed scratch array replaces the old per-call replacement slice.
	var repl [2]mem.Range
	nrepl := 0
	hi := lo
	for hi < len(s.ranges) && s.ranges[hi].Start <= r.End {
		cand := s.ranges[hi]
		bytesRemoved += cand.Size()
		if cand.Start < r.Start {
			left := mem.Range{Start: cand.Start, End: r.Start - 1}
			repl[nrepl] = left
			nrepl++
			bytesRemoved -= left.Size()
		}
		if cand.End > r.End {
			right := mem.Range{Start: r.End + 1, End: cand.End}
			repl[nrepl] = right
			nrepl++
			bytesRemoved -= right.Size()
		}
		hi++
	}
	if hi == lo {
		return 0, 0 // nothing overlapped
	}
	s.bytes -= bytesRemoved
	// Splice repl[:nrepl] over ranges[lo:hi] in place.
	switch d := nrepl - (hi - lo); {
	case d < 0:
		copy(s.ranges[lo:], repl[:nrepl])
		n := copy(s.ranges[lo+nrepl:], s.ranges[hi:])
		s.ranges = s.ranges[:lo+nrepl+n]
	case d == 0:
		copy(s.ranges[lo:], repl[:nrepl])
	default: // d == +1: a mid-range split needs one extra slot
		s.ranges = append(s.ranges, mem.Range{})
		copy(s.ranges[hi+1:], s.ranges[hi:])
		copy(s.ranges[lo:], repl[:nrepl])
	}
	s.hint = lo
	return bytesRemoved, nrepl - (hi - lo)
}

// IntersectBytes returns how many bytes of r are tainted; useful for
// diagnostics and partial-taint reporting at sinks.
func (s *RangeSet) IntersectBytes(r mem.Range) uint64 {
	var n uint64
	i := s.searchStart(r.Start)
	if i > 0 {
		i--
	}
	for ; i < len(s.ranges) && s.ranges[i].Start <= r.End; i++ {
		if ov, ok := s.ranges[i].Intersect(r); ok {
			n += ov.Size()
		}
	}
	return n
}

// Clone returns a deep copy; the DIFT baseline snapshots register file
// taint against it in tests.
func (s *RangeSet) Clone() *RangeSet {
	c := &RangeSet{bytes: s.bytes}
	c.ranges = append(c.ranges, s.ranges...)
	return c
}

func (s *RangeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.ranges {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}

// checkInvariants panics if the normalization invariant is violated; tests
// call it through Validate.
func (s *RangeSet) checkInvariants() error {
	var bytes uint64
	for i, r := range s.ranges {
		if r.Start > r.End {
			return fmt.Errorf("range %d inverted: %v", i, r)
		}
		bytes += r.Size()
		if i == 0 {
			continue
		}
		prev := s.ranges[i-1]
		if prev.End >= r.Start {
			return fmt.Errorf("ranges %d,%d overlap: %v %v", i-1, i, prev, r)
		}
		if prev.End+1 == r.Start {
			return fmt.Errorf("ranges %d,%d not coalesced: %v %v", i-1, i, prev, r)
		}
	}
	if bytes != s.bytes {
		return fmt.Errorf("byte count %d != computed %d", s.bytes, bytes)
	}
	return nil
}

// Validate checks the internal invariants (sorted, disjoint, coalesced,
// byte count consistent) and returns a descriptive error on violation.
func (s *RangeSet) Validate() error { return s.checkInvariants() }
