// Package taint provides the set-of-address-ranges representation shared by
// the PIFT tracker (internal/core) and the exact DIFT baseline
// (internal/dift).
//
// The paper's tracked state is R = {r1..rn}, a set of tainted inclusive
// address ranges (Algorithm 1). RangeSet keeps R normalized — sorted,
// non-overlapping, with adjacent ranges coalesced — so that "number of
// distinct ranges" (Figures 17 and 19) and "size of tainted addresses"
// (Figures 14, 15, 18) are well-defined metrics.
package taint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
)

// RangeSet is a normalized set of inclusive address ranges. The zero value
// is an empty set ready to use.
type RangeSet struct {
	// ranges is sorted by Start; entries neither overlap nor touch.
	ranges []mem.Range
	bytes  uint64
}

// Count returns the number of distinct (maximal) tainted ranges.
func (s *RangeSet) Count() int { return len(s.ranges) }

// Bytes returns the total number of tainted bytes.
func (s *RangeSet) Bytes() uint64 { return s.bytes }

// Empty reports whether no byte is tainted.
func (s *RangeSet) Empty() bool { return len(s.ranges) == 0 }

// Clear removes all ranges.
func (s *RangeSet) Clear() {
	s.ranges = s.ranges[:0]
	s.bytes = 0
}

// Ranges returns a copy of the normalized ranges in ascending order.
func (s *RangeSet) Ranges() []mem.Range {
	out := make([]mem.Range, len(s.ranges))
	copy(out, s.ranges)
	return out
}

// searchStart returns the index of the first range with Start >= addr.
func (s *RangeSet) searchStart(addr mem.Addr) int {
	return sort.Search(len(s.ranges), func(i int) bool {
		return s.ranges[i].Start >= addr
	})
}

// Overlaps reports whether any byte of r is tainted — the paper's lookup:
// ∃ ri ∈ R with max(si, sL) <= min(ei, eL).
func (s *RangeSet) Overlaps(r mem.Range) bool {
	i := s.searchStart(r.Start)
	// A range beginning before r.Start may still cover it.
	if i > 0 && s.ranges[i-1].End >= r.Start {
		return true
	}
	return i < len(s.ranges) && s.ranges[i].Start <= r.End
}

// Contains reports whether addr is tainted.
func (s *RangeSet) Contains(addr mem.Addr) bool {
	return s.Overlaps(mem.Range{Start: addr, End: addr})
}

// Add taints r, merging it with any overlapping or adjacent ranges.
func (s *RangeSet) Add(r mem.Range) {
	// Find the window of existing ranges that r overlaps or touches.
	lo := s.searchStart(r.Start)
	if lo > 0 && s.ranges[lo-1].End != ^mem.Addr(0) && s.ranges[lo-1].End+1 >= r.Start {
		lo--
	}
	hi := lo
	merged := r
	for hi < len(s.ranges) {
		cand := s.ranges[hi]
		touches := cand.Start <= merged.End ||
			(merged.End != ^mem.Addr(0) && cand.Start == merged.End+1)
		if !touches {
			break
		}
		merged = merged.Union(cand)
		s.bytes -= cand.Size()
		hi++
	}
	s.bytes += merged.Size()
	// Replace ranges[lo:hi] with merged.
	s.ranges = append(s.ranges[:lo], append([]mem.Range{merged}, s.ranges[hi:]...)...)
}

// Remove untaints r, splitting any range it partially covers.
func (s *RangeSet) Remove(r mem.Range) {
	lo := s.searchStart(r.Start)
	if lo > 0 && s.ranges[lo-1].End >= r.Start {
		lo--
	}
	var replacement []mem.Range
	hi := lo
	for hi < len(s.ranges) && s.ranges[hi].Start <= r.End {
		cand := s.ranges[hi]
		s.bytes -= cand.Size()
		if cand.Start < r.Start {
			left := mem.Range{Start: cand.Start, End: r.Start - 1}
			replacement = append(replacement, left)
			s.bytes += left.Size()
		}
		if cand.End > r.End {
			right := mem.Range{Start: r.End + 1, End: cand.End}
			replacement = append(replacement, right)
			s.bytes += right.Size()
		}
		hi++
	}
	if hi == lo {
		return // nothing overlapped
	}
	s.ranges = append(s.ranges[:lo], append(replacement, s.ranges[hi:]...)...)
}

// IntersectBytes returns how many bytes of r are tainted; useful for
// diagnostics and partial-taint reporting at sinks.
func (s *RangeSet) IntersectBytes(r mem.Range) uint64 {
	var n uint64
	i := s.searchStart(r.Start)
	if i > 0 {
		i--
	}
	for ; i < len(s.ranges) && s.ranges[i].Start <= r.End; i++ {
		if ov, ok := s.ranges[i].Intersect(r); ok {
			n += ov.Size()
		}
	}
	return n
}

// Clone returns a deep copy; the DIFT baseline snapshots register file
// taint against it in tests.
func (s *RangeSet) Clone() *RangeSet {
	c := &RangeSet{bytes: s.bytes}
	c.ranges = append(c.ranges, s.ranges...)
	return c
}

func (s *RangeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.ranges {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}

// checkInvariants panics if the normalization invariant is violated; tests
// call it through Validate.
func (s *RangeSet) checkInvariants() error {
	var bytes uint64
	for i, r := range s.ranges {
		if r.Start > r.End {
			return fmt.Errorf("range %d inverted: %v", i, r)
		}
		bytes += r.Size()
		if i == 0 {
			continue
		}
		prev := s.ranges[i-1]
		if prev.End >= r.Start {
			return fmt.Errorf("ranges %d,%d overlap: %v %v", i-1, i, prev, r)
		}
		if prev.End+1 == r.Start {
			return fmt.Errorf("ranges %d,%d not coalesced: %v %v", i-1, i, prev, r)
		}
	}
	if bytes != s.bytes {
		return fmt.Errorf("byte count %d != computed %d", s.bytes, bytes)
	}
	return nil
}

// Validate checks the internal invariants (sorted, disjoint, coalesced,
// byte count consistent) and returns a descriptive error on violation.
func (s *RangeSet) Validate() error { return s.checkInvariants() }
