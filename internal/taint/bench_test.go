package taint

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// Micro-benchmarks for the hot-path RangeSet operations, split by the
// branch they exercise: overlap hit vs miss, coalescing adds, splitting
// removes. Each has a companion AllocsPerRun gate in
// TestRangeSetHotPathAllocationFree — the in-place mutation rewrite's
// acceptance criterion is 0 allocs/op at steady state.

// denseSet builds a set of n disjoint 8-byte ranges with 8-byte gaps.
func denseSet(n int) *RangeSet {
	var s RangeSet
	for i := 0; i < n; i++ {
		s.Add(mem.Range{Start: mem.Addr(i * 16), End: mem.Addr(i*16 + 7)})
	}
	return &s
}

func BenchmarkRangeSetAdd(b *testing.B) {
	b.Run("hit", func(b *testing.B) { // re-taint an already covered range
		s := denseSet(512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Add(mem.Range{Start: 1024, End: 1027})
		}
	})
	b.Run("adjacent-merge", func(b *testing.B) { // grow-and-restore: merge into neighbor, then split back off
		s := denseSet(512)
		s.Add(mem.Range{Start: 8, End: 15}) // warm the capacity high-water
		s.Remove(mem.Range{Start: 8, End: 15})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Add(mem.Range{Start: 8, End: 15})
			s.Remove(mem.Range{Start: 8, End: 15})
		}
	})
	b.Run("swallow", func(b *testing.B) { // one add swallows many ranges, then they are re-split
		s := denseSet(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Add(mem.Range{Start: 0, End: 1023})
			for j := 0; j < 64; j++ {
				s.Remove(mem.Range{Start: mem.Addr(j*16 + 8), End: mem.Addr(j*16 + 15)})
			}
		}
	})
	b.Run("random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(7))
		ops := make([]mem.Range, 4096)
		for i := range ops {
			ops[i] = mem.MakeRange(mem.Addr(rng.Intn(1<<20)), uint32(rng.Intn(64)+1))
		}
		var s RangeSet
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Add(ops[i%len(ops)])
		}
	})
}

func BenchmarkRangeSetRemove(b *testing.B) {
	b.Run("miss", func(b *testing.B) { // untaint clean memory: the common untaint-rule outcome
		s := denseSet(512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Remove(mem.Range{Start: 1032, End: 1039}) // a gap
		}
	})
	b.Run("split", func(b *testing.B) { // mid-range split, then heal
		s := denseSet(512)
		s.Remove(mem.Range{Start: 1026, End: 1029}) // warm the capacity high-water
		s.Add(mem.Range{Start: 1026, End: 1029})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Remove(mem.Range{Start: 1026, End: 1029})
			s.Add(mem.Range{Start: 1026, End: 1029})
		}
	})
	b.Run("exact", func(b *testing.B) { // drop a whole range, then restore it
		s := denseSet(512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Remove(mem.Range{Start: 1024, End: 1031})
			s.Add(mem.Range{Start: 1024, End: 1031})
		}
	})
}

func BenchmarkRangeSetOverlaps(b *testing.B) {
	s := denseSet(512)
	b.Run("hit-local", func(b *testing.B) { // repeated same-range lookups: the last-hit cache's case
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Overlaps(mem.Range{Start: 1024, End: 1027})
		}
	})
	b.Run("hit-scattered", func(b *testing.B) { // cache-defeating lookups: full binary search
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Overlaps(mem.Range{Start: mem.Addr((i * 2654435761) % (512 * 16)), End: mem.Addr((i*2654435761)%(512*16) + 1)})
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Overlaps(mem.Range{Start: 1032, End: 1039})
		}
	})
}

// TestRangeSetHotPathAllocationFree is the acceptance gate for the
// in-place mutation rewrite: at steady state — the working set's range
// count oscillating around a stable size, backing array at its high-water
// capacity — queries and every Add/Remove shape must not allocate.
func TestRangeSetHotPathAllocationFree(t *testing.T) {
	s := denseSet(512)
	// Warm every capacity high-water the ops below will need.
	s.Add(mem.Range{Start: 8, End: 15})
	s.Remove(mem.Range{Start: 8, End: 15})
	s.Remove(mem.Range{Start: 1026, End: 1029})
	s.Add(mem.Range{Start: 1026, End: 1029})

	cases := []struct {
		name string
		op   func()
	}{
		{"Overlaps/hit", func() { s.Overlaps(mem.Range{Start: 1024, End: 1027}) }},
		{"Overlaps/miss", func() { s.Overlaps(mem.Range{Start: 1032, End: 1039}) }},
		{"Add/covered", func() { s.Add(mem.Range{Start: 1024, End: 1027}) }},
		{"Add+Remove/adjacent-merge", func() {
			s.Add(mem.Range{Start: 8, End: 15})
			s.Remove(mem.Range{Start: 8, End: 15})
		}},
		{"Remove+Add/split", func() {
			s.Remove(mem.Range{Start: 1026, End: 1029})
			s.Add(mem.Range{Start: 1026, End: 1029})
		}},
		{"Remove+Add/exact", func() {
			s.Remove(mem.Range{Start: 1024, End: 1031})
			s.Add(mem.Range{Start: 1024, End: 1031})
		}},
		{"Remove/miss", func() { s.Remove(mem.Range{Start: 1032, End: 1039}) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(1000, c.op); n != 0 {
			t.Errorf("%s allocates %v times per op", c.name, n)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeSetSwallowInPlace pins the shift-within-capacity behavior: once
// the backing array has reached its high-water size, a multi-range swallow
// followed by re-splits must run allocation-free even though the range
// count swings by dozens per cycle.
func TestRangeSetSwallowInPlace(t *testing.T) {
	s := denseSet(64)
	cycle := func() {
		s.Add(mem.Range{Start: 0, End: 1023})
		for j := 0; j < 64; j++ {
			s.Remove(mem.Range{Start: mem.Addr(j*16 + 8), End: mem.Addr(j*16 + 15)})
		}
	}
	cycle() // warm: the re-split phase grows capacity to its high-water
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Errorf("swallow/re-split cycle allocates %v times per op", n)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 64 {
		t.Fatalf("count %d after cycles, want 64", s.Count())
	}
}
