package server_test

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// parallelCfg opts a test service into the sharded ingest path for every
// request: four shards, budget to cover them, threshold low enough that
// DroidBench-sized streams qualify.
func parallelCfg(c *server.Config) {
	c.IngestWorkers = 4
	c.WorkerBudget = 8
	c.ParallelThreshold = 1
}

func counterOf(s *testService, name string) uint64 {
	return s.reg.Snapshot().Counters[name]
}

// TestParallelIngestParity: a whole-stream upload on a parallel service
// commits through the sharded pipeline and stays byte-identical to the
// one-shot replay — verdicts, ack offset, and stats counters.
func TestParallelIngestParity(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, parallelCfg)
	events, err := h.TenantEvents(6)
	if err != nil {
		t.Fatal(err)
	}
	ir, code := s.post(t, "par-alpha", events, 0, len(events))
	if code != http.StatusOK || ir.Acked != uint64(len(events)) || ir.Ingested != uint64(len(events)) {
		t.Fatalf("status %d %+v, want acked %d", code, ir, len(events))
	}
	if counterOf(s, "pift_server_parallel_ingests_total") == 0 {
		t.Fatal("request never took the parallel path")
	}
	requireParity(t, s.verdicts(t, "par-alpha"), eval.OneShotVerdicts(events, testCfg), "parallel-whole")

	seq := core.NewTracker(testCfg, nil)
	for _, ev := range events {
		seq.Event(ev)
	}
	st := s.stats(t, "par-alpha")
	if st.Stats != seq.Stats() {
		t.Fatalf("stats diverge:\nserver %+v\nseq    %+v", st.Stats, seq.Stats())
	}
	if g := s.reg.Snapshot().Gauges["pift_server_ingest_workers_loaned"]; g != 0 {
		t.Fatalf("worker loans leaked: %d", g)
	}
}

// TestParallelMultiPIDParity feeds an interleaved multi-process stream:
// the parallel session's verdicts must equal the sequential replay in
// canonical (PID, Seq, Tag) order and its counters must match exactly.
func TestParallelMultiPIDParity(t *testing.T) {
	events := tracegen.Generate(tracegen.Spec{Seed: 21, Events: 30000, PIDs: 16}).Events
	s := newTestService(t, parallelCfg)
	ir, code := s.post(t, "par-multi", events, 0, len(events))
	if code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("status %d %+v", code, ir)
	}
	if counterOf(s, "pift_server_parallel_ingests_total") == 0 {
		t.Fatal("request never took the parallel path")
	}
	want := eval.OneShotVerdicts(events, testCfg)
	core.SortVerdicts(want)
	requireParity(t, s.verdicts(t, "par-multi"), want, "parallel-multi-pid")

	seq := core.NewTracker(testCfg, nil)
	for _, ev := range events {
		seq.Event(ev)
	}
	st := s.stats(t, "par-multi")
	a, b := st.Stats, seq.Stats()
	a.MaxBytes, a.MaxRanges = 0, 0
	b.MaxBytes, b.MaxRanges = 0, 0
	if a != b {
		t.Fatalf("counters diverge:\nserver %+v\nseq    %+v", a, b)
	}
}

// TestParallelChunkedResume: the resumable-offset protocol is unchanged
// under parallel ingest — chunk acks land on chunk ends, duplicates are
// no-ops, and the stitched stream matches the one-shot replay.
func TestParallelChunkedResume(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, parallelCfg)
	events, err := h.TenantEvents(7)
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 5
	per := (len(events) + chunks - 1) / chunks
	for start := 0; start < len(events); start += per {
		end := start + per
		if end > len(events) {
			end = len(events)
		}
		ir, code := s.post(t, "par-chunk", events, start, end)
		if code != http.StatusOK || ir.Acked != uint64(end) {
			t.Fatalf("chunk [%d,%d): status %d %+v", start, end, code, ir)
		}
	}
	if ir, code := s.post(t, "par-chunk", events, 0, per); code != http.StatusOK || ir.Ingested != 0 {
		t.Fatalf("duplicate chunk: status %d %+v", code, ir)
	}
	requireParity(t, s.verdicts(t, "par-chunk"), eval.OneShotVerdicts(events, testCfg), "parallel-chunked")
}

// TestParallelTornBody mirrors TestDisconnectResume on the parallel
// path: a body cut mid-record gets the same 400 "truncated", the same
// per-event ack (the spooled prefix replays sequentially), and resuming
// from the ack converges to the one-shot verdicts.
func TestParallelTornBody(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, parallelCfg)
	events, err := h.TenantEvents(8)
	if err != nil {
		t.Fatal(err)
	}
	full := eval.EncodeTrace(events)
	k := len(events) / 2
	cut := trace.HeaderSize + k*trace.EventSize + trace.EventSize/2
	ir, code := s.postRaw(t, "par-torn", full[:cut], 0)
	if code != http.StatusBadRequest || ir.Error != "truncated" {
		t.Fatalf("torn upload: status %d %+v", code, ir)
	}
	if ir.Acked != uint64(k) {
		t.Fatalf("torn upload: acked %d, want %d", ir.Acked, k)
	}
	ir2, code := s.post(t, "par-torn", events, int(ir.Acked), len(events))
	if code != http.StatusOK || ir2.Acked != uint64(len(events)) {
		t.Fatalf("resume: status %d %+v", code, ir2)
	}
	requireParity(t, s.verdicts(t, "par-torn"), eval.OneShotVerdicts(events, testCfg), "parallel-torn")
}

// TestParallelSpillByteIdentity: after identical single-PID uploads, a
// sequential service and a parallel one must write byte-identical
// PIFTSES1 spill files — the canonical snapshot codec erases any trace
// of how the tracker state was computed.
func TestParallelSpillByteIdentity(t *testing.T) {
	h := sharedHarness(t)
	events, err := h.TenantEvents(9)
	if err != nil {
		t.Fatal(err)
	}
	spillOf := func(s *testService) []byte {
		t.Helper()
		matches, err := filepath.Glob(filepath.Join(s.dir, "*.sess"))
		if err != nil || len(matches) != 1 {
			t.Fatalf("spill files %v err %v, want exactly one", matches, err)
		}
		b, err := os.ReadFile(matches[0])
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := newTestService(t, func(c *server.Config) { c.MemoryBudget = 1 })
	par := newTestService(t, func(c *server.Config) { parallelCfg(c); c.MemoryBudget = 1 })
	for _, s := range []*testService{seq, par} {
		if ir, code := s.post(t, "spill-id", events, 0, len(events)); code != http.StatusOK {
			t.Fatalf("ingest: status %d %+v", code, ir)
		}
	}
	if counterOf(par, "pift_server_parallel_ingests_total") == 0 {
		t.Fatal("parallel service never took the parallel path")
	}
	if !bytes.Equal(spillOf(seq), spillOf(par)) {
		t.Fatal("spill files diverge between sequential and parallel ingest")
	}
}

// TestStreamingCommitPath drives the push-path drain (spooling disabled)
// with externally-owned commits: whole-stream success, then a torn body
// whose ack lands on the last CommitEvery-aligned boundary, and a resume
// from that boundary that converges to the one-shot verdicts.
func TestStreamingCommitPath(t *testing.T) {
	const every = 64
	h := sharedHarness(t)
	s := newTestService(t, func(c *server.Config) {
		parallelCfg(c)
		c.MaxSpoolBytes = -1
		c.CommitEvery = every
	})
	events, err := h.TenantEvents(0)
	if err != nil {
		t.Fatal(err)
	}
	ir, code := s.post(t, "stream-ok", events, 0, len(events))
	if code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("whole stream: status %d %+v", code, ir)
	}
	if counterOf(s, "pift_server_parallel_ingests_total") == 0 {
		t.Fatal("request never took the streaming parallel path")
	}
	requireParity(t, s.verdicts(t, "stream-ok"), eval.OneShotVerdicts(events, testCfg), "streaming-whole")

	full := eval.EncodeTrace(events)
	k := len(events)/2 + 7 // deliberately off the commit grid
	cut := trace.HeaderSize + k*trace.EventSize + trace.EventSize/2
	ir, code = s.postRaw(t, "stream-torn", full[:cut], 0)
	if code != http.StatusBadRequest || ir.Error != "truncated" {
		t.Fatalf("torn upload: status %d %+v", code, ir)
	}
	boundary := uint64(k - k%every)
	if ir.Acked != boundary {
		t.Fatalf("torn upload: acked %d, want boundary %d (k=%d)", ir.Acked, boundary, k)
	}
	ir2, code := s.post(t, "stream-torn", events, int(ir.Acked), len(events))
	if code != http.StatusOK || ir2.Acked != uint64(len(events)) {
		t.Fatalf("resume: status %d %+v", code, ir2)
	}
	requireParity(t, s.verdicts(t, "stream-torn"), eval.OneShotVerdicts(events, testCfg), "streaming-torn")
}

// TestWorkerBudgetExhausted: with a budget that cannot cover two shards,
// every request degrades to the sequential path — correct results, zero
// parallel commits.
func TestWorkerBudgetExhausted(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, func(c *server.Config) {
		parallelCfg(c)
		c.WorkerBudget = 1
	})
	events, err := h.TenantEvents(1)
	if err != nil {
		t.Fatal(err)
	}
	ir, code := s.post(t, "starved", events, 0, len(events))
	if code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("status %d %+v", code, ir)
	}
	if n := counterOf(s, "pift_server_parallel_ingests_total"); n != 0 {
		t.Fatalf("starved budget still ran %d parallel ingests", n)
	}
	requireParity(t, s.verdicts(t, "starved"), eval.OneShotVerdicts(events, testCfg), "starved")
}
