package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Parallel per-session ingest. A session's tracker splits by PID onto N
// pipeline shards (core.Tracker.SplitByPID with the pipeline's own shard
// function), the request body drains through the sharded pipeline, and
// the shards merge back into one tracker (core.MergeTrackers). Sharding
// by PID preserves semantics — all tracker state is per-process — so a
// parallel session's verdicts and ack offsets are identical to the
// sequential session's: byte-identical on single-PID tenant streams,
// canonical-order-identical on multi-PID streams (the session stores
// verdicts in the canonical (PID, Seq, Tag) order either way).
//
// Two drain shapes, chosen per request:
//
//	spooled    the body (header included) is copied to memory or a temp
//	           file first, then the shard-owned seekable drain
//	           (Pipeline.DrainTrace) consumes it — decode itself fans
//	           out. All-or-nothing: any failure abandons the shard copies
//	           (the session tracker is untouched) and the spooled prefix
//	           replays through the legacy sequential loop, reproducing
//	           its exact partial-commit ack and error classification.
//	streaming  bodies too big to spool push through Pipeline.Drain with
//	           externally-owned commits: at every CommitEvery-aligned
//	           absolute offset the shards quiesce and merge into a commit
//	           tracker, and a mid-stream failure rolls the session back
//	           to the last such boundary — the ack is coarser than the
//	           sequential path's but the resume contract is the same.
//
// Failure of any parallel machinery (split, seed, drain, merge) is never
// an error the client sees that the sequential path wouldn't have
// produced: the request falls back to sequential semantics instead.

// workerBudget is the global loan pool for parallel-ingest shards: a
// counting semaphore holding Config.WorkerBudget tokens. Hot sessions
// borrow their shard count for the duration of one request; when the
// pool runs dry, later requests simply run sequentially — admission
// control degrades throughput, never correctness.
type workerBudget struct {
	tokens chan struct{}
}

func newWorkerBudget(n int) *workerBudget {
	b := &workerBudget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// tryAcquire takes up to want tokens without blocking and returns how
// many it got.
func (b *workerBudget) tryAcquire(want int) int {
	for got := 0; ; got++ {
		if got == want {
			return got
		}
		select {
		case <-b.tokens:
		default:
			return got
		}
	}
}

func (b *workerBudget) release(n int) {
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}

// grantWorkers decides a request's shard count: 1 (sequential) when
// parallel ingest is disabled, the request is below the threshold, or
// the budget cannot cover at least two shards; otherwise the configured
// worker count, borrowed from the global budget. A grant > 1 must be
// released by the caller.
func (s *Server) grantWorkers(remaining uint64) int {
	if s.cfg.IngestWorkers <= 1 || remaining < s.cfg.ParallelThreshold {
		return 1
	}
	got := s.budget.tryAcquire(s.cfg.IngestWorkers)
	if got < 2 {
		s.budget.release(got)
		return 1
	}
	return got
}

// spool is a request body captured for seekable decode: the 16-byte wire
// header plus however much of the declared payload arrived, in memory or
// in an unlinked temp file.
type spool struct {
	mem      []byte
	f        *os.File
	size     int64 // bytes captured, header included
	complete bool
	err      error // terminal body error when !complete (never io.EOF)
}

func (sp *spool) readerAt() io.ReaderAt {
	if sp.f != nil {
		return sp.f
	}
	return bytes.NewReader(sp.mem[:sp.size])
}

func (sp *spool) close() {
	if sp.f != nil {
		name := sp.f.Name()
		sp.f.Close()
		os.Remove(name)
	}
}

// spoolBody captures expect bytes of the request (the pre-read header
// plus the body) for seekable decode. A body that ends or errors early
// yields an incomplete spool carrying the terminal error; nil means the
// spool could not even be set up (temp-file creation failed) and no body
// byte has been consumed, so the caller can still stream.
func (s *Server) spoolBody(hdr []byte, body io.Reader, expect int64) *spool {
	sp := &spool{}
	if expect <= s.cfg.SpoolMemBytes {
		sp.mem = make([]byte, expect)
		copy(sp.mem, hdr)
		n, err := io.ReadFull(body, sp.mem[len(hdr):])
		sp.size = int64(len(hdr) + n)
		sp.complete = err == nil
		sp.err = normalizeCut(err)
		return sp
	}
	f, err := os.CreateTemp(s.cfg.SpillDir, "ingest-*.spool")
	if err != nil {
		return nil
	}
	sp.f = f
	if _, werr := f.Write(hdr); werr != nil {
		// A disk that refuses the header refuses everything: stream instead.
		sp.close()
		return nil
	}
	n, err := io.CopyN(f, body, expect-int64(len(hdr)))
	sp.size = int64(len(hdr)) + n
	sp.complete = err == nil
	// A write-side failure (disk full mid-spool) lands here too: body
	// bytes past the failure are gone, so it is handled like a cut body —
	// replay the durable prefix, ack it, and let the client resume.
	sp.err = normalizeCut(err)
	return sp
}

// normalizeCut maps a clean EOF onto io.ErrUnexpectedEOF: the header
// declared more bytes, so running dry early is a truncation, matching
// what the in-line trace reader reports at the same position.
func normalizeCut(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ingestParallel drains one request through grant pipeline shards.
// Caller holds sess.mu and the worker grant; hdr is the complete
// pre-read 16-byte wire header; expect is the total request size in
// bytes, header included — exact record arithmetic for PIFTTRC1, the
// transport's Content-Length for PIFTTRC2, non-positive when the
// transport didn't say (chunked v2). finishIngest is the caller's.
func (s *Server) ingestParallel(sess *session, body io.Reader, hdr []byte, expect int64, declared, skip uint64, grant int, resp IngestResponse) (IngestResponse, *IngestError) {
	if expect < int64(len(hdr)) || s.cfg.MaxSpoolBytes < 0 || expect > s.cfg.MaxSpoolBytes {
		return s.ingestStreaming(sess, body, hdr, declared, skip, grant, resp)
	}
	sp := s.spoolBody(hdr, body, expect)
	if sp == nil {
		return s.ingestStreaming(sess, body, hdr, declared, skip, grant, resp)
	}
	defer sp.close()
	s.m.spoolBytes.Add(uint64(sp.size))
	if sp.complete && s.drainTraceParallel(sess, sp.readerAt(), declared, skip, grant, &resp) {
		return resp, nil
	}

	// Torn body, or the parallel drain declined (it left the session
	// tracker untouched): replay the spooled prefix through the legacy
	// sequential loop. The replay reader ends with the body's own
	// terminal error, so partial-commit acks and error classes are
	// byte-identical to a sequential server reading the same connection.
	var src io.Reader = io.NewSectionReader(sp.readerAt(), 0, sp.size)
	if !sp.complete {
		src = &tornTail{r: src, err: sp.err}
	}
	tr, err := trace.NewReader(src)
	if err != nil {
		return resp, classifyIngest(err)
	}
	if skip > 0 {
		if err := tr.Skip(skip); err != nil {
			return resp, classifyIngest(err)
		}
	}
	return resp, drainSequential(sess, tr, &resp)
}

// drainTraceParallel runs the all-or-nothing spooled drain: split the
// session tracker, seed a pipeline at the body-local resume offset, let
// the shard-owned readers consume the spool, merge. Reports whether the
// session was updated; false leaves sess.tr exactly as it was.
func (s *Server) drainTraceParallel(sess *session, ra io.ReaderAt, declared, skip uint64, grant int, resp *IngestResponse) bool {
	parts, err := sess.tr.SplitByPID(grant, func(pid uint32) int { return pipeline.ShardOf(pid, grant) })
	if err != nil {
		s.m.parallelFallbacks.Inc()
		return false
	}
	p, err := pipeline.NewSeeded(pipeline.Options{Metrics: s.cfg.Registry}, parts, skip)
	if err != nil {
		s.m.parallelFallbacks.Inc()
		return false
	}
	// The body is fully spooled, so no request context can cancel work
	// that is already paid for.
	res, err := p.DrainTrace(context.Background(), ra)
	if err != nil || res.Err != nil {
		s.m.parallelFallbacks.Inc()
		return false
	}
	merged, err := core.MergeTrackers(p.ShardTrackers())
	if err != nil {
		s.m.parallelFallbacks.Inc()
		return false
	}
	sess.tr = merged
	n := declared - skip
	sess.acked.Add(n)
	resp.Ingested += n
	s.m.parallelIngests.Inc()
	return true
}

// ingestStreaming drains a too-big-to-spool body through the pipeline's
// push path with externally-owned commits: every CommitEvery-aligned
// absolute offset quiesces the shards and merges them into a rollback
// tracker, so a mid-stream failure commits the session at the last
// boundary and the client resumes from a boundary ack.
func (s *Server) ingestStreaming(sess *session, body io.Reader, hdr []byte, declared, skip uint64, grant int, resp IngestResponse) (IngestResponse, *IngestError) {
	acked0 := sess.acked.Load()
	parts, err := sess.tr.SplitByPID(grant, func(pid uint32) int { return pipeline.ShardOf(pid, grant) })
	if err != nil {
		return s.streamSequential(sess, body, hdr, skip, resp)
	}
	committed := sess.tr // rollback point; advanced by each aligned commit
	var committedNew uint64
	opts := pipeline.Options{
		Metrics:         s.cfg.Registry,
		CheckpointEvery: s.cfg.CommitEvery,
		OnCheckpoint: func(p *pipeline.Pipeline) error {
			p.Sync()
			m, merr := core.MergeTrackers(p.ShardTrackers())
			if merr != nil {
				return merr
			}
			committed = m
			committedNew = p.Offset() - acked0
			return nil
		},
	}
	p, err := pipeline.NewSeeded(opts, parts, acked0)
	if err != nil {
		return s.streamSequential(sess, body, hdr, skip, resp)
	}
	commit := func(tr *core.Tracker, n uint64) {
		sess.tr = tr
		sess.acked.Store(acked0 + n)
		resp.Ingested += n
	}
	tr, err := trace.NewReader(io.MultiReader(bytes.NewReader(hdr), body))
	if err != nil {
		p.Close()
		return resp, classifyIngest(err)
	}
	if skip > 0 {
		if err := tr.Skip(skip); err != nil {
			p.Close()
			return resp, classifyIngest(err)
		}
	}
	res, derr := p.Drain(context.Background(), tr)
	if derr != nil || res.Err != nil {
		commit(committed, committedNew)
		if derr == nil {
			derr = res.Err
		}
		return resp, classifyIngest(derr)
	}
	merged, err := core.MergeTrackers(p.ShardTrackers())
	if err != nil {
		// Unreachable while the shard routing matches the split; roll back
		// to the last commit rather than serve half-merged state.
		commit(committed, committedNew)
		return resp, &IngestError{
			Status: http.StatusInternalServerError, Code: "merge-failed",
			Err: fmt.Errorf("session %q: %w", sess.id, err),
		}
	}
	commit(merged, declared-skip)
	s.m.parallelIngests.Inc()
	return resp, nil
}

// streamSequential is the sequential fallback for the streaming path,
// taken before any body byte past the header has been consumed.
func (s *Server) streamSequential(sess *session, body io.Reader, hdr []byte, skip uint64, resp IngestResponse) (IngestResponse, *IngestError) {
	tr, err := trace.NewReader(io.MultiReader(bytes.NewReader(hdr), body))
	if err != nil {
		return resp, classifyIngest(err)
	}
	if skip > 0 {
		if err := tr.Skip(skip); err != nil {
			return resp, classifyIngest(err)
		}
	}
	return resp, drainSequential(sess, tr, &resp)
}
