package server

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// peekCache keeps the most recently queried spilled sessions' hydrated
// snapshots so a query-heavy tenant stops paying a full snapshot decode
// per verdict/stats read. Entries are keyed by (tenant, generation): the
// session's gen counter bumps on every mutating ingest, so a cached
// tracker can never be served after the state it captured has moved —
// staleness is structurally impossible, not TTL-approximate.
//
// Cached trackers are read-only snapshots (queries only call Verdicts
// and Stats, which do not mutate), shared across requests for the same
// tenant; same-tenant requests are already serialized by session.mu.
// The cache is deliberately small (Config.SnapshotCache sessions) and
// sits outside the live-byte budget: it prices as query working set, not
// session residency, and eviction is plain LRU.
type peekCache struct {
	mu   sync.Mutex
	cap  int
	lru  *list.List // *peekEntry, front = hottest
	byID map[string]*list.Element
}

type peekEntry struct {
	id  string
	gen uint64
	tr  *core.Tracker
}

// newPeekCache returns nil for capacity <= 0 — every method is
// nil-receiver-safe, so a disabled cache costs one branch per peek.
func newPeekCache(capacity int) *peekCache {
	if capacity <= 0 {
		return nil
	}
	return &peekCache{
		cap:  capacity,
		lru:  list.New(),
		byID: make(map[string]*list.Element),
	}
}

// get returns the cached tracker for the tenant iff it captures exactly
// generation gen; any other generation is dropped on sight.
func (c *peekCache) get(id string, gen uint64) *core.Tracker {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byID[id]
	if e == nil {
		return nil
	}
	ent := e.Value.(*peekEntry)
	if ent.gen != gen {
		c.lru.Remove(e)
		delete(c.byID, id)
		return nil
	}
	c.lru.MoveToFront(e)
	return ent.tr
}

// put installs (or replaces) the tenant's cached snapshot, evicting the
// coldest entry past capacity.
func (c *peekCache) put(id string, gen uint64, tr *core.Tracker) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.byID[id]; e != nil {
		ent := e.Value.(*peekEntry)
		ent.gen, ent.tr = gen, tr
		c.lru.MoveToFront(e)
		return
	}
	c.byID[id] = c.lru.PushFront(&peekEntry{id: id, gen: gen, tr: tr})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.byID, back.Value.(*peekEntry).id)
		c.lru.Remove(back)
	}
}

// drop forgets the tenant's entry; finalize calls it so a recreated
// session can never see its predecessor's state.
func (c *peekCache) drop(id string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.byID[id]; e != nil {
		c.lru.Remove(e)
		delete(c.byID, id)
	}
}

// peekSnapshot answers a query against a spilled session, preferring the
// cache over a snapshot decode. Caller holds sess.mu, which keeps gen
// stable for the duration of the peek.
func (s *Server) peekSnapshot(sess *session) (*core.Tracker, error) {
	gen := sess.gen.Load()
	if tr := s.cache.get(sess.id, gen); tr != nil {
		s.m.peekHits.Inc()
		return tr, nil
	}
	s.m.peekMisses.Inc()
	tr, err := s.peekSpilled(sess)
	if err != nil {
		return nil, err
	}
	s.cache.put(sess.id, gen, tr)
	return tr, nil
}
