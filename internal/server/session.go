package server

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/metrics"
)

// A session is one tenant's logical tracker. It is in exactly one of two
// states:
//
//	live     tr != nil; its estimated footprint is counted against the
//	         server's memory budget and it occupies a slot in the LRU.
//	spilled  tr == nil; the complete tracker state sits in a PIFTSES1
//	         file under the spill directory, and only this stub (id +
//	         acknowledged offset) stays resident — a few dozen bytes, which
//	         is what lets 10k+ logical sessions fit on a laptop.
//
// sess.mu serializes every use of the session's state: ingest, query,
// hydrate, dehydrate, finalize. Ingest holds it for the whole stream,
// which doubles as the per-tenant backpressure primitive — a second
// concurrent stream for the same tenant fails TryLock and is told to
// retry. The eviction scan also uses TryLock, so a session mid-ingest is
// simply skipped, never blocked on.
//
// Lock order: server.mu (registry/LRU/budget) is never held while
// blocking on a session.mu — eviction acquires sessions only via TryLock.
// A session holding its own mu may take server.mu (to update accounting),
// so the reverse edge is TryLock-only and the graph stays acyclic.
type session struct {
	id string

	mu    sync.Mutex
	tr    *core.Tracker // nil when spilled
	bytes int64         // resident estimate currently charged to the budget
	elem  *list.Element // LRU slot; nil when spilled

	// acked and spilled are written only under mu but read lock-free by
	// the session-list endpoint, hence atomic.
	acked   atomic.Uint64 // events applied over the session's lifetime
	spilled atomic.Bool
	// gen counts mutating ingests; the peek cache keys on it so cached
	// query snapshots invalidate the moment new events land.
	gen atomic.Uint64

	// Per-tenant series, resolved once so the ingest loop touches only
	// plain atomic counters.
	mBytes    *metrics.Counter
	mEvents   *metrics.Counter
	mVerdicts *metrics.Counter
	mStalls   *metrics.Counter
}

// sessionBaseBytes is the charge for an idle tracker: the struct, its
// empty maps, and the bookkeeping around it.
const sessionBaseBytes = 512

// estimateBytes prices a live tracker's resident state for budget
// accounting. The per-item weights approximate Go's real footprint (a
// window is a map slot plus a 3-word struct; a range is two u32 words in a
// slice; a verdict is a 4-word struct) — the budget enforces relative
// pressure, not an exact RSS.
func estimateBytes(tr *core.Tracker) int64 {
	return sessionBaseBytes +
		int64(tr.WindowCount())*64 +
		int64(tr.RangeCount())*16 +
		int64(len(tr.Verdicts()))*40
}

// spillPath maps a tenant ID — an arbitrary string — onto a fixed-length
// filename. Hashing sidesteps both path traversal and filesystem name
// limits; the ID itself is stored inside the file for restart recovery.
func (s *Server) spillPath(id string) string {
	sum := sha256.Sum256([]byte(id))
	return filepath.Join(s.cfg.SpillDir, hex.EncodeToString(sum[:16])+".sess")
}

// Session spill format — the hydrate/dehydrate envelope around the
// tracker's canonical PIFTSNP1 snapshot:
//
//	magic    [8]byte "PIFTSES1"
//	idLen    u32, id idLen bytes   (the tenant ID, for restart recovery)
//	acked    u64                   (checkpoint offset: events applied)
//	snapshot PIFTSNP1              (core.Tracker.WriteSnapshot)
//
// Because the snapshot codec is canonical (two semantically identical
// trackers serialize identically), dehydrate+hydrate is byte-exact: a
// session that round-trips through disk produces verdicts and stats
// byte-identical to one that never left memory.
var spillMagic = [8]byte{'P', 'I', 'F', 'T', 'S', 'E', 'S', '1'}

const spillMaxIDLen = 1 << 16

// dehydrate writes sess's state to its spill file and releases the
// tracker. Caller holds sess.mu; the session must be live and already
// removed from the LRU/budget accounting.
func (s *Server) dehydrate(sess *session) error {
	err := atomicfile.WriteFile(s.spillPath(sess.id), func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		if _, err := bw.Write(spillMagic[:]); err != nil {
			return err
		}
		var u32 [4]byte
		binary.LittleEndian.PutUint32(u32[:], uint32(len(sess.id)))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(sess.id); err != nil {
			return err
		}
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], sess.acked.Load())
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
		if _, err := sess.tr.WriteSnapshot(bw); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		return fmt.Errorf("server: dehydrate %q: %w", sess.id, err)
	}
	sess.tr = nil
	sess.spilled.Store(true)
	s.m.dehydrates.Inc()
	s.m.sessionsLive.Dec()
	s.m.sessionsSpilled.Inc()
	return nil
}

// readSpillHeader decodes the envelope up to (and excluding) the snapshot,
// returning the embedded tenant ID and acknowledged offset.
func readSpillHeader(r io.Reader) (id string, acked uint64, err error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return "", 0, err
	}
	if magic != spillMagic {
		return "", 0, fmt.Errorf("bad spill magic %q", magic[:])
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return "", 0, err
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if n > spillMaxIDLen {
		return "", 0, fmt.Errorf("implausible spill id length %d", n)
	}
	idb := make([]byte, n)
	if _, err := io.ReadFull(r, idb); err != nil {
		return "", 0, err
	}
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return "", 0, err
	}
	return string(idb), binary.LittleEndian.Uint64(u64[:]), nil
}

// hydrate restores sess's tracker from its spill file. Caller holds
// sess.mu. The spill file is left in place; it is superseded by the next
// dehydrate and removed at finalize.
func (s *Server) hydrate(sess *session) error {
	path := s.spillPath(sess.id)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("server: hydrate %q: %w", sess.id, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	id, acked, err := readSpillHeader(br)
	if err != nil {
		return fmt.Errorf("server: hydrate %q: %s: %w", sess.id, path, err)
	}
	if id != sess.id {
		return fmt.Errorf("server: hydrate %q: spill file holds session %q", sess.id, id)
	}
	tr, err := core.ReadSnapshot(br)
	if err != nil {
		return fmt.Errorf("server: hydrate %q: %w", sess.id, err)
	}
	if tr.Config() != s.cfg.Tracker {
		return fmt.Errorf("server: hydrate %q: snapshot config %v differs from server config %v",
			sess.id, tr.Config(), s.cfg.Tracker)
	}
	sess.tr = tr
	sess.acked.Store(acked)
	sess.spilled.Store(false)
	s.m.hydrates.Inc()
	s.m.sessionsLive.Inc()
	s.m.sessionsSpilled.Dec()

	// Back into the budget: charge the restored footprint and make the
	// session the hottest entry, then shed whatever the budget no longer
	// covers. (Caller still holds sess.mu; enforceBudget skips it.)
	sess.bytes = estimateBytes(tr)
	s.mu.Lock()
	s.liveBytes += sess.bytes
	sess.elem = s.lru.PushFront(sess)
	s.mu.Unlock()
	s.enforceBudget()
	return nil
}

// touch marks sess as most recently used and re-prices its footprint.
// Caller holds sess.mu; sess must be live.
func (s *Server) touch(sess *session) {
	now := estimateBytes(sess.tr)
	s.mu.Lock()
	s.liveBytes += now - sess.bytes
	sess.bytes = now
	if sess.elem != nil {
		s.lru.MoveToFront(sess.elem)
	} else {
		sess.elem = s.lru.PushFront(sess)
	}
	s.mu.Unlock()
}

// enforceBudget dehydrates cold sessions until the estimated live bytes
// fit the budget. Victims are taken coldest-first; a session whose mu is
// held (mid-ingest or mid-query) is skipped rather than waited for. The
// scan gives up when nothing is evictable — the budget is a target under
// concurrent load, not a hard fence.
//
// Evictions are batched: one pass under server.mu collects every victim
// the budget demands (each claimed by TryLock, so nothing blocks), then
// the whole group's spill files are written in one IO burst outside the
// lock. Compared to the old one-victim-per-lock-cycle loop, a budget
// overshoot that used to cost N lock acquisitions and N interleaved
// scans now costs one of each — the writes themselves stay per-session
// atomicfile renames, which is what restart recovery depends on.
func (s *Server) enforceBudget() {
	for {
		s.mu.Lock()
		var victims []*session
		for e := s.lru.Back(); e != nil && s.liveBytes > s.cfg.MemoryBudget; {
			prev := e.Prev()
			cand := e.Value.(*session)
			if cand.mu.TryLock() {
				s.lru.Remove(cand.elem)
				cand.elem = nil
				s.liveBytes -= cand.bytes
				cand.bytes = 0
				victims = append(victims, cand)
			}
			e = prev
		}
		s.mu.Unlock()
		if len(victims) == 0 {
			return
		}
		s.m.spillBatches.Inc()
		s.m.spillBatchSessions.Add(uint64(len(victims)))

		// File IO happens outside server.mu so other tenants keep moving.
		failed := false
		for _, victim := range victims {
			if err := s.dehydrate(victim); err != nil {
				// Disk refused the spill: the tracker stays live and
				// charged; re-admit it as hottest so the next scan tries
				// colder prey first.
				victim.bytes = estimateBytes(victim.tr)
				s.mu.Lock()
				s.liveBytes += victim.bytes
				victim.elem = s.lru.PushFront(victim)
				s.mu.Unlock()
				s.m.spillErrors.Inc()
				failed = true
			} else {
				s.m.evictions.Inc()
			}
			victim.mu.Unlock()
		}
		if failed {
			return
		}
	}
}

// getOrCreate returns the session for a tenant ID, creating a fresh live
// one on first contact. The returned session may be in any state; callers
// must take sess.mu before touching it.
func (s *Server) getOrCreate(id string) *session {
	s.mu.Lock()
	sess := s.sessions[id]
	if sess == nil {
		sess = &session{
			id:        id,
			tr:        core.NewTracker(s.cfg.Tracker, nil),
			bytes:     sessionBaseBytes,
			mBytes:    s.m.tenantBytes.With(id),
			mEvents:   s.m.tenantEvents.With(id),
			mVerdicts: s.m.tenantVerdicts.With(id),
			mStalls:   s.m.tenantStalls.With(id),
		}
		s.sessions[id] = sess
		sess.elem = s.lru.PushFront(sess)
		s.liveBytes += sess.bytes
		s.m.sessionsCreated.Inc()
		s.m.sessionsLive.Inc()
	}
	s.mu.Unlock()
	return sess
}

// lookup returns the session for id, or nil.
func (s *Server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// remove finalizes a session: drops it from the registry, the LRU, the
// budget, and the spill directory. Caller holds sess.mu.
func (s *Server) remove(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	if sess.elem != nil {
		s.lru.Remove(sess.elem)
		sess.elem = nil
		s.liveBytes -= sess.bytes
	}
	s.mu.Unlock()
	if sess.spilled.Load() {
		s.m.sessionsSpilled.Dec()
	} else {
		s.m.sessionsLive.Dec()
	}
	os.Remove(s.spillPath(sess.id))
	s.cache.drop(sess.id)
	sess.tr = nil
	sess.spilled.Store(false)
	s.m.finalized.Inc()
}

// peekSpilled decodes a spilled session's snapshot into a throwaway
// tracker without changing the session's residency: queries against
// dormant sessions must not churn the LRU or charge the budget. Caller
// holds sess.mu.
func (s *Server) peekSpilled(sess *session) (*core.Tracker, error) {
	f, err := os.Open(s.spillPath(sess.id))
	if err != nil {
		return nil, fmt.Errorf("server: peek %q: %w", sess.id, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if _, _, err := readSpillHeader(br); err != nil {
		return nil, fmt.Errorf("server: peek %q: %w", sess.id, err)
	}
	tr, err := core.ReadSnapshot(br)
	if err != nil {
		return nil, fmt.Errorf("server: peek %q: %w", sess.id, err)
	}
	return tr, nil
}

func sortSummaries(ss []SessionSummary) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Session < ss[j].Session })
}

// recoverSpilled scans the spill directory at startup and re-registers
// every dehydrated session it finds as a spilled stub, so a restarted
// server resumes serving its tenants where the previous process left off.
// Only the envelope header is read; snapshots hydrate lazily on first use.
func (s *Server) recoverSpilled() error {
	entries, err := os.ReadDir(s.cfg.SpillDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".sess" {
			continue
		}
		path := filepath.Join(s.cfg.SpillDir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		id, acked, err := readSpillHeader(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return fmt.Errorf("server: recovering %s: %w", path, err)
		}
		sess := &session{
			id:        id,
			mBytes:    s.m.tenantBytes.With(id),
			mEvents:   s.m.tenantEvents.With(id),
			mVerdicts: s.m.tenantVerdicts.With(id),
			mStalls:   s.m.tenantStalls.With(id),
		}
		sess.acked.Store(acked)
		sess.spilled.Store(true)
		s.sessions[id] = sess
		s.m.sessionsSpilled.Inc()
	}
	return nil
}
