package server_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/eval"
	"repro/internal/server"
)

// The network half of the chaos CI matrix: the same seeded-fault
// discipline as internal/chaos's pipeline matrix, applied to the serving
// boundary. One (seed, mode) cell per CI job via these flags; with
// neither set, the full matrix runs as subtests.
var (
	netSeed = flag.Int64("chaos.seed", 0, "run only this seed of the network chaos matrix (0 = all)")
	netMode = flag.String("chaos.mode", "", "run only this fault mode: conn-cut, slow-loris, conn-cut-parallel ('' = all)")
)

var netSeeds = []int64{11, 23, 37, 41, 53, 67, 79, 97}
var netModes = []string{"conn-cut", "slow-loris", "conn-cut-parallel"}

// TestServerChaosMatrix is the serving layer's resumed-equals-clean
// proof. conn-cut tears the client connection at a seeded byte offset on
// every attempt; the client re-reads the session's acknowledged offset
// and re-sends from there until the stream completes. slow-loris dribbles
// the body out in seeded tiny chunks. In both cases the session's final
// verdicts must be identical to a one-shot inline replay.
func TestServerChaosMatrix(t *testing.T) {
	seeds, modes := netSeeds, netModes
	if *netSeed != 0 {
		seeds = []int64{*netSeed}
	}
	if *netMode != "" {
		ok := false
		for _, m := range netModes {
			ok = ok || m == *netMode
		}
		if !ok {
			t.Fatalf("unknown -chaos.mode %q (have %v)", *netMode, netModes)
		}
		modes = []string{*netMode}
	}
	for _, mode := range modes {
		for _, seed := range seeds {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed%d", mode, seed), func(t *testing.T) {
				runNetChaosCell(t, mode, seed)
			})
		}
	}
}

func runNetChaosCell(t *testing.T, mode string, seed int64) {
	h := sharedHarness(t)
	// A small budget keeps the spill machinery in play while the faults
	// fire: a session torn mid-stream may dehydrate before its retry. The
	// parallel cell additionally forces every attempt through the sharded
	// ingest path, so partial commits and resumes cross the split/merge
	// machinery instead of the sequential drain.
	s := newTestService(t, func(c *server.Config) {
		c.MemoryBudget = 4 << 10
		if mode == "conn-cut-parallel" {
			c.IngestWorkers = 4
			c.WorkerBudget = 8
			c.ParallelThreshold = 1
		}
	})
	in := chaos.New(seed)

	events, err := h.TenantEvents(int(seed))
	if err != nil {
		t.Fatal(err)
	}
	id := fmt.Sprintf("chaos-%s-%d", mode, seed)
	want := eval.OneShotVerdicts(events, testCfg)

	f := chaos.NoConnFaults()
	switch mode {
	case "conn-cut", "conn-cut-parallel":
		// Below the body length, so the tear always fires (request headers
		// push the total connection bytes past the body), but past the
		// headers and stream header, so every attempt lands at least one
		// event first and the retry loop always makes progress.
		body := int64(len(eval.EncodeTrace(events)))
		f.CutAt = in.Between(512, body)
	case "slow-loris":
		f.MaxChunk = int(in.Between(16, 128))
		f.ChunkDelay = 100 * time.Microsecond
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	chaotic := &http.Client{
		Transport: &http.Transport{
			DialContext:       in.Dialer(f),
			DisableKeepAlives: true,
		},
		Timeout: 30 * time.Second,
	}

	cut := 0
	for attempt := 0; ; attempt++ {
		if attempt > 500 {
			t.Fatalf("no convergence after %d attempts (acked %d of %d)", attempt, ackedOffset(t, s, id), len(events))
		}
		acked := ackedOffset(t, s, id)
		if acked == len(events) {
			break
		}
		body := eval.EncodeTrace(events[acked:])
		req, err := http.NewRequest(http.MethodPost, s.base(id)+"/events", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("PIFT-Offset", strconv.Itoa(acked))
		resp, err := chaotic.Do(req)
		if err != nil {
			// The scheduled tear: reconnect and resume from the ack.
			cut++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("attempt %d: status %d", attempt, resp.StatusCode)
		}
	}
	if (mode == "conn-cut" || mode == "conn-cut-parallel") && cut == 0 {
		t.Fatal("connection cut never fired — the cell proved nothing")
	}
	if mode == "conn-cut-parallel" {
		snap := s.reg.Snapshot().Counters
		if snap["pift_server_parallel_ingests_total"] == 0 {
			t.Fatal("parallel cell never committed through the sharded pipeline")
		}
	}

	got := s.verdicts(t, id)
	if !eval.VerdictsEqual(got, want) {
		t.Fatalf("seed %d mode %s: verdicts diverge from one-shot replay (%d vs %d)",
			seed, mode, len(got), len(want))
	}
}

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// ackedOffset reads the session's checkpoint through the clean control
// plane; a session the server has not met yet is at offset 0.
func ackedOffset(t *testing.T, s *testService, id string) int {
	t.Helper()
	for attempt := 0; ; attempt++ {
		resp, err := http.Get(s.base(id) + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var sr server.StatsResponse
		derr := jsonDecode(resp.Body, &sr)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound:
			return 0
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 1000:
			time.Sleep(time.Millisecond)
		case resp.StatusCode == http.StatusOK && derr == nil:
			return int(sr.Acked)
		default:
			t.Fatalf("GET stats %s: status %d err %v", id, resp.StatusCode, derr)
		}
	}
}
