package server_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// postV2 sends events[start:end] as one PIFTTRC2 request.
func (s *testService) postV2(t *testing.T, id string, events []cpu.Event, start, end int) (server.IngestResponse, int) {
	t.Helper()
	body := eval.EncodeTraceFormat(events[start:end], trace.FormatV2)
	return s.postRaw(t, id, body, uint64(start))
}

// postReader sends body as-is with no Content-Length hint, so the
// request travels chunked and the server cannot size a spool for it.
func (s *testService) postReader(t *testing.T, id string, body io.Reader, offset uint64) (server.IngestResponse, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, s.base(id)+"/events", struct{ io.Reader }{body})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("PIFT-Offset", strconv.FormatUint(offset, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir server.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatalf("POST %s: status %d: decode: %v", id, resp.StatusCode, err)
	}
	return ir, resp.StatusCode
}

// TestIngestParityV2 is the v2 basic contract on the sequential path:
// whole-stream and chunked uploads of PIFTTRC2 bodies produce verdicts
// identical to the v1 upload and to the one-shot inline replay — and the
// compressed stream crosses the wire in at most a quarter of the bytes,
// observable through pift_server_ingest_bytes_total.
func TestIngestParityV2(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, nil)
	events, err := h.TenantEvents(4)
	if err != nil {
		t.Fatal(err)
	}
	want := eval.OneShotVerdicts(events, testCfg)

	b0 := counterOf(s, "pift_server_ingest_bytes_total")
	if ir, code := s.post(t, "v2-base", events, 0, len(events)); code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("v1 upload: status %d %+v", code, ir)
	}
	v1Bytes := counterOf(s, "pift_server_ingest_bytes_total") - b0

	if ir, code := s.postV2(t, "v2-whole", events, 0, len(events)); code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("v2 upload: status %d %+v", code, ir)
	}
	v2Bytes := counterOf(s, "pift_server_ingest_bytes_total") - b0 - v1Bytes
	if v2Bytes == 0 || 4*v2Bytes > v1Bytes {
		t.Fatalf("v2 wire bytes %d vs v1 %d, want ≥4x reduction", v2Bytes, v1Bytes)
	}
	requireParity(t, s.verdicts(t, "v2-whole"), want, "v2-whole-stream")
	requireParity(t, s.verdicts(t, "v2-whole"), s.verdicts(t, "v2-base"), "v2-vs-v1")

	// Chunked resume: each chunk is its own self-contained v2 stream, the
	// offset travels in the header, and dedup of a re-sent chunk holds.
	third := len(events) / 3
	if ir, code := s.postV2(t, "v2-chunk", events, 0, third); code != http.StatusOK || ir.Acked != uint64(third) {
		t.Fatalf("chunk 1: status %d %+v", code, ir)
	}
	if ir, code := s.postV2(t, "v2-chunk", events, 0, third); code != http.StatusOK || ir.Ingested != 0 {
		t.Fatalf("duplicate chunk: status %d %+v", code, ir)
	}
	if ir, code := s.postV2(t, "v2-chunk", events, third/2, 2*third); code != http.StatusOK || ir.Acked != uint64(2*third) {
		t.Fatalf("overlap chunk: status %d %+v", code, ir)
	}
	if ir, code := s.postV2(t, "v2-chunk", events, 2*third, len(events)); code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("chunk 3: status %d %+v", code, ir)
	}
	requireParity(t, s.verdicts(t, "v2-chunk"), want, "v2-chunked")
}

// TestDisconnectResumeV2 cuts a multi-block v2 upload mid-block: the ack
// must land on the last whole-block boundary before the cut — the torn
// block contributes nothing — and resending from the ack reproduces the
// uninterrupted result.
func TestDisconnectResumeV2(t *testing.T) {
	const n = 3*trace.DefaultBlockEvents + 300
	events := tracegen.Generate(tracegen.Spec{Seed: 31, Events: n, PIDs: 4}).Events
	s := newTestService(t, nil)
	full := eval.EncodeTraceFormat(events, trace.FormatV2)

	// Cut a few bytes into the third block's payload: two whole blocks
	// decode, the third refuses.
	idx, err := trace.LoadIndex(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Blocks() < 4 {
		t.Fatalf("trace has %d blocks, want ≥4", idx.Blocks())
	}
	cut := int(idx.Block(2).Offset) + 25
	wantAck := idx.Block(2).First

	ir, code := s.postRaw(t, "v2-torn", full[:cut], 0)
	if code != http.StatusBadRequest || ir.Error != "truncated" {
		t.Fatalf("torn v2 upload: status %d %+v", code, ir)
	}
	if ir.Acked != wantAck {
		t.Fatalf("torn v2 upload: acked %d, want block boundary %d", ir.Acked, wantAck)
	}
	ir2, code := s.postV2(t, "v2-torn", events, int(ir.Acked), len(events))
	if code != http.StatusOK || ir2.Acked != uint64(n) {
		t.Fatalf("resume: status %d %+v", code, ir2)
	}
	requireParity(t, s.verdicts(t, "v2-torn"), eval.OneShotVerdicts(events, testCfg), "v2-disconnect-resume")
}

// TestErrorTaxonomyV2 maps each v2 decode failure class onto its HTTP
// status — 400 for truncation and unknown magic, 413 for size-cap
// violations, 422 for corruption — and none of them onto a 5xx.
func TestErrorTaxonomyV2(t *testing.T) {
	const n = trace.DefaultBlockEvents + 100
	events := tracegen.Generate(tracegen.Spec{Seed: 37, Events: n, PIDs: 3}).Events
	s := newTestService(t, nil)
	full := eval.EncodeTraceFormat(events, trace.FormatV2)

	check := func(name string, body []byte, wantStatus int, wantCode string) {
		t.Helper()
		ir, code := s.postRaw(t, "v2-"+name, body, 0)
		if code >= 500 {
			t.Fatalf("%s: leaked a %d: %+v", name, code, ir)
		}
		if code != wantStatus || ir.Error != wantCode {
			t.Fatalf("%s: status %d error %q, want %d %q", name, code, ir.Error, wantStatus, wantCode)
		}
	}

	badMagic := append([]byte("PIFTTRC3"), full[8:]...)
	check("magic", badMagic, http.StatusBadRequest, "not-a-trace")

	tooMany := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(tooMany[8:], 1<<40)
	check("count", tooMany, http.StatusRequestEntityTooLarge, "too-large")

	// Block 0's clen field blown past the block-size cap.
	hugeBlock := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(hugeBlock[trace.HeaderSize+12:], 1<<23+1)
	check("block-size", hugeBlock, http.StatusRequestEntityTooLarge, "too-large")

	// One payload byte flipped: the CRC refuses the block.
	crc := append([]byte(nil), full...)
	crc[trace.HeaderSize+20+10] ^= 0x80
	check("crc", crc, http.StatusUnprocessableEntity, "corrupt-record")

	check("torn-header", full[:trace.HeaderSize+7], http.StatusBadRequest, "truncated")
	check("torn-payload", full[:len(full)-9], http.StatusBadRequest, "truncated")
}

// TestParallelIngestV2 drives PIFTTRC2 through the sharded spool path: a
// sized v2 body large enough to fan out commits via the parallel drain
// with verdicts and stats identical to the sequential replay; a torn
// sized body falls back to sequential replay of the spooled prefix and
// still acks at the block boundary; a chunked (unsized) v2 body streams
// through the push path with the same final state.
func TestParallelIngestV2(t *testing.T) {
	const n = 6*trace.DefaultBlockEvents + 500
	events := tracegen.Generate(tracegen.Spec{Seed: 41, Events: n, PIDs: 8}).Events
	want := eval.OneShotVerdicts(events, testCfg)
	core.SortVerdicts(want)
	seq := core.NewTracker(testCfg, nil)
	for _, ev := range events {
		seq.Event(ev)
	}
	wantStats := seq.Stats()
	wantStats.MaxBytes, wantStats.MaxRanges = 0, 0

	checkSession := func(t *testing.T, s *testService, id string) {
		t.Helper()
		requireParity(t, s.verdicts(t, id), want, id)
		st := s.stats(t, id)
		st.Stats.MaxBytes, st.Stats.MaxRanges = 0, 0
		if st.Stats != wantStats {
			t.Fatalf("%s: stats diverge:\nserver %+v\nseq    %+v", id, st.Stats, wantStats)
		}
	}

	t.Run("spooled", func(t *testing.T) {
		s := newTestService(t, parallelCfg)
		if ir, code := s.postV2(t, "v2-par", events, 0, len(events)); code != http.StatusOK || ir.Acked != uint64(n) {
			t.Fatalf("status %d %+v", code, ir)
		}
		if counterOf(s, "pift_server_parallel_ingests_total") == 0 {
			t.Fatal("sized v2 request never took the parallel path")
		}
		checkSession(t, s, "v2-par")
	})

	t.Run("spooled-torn", func(t *testing.T) {
		s := newTestService(t, parallelCfg)
		full := eval.EncodeTraceFormat(events, trace.FormatV2)
		idx, err := trace.LoadIndex(bytes.NewReader(full))
		if err != nil {
			t.Fatal(err)
		}
		cut := int(idx.Block(4).Offset) + 13
		ir, code := s.postRaw(t, "v2-par-torn", full[:cut], 0)
		if code != http.StatusBadRequest || ir.Error != "truncated" {
			t.Fatalf("torn: status %d %+v", code, ir)
		}
		if ir.Acked != idx.Block(4).First {
			t.Fatalf("torn: acked %d, want block boundary %d", ir.Acked, idx.Block(4).First)
		}
		if ir2, code := s.postV2(t, "v2-par-torn", events, int(ir.Acked), len(events)); code != http.StatusOK || ir2.Acked != uint64(n) {
			t.Fatalf("resume: status %d %+v", code, ir2)
		}
		checkSession(t, s, "v2-par-torn")
	})

	t.Run("chunked-stream", func(t *testing.T) {
		s := newTestService(t, parallelCfg)
		full := eval.EncodeTraceFormat(events, trace.FormatV2)
		ir, code := s.postReader(t, "v2-par-chunk", bytes.NewReader(full), 0)
		if code != http.StatusOK || ir.Acked != uint64(n) {
			t.Fatalf("status %d %+v", code, ir)
		}
		checkSession(t, s, "v2-par-chunk")
	})
}
