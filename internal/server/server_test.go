package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
)

var testCfg = core.Config{NI: 13, NT: 3, Untaint: true}

// testHarness is shared across tests: trace recording is the expensive
// part and the recorder is read-only once cached.
var (
	harnessOnce sync.Once
	harness     *eval.Harness
)

func sharedHarness(t *testing.T) *eval.Harness {
	t.Helper()
	harnessOnce.Do(func() {
		h := eval.NewHarness(10)
		for _, a := range h.Apps() {
			if _, err := h.AppTrace(a); err != nil {
				panic(err)
			}
		}
		harness = h
	})
	return harness
}

type testService struct {
	srv *server.Server
	ts  *httptest.Server
	reg *metrics.Registry
	dir string
}

func newTestService(t *testing.T, mutate func(*server.Config)) *testService {
	t.Helper()
	reg := metrics.NewRegistry()
	cfg := server.Config{
		Tracker:    testCfg,
		SpillDir:   t.TempDir(),
		Registry:   reg,
		RetryAfter: time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &testService{srv: srv, ts: ts, reg: reg, dir: cfg.SpillDir}
}

func (s *testService) base(id string) string { return s.ts.URL + "/v1/sessions/" + id }

// post sends events[start:end] as one request and returns the decoded
// response and status, retrying on 429.
func (s *testService) post(t *testing.T, id string, events []cpu.Event, start, end int) (server.IngestResponse, int) {
	t.Helper()
	body := eval.EncodeTrace(events[start:end])
	return s.postRaw(t, id, body, uint64(start))
}

func (s *testService) postRaw(t *testing.T, id string, body []byte, offset uint64) (server.IngestResponse, int) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, s.base(id)+"/events", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("PIFT-Offset", strconv.FormatUint(offset, 10))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var ir server.IngestResponse
		derr := json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 500 {
			time.Sleep(time.Millisecond)
			continue
		}
		if derr != nil {
			t.Fatalf("POST %s: status %d: decode: %v", id, resp.StatusCode, derr)
		}
		return ir, resp.StatusCode
	}
}

func (s *testService) verdicts(t *testing.T, id string) []core.SinkVerdict {
	t.Helper()
	for attempt := 0; ; attempt++ {
		resp, err := http.Get(s.base(id) + "/verdicts")
		if err != nil {
			t.Fatal(err)
		}
		var vr server.VerdictsResponse
		derr := json.NewDecoder(resp.Body).Decode(&vr)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 500 {
			time.Sleep(time.Millisecond)
			continue
		}
		if derr != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET verdicts %s: status %d err %v", id, resp.StatusCode, derr)
		}
		out := make([]core.SinkVerdict, len(vr.Verdicts))
		for i, v := range vr.Verdicts {
			out[i] = core.SinkVerdict{Tag: v.Tag, PID: v.PID, Seq: v.Seq, Tainted: v.Tainted}
		}
		return out
	}
}

func (s *testService) stats(t *testing.T, id string) server.StatsResponse {
	t.Helper()
	for attempt := 0; ; attempt++ {
		resp, err := http.Get(s.base(id) + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var sr server.StatsResponse
		derr := json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 500 {
			time.Sleep(time.Millisecond)
			continue
		}
		if derr != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET stats %s: status %d err %v", id, resp.StatusCode, derr)
		}
		return sr
	}
}

func requireParity(t *testing.T, got, want []core.SinkVerdict, label string) {
	t.Helper()
	if !eval.VerdictsEqual(got, want) {
		t.Fatalf("%s: verdict mismatch: server %v vs one-shot %v", label, got, want)
	}
}

// TestIngestParity is the basic contract: one tenant streams a whole
// trace; the session's verdicts equal a one-shot inline replay.
func TestIngestParity(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, nil)
	events, err := h.TenantEvents(0)
	if err != nil {
		t.Fatal(err)
	}
	ir, code := s.post(t, "alpha", events, 0, len(events))
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, ir)
	}
	if ir.Acked != uint64(len(events)) || ir.Ingested != uint64(len(events)) {
		t.Fatalf("acked %d ingested %d, want %d", ir.Acked, ir.Ingested, len(events))
	}
	requireParity(t, s.verdicts(t, "alpha"), eval.OneShotVerdicts(events, testCfg), "whole-stream")

	st := s.stats(t, "alpha")
	if st.State != "live" || st.Acked != uint64(len(events)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.Stats.Loads == 0 || st.Stats.SinkChecks == 0 {
		t.Fatalf("stats counters empty: %+v", st.Stats)
	}
}

// TestChunkedResume splits one stream across requests with PIFT-Offset,
// re-sends an already-acknowledged chunk (dedup), and probes the gap 409.
func TestChunkedResume(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, nil)
	events, err := h.TenantEvents(1)
	if err != nil {
		t.Fatal(err)
	}
	third := len(events) / 3
	if third == 0 {
		t.Fatalf("trace too small: %d events", len(events))
	}

	// A gap is refused before any state changes.
	if _, code := s.post(t, "beta", events, third, 2*third); code != http.StatusConflict {
		t.Fatalf("gap: status %d, want 409", code)
	}
	if ir, code := s.post(t, "beta", events, 0, third); code != http.StatusOK || ir.Acked != uint64(third) {
		t.Fatalf("chunk 1: status %d acked %d", code, ir.Acked)
	}
	// Retransmission of an acknowledged chunk is a no-op.
	if ir, code := s.post(t, "beta", events, 0, third); code != http.StatusOK || ir.Ingested != 0 || ir.Acked != uint64(third) {
		t.Fatalf("duplicate chunk: status %d %+v", code, ir)
	}
	// Overlapping resend: half the chunk is already applied, half is new.
	if ir, code := s.post(t, "beta", events, third/2, 2*third); code != http.StatusOK || ir.Acked != uint64(2*third) {
		t.Fatalf("overlap chunk: status %d %+v", code, ir)
	}
	if ir, code := s.post(t, "beta", events, 2*third, len(events)); code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("chunk 3: status %d %+v", code, ir)
	}
	requireParity(t, s.verdicts(t, "beta"), eval.OneShotVerdicts(events, testCfg), "chunked")
}

// TestDisconnectResume cuts an upload mid-record — the body truncates at
// an unaligned byte — and resumes from the acknowledged offset. The final
// verdicts must be identical to an uninterrupted run.
func TestDisconnectResume(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, nil)
	events, err := h.TenantEvents(2)
	if err != nil {
		t.Fatal(err)
	}
	full := eval.EncodeTrace(events)
	// Cut mid-way through event k: k events decodable, then a torn tail.
	k := len(events) / 2
	cut := trace.HeaderSize + k*trace.EventSize + trace.EventSize/2
	ir, code := s.postRaw(t, "gamma", full[:cut], 0)
	if code != http.StatusBadRequest || ir.Error != "truncated" {
		t.Fatalf("torn upload: status %d %+v", code, ir)
	}
	if ir.Acked != uint64(k) {
		t.Fatalf("torn upload: acked %d, want %d", ir.Acked, k)
	}
	// The client reconnects and sends the tail from the acked offset.
	ir2, code := s.post(t, "gamma", events, int(ir.Acked), len(events))
	if code != http.StatusOK || ir2.Acked != uint64(len(events)) {
		t.Fatalf("resume: status %d %+v", code, ir2)
	}
	requireParity(t, s.verdicts(t, "gamma"), eval.OneShotVerdicts(events, testCfg), "disconnect-resume")
}

// TestErrorTaxonomy maps each trace-decode failure class onto its HTTP
// status — and none of them onto a 5xx.
func TestErrorTaxonomy(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, nil)
	events, err := h.TenantEvents(3)
	if err != nil {
		t.Fatal(err)
	}
	full := eval.EncodeTrace(events)

	badMagic := append([]byte("NOTTRACE"), full[8:]...)
	if ir, code := s.postRaw(t, "err-magic", badMagic, 0); code != http.StatusBadRequest || ir.Error != "not-a-trace" {
		t.Fatalf("bad magic: status %d %+v", code, ir)
	}
	corrupt := bytes.Clone(full)
	corrupt[trace.HeaderSize] ^= 0x80 // first event's kind byte
	if ir, code := s.postRaw(t, "err-corrupt", corrupt, 0); code != http.StatusUnprocessableEntity || ir.Error != "corrupt-record" {
		t.Fatalf("corrupt: status %d %+v", code, ir)
	}
	huge := bytes.Clone(full[:trace.HeaderSize])
	for i := 8; i < 16; i++ {
		huge[i] = 0xff
	}
	if ir, code := s.postRaw(t, "err-huge", huge, 0); code != http.StatusRequestEntityTooLarge || ir.Error != "too-large" {
		t.Fatalf("too large: status %d %+v", code, ir)
	}
	if ir, code := s.postRaw(t, "err-empty", full[:4], 0); code != http.StatusBadRequest || ir.Error != "truncated" {
		t.Fatalf("truncated header: status %d %+v", code, ir)
	}
}

// TestEvictionRehydration runs many tenants under a budget that holds
// only a handful of live trackers, interleaving chunks so sessions
// dehydrate and rehydrate repeatedly mid-stream. Every tenant must end
// byte-identical to its one-shot replay, and the spill machinery must
// actually have engaged.
func TestEvictionRehydration(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, func(c *server.Config) {
		c.MemoryBudget = 8 << 10 // a few live sessions at most
	})
	const tenants = 12
	const chunks = 3
	all := make([][]cpu.Event, tenants)
	for i := range all {
		events, err := h.TenantEvents(i)
		if err != nil {
			t.Fatal(err)
		}
		all[i] = events
	}
	// Interleave chunk c of every tenant before chunk c+1 of any, so each
	// tenant's session goes cold (and likely spills) between its chunks.
	for c := 0; c < chunks; c++ {
		for i, events := range all {
			per := (len(events) + chunks - 1) / chunks
			start := c * per
			end := start + per
			if start >= len(events) {
				continue
			}
			if end > len(events) {
				end = len(events)
			}
			if ir, code := s.post(t, eval.TenantID(i), events, start, end); code != http.StatusOK {
				t.Fatalf("tenant %d chunk %d: status %d %+v", i, c, code, ir)
			}
		}
	}
	snap := s.reg.Snapshot().Counters
	if snap["pift_server_hydrates_total"] == 0 {
		t.Fatalf("budget never forced a rehydration: %v", snap)
	}
	if snap["pift_server_sessions_evicted_total"] == 0 {
		t.Fatalf("budget never evicted: %v", snap)
	}
	for i, events := range all {
		requireParity(t, s.verdicts(t, eval.TenantID(i)),
			eval.OneShotVerdicts(events, testCfg), fmt.Sprintf("tenant %d", i))
	}
	// A spilled session's stats are served from its snapshot without
	// hydrating it.
	live, spilled := s.srv.SessionCount()
	if spilled == 0 {
		t.Fatalf("expected spilled sessions, have live=%d spilled=%d", live, spilled)
	}
}

// TestRestartRecovery dehydrates sessions, builds a brand-new Server over
// the same spill directory, and expects the tenants to still be there —
// queryable and resumable at their acknowledged offsets.
func TestRestartRecovery(t *testing.T) {
	h := sharedHarness(t)
	dir := t.TempDir()
	s := newTestService(t, func(c *server.Config) {
		c.SpillDir = dir
		c.MemoryBudget = 1 // evict everything immediately
	})
	events, err := h.TenantEvents(4)
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	if ir, code := s.post(t, "delta", events, 0, half); code != http.StatusOK {
		t.Fatalf("first half: status %d %+v", code, ir)
	}

	// "Restart": a fresh server over the same spill directory.
	s2 := newTestService(t, func(c *server.Config) {
		c.SpillDir = dir
		c.MemoryBudget = 1
	})
	st := s2.stats(t, "delta")
	if st.State != "spilled" || st.Acked != uint64(half) {
		t.Fatalf("recovered stats: %+v", st)
	}
	if ir, code := s2.post(t, "delta", events, half, len(events)); code != http.StatusOK || ir.Acked != uint64(len(events)) {
		t.Fatalf("resume after restart: status %d %+v", code, ir)
	}
	requireParity(t, s2.verdicts(t, "delta"), eval.OneShotVerdicts(events, testCfg), "restart")
}

// TestFinalize: DELETE returns the final verdicts and releases everything;
// the session is gone afterwards.
func TestFinalize(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, nil)
	events, err := h.TenantEvents(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := s.post(t, "omega", events, 0, len(events)); code != http.StatusOK {
		t.Fatalf("ingest failed: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, s.base("omega"), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var vr server.VerdictsResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d err %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	want := eval.OneShotVerdicts(events, testCfg)
	if len(vr.Verdicts) != len(want) {
		t.Fatalf("final verdicts: %d, want %d", len(vr.Verdicts), len(want))
	}
	resp2, err := http.Get(s.base("omega") + "/verdicts")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("after DELETE: status %d, want 404", resp2.StatusCode)
	}
}

// TestAdmissionControl exercises both 429 classes: the global stream cap
// and per-tenant serialization.
func TestAdmissionControl(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, func(c *server.Config) { c.MaxStreams = 1 })
	events, err := h.TenantEvents(6)
	if err != nil {
		t.Fatal(err)
	}
	body := eval.EncodeTrace(events)

	// Occupy the only stream slot with a request whose body stalls.
	gate := make(chan struct{})
	release := make(chan struct{})
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest(http.MethodPost, s.base("slow")+"/events", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	go func() {
		pw.Write(body[:trace.HeaderSize+trace.EventSize])
		close(gate)
		<-release
		pw.Write(body[trace.HeaderSize+trace.EventSize:])
		pw.Close()
	}()
	<-gate
	// Give the server a moment to enter the ingest loop and block on the
	// stalled body.
	var sawBusy bool
	for i := 0; i < 200; i++ {
		resp, err := http.Post(s.base("other")+"/events", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if retry == "" {
				t.Fatal("429 without Retry-After")
			}
			sawBusy = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	if !sawBusy {
		t.Fatal("global stream cap never produced a 429")
	}
	if s.reg.Snapshot().Counters["pift_server_streams_rejected_total"] == 0 {
		t.Fatal("streams_rejected_total not incremented")
	}
}

// TestConcurrentLifecycle is the race test: many tenants ingest chunked
// streams concurrently under a budget that forces continuous
// evict/rehydrate churn, with queries mixed in. Run with -race.
func TestConcurrentLifecycle(t *testing.T) {
	h := sharedHarness(t)
	s := newTestService(t, func(c *server.Config) {
		c.MemoryBudget = 8 << 10
		c.MaxStreams = 8
	})
	const tenants = 16
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			events, err := h.TenantEvents(i)
			if err != nil {
				errs <- err
				return
			}
			id := eval.TenantID(i)
			const chunks = 4
			per := (len(events) + chunks - 1) / chunks
			for start := 0; start < len(events); start += per {
				end := start + per
				if end > len(events) {
					end = len(events)
				}
				if ir, code := s.post(t, id, events, start, end); code != http.StatusOK {
					errs <- fmt.Errorf("tenant %d: status %d %+v", i, code, ir)
					return
				}
				// Interleave a query to race the peek path against other
				// tenants' evictions.
				_ = s.stats(t, id)
			}
			got := s.verdicts(t, id)
			if !eval.VerdictsEqual(got, eval.OneShotVerdicts(events, testCfg)) {
				errs <- fmt.Errorf("tenant %d: verdict mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
