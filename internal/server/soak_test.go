package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/server"
)

// soakSessions is the target scale of the acceptance soak: ten thousand
// logical tracker sessions multiplexed over one server process, with a
// memory budget small enough that most of them must live on disk.
const soakSessions = 10_000

// TestSoak10kSessions is the headline scale proof. It drives
// soakSessions distinct tenants through the service — each streaming a
// DroidBench-derived trace in two resumable chunks — under a budget that
// holds only a sliver of them in memory, then verifies all three
// acceptance properties:
//
//  1. scale: all sessions remain addressable and queryable;
//  2. pressure: the budget forced at least half of them to dehydrate;
//  3. fidelity: every tenant's verdicts are identical to a one-shot
//     inline replay of its stream — dehydrate/rehydrate cycles and
//     chunked resumable ingest included.
func TestSoak10kSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	h := sharedHarness(t)
	s := newTestService(t, func(c *server.Config) {
		c.MemoryBudget = 256 << 10 // a few dozen live trackers at most
		c.MaxStreams = 64
	})

	const workers = 32
	run := func(stage string, fn func(i int) error) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, 1)
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if err := fn(i); err != nil {
						select {
						case errs <- fmt.Errorf("%s: tenant %d: %w", stage, i, err):
						default:
						}
						return
					}
				}
			}()
		}
		for i := 0; i < soakSessions; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	// Two passes: chunk 1 for every tenant, then chunk 2. By the time a
	// tenant's second chunk arrives its session has long been evicted, so
	// (nearly) every session proves the dehydrate→rehydrate→resume path.
	start := time.Now()
	run("ingest chunk 1", func(i int) error { return soakIngest(s, h, i, 0) })
	run("ingest chunk 2", func(i int) error { return soakIngest(s, h, i, 1) })
	t.Logf("soak: ingested %d sessions in %v", soakSessions, time.Since(start).Round(time.Millisecond))

	live, spilled := s.srv.SessionCount()
	if live+spilled != soakSessions {
		t.Fatalf("sessions: live %d + spilled %d != %d", live, spilled, soakSessions)
	}
	if spilled < soakSessions/2 {
		t.Fatalf("budget too lax: only %d of %d sessions dehydrated (need >= 50%%)", spilled, soakSessions)
	}
	snap := s.reg.Snapshot().Counters
	if snap["pift_server_hydrates_total"] == 0 {
		t.Fatal("no session was ever rehydrated")
	}
	t.Logf("soak: %d live, %d spilled; %d dehydrates, %d hydrates",
		live, spilled, snap["pift_server_dehydrates_total"], snap["pift_server_hydrates_total"])

	// Fidelity sweep: one verdict query per tenant, most served from
	// spilled snapshots via the peek path.
	run("verify", func(i int) error {
		events, err := h.TenantEvents(i)
		if err != nil {
			return err
		}
		got, err := soakVerdicts(s, eval.TenantID(i))
		if err != nil {
			return err
		}
		if !eval.VerdictsEqual(got, eval.OneShotVerdicts(events, testCfg)) {
			return fmt.Errorf("verdicts diverge from one-shot replay")
		}
		return nil
	})
}

// soakIngest streams one of tenant i's two resumable chunks, retrying
// through 429 backpressure, and confirms the acknowledged offset.
func soakIngest(s *testService, h *eval.Harness, i, chunk int) error {
	events, err := h.TenantEvents(i)
	if err != nil {
		return err
	}
	id := eval.TenantID(i)
	half := len(events) / 2
	c := [2]int{0, half}
	if chunk == 1 {
		c = [2]int{half, len(events)}
	}
	{
		if c[0] >= c[1] {
			return nil
		}
		body := eval.EncodeTrace(events[c[0]:c[1]])
		for attempt := 0; ; attempt++ {
			req, err := http.NewRequest(http.MethodPost, s.base(id)+"/events", bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("PIFT-Offset", strconv.Itoa(c[0]))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			var ir server.IngestResponse
			derr := json.NewDecoder(resp.Body).Decode(&ir)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if attempt > 2000 {
					return fmt.Errorf("still 429 after %d attempts", attempt)
				}
				time.Sleep(time.Millisecond)
				continue
			}
			if derr != nil || resp.StatusCode != http.StatusOK {
				return fmt.Errorf("POST: status %d err %v (%s %s)", resp.StatusCode, derr, ir.Error, ir.Detail)
			}
			if ir.Acked != uint64(c[1]) {
				return fmt.Errorf("acked %d, want %d", ir.Acked, c[1])
			}
			break
		}
	}
	return nil
}

func soakVerdicts(s *testService, id string) ([]core.SinkVerdict, error) {
	for attempt := 0; ; attempt++ {
		resp, err := http.Get(s.base(id) + "/verdicts")
		if err != nil {
			return nil, err
		}
		var vr server.VerdictsResponse
		derr := json.NewDecoder(resp.Body).Decode(&vr)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if attempt > 2000 {
				return nil, fmt.Errorf("still 429 after %d attempts", attempt)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if derr != nil || resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET verdicts: status %d err %v", resp.StatusCode, derr)
		}
		out := make([]core.SinkVerdict, len(vr.Verdicts))
		for i, v := range vr.Verdicts {
			out[i] = core.SinkVerdict{Tag: v.Tag, PID: v.PID, Seq: v.Seq, Tainted: v.Tainted}
		}
		return out, nil
	}
}
