package server

import "repro/internal/metrics"

// serverMetrics is the serving layer's slice of the metrics registry.
// Global series cover the session manager (residency, lifecycle churn,
// admission); per-tenant Vec series break ingestion volume, verdicts, and
// backpressure out by tenant ID on the same /metrics endpoint the rest of
// the stack already exposes. All fields are nil-receiver-safe, so a
// Server built without a registry pays one predicted branch per site.
type serverMetrics struct {
	sessionsLive    *metrics.Gauge   // sessions resident in memory
	sessionsSpilled *metrics.Gauge   // sessions dehydrated to disk
	liveBytes       *metrics.Gauge   // estimated resident tracker bytes
	sessionsCreated *metrics.Counter // first-contact session creations
	evictions       *metrics.Counter // budget-driven dehydrations
	dehydrates      *metrics.Counter // spill writes (eviction or shutdown)
	hydrates        *metrics.Counter // spill reads back into memory
	finalized       *metrics.Counter // DELETE-finalized sessions
	spillErrors     *metrics.Counter // failed spill writes (session stayed live)
	streamsInFlight *metrics.Gauge   // ingest streams currently admitted
	streamsRejected *metrics.Counter // 429s from the global stream cap
	ingestErrors    *metrics.Counter // ingest requests that ended in an error class
	ingestBytes     *metrics.Counter // wire bytes drawn from ingest request bodies
	ingestSeconds   *metrics.Histogram

	parallelIngests    *metrics.Counter // requests committed through the sharded pipeline
	parallelFallbacks  *metrics.Counter // parallel drains that fell back to sequential replay
	workersLoaned      *metrics.Gauge   // pipeline workers currently loaned to sessions
	spoolBytes         *metrics.Counter // request bytes captured into ingest spools
	peekHits           *metrics.Counter // spilled-session queries served from the snapshot cache
	peekMisses         *metrics.Counter // spilled-session queries that decoded a snapshot
	spillBatches       *metrics.Counter // grouped eviction write bursts
	spillBatchSessions *metrics.Counter // sessions dehydrated across those bursts

	tenantBytes    *metrics.CounterVec // bytes ingested, by tenant
	tenantEvents   *metrics.CounterVec // events applied, by tenant
	tenantVerdicts *metrics.CounterVec // sink verdicts recorded, by tenant
	tenantStalls   *metrics.CounterVec // per-tenant 429 backpressure stalls
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	m := &serverMetrics{}
	if r == nil {
		return m
	}
	m.sessionsLive = r.Gauge("pift_server_sessions_live", "tracker sessions resident in memory")
	m.sessionsSpilled = r.Gauge("pift_server_sessions_spilled", "tracker sessions dehydrated to the spill directory")
	m.liveBytes = r.Gauge("pift_server_live_bytes", "estimated resident bytes of live tracker state")
	m.sessionsCreated = r.Counter("pift_server_sessions_created_total", "sessions created on first contact")
	m.evictions = r.Counter("pift_server_sessions_evicted_total", "sessions dehydrated by the LRU memory budget")
	m.dehydrates = r.Counter("pift_server_dehydrates_total", "session snapshots written to the spill directory")
	m.hydrates = r.Counter("pift_server_hydrates_total", "session snapshots restored from the spill directory")
	m.finalized = r.Counter("pift_server_sessions_finalized_total", "sessions finalized by DELETE")
	m.spillErrors = r.Counter("pift_server_spill_errors_total", "failed spill writes (victim kept live)")
	m.streamsInFlight = r.Gauge("pift_server_streams_in_flight", "ingest streams currently admitted")
	m.streamsRejected = r.Counter("pift_server_streams_rejected_total", "ingest streams rejected 429 by the global concurrency cap")
	m.ingestErrors = r.Counter("pift_server_ingest_errors_total", "ingest requests that ended in an error class")
	m.ingestBytes = r.Counter("pift_server_ingest_bytes_total", "wire bytes drawn from ingest request bodies, all tenants")
	m.ingestSeconds = r.Histogram("pift_server_ingest_seconds", "wall time of one ingest request", metrics.LatencyBuckets)

	m.parallelIngests = r.Counter("pift_server_parallel_ingests_total", "ingest requests committed through the sharded pipeline")
	m.parallelFallbacks = r.Counter("pift_server_parallel_fallbacks_total", "parallel drains that fell back to the sequential path")
	m.workersLoaned = r.Gauge("pift_server_ingest_workers_loaned", "pipeline workers currently loaned to parallel ingests")
	m.spoolBytes = r.Counter("pift_server_spool_bytes_total", "request bytes captured into ingest spools")
	m.peekHits = r.Counter("pift_server_peek_cache_hits_total", "spilled-session queries served from the snapshot cache")
	m.peekMisses = r.Counter("pift_server_peek_cache_misses_total", "spilled-session queries that decoded a spill snapshot")
	m.spillBatches = r.Counter("pift_server_spill_batches_total", "grouped eviction write bursts")
	m.spillBatchSessions = r.Counter("pift_server_spill_batch_sessions_total", "sessions dehydrated across grouped eviction bursts")

	m.tenantBytes = r.CounterVec("pift_server_tenant_bytes_total", "trace bytes ingested per tenant", "tenant")
	m.tenantEvents = r.CounterVec("pift_server_tenant_events_total", "trace events applied per tenant", "tenant")
	m.tenantVerdicts = r.CounterVec("pift_server_tenant_verdicts_total", "sink verdicts recorded per tenant", "tenant")
	m.tenantStalls = r.CounterVec("pift_server_tenant_stalls_total", "per-tenant backpressure rejections (429)", "tenant")
	return m
}
