package server

import "repro/internal/metrics"

// serverMetrics is the serving layer's slice of the metrics registry.
// Global series cover the session manager (residency, lifecycle churn,
// admission); per-tenant Vec series break ingestion volume, verdicts, and
// backpressure out by tenant ID on the same /metrics endpoint the rest of
// the stack already exposes. All fields are nil-receiver-safe, so a
// Server built without a registry pays one predicted branch per site.
type serverMetrics struct {
	sessionsLive    *metrics.Gauge   // sessions resident in memory
	sessionsSpilled *metrics.Gauge   // sessions dehydrated to disk
	liveBytes       *metrics.Gauge   // estimated resident tracker bytes
	sessionsCreated *metrics.Counter // first-contact session creations
	evictions       *metrics.Counter // budget-driven dehydrations
	dehydrates      *metrics.Counter // spill writes (eviction or shutdown)
	hydrates        *metrics.Counter // spill reads back into memory
	finalized       *metrics.Counter // DELETE-finalized sessions
	spillErrors     *metrics.Counter // failed spill writes (session stayed live)
	streamsInFlight *metrics.Gauge   // ingest streams currently admitted
	streamsRejected *metrics.Counter // 429s from the global stream cap
	ingestErrors    *metrics.Counter // ingest requests that ended in an error class
	ingestSeconds   *metrics.Histogram

	tenantBytes    *metrics.CounterVec // bytes ingested, by tenant
	tenantEvents   *metrics.CounterVec // events applied, by tenant
	tenantVerdicts *metrics.CounterVec // sink verdicts recorded, by tenant
	tenantStalls   *metrics.CounterVec // per-tenant 429 backpressure stalls
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	m := &serverMetrics{}
	if r == nil {
		return m
	}
	m.sessionsLive = r.Gauge("pift_server_sessions_live", "tracker sessions resident in memory")
	m.sessionsSpilled = r.Gauge("pift_server_sessions_spilled", "tracker sessions dehydrated to the spill directory")
	m.liveBytes = r.Gauge("pift_server_live_bytes", "estimated resident bytes of live tracker state")
	m.sessionsCreated = r.Counter("pift_server_sessions_created_total", "sessions created on first contact")
	m.evictions = r.Counter("pift_server_sessions_evicted_total", "sessions dehydrated by the LRU memory budget")
	m.dehydrates = r.Counter("pift_server_dehydrates_total", "session snapshots written to the spill directory")
	m.hydrates = r.Counter("pift_server_hydrates_total", "session snapshots restored from the spill directory")
	m.finalized = r.Counter("pift_server_sessions_finalized_total", "sessions finalized by DELETE")
	m.spillErrors = r.Counter("pift_server_spill_errors_total", "failed spill writes (victim kept live)")
	m.streamsInFlight = r.Gauge("pift_server_streams_in_flight", "ingest streams currently admitted")
	m.streamsRejected = r.Counter("pift_server_streams_rejected_total", "ingest streams rejected 429 by the global concurrency cap")
	m.ingestErrors = r.Counter("pift_server_ingest_errors_total", "ingest requests that ended in an error class")
	m.ingestSeconds = r.Histogram("pift_server_ingest_seconds", "wall time of one ingest request", metrics.LatencyBuckets)

	m.tenantBytes = r.CounterVec("pift_server_tenant_bytes_total", "trace bytes ingested per tenant", "tenant")
	m.tenantEvents = r.CounterVec("pift_server_tenant_events_total", "trace events applied per tenant", "tenant")
	m.tenantVerdicts = r.CounterVec("pift_server_tenant_verdicts_total", "sink verdicts recorded per tenant", "tenant")
	m.tenantStalls = r.CounterVec("pift_server_tenant_stalls_total", "per-tenant backpressure rejections (429)", "tenant")
	return m
}
