package server_test

import (
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/server"
)

// Satellite: hydrated-snapshot cache for query-heavy tenants. A spilled
// session's queries decode its PIFTSES1 snapshot; the cache must make
// repeat queries free without ever serving state older than the session.

// TestSnapshotCacheParity: cached answers equal freshly decoded ones,
// and the hit/miss counters prove which path served each query.
func TestSnapshotCacheParity(t *testing.T) {
	h := sharedHarness(t)
	events, err := h.TenantEvents(2)
	if err != nil {
		t.Fatal(err)
	}
	want := eval.OneShotVerdicts(events, testCfg)

	cached := newTestService(t, func(c *server.Config) { c.MemoryBudget = 1 })
	fresh := newTestService(t, func(c *server.Config) { c.MemoryBudget = 1; c.SnapshotCache = -1 })
	for _, s := range []*testService{cached, fresh} {
		if ir, code := s.post(t, "cache-a", events, 0, len(events)); code != http.StatusOK {
			t.Fatalf("ingest: status %d %+v", code, ir)
		}
		requireParity(t, s.verdicts(t, "cache-a"), want, "first query")
		requireParity(t, s.verdicts(t, "cache-a"), want, "second query")
	}
	snap := cached.reg.Snapshot().Counters
	if snap["pift_server_peek_cache_misses_total"] == 0 || snap["pift_server_peek_cache_hits_total"] == 0 {
		t.Fatalf("cache never exercised: %v", snap)
	}
	if n := fresh.reg.Snapshot().Counters["pift_server_peek_cache_hits_total"]; n != 0 {
		t.Fatalf("disabled cache served %d hits", n)
	}
}

// TestSnapshotCacheInvalidation: a cached snapshot must never outlive
// the ingest that supersedes it — queries after the second chunk see the
// whole stream, not the cached half.
func TestSnapshotCacheInvalidation(t *testing.T) {
	h := sharedHarness(t)
	events, err := h.TenantEvents(3)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, func(c *server.Config) { c.MemoryBudget = 1 })
	half := len(events) / 2
	if ir, code := s.post(t, "cache-b", events, 0, half); code != http.StatusOK {
		t.Fatalf("chunk 1: status %d %+v", code, ir)
	}
	wantHalf := eval.OneShotVerdicts(events[:half], testCfg)
	requireParity(t, s.verdicts(t, "cache-b"), wantHalf, "half, cold")
	requireParity(t, s.verdicts(t, "cache-b"), wantHalf, "half, cached")
	if ir, code := s.post(t, "cache-b", events, half, len(events)); code != http.StatusOK {
		t.Fatalf("chunk 2: status %d %+v", code, ir)
	}
	requireParity(t, s.verdicts(t, "cache-b"), eval.OneShotVerdicts(events, testCfg), "full, post-ingest")
	snap := s.reg.Snapshot().Counters
	if snap["pift_server_peek_cache_hits_total"] == 0 {
		t.Fatalf("cache never hit: %v", snap)
	}
	if snap["pift_server_peek_cache_misses_total"] < 2 {
		t.Fatalf("stale entry must miss after ingest: %v", snap)
	}
}

// TestSnapshotCacheConcurrent hammers one tenant with queries while its
// stream is still arriving and the byte budget evicts it after every
// touch — the cache's locking must hold up under -race, and the final
// state must be exact.
func TestSnapshotCacheConcurrent(t *testing.T) {
	h := sharedHarness(t)
	events, err := h.TenantEvents(4)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, func(c *server.Config) {
		c.MemoryBudget = 1
		c.MaxStreams = 16
	})
	const chunks = 8
	per := (len(events) + chunks - 1) / chunks
	if _, code := s.post(t, "cache-c", events, 0, per); code != http.StatusOK {
		t.Fatalf("first chunk: status %d", code)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(kind string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Raw queries: 429/404 races are fine here, only data races
				// and the final parity check below matter.
				resp, err := http.Get(s.base("cache-c") + kind)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}([]string{"/verdicts", "/stats", "/verdicts"}[i])
	}
	for start := per; start < len(events); start += per {
		end := start + per
		if end > len(events) {
			end = len(events)
		}
		if ir, code := s.post(t, "cache-c", events, start, end); code != http.StatusOK {
			t.Fatalf("chunk [%d,%d): status %d %+v", start, end, code, ir)
		}
	}
	close(stop)
	wg.Wait()
	requireParity(t, s.verdicts(t, "cache-c"), eval.OneShotVerdicts(events, testCfg), "concurrent")
}
