// Package server turns the PIFT analysis pipeline into a long-running
// multi-tenant taint service — the paper's decoupled analysis core
// (§3) lifted to a network boundary. Devices ship their recorded event
// streams (the trace wire format, chunked or whole) over HTTP; the server
// runs one logical core.Tracker session per tenant and answers taint
// queries about it.
//
// The serving model, in one paragraph: every tenant ID owns a session.
// Live sessions hold a tracker in memory and are charged an estimated
// footprint against a configurable byte budget; when the budget
// overflows, the coldest sessions dehydrate — their complete state
// serialized through the canonical PIFTSNP1 snapshot codec into a spill
// file — and rehydrate transparently on next touch, byte-identical. That
// LRU spill loop is what lets tens of thousands of logical sessions share
// a laptop's worth of memory. Ingestion is admission-controlled twice: a
// global cap on concurrent streams, and per-tenant serialization (one
// stream per session at a time); both reject with 429 + Retry-After
// rather than queueing unboundedly. Each session tracks an acknowledged
// event offset — its checkpoint — so a client cut off mid-stream re-sends
// from the ack and the merged stream is exactly what an uninterrupted
// upload would have been.
//
// Endpoints (register on any mux, conventionally the /metrics mux):
//
//	POST   /v1/sessions/{id}/events    ingest a trace stream for tenant {id}
//	GET    /v1/sessions/{id}/verdicts  sink verdicts recorded so far
//	GET    /v1/sessions/{id}/stats     tracker stats + session state
//	DELETE /v1/sessions/{id}           finalize: return verdicts, free state
//	GET    /v1/sessions                list sessions (id, state, ack)
//
// The ingest request may set PIFT-Offset to the absolute event offset of
// the body's first event (default 0). Offsets at or before the session's
// ack deduplicate — already-applied events are skipped; an offset past
// the ack is a gap and is refused with 409. Every ingest response carries
// PIFT-Ack-Offset, the session's new checkpoint.
package server

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// Tracker is the window configuration every session runs.
	Tracker core.Config
	// SpillDir is where dehydrated sessions live. Required. Spill files
	// found at startup are recovered as dormant sessions.
	SpillDir string
	// MemoryBudget bounds the estimated resident bytes of live tracker
	// state; past it, cold sessions spill. <= 0 selects 64 MiB.
	MemoryBudget int64
	// MaxStreams caps concurrent ingest streams. <= 0 selects 64.
	MaxStreams int
	// RetryAfter is the backoff hint attached to 429 responses. <= 0
	// selects 1 second.
	RetryAfter time.Duration
	// Registry receives the serving metrics; nil disables them.
	Registry *metrics.Registry

	// IngestWorkers is how many pipeline shards one session's ingest may
	// fan out to. <= 0 selects min(GOMAXPROCS, 8); 1 keeps every session
	// on the sequential path.
	IngestWorkers int
	// WorkerBudget caps the total pipeline workers loaned out across all
	// concurrently parallel sessions, so a stampede of hot tenants
	// degrades to sequential ingest instead of oversubscribing the
	// machine. <= 0 selects max(IngestWorkers, GOMAXPROCS).
	WorkerBudget int
	// ParallelThreshold is the minimum number of new (post-dedup) events
	// a request must carry before its session fans out; smaller bodies
	// stay sequential — the split/merge round trip costs more than it
	// saves. <= 0 selects 65536.
	ParallelThreshold uint64
	// CommitEvery aligns the streaming parallel path's partial commits:
	// the shards are quiesced and merged back into the session tracker at
	// every CommitEvery-multiple of the absolute event offset, so a
	// failed stream acks at a boundary and the client resumes from there.
	// <= 0 selects 65536.
	CommitEvery uint64
	// MaxSpoolBytes bounds the request-body spool that enables the
	// seekable shard-owned drain; bigger bodies use the streaming push
	// path. 0 selects 256 MiB; negative disables spooling entirely.
	MaxSpoolBytes int64
	// SpoolMemBytes is the spool size up to which bodies buffer in
	// memory; larger spools go to a temp file in SpillDir. <= 0 selects
	// 4 MiB.
	SpoolMemBytes int64
	// SnapshotCache is how many hydrated peek snapshots of spilled
	// sessions to keep for query traffic. 0 selects 8; negative disables
	// the cache.
	SnapshotCache int
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 64 << 20
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.IngestWorkers <= 0 {
		c.IngestWorkers = runtime.GOMAXPROCS(0)
		if c.IngestWorkers > 8 {
			c.IngestWorkers = 8
		}
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
		if c.WorkerBudget < c.IngestWorkers {
			c.WorkerBudget = c.IngestWorkers
		}
	}
	if c.ParallelThreshold <= 0 {
		c.ParallelThreshold = 65536
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 65536
	}
	if c.MaxSpoolBytes == 0 {
		c.MaxSpoolBytes = 256 << 20
	}
	if c.SpoolMemBytes <= 0 {
		c.SpoolMemBytes = 4 << 20
	}
	if c.SnapshotCache == 0 {
		c.SnapshotCache = 8
	}
	return c
}

// Server is the multi-tenant taint service. Create with New, attach with
// Register, and it is fully concurrent-safe thereafter.
type Server struct {
	cfg     Config
	m       *serverMetrics
	streams chan struct{} // counting semaphore on concurrent ingests
	budget  *workerBudget // global loan pool for parallel-ingest shards
	cache   *peekCache    // hydrated snapshots of spilled sessions; nil when disabled

	mu        sync.Mutex
	sessions  map[string]*session
	lru       *list.List // *session, front = hottest; live sessions only
	liveBytes int64
}

// New builds a server, creating the spill directory if needed and
// recovering any sessions a previous process dehydrated into it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Tracker.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.SpillDir == "" {
		return nil, fmt.Errorf("server: SpillDir is required")
	}
	if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		m:        newServerMetrics(cfg.Registry),
		streams:  make(chan struct{}, cfg.MaxStreams),
		budget:   newWorkerBudget(cfg.WorkerBudget),
		cache:    newPeekCache(cfg.SnapshotCache),
		sessions: make(map[string]*session),
		lru:      list.New(),
	}
	if err := s.recoverSpilled(); err != nil {
		return nil, err
	}
	return s, nil
}

// Register attaches the service's routes to mux — typically the mux that
// already serves /metrics and /healthz, so one listener carries both the
// data plane and its observability.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleIngest)
	mux.HandleFunc("GET /v1/sessions/{id}/verdicts", s.handleVerdicts)
	mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleStats)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleFinalize)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
}

// SessionCount returns (live, spilled) session counts.
func (s *Server) SessionCount() (live, spilled int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live = s.lru.Len()
	return live, len(s.sessions) - live
}

// IngestResponse is the JSON body of every ingest reply, success or error.
type IngestResponse struct {
	Session  string `json:"session"`
	Acked    uint64 `json:"acked"`    // checkpoint: events applied so far
	Ingested uint64 `json:"ingested"` // events applied by this request
	Error    string `json:"error,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// VerdictJSON is one sink verdict on the wire.
type VerdictJSON struct {
	Tag     int    `json:"tag"`
	PID     uint32 `json:"pid"`
	Seq     uint64 `json:"seq"`
	Tainted bool   `json:"tainted"`
}

// VerdictsResponse is the GET /verdicts and DELETE reply body.
type VerdictsResponse struct {
	Session  string        `json:"session"`
	Acked    uint64        `json:"acked"`
	Verdicts []VerdictJSON `json:"verdicts"`
}

// StatsResponse is the GET /stats reply body.
type StatsResponse struct {
	Session  string     `json:"session"`
	State    string     `json:"state"` // "live" or "spilled"
	Acked    uint64     `json:"acked"`
	Verdicts int        `json:"verdicts"`
	Stats    core.Stats `json:"stats"`
}

// SessionSummary is one row of GET /v1/sessions.
type SessionSummary struct {
	Session string `json:"session"`
	State   string `json:"state"`
	Acked   uint64 `json:"acked"`
}

// ListResponse is the GET /v1/sessions reply body.
type ListResponse struct {
	Live     int              `json:"live"`
	Spilled  int              `json:"spilled"`
	Sessions []SessionSummary `json:"sessions"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// reject429 answers an admission-control rejection with the retry hint.
func (s *Server) reject429(w http.ResponseWriter, id, code string) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusTooManyRequests, IngestResponse{
		Session: id, Error: code,
	})
}

// ingestBatchSize bounds the per-stream decode scratch (~32 KiB).
const ingestBatchSize = 1024

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Admission gate 1: the global concurrent-stream cap.
	select {
	case s.streams <- struct{}{}:
		defer func() { <-s.streams }()
	default:
		s.m.streamsRejected.Inc()
		s.reject429(w, id, "server-busy")
		return
	}
	s.m.streamsInFlight.Inc()
	defer s.m.streamsInFlight.Dec()

	sess := s.getOrCreate(id)
	// Admission gate 2: per-tenant backpressure — one stream per session.
	if !sess.mu.TryLock() {
		sess.mStalls.Inc()
		s.reject429(w, id, "tenant-busy")
		return
	}

	start := time.Now()
	resp, ierr := s.ingestLocked(sess, r)
	sess.mu.Unlock()
	// Shedding runs after the session lock drops, so the freshly touched
	// session is itself evictable if it alone overflows the budget.
	s.enforceBudget()
	s.m.ingestSeconds.Observe(time.Since(start).Seconds())
	s.m.liveBytes.Set(s.currentLiveBytes())

	if ierr != nil {
		s.m.ingestErrors.Inc()
		resp.Error = ierr.Code
		resp.Detail = ierr.Err.Error()
		w.Header().Set("PIFT-Ack-Offset", strconv.FormatUint(resp.Acked, 10))
		writeJSON(w, ierr.Status, resp)
		return
	}
	w.Header().Set("PIFT-Ack-Offset", strconv.FormatUint(resp.Acked, 10))
	writeJSON(w, http.StatusOK, resp)
}

// ingestLocked streams one request body into sess's tracker. Caller holds
// sess.mu. Events decoded before any failure are committed and reflected
// in the returned ack — the resume contract (the parallel streaming path
// commits at CommitEvery-aligned offsets; every other path commits every
// decoded event, exactly as the sequential server always has).
//
// Routing: the fixed 16-byte wire header — identical in shape for
// PIFTTRC1 and PIFTTRC2, so the magic and declared event count are
// known before any decode path is chosen — is pre-read. Small or
// budget-starved requests take the legacy sequential loop; large ones
// fan out across pipeline shards, preferring the seekable shard-owned
// drain over a spooled copy of the body and falling back to the push
// path when the body is too big to spool (or, for v2, when the
// transport didn't declare a length to spool by).
//
// Both formats share one resume contract, expressed in event counts: a
// cut PIFTTRC1 body acks at the exact event the cut landed on, a cut
// PIFTTRC2 body at the last whole block decoded before it — the reader
// refuses a torn or CRC-damaged block outright, so no partial-block
// event is ever applied — and the client resends from the ack either
// way.
func (s *Server) ingestLocked(sess *session, r *http.Request) (IngestResponse, *IngestError) {
	resp := IngestResponse{Session: sess.id, Acked: sess.acked.Load()}
	if sess.tr == nil && !sess.spilled.Load() {
		// Finalized by a concurrent DELETE between map fetch and lock.
		return resp, &IngestError{
			Status: http.StatusGone, Code: "finalized",
			Err: fmt.Errorf("session %q was finalized", sess.id),
		}
	}
	if sess.spilled.Load() {
		if err := s.hydrate(sess); err != nil {
			// The one genuinely server-side failure in the ingest path.
			return resp, &IngestError{
				Status: http.StatusInternalServerError, Code: "hydrate-failed", Err: err,
			}
		}
	}

	// Where in the tenant's absolute event stream does this body start?
	var bodyStart uint64
	if h := r.Header.Get("PIFT-Offset"); h != "" {
		v, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			return resp, &IngestError{
				Status: http.StatusBadRequest, Code: "bad-offset",
				Err: fmt.Errorf("PIFT-Offset %q: %w", h, err),
			}
		}
		bodyStart = v
	}
	acked := sess.acked.Load()
	if bodyStart > acked {
		return resp, &IngestError{
			Status: http.StatusConflict, Code: "offset-gap",
			Err: fmt.Errorf("body starts at event %d but session has acknowledged %d", bodyStart, acked),
		}
	}

	cr := &countingBody{r: r.Body}
	defer func() {
		sess.mBytes.Add(uint64(cr.n))
		s.m.ingestBytes.Add(uint64(cr.n))
	}()
	// Pre-read the fixed-size header. Parsing it through trace.NewReader
	// over exactly the bytes (and terminal error) the body yielded keeps
	// the error classification byte-for-byte what the legacy in-line
	// reader produced on short, garbled, or reset-mid-header bodies.
	var hdr [trace.HeaderSize]byte
	hn, herr := io.ReadFull(cr, hdr[:])
	htr, err := trace.NewReader(headerBytes(hdr[:hn], herr))
	if err != nil {
		return resp, classifyIngest(err)
	}
	declared := htr.Len()
	// Deduplicate the overlap: events before the ack were applied by an
	// earlier request (or an earlier attempt of this one).
	skip := acked - bodyStart
	if skip > 0 && skip >= declared {
		return resp, nil // the whole body is a duplicate
	}

	verdictsBefore := len(sess.tr.Verdicts())
	if grant := s.grantWorkers(declared - skip); grant > 1 {
		s.m.workersLoaned.Add(int64(grant))
		defer func() {
			s.budget.release(grant)
			s.m.workersLoaned.Add(int64(-grant))
		}()
		// How many body bytes must the spool capture? PIFTTRC1 is pure
		// arithmetic over the fixed record stride. PIFTTRC2 blocks have no
		// size formula, so the transport's declared length stands in; a
		// chunked v2 body (ContentLength < 0) can't be sized and streams.
		expect := int64(trace.HeaderSize) + int64(declared)*trace.EventSize
		if htr.Format() == trace.FormatV2 {
			expect = r.ContentLength
		}
		resp, ierr := s.ingestParallel(sess, cr, hdr[:], expect, declared, skip, grant, resp)
		s.finishIngest(sess, &resp, verdictsBefore)
		return resp, ierr
	}

	tr, err := trace.NewReader(io.MultiReader(headerBytes(hdr[:hn], herr), cr))
	if err != nil {
		return resp, classifyIngest(err)
	}
	if skip > 0 {
		if err := tr.Skip(skip); err != nil {
			return resp, classifyIngest(err)
		}
	}
	ierr := drainSequential(sess, tr, &resp)
	s.finishIngest(sess, &resp, verdictsBefore)
	return resp, ierr
}

// drainSequential is the legacy single-tracker decode loop: every decoded
// event is applied and acknowledged immediately, so a cut stream acks at
// the exact event the cut landed on.
func drainSequential(sess *session, tr *trace.Reader, resp *IngestResponse) *IngestError {
	dst := make([]cpu.Event, ingestBatchSize)
	for {
		n, err := tr.NextBatch(dst)
		for i := 0; i < n; i++ {
			sess.tr.Event(dst[i])
		}
		if n > 0 {
			sess.acked.Add(uint64(n))
			resp.Ingested += uint64(n)
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return classifyIngest(err)
		}
	}
}

// finishIngest settles per-request bookkeeping common to every drain
// path: the response ack, tenant metric deltas, the snapshot-cache
// generation bump, and the LRU touch.
func (s *Server) finishIngest(sess *session, resp *IngestResponse, verdictsBefore int) {
	resp.Acked = sess.acked.Load()
	sess.mEvents.Add(resp.Ingested)
	sess.mVerdicts.Add(uint64(len(sess.tr.Verdicts()) - verdictsBefore))
	if resp.Ingested > 0 {
		sess.gen.Add(1)
	}
	s.touch(sess)
}

// headerBytes replays a pre-read body prefix as a reader that ends with
// the terminal error the body actually produced (terr nil for a complete
// read), so downstream decoding classifies short or reset bodies exactly
// as if it had read the body directly.
func headerBytes(prefix []byte, terr error) io.Reader {
	r := io.Reader(bytes.NewReader(prefix))
	if terr != nil {
		r = &tornTail{r: r, err: terr}
	}
	return r
}

// tornTail yields r's bytes, then its recorded error in place of io.EOF.
type tornTail struct {
	r   io.Reader
	err error
}

func (t *tornTail) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = t.err
	}
	return n, err
}

// countingBody counts bytes drawn from a request body, for per-tenant
// ingress accounting.
type countingBody struct {
	r io.Reader
	n int64
}

func (c *countingBody) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) currentLiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// withSession runs fn with the session's state, hydrating a peek copy for
// spilled sessions without changing their residency — a read-only query
// against 10k dormant sessions must not thrash the LRU.
func (s *Server) withSession(w http.ResponseWriter, r *http.Request, fn func(sess *session, tr *core.Tracker)) {
	id := r.PathValue("id")
	sess := s.lookup(id)
	if sess == nil {
		writeJSON(w, http.StatusNotFound, IngestResponse{Session: id, Error: "unknown-session"})
		return
	}
	if !sess.mu.TryLock() {
		sess.mStalls.Inc()
		s.reject429(w, id, "tenant-busy")
		return
	}
	defer sess.mu.Unlock()
	tr := sess.tr
	if tr == nil && !sess.spilled.Load() {
		writeJSON(w, http.StatusNotFound, IngestResponse{Session: id, Error: "unknown-session"})
		return
	}
	if sess.spilled.Load() {
		var err error
		tr, err = s.peekSnapshot(sess)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, IngestResponse{
				Session: id, Error: "hydrate-failed", Detail: err.Error(),
			})
			return
		}
	}
	fn(sess, tr)
}

func verdictsJSON(tr *core.Tracker) []VerdictJSON {
	vs := tr.Verdicts()
	out := make([]VerdictJSON, len(vs))
	for i, v := range vs {
		out[i] = VerdictJSON{Tag: v.Tag, PID: v.PID, Seq: v.Seq, Tainted: v.Tainted}
	}
	return out
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *session, tr *core.Tracker) {
		writeJSON(w, http.StatusOK, VerdictsResponse{
			Session:  sess.id,
			Acked:    sess.acked.Load(),
			Verdicts: verdictsJSON(tr),
		})
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *session, tr *core.Tracker) {
		state := "live"
		if sess.spilled.Load() {
			state = "spilled"
		}
		writeJSON(w, http.StatusOK, StatsResponse{
			Session:  sess.id,
			State:    state,
			Acked:    sess.acked.Load(),
			Verdicts: len(tr.Verdicts()),
			Stats:    tr.Stats(),
		})
	})
}

// handleFinalize answers with the session's final verdicts and releases
// every resource it held — memory, LRU slot, spill file. Finalize blocks
// behind an in-flight ingest rather than racing it.
func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookup(id)
	if sess == nil {
		writeJSON(w, http.StatusNotFound, IngestResponse{Session: id, Error: "unknown-session"})
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	tr := sess.tr
	if tr == nil && !sess.spilled.Load() {
		writeJSON(w, http.StatusNotFound, IngestResponse{Session: id, Error: "unknown-session"})
		return
	}
	if sess.spilled.Load() {
		var err error
		tr, err = s.peekSnapshot(sess)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, IngestResponse{
				Session: id, Error: "hydrate-failed", Detail: err.Error(),
			})
			return
		}
	}
	resp := VerdictsResponse{
		Session:  sess.id,
		Acked:    sess.acked.Load(),
		Verdicts: verdictsJSON(tr),
	}
	s.remove(sess)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := ListResponse{Live: s.lru.Len()}
	resp.Spilled = len(s.sessions) - resp.Live
	resp.Sessions = make([]SessionSummary, 0, len(s.sessions))
	for id, sess := range s.sessions {
		state := "live"
		if sess.spilled.Load() {
			state = "spilled"
		}
		resp.Sessions = append(resp.Sessions, SessionSummary{
			Session: id, State: state, Acked: sess.acked.Load(),
		})
	}
	s.mu.Unlock()
	sortSummaries(resp.Sessions)
	writeJSON(w, http.StatusOK, resp)
}
