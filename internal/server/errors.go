package server

import (
	"errors"
	"io"
	"net/http"

	"repro/internal/trace"
)

// IngestError is the typed verdict on a failed ingest stream: a stable
// machine-readable code, the HTTP status it maps to, and the underlying
// cause. The taxonomy mirrors trace.Reader's sentinels so a client can
// distinguish "my upload was cut — resend from the acknowledged offset"
// from "my bytes are garbage — do not retry them".
type IngestError struct {
	Status int    // HTTP status code
	Code   string // stable machine-readable class
	Err    error  // underlying cause
}

func (e *IngestError) Error() string {
	if e.Err == nil {
		return e.Code
	}
	return e.Code + ": " + e.Err.Error()
}

func (e *IngestError) Unwrap() error { return e.Err }

// classifyIngest maps a trace-decode or body-read failure onto the HTTP
// taxonomy. Every class is a client-side condition: a disconnect
// mid-record, a truncated body, or corrupt bytes are never the server's
// fault, so nothing here maps to a 5xx — the historical failure mode this
// exists to prevent is io.ErrUnexpectedEOF leaking out of trace.Reader
// and turning a dropped phone connection into a 500.
func classifyIngest(err error) *IngestError {
	switch {
	case errors.Is(err, trace.ErrBadMagic):
		// Not a PIFTTRC1 stream at all: reject the request wholesale.
		return &IngestError{Status: http.StatusBadRequest, Code: "not-a-trace", Err: err}
	case errors.Is(err, trace.ErrTooLarge):
		// The header promises more events than the sanity cap allows.
		return &IngestError{Status: http.StatusRequestEntityTooLarge, Code: "too-large", Err: err}
	case errors.Is(err, trace.ErrCorrupt):
		// Intact-length but semantically impossible bytes: retrying the
		// same payload cannot succeed.
		return &IngestError{Status: http.StatusUnprocessableEntity, Code: "corrupt-record", Err: err}
	case errors.Is(err, trace.ErrTruncated), errors.Is(err, io.ErrUnexpectedEOF):
		// The stream ended before its declared count — a cut upload or a
		// client disconnect mid-record. Everything decoded before the cut
		// is committed and acknowledged; the client resumes from the ack.
		return &IngestError{Status: http.StatusBadRequest, Code: "truncated", Err: err}
	default:
		// Any other body-read failure (connection reset, request canceled)
		// is the client vanishing mid-stream: same contract as truncation.
		return &IngestError{Status: http.StatusBadRequest, Code: "disconnected", Err: err}
	}
}
