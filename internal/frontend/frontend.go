// Package frontend is the front-end-agnostic surface between guest
// virtual machines and the rest of the platform. A front end owns a guest
// bytecode (the register-based Dalvik-like VM in internal/dalvik, the
// stack VM in internal/stackvm), lowers programs into ARM templates via a
// shared assembler, and produces the same cpu event stream — so the trace
// codec, the sharded pipeline, the trackers, and the eval harness never
// see which VM generated the traffic.
//
// The contract has three layers:
//
//   - Program: one guest program, translatable into an Image.
//   - Frontend: the VM itself — a name plus measurable translation
//     templates (the Table 1 surface).
//   - Suite: a benchmark family — apps with ground-truth verdicts for one
//     front end.
package frontend

import (
	"repro/internal/arm"
	"repro/internal/mem"
)

// Mode selects the translation strategy, mirroring the execution tiers of
// the paper's §4.1. Both front ends implement all three tiers.
type Mode uint8

const (
	// ModeInterp is the baseline interpreter shape: full dispatch
	// (operand decode, bytecode fetch-advance, opcode extract, handler
	// branch) around every template. All template distances are measured
	// in this mode.
	ModeInterp Mode = iota
	// ModeJIT fuses the opcode extraction and the dispatch branch of
	// straight-line templates, as Dalvik's trace JIT does for hot code.
	// The bytecode fetch loads remain.
	ModeJIT
	// ModeAOT is the ahead-of-time shape: compiled methods carry no
	// interpreter state at all — no pc, no bytecode fetches, no dispatch.
	// Only the data loads and stores remain.
	ModeAOT
)

func (m Mode) String() string {
	switch m {
	case ModeInterp:
		return "interp"
	case ModeJIT:
		return "jit"
	case ModeAOT:
		return "aot"
	}
	return "mode?"
}

// Runtime is what a translator needs from the runtime layer (internal/jrt
// plus the framework): interned string objects and native entry labels for
// external methods. Both front ends share one runtime implementation.
type Runtime interface {
	// InternString returns the address of the String object for a literal.
	InternString(s string) mem.Addr
	// ExternEntry returns the native label of an external method or
	// helper routine ("rt.alloc", "StringBuilder.append", framework
	// methods, ...).
	ExternEntry(name string) (label string, ok bool)
}

// Mem is the slice of machine memory a translated image needs for
// materialization (the loader mapping guest bytecode into data memory).
type Mem interface {
	Store16(mem.Addr, uint16)
	Store32(mem.Addr, uint32)
}

// Image is a translated program: an entry label resolvable in the shared
// assembler, plus whatever guest data (bytecode units, tables) must be
// mapped into memory before the process starts.
type Image interface {
	// EntryLabel names the bootstrap label the process starts at.
	EntryLabel() string
	// Materialize writes the guest bytecode and tables into data memory.
	// These writes model the loader, not program stores.
	Materialize(m Mem)
}

// Program is one guest program of any front end.
type Program interface {
	// ProgramName identifies the program (app or sample name).
	ProgramName() string
	// Translate lowers every function into native templates in the shared
	// assembler at the given tier and returns the linkage metadata. The
	// caller finishes the assembler afterwards.
	Translate(asm *arm.Assembler, rt Runtime, mode Mode) (Image, error)
	// Instructions is the static guest-bytecode instruction count.
	Instructions() int
	// OpCounts tallies the program's opcodes by mnemonic (the static
	// frequency surface of Figure 10).
	OpCounts() map[string]int
	// Dump renders a human-readable bytecode listing.
	Dump() string
}

// Translate lowers a program at the default (interpreter) tier.
func Translate(prog Program, asm *arm.Assembler, rt Runtime) (Image, error) {
	return prog.Translate(asm, rt, ModeInterp)
}

// TemplateInfo describes one translation template's measured memory
// behavior: whether the guest op moves actual data, and the native
// load→store distance of its template (the Table 1 measurement).
type TemplateInfo struct {
	// Op is the guest opcode mnemonic.
	Op string
	// MovesData reports whether the op copies program data (as opposed to
	// pure control or register-only arithmetic).
	MovesData bool
	// HelperCall reports that the template spans an opaque ABI helper
	// call, making the distance unknown.
	HelperCall bool
	// Distance is the measured load→store distance in native
	// instructions; valid only when HasDistance.
	Distance    int
	HasDistance bool
}

// Frontend is one guest VM: a stable name (used in flags, metrics labels,
// and per-frontend breakdowns) and live-measured translation templates.
type Frontend interface {
	// Name is the flag-friendly identifier ("dalvik", "stackvm").
	Name() string
	// Templates translates a program exercising every opcode and returns
	// one entry per template instance, in translation order. Callers
	// dedupe by Op when they want per-opcode tables.
	Templates() ([]TemplateInfo, error)
}

// App is one benchmark application of a suite, with its ground truth.
type App struct {
	Name     string
	Category string
	// Leaky is the ground truth: the app is constructed to send sensitive
	// data to a sink.
	Leaky bool
	// InSubset marks membership in the 48-app heatmap subset (Figure 11);
	// only meaningful for the Dalvik DroidBench suite.
	InSubset bool
	Prog     Program
}

// Suite is a benchmark family for one front end: apps plus their expected
// verdicts (the Leaky ground truth carried by each App).
type Suite interface {
	// Name identifies the suite.
	Name() string
	// Frontend is the VM the suite's programs target.
	Frontend() Frontend
	// Apps returns the applications in a stable order.
	Apps() []App
}
