package frontend

import (
	"repro/internal/arm"
	"repro/internal/mem"
)

// Memory map shared by every front end. The exact values are arbitrary;
// what matters is that the regions are disjoint so taint ranges never alias
// across them, and that the runtime (internal/jrt) and the framework agree
// on them with whichever translator produced the code.
const (
	// CodeBase is where the native image starts (instruction fetch only;
	// never appears in data-memory events).
	CodeBase mem.Addr = 0x4000_0000
	// BytecodeBase holds the guest code units the interpreter templates
	// fetch with "ldrh rINST, [rPC, #2]!" — real data loads, as on the
	// paper's platform.
	BytecodeBase mem.Addr = 0x3000_0000
	// TableBase holds branch tables (4-byte case values).
	TableBase mem.Addr = 0x2c00_0000
	// StaticsBase holds static fields, one 4-byte slot each.
	StaticsBase mem.Addr = 0x2000_0000
	// SelfBase is the per-thread interpreter state block; the return-value
	// slot lives at offset RetvalOffset.
	SelfBase mem.Addr = 0x1000_0000
	// HeapBase is where the runtime's bump allocator starts.
	HeapBase mem.Addr = 0x0800_0000
	// FrameTop is the top of the guest frame stack; frames grow down
	// from here.
	FrameTop mem.Addr = 0xbef0_0000
	// StackTop is the native SP used by intrinsics that push.
	StackTop mem.Addr = 0xbf00_0000
)

// RetvalOffset is the byte offset of the method return-value slot within
// the self block. Extern routines (intrinsics and framework methods)
// deliver results through it regardless of the calling front end.
const RetvalOffset = 0

// RSelf is the register holding the per-thread state block pointer. It is
// part of the extern calling convention — intrinsics store results through
// it — so every front end must keep it live across calls.
const RSelf = arm.R6
