package frontend

import "testing"

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeInterp: "interp",
		ModeJIT:    "jit",
		ModeAOT:    "aot",
		Mode(99):   "mode?",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}
