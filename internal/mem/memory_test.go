package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := NewMemory()
	if v := m.Load32(0x1234); v != 0 {
		t.Fatalf("untouched memory reads %#x, want 0", v)
	}
	if m.PageCount() != 0 {
		t.Fatal("read must not allocate pages")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Store32(0x1000, 0xdeadbeef)
	if v := m.Load32(0x1000); v != 0xdeadbeef {
		t.Fatalf("Load32 = %#x", v)
	}
	// Little-endian byte order.
	if b := m.LoadByte(0x1000); b != 0xef {
		t.Fatalf("low byte = %#x, want 0xef", b)
	}
	if b := m.LoadByte(0x1003); b != 0xde {
		t.Fatalf("high byte = %#x, want 0xde", b)
	}
}

func TestHalfwordAccess(t *testing.T) {
	m := NewMemory()
	m.Store16(0x2000, 0xabcd)
	if v := m.Load16(0x2000); v != 0xabcd {
		t.Fatalf("Load16 = %#x", v)
	}
	if v := m.Load32(0x2000); v != 0xabcd {
		t.Fatalf("Load32 over halfword = %#x", v)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := Addr(pageSize - 2) // word straddles the first page boundary
	m.Store32(addr, 0x11223344)
	if v := m.Load32(addr); v != 0x11223344 {
		t.Fatalf("cross-page Load32 = %#x", v)
	}
	if m.PageCount() != 2 {
		t.Fatalf("PageCount = %d, want 2", m.PageCount())
	}
}

func Test64BitAccess(t *testing.T) {
	m := NewMemory()
	m.Store(0x3000, 8, 0x0102030405060708)
	if v := m.Load(0x3000, 8); v != 0x0102030405060708 {
		t.Fatalf("64-bit load = %#x", v)
	}
	if v := m.Load32(0x3004); v != 0x01020304 {
		t.Fatalf("high word = %#x", v)
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := NewMemory()
	in := []byte("predictive information-flow tracking")
	m.WriteBytes(0x4000, in)
	if got := m.ReadBytes(0x4000, len(in)); !bytes.Equal(got, in) {
		t.Fatalf("ReadBytes = %q", got)
	}
}

// Property: for any address and word value, a 4-byte store followed by a
// 4-byte load returns the value, and byte decomposition is little-endian.
func TestStoreLoadQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint32) bool {
		a := Addr(addr % 0xfffffff0)
		m.Store32(a, v)
		if m.Load32(a) != v {
			return false
		}
		for i := 0; i < 4; i++ {
			if m.LoadByte(a+Addr(i)) != byte(v>>(8*i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: narrow stores only disturb their own bytes.
func TestNarrowStoreIsolationQuick(t *testing.T) {
	f := func(addr uint32, word uint32, b byte) bool {
		m := NewMemory()
		a := Addr(addr % 0xfffffff0)
		m.Store32(a, word)
		m.StoreByte(a+1, b)
		want := word&0xffff00ff | uint32(b)<<8
		return m.Load32(a) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
