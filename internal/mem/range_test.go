package mem

import (
	"testing"
	"testing/quick"
)

func TestMakeRange(t *testing.T) {
	r := MakeRange(0x1000, 4)
	if r.Start != 0x1000 || r.End != 0x1003 {
		t.Fatalf("MakeRange(0x1000,4) = %v", r)
	}
	if got := r.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	one := MakeRange(7, 1)
	if one.Start != 7 || one.End != 7 {
		t.Fatalf("single-byte range = %v", one)
	}
}

func TestMakeRangeZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeRange(0,0) did not panic")
		}
	}()
	MakeRange(0, 0)
}

func TestContains(t *testing.T) {
	r := Range{10, 20}
	for _, tc := range []struct {
		addr Addr
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {20, true}, {21, false},
	} {
		if got := r.Contains(tc.addr); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.addr, got, tc.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{Range{0, 5}, Range{5, 10}, true},  // touch at one byte
		{Range{0, 5}, Range{6, 10}, false}, // adjacent, no shared byte
		{Range{0, 10}, Range{3, 4}, true},  // containment
		{Range{3, 4}, Range{0, 10}, true},  // containment, flipped
		{Range{0, 0}, Range{0, 0}, true},   // identical single byte
		{Range{100, 200}, Range{0, 99}, false},
		{Range{0x7103a0a4, 0x7103a0c0}, Range{0x7103a0c0, 0x7103a0c4}, true},
	}
	for _, tc := range cases {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("overlap not symmetric for %v, %v", tc.a, tc.b)
		}
	}
}

func TestAdjacent(t *testing.T) {
	if !(Range{0, 5}).Adjacent(Range{6, 10}) {
		t.Error("[0,5] should be adjacent to [6,10]")
	}
	if !(Range{6, 10}).Adjacent(Range{0, 5}) {
		t.Error("adjacency should be symmetric")
	}
	if (Range{0, 5}).Adjacent(Range{7, 10}) {
		t.Error("[0,5] should not be adjacent to [7,10]")
	}
	if (Range{0, 5}).Adjacent(Range{5, 10}) {
		t.Error("overlapping ranges are not adjacent")
	}
	// End at the top of the address space must not wrap around.
	top := Range{^Addr(0) - 3, ^Addr(0)}
	if top.Adjacent(Range{0, 3}) {
		t.Error("range ending at 0xffffffff must not be adjacent to [0,3]")
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := Range{0, 10}, Range{5, 20}
	if got := a.Union(b); got != (Range{0, 20}) {
		t.Errorf("Union = %v", got)
	}
	got, ok := a.Intersect(b)
	if !ok || got != (Range{5, 10}) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := (Range{0, 4}).Intersect(Range{6, 9}); ok {
		t.Error("disjoint ranges must not intersect")
	}
}

// Property: Overlaps is equivalent to a brute-force shared-byte check for
// small ranges, and is symmetric.
func TestOverlapsQuick(t *testing.T) {
	f := func(s1 uint16, l1 uint8, s2 uint16, l2 uint8) bool {
		a := MakeRange(Addr(s1), uint32(l1)+1)
		b := MakeRange(Addr(s2), uint32(l2)+1)
		brute := false
		for x := a.Start; ; x++ {
			if b.Contains(x) {
				brute = true
			}
			if x == a.End {
				break
			}
		}
		return a.Overlaps(b) == brute && b.Overlaps(a) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersect(a,b) is contained in both; Union contains both.
func TestUnionIntersectQuick(t *testing.T) {
	f := func(s1 uint32, l1 uint8, s2 uint32, l2 uint8) bool {
		// Keep away from the top of the address space to avoid overflow
		// in MakeRange.
		a := MakeRange(s1%0xf0000000, uint32(l1)+1)
		b := MakeRange(s2%0xf0000000, uint32(l2)+1)
		u := a.Union(b)
		if !u.ContainsRange(a) || !u.ContainsRange(b) {
			return false
		}
		if i, ok := a.Intersect(b); ok {
			return a.ContainsRange(i) && b.ContainsRange(i)
		}
		return !a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
