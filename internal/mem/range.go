// Package mem provides the simulated physical memory used by the CPU model
// and the address-range type shared by every layer of the PIFT stack.
//
// The paper's taint machinery is defined over inclusive address ranges
// r = [s, e] (Algorithm 1), so Range uses inclusive bounds: a single byte at
// address a is Range{a, a}.
package mem

import "fmt"

// Addr is a 32-bit physical address, matching the paper's ARMv7 target.
type Addr = uint32

// Range is an inclusive address range [Start, End].
//
// The zero Range is the single byte at address 0; use MakeRange to build a
// range from a start address and a byte length.
type Range struct {
	Start Addr
	End   Addr
}

// MakeRange returns the range covering size bytes starting at start.
// size must be at least 1; MakeRange panics otherwise, since a zero-length
// memory access is a program bug in the simulator, not a recoverable error.
func MakeRange(start Addr, size uint32) Range {
	if size == 0 {
		panic("mem: MakeRange with zero size")
	}
	return Range{Start: start, End: start + size - 1}
}

// Size returns the number of bytes the range covers.
func (r Range) Size() uint64 {
	return uint64(r.End) - uint64(r.Start) + 1
}

// Contains reports whether addr lies inside r.
func (r Range) Contains(addr Addr) bool {
	return r.Start <= addr && addr <= r.End
}

// Overlaps reports whether r and o share at least one byte. This is the
// paper's overlap test: max(si, sL) <= min(ei, eL).
func (r Range) Overlaps(o Range) bool {
	return max(r.Start, o.Start) <= min(r.End, o.End)
}

// ContainsRange reports whether o lies entirely within r.
func (r Range) ContainsRange(o Range) bool {
	return r.Start <= o.Start && o.End <= r.End
}

// Adjacent reports whether o begins exactly one byte past r or vice versa,
// i.e. the two ranges can be merged into one contiguous range even though
// they do not overlap.
func (r Range) Adjacent(o Range) bool {
	return (r.End != ^Addr(0) && r.End+1 == o.Start) ||
		(o.End != ^Addr(0) && o.End+1 == r.Start)
}

// Union returns the smallest range covering both r and o. It is intended
// for overlapping or adjacent ranges; for disjoint ranges it also covers the
// gap between them.
func (r Range) Union(o Range) Range {
	return Range{Start: min(r.Start, o.Start), End: max(r.End, o.End)}
}

// Intersect returns the overlap of r and o. ok is false when they are
// disjoint.
func (r Range) Intersect(o Range) (Range, bool) {
	s, e := max(r.Start, o.Start), min(r.End, o.End)
	if s > e {
		return Range{}, false
	}
	return Range{Start: s, End: e}, true
}

func (r Range) String() string {
	return fmt.Sprintf("[0x%08x,0x%08x]", r.Start, r.End)
}
