package mem

import "fmt"

// pageShift selects a 4 KiB page, the same granularity as the ARM MMU the
// paper's platform uses. Pages are allocated lazily so a sparse 4 GiB
// address space costs only what the workload touches.
const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, little-endian, byte-addressable 32-bit memory.
//
// It stands in for the DRAM of the simulated SoC. All accesses are
// unaligned-tolerant (the simulator never traps on alignment) because the
// taint machinery only cares about which byte ranges move, not about bus
// faults.
type Memory struct {
	pages map[Addr]*[pageSize]byte
}

// NewMemory returns an empty memory; every byte reads as zero until written.
func NewMemory() *Memory {
	return &Memory{pages: make(map[Addr]*[pageSize]byte)}
}

func (m *Memory) page(addr Addr, create bool) *[pageSize]byte {
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr Addr) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr Addr, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Load reads size bytes (1, 2, 4, or 8) at addr, little-endian.
// Values narrower than 8 bytes are zero-extended.
func (m *Memory) Load(addr Addr, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.LoadByte(addr+Addr(i))) << (8 * i)
	}
	return v
}

// Store writes the low size bytes (1, 2, 4, or 8) of v at addr,
// little-endian.
func (m *Memory) Store(addr Addr, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.StoreByte(addr+Addr(i), byte(v>>(8*i)))
	}
}

// Load32 reads a 32-bit word at addr.
func (m *Memory) Load32(addr Addr) uint32 { return uint32(m.Load(addr, 4)) }

// Store32 writes a 32-bit word at addr.
func (m *Memory) Store32(addr Addr, v uint32) { m.Store(addr, 4, uint64(v)) }

// Load16 reads a 16-bit halfword at addr.
func (m *Memory) Load16(addr Addr) uint16 { return uint16(m.Load(addr, 2)) }

// Store16 writes a 16-bit halfword at addr.
func (m *Memory) Store16(addr Addr, v uint16) { m.Store(addr, 2, uint64(v)) }

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr Addr, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + Addr(i))
	}
	return out
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr Addr, b []byte) {
	for i, v := range b {
		m.StoreByte(addr+Addr(i), v)
	}
}

// PageCount reports how many distinct 4 KiB pages have been touched;
// useful in tests and capacity diagnostics.
func (m *Memory) PageCount() int { return len(m.pages) }

// Dump renders n bytes at addr as hex for debugging.
func (m *Memory) Dump(addr Addr, n int) string {
	b := m.ReadBytes(addr, n)
	return fmt.Sprintf("%08x: % x", addr, b)
}
