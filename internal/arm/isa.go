// Package arm defines the ARMv7-like instruction set executed by the
// simulated CPU (internal/cpu).
//
// The paper evaluates PIFT on an ARM SoC simulated by gem5; PIFT itself only
// observes the dynamic instruction stream (which instructions are memory
// loads/stores and which byte ranges they touch). This package therefore
// models the subset of ARMv7 that the Dalvik-to-native translation templates
// and the runtime intrinsics need, with faithful load/store shapes
// (byte/halfword/word/dual/multiple, all addressing modes) and enough ALU,
// flag, and branch semantics to actually execute the workloads rather than
// merely replaying canned traces.
package arm

import "repro/internal/mem"

// Reg names one of the sixteen ARM core registers.
type Reg uint8

// Core registers. The Dalvik mterp register conventions used by the
// translator (rPC, rFP, rSELF, rINST, rIBASE) are defined in the dalvik
// package on top of these.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13
	LR // R14
	PC // R15
)

// NumRegs is the size of the core register file.
const NumRegs = 16

var regNames = [NumRegs]string{
	"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return "r?"
}

// Op enumerates the implemented operations.
type Op uint8

const (
	// OpNOP does nothing but still advances the per-process instruction
	// counter, which is what the tainting window is measured in.
	OpNOP Op = iota

	// Data-processing (register/immediate operand2, optional flag update).
	OpMOV
	OpMVN
	OpADD
	OpADC
	OpSUB
	OpSBC
	OpRSB
	OpAND
	OpORR
	OpEOR
	OpBIC
	OpCMP // flags only
	OpCMN // flags only
	OpTST // flags only
	OpTEQ // flags only

	// Multiply. UMULL writes the full 64-bit product to Rd (low) and Ra
	// (high); the 64-bit bytecode templates need it.
	OpMUL
	OpMLA
	OpUMULL

	// Shifts as explicit operations (ARM encodes them as MOV-with-shift;
	// keeping them distinct makes templates and disassembly clearer).
	OpLSL
	OpLSR
	OpASR

	// Bit-field and extension ops used heavily by mterp operand decoding.
	OpUBFX
	OpSBFX
	OpUXTH
	OpSXTH
	OpUXTB
	OpSXTB
	OpCLZ

	// Loads. D variants move two registers (8 bytes); M variants move a
	// register list.
	OpLDR
	OpLDRB
	OpLDRH
	OpLDRSB
	OpLDRSH
	OpLDRD
	OpLDM

	// Stores.
	OpSTR
	OpSTRB
	OpSTRH
	OpSTRD
	OpSTM

	// Branches. B/BL carry an absolute target (the assembler resolves
	// labels); BX branches to a register value (function return).
	OpB
	OpBL
	OpBX

	// OpSVC is the supervisor call used for process exit.
	OpSVC

	// OpBRIDGE transfers control to a registered host (Go) handler: the
	// runtime uses it for heap allocation, source registration, and sink
	// checks — operations the paper performs in the framework/kernel
	// layers, outside the traced CPU data path.
	OpBRIDGE

	opCount // must be last
)

var opNames = [...]string{
	OpNOP: "nop", OpMOV: "mov", OpMVN: "mvn", OpADD: "add", OpADC: "adc",
	OpSUB: "sub", OpSBC: "sbc", OpRSB: "rsb", OpAND: "and", OpORR: "orr",
	OpEOR: "eor", OpBIC: "bic", OpCMP: "cmp", OpCMN: "cmn", OpTST: "tst",
	OpTEQ: "teq", OpMUL: "mul", OpMLA: "mla", OpUMULL: "umull",
	OpLSL: "lsl", OpLSR: "lsr",
	OpASR: "asr", OpUBFX: "ubfx", OpSBFX: "sbfx", OpUXTH: "uxth",
	OpSXTH: "sxth", OpUXTB: "uxtb", OpSXTB: "sxtb", OpCLZ: "clz",
	OpLDR: "ldr", OpLDRB: "ldrb", OpLDRH: "ldrh", OpLDRSB: "ldrsb",
	OpLDRSH: "ldrsh", OpLDRD: "ldrd", OpLDM: "ldmia", OpSTR: "str",
	OpSTRB: "strb", OpSTRH: "strh", OpSTRD: "strd", OpSTM: "stmdb",
	OpB: "b", OpBL: "bl", OpBX: "bx", OpSVC: "svc", OpBRIDGE: "bridge",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// IsLoad reports whether the operation reads data memory. These are exactly
// the instructions the PIFT front-end reports as load events (paper §3.2:
// "ldr, ldrd, ldmia", plus the narrow variants).
func (o Op) IsLoad() bool {
	switch o {
	case OpLDR, OpLDRB, OpLDRH, OpLDRSB, OpLDRSH, OpLDRD, OpLDM:
		return true
	}
	return false
}

// IsStore reports whether the operation writes data memory ("str, strh,
// stmdb" in the paper, plus the remaining variants).
func (o Op) IsStore() bool {
	switch o {
	case OpSTR, OpSTRB, OpSTRH, OpSTRD, OpSTM:
		return true
	}
	return false
}

// IsMem reports whether the operation touches data memory at all.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// AccessSize returns the number of bytes a single-register memory op moves.
// LDRD/STRD move 8; LDM/STM sizes depend on the register list and are
// computed at execution time.
func (o Op) AccessSize() uint32 {
	switch o {
	case OpLDRB, OpLDRSB, OpSTRB:
		return 1
	case OpLDRH, OpLDRSH, OpSTRH:
		return 2
	case OpLDR, OpSTR, OpLDM, OpSTM:
		return 4
	case OpLDRD, OpSTRD:
		return 8
	}
	return 0
}

// Cond is an ARM condition code; every instruction is conditional.
type Cond uint8

const (
	AL Cond = iota // always
	EQ             // Z
	NE             // !Z
	CS             // C
	CC             // !C
	MI             // N
	PL             // !N
	VS             // V
	VC             // !V
	HI             // C && !Z
	LS             // !C || Z
	GE             // N == V
	LT             // N != V
	GT             // !Z && N == V
	LE             // Z || N != V
)

var condNames = [...]string{
	AL: "", EQ: "eq", NE: "ne", CS: "cs", CC: "cc", MI: "mi", PL: "pl",
	VS: "vs", VC: "vc", HI: "hi", LS: "ls", GE: "ge", LT: "lt", GT: "gt",
	LE: "le",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "??"
}

// ShiftKind is the barrel-shifter operation applied to the Rm operand.
type ShiftKind uint8

const (
	ShiftNone ShiftKind = iota
	ShiftLSL
	ShiftLSR
	ShiftASR
	ShiftROR
)

var shiftNames = [...]string{
	ShiftNone: "", ShiftLSL: "lsl", ShiftLSR: "lsr",
	ShiftASR: "asr", ShiftROR: "ror",
}

func (k ShiftKind) String() string {
	if int(k) < len(shiftNames) {
		return shiftNames[k]
	}
	return "shift?"
}

// Shift is a barrel-shifter specification: Kind by Amount bits.
type Shift struct {
	Kind   ShiftKind
	Amount uint8
}

// Indexing selects the memory addressing mode.
type Indexing uint8

const (
	// IdxOffset: address = Rn + offset; Rn unchanged.
	IdxOffset Indexing = iota
	// IdxPre: address = Rn + offset; Rn updated to the address ("[Rn, #x]!").
	IdxPre
	// IdxPost: address = Rn; Rn updated to Rn + offset ("[Rn], #x").
	IdxPost
)

// Instr is one decoded instruction. The simulator executes this symbolic
// form directly; there is no binary encoding step, but the fields mirror the
// information an ARM encoding carries, and a Disasm method renders standard
// assembly syntax.
type Instr struct {
	Op       Op
	Cond     Cond
	SetFlags bool // the "S" suffix: update NZCV

	Rd Reg // destination (or first transfer register for LDRD/STRD)
	Rn Reg // first operand / base register
	Rm Reg // second operand register (when !UseImm) / index register
	Ra Reg // accumulator (MLA) or second transfer register (LDRD/STRD)

	Imm    int32 // immediate operand2, memory offset, branch target, SVC/BRIDGE number
	UseImm bool  // operand2 / memory offset is Imm rather than shifted Rm

	Shift Shift    // barrel shift applied to Rm
	Idx   Indexing // addressing mode for memory ops

	RegList uint16 // LDM/STM register bitmask (bit i = Ri)

	Lsb, Width uint8 // UBFX/SBFX bit-field parameters
}

// Flags holds the NZCV condition flags.
type Flags struct {
	N, Z, C, V bool
}

// State is the architectural state of one hardware context: the register
// file and flags. Memory is shared and passed to Exec separately.
type State struct {
	R     [NumRegs]uint32
	Flags Flags
}

// Passes reports whether the condition holds under the given flags.
func (c Cond) Passes(f Flags) bool {
	switch c {
	case AL:
		return true
	case EQ:
		return f.Z
	case NE:
		return !f.Z
	case CS:
		return f.C
	case CC:
		return !f.C
	case MI:
		return f.N
	case PL:
		return !f.N
	case VS:
		return f.V
	case VC:
		return !f.V
	case HI:
		return f.C && !f.Z
	case LS:
		return !f.C || f.Z
	case GE:
		return f.N == f.V
	case LT:
		return f.N != f.V
	case GT:
		return !f.Z && f.N == f.V
	case LE:
		return f.Z || f.N != f.V
	}
	return false
}

// MemAccess records one data-memory access performed by an instruction:
// exactly the information the PIFT front-end logic forwards to the hardware
// module (access type and byte range).
type MemAccess struct {
	Store bool
	Range mem.Range
}

// maxAccesses bounds the accesses a single instruction can perform
// (LDM/STM with a full register list).
const maxAccesses = 16

// Result reports the side effects of executing one instruction. It is
// caller-allocated and reused to keep the hot execution loop allocation-free.
type Result struct {
	Acc      [maxAccesses]MemAccess
	NAcc     int
	Executed bool // false when the condition code failed
	Branched bool
	Target   uint32 // valid when Branched
	SVC      bool
	SVCNum   int32
	Bridge   bool
	BridgeID int32
}

func (r *Result) reset() {
	r.NAcc = 0
	r.Executed = true
	r.Branched = false
	r.SVC = false
	r.Bridge = false
}

func (r *Result) addAccess(store bool, rg mem.Range) {
	if r.NAcc < maxAccesses {
		r.Acc[r.NAcc] = MemAccess{Store: store, Range: rg}
		r.NAcc++
	}
}
