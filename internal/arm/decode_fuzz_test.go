package arm

import (
	"testing"

	"repro/internal/mem"
)

// FuzzDecode feeds arbitrary words to the decoder: it must never panic,
// and every word it accepts must re-encode to exactly the same word
// (decode/encode is a partial bijection).
func FuzzDecode(f *testing.F) {
	seeds := []uint32{
		0xe0810002, 0xe5912000, 0xe1a00000, 0xebfffffe, 0xe12fff1e,
		0xef000000, 0xe7f000f0, 0xe92d4001, 0xe8bd8001, 0x00000000,
		0xffffffff, 0xe6ff0071,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, word uint32) {
		const addr = mem.Addr(0x8000)
		in, err := Decode(word, addr)
		if err != nil {
			return
		}
		w2, err := Encode(in, addr)
		if err != nil {
			t.Fatalf("decoded %#08x to %v but cannot re-encode: %v", word, in, err)
		}
		if w2 != word {
			t.Fatalf("decode/encode not stable: %#08x → %v → %#08x", word, in, w2)
		}
	})
}
