package arm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestUmull(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[R0], s.R[R1] = 0xffffffff, 0xffffffff
	run(t, &s, m, Umull(R2, R3, R0, R1))
	// 0xffffffff^2 = 0xfffffffe00000001
	if s.R[R2] != 0x00000001 || s.R[R3] != 0xfffffffe {
		t.Fatalf("umull = %#x:%#x", s.R[R3], s.R[R2])
	}
}

func TestUmullMatchesGoQuick(t *testing.T) {
	m := mem.NewMemory()
	f := func(a, b uint32) bool {
		var s State
		s.R[R0], s.R[R1] = a, b
		run(t, &s, m, Umull(R2, R3, R0, R1))
		p := uint64(a) * uint64(b)
		return s.R[R2] == uint32(p) && s.R[R3] == uint32(p>>32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdcSbcChains(t *testing.T) {
	// 64-bit add via adds/adc, as the add-long template does.
	var s State
	m := mem.NewMemory()
	s.R[R0], s.R[R1] = 0xffffffff, 0 // lo, hi of a = 2^32-1
	s.R[R2], s.R[R3] = 1, 0          // b = 1
	run(t, &s, m,
		Instr{Op: OpADD, Rd: R0, Rn: R0, Rm: R2, SetFlags: true},
		Instr{Op: OpADC, Rd: R1, Rn: R1, Rm: R3},
	)
	if s.R[R0] != 0 || s.R[R1] != 1 {
		t.Fatalf("64-bit add = %#x:%#x, want 1:0", s.R[R1], s.R[R0])
	}
	// 64-bit subtract via subs/sbc.
	s.R[R0], s.R[R1] = 0, 1 // a = 2^32
	s.R[R2], s.R[R3] = 1, 0 // b = 1
	run(t, &s, m,
		Subs(R0, R0, R2),
		Instr{Op: OpSBC, Rd: R1, Rn: R1, Rm: R3},
	)
	if s.R[R0] != 0xffffffff || s.R[R1] != 0 {
		t.Fatalf("64-bit sub = %#x:%#x", s.R[R1], s.R[R0])
	}
}

func TestLdmStmRegisterOrder(t *testing.T) {
	// STM stores the register list in ascending register order at
	// ascending addresses, regardless of argument order.
	var s State
	m := mem.NewMemory()
	s.R[SP] = 0x8000
	s.R[R2], s.R[R7], s.R[R9] = 0x22, 0x77, 0x99
	push := Push(R9, R2, R7) // order in the call must not matter
	var res Result
	Exec(&s, &push, m, &res)
	if m.Load32(0x8000-12) != 0x22 || m.Load32(0x8000-8) != 0x77 || m.Load32(0x8000-4) != 0x99 {
		t.Fatalf("stm layout: %x %x %x",
			m.Load32(0x8000-12), m.Load32(0x8000-8), m.Load32(0x8000-4))
	}
	s.R[R2], s.R[R7], s.R[R9] = 0, 0, 0
	pop := Pop(R2, R7, R9)
	Exec(&s, &pop, m, &res)
	if s.R[R2] != 0x22 || s.R[R7] != 0x77 || s.R[R9] != 0x99 {
		t.Fatalf("ldm restore: %x %x %x", s.R[R2], s.R[R7], s.R[R9])
	}
	if res.NAcc != 3 || res.Acc[0].Range.Start != 0x8000-12 {
		t.Fatalf("ldm accesses: %+v", res.Acc[:res.NAcc])
	}
}

func TestConditionalMemoryOpSkipsAccess(t *testing.T) {
	var s State
	m := mem.NewMemory()
	m.Store32(0x5000, 0xdead)
	s.R[R1] = 0x5000
	ld := Ldr(R0, R1, 0)
	ld.Cond = NE
	s.Flags.Z = true // NE fails
	var res Result
	Exec(&s, &ld, m, &res)
	if res.Executed {
		t.Fatal("skipped load marked executed")
	}
	if res.NAcc != 0 {
		t.Fatal("skipped load still produced an access event")
	}
	if s.R[R0] != 0 {
		t.Fatal("skipped load wrote the register")
	}
}

func TestShifterCarryOut(t *testing.T) {
	var s State
	m := mem.NewMemory()
	// movs r0, r1, lsr #1 with r1 odd → carry out set.
	s.R[R1] = 3
	in := MovShift(R0, R1, ShiftLSR, 1)
	in.SetFlags = true
	var res Result
	Exec(&s, &in, m, &res)
	if s.R[R0] != 1 || !s.Flags.C {
		t.Fatalf("lsrs: r0=%d C=%v", s.R[R0], s.Flags.C)
	}
	// lsl #1 of a value with the top bit set → carry out set.
	s.R[R1] = 0x80000001
	in = MovShift(R0, R1, ShiftLSL, 1)
	in.SetFlags = true
	Exec(&s, &in, m, &res)
	if s.R[R0] != 2 || !s.Flags.C {
		t.Fatalf("lsls: r0=%#x C=%v", s.R[R0], s.Flags.C)
	}
}

func TestRegisterShiftAmounts(t *testing.T) {
	// Register-specified shifts clamp the way the wide templates rely on:
	// lsl/lsr by >=32 give 0; asr by >=32 gives the sign fill.
	var s State
	m := mem.NewMemory()
	s.R[R1] = 0x80000000
	s.R[R2] = 32
	run(t, &s, m,
		Instr{Op: OpLSL, Rd: R3, Rn: R1, Rm: R2},
		Instr{Op: OpLSR, Rd: R4, Rn: R1, Rm: R2},
		Instr{Op: OpASR, Rd: R5, Rn: R1, Rm: R2},
	)
	if s.R[R3] != 0 || s.R[R4] != 0 {
		t.Fatalf("lsl/lsr by 32 = %#x/%#x", s.R[R3], s.R[R4])
	}
	if s.R[R5] != 0xffffffff {
		t.Fatalf("asr by 32 = %#x", s.R[R5])
	}
	s.R[R2] = 0
	run(t, &s, m, Instr{Op: OpLSR, Rd: R6, Rn: R1, Rm: R2})
	if s.R[R6] != 0x80000000 {
		t.Fatalf("lsr by 0 = %#x", s.R[R6])
	}
}

func TestMvnAndBic(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[R1] = 0x0f0f0f0f
	run(t, &s, m,
		Instr{Op: OpMVN, Rd: R0, Rm: R1},
		Instr{Op: OpBIC, Rd: R2, Rn: R1, Imm: 0xff, UseImm: true},
	)
	if s.R[R0] != 0xf0f0f0f0 {
		t.Fatalf("mvn = %#x", s.R[R0])
	}
	if s.R[R2] != 0x0f0f0f00 {
		t.Fatalf("bic = %#x", s.R[R2])
	}
}

func TestAdcSbcQuick(t *testing.T) {
	// 64-bit add/sub composed from 32-bit ops matches Go int64 math.
	m := mem.NewMemory()
	f := func(a, b int64) bool {
		var s State
		s.R[R0], s.R[R1] = uint32(uint64(a)), uint32(uint64(a)>>32)
		s.R[R2], s.R[R3] = uint32(uint64(b)), uint32(uint64(b)>>32)
		run(t, &s, m,
			Instr{Op: OpADD, Rd: R4, Rn: R0, Rm: R2, SetFlags: true},
			Instr{Op: OpADC, Rd: R5, Rn: R1, Rm: R3},
			Subs(R6, R0, R2),
			Instr{Op: OpSBC, Rd: R7, Rn: R1, Rm: R3},
		)
		sum := uint64(s.R[R5])<<32 | uint64(s.R[R4])
		diff := uint64(s.R[R7])<<32 | uint64(s.R[R6])
		return int64(sum) == a+b && int64(diff) == a-b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLdrshSignExtension(t *testing.T) {
	var s State
	m := mem.NewMemory()
	m.Store16(0x5000, 0x8001)
	m.StoreByte(0x5002, 0x80)
	s.R[R1] = 0x5000
	run(t, &s, m,
		Instr{Op: OpLDRSH, Rd: R0, Rn: R1, UseImm: true},
		Instr{Op: OpLDRSB, Rd: R2, Rn: R1, Imm: 2, UseImm: true},
	)
	if int32(s.R[R0]) != -32767 {
		t.Fatalf("ldrsh = %d", int32(s.R[R0]))
	}
	if int32(s.R[R2]) != -128 {
		t.Fatalf("ldrsb = %d", int32(s.R[R2]))
	}
}

func TestPostIndexAddressing(t *testing.T) {
	var s State
	m := mem.NewMemory()
	m.Store16(0x6000, 0xaa)
	m.Store16(0x6002, 0xbb)
	s.R[R1] = 0x6000
	post := Instr{Op: OpLDRH, Rd: R0, Rn: R1, Imm: 2, UseImm: true, Idx: IdxPost}
	var res Result
	Exec(&s, &post, m, &res)
	if s.R[R0] != 0xaa || s.R[R1] != 0x6002 {
		t.Fatalf("post-index 1: r0=%#x r1=%#x", s.R[R0], s.R[R1])
	}
	Exec(&s, &post, m, &res)
	if s.R[R0] != 0xbb || s.R[R1] != 0x6004 {
		t.Fatalf("post-index 2: r0=%#x r1=%#x", s.R[R0], s.R[R1])
	}
}
