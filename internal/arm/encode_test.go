package arm

import (
	"testing"

	"repro/internal/mem"
)

// TestEncodeGoldenWords checks hand-assembled A32 words.
func TestEncodeGoldenWords(t *testing.T) {
	cases := []struct {
		in   Instr
		addr mem.Addr
		want uint32
	}{
		{Add(R0, R1, R2), 0, 0xe0810002},                   // add r0, r1, r2
		{AddImm(R0, R1, 1), 0, 0xe2810001},                 // add r0, r1, #1
		{Sub(R3, R4, R5), 0, 0xe0443005},                   // sub r3, r4, r5
		{MovImm(R0, 0), 0, 0xe3a00000},                     // mov r0, #0
		{Nop(), 0, 0xe1a00000},                             // mov r0, r0
		{Ldr(R2, R1, 0), 0, 0xe5912000},                    // ldr r2, [r1]
		{Str(R2, R1, 4), 0, 0xe5812004},                    // str r2, [r1, #4]
		{Ldrb(R0, R1, 0), 0, 0xe5d10000},                   // ldrb r0, [r1]
		{BxLR(), 0, 0xe12fff1e},                            // bx lr
		{Svc(0), 0, 0xef000000},                            // svc #0
		{Instr{Op: OpB, Imm: 0x1008}, 0x1000, 0xea000000},  // b .+8
		{Instr{Op: OpBL, Imm: 0x1000}, 0x1000, 0xebfffffe}, // bl .
		{Mul(R0, R1, R2), 0, 0xe0000291},                   // mul r0, r1, r2
		{Push(R0, LR), 0, 0xe92d4001},                      // push {r0, lr}
		{Pop(R0, PC), 0, 0xe8bd8001},                       // pop {r0, pc}
	}
	for _, tc := range cases {
		got, err := Encode(tc.in, tc.addr)
		if err != nil {
			t.Errorf("Encode(%v): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", tc.in, got, tc.want)
		}
	}
}

// TestEncodeDecodeWordRoundTrip: for every encodable instruction form,
// Encode(Decode(w)) must reproduce the word exactly.
func TestEncodeDecodeWordRoundTrip(t *testing.T) {
	addr := mem.Addr(0x4000)
	forms := []Instr{
		MovImm(R0, 42),
		MovImm(R3, 0xff000000>>2), // rotated immediate
		Mov(R1, R2),
		MovShift(R3, R7, ShiftLSR, 12),
		Add(R0, R1, R2),
		AddImm(R9, R10, 0xf0),
		AddsImm(R3, R3, 1),
		AddShift(R9, R9, R2, ShiftLSL, 1),
		Sub(R0, R1, R2),
		SubsImm(R4, R4, 2),
		RsbImm(R0, R1, 0),
		And(R0, R1, R2),
		AndImm(R12, R7, 255),
		Orr(R5, R6, R7),
		Eor(R1, R2, R3),
		Cmp(R0, R1),
		CmpImm(R9, 32),
		Instr{Op: OpCMN, Rn: R0, Imm: 4, UseImm: true},
		Instr{Op: OpTST, Rn: R0, Rm: R1},
		Instr{Op: OpTEQ, Rn: R0, Rm: R1},
		Instr{Op: OpMVN, Rd: R0, Rm: R1},
		Instr{Op: OpBIC, Rd: R2, Rn: R1, Imm: 0xff, UseImm: true},
		Mul(R0, R1, R2),
		Mla(R0, R1, R2, R3),
		Umull(R2, R3, R0, R1),
		Ubfx(R9, R7, 8, 4),
		Instr{Op: OpSBFX, Rd: R0, Rn: R1, Lsb: 4, Width: 8},
		Uxth(R0, R1),
		Sxth(R2, R3),
		Uxtb(R4, R5),
		Instr{Op: OpSXTB, Rd: R6, Rm: R7},
		Instr{Op: OpCLZ, Rd: R0, Rm: R1},
		Ldr(R0, R1, 8),
		Ldr(R0, R1, -8),
		LdrReg(R1, R5, R3, ShiftLSL, 2),
		Str(R0, R1, 0xfc),
		Strb(R0, R1, 1),
		Ldrb(R2, R3, 0),
		Ldrh(R0, R1, 2),
		LdrhPre(R7, R4, 2),
		Strh(R0, R1, 6),
		Instr{Op: OpLDRSB, Rd: R0, Rn: R1, Imm: 3, UseImm: true, Idx: IdxOffset},
		Instr{Op: OpLDRSH, Rd: R0, Rn: R1, Imm: 2, UseImm: true, Idx: IdxOffset},
		Instr{Op: OpLDRH, Rd: R0, Rn: R1, Imm: 2, UseImm: true, Idx: IdxPost},
		Ldrd(R0, R1, R2, 8), // paired registers for architectural fidelity
		Strd(R4, R5, R6, 0),
		Pop(R0, R1, R2),
		Push(R4, R5, LR),
		Instr{Op: OpB, Imm: 0x4100},
		Instr{Op: OpBL, Imm: 0x3000},
		Instr{Op: OpB, Cond: NE, Imm: 0x4010},
		BxLR(),
		Svc(7),
		Bridge(42),
		Nop(),
	}
	for _, in := range forms {
		w, err := Encode(in, addr)
		if err != nil {
			t.Errorf("Encode(%v): %v", in, err)
			continue
		}
		back, err := Decode(w, addr)
		if err != nil {
			t.Errorf("Decode(%#08x) [%v]: %v", w, in, err)
			continue
		}
		w2, err := Encode(back, addr)
		if err != nil {
			t.Errorf("re-Encode(%v) [from %v]: %v", back, in, err)
			continue
		}
		if w2 != w {
			t.Errorf("word round trip: %v → %#08x → %v → %#08x", in, w, back, w2)
		}
	}
}

// TestDecodedSemanticsMatch executes original and decoded instructions side
// by side on identical states: architectural behaviour must agree even when
// the symbolic forms differ (e.g. lsl-as-mov).
func TestDecodedSemanticsMatch(t *testing.T) {
	addr := mem.Addr(0x4000)
	forms := []Instr{
		LslImm(R0, R1, 3),
		LsrImm(R2, R3, 7),
		AsrImm(R4, R5, 1),
		Instr{Op: OpLSL, Rd: R0, Rn: R1, Rm: R2},
		Instr{Op: OpASR, Rd: R3, Rn: R4, Rm: R5},
		AddShift(R0, R1, R2, ShiftLSR, 4),
		MovShift(R6, R7, ShiftASR, 31),
	}
	for _, in := range forms {
		w, err := Encode(in, addr)
		if err != nil {
			t.Errorf("Encode(%v): %v", in, err)
			continue
		}
		back, err := Decode(w, addr)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", w, err)
			continue
		}
		var s1, s2 State
		for r := Reg(0); r < NumRegs; r++ {
			s1.R[r] = uint32(r) * 0x01010101
			s2.R[r] = uint32(r) * 0x01010101
		}
		m := mem.NewMemory()
		var res Result
		Exec(&s1, &in, m, &res)
		Exec(&s2, &back, m, &res)
		if s1 != s2 {
			t.Errorf("semantics diverge for %v (decoded %v)", in, back)
		}
	}
}

func TestEncodeRejectsUnencodable(t *testing.T) {
	cases := []Instr{
		MovImm(R0, 0x12345678), // not a rotated imm8
		Ldr(R0, R1, 0x2000),    // 12-bit offset exceeded
		Ldrh(R0, R1, 0x400),    // 8-bit offset exceeded
		StrhReg(R0, R1, R2),    // fine...
	}
	// StrhReg IS encodable; replace with a shifted halfword offset.
	cases[3] = Instr{Op: OpSTRH, Rd: R0, Rn: R1, Rm: R2,
		Shift: Shift{Kind: ShiftLSL, Amount: 1}}
	for _, in := range cases {
		if _, err := Encode(in, 0); err == nil {
			t.Errorf("Encode(%v) should fail", in)
		}
	}
	// Branch out of range.
	if _, err := Encode(Instr{Op: OpB, Imm: 0x7fffff00}, 0); err == nil {
		t.Error("far branch should fail to encode")
	}
}

func TestEncodeRotatedImmediates(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xff, 0x100, 0x3f8, 0xff000000, 0x000ff000, 0xf000000f} {
		imm8, rot, ok := encodeRotImm(v)
		if !ok {
			t.Errorf("%#x should be encodable", v)
			continue
		}
		r := 2 * rot
		back := imm8
		if r != 0 {
			back = imm8>>r | imm8<<(32-r)
		}
		if back != v {
			t.Errorf("%#x: imm8=%#x rot=%d decodes to %#x", v, imm8, rot, back)
		}
	}
	for _, v := range []uint32{0x101, 0x12345678, 0xff1} {
		if _, _, ok := encodeRotImm(v); ok {
			t.Errorf("%#x should not be encodable", v)
		}
	}
}
