package arm

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

// TestDisasmAllOps renders one instance of every opcode and checks the
// mnemonic appears — a regression net for the listing format.
func TestDisasmAllOps(t *testing.T) {
	cases := []Instr{
		Nop(),
		MovImm(R0, 1),
		{Op: OpMVN, Rd: R0, Rm: R1},
		Add(R0, R1, R2),
		{Op: OpADC, Rd: R0, Rn: R1, Rm: R2},
		Sub(R0, R1, R2),
		{Op: OpSBC, Rd: R0, Rn: R1, Rm: R2},
		RsbImm(R0, R1, 0),
		And(R0, R1, R2),
		Orr(R0, R1, R2),
		Eor(R0, R1, R2),
		{Op: OpBIC, Rd: R0, Rn: R1, Rm: R2},
		Cmp(R0, R1),
		{Op: OpCMN, Rn: R0, Rm: R1},
		{Op: OpTST, Rn: R0, Rm: R1},
		{Op: OpTEQ, Rn: R0, Rm: R1},
		Mul(R0, R1, R2),
		Mla(R0, R1, R2, R3),
		Umull(R0, R1, R2, R3),
		LslImm(R0, R1, 2),
		LsrImm(R0, R1, 2),
		AsrImm(R0, R1, 2),
		Ubfx(R0, R1, 8, 4),
		{Op: OpSBFX, Rd: R0, Rn: R1, Lsb: 8, Width: 4},
		Uxth(R0, R1),
		Sxth(R0, R1),
		Uxtb(R0, R1),
		{Op: OpSXTB, Rd: R0, Rm: R1},
		{Op: OpCLZ, Rd: R0, Rm: R1},
		Ldr(R0, R1, 4),
		Ldrb(R0, R1, 4),
		Ldrh(R0, R1, 4),
		{Op: OpLDRSB, Rd: R0, Rn: R1, UseImm: true},
		{Op: OpLDRSH, Rd: R0, Rn: R1, UseImm: true},
		Ldrd(R0, R1, R2, 0),
		Pop(R0, R1),
		Str(R0, R1, 4),
		Strb(R0, R1, 4),
		Strh(R0, R1, 4),
		Strd(R0, R1, R2, 0),
		Push(R0, R1),
		{Op: OpB, Imm: 0x1000},
		{Op: OpBL, Imm: 0x1000},
		BxLR(),
		Svc(1),
		Bridge(2),
	}
	for _, in := range cases {
		out := in.String()
		if out == "" || strings.Contains(out, "op?") {
			t.Errorf("disasm of %v produced %q", in.Op, out)
		}
		if !strings.HasPrefix(out, in.Op.String()) {
			t.Errorf("%q does not start with mnemonic %q", out, in.Op.String())
		}
	}
}

func TestDisasmAddressingModes(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Ldr(R0, R1, 0), "ldr r0, [r1]"},
		{Ldr(R0, R1, -4), "ldr r0, [r1, #-4]"},
		{LdrhPre(R7, R4, 2), "ldrh r7, [r4, #2]!"},
		{Instr{Op: OpLDRH, Rd: R0, Rn: R1, Imm: 2, UseImm: true, Idx: IdxPost},
			"ldrh r0, [r1], #2"},
		{Instr{Op: OpSTRH, Rd: R0, Rn: R1, Rm: R2, Shift: Shift{Kind: ShiftLSL, Amount: 1}},
			"strh r0, [r1, r2, lsl #1]"},
		{Instr{Op: OpLDR, Rd: R0, Rn: R1, Rm: R2}, "ldr r0, [r1, r2]"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("disasm = %q, want %q", got, tc.want)
		}
	}
}

func TestDisasmConditionsAndFlags(t *testing.T) {
	in := AddImm(R0, R0, 1)
	in.Cond = GE
	if got := in.String(); !strings.HasPrefix(got, "addge") {
		t.Errorf("conditional = %q", got)
	}
	in = SubsImm(R0, R0, 1)
	if got := in.String(); !strings.HasPrefix(got, "subs") {
		t.Errorf("flag-setting = %q", got)
	}
	in = MovImm(R0, 1)
	in.Cond = CC
	in.SetFlags = true
	if got := in.String(); !strings.HasPrefix(got, "movccs") {
		t.Errorf("cond+flags = %q", got)
	}
}

func TestCondStrings(t *testing.T) {
	conds := []Cond{AL, EQ, NE, CS, CC, MI, PL, VS, VC, HI, LS, GE, LT, GT, LE}
	seen := map[string]bool{}
	for _, c := range conds {
		s := c.String()
		if seen[s] {
			t.Errorf("duplicate condition suffix %q", s)
		}
		seen[s] = true
	}
}

func TestRemainingExecPaths(t *testing.T) {
	m := mem.NewMemory()
	var s State

	// CLZ.
	s.R[R1] = 0x00010000
	run(t, &s, m, Instr{Op: OpCLZ, Rd: R0, Rm: R1})
	if s.R[R0] != 15 {
		t.Errorf("clz = %d", s.R[R0])
	}
	s.R[R1] = 0
	run(t, &s, m, Instr{Op: OpCLZ, Rd: R0, Rm: R1})
	if s.R[R0] != 32 {
		t.Errorf("clz(0) = %d", s.R[R0])
	}

	// SBFX sign-extends the extracted field.
	s.R[R1] = 0x0000f00
	run(t, &s, m, Instr{Op: OpSBFX, Rd: R0, Rn: R1, Lsb: 8, Width: 4})
	if int32(s.R[R0]) != -1 {
		t.Errorf("sbfx = %d", int32(s.R[R0]))
	}

	// ROR shifter operand.
	s.R[R1] = 0x000000ff
	run(t, &s, m, Instr{Op: OpMOV, Rd: R0, Rm: R1, Shift: Shift{Kind: ShiftROR, Amount: 8}})
	if s.R[R0] != 0xff000000 {
		t.Errorf("ror = %#x", s.R[R0])
	}

	// TEQ and TST set flags without writing a register.
	s.R[R0], s.R[R1] = 5, 5
	run(t, &s, m, Instr{Op: OpTEQ, Rn: R0, Rm: R1})
	if !s.Flags.Z {
		t.Error("teq of equal values must set Z")
	}
	s.R[R1] = 4
	run(t, &s, m, Instr{Op: OpTST, Rn: R0, Rm: R1})
	if s.Flags.Z {
		t.Error("tst 5&4 != 0 must clear Z")
	}

	// CMN (compare negative).
	s.R[R0] = 5
	run(t, &s, m, Instr{Op: OpCMN, Rn: R0, Imm: -5, UseImm: true})
	if !s.Flags.Z {
		t.Error("cmn 5, -5 must set Z")
	}

	// ADC/SBC with immediate.
	s.Flags.C = true
	s.R[R0] = 10
	run(t, &s, m, Instr{Op: OpADC, Rd: R1, Rn: R0, Imm: 5, UseImm: true})
	if s.R[R1] != 16 {
		t.Errorf("adc with carry = %d", s.R[R1])
	}

	// MOV to PC branches.
	s.R[R2] = 0x2000
	mv := Mov(PC, R2)
	var res Result
	Exec(&s, &mv, m, &res)
	if !res.Branched || res.Target != 0x2000 {
		t.Errorf("mov pc: %+v", res)
	}

	// LDR into PC branches.
	m.Store32(0x7000, 0x3000)
	s.R[R3] = 0x7000
	ld := Ldr(PC, R3, 0)
	Exec(&s, &ld, m, &res)
	if !res.Branched || res.Target != 0x3000 {
		t.Errorf("ldr pc: %+v", res)
	}
}

func TestMulsSetsFlags(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[R1], s.R[R2] = 0, 5
	in := Mul(R0, R1, R2)
	in.SetFlags = true
	run(t, &s, m, in)
	if !s.Flags.Z {
		t.Error("muls of zero must set Z")
	}
}
