package arm

import (
	"fmt"
	"strings"
)

// String renders the instruction in conventional ARM assembly syntax, e.g.
// "ldr r1, [r5, r3, lsl #2]" or "strh r6, [r0, r4]". It is used by trace
// dumps and error messages.
func (in Instr) String() string {
	mn := in.Op.String() + in.Cond.String()
	if in.SetFlags {
		mn += "s"
	}
	switch in.Op {
	case OpNOP:
		return mn
	case OpMOV, OpMVN:
		return fmt.Sprintf("%s %s, %s", mn, in.Rd, in.op2())
	case OpADD, OpADC, OpSUB, OpSBC, OpRSB, OpAND, OpORR, OpEOR, OpBIC:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Rn, in.op2())
	case OpCMP, OpCMN, OpTST, OpTEQ:
		return fmt.Sprintf("%s %s, %s", mn, in.Rn, in.op2())
	case OpMUL:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Rn, in.Rm)
	case OpMLA:
		return fmt.Sprintf("%s %s, %s, %s, %s", mn, in.Rd, in.Rn, in.Rm, in.Ra)
	case OpUMULL:
		return fmt.Sprintf("%s %s, %s, %s, %s", mn, in.Rd, in.Ra, in.Rn, in.Rm)
	case OpLSL, OpLSR, OpASR:
		if in.UseImm {
			return fmt.Sprintf("%s %s, %s, #%d", mn, in.Rd, in.Rn, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Rn, in.Rm)
	case OpUBFX, OpSBFX:
		return fmt.Sprintf("%s %s, %s, #%d, #%d", mn, in.Rd, in.Rn, in.Lsb, in.Width)
	case OpUXTH, OpSXTH, OpUXTB, OpSXTB, OpCLZ:
		return fmt.Sprintf("%s %s, %s", mn, in.Rd, in.Rm)
	case OpLDR, OpLDRB, OpLDRH, OpLDRSB, OpLDRSH, OpSTR, OpSTRB, OpSTRH:
		return fmt.Sprintf("%s %s, %s", mn, in.Rd, in.memOperand())
	case OpLDRD, OpSTRD:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Ra, in.memOperand())
	case OpLDM, OpSTM:
		return fmt.Sprintf("%s %s!, {%s}", mn, in.Rn, regList(in.RegList))
	case OpB, OpBL:
		return fmt.Sprintf("%s 0x%x", mn, uint32(in.Imm))
	case OpBX:
		return fmt.Sprintf("%s %s", mn, in.Rm)
	case OpSVC:
		return fmt.Sprintf("%s #%d", mn, in.Imm)
	case OpBRIDGE:
		return fmt.Sprintf("%s #%d", mn, in.Imm)
	}
	return mn
}

// op2 renders the flexible second operand.
func (in Instr) op2() string {
	if in.UseImm {
		return fmt.Sprintf("#%d", in.Imm)
	}
	if in.Shift.Kind == ShiftNone {
		return in.Rm.String()
	}
	return fmt.Sprintf("%s, %s #%d", in.Rm, in.Shift.Kind, in.Shift.Amount)
}

// memOperand renders the addressing mode.
func (in Instr) memOperand() string {
	var inner string
	if in.UseImm {
		if in.Imm == 0 && in.Idx == IdxOffset {
			return fmt.Sprintf("[%s]", in.Rn)
		}
		inner = fmt.Sprintf("%s, #%d", in.Rn, in.Imm)
	} else if in.Shift.Kind == ShiftNone {
		inner = fmt.Sprintf("%s, %s", in.Rn, in.Rm)
	} else {
		inner = fmt.Sprintf("%s, %s, %s #%d", in.Rn, in.Rm, in.Shift.Kind, in.Shift.Amount)
	}
	switch in.Idx {
	case IdxPre:
		return "[" + inner + "]!"
	case IdxPost:
		if in.UseImm {
			return fmt.Sprintf("[%s], #%d", in.Rn, in.Imm)
		}
		return fmt.Sprintf("[%s], %s", in.Rn, in.Rm)
	}
	return "[" + inner + "]"
}

func regList(list uint16) string {
	var parts []string
	for r := Reg(0); r < NumRegs; r++ {
		if list&(1<<r) != 0 {
			parts = append(parts, r.String())
		}
	}
	return strings.Join(parts, ", ")
}
