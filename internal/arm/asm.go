package arm

import (
	"fmt"

	"repro/internal/mem"
)

// Constructor helpers. The Dalvik translator and the runtime intrinsics
// build native code from these rather than spelling out Instr literals.

// MovImm builds "mov rd, #imm".
func MovImm(rd Reg, imm int32) Instr {
	return Instr{Op: OpMOV, Rd: rd, Imm: imm, UseImm: true}
}

// Mov builds "mov rd, rm".
func Mov(rd, rm Reg) Instr { return Instr{Op: OpMOV, Rd: rd, Rm: rm} }

// MovShift builds "mov rd, rm, <kind> #amt" (mterp operand extraction).
func MovShift(rd, rm Reg, kind ShiftKind, amt uint8) Instr {
	return Instr{Op: OpMOV, Rd: rd, Rm: rm, Shift: Shift{Kind: kind, Amount: amt}}
}

// Ubfx builds "ubfx rd, rn, #lsb, #width".
func Ubfx(rd, rn Reg, lsb, width uint8) Instr {
	return Instr{Op: OpUBFX, Rd: rd, Rn: rn, Lsb: lsb, Width: width}
}

func alu(op Op, rd, rn, rm Reg) Instr { return Instr{Op: op, Rd: rd, Rn: rn, Rm: rm} }
func aluImm(op Op, rd, rn Reg, imm int32) Instr {
	return Instr{Op: op, Rd: rd, Rn: rn, Imm: imm, UseImm: true}
}

// Add builds "add rd, rn, rm".
func Add(rd, rn, rm Reg) Instr { return alu(OpADD, rd, rn, rm) }

// AddImm builds "add rd, rn, #imm".
func AddImm(rd, rn Reg, imm int32) Instr { return aluImm(OpADD, rd, rn, imm) }

// AddsImm builds "adds rd, rn, #imm" (flag-setting).
func AddsImm(rd, rn Reg, imm int32) Instr {
	in := aluImm(OpADD, rd, rn, imm)
	in.SetFlags = true
	return in
}

// AddShift builds "add rd, rn, rm, <kind> #amt".
func AddShift(rd, rn, rm Reg, kind ShiftKind, amt uint8) Instr {
	return Instr{Op: OpADD, Rd: rd, Rn: rn, Rm: rm, Shift: Shift{Kind: kind, Amount: amt}}
}

// Sub builds "sub rd, rn, rm".
func Sub(rd, rn, rm Reg) Instr { return alu(OpSUB, rd, rn, rm) }

// SubImm builds "sub rd, rn, #imm".
func SubImm(rd, rn Reg, imm int32) Instr { return aluImm(OpSUB, rd, rn, imm) }

// SubsImm builds "subs rd, rn, #imm".
func SubsImm(rd, rn Reg, imm int32) Instr {
	in := aluImm(OpSUB, rd, rn, imm)
	in.SetFlags = true
	return in
}

// Subs builds "subs rd, rn, rm".
func Subs(rd, rn, rm Reg) Instr {
	in := alu(OpSUB, rd, rn, rm)
	in.SetFlags = true
	return in
}

// Rsb builds "rsb rd, rn, #imm".
func RsbImm(rd, rn Reg, imm int32) Instr { return aluImm(OpRSB, rd, rn, imm) }

// Mul builds "mul rd, rn, rm".
func Mul(rd, rn, rm Reg) Instr { return alu(OpMUL, rd, rn, rm) }

// Mla builds "mla rd, rn, rm, ra" (rd = rn*rm + ra).
func Mla(rd, rn, rm, ra Reg) Instr {
	return Instr{Op: OpMLA, Rd: rd, Rn: rn, Rm: rm, Ra: ra}
}

// Umull builds "umull lo, hi, rn, rm" (hi:lo = rn*rm, unsigned).
func Umull(lo, hi, rn, rm Reg) Instr {
	return Instr{Op: OpUMULL, Rd: lo, Ra: hi, Rn: rn, Rm: rm}
}

// And builds "and rd, rn, rm".
func And(rd, rn, rm Reg) Instr { return alu(OpAND, rd, rn, rm) }

// AndImm builds "and rd, rn, #imm".
func AndImm(rd, rn Reg, imm int32) Instr { return aluImm(OpAND, rd, rn, imm) }

// OrrImm builds "orr rd, rn, #imm".
func OrrImm(rd, rn Reg, imm int32) Instr { return aluImm(OpORR, rd, rn, imm) }

// Orr builds "orr rd, rn, rm".
func Orr(rd, rn, rm Reg) Instr { return alu(OpORR, rd, rn, rm) }

// Eor builds "eor rd, rn, rm".
func Eor(rd, rn, rm Reg) Instr { return alu(OpEOR, rd, rn, rm) }

// EorImm builds "eor rd, rn, #imm".
func EorImm(rd, rn Reg, imm int32) Instr { return aluImm(OpEOR, rd, rn, imm) }

// Cmp builds "cmp rn, rm".
func Cmp(rn, rm Reg) Instr { return Instr{Op: OpCMP, Rn: rn, Rm: rm} }

// CmpImm builds "cmp rn, #imm".
func CmpImm(rn Reg, imm int32) Instr {
	return Instr{Op: OpCMP, Rn: rn, Imm: imm, UseImm: true}
}

// LslImm builds "lsl rd, rn, #imm".
func LslImm(rd, rn Reg, imm int32) Instr { return aluImm(OpLSL, rd, rn, imm) }

// LsrImm builds "lsr rd, rn, #imm".
func LsrImm(rd, rn Reg, imm int32) Instr { return aluImm(OpLSR, rd, rn, imm) }

// AsrImm builds "asr rd, rn, #imm".
func AsrImm(rd, rn Reg, imm int32) Instr { return aluImm(OpASR, rd, rn, imm) }

// Uxth builds "uxth rd, rm".
func Uxth(rd, rm Reg) Instr { return Instr{Op: OpUXTH, Rd: rd, Rm: rm} }

// Sxth builds "sxth rd, rm".
func Sxth(rd, rm Reg) Instr { return Instr{Op: OpSXTH, Rd: rd, Rm: rm} }

// Uxtb builds "uxtb rd, rm".
func Uxtb(rd, rm Reg) Instr { return Instr{Op: OpUXTB, Rd: rd, Rm: rm} }

// Nop builds "nop".
func Nop() Instr { return Instr{Op: OpNOP} }

func memImm(op Op, rd, rn Reg, off int32, idx Indexing) Instr {
	return Instr{Op: op, Rd: rd, Rn: rn, Imm: off, UseImm: true, Idx: idx}
}

func memReg(op Op, rd, rn, rm Reg, kind ShiftKind, amt uint8) Instr {
	return Instr{Op: op, Rd: rd, Rn: rn, Rm: rm, Shift: Shift{Kind: kind, Amount: amt}}
}

// Ldr builds "ldr rd, [rn, #off]".
func Ldr(rd, rn Reg, off int32) Instr { return memImm(OpLDR, rd, rn, off, IdxOffset) }

// LdrReg builds "ldr rd, [rn, rm, <kind> #amt]" — the GET_VREG shape
// "ldr reg, [rFP, vreg, lsl #2]".
func LdrReg(rd, rn, rm Reg, kind ShiftKind, amt uint8) Instr {
	return memReg(OpLDR, rd, rn, rm, kind, amt)
}

// Str builds "str rd, [rn, #off]".
func Str(rd, rn Reg, off int32) Instr { return memImm(OpSTR, rd, rn, off, IdxOffset) }

// StrReg builds "str rd, [rn, rm, <kind> #amt]" — the SET_VREG shape.
func StrReg(rd, rn, rm Reg, kind ShiftKind, amt uint8) Instr {
	return memReg(OpSTR, rd, rn, rm, kind, amt)
}

// Ldrb builds "ldrb rd, [rn, #off]".
func Ldrb(rd, rn Reg, off int32) Instr { return memImm(OpLDRB, rd, rn, off, IdxOffset) }

// Strb builds "strb rd, [rn, #off]".
func Strb(rd, rn Reg, off int32) Instr { return memImm(OpSTRB, rd, rn, off, IdxOffset) }

// Ldrh builds "ldrh rd, [rn, #off]".
func Ldrh(rd, rn Reg, off int32) Instr { return memImm(OpLDRH, rd, rn, off, IdxOffset) }

// LdrhPre builds "ldrh rd, [rn, #off]!" — the FETCH_ADVANCE_INST shape
// "ldrh rINST, [rPC, #2]!".
func LdrhPre(rd, rn Reg, off int32) Instr { return memImm(OpLDRH, rd, rn, off, IdxPre) }

// LdrhReg builds "ldrh rd, [rn, rm]" — the string copy-loop load of Fig. 1.
func LdrhReg(rd, rn, rm Reg) Instr { return memReg(OpLDRH, rd, rn, rm, ShiftNone, 0) }

// Strh builds "strh rd, [rn, #off]".
func Strh(rd, rn Reg, off int32) Instr { return memImm(OpSTRH, rd, rn, off, IdxOffset) }

// StrhReg builds "strh rd, [rn, rm]" — the string copy-loop store of Fig. 1.
func StrhReg(rd, rn, rm Reg) Instr { return memReg(OpSTRH, rd, rn, rm, ShiftNone, 0) }

// Ldrd builds "ldrd rd, ra, [rn, #off]".
func Ldrd(rd, ra, rn Reg, off int32) Instr {
	in := memImm(OpLDRD, rd, rn, off, IdxOffset)
	in.Ra = ra
	return in
}

// Strd builds "strd rd, ra, [rn, #off]".
func Strd(rd, ra, rn Reg, off int32) Instr {
	in := memImm(OpSTRD, rd, rn, off, IdxOffset)
	in.Ra = ra
	return in
}

// Push builds "stmdb sp!, {list}".
func Push(regs ...Reg) Instr {
	var list uint16
	for _, r := range regs {
		list |= 1 << r
	}
	return Instr{Op: OpSTM, Rn: SP, RegList: list}
}

// Pop builds "ldmia sp!, {list}".
func Pop(regs ...Reg) Instr {
	var list uint16
	for _, r := range regs {
		list |= 1 << r
	}
	return Instr{Op: OpLDM, Rn: SP, RegList: list}
}

// BxLR builds the standard return "bx lr".
func BxLR() Instr { return Instr{Op: OpBX, Rm: LR} }

// Svc builds "svc #num".
func Svc(num int32) Instr { return Instr{Op: OpSVC, Imm: num} }

// Bridge builds a host-bridge instruction with the given handler ID.
func Bridge(id int32) Instr { return Instr{Op: OpBRIDGE, Imm: id} }

// Assembler accumulates instructions at increasing addresses and resolves
// label references into absolute branch targets. Instruction addresses are
// Base + 4*index, as on ARM.
type Assembler struct {
	base   mem.Addr
	code   []Instr
	labels map[string]mem.Addr
	fixups []fixup
}

type fixup struct {
	index int
	label string
}

// NewAssembler starts an empty code image at the given base address.
func NewAssembler(base mem.Addr) *Assembler {
	return &Assembler{base: base, labels: make(map[string]mem.Addr)}
}

// Base returns the image base address.
func (a *Assembler) Base() mem.Addr { return a.base }

// PC returns the address the next emitted instruction will occupy.
func (a *Assembler) PC() mem.Addr { return a.base + mem.Addr(4*len(a.code)) }

// Len returns the number of instructions emitted so far.
func (a *Assembler) Len() int { return len(a.code) }

// Emit appends instructions.
func (a *Assembler) Emit(ins ...Instr) {
	a.code = append(a.code, ins...)
}

// Label defines name at the current position. Defining the same label twice
// panics: duplicate labels are translator bugs.
func (a *Assembler) Label(name string) {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("arm: duplicate label %q", name))
	}
	a.labels[name] = a.PC()
}

// LabelAddr returns the address of a defined label.
func (a *Assembler) LabelAddr(name string) (mem.Addr, bool) {
	addr, ok := a.labels[name]
	return addr, ok
}

// B emits a conditional branch to a label (resolved at Finish time).
func (a *Assembler) B(cond Cond, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.code), label: label})
	a.Emit(Instr{Op: OpB, Cond: cond})
}

// BL emits a branch-and-link to a label.
func (a *Assembler) BL(label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.code), label: label})
	a.Emit(Instr{Op: OpBL})
}

// MovLabel emits "mov rd, #<address of label>", resolved at Finish time —
// the stand-in for the movw/movt pair or literal-pool load real ARM code
// would use to materialize an absolute address.
func (a *Assembler) MovLabel(rd Reg, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.code), label: label})
	a.Emit(Instr{Op: OpMOV, Rd: rd, UseImm: true})
}

// Finish resolves all label references and returns the code image.
// Unresolved labels are translator bugs and cause an error.
func (a *Assembler) Finish() ([]Instr, error) {
	for _, f := range a.fixups {
		addr, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("arm: undefined label %q", f.label)
		}
		a.code[f.index].Imm = int32(addr)
	}
	return a.code, nil
}
