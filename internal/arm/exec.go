package arm

import (
	"fmt"

	"repro/internal/mem"
)

// Memory is the data-memory interface the executor needs. *mem.Memory
// satisfies it; the CPU wraps it to observe accesses.
type Memory interface {
	Load(addr mem.Addr, size int) uint64
	Store(addr mem.Addr, size int, v uint64)
}

// reg reads a register as an operand value. Reading PC yields the address
// of the current instruction plus 8, as on a real ARM pipeline.
func (s *State) reg(r Reg) uint32 {
	if r == PC {
		return s.R[PC] + 8
	}
	return s.R[r]
}

// shifterOperand computes the barrel-shifted second operand and its
// carry-out (valid reports whether the shift produced a carry at all).
func (s *State) shifterOperand(in *Instr) (val uint32, carry, valid bool) {
	if in.UseImm {
		return uint32(in.Imm), false, false
	}
	v := s.reg(in.Rm)
	amt := uint32(in.Shift.Amount)
	switch in.Shift.Kind {
	case ShiftNone:
		return v, false, false
	case ShiftLSL:
		if amt == 0 {
			return v, false, false
		}
		if amt > 32 {
			return 0, false, true
		}
		carry = v&(1<<(32-amt)) != 0
		if amt == 32 {
			return 0, carry, true
		}
		return v << amt, carry, true
	case ShiftLSR:
		if amt == 0 || amt > 32 {
			return 0, false, amt != 0
		}
		carry = v&(1<<(amt-1)) != 0
		if amt == 32 {
			return 0, carry, true
		}
		return v >> amt, carry, true
	case ShiftASR:
		if amt == 0 {
			return v, false, false
		}
		if amt >= 32 {
			if int32(v) < 0 {
				return 0xffffffff, true, true
			}
			return 0, false, true
		}
		carry = v&(1<<(amt-1)) != 0
		return uint32(int32(v) >> amt), carry, true
	case ShiftROR:
		amt %= 32
		if amt == 0 {
			return v, false, false
		}
		out := v>>amt | v<<(32-amt)
		return out, out&0x80000000 != 0, true
	}
	return v, false, false
}

func (s *State) setNZ(v uint32) {
	s.Flags.N = int32(v) < 0
	s.Flags.Z = v == 0
}

func (s *State) addWithCarry(a, b uint32, carryIn bool) uint32 {
	var cin uint64
	if carryIn {
		cin = 1
	}
	sum := uint64(a) + uint64(b) + cin
	res := uint32(sum)
	s.Flags.C = sum > 0xffffffff
	s.Flags.V = (a^b)&0x80000000 == 0 && (a^res)&0x80000000 != 0
	s.setNZ(res)
	return res
}

// Exec executes one instruction against the state and memory, recording
// side effects in res. It does not advance PC; the CPU driving the
// execution owns control flow (res.Branched overrides the default PC+4).
func Exec(s *State, in *Instr, m Memory, res *Result) {
	res.reset()
	if !in.Cond.Passes(s.Flags) {
		res.Executed = false
		return
	}

	switch in.Op {
	case OpNOP:

	case OpMOV, OpMVN, OpAND, OpORR, OpEOR, OpBIC, OpTST, OpTEQ:
		execLogical(s, in, res)

	case OpADD, OpADC, OpSUB, OpSBC, OpRSB, OpCMP, OpCMN:
		execArith(s, in, res)

	case OpMUL:
		v := s.reg(in.Rn) * s.reg(in.Rm)
		s.R[in.Rd] = v
		if in.SetFlags {
			s.setNZ(v)
		}
	case OpMLA:
		v := s.reg(in.Rn)*s.reg(in.Rm) + s.reg(in.Ra)
		s.R[in.Rd] = v
		if in.SetFlags {
			s.setNZ(v)
		}
	case OpUMULL:
		p := uint64(s.reg(in.Rn)) * uint64(s.reg(in.Rm))
		s.R[in.Rd] = uint32(p)
		s.R[in.Ra] = uint32(p >> 32)

	case OpLSL, OpLSR, OpASR:
		execShift(s, in, res)

	case OpUBFX:
		v := s.reg(in.Rn) >> in.Lsb
		if in.Width < 32 {
			v &= 1<<in.Width - 1
		}
		s.R[in.Rd] = v
	case OpSBFX:
		v := s.reg(in.Rn) >> in.Lsb
		if in.Width < 32 {
			v &= 1<<in.Width - 1
			if v&(1<<(in.Width-1)) != 0 {
				v |= ^uint32(0) << in.Width
			}
		}
		s.R[in.Rd] = v
	case OpUXTH:
		s.R[in.Rd] = s.reg(in.Rm) & 0xffff
	case OpSXTH:
		s.R[in.Rd] = uint32(int32(int16(s.reg(in.Rm))))
	case OpUXTB:
		s.R[in.Rd] = s.reg(in.Rm) & 0xff
	case OpSXTB:
		s.R[in.Rd] = uint32(int32(int8(s.reg(in.Rm))))
	case OpCLZ:
		v := s.reg(in.Rm)
		n := uint32(0)
		for ; n < 32 && v&0x80000000 == 0; n++ {
			v <<= 1
		}
		s.R[in.Rd] = n

	case OpLDR, OpLDRB, OpLDRH, OpLDRSB, OpLDRSH, OpLDRD:
		execLoad(s, in, m, res)

	case OpSTR, OpSTRB, OpSTRH, OpSTRD:
		execStore(s, in, m, res)

	case OpLDM:
		base := s.reg(in.Rn)
		addr := base
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) == 0 {
				continue
			}
			v := uint32(m.Load(addr, 4))
			res.addAccess(false, mem.MakeRange(addr, 4))
			if r == PC {
				res.Branched = true
				res.Target = v
			} else {
				s.R[r] = v
			}
			addr += 4
		}
		s.R[in.Rn] = addr // ldmia rn!, {...}

	case OpSTM:
		count := uint32(0)
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				count++
			}
		}
		base := s.reg(in.Rn) - 4*count // stmdb rn!, {...}
		addr := base
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) == 0 {
				continue
			}
			m.Store(addr, 4, uint64(s.reg(r)))
			res.addAccess(true, mem.MakeRange(addr, 4))
			addr += 4
		}
		s.R[in.Rn] = base

	case OpB:
		res.Branched = true
		res.Target = uint32(in.Imm)
	case OpBL:
		s.R[LR] = s.R[PC] + 4
		res.Branched = true
		res.Target = uint32(in.Imm)
	case OpBX:
		res.Branched = true
		res.Target = s.reg(in.Rm)

	case OpSVC:
		res.SVC = true
		res.SVCNum = in.Imm
	case OpBRIDGE:
		res.Bridge = true
		res.BridgeID = in.Imm

	default:
		panic(fmt.Sprintf("arm: unimplemented op %v", in.Op))
	}
}

func execLogical(s *State, in *Instr, res *Result) {
	op2, carry, carryValid := s.shifterOperand(in)
	var v uint32
	switch in.Op {
	case OpMOV:
		v = op2
	case OpMVN:
		v = ^op2
	case OpAND, OpTST:
		v = s.reg(in.Rn) & op2
	case OpORR:
		v = s.reg(in.Rn) | op2
	case OpEOR, OpTEQ:
		v = s.reg(in.Rn) ^ op2
	case OpBIC:
		v = s.reg(in.Rn) &^ op2
	}
	if in.Op != OpTST && in.Op != OpTEQ {
		if in.Rd == PC {
			res.Branched = true
			res.Target = v
		} else {
			s.R[in.Rd] = v
		}
	}
	if in.SetFlags || in.Op == OpTST || in.Op == OpTEQ {
		s.setNZ(v)
		if carryValid {
			s.Flags.C = carry
		}
	}
}

func execArith(s *State, in *Instr, res *Result) {
	op2, _, _ := s.shifterOperand(in)
	a := s.reg(in.Rn)
	saved := s.Flags
	var v uint32
	switch in.Op {
	case OpADD:
		v = s.addWithCarry(a, op2, false)
	case OpADC:
		v = s.addWithCarry(a, op2, saved.C)
	case OpSUB, OpCMP:
		v = s.addWithCarry(a, ^op2, true)
	case OpSBC:
		v = s.addWithCarry(a, ^op2, saved.C)
	case OpRSB:
		v = s.addWithCarry(op2, ^a, true)
	case OpCMN:
		v = s.addWithCarry(a, op2, false)
	}
	flagsOut := s.Flags
	if !in.SetFlags && in.Op != OpCMP && in.Op != OpCMN {
		s.Flags = saved // plain add/sub without S leaves flags alone
	} else {
		s.Flags = flagsOut
	}
	if in.Op == OpCMP || in.Op == OpCMN {
		return
	}
	if in.Rd == PC {
		res.Branched = true
		res.Target = v
	} else {
		s.R[in.Rd] = v
	}
}

func execShift(s *State, in *Instr, res *Result) {
	v := s.reg(in.Rn)
	var amt uint32
	if in.UseImm {
		amt = uint32(in.Imm)
	} else {
		amt = s.reg(in.Rm) & 0xff
	}
	var out uint32
	switch in.Op {
	case OpLSL:
		if amt >= 32 {
			out = 0
		} else {
			out = v << amt
		}
	case OpLSR:
		if amt >= 32 {
			out = 0
		} else {
			out = v >> amt
		}
	case OpASR:
		if amt >= 32 {
			amt = 31
		}
		out = uint32(int32(v) >> amt)
	}
	s.R[in.Rd] = out
	if in.SetFlags {
		s.setNZ(out)
	}
	_ = res
}

// effectiveAddr computes the data address for a single-register memory op
// and applies base-register writeback per the addressing mode.
func effectiveAddr(s *State, in *Instr) mem.Addr {
	base := s.reg(in.Rn)
	var off uint32
	if in.UseImm {
		off = uint32(in.Imm)
	} else {
		v := s.reg(in.Rm)
		switch in.Shift.Kind {
		case ShiftLSL:
			v <<= in.Shift.Amount
		case ShiftLSR:
			v >>= in.Shift.Amount
		case ShiftASR:
			v = uint32(int32(v) >> in.Shift.Amount)
		}
		off = v
	}
	switch in.Idx {
	case IdxOffset:
		return base + off
	case IdxPre:
		addr := base + off
		s.R[in.Rn] = addr
		return addr
	case IdxPost:
		s.R[in.Rn] = base + off
		return base
	}
	return base + off
}

func execLoad(s *State, in *Instr, m Memory, res *Result) {
	addr := effectiveAddr(s, in)
	size := in.Op.AccessSize()
	res.addAccess(false, mem.MakeRange(addr, size))
	switch in.Op {
	case OpLDR:
		v := uint32(m.Load(addr, 4))
		if in.Rd == PC {
			res.Branched = true
			res.Target = v
			return
		}
		s.R[in.Rd] = v
	case OpLDRB:
		s.R[in.Rd] = uint32(m.Load(addr, 1))
	case OpLDRH:
		s.R[in.Rd] = uint32(m.Load(addr, 2))
	case OpLDRSB:
		s.R[in.Rd] = uint32(int32(int8(m.Load(addr, 1))))
	case OpLDRSH:
		s.R[in.Rd] = uint32(int32(int16(m.Load(addr, 2))))
	case OpLDRD:
		s.R[in.Rd] = uint32(m.Load(addr, 4))
		s.R[in.Ra] = uint32(m.Load(addr+4, 4))
	}
}

func execStore(s *State, in *Instr, m Memory, res *Result) {
	addr := effectiveAddr(s, in)
	size := in.Op.AccessSize()
	res.addAccess(true, mem.MakeRange(addr, size))
	switch in.Op {
	case OpSTR:
		m.Store(addr, 4, uint64(s.reg(in.Rd)))
	case OpSTRB:
		m.Store(addr, 1, uint64(s.reg(in.Rd)))
	case OpSTRH:
		m.Store(addr, 2, uint64(s.reg(in.Rd)))
	case OpSTRD:
		m.Store(addr, 4, uint64(s.reg(in.Rd)))
		m.Store(addr+4, 4, uint64(s.reg(in.Ra)))
	}
}
