package arm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func run(t *testing.T, s *State, m Memory, ins ...Instr) *Result {
	t.Helper()
	var res Result
	for i := range ins {
		Exec(s, &ins[i], m, &res)
	}
	return &res
}

func TestMovAdd(t *testing.T) {
	var s State
	m := mem.NewMemory()
	run(t, &s, m,
		MovImm(R0, 40),
		MovImm(R1, 2),
		Add(R2, R0, R1),
	)
	if s.R[R2] != 42 {
		t.Fatalf("r2 = %d, want 42", s.R[R2])
	}
}

func TestSubFlags(t *testing.T) {
	var s State
	m := mem.NewMemory()
	run(t, &s, m, MovImm(R0, 5), SubsImm(R1, R0, 5))
	if !s.Flags.Z || s.R[R1] != 0 {
		t.Fatalf("subs 5-5: Z=%v r1=%d", s.Flags.Z, s.R[R1])
	}
	if !s.Flags.C {
		t.Fatal("subs with no borrow must set C")
	}
	run(t, &s, m, MovImm(R0, 3), SubsImm(R1, R0, 5))
	if !s.Flags.N || s.Flags.C {
		t.Fatalf("subs 3-5: N=%v C=%v, want N set, C clear", s.Flags.N, s.Flags.C)
	}
	if int32(s.R[R1]) != -2 {
		t.Fatalf("3-5 = %d", int32(s.R[R1]))
	}
}

func TestCmpConditions(t *testing.T) {
	var s State
	m := mem.NewMemory()
	run(t, &s, m, MovImm(R0, 10), CmpImm(R0, 10))
	for _, tc := range []struct {
		cond Cond
		want bool
	}{
		{EQ, true}, {NE, false}, {GE, true}, {GT, false}, {LE, true}, {LT, false},
	} {
		if got := tc.cond.Passes(s.Flags); got != tc.want {
			t.Errorf("after cmp 10,10: %v passes = %v, want %v", tc.cond, got, tc.want)
		}
	}
	run(t, &s, m, CmpImm(R0, 20)) // 10 - 20: negative
	if !LT.Passes(s.Flags) || GE.Passes(s.Flags) {
		t.Error("10 < 20 must satisfy LT, not GE")
	}
}

func TestSignedComparisonNearOverflow(t *testing.T) {
	var s State
	m := mem.NewMemory()
	// -2147483648 < 1 signed, although unsigned it is larger.
	s.R[R0] = 0x80000000
	run(t, &s, m, CmpImm(R0, 1))
	if !LT.Passes(s.Flags) {
		t.Error("INT_MIN cmp 1 must be LT (uses V flag)")
	}
	if CS.Passes(s.Flags) != true {
		t.Error("unsigned INT_MIN >= 1, C must be set")
	}
}

func TestConditionalExecutionSkips(t *testing.T) {
	var s State
	m := mem.NewMemory()
	ne := MovImm(R3, 99)
	ne.Cond = NE
	run(t, &s, m, MovImm(R0, 1), CmpImm(R0, 1), ne)
	if s.R[R3] != 0 {
		t.Fatalf("movne executed although Z set: r3=%d", s.R[R3])
	}
}

func TestShifterOperand(t *testing.T) {
	var s State
	m := mem.NewMemory()
	run(t, &s, m,
		MovImm(R1, 0x0000f300),
		MovShift(R2, R1, ShiftLSR, 12), // mterp "mov r3, rINST, lsr #12"
	)
	if s.R[R2] != 0xf {
		t.Fatalf("lsr#12 = %#x, want 0xf", s.R[R2])
	}
	run(t, &s, m, MovShift(R3, R1, ShiftLSL, 4))
	if s.R[R3] != 0x000f3000 {
		t.Fatalf("lsl#4 = %#x", s.R[R3])
	}
	s.R[R4] = 0x80000000
	run(t, &s, m, MovShift(R5, R4, ShiftASR, 31))
	if s.R[R5] != 0xffffffff {
		t.Fatalf("asr#31 of INT_MIN = %#x", s.R[R5])
	}
}

func TestUbfx(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[R7] = 0x12345678
	run(t, &s, m, Ubfx(R9, R7, 8, 4)) // mterp "ubfx r9, rINST, #8, #4"
	if s.R[R9] != 0x6 {
		t.Fatalf("ubfx #8,#4 = %#x, want 6", s.R[R9])
	}
	run(t, &s, m, Ubfx(R9, R7, 8, 11))
	if s.R[R9] != 0x456 {
		t.Fatalf("ubfx #8,#11 = %#x, want 0x456", s.R[R9])
	}
}

func TestExtensions(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[R0] = 0xffff8001
	run(t, &s, m, Uxth(R1, R0), Sxth(R2, R0), Uxtb(R3, R0))
	if s.R[R1] != 0x8001 {
		t.Errorf("uxth = %#x", s.R[R1])
	}
	if int32(s.R[R2]) != -32767 {
		t.Errorf("sxth = %d", int32(s.R[R2]))
	}
	if s.R[R3] != 0x01 {
		t.Errorf("uxtb = %#x", s.R[R3])
	}
}

func TestLoadStoreAddressing(t *testing.T) {
	var s State
	m := mem.NewMemory()
	m.Store32(0x1010, 0xcafebabe)

	// Immediate offset.
	s.R[R1] = 0x1000
	res := run(t, &s, m, Ldr(R0, R1, 0x10))
	if s.R[R0] != 0xcafebabe {
		t.Fatalf("ldr imm = %#x", s.R[R0])
	}
	if res.NAcc != 1 || res.Acc[0].Store || res.Acc[0].Range != mem.MakeRange(0x1010, 4) {
		t.Fatalf("access record = %+v", res.Acc[0])
	}

	// Register offset with shift: GET_VREG shape.
	s.R[R5] = 0x1000
	s.R[R3] = 4
	run(t, &s, m, LdrReg(R2, R5, R3, ShiftLSL, 2))
	if s.R[R2] != 0xcafebabe {
		t.Fatalf("ldr [r5, r3 lsl #2] = %#x", s.R[R2])
	}

	// Pre-index writeback: FETCH_ADVANCE_INST shape.
	m.Store16(0x2002, 0x1234)
	s.R[R4] = 0x2000
	run(t, &s, m, LdrhPre(R7, R4, 2))
	if s.R[R7] != 0x1234 || s.R[R4] != 0x2002 {
		t.Fatalf("ldrh pre: r7=%#x r4=%#x", s.R[R7], s.R[R4])
	}

	// Narrow store only touches its bytes.
	s.R[R6] = 0xffff
	s.R[R0], s.R[R4] = 0x3000, 2
	run(t, &s, m, StrhReg(R6, R0, R4))
	if v := m.Load32(0x3000); v != 0xffff0000 {
		t.Fatalf("strh result word = %#x", v)
	}
}

func TestLdrdStrd(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[R0], s.R[R1] = 0x11111111, 0x22222222
	s.R[R2] = 0x4000
	res := run(t, &s, m, Strd(R0, R1, R2, 0))
	if res.Acc[0].Range.Size() != 8 {
		t.Fatalf("strd range = %v", res.Acc[0].Range)
	}
	var s2 State
	s2.R[R2] = 0x4000
	run(t, &s2, m, Ldrd(R3, R4, R2, 0))
	if s2.R[R3] != 0x11111111 || s2.R[R4] != 0x22222222 {
		t.Fatalf("ldrd = %#x, %#x", s2.R[R3], s2.R[R4])
	}
}

func TestPushPop(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[SP] = 0x8000
	s.R[R0], s.R[R1], s.R[LR] = 1, 2, 0xdeadbeef
	res := run(t, &s, m, Push(R0, R1, LR))
	if s.R[SP] != 0x8000-12 {
		t.Fatalf("sp after push = %#x", s.R[SP])
	}
	if res.NAcc != 3 {
		t.Fatalf("push accesses = %d", res.NAcc)
	}
	s.R[R0], s.R[R1] = 0, 0
	res = run(t, &s, m, Pop(R0, R1, PC))
	if s.R[R0] != 1 || s.R[R1] != 2 {
		t.Fatalf("pop restored r0=%d r1=%d", s.R[R0], s.R[R1])
	}
	if !res.Branched || res.Target != 0xdeadbeef {
		t.Fatalf("pop {pc} must branch to lr value, got %+v", res)
	}
	if s.R[SP] != 0x8000 {
		t.Fatalf("sp after pop = %#x", s.R[SP])
	}
}

func TestBranchAndLink(t *testing.T) {
	var s State
	m := mem.NewMemory()
	s.R[PC] = 0x100
	bl := Instr{Op: OpBL, Imm: 0x500}
	var res Result
	Exec(&s, &bl, m, &res)
	if !res.Branched || res.Target != 0x500 {
		t.Fatalf("bl: %+v", res)
	}
	if s.R[LR] != 0x104 {
		t.Fatalf("lr = %#x, want 0x104", s.R[LR])
	}
	bx := BxLR()
	Exec(&s, &bx, m, &res)
	if !res.Branched || res.Target != 0x104 {
		t.Fatalf("bx lr: %+v", res)
	}
}

func TestSvcAndBridge(t *testing.T) {
	var s State
	m := mem.NewMemory()
	var res Result
	svc := Svc(7)
	Exec(&s, &svc, m, &res)
	if !res.SVC || res.SVCNum != 7 {
		t.Fatalf("svc: %+v", res)
	}
	br := Bridge(42)
	Exec(&s, &br, m, &res)
	if !res.Bridge || res.BridgeID != 42 {
		t.Fatalf("bridge: %+v", res)
	}
}

func TestStringCopyLoop(t *testing.T) {
	// Execute the paper's Figure 1 loop: copy n halfwords from src to dst.
	// r0=dst base, r1=src base, r3=counter, r4=byte offset, r5=count.
	m := mem.NewMemory()
	const src, dst = 0x10000, 0x20000
	text := "imei=356938035643809"
	for i, c := range text {
		m.Store16(src+mem.Addr(2*i), uint16(c))
	}

	var s State
	s.R[R0], s.R[R1] = dst, src
	s.R[R3], s.R[R4] = 0, 0
	s.R[R5] = uint32(len(text))

	loop := []Instr{
		LdrhReg(R6, R1, R4),         // ldrh r6, [r1, r4]
		AddsImm(R3, R3, 1),          // adds r3, r3, #1
		StrhReg(R6, R0, R4),         // strh r6, [r0, r4]
		AddsImm(R4, R4, 2),          // adds r4, r4, #2
		Cmp(R3, R5),                 // cmp r3, r5
		{Op: OpB, Cond: LT, Imm: 0}, // blt loop (handled manually below)
	}
	var res Result
	for {
		done := true
		for i := range loop {
			Exec(&s, &loop[i], m, &res)
			if i == len(loop)-1 && res.Branched {
				done = false
			}
		}
		if done {
			break
		}
	}
	for i, c := range text {
		if got := m.Load16(dst + mem.Addr(2*i)); got != uint16(c) {
			t.Fatalf("dst[%d] = %#x, want %q", i, got, c)
		}
	}
}

// Property: ADD/SUB/AND/ORR/EOR/MUL match Go 32-bit arithmetic.
func TestALUMatchesGoQuick(t *testing.T) {
	m := mem.NewMemory()
	f := func(a, b uint32) bool {
		var s State
		s.R[R0], s.R[R1] = a, b
		run(t, &s, m,
			Add(R2, R0, R1), Sub(R3, R0, R1), And(R4, R0, R1),
			Orr(R5, R0, R1), Eor(R6, R0, R1), Mul(R7, R0, R1),
		)
		return s.R[R2] == a+b && s.R[R3] == a-b && s.R[R4] == a&b &&
			s.R[R5] == a|b && s.R[R6] == a^b && s.R[R7] == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CMP flags implement correct signed and unsigned comparisons.
func TestCmpFlagsQuick(t *testing.T) {
	m := mem.NewMemory()
	f := func(a, b uint32) bool {
		var s State
		s.R[R0], s.R[R1] = a, b
		run(t, &s, m, Cmp(R0, R1))
		sa, sb := int32(a), int32(b)
		return EQ.Passes(s.Flags) == (a == b) &&
			CS.Passes(s.Flags) == (a >= b) &&
			HI.Passes(s.Flags) == (a > b) &&
			LT.Passes(s.Flags) == (sa < sb) &&
			GE.Passes(s.Flags) == (sa >= sb) &&
			GT.Passes(s.Flags) == (sa > sb) &&
			LE.Passes(s.Flags) == (sa <= sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{LdrReg(R1, R5, R3, ShiftLSL, 2), "ldr r1, [r5, r3, lsl #2]"},
		{StrhReg(R6, R0, R4), "strh r6, [r0, r4]"},
		{LdrhPre(R7, R4, 2), "ldrh r7, [r4, #2]!"},
		{MovShift(R3, R7, ShiftLSR, 12), "mov r3, r7, lsr #12"},
		{Ubfx(R9, R7, 8, 4), "ubfx r9, r7, #8, #4"},
		{AddsImm(R3, R3, 1), "adds r3, r3, #1"},
		{Mul(R0, R1, R0), "mul r0, r1, r0"},
		{BxLR(), "bx lr"},
		{Push(R0, LR), "stmdb sp!, {r0, lr}"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("disasm = %q, want %q", got, tc.want)
		}
	}
}

func TestAssemblerLabels(t *testing.T) {
	a := NewAssembler(0x1000)
	a.Emit(MovImm(R0, 0))
	a.Label("loop")
	a.Emit(AddsImm(R0, R0, 1), CmpImm(R0, 3))
	a.B(LT, "loop")
	a.B(AL, "done")
	a.Emit(MovImm(R1, 99)) // skipped
	a.Label("done")
	a.Emit(BxLR())
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if code[3].Imm != 0x1004 {
		t.Fatalf("loop target = %#x, want 0x1004", code[3].Imm)
	}
	if code[4].Imm != int32(0x1000+4*6) {
		t.Fatalf("done target = %#x", code[4].Imm)
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := NewAssembler(0)
	a.B(AL, "nowhere")
	if _, err := a.Finish(); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestAssemblerDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label must panic")
		}
	}()
	a := NewAssembler(0)
	a.Label("x")
	a.Label("x")
}
