package arm

import (
	"fmt"

	"repro/internal/mem"
)

// Decode converts an A32 instruction word located at addr back into the
// simulator's symbolic form. It recognizes exactly the encodings Encode
// produces; anything else returns an error.
func Decode(word uint32, addr mem.Addr) (Instr, error) {
	if word>>28 == 0xf {
		// The unconditional (NV) space is not part of this subset.
		return Instr{}, fmt.Errorf("arm: unconditional-space word %#08x", word)
	}
	in := Instr{Cond: condFromBits(word >> 28)}

	// UDF / bridge space (cond bits are fixed at 0xe for UDF).
	if word&0xfff000f0 == 0xe7f000f0 {
		id := (word>>8)&0xfff<<4 | word&0xf
		return Instr{Op: OpBRIDGE, Imm: int32(id & 0xffff)}, nil
	}

	switch (word >> 25) & 0x7 {
	case 0, 1:
		return decode00x(in, word)
	case 2, 3:
		return decodeWordByte(in, word)
	case 4: // block transfer
		in.RegList = uint16(word)
		in.Rn = Reg(word >> 16 & 0xf)
		switch {
		case word&0x0fd00000 == 0x08900000 || word&0x0fd00000 == 0x08b00000:
			in.Op = OpLDM
			return in, nil
		case word&0x0fd00000 == 0x09000000 || word&0x0fd00000 == 0x09200000:
			in.Op = OpSTM
			return in, nil
		}
	case 5: // branch
		off := int32(word<<8) >> 8 // sign-extend imm24
		target := int64(addr) + 8 + int64(off)*4
		in.Imm = int32(uint32(target))
		if word&(1<<24) != 0 {
			in.Op = OpBL
		} else {
			in.Op = OpB
		}
		return in, nil
	case 7:
		if word&0x0f000000 == 0x0f000000 {
			in.Op = OpSVC
			in.Imm = int32(word & 0xffffff)
			return in, nil
		}
		// Media space: UBFX/SBFX.
		if word&0x0fe00070 == 0x07e00050 || word&0x0fe00070 == 0x07a00050 {
			if word&0x0fe00070 == 0x07e00050 {
				in.Op = OpUBFX
			} else {
				in.Op = OpSBFX
			}
			in.Width = uint8(word>>16&0x1f) + 1
			in.Rd = Reg(word >> 12 & 0xf)
			in.Lsb = uint8(word >> 7 & 0x1f)
			in.Rn = Reg(word & 0xf)
			return in, nil
		}
	}
	return Instr{}, fmt.Errorf("arm: cannot decode word %#08x", word)
}

// decode00x handles the 00x space: data processing, multiplies, extras,
// extensions, BX, CLZ.
func decode00x(in Instr, word uint32) (Instr, error) {
	// Fixed patterns first.
	switch {
	case word&0x0ffffff0 == 0x012fff10:
		in.Op = OpBX
		in.Rm = Reg(word & 0xf)
		return in, nil
	case word&0x0fff0ff0 == 0x016f0f10:
		in.Op = OpCLZ
		in.Rd = Reg(word >> 12 & 0xf)
		in.Rm = Reg(word & 0xf)
		return in, nil
	case word&0x0fff0ff0 == 0x06ff0070:
		in.Op = OpUXTH
	case word&0x0fff0ff0 == 0x06bf0070:
		in.Op = OpSXTH
	case word&0x0fff0ff0 == 0x06ef0070:
		in.Op = OpUXTB
	case word&0x0fff0ff0 == 0x06af0070:
		in.Op = OpSXTB
	}
	switch in.Op {
	case OpUXTH, OpSXTH, OpUXTB, OpSXTB:
		in.Rd = Reg(word >> 12 & 0xf)
		in.Rm = Reg(word & 0xf)
		return in, nil
	}

	// Multiplies: bits [7:4] == 1001 in the 000 space.
	if word&0x0e0000f0 == 0x00000090 {
		switch word >> 21 & 0xf {
		case 0:
			in.Op = OpMUL
			in.Rd = Reg(word >> 16 & 0xf)
		case 1:
			in.Op = OpMLA
			in.Rd = Reg(word >> 16 & 0xf)
			in.Ra = Reg(word >> 12 & 0xf)
		case 4:
			in.Op = OpUMULL
			in.Ra = Reg(word >> 16 & 0xf)
			in.Rd = Reg(word >> 12 & 0xf)
		default:
			return Instr{}, fmt.Errorf("arm: unsupported multiply %#08x", word)
		}
		in.SetFlags = word&(1<<20) != 0
		in.Rm = Reg(word >> 8 & 0xf)
		in.Rn = Reg(word & 0xf)
		return in, nil
	}

	// Extra load/stores: bit7 and bit4 set with a non-zero op2.
	if word&(1<<25) == 0 && word&0x90 == 0x90 && word&0x60 != 0 {
		return decodeExtra(in, word)
	}

	// Data processing.
	opc := word >> 21 & 0xf
	op, ok := dpOpcodeRev[opc]
	if !ok {
		return Instr{}, fmt.Errorf("arm: unsupported data-processing %#08x", word)
	}
	in.Op = op
	in.SetFlags = word&(1<<20) != 0
	in.Rn = Reg(word >> 16 & 0xf)
	in.Rd = Reg(word >> 12 & 0xf)
	switch op {
	case OpCMP, OpCMN, OpTST, OpTEQ:
		if !in.SetFlags {
			// Compare opcodes with S=0 are the miscellaneous space
			// (MSR/MRS and friends), not in the subset.
			return Instr{}, fmt.Errorf("arm: miscellaneous-space word %#08x", word)
		}
		in.SetFlags = false // implicit; the symbolic form leaves it unset
	}
	if word&(1<<25) != 0 {
		imm8 := word & 0xff
		rot := (word >> 8 & 0xf) * 2
		v := imm8
		if rot != 0 {
			v = imm8>>rot | imm8<<(32-rot)
		}
		in.UseImm = true
		in.Imm = int32(v)
		return in, nil
	}
	in.Rm = Reg(word & 0xf)
	if word&(1<<4) != 0 {
		// Register-specified shifts are only supported as the explicit
		// shift operations, i.e. when the data-processing opcode is MOV;
		// register-shifted operands on other opcodes are outside the
		// subset (bit7 must also be clear for this form).
		if op != OpMOV || word&(1<<7) != 0 {
			return Instr{}, fmt.Errorf("arm: unsupported register-shift operand %#08x", word)
		}
		amountReg := Reg(word >> 8 & 0xf)
		switch word >> 5 & 3 {
		case 0:
			in.Op = OpLSL
		case 1:
			in.Op = OpLSR
		case 2:
			in.Op = OpASR
		default:
			return Instr{}, fmt.Errorf("arm: unsupported register shift %#08x", word)
		}
		in.Rn = in.Rm
		in.Rm = amountReg
		in.Rd = Reg(word >> 12 & 0xf)
		return in, nil
	}
	amount := word >> 7 & 0x1f
	kind := shiftKindFromBits(word>>5&3, amount)
	if op == OpMOV && kind != ShiftNone {
		// "mov rd, rn, lsl #n" round-trips as the explicit shift ops
		// only when amount > 0; keep MOV-with-shift form.
		in.Shift = Shift{Kind: kind, Amount: uint8(amount)}
		return in, nil
	}
	in.Shift = Shift{Kind: kind, Amount: uint8(amount)}
	return in, nil
}

func decodeWordByte(in Instr, word uint32) (Instr, error) {
	// Media space: register form (bit25) with bit4 set is not a
	// register-offset transfer; the extension instructions live here.
	if word&(1<<25) != 0 && word&(1<<4) != 0 {
		switch {
		case word&0x0fff0ff0 == 0x06ff0070:
			in.Op = OpUXTH
		case word&0x0fff0ff0 == 0x06bf0070:
			in.Op = OpSXTH
		case word&0x0fff0ff0 == 0x06ef0070:
			in.Op = OpUXTB
		case word&0x0fff0ff0 == 0x06af0070:
			in.Op = OpSXTB
		default:
			return Instr{}, fmt.Errorf("arm: unsupported media instruction %#08x", word)
		}
		in.Rd = Reg(word >> 12 & 0xf)
		in.Rm = Reg(word & 0xf)
		return in, nil
	}
	load := word&(1<<20) != 0
	byteOp := word&(1<<22) != 0
	switch {
	case load && byteOp:
		in.Op = OpLDRB
	case load:
		in.Op = OpLDR
	case byteOp:
		in.Op = OpSTRB
	default:
		in.Op = OpSTR
	}
	in.Rn = Reg(word >> 16 & 0xf)
	in.Rd = Reg(word >> 12 & 0xf)
	p := word&(1<<24) != 0
	wbit := word&(1<<21) != 0
	switch {
	case p && wbit:
		in.Idx = IdxPre
	case p:
		in.Idx = IdxOffset
	case wbit:
		// P=0, W=1 is the unprivileged (LDRT/STRT) form; not in the
		// subset.
		return Instr{}, fmt.Errorf("arm: unprivileged transfer %#08x", word)
	default:
		in.Idx = IdxPost
	}
	if word&(1<<25) == 0 {
		in.UseImm = true
		off := int32(word & 0xfff)
		if word&(1<<23) == 0 {
			off = -off
		}
		in.Imm = off
		return in, nil
	}
	if word&(1<<23) == 0 {
		// Subtracting register offsets are not representable.
		return Instr{}, fmt.Errorf("arm: negative register offset %#08x", word)
	}
	in.Rm = Reg(word & 0xf)
	amount := word >> 7 & 0x1f
	in.Shift = Shift{Kind: shiftKindFromBits(word>>5&3, amount), Amount: uint8(amount)}
	return in, nil
}

func decodeExtra(in Instr, word uint32) (Instr, error) {
	load := word&(1<<20) != 0
	switch word >> 4 & 0xf {
	case 0xb:
		if load {
			in.Op = OpLDRH
		} else {
			in.Op = OpSTRH
		}
	case 0xd:
		if load {
			in.Op = OpLDRSB
		} else {
			in.Op = OpLDRD
		}
	case 0xf:
		if load {
			in.Op = OpLDRSH
		} else {
			in.Op = OpSTRD
		}
	default:
		return Instr{}, fmt.Errorf("arm: unsupported extra transfer %#08x", word)
	}
	in.Rn = Reg(word >> 16 & 0xf)
	in.Rd = Reg(word >> 12 & 0xf)
	if in.Op == OpLDRD || in.Op == OpSTRD {
		in.Ra = in.Rd + 1 // the architecture pairs Rt with Rt+1
	}
	p := word&(1<<24) != 0
	wbit := word&(1<<21) != 0
	switch {
	case p && wbit:
		in.Idx = IdxPre
	case p:
		in.Idx = IdxOffset
	default:
		in.Idx = IdxPost
	}
	if word&(1<<22) != 0 {
		in.UseImm = true
		off := int32(word>>8&0xf)<<4 | int32(word&0xf)
		if word&(1<<23) == 0 {
			off = -off
		}
		in.Imm = off
		return in, nil
	}
	if word>>8&0xf != 0 {
		// Register-form extras keep bits [11:8] zero; anything else is
		// another space (or an invalid word).
		return Instr{}, fmt.Errorf("arm: malformed extra transfer %#08x", word)
	}
	if word&(1<<23) == 0 {
		// Subtracting register offsets are not representable.
		return Instr{}, fmt.Errorf("arm: negative register offset %#08x", word)
	}
	in.Rm = Reg(word & 0xf)
	return in, nil
}
