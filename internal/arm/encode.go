package arm

import (
	"fmt"

	"repro/internal/mem"
)

// Binary encoding to and from real ARM A32 instruction words. The machine
// executes the symbolic Instr form directly, but the encoder lets code
// images be materialized into simulated memory as genuine ARM words (for
// debuggers and round-trip tooling) and lets real A32 words be decoded into
// the simulator's form.
//
// Fidelity notes:
//   - Data-processing immediates must be expressible as an 8-bit value
//     rotated right by an even amount, as on real ARM; Encode returns an
//     error otherwise (real compilers would use a literal pool or
//     movw/movt, which this subset does not model).
//   - OpBRIDGE uses the permanently-undefined UDF space (cond=AL,
//     0xE7F...F...) with the bridge ID in the immediate.
//   - B/BL immediates are PC-relative on the wire; Encode/Decode take the
//     instruction's own address to convert from/to the absolute targets
//     the symbolic form carries.

// EncodeError reports an instruction that has no encoding in this subset.
type EncodeError struct {
	In     Instr
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("arm: cannot encode %q: %s", e.In.String(), e.Reason)
}

func encErr(in Instr, reason string) error { return &EncodeError{In: in, Reason: reason} }

// encodeRotImm expresses v as (imm8 ror 2*rot); ok is false if impossible.
func encodeRotImm(v uint32) (imm8, rot uint32, ok bool) {
	for rot = 0; rot < 16; rot++ {
		r := 2 * rot
		// v == imm8 ROR r  ⇔  imm8 == v ROL r.
		rolled := v
		if r != 0 {
			rolled = v<<r | v>>(32-r)
		}
		if rolled <= 0xff {
			return rolled, rot, true
		}
	}
	return 0, 0, false
}

// dpOpcode maps data-processing operations to their 4-bit opcode.
var dpOpcode = map[Op]uint32{
	OpAND: 0x0, OpEOR: 0x1, OpSUB: 0x2, OpRSB: 0x3,
	OpADD: 0x4, OpADC: 0x5, OpSBC: 0x6,
	OpTST: 0x8, OpTEQ: 0x9, OpCMP: 0xa, OpCMN: 0xb,
	OpORR: 0xc, OpMOV: 0xd, OpBIC: 0xe, OpMVN: 0xf,
}

var dpOpcodeRev = func() map[uint32]Op {
	m := make(map[uint32]Op, len(dpOpcode))
	for op, c := range dpOpcode {
		m[c] = op
	}
	return m
}()

func shiftTypeBits(k ShiftKind) uint32 {
	switch k {
	case ShiftLSL, ShiftNone:
		return 0
	case ShiftLSR:
		return 1
	case ShiftASR:
		return 2
	case ShiftROR:
		return 3
	}
	return 0
}

func shiftKindFromBits(b uint32, amount uint32) ShiftKind {
	switch b {
	case 0:
		if amount == 0 {
			return ShiftNone
		}
		return ShiftLSL
	case 1:
		return ShiftLSR
	case 2:
		return ShiftASR
	default:
		return ShiftROR
	}
}

// Encode produces the A32 word for in, located at addr (needed for
// PC-relative branches).
func Encode(in Instr, addr mem.Addr) (uint32, error) {
	cond := uint32(condBits(in.Cond)) << 28
	s := uint32(0)
	if in.SetFlags {
		s = 1 << 20
	}

	switch in.Op {
	case OpNOP:
		// MOV r0, r0 is the classic ARM NOP.
		return cond | 0x01a00000, nil

	case OpMOV, OpMVN, OpAND, OpORR, OpEOR, OpBIC, OpADD, OpADC, OpSUB,
		OpSBC, OpRSB, OpCMP, OpCMN, OpTST, OpTEQ:
		opc := dpOpcode[in.Op] << 21
		switch in.Op {
		case OpCMP, OpCMN, OpTST, OpTEQ:
			s = 1 << 20 // compare ops always set flags
		}
		base := cond | opc | s | uint32(in.Rn)<<16 | uint32(in.Rd)<<12
		if in.UseImm {
			imm8, rot, ok := encodeRotImm(uint32(in.Imm))
			if !ok {
				return 0, encErr(in, "immediate not expressible as rotated imm8")
			}
			return base | 1<<25 | rot<<8 | imm8, nil
		}
		sh := shiftTypeBits(in.Shift.Kind)<<5 | uint32(in.Shift.Amount)<<7
		return base | sh | uint32(in.Rm), nil

	case OpLSL, OpLSR, OpASR:
		// Encoded as MOV with a shifted operand.
		var k ShiftKind
		switch in.Op {
		case OpLSL:
			k = ShiftLSL
		case OpLSR:
			k = ShiftLSR
		default:
			k = ShiftASR
		}
		base := cond | dpOpcode[OpMOV]<<21 | s | uint32(in.Rd)<<12
		if in.UseImm {
			return base | uint32(in.Imm&31)<<7 | shiftTypeBits(k)<<5 | uint32(in.Rn), nil
		}
		// Register-specified shift: bits [7:4] = amount-reg 0 1 1 1? —
		// Rs in [11:8], bit4 = 1.
		return base | uint32(in.Rm)<<8 | shiftTypeBits(k)<<5 | 1<<4 | uint32(in.Rn), nil

	case OpMUL:
		return cond | s | uint32(in.Rd)<<16 | uint32(in.Rm)<<8 | 0x90 | uint32(in.Rn), nil
	case OpMLA:
		return cond | 1<<21 | s | uint32(in.Rd)<<16 | uint32(in.Ra)<<12 |
			uint32(in.Rm)<<8 | 0x90 | uint32(in.Rn), nil
	case OpUMULL:
		return cond | 1<<23 | uint32(in.Ra)<<16 | uint32(in.Rd)<<12 |
			uint32(in.Rm)<<8 | 0x90 | uint32(in.Rn), nil

	case OpUBFX, OpSBFX:
		if in.Width == 0 {
			return 0, encErr(in, "zero-width bit field")
		}
		u := uint32(0x7a)
		if in.Op == OpUBFX {
			u = 0x7e
		}
		return cond | u<<21 | uint32(in.Width-1)<<16 | uint32(in.Rd)<<12 |
			uint32(in.Lsb)<<7 | 0x50 | uint32(in.Rn), nil

	case OpUXTH:
		return cond | 0x06ff0070 | uint32(in.Rd)<<12 | uint32(in.Rm), nil
	case OpSXTH:
		return cond | 0x06bf0070 | uint32(in.Rd)<<12 | uint32(in.Rm), nil
	case OpUXTB:
		return cond | 0x06ef0070 | uint32(in.Rd)<<12 | uint32(in.Rm), nil
	case OpSXTB:
		return cond | 0x06af0070 | uint32(in.Rd)<<12 | uint32(in.Rm), nil
	case OpCLZ:
		return cond | 0x016f0f10 | uint32(in.Rd)<<12 | uint32(in.Rm), nil

	case OpLDR, OpLDRB, OpSTR, OpSTRB:
		return encodeWordByte(in, cond)
	case OpLDRH, OpLDRSB, OpLDRSH, OpSTRH, OpLDRD, OpSTRD:
		return encodeExtra(in, cond)

	case OpLDM: // ldmia rn!, {list}
		return cond | 0x08b00000 | uint32(in.Rn)<<16 | uint32(in.RegList), nil
	case OpSTM: // stmdb rn!, {list}
		return cond | 0x09200000 | uint32(in.Rn)<<16 | uint32(in.RegList), nil

	case OpB, OpBL:
		offset := int64(int32(in.Imm)) - int64(addr) - 8
		if offset&3 != 0 {
			return 0, encErr(in, "misaligned branch target")
		}
		imm24 := uint32(offset>>2) & 0xffffff
		if offset>>2 > 0x7fffff || offset>>2 < -0x800000 {
			return 0, encErr(in, "branch target out of range")
		}
		w := cond | 0x0a000000 | imm24
		if in.Op == OpBL {
			w |= 1 << 24
		}
		return w, nil
	case OpBX:
		return cond | 0x012fff10 | uint32(in.Rm), nil

	case OpSVC:
		return cond | 0x0f000000 | uint32(in.Imm)&0xffffff, nil
	case OpBRIDGE:
		// UDF space: 0xe7fXXXfX with a 16-bit immediate.
		id := uint32(in.Imm) & 0xffff
		return 0xe7f000f0 | (id>>4)<<8 | id&0xf, nil
	}
	return 0, encErr(in, "no encoding in this subset")
}

func condBits(c Cond) uint8 {
	// Our enum order differs from the architectural one (AL first);
	// translate.
	switch c {
	case EQ:
		return 0x0
	case NE:
		return 0x1
	case CS:
		return 0x2
	case CC:
		return 0x3
	case MI:
		return 0x4
	case PL:
		return 0x5
	case VS:
		return 0x6
	case VC:
		return 0x7
	case HI:
		return 0x8
	case LS:
		return 0x9
	case GE:
		return 0xa
	case LT:
		return 0xb
	case GT:
		return 0xc
	case LE:
		return 0xd
	default: // AL
		return 0xe
	}
}

func condFromBits(b uint32) Cond {
	switch b {
	case 0x0:
		return EQ
	case 0x1:
		return NE
	case 0x2:
		return CS
	case 0x3:
		return CC
	case 0x4:
		return MI
	case 0x5:
		return PL
	case 0x6:
		return VS
	case 0x7:
		return VC
	case 0x8:
		return HI
	case 0x9:
		return LS
	case 0xa:
		return GE
	case 0xb:
		return LT
	case 0xc:
		return GT
	case 0xd:
		return LE
	default:
		return AL
	}
}

// encodeWordByte handles LDR/STR/LDRB/STRB (single word/byte transfers).
func encodeWordByte(in Instr, cond uint32) (uint32, error) {
	w := cond | 1<<26
	if in.Op == OpLDR || in.Op == OpLDRB {
		w |= 1 << 20
	}
	if in.Op == OpLDRB || in.Op == OpSTRB {
		w |= 1 << 22
	}
	w |= uint32(in.Rn)<<16 | uint32(in.Rd)<<12
	// P/U/W from addressing mode.
	switch in.Idx {
	case IdxOffset:
		w |= 1 << 24
	case IdxPre:
		w |= 1<<24 | 1<<21
	case IdxPost:
		// P=0, W=0
	}
	if in.UseImm {
		off := in.Imm
		u := uint32(1)
		if off < 0 {
			u = 0
			off = -off
		}
		if off > 0xfff {
			return 0, encErr(in, "offset exceeds 12 bits")
		}
		return w | u<<23 | uint32(off), nil
	}
	// Register offset (always U=1 in this subset).
	return w | 1<<25 | 1<<23 |
		uint32(in.Shift.Amount)<<7 | shiftTypeBits(in.Shift.Kind)<<5 | uint32(in.Rm), nil
}

// encodeExtra handles halfword/signed/dual transfers.
func encodeExtra(in Instr, cond uint32) (uint32, error) {
	var sh uint32
	load := uint32(0)
	switch in.Op {
	case OpLDRH:
		sh, load = 0xb, 1
	case OpLDRSB:
		sh, load = 0xd, 1
	case OpLDRSH:
		sh, load = 0xf, 1
	case OpSTRH:
		sh = 0xb
	case OpLDRD:
		sh = 0xd // LDRD encodes as L=0, op2=1101
	case OpSTRD:
		sh = 0xf // STRD: L=0, op2=1111
	}
	w := cond | load<<20 | uint32(in.Rn)<<16 | uint32(in.Rd)<<12 | sh<<4
	switch in.Idx {
	case IdxOffset:
		w |= 1 << 24
	case IdxPre:
		w |= 1<<24 | 1<<21
	case IdxPost:
	}
	if in.UseImm {
		off := in.Imm
		u := uint32(1)
		if off < 0 {
			u = 0
			off = -off
		}
		if off > 0xff {
			return 0, encErr(in, "offset exceeds 8 bits")
		}
		return w | 1<<22 | u<<23 | (uint32(off)>>4)<<8 | uint32(off)&0xf, nil
	}
	if in.Shift.Kind != ShiftNone {
		return 0, encErr(in, "halfword transfers take unshifted register offsets")
	}
	return w | 1<<23 | uint32(in.Rm), nil
}
