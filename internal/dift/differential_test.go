package dift_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dift"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// The differential property (§2 of the paper frames PIFT as a lossy
// approximation of exact DIFT): with an unbounded tainting window
// (NI → ∞), an unbounded propagation budget (NT → ∞), and the untainting
// rule disabled, the PIFT heuristic can only over-taint, never
// under-taint. Proof sketch, by induction over the event stream: suppose
// DIFT's memory taint is a subset of PIFT's so far. DIFT taints memory
// only at a store of a tainted register, and that register's taint traces
// back to an earlier load overlapping DIFT-tainted — hence PIFT-tainted —
// memory. That load opened a PIFT window which (NI = ∞) never expires, so
// the store lands inside an open window with budget (NT = ∞) to spare and
// PIFT taints the same range. DIFT's strong updates only shrink its own
// set, and with Untaint off PIFT's set never shrinks. So every
// DIFT-tainted sink must also be a PIFT-tainted sink.
//
// TestDifferentialPIFTSupersetOfDIFT checks that property on seeded
// random straight-line ARM programs: same machine, both trackers
// attached, sink checks swept across the data arena, verdicts compared
// tag by tag.

const (
	diffArenaBase = 0x2000 // data arena the programs load/store into
	diffArenaSize = 256
	diffTaintSize = 64 // leading sub-arena registered as taint source
	diffCodeBase  = 0x8000
)

// diffProgram assembles a random straight-line program: pointer setup,
// seeded register constants, then a run of loads, stores, and ALU ops
// over R0..R5 with all memory traffic confined to the arena. No branches
// — every program retires every instruction and halts at the final SVC.
func diffProgram(rng *rand.Rand) []arm.Instr {
	a := arm.NewAssembler(diffCodeBase)
	a.Emit(arm.MovImm(arm.R8, diffArenaBase))
	for r := arm.R0; r <= arm.R5; r++ {
		a.Emit(arm.MovImm(r, int32(rng.Intn(1<<16))))
	}
	regs := []arm.Reg{arm.R0, arm.R1, arm.R2, arm.R3, arm.R4, arm.R5}
	reg := func() arm.Reg { return regs[rng.Intn(len(regs))] }
	n := 40 + rng.Intn(100)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			a.Emit(arm.Ldr(reg(), arm.R8, int32(rng.Intn(diffArenaSize/4))*4))
		case 1:
			a.Emit(arm.Ldrb(reg(), arm.R8, int32(rng.Intn(diffArenaSize))))
		case 2:
			a.Emit(arm.Ldrh(reg(), arm.R8, int32(rng.Intn(diffArenaSize/2))*2))
		case 3:
			a.Emit(arm.Str(reg(), arm.R8, int32(rng.Intn(diffArenaSize/4))*4))
		case 4:
			a.Emit(arm.Strb(reg(), arm.R8, int32(rng.Intn(diffArenaSize))))
		case 5:
			a.Emit(arm.Strh(reg(), arm.R8, int32(rng.Intn(diffArenaSize/2))*2))
		case 6:
			a.Emit(arm.Add(reg(), reg(), reg()))
		case 7:
			a.Emit(arm.Eor(reg(), reg(), reg()))
		case 8:
			a.Emit(arm.Orr(reg(), reg(), reg()))
		case 9:
			// Constant overwrite: clears register taint in the oracle,
			// exercising the direction PIFT cannot see.
			a.Emit(arm.MovImm(reg(), int32(rng.Intn(1<<12))))
		}
	}
	a.Emit(arm.Svc(0))
	code, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return code
}

func TestDifferentialPIFTSupersetOfDIFT(t *testing.T) {
	const seeds = 250 // acceptance floor is 200; leave margin
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			code := diffProgram(rand.New(rand.NewSource(seed)))

			reg := metrics.NewRegistry()
			machine := cpu.NewMachine()
			machine.SetMetrics(cpu.NewMachineMetrics(reg))

			oracle := dift.New()
			oracle.SetMetrics(dift.NewOracleMetrics(reg))
			machine.AttachSink(oracle)
			machine.AttachHook(oracle)

			// The permissive PIFT corner: window never expires, budget
			// never runs out, untainting off.
			pift := core.NewTracker(core.Config{NI: 1 << 40, NT: 1 << 30}, nil)
			pift.SetMetrics(core.NewTrackerMetrics(reg))
			machine.AttachSink(pift)

			proc := cpu.NewProc(1, &cpu.Image{Base: diffCodeBase, Code: code}, diffCodeBase)
			machine.RegisterSource(proc, mem.MakeRange(diffArenaBase, diffTaintSize))
			if _, err := machine.Run(proc, 100_000); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}

			// Sweep the arena with sink checks; both trackers see the same
			// tagged events.
			for off := mem.Addr(0); off < diffArenaSize; off += 8 {
				machine.CheckSink(proc, mem.MakeRange(diffArenaBase+off, 8))
			}

			oracleVerdicts := map[int]bool{}
			for _, v := range oracle.Verdicts() {
				oracleVerdicts[v.Tag] = v.Tainted
			}
			piftTainted := 0
			for _, v := range pift.Verdicts() {
				if v.Tainted {
					piftTainted++
				}
				if oracleVerdicts[v.Tag] && !v.Tainted {
					t.Errorf("seed %d: tag %d tainted under DIFT but clean under PIFT — heuristic under-taints", seed, v.Tag)
				}
			}
			if len(pift.Verdicts()) != len(oracle.Verdicts()) {
				t.Fatalf("seed %d: verdict counts diverge: pift %d, dift %d",
					seed, len(pift.Verdicts()), len(oracle.Verdicts()))
			}

			// The metrics registry saw both engines on the same run; log
			// the paper's headline ratio of analysis work to front-end
			// events (visible with -v).
			snap := reg.Snapshot()
			events := snap.Counters["pift_cpu_loads_total"] + snap.Counters["pift_cpu_stores_total"]
			oracleOps := snap.Counters["pift_dift_reg_taint_ops_total"] +
				snap.Counters["pift_dift_mem_taint_ops_total"]
			if events == 0 {
				t.Fatalf("seed %d: machine metrics recorded no memory events", seed)
			}
			t.Logf("seed %d: %d mem events, %d oracle taint ops (ratio %.2f), pift tainted %d/%d sinks",
				seed, events, oracleOps, float64(oracleOps)/float64(events),
				piftTainted, len(pift.Verdicts()))
		})
	}
}
