package dift

import "repro/internal/metrics"

// OracleMetrics wires the exact tracker's shadow work into live counters.
// Scraped next to the PIFT tracker and cpu metrics, it gives the live
// PIFT-vs-DIFT event ratio (pift_dift_instructions_total over
// pift_cpu_loads_total + pift_cpu_stores_total) that the paper's headline
// "order of magnitude fewer events" claim is about. The zero value
// disables instrumentation.
type OracleMetrics struct {
	Instructions *metrics.Counter // instructions shadow-processed
	RegTaintOps  *metrics.Counter // register taint-bit changes
	MemTaintOps  *metrics.Counter // memory taint adds + strong-update removes
}

// NewOracleMetrics registers the oracle metric set under its canonical
// names; registration is idempotent.
func NewOracleMetrics(r *metrics.Registry) OracleMetrics {
	return OracleMetrics{
		Instructions: r.Counter("pift_dift_instructions_total",
			"Instructions shadow-processed by the exact DIFT oracle."),
		RegTaintOps: r.Counter("pift_dift_reg_taint_ops_total",
			"Register taint-bit updates that changed state."),
		MemTaintOps: r.Counter("pift_dift_mem_taint_ops_total",
			"Memory taint updates (adds and strong-update removes)."),
	}
}

// SetMetrics attaches (or, with the zero value, detaches) live metrics.
func (t *Tracker) SetMetrics(m OracleMetrics) { t.m = m }
