package dift_test

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/dift"
	"repro/internal/mem"
)

func TestPushPopPartialTaint(t *testing.T) {
	// Push a mixed set of tainted/clean registers; pop into different
	// registers; the taint must follow the memory slots, not the names.
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.SP, 0x8000),
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0), // r0 tainted
			arm.MovImm(arm.R2, 7),      // r2 clean
			arm.MovImm(arm.R3, 8),      // r3 clean
			arm.Push(arm.R0, arm.R2, arm.R3),
			arm.Pop(arm.R9, arm.R10, arm.R11), // r9←slot(r0) tainted, others clean
			arm.MovImm(arm.R1, 0x6000),
			arm.Str(arm.R9, arm.R1, 0),
			arm.Str(arm.R10, arm.R1, 8),
			arm.Str(arm.R11, arm.R1, 16),
		)
	})
	if !tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("taint lost through stm/ldm slot 0")
	}
	if tr.Check(1, mem.MakeRange(0x6008, 4)) || tr.Check(1, mem.MakeRange(0x6010, 4)) {
		t.Error("clean slots gained taint through stm/ldm")
	}
}

func TestLdrdStrdHalfTaint(t *testing.T) {
	// Only the low word of a pair is tainted; strd/ldrd must keep the
	// halves separate.
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0), // tainted low
			arm.MovImm(arm.R2, 9),      // clean high
			arm.MovImm(arm.R3, 0x6000),
			arm.Strd(arm.R0, arm.R2, arm.R3, 0), // [6000]=tainted, [6004]=clean
			arm.Ldrd(arm.R9, arm.R10, arm.R3, 0),
			arm.Str(arm.R10, arm.R3, 16), // clean half forwarded
			arm.Str(arm.R9, arm.R3, 24),  // tainted half forwarded
		)
	})
	if tr.Check(1, mem.MakeRange(0x6010, 4)) {
		t.Error("high half gained taint")
	}
	if !tr.Check(1, mem.MakeRange(0x6018, 4)) {
		t.Error("low half lost taint")
	}
}

func TestUmullPropagation(t *testing.T) {
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0), // tainted
			arm.MovImm(arm.R2, 3),
			arm.Umull(arm.R9, arm.R10, arm.R0, arm.R2), // both halves tainted
			arm.MovImm(arm.R3, 0x6000),
			arm.Str(arm.R9, arm.R3, 0),
			arm.Str(arm.R10, arm.R3, 8),
		)
	})
	if !tr.Check(1, mem.MakeRange(0x6000, 4)) || !tr.Check(1, mem.MakeRange(0x6008, 4)) {
		t.Error("umull must taint both result halves")
	}
}

func TestShiftByTaintedAmount(t *testing.T) {
	// A register-specified shift where only the amount is tainted still
	// taints the result (data-dependent value).
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R2, arm.R1, 0), // tainted amount
			arm.MovImm(arm.R0, 1),
			arm.Instr{Op: arm.OpLSL, Rd: arm.R3, Rn: arm.R0, Rm: arm.R2},
			arm.MovImm(arm.R4, 0x6000),
			arm.Str(arm.R3, arm.R4, 0),
		)
	})
	if !tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("shift by tainted amount must taint the result")
	}
}

func TestResetlessIsolationAcrossPIDs(t *testing.T) {
	tr := dift.New()
	if tr.TaintedBytes() != 0 {
		t.Fatal("fresh tracker not empty")
	}
	if tr.RegTainted(42, arm.R0) {
		t.Fatal("unknown pid register tainted")
	}
	if tr.Check(42, mem.MakeRange(0, 4)) {
		t.Fatal("unknown pid memory tainted")
	}
}
