package dift_test

import (
	"testing"

	"repro/internal/android"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/dift"
	"repro/internal/jrt"
	"repro/internal/mem"
)

// runSeq executes raw native instructions on a machine with the tracker
// attached, after tainting the given source range.
func runSeq(t *testing.T, source mem.Range, build func(a *arm.Assembler)) (*dift.Tracker, *cpu.Machine, *cpu.Proc) {
	t.Helper()
	a := arm.NewAssembler(0x1000)
	build(a)
	a.Emit(arm.Svc(0))
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	machine := cpu.NewMachine()
	tr := dift.New()
	machine.AttachSink(tr)
	machine.AttachHook(tr)
	proc := cpu.NewProc(1, &cpu.Image{Base: 0x1000, Code: code}, 0x1000)
	machine.RegisterSource(proc, source)
	if _, err := machine.Run(proc, 100000); err != nil {
		t.Fatal(err)
	}
	return tr, machine, proc
}

func TestLoadComputeStoreChain(t *testing.T) {
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0),    // r0 tainted
			arm.AddImm(arm.R0, arm.R0, 7), // stays tainted
			arm.MovImm(arm.R2, 0x6000),
			arm.Str(arm.R0, arm.R2, 0), // 0x6000 tainted
			arm.MovImm(arm.R3, 1),
			arm.Str(arm.R3, arm.R2, 8), // 0x6008 clean (r3 from imm)
		)
	})
	if !tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("derived store target must be tainted")
	}
	if tr.Check(1, mem.MakeRange(0x6008, 4)) {
		t.Error("immediate-derived store must stay clean")
	}
}

func TestMovImmediateClearsTaint(t *testing.T) {
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0), // r0 tainted
			arm.MovImm(arm.R0, 3),      // overwritten with constant
			arm.MovImm(arm.R2, 0x6000),
			arm.Str(arm.R0, arm.R2, 0),
		)
	})
	if tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("constant overwrite must clear register taint")
	}
}

func TestStrongUpdateUntaints(t *testing.T) {
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0),
			arm.MovImm(arm.R2, 0x6000),
			arm.Str(arm.R0, arm.R2, 0), // taint 0x6000
			arm.MovImm(arm.R3, 9),
			arm.Str(arm.R3, arm.R2, 0), // clean overwrite
		)
	})
	if tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("strong update must untaint the overwritten word")
	}
}

func TestBinaryOpMergesTaint(t *testing.T) {
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0),      // tainted
			arm.MovImm(arm.R2, 5),           // clean
			arm.Eor(arm.R3, arm.R2, arm.R0), // merged → tainted
			arm.MovImm(arm.R2, 0x6000),
			arm.Str(arm.R3, arm.R2, 0),
		)
	})
	if !tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("xor with tainted operand must taint the result")
	}
}

func TestConditionalSkippedInstrNoPropagation(t *testing.T) {
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		mvNE := arm.Mov(arm.R3, arm.R0)
		mvNE.Cond = arm.NE
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0), // r0 tainted
			arm.MovImm(arm.R3, 0),
			arm.CmpImm(arm.R3, 0), // Z set → NE fails
			mvNE,                  // skipped: r3 stays clean
			arm.MovImm(arm.R2, 0x6000),
			arm.Str(arm.R3, arm.R2, 0),
		)
	})
	if tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("skipped conditional move must not propagate taint")
	}
}

func TestNarrowLoadPartialTaint(t *testing.T) {
	// Only bytes 2-3 of the word are tainted; a halfword load of bytes
	// 0-1 must stay clean, bytes 2-3 tainted.
	tr, _, _ := runSeq(t, mem.MakeRange(0x5002, 2), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldrh(arm.R0, arm.R1, 0), // clean half
			arm.Ldrh(arm.R2, arm.R1, 2), // tainted half
			arm.MovImm(arm.R3, 0x6000),
			arm.Strh(arm.R0, arm.R3, 0),
			arm.Strh(arm.R2, arm.R3, 8),
		)
	})
	if tr.Check(1, mem.MakeRange(0x6000, 2)) {
		t.Error("clean halfword store mis-tainted")
	}
	if !tr.Check(1, mem.MakeRange(0x6008, 2)) {
		t.Error("tainted halfword store missed")
	}
}

func TestPushPopPropagation(t *testing.T) {
	tr, _, _ := runSeq(t, mem.MakeRange(0x5000, 4), func(a *arm.Assembler) {
		a.Emit(
			arm.MovImm(arm.SP, 0x8000),
			arm.MovImm(arm.R1, 0x5000),
			arm.Ldr(arm.R0, arm.R1, 0), // tainted
			arm.MovImm(arm.R2, 7),      // clean
			arm.Push(arm.R0, arm.R2),
			arm.MovImm(arm.R0, 0),
			arm.MovImm(arm.R2, 0),
			arm.Pop(arm.R0, arm.R2), // restore: r0 tainted again, r2 clean
			arm.MovImm(arm.R3, 0x6000),
			arm.Str(arm.R0, arm.R3, 0),
			arm.Str(arm.R2, arm.R3, 8),
		)
	})
	if !tr.Check(1, mem.MakeRange(0x6000, 4)) {
		t.Error("taint lost through push/pop")
	}
	if tr.Check(1, mem.MakeRange(0x6008, 4)) {
		t.Error("clean register gained taint through push/pop")
	}
}

// runApp executes a program under both trackers.
func runApp(t *testing.T, prog *dalvik.Program) (piftHit, diftHit bool, res *android.RunResult) {
	t.Helper()
	pift := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	exact := dift.New()
	r, err := android.Run(prog, android.RunOptions{
		Sinks: []cpu.EventSink{pift, exact},
		Hooks: []cpu.InstrHook{exact},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pift.Verdicts() {
		piftHit = piftHit || v.Tainted
	}
	for _, v := range exact.Verdicts() {
		diftHit = diftHit || v.Tainted
	}
	return piftHit, diftHit, r
}

func leakProg(t *testing.T) *dalvik.Program {
	t.Helper()
	b := dalvik.NewProgram("leak")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetDeviceID)
	m.MoveResultObject(0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodAppend, 1, 0)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodToString, 1)
	m.MoveResultObject(2)
	m.ConstString(3, "5551000")
	m.InvokeStatic(android.MethodSendSMS, 3, 2)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(android.KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBothTrackersAgreeOnDirectLeak(t *testing.T) {
	piftHit, diftHit, _ := runApp(t, leakProg(t))
	if !diftHit {
		t.Error("exact tracker missed a direct leak")
	}
	if !piftHit {
		t.Error("PIFT missed a direct leak at (13,3)")
	}
}

func TestDIFTCatchesEvasionPIFTMisses(t *testing.T) {
	// The §4.2 evasion: DIFT's register-level tracking is immune to the
	// dummy-instruction gap; PIFT is not.
	b := dalvik.NewProgram("evasion")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetDeviceID)
	m.MoveResultObject(0)
	m.InvokeStatic(jrt.MethodSlowCopy, 0)
	m.MoveResultObject(1)
	m.ConstString(2, "5551000")
	m.InvokeStatic(android.MethodSendSMS, 2, 1)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(android.KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	piftHit, diftHit, _ := runApp(t, prog)
	if !diftHit {
		t.Error("exact tracker must catch the evasion flow")
	}
	if piftHit {
		t.Error("PIFT should miss the evasion flow")
	}
}

func TestWorkRatio(t *testing.T) {
	// The paper's core overhead argument: PIFT processes only memory
	// events, which are a small fraction of all instructions.
	pift := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	exact := dift.New()
	_, err := android.Run(leakProg(t), android.RunOptions{
		Sinks: []cpu.EventSink{pift, exact},
		Hooks: []cpu.InstrHook{exact},
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := pift.Stats()
	ds := exact.Stats()
	events := ps.Loads + ps.Stores
	if events == 0 || ds.Instructions == 0 {
		t.Fatal("no work recorded")
	}
	ratio := float64(ds.Instructions) / float64(events)
	if ratio < 2 {
		t.Errorf("DIFT/PIFT work ratio = %.2f; expected memory ops to be a minority", ratio)
	}
	t.Logf("instructions=%d memory events=%d ratio=%.2f", ds.Instructions, events, ratio)
}

func TestDIFTNoFalsePositiveOnBenign(t *testing.T) {
	b := dalvik.NewProgram("benign")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetDeviceID)
	m.MoveResultObject(0)
	m.ConstString(1, "nothing to see")
	m.ConstString(2, "5551000")
	m.InvokeStatic(android.MethodSendSMS, 2, 1)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(android.KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	piftHit, diftHit, _ := runApp(t, prog)
	if diftHit || piftHit {
		t.Errorf("benign app flagged: pift=%v dift=%v", piftHit, diftHit)
	}
}
