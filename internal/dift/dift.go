// Package dift implements the full register-level dynamic information-flow
// tracker the paper uses as its implicit comparison point ("the
// full-tracking techniques would propagate the taint associated with the
// source address to register r6 and then to the destination address").
//
// Unlike PIFT, which sees only the memory-event stream, this tracker
// observes every retired instruction with architectural detail (it attaches
// as a cpu.InstrHook) and propagates a taint bit per register exactly:
// loads copy memory taint into registers, ALU ops OR their source-register
// taints into the destination, stores write register taint back to memory
// with strong updates. Control-flow (implicit) taint is not tracked, per
// the paper's threat model ("the flow of data from source to sink is of
// the direct kind").
//
// It consumes the same software events as PIFT for source registrations
// and sink checks, so accuracy results are directly comparable.
package dift

import (
	"repro/internal/arm"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/taint"
)

// Stats counts the shadow work the tracker performs; comparing
// Instructions against a PIFT tracker's Loads+Stores quantifies the
// paper's "order of magnitude less frequent" argument.
type Stats struct {
	Instructions uint64 // instructions shadow-processed
	RegTaintOps  uint64 // register taint-bit updates that changed state
	MemTaintOps  uint64 // memory taint updates (adds + strong-update removes)
	SinkChecks   uint64
	TaintedSinks uint64
}

// SinkVerdict mirrors core.SinkVerdict for the exact tracker.
type SinkVerdict struct {
	Tag     int
	PID     uint32
	Tainted bool
}

type procShadow struct {
	reg [arm.NumRegs]bool
	mem taint.RangeSet
}

// Tracker is the exact register-level tracker. It implements both
// cpu.InstrHook (for propagation) and cpu.EventSink (for source/sink
// commands; load/store events are ignored because the hook sees them with
// more detail).
type Tracker struct {
	procs    map[uint32]*procShadow
	stats    Stats
	verdicts []SinkVerdict
	m        OracleMetrics
}

// New returns an empty exact tracker.
func New() *Tracker {
	return &Tracker{procs: make(map[uint32]*procShadow)}
}

func (t *Tracker) proc(pid uint32) *procShadow {
	p := t.procs[pid]
	if p == nil {
		p = &procShadow{}
		t.procs[pid] = p
	}
	return p
}

// Stats returns a snapshot of the work counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Verdicts returns the sink verdicts recorded so far.
func (t *Tracker) Verdicts() []SinkVerdict { return t.verdicts }

// TaintedBytes returns the currently tainted memory bytes across processes.
func (t *Tracker) TaintedBytes() uint64 {
	var n uint64
	for _, p := range t.procs {
		n += p.mem.Bytes()
	}
	return n
}

// Check answers a synchronous memory-taint query.
func (t *Tracker) Check(pid uint32, r mem.Range) bool {
	p := t.procs[pid]
	return p != nil && p.mem.Overlaps(r)
}

// RegTainted exposes a register's shadow bit for tests.
func (t *Tracker) RegTainted(pid uint32, r arm.Reg) bool {
	p := t.procs[pid]
	return p != nil && p.reg[r]
}

// Event implements cpu.EventSink for the software command stream.
func (t *Tracker) Event(ev cpu.Event) {
	switch ev.Kind {
	case cpu.EvSourceRegister:
		t.proc(ev.PID).mem.Add(ev.Range)
	case cpu.EvSinkCheck:
		t.stats.SinkChecks++
		tainted := t.Check(ev.PID, ev.Range)
		if tainted {
			t.stats.TaintedSinks++
		}
		t.verdicts = append(t.verdicts, SinkVerdict{Tag: ev.Tag, PID: ev.PID, Tainted: tainted})
	}
}

// Retired implements cpu.InstrHook: exact propagation for one instruction.
func (t *Tracker) Retired(p *cpu.Proc, in *arm.Instr, res *arm.Result) {
	t.stats.Instructions++
	t.m.Instructions.Inc()
	if !res.Executed {
		return
	}
	sh := t.proc(p.PID)

	switch {
	case in.Op.IsLoad():
		t.propagateLoad(sh, in, res)
	case in.Op.IsStore():
		t.propagateStore(sh, in, res)
	default:
		t.propagateALU(sh, in)
	}
}

func (t *Tracker) setReg(sh *procShadow, r arm.Reg, v bool) {
	if r == arm.PC {
		return
	}
	if sh.reg[r] != v {
		sh.reg[r] = v
		t.stats.RegTaintOps++
		t.m.RegTaintOps.Inc()
	}
}

func (t *Tracker) setMem(sh *procShadow, r mem.Range, v bool) {
	if v {
		sh.mem.Add(r)
	} else {
		if !sh.mem.Overlaps(r) {
			return
		}
		sh.mem.Remove(r)
	}
	t.stats.MemTaintOps++
	t.m.MemTaintOps.Inc()
}

func (t *Tracker) propagateLoad(sh *procShadow, in *arm.Instr, res *arm.Result) {
	switch in.Op {
	case arm.OpLDRD:
		// The single 8-byte access covers both destination registers.
		r := res.Acc[0].Range
		lo := mem.Range{Start: r.Start, End: r.Start + 3}
		hi := mem.Range{Start: r.Start + 4, End: r.End}
		t.setReg(sh, in.Rd, sh.mem.Overlaps(lo))
		t.setReg(sh, in.Ra, sh.mem.Overlaps(hi))
	case arm.OpLDM:
		i := 0
		for r := arm.Reg(0); r < arm.NumRegs; r++ {
			if in.RegList&(1<<r) == 0 {
				continue
			}
			if i < res.NAcc {
				t.setReg(sh, r, sh.mem.Overlaps(res.Acc[i].Range))
			}
			i++
		}
	default:
		t.setReg(sh, in.Rd, sh.mem.Overlaps(res.Acc[0].Range))
	}
}

func (t *Tracker) propagateStore(sh *procShadow, in *arm.Instr, res *arm.Result) {
	switch in.Op {
	case arm.OpSTRD:
		r := res.Acc[0].Range
		t.setMem(sh, mem.Range{Start: r.Start, End: r.Start + 3}, sh.reg[in.Rd])
		t.setMem(sh, mem.Range{Start: r.Start + 4, End: r.End}, sh.reg[in.Ra])
	case arm.OpSTM:
		i := 0
		for r := arm.Reg(0); r < arm.NumRegs; r++ {
			if in.RegList&(1<<r) == 0 {
				continue
			}
			if i < res.NAcc {
				t.setMem(sh, res.Acc[i].Range, sh.reg[r])
			}
			i++
		}
	default:
		t.setMem(sh, res.Acc[0].Range, sh.reg[in.Rd])
	}
}

// propagateALU computes the destination taint as the OR of the data-source
// register taints. Address arithmetic and immediates contribute nothing;
// compare/test ops have no destination.
func (t *Tracker) propagateALU(sh *procShadow, in *arm.Instr) {
	var src bool
	switch in.Op {
	case arm.OpNOP, arm.OpB, arm.OpBL, arm.OpBX, arm.OpSVC, arm.OpBRIDGE,
		arm.OpCMP, arm.OpCMN, arm.OpTST, arm.OpTEQ:
		return
	case arm.OpMOV, arm.OpMVN:
		if !in.UseImm {
			src = sh.reg[in.Rm]
		}
	case arm.OpUXTH, arm.OpSXTH, arm.OpUXTB, arm.OpSXTB, arm.OpCLZ:
		src = sh.reg[in.Rm]
	case arm.OpUBFX, arm.OpSBFX:
		src = sh.reg[in.Rn]
	case arm.OpMUL:
		src = sh.reg[in.Rn] || sh.reg[in.Rm]
	case arm.OpMLA:
		src = sh.reg[in.Rn] || sh.reg[in.Rm] || sh.reg[in.Ra]
	case arm.OpUMULL:
		src = sh.reg[in.Rn] || sh.reg[in.Rm]
		t.setReg(sh, in.Ra, src) // high word; low word set below
	case arm.OpLSL, arm.OpLSR, arm.OpASR:
		src = sh.reg[in.Rn]
		if !in.UseImm {
			src = src || sh.reg[in.Rm]
		}
	default: // two-operand data processing
		src = sh.reg[in.Rn]
		if !in.UseImm {
			src = src || sh.reg[in.Rm]
		}
	}
	t.setReg(sh, in.Rd, src)
}
