package jrt

import (
	"repro/internal/arm"
	"repro/internal/dalvik"
)

// Additional String intrinsics: substring, indexOf, and hashCode. Like the
// core set they are real native routines — substring is another Figure 1
// copy loop (distance 2), indexOf and hashCode scan characters without
// producing carrying stores until their final result write.
const (
	// MethodSubstring is String.substring(str, begin, end) → String.
	MethodSubstring = "String.substring"
	// MethodIndexOf is String.indexOf(str, char) → index or -1.
	MethodIndexOf = "String.indexOf"
	// MethodHashCode is String.hashCode(str) → int (the Java h*31+c hash).
	MethodHashCode = "String.hashCode"
)

func (rt *Runtime) emitStringExtras() {
	rt.emitSubstring()
	rt.emitIndexOf()
	rt.emitHashCode()
}

// emitSubstring: r0=str, r1=begin, r2=end (exclusive) → new String.
// Characters are copied with the Figure 1 loop, so a tainted source
// substring stays tainted at any NI >= 2.
func (rt *Runtime) emitSubstring() {
	a := rt.asm
	rt.routine(MethodSubstring, "rt$substring")
	a.Emit(
		arm.Sub(arm.R3, arm.R2, arm.R1), // length = end - begin
		arm.Mov(arm.R9, arm.R1),         // save begin (bridge uses r1)
		arm.Mov(arm.R1, arm.R3),
		arm.Bridge(bridgeAllocString), // r2 = fresh String of r1 chars
		arm.Mov(arm.R1, arm.R3),       // length back in r1
		arm.CmpImm(arm.R1, 0),
	)
	a.B(arm.LE, "rt$substring$done")
	a.Emit(
		// src = str chars + 2*begin; dst = new chars.
		arm.AddImm(arm.R10, arm.R0, strCharsOff),
		arm.AddShift(arm.R10, arm.R10, arm.R9, arm.ShiftLSL, 1),
		arm.AddImm(arm.R11, arm.R2, strCharsOff),
		arm.MovImm(arm.R9, 0),  // i
		arm.MovImm(arm.R12, 0), // byte offset
	)
	a.Label("rt$substring$loop")
	a.Emit(
		arm.LdrhReg(arm.R3, arm.R10, arm.R12), // Fig. 1 shape
		arm.AddsImm(arm.R9, arm.R9, 1),
		arm.StrhReg(arm.R3, arm.R11, arm.R12),
		arm.AddsImm(arm.R12, arm.R12, 2),
		arm.Cmp(arm.R9, arm.R1),
	)
	a.B(arm.LT, "rt$substring$loop")
	a.Label("rt$substring$done")
	a.Emit(
		arm.Str(arm.R2, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

// emitIndexOf: r0=str, r1=char → first index or -1.
func (rt *Runtime) emitIndexOf() {
	a := rt.asm
	rt.routine(MethodIndexOf, "rt$indexOf")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, strLenOff),
		arm.AddImm(arm.R9, arm.R0, strCharsOff),
		arm.MovImm(arm.R10, 0), // index
		arm.MovImm(arm.R11, 0), // byte offset
	)
	a.Label("rt$indexOf$loop")
	a.Emit(arm.Cmp(arm.R10, arm.R2))
	a.B(arm.GE, "rt$indexOf$miss")
	a.Emit(
		arm.LdrhReg(arm.R3, arm.R9, arm.R11),
		arm.Cmp(arm.R3, arm.R1),
	)
	a.B(arm.EQ, "rt$indexOf$hit")
	a.Emit(
		arm.AddImm(arm.R10, arm.R10, 1),
		arm.AddImm(arm.R11, arm.R11, 2),
	)
	a.B(arm.AL, "rt$indexOf$loop")
	a.Label("rt$indexOf$miss")
	a.Emit(arm.MovImm(arm.R10, -1))
	a.Label("rt$indexOf$hit")
	a.Emit(
		arm.Str(arm.R10, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

// emitHashCode: r0=str → Java string hash (h = h*31 + c). The hash value
// is data-derived, so a tainted string hashes to a tainted retval when a
// window spans the final character load and the result store.
func (rt *Runtime) emitHashCode() {
	a := rt.asm
	rt.routine(MethodHashCode, "rt$hashCode")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, strLenOff),
		arm.AddImm(arm.R9, arm.R0, strCharsOff),
		arm.MovImm(arm.R10, 0), // h
		arm.MovImm(arm.R11, 0), // i
		arm.MovImm(arm.R12, 0), // byte offset
	)
	a.Label("rt$hashCode$loop")
	a.Emit(arm.Cmp(arm.R11, arm.R2))
	a.B(arm.GE, "rt$hashCode$done")
	a.Emit(
		arm.LdrhReg(arm.R3, arm.R9, arm.R12),
		// h = h*31 + c  =  (h<<5) - h + c.
		arm.Instr{Op: arm.OpRSB, Rd: arm.R10, Rn: arm.R10, Rm: arm.R10,
			Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: 5}},
		arm.Add(arm.R10, arm.R10, arm.R3),
		arm.AddImm(arm.R11, arm.R11, 1),
		arm.AddImm(arm.R12, arm.R12, 2),
	)
	a.B(arm.AL, "rt$hashCode$loop")
	a.Label("rt$hashCode$done")
	a.Emit(
		arm.Str(arm.R10, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}
