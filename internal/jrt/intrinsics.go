package jrt

import (
	"repro/internal/arm"
	"repro/internal/dalvik"
)

// External method names applications can invoke. Each is implemented as a
// native routine with a JNI-style register calling convention: arguments in
// r0–r3 (loaded from the caller's frame by the invoke template — those
// frame loads are exactly where tainting windows open), result written to
// the thread's retval slot through rSELF.
const (
	MethodBuilderNew    = "StringBuilder.new"        // () → builder
	MethodAppend        = "StringBuilder.append"     // (builder, string) → builder
	MethodAppendChar    = "StringBuilder.appendChar" // (builder, char) → builder
	MethodAppendInt     = "StringBuilder.appendInt"  // (builder, int) → builder
	MethodToString      = "StringBuilder.toString"   // (builder) → string
	MethodCharAt        = "String.charAt"            // (string, index) → char
	MethodStringLength  = "String.length"            // (string) → int
	MethodStringEquals  = "String.equals"            // (a, b) → 0/1
	MethodParseInt      = "Integer.parseInt"         // (string) → int
	MethodArraycopyChar = "System.arraycopyChar"     // (src, dst, count)
	MethodSlowCopy      = "JNI.slowCopy"             // (string) → string, §4.2 evasion
	MethodInsertChar    = "StringBuilder.insertChar" // (builder, char) → builder
	MethodReset         = "StringBuilder.setLength0" // (builder) → builder
)

// InsertChar's template spills a bounds check and compares against the
// builder's capacity before the character store: the character lands
// InsertCharLeadDistance instructions after the tainted argument load, as
// the window's InsertCharStores-th store. Flows through it therefore need
// NI >= 8 and NT >= 2.
const (
	InsertCharLeadDistance = 8
	InsertCharStores       = 2
)

// EvasionGap is the number of dummy ALU instructions JNI.slowCopy inserts
// between each character load and its store — the native-code-obfuscation
// attack of §4.2. It is far beyond any evaluated tainting window.
const EvasionGap = 64

// AppendIntLeadDistance is the load→store distance of StringBuilder.
// appendInt's digit-emit path: the number of instructions from the tainted
// reload of the numeric value to the scratch store of a digit character.
// It is engineered to 10 — the paper reports that leaking a GPS location
// (a number formatted "through an ARM runtime ABI") is only detected once
// NI ≥ 10.
const AppendIntLeadDistance = 10

// AppendIntStores is the number of stores the appendInt digit window
// performs up to and including the digit store, so numeric leaks also need
// NT >= AppendIntStores.
const AppendIntStores = 3

const rSELF = dalvik.RSELF

// emitIntrinsics lays down every runtime routine and registers its extern
// name. It runs once, before any application is translated.
func (rt *Runtime) emitIntrinsics() {
	rt.emitAllocStubs()
	rt.emitDivHelpers()
	rt.emitBuilderNew()
	rt.emitAppend()
	rt.emitAppendChar()
	rt.emitAppendInt()
	rt.emitToString()
	rt.emitCharAt()
	rt.emitStringLength()
	rt.emitStringEquals()
	rt.emitParseInt()
	rt.emitArraycopyChar()
	rt.emitSlowCopy()
	rt.emitInsertChar()
	rt.emitReset()
	rt.emitStringExtras()
}

// emitReset is StringBuilder.setLength(0): long-running workloads reuse one
// builder; stale (possibly tainted) buffer bytes remain until overwritten,
// which is what makes the untainting rule matter over time.
func (rt *Runtime) emitReset() {
	a := rt.asm
	rt.routine(MethodReset, "rt$sbReset")
	a.Emit(
		arm.MovImm(arm.R2, 0),
		arm.Str(arm.R2, arm.R0, sbLenOff),
		arm.Str(arm.R0, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

// emitInsertChar is StringBuilder.insertChar: like appendChar, but with a
// bounds-check spill ahead of the character store — the shape real
// capacity-checked inserts produce. The spill consumes one propagation slot
// of the window opened by the caller's tainted argument load, so the flow
// needs NT >= InsertCharStores; the character store itself sits at
// InsertCharLeadDistance.
func (rt *Runtime) emitInsertChar() {
	a := rt.asm
	rt.routine(MethodInsertChar, "rt$sbInsertChar")
	// Distances below are from the caller's "ldr r1" argument load, which
	// is followed by the bl and then this body.
	a.Emit(
		arm.Ldr(arm.R3, arm.R0, sbLenOff),                     // +2 length
		arm.Str(arm.R3, arm.SP, -12),                          // +3 bounds spill (store 1)
		arm.Ldr(arm.R12, arm.R0, sbCapOff),                    // +4 capacity
		arm.Cmp(arm.R3, arm.R12),                              // +5 bounds check
		arm.AddImm(arm.R9, arm.R0, sbCharsOff),                // +6
		arm.AddShift(arm.R9, arm.R9, arm.R3, arm.ShiftLSL, 1), // +7
		arm.Strh(arm.R1, arm.R9, 0),                           // +8 character (store 2)
		arm.AddImm(arm.R3, arm.R3, 1),
		arm.Str(arm.R3, arm.R0, sbLenOff), // length update (store 3)
		arm.Str(arm.R0, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) routine(name, label string) {
	rt.asm.Label(label)
	rt.RegisterExtern(name, label)
}

func (rt *Runtime) emitAllocStubs() {
	a := rt.asm
	rt.routine(dalvik.ExternAlloc, "rt$alloc")
	a.Emit(arm.Bridge(bridgeAlloc), arm.BxLR())

	rt.routine(dalvik.ExternAllocArray, "rt$allocArray")
	a.Emit(arm.Bridge(bridgeAllocArray), arm.BxLR())
}

// emitDivHelpers lays down __aeabi_idiv and __aeabi_irem as register-only
// shift-subtract division loops (unsigned semantics; the workloads divide
// non-negative values). Because the whole computation lives in registers
// for ~200 instructions, the bytecodes that call these helpers have an
// *unknown* load→store distance — Table 1's final row.
func (rt *Runtime) emitDivHelpers() {
	a := rt.asm

	// Shared core: r0 = dividend, r1 = divisor → r9 = quotient,
	// r10 = remainder.
	a.Label("rt$udivmod")
	a.Emit(
		arm.MovImm(arm.R9, 0),
		arm.MovImm(arm.R10, 0),
		arm.MovImm(arm.R11, 0),
	)
	a.Label("rt$udivmod$loop")
	a.Emit(
		arm.Instr{Op: arm.OpADD, Rd: arm.R0, Rn: arm.R0, Rm: arm.R0, SetFlags: true}, // carry = msb
		arm.Instr{Op: arm.OpADC, Rd: arm.R10, Rn: arm.R10, Rm: arm.R10},              // rem = rem<<1 | msb
		arm.Cmp(arm.R10, arm.R1),
		arm.Add(arm.R9, arm.R9, arm.R9), // quotient <<= 1 (flags untouched)
		cond(arm.Sub(arm.R10, arm.R10, arm.R1), arm.CS),
		cond(arm.AddImm(arm.R9, arm.R9, 1), arm.CS),
		arm.AddImm(arm.R11, arm.R11, 1),
		arm.CmpImm(arm.R11, 32),
	)
	a.B(arm.LT, "rt$udivmod$loop")
	a.Emit(arm.BxLR())

	rt.routine(dalvik.ExternIDiv, "rt$idiv")
	a.Emit(arm.Push(arm.LR))
	a.BL("rt$udivmod")
	a.Emit(arm.Mov(arm.R0, arm.R9), arm.Pop(arm.PC))

	rt.routine(dalvik.ExternIRem, "rt$irem")
	a.Emit(arm.Push(arm.LR))
	a.BL("rt$udivmod")
	a.Emit(arm.Mov(arm.R0, arm.R10), arm.Pop(arm.PC))
}

// cond returns the instruction with a condition attached.
func cond(in arm.Instr, c arm.Cond) arm.Instr {
	in.Cond = c
	return in
}

func (rt *Runtime) emitBuilderNew() {
	a := rt.asm
	rt.routine(MethodBuilderNew, "rt$sbNew")
	a.Emit(
		arm.Bridge(bridgeAllocBuilder),
		arm.Str(arm.R0, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

// emitAppend is StringBuilder.append(String): the paper's Figure 1 — each
// character is loaded into a register and stored to its destination two
// instructions later.
func (rt *Runtime) emitAppend() {
	a := rt.asm
	rt.routine(MethodAppend, "rt$sbAppend")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, sbLenOff),  // builder length
		arm.Ldr(arm.R3, arm.R1, strLenOff), // string length
		arm.CmpImm(arm.R3, 0),
	)
	a.B(arm.EQ, "rt$sbAppend$done")
	a.Emit(
		arm.AddImm(arm.R9, arm.R0, sbCharsOff),
		arm.AddShift(arm.R9, arm.R9, arm.R2, arm.ShiftLSL, 1), // dst = buffer + 2*len
		arm.AddImm(arm.R10, arm.R1, strCharsOff),              // src = chars
		arm.MovImm(arm.R11, 0),                                // i
		arm.MovImm(arm.R12, 0),                                // byte offset
	)
	a.Label("rt$sbAppend$loop")
	a.Emit(
		arm.LdrhReg(arm.R2, arm.R10, arm.R12), // ldrh rX, [src, off]   (Fig. 1)
		arm.AddsImm(arm.R11, arm.R11, 1),      // adds i, i, #1
		arm.StrhReg(arm.R2, arm.R9, arm.R12),  // strh rX, [dst, off] — distance 2
		arm.AddsImm(arm.R12, arm.R12, 2),      // adds off, off, #2
		arm.Cmp(arm.R11, arm.R3),              // cmp i, len
	)
	a.B(arm.LT, "rt$sbAppend$loop")
	a.Label("rt$sbAppend$done")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, sbLenOff),
		arm.Add(arm.R2, arm.R2, arm.R3),
		arm.Str(arm.R2, arm.R0, sbLenOff),
		arm.Str(arm.R0, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) emitAppendChar() {
	a := rt.asm
	rt.routine(MethodAppendChar, "rt$sbAppendChar")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, sbLenOff),
		arm.AddImm(arm.R9, arm.R0, sbCharsOff),
		arm.Instr{Op: arm.OpSTRH, Rd: arm.R1, Rn: arm.R9, Rm: arm.R2,
			Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: 1}},
		arm.AddImm(arm.R2, arm.R2, 1),
		arm.Str(arm.R2, arm.R0, sbLenOff),
		arm.Str(arm.R0, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

// emitAppendInt is StringBuilder.appendInt: decimal formatting in the style
// of the ARM runtime ABI helpers — the argument is spilled to a stack
// slot, digits are extracted lowest-first by a subtract loop that keeps the
// working value in memory, and each digit's emit path runs
// AppendIntLeadDistance instructions between the tainted reload and the
// scratch store. This is the code path that makes numeric (GPS-style)
// leaks invisible to tainting windows shorter than ~10.
//
// Register use: r0 builder (preserved), r1 work value, r2/r3 temps,
// r9 digit count, r10 quotient accumulator, r11 digit scratch base,
// r12 copy cursor.
func (rt *Runtime) emitAppendInt() {
	a := rt.asm
	rt.routine(MethodAppendInt, "rt$sbAppendInt")
	a.Emit(
		arm.Str(arm.R1, arm.SP, -4),     // spill the value ("soft-float" operand slot)
		arm.SubImm(arm.R11, arm.SP, 68), // digit scratch base
		arm.MovImm(arm.R9, 0),           // digit count
	)
	a.Label("rt$sbAppendInt$digit")
	a.Emit(arm.MovImm(arm.R10, 0)) // quotient accumulator
	a.Label("rt$sbAppendInt$sub")
	a.Emit(
		arm.Ldr(arm.R1, arm.SP, -4), // tainted reload of the working value
		arm.CmpImm(arm.R1, 10),
	)
	a.B(arm.LT, "rt$sbAppendInt$emit")
	a.Emit(
		arm.SubImm(arm.R1, arm.R1, 10),
		arm.AddImm(arm.R10, arm.R10, 1),
		arm.Str(arm.R1, arm.SP, -4), // writeback keeps the slot tainted (distance 4)
	)
	a.B(arm.AL, "rt$sbAppendInt$sub")

	// Emit path: reload the digit, run the mantissa-packing flavor of an
	// ABI float-format helper, and store the digit character. The strh
	// lands exactly AppendIntLeadDistance instructions after the ldr, and
	// two bookkeeping stores precede it inside the same window (the
	// quotient writeback and the exponent spill), so the digit only
	// propagates when NT >= AppendIntStores — the reason the paper's GPS
	// app needs both a wide window and NT = 3.
	a.Label("rt$sbAppendInt$emit")
	a.Emit(
		arm.Ldr(arm.R1, arm.SP, -4),                    // +0 tainted reload
		arm.Str(arm.R10, arm.SP, -4),                   // +1 next value = quotient (store 1)
		arm.MovShift(arm.R2, arm.R1, arm.ShiftLSL, 23), // +2 pack mantissa
		arm.OrrImm(arm.R2, arm.R2, 0x3f800000),         // +3 bias exponent
		arm.MovShift(arm.R3, arm.R2, arm.ShiftLSR, 23), // +4 unpack exponent
		arm.Str(arm.R3, arm.SP, -8),                    // +5 exponent spill (store 2)
		arm.AndImm(arm.R3, arm.R3, 255),                // +6
		arm.CmpImm(arm.R3, 127),                        // +7 normalization check
		arm.MovShift(arm.R2, arm.R2, arm.ShiftLSL, 1),  // +8 strip sign
		arm.AddImm(arm.R3, arm.R1, '0'),                // +9 digit character
		arm.Instr{Op: arm.OpSTRH, Rd: arm.R3, Rn: arm.R11, Rm: arm.R9,
			Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: 1}}, // +10 digit (store 3)
		arm.AddImm(arm.R9, arm.R9, 1),
		arm.CmpImm(arm.R10, 0),
	)
	a.B(arm.NE, "rt$sbAppendInt$digit")

	// Reverse-copy the digits into the builder buffer (Fig. 1 shape
	// again: each scratch load is tainted, each buffer store is 2 away).
	a.Emit(
		arm.Mov(arm.R10, arm.R9), // save digit count
		arm.Ldr(arm.R2, arm.R0, sbLenOff),
		arm.AddImm(arm.R12, arm.R0, sbCharsOff),
		arm.AddShift(arm.R12, arm.R12, arm.R2, arm.ShiftLSL, 1),
	)
	a.Label("rt$sbAppendInt$rev")
	a.Emit(
		arm.SubImm(arm.R9, arm.R9, 1),
		arm.Instr{Op: arm.OpLDRH, Rd: arm.R3, Rn: arm.R11, Rm: arm.R9,
			Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: 1}},
		arm.Instr{Op: arm.OpSTRH, Rd: arm.R3, Rn: arm.R12, Imm: 2,
			UseImm: true, Idx: arm.IdxPost},
		arm.CmpImm(arm.R9, 0),
	)
	a.B(arm.GT, "rt$sbAppendInt$rev")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, sbLenOff),
		arm.Add(arm.R2, arm.R2, arm.R10),
		arm.Str(arm.R2, arm.R0, sbLenOff),
		arm.Str(arm.R0, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) emitToString() {
	a := rt.asm
	rt.routine(MethodToString, "rt$sbToString")
	a.Emit(
		arm.Ldr(arm.R1, arm.R0, sbLenOff), // char count
		arm.Bridge(bridgeAllocString),     // r2 = fresh String
		arm.CmpImm(arm.R1, 0),
	)
	a.B(arm.EQ, "rt$sbToString$done")
	a.Emit(
		arm.AddImm(arm.R9, arm.R0, sbCharsOff),   // src
		arm.AddImm(arm.R10, arm.R2, strCharsOff), // dst
		arm.MovImm(arm.R11, 0),
		arm.MovImm(arm.R12, 0),
	)
	a.Label("rt$sbToString$loop")
	a.Emit(
		arm.LdrhReg(arm.R3, arm.R9, arm.R12),
		arm.AddsImm(arm.R11, arm.R11, 1),
		arm.StrhReg(arm.R3, arm.R10, arm.R12),
		arm.AddsImm(arm.R12, arm.R12, 2),
		arm.Cmp(arm.R11, arm.R1),
	)
	a.B(arm.LT, "rt$sbToString$loop")
	a.Label("rt$sbToString$done")
	a.Emit(
		arm.Str(arm.R2, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) emitCharAt() {
	a := rt.asm
	rt.routine(MethodCharAt, "rt$charAt")
	a.Emit(
		arm.AddImm(arm.R9, arm.R0, strCharsOff),
		arm.Instr{Op: arm.OpLDRH, Rd: arm.R2, Rn: arm.R9, Rm: arm.R1,
			Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: 1}},
		arm.Str(arm.R2, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) emitStringLength() {
	a := rt.asm
	rt.routine(MethodStringLength, "rt$strLen")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, strLenOff),
		arm.Str(arm.R2, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) emitStringEquals() {
	a := rt.asm
	rt.routine(MethodStringEquals, "rt$strEq")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, strLenOff),
		arm.Ldr(arm.R3, arm.R1, strLenOff),
		arm.Cmp(arm.R2, arm.R3),
	)
	a.B(arm.NE, "rt$strEq$ne")
	a.Emit(
		arm.AddImm(arm.R0, arm.R0, strCharsOff),
		arm.AddImm(arm.R1, arm.R1, strCharsOff),
		arm.MovImm(arm.R9, 0),  // byte offset
		arm.MovImm(arm.R10, 0), // index
		arm.CmpImm(arm.R2, 0),
	)
	a.B(arm.EQ, "rt$strEq$eq")
	a.Label("rt$strEq$loop")
	a.Emit(
		arm.LdrhReg(arm.R11, arm.R0, arm.R9),
		arm.LdrhReg(arm.R12, arm.R1, arm.R9),
		arm.Cmp(arm.R11, arm.R12),
	)
	a.B(arm.NE, "rt$strEq$ne")
	a.Emit(
		arm.AddImm(arm.R9, arm.R9, 2),
		arm.AddImm(arm.R10, arm.R10, 1),
		arm.Cmp(arm.R10, arm.R2),
	)
	a.B(arm.LT, "rt$strEq$loop")
	a.Label("rt$strEq$eq")
	a.Emit(arm.MovImm(arm.R0, 1))
	a.B(arm.AL, "rt$strEq$store")
	a.Label("rt$strEq$ne")
	a.Emit(arm.MovImm(arm.R0, 0))
	a.Label("rt$strEq$store")
	a.Emit(
		arm.Str(arm.R0, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) emitParseInt() {
	a := rt.asm
	rt.routine(MethodParseInt, "rt$parseInt")
	a.Emit(
		arm.Ldr(arm.R2, arm.R0, strLenOff),
		arm.AddImm(arm.R0, arm.R0, strCharsOff),
		arm.MovImm(arm.R9, 0),  // acc
		arm.MovImm(arm.R10, 0), // index
		arm.MovImm(arm.R11, 0), // byte offset
	)
	a.Label("rt$parseInt$loop")
	a.Emit(arm.Cmp(arm.R10, arm.R2))
	a.B(arm.GE, "rt$parseInt$done")
	a.Emit(
		arm.LdrhReg(arm.R3, arm.R0, arm.R11),
		arm.SubImm(arm.R3, arm.R3, '0'),
		arm.AddShift(arm.R12, arm.R9, arm.R9, arm.ShiftLSL, 2), // 5*acc
		arm.MovShift(arm.R9, arm.R12, arm.ShiftLSL, 1),         // 10*acc
		arm.Add(arm.R9, arm.R9, arm.R3),
		arm.AddImm(arm.R10, arm.R10, 1),
		arm.AddImm(arm.R11, arm.R11, 2),
	)
	a.B(arm.AL, "rt$parseInt$loop")
	a.Label("rt$parseInt$done")
	a.Emit(
		arm.Str(arm.R9, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

func (rt *Runtime) emitArraycopyChar() {
	a := rt.asm
	rt.routine(MethodArraycopyChar, "rt$arraycopyChar")
	a.Emit(
		arm.AddImm(arm.R9, arm.R0, arrDataOff),
		arm.AddImm(arm.R10, arm.R1, arrDataOff),
		arm.MovImm(arm.R11, 0),
		arm.MovImm(arm.R12, 0),
		arm.CmpImm(arm.R2, 0),
	)
	a.B(arm.LE, "rt$arraycopyChar$done")
	a.Label("rt$arraycopyChar$loop")
	a.Emit(
		arm.LdrhReg(arm.R3, arm.R9, arm.R12),
		arm.AddsImm(arm.R11, arm.R11, 1),
		arm.StrhReg(arm.R3, arm.R10, arm.R12),
		arm.AddsImm(arm.R12, arm.R12, 2),
		arm.Cmp(arm.R11, arm.R2),
	)
	a.B(arm.LT, "rt$arraycopyChar$loop")
	a.Label("rt$arraycopyChar$done")
	a.Emit(arm.BxLR())
}

// emitSlowCopy is the §4.2 evasion attack: a JNI-style native copy that
// inserts EvasionGap dummy instructions between each character load and
// its store, pushing the flow outside any realistic tainting window.
func (rt *Runtime) emitSlowCopy() {
	a := rt.asm
	rt.routine(MethodSlowCopy, "rt$slowCopy")
	a.Emit(
		arm.Ldr(arm.R1, arm.R0, strLenOff),
		arm.Bridge(bridgeAllocString), // r2 = fresh String of r1 chars
		arm.AddImm(arm.R9, arm.R0, strCharsOff),
		arm.AddImm(arm.R10, arm.R2, strCharsOff),
		arm.MovImm(arm.R11, 0),
		arm.MovImm(arm.R12, 0),
		arm.CmpImm(arm.R1, 0),
	)
	a.B(arm.EQ, "rt$slowCopy$done")
	a.Label("rt$slowCopy$loop")
	a.Emit(arm.LdrhReg(arm.R3, arm.R9, arm.R12))
	for i := 0; i < EvasionGap; i++ {
		// Dummy computation the compiler failed to optimize out; the
		// character survives in r3.
		a.Emit(arm.EorImm(arm.R0, arm.R3, int32(i&0xff)))
	}
	a.Emit(
		arm.StrhReg(arm.R3, arm.R10, arm.R12),
		arm.AddsImm(arm.R11, arm.R11, 1),
		arm.AddsImm(arm.R12, arm.R12, 2),
		arm.Cmp(arm.R11, arm.R1),
	)
	a.B(arm.LT, "rt$slowCopy$loop")
	a.Label("rt$slowCopy$done")
	a.Emit(
		arm.Str(arm.R2, rSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}
