// Package jrt is the Java-ish runtime the translated applications run on:
// a bump-allocated heap of Strings, StringBuilders, arrays and plain
// objects, plus the native intrinsic routines (string copy loops, number
// formatting, ABI division helpers) whose load→store shapes drive the
// paper's results — the Figure 1 copy loop most of all.
//
// Work that the real platform performs outside the traced CPU data path
// (allocation, zeroing) goes through host bridges; everything that moves
// character or integer *data* is real native code executed by the CPU, so
// the taint trackers see it.
package jrt

import (
	"fmt"
	"strings"

	"repro/internal/arm"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/mem"
)

// Object layout offsets.
const (
	// String: [0]=char count, chars at +4, two bytes per char (as in
	// Java; the paper's footnote 1 leans on this).
	strLenOff   = 0
	strCharsOff = 4

	// StringBuilder: [0]=char count, [4]=capacity, chars at +8.
	sbLenOff   = 0
	sbCapOff   = 4
	sbCharsOff = 8

	// Array: [0]=element count, elements at +4.
	arrLenOff  = 0
	arrDataOff = 4
)

// DefaultBuilderCap is the char capacity of a StringBuilder allocated by
// StringBuilder.new.
const DefaultBuilderCap = 512

// Bridge IDs used by the runtime (the android framework layer uses IDs
// from 100 up).
const (
	bridgeAlloc        = 1 // r0 = size → r0 = address
	bridgeAllocArray   = 2 // r0 = length, r1 = elem size → r0 = address
	bridgeAllocString  = 3 // r1 = char count → r2 = address
	bridgeAllocBuilder = 4 // → r0 = address (DefaultBuilderCap)
)

// Runtime owns the simulated heap and the native intrinsic routines. It
// implements dalvik.Runtime so the translator can resolve interned strings
// and external method entries.
type Runtime struct {
	machine  *cpu.Machine
	asm      *arm.Assembler
	heapNext mem.Addr
	interned map[string]mem.Addr
	externs  map[string]string
}

var _ dalvik.Runtime = (*Runtime)(nil)

// New creates the runtime, registers its host bridges on the machine, and
// emits the intrinsic routines into the assembler (so apps translated
// afterwards can BL to them).
func New(machine *cpu.Machine, asm *arm.Assembler) *Runtime {
	rt := &Runtime{
		machine:  machine,
		asm:      asm,
		heapNext: dalvik.HeapBase,
		interned: make(map[string]mem.Addr),
		externs:  make(map[string]string),
	}
	rt.registerBridges()
	rt.emitIntrinsics()
	return rt
}

// Alloc reserves size bytes on the heap (8-byte aligned), zeroed by
// construction (fresh memory reads as zero).
func (rt *Runtime) Alloc(size uint32) mem.Addr {
	addr := rt.heapNext
	rt.heapNext += mem.Addr(size+7) &^ 7
	return addr
}

// HeapUsed reports the bytes allocated so far.
func (rt *Runtime) HeapUsed() uint64 { return uint64(rt.heapNext - dalvik.HeapBase) }

// NewString allocates a String object and pokes its characters directly
// (host write: invisible to the trackers, like a kernel copy).
func (rt *Runtime) NewString(s string) mem.Addr {
	runes := []rune(s)
	addr := rt.Alloc(uint32(strCharsOff + 2*len(runes)))
	rt.machine.Mem.Store32(addr+strLenOff, uint32(len(runes)))
	for i, r := range runes {
		rt.machine.Mem.Store16(addr+strCharsOff+mem.Addr(2*i), uint16(r))
	}
	return addr
}

// NewEmptyString allocates a String of n chars with the length set and the
// payload zeroed.
func (rt *Runtime) NewEmptyString(n uint32) mem.Addr {
	addr := rt.Alloc(strCharsOff + 2*n)
	rt.machine.Mem.Store32(addr+strLenOff, n)
	return addr
}

// NewBuilder allocates a StringBuilder with the given char capacity.
func (rt *Runtime) NewBuilder(capacity uint32) mem.Addr {
	addr := rt.Alloc(sbCharsOff + 2*capacity)
	rt.machine.Mem.Store32(addr+sbLenOff, 0)
	rt.machine.Mem.Store32(addr+sbCapOff, capacity)
	return addr
}

// NewArray allocates an array of count elements of elemSize bytes.
func (rt *Runtime) NewArray(count, elemSize uint32) mem.Addr {
	addr := rt.Alloc(arrDataOff + count*elemSize)
	rt.machine.Mem.Store32(addr+arrLenOff, count)
	return addr
}

// StringLen reads a String's char count.
func (rt *Runtime) StringLen(addr mem.Addr) uint32 {
	return rt.machine.Mem.Load32(addr + strLenOff)
}

// ReadString decodes a String object back into a Go string.
func (rt *Runtime) ReadString(addr mem.Addr) string {
	if addr == 0 {
		return ""
	}
	n := rt.StringLen(addr)
	var b strings.Builder
	for i := uint32(0); i < n; i++ {
		b.WriteRune(rune(rt.machine.Mem.Load16(addr + strCharsOff + mem.Addr(2*i))))
	}
	return b.String()
}

// StringChars returns the address range of a String's character payload —
// what PIFT Native computes for source registration and sink checks
// ("it simply obtains the pointer to the data using JNI").
func (rt *Runtime) StringChars(addr mem.Addr) (mem.Range, bool) {
	n := rt.StringLen(addr)
	if n == 0 {
		return mem.Range{}, false
	}
	return mem.MakeRange(addr+strCharsOff, 2*n), true
}

// ReadBuilder decodes a StringBuilder's current content.
func (rt *Runtime) ReadBuilder(addr mem.Addr) string {
	n := rt.machine.Mem.Load32(addr + sbLenOff)
	var b strings.Builder
	for i := uint32(0); i < n; i++ {
		b.WriteRune(rune(rt.machine.Mem.Load16(addr + sbCharsOff + mem.Addr(2*i))))
	}
	return b.String()
}

// InternString implements dalvik.Runtime: string literals are materialized
// once, at link time.
func (rt *Runtime) InternString(s string) mem.Addr {
	if addr, ok := rt.interned[s]; ok {
		return addr
	}
	addr := rt.NewString(s)
	rt.interned[s] = addr
	return addr
}

// ExternEntry implements dalvik.Runtime.
func (rt *Runtime) ExternEntry(name string) (string, bool) {
	label, ok := rt.externs[name]
	return label, ok
}

// RegisterExtern binds an external method name to a native label; the
// framework layer (internal/android) adds its methods through this.
func (rt *Runtime) RegisterExtern(name, label string) {
	if _, dup := rt.externs[name]; dup {
		panic(fmt.Sprintf("jrt: duplicate extern %q", name))
	}
	rt.externs[name] = label
}

// Externs returns the sorted names of all registered external methods;
// program validation uses it.
func (rt *Runtime) Externs() map[string]bool {
	out := make(map[string]bool, len(rt.externs))
	for name := range rt.externs {
		out[name] = true
	}
	return out
}

// Machine returns the machine this runtime is bound to.
func (rt *Runtime) Machine() *cpu.Machine { return rt.machine }

// Asm returns the shared assembler.
func (rt *Runtime) Asm() *arm.Assembler { return rt.asm }

func (rt *Runtime) registerBridges() {
	m := rt.machine
	m.RegisterBridge(bridgeAlloc, func(_ *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = rt.Alloc(p.State.R[arm.R0])
	})
	m.RegisterBridge(bridgeAllocArray, func(_ *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = rt.NewArray(p.State.R[arm.R0], p.State.R[arm.R1])
	})
	m.RegisterBridge(bridgeAllocString, func(_ *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R2] = rt.NewEmptyString(p.State.R[arm.R1])
	})
	m.RegisterBridge(bridgeAllocBuilder, func(_ *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = rt.NewBuilder(DefaultBuilderCap)
	})
}
