package jrt

import (
	"strings"
	"testing"

	"repro/internal/dalvik"
)

func TestInsertChar(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.InvokeStatic(MethodBuilderNew)
		m.MoveResultObject(0)
		for _, c := range "pift" {
			m.Const16(1, int32(c))
			m.InvokeVirtual(MethodInsertChar, 0, 1)
			m.MoveResultObject(0)
		}
		m.InvokeVirtual(MethodToString, 0)
		m.MoveResultObject(2)
		m.SputObject(2, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticString(t); got != "pift" {
		t.Fatalf("insertChar chain = %q", got)
	}
}

func TestReset(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.InvokeStatic(MethodBuilderNew)
		m.MoveResultObject(0)
		m.ConstString(1, "stale content")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.InvokeVirtual(MethodReset, 0)
		m.MoveResultObject(0)
		m.ConstString(1, "fresh")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.InvokeVirtual(MethodToString, 0)
		m.MoveResultObject(2)
		m.SputObject(2, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticString(t); got != "fresh" {
		t.Fatalf("after reset = %q", got)
	}
}

func TestMixedAppendKinds(t *testing.T) {
	// Interleave string, char, int, and insert appends in one builder.
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.InvokeStatic(MethodBuilderNew)
		m.MoveResultObject(0)
		m.ConstString(1, "v=")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.Const(2, 42)
		m.InvokeVirtual(MethodAppendInt, 0, 2)
		m.MoveResultObject(0)
		m.Const16(2, ';')
		m.InvokeVirtual(MethodAppendChar, 0, 2)
		m.MoveResultObject(0)
		m.Const16(2, '!')
		m.InvokeVirtual(MethodInsertChar, 0, 2)
		m.MoveResultObject(0)
		m.InvokeVirtual(MethodToString, 0)
		m.MoveResultObject(3)
		m.SputObject(3, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticString(t); got != "v=42;!" {
		t.Fatalf("mixed appends = %q", got)
	}
}

func TestSlowCopyEmptyString(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.ConstString(0, "")
		m.InvokeStatic(MethodSlowCopy, 0)
		m.MoveResultObject(1)
		m.SputObject(1, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	ref := f.machine.Mem.Load32(dalvik.StaticAddr(0))
	if ref == 0 {
		t.Fatal("slowCopy of empty string returned null")
	}
	if got := f.rt.ReadString(ref); got != "" {
		t.Fatalf("slowCopy empty = %q", got)
	}
}

func TestBuilderReadAccessors(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.InvokeStatic(MethodBuilderNew)
		m.MoveResultObject(0)
		m.ConstString(1, "peek")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.SputObject(0, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	ref := f.machine.Mem.Load32(dalvik.StaticAddr(0))
	if got := f.rt.ReadBuilder(ref); got != "peek" {
		t.Fatalf("ReadBuilder = %q", got)
	}
}

func TestExternNamesRegistered(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 4, 0)
		m.Const4(0, 0)
		m.Sput(0, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	externs := f.rt.Externs()
	for _, name := range []string{
		MethodBuilderNew, MethodAppend, MethodAppendChar, MethodAppendInt,
		MethodToString, MethodCharAt, MethodStringLength, MethodStringEquals,
		MethodParseInt, MethodArraycopyChar, MethodSlowCopy, MethodInsertChar,
		MethodReset, dalvik.ExternAlloc, dalvik.ExternAllocArray,
		dalvik.ExternIDiv, dalvik.ExternIRem,
	} {
		if !externs[name] {
			t.Errorf("extern %q not registered", name)
		}
	}
	for name := range externs {
		if strings.Contains(name, "$") {
			t.Errorf("label leaked as extern name: %q", name)
		}
	}
}

func TestDuplicateExternPanics(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 4, 0)
		m.Const4(0, 0)
		m.Sput(0, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate extern registration must panic")
		}
	}()
	f.rt.RegisterExtern(MethodAppend, "dup")
}
