package jrt

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/cpu"
	"repro/internal/dalvik"
)

// fixture links a program against a fresh machine+runtime and runs it.
type fixture struct {
	machine *cpu.Machine
	rt      *Runtime
}

func runApp(t *testing.T, build func(b *dalvik.Builder)) *fixture {
	t.Helper()
	machine := cpu.NewMachine()
	asm := arm.NewAssembler(dalvik.CodeBase)
	rt := New(machine, asm)

	b := dalvik.NewProgram("test")
	build(b)
	prog, err := b.Build(rt.Externs())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dalvik.Translate(prog, asm, rt)
	if err != nil {
		t.Fatal(err)
	}
	code, err := asm.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tr.Materialize(machine.Mem)
	entry, _ := asm.LabelAddr(tr.EntryLabel)
	proc := cpu.NewProc(1, &cpu.Image{Base: dalvik.CodeBase, Code: code}, entry)
	if _, err := machine.Run(proc, 50_000_000); err != nil {
		t.Fatal(err)
	}
	return &fixture{machine: machine, rt: rt}
}

// staticString reads a string whose reference was sput to static slot 0.
func (f *fixture) staticString(t *testing.T) string {
	t.Helper()
	ref := f.machine.Mem.Load32(dalvik.StaticAddr(0))
	if ref == 0 {
		t.Fatal("static slot 0 holds no reference")
	}
	return f.rt.ReadString(ref)
}

func (f *fixture) staticInt() uint32 {
	return f.machine.Mem.Load32(dalvik.StaticAddr(0))
}

func TestStringRoundTrip(t *testing.T) {
	machine := cpu.NewMachine()
	rt := New(machine, arm.NewAssembler(dalvik.CodeBase))
	addr := rt.NewString("predictive πφτ tracking")
	if got := rt.ReadString(addr); got != "predictive πφτ tracking" {
		t.Fatalf("round trip = %q", got)
	}
	if rt.StringLen(addr) != 23 {
		t.Fatalf("len = %d", rt.StringLen(addr))
	}
	r, ok := rt.StringChars(addr)
	if !ok || r.Size() != 46 {
		t.Fatalf("chars range = %v %v", r, ok)
	}
}

func TestInterningDeduplicates(t *testing.T) {
	machine := cpu.NewMachine()
	rt := New(machine, arm.NewAssembler(dalvik.CodeBase))
	a := rt.InternString("dup")
	b := rt.InternString("dup")
	if a != b {
		t.Fatal("interned string allocated twice")
	}
}

func TestAppendAndToString(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.InvokeStatic(MethodBuilderNew)
		m.MoveResultObject(0)
		m.ConstString(1, "hello, ")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.ConstString(1, "world")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.InvokeVirtual(MethodToString, 0)
		m.MoveResultObject(2)
		m.SputObject(2, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticString(t); got != "hello, world" {
		t.Fatalf("append result = %q", got)
	}
}

func TestAppendEmptyString(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.InvokeStatic(MethodBuilderNew)
		m.MoveResultObject(0)
		m.ConstString(1, "")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.ConstString(1, "x")
		m.InvokeVirtual(MethodAppend, 0, 1)
		m.MoveResultObject(0)
		m.InvokeVirtual(MethodToString, 0)
		m.MoveResultObject(2)
		m.SputObject(2, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticString(t); got != "x" {
		t.Fatalf("result = %q", got)
	}
}

func TestAppendChar(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.InvokeStatic(MethodBuilderNew)
		m.MoveResultObject(0)
		m.Const16(1, 'G')
		m.InvokeVirtual(MethodAppendChar, 0, 1)
		m.MoveResultObject(0)
		m.Const16(1, 'o')
		m.InvokeVirtual(MethodAppendChar, 0, 1)
		m.MoveResultObject(0)
		m.InvokeVirtual(MethodToString, 0)
		m.MoveResultObject(2)
		m.SputObject(2, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticString(t); got != "Go" {
		t.Fatalf("result = %q", got)
	}
}

func TestAppendInt(t *testing.T) {
	for _, tc := range []struct {
		value int32
		want  string
	}{
		{0, "0"}, {7, "7"}, {10, "10"}, {42, "42"}, {1999, "1999"},
		{37421, "37421"}, {122084, "122084"}, {1000001, "1000001"},
	} {
		f := runApp(t, func(b *dalvik.Builder) {
			b.Statics("out")
			m := b.Method("Main.main", 6, 0)
			m.InvokeStatic(MethodBuilderNew)
			m.MoveResultObject(0)
			m.Const(1, tc.value)
			m.InvokeVirtual(MethodAppendInt, 0, 1)
			m.MoveResultObject(0)
			m.InvokeVirtual(MethodToString, 0)
			m.MoveResultObject(2)
			m.SputObject(2, "out")
			m.ReturnVoid()
			b.Entry("Main.main")
		})
		if got := f.staticString(t); got != tc.want {
			t.Errorf("appendInt(%d) = %q, want %q", tc.value, got, tc.want)
		}
	}
}

func TestCharAtAndLength(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.ConstString(0, "abcdef")
		m.Const4(1, 3)
		m.InvokeVirtual(MethodCharAt, 0, 1)
		m.MoveResult(2)
		m.InvokeVirtual(MethodStringLength, 0)
		m.MoveResult(3)
		m.Binop(dalvik.OpShlInt, 3, 3, 1) // len << 3 = 48
		m.Binop(dalvik.OpAddInt, 2, 2, 3) // 'd' + 48 = 148
		m.Sput(2, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticInt(); got != 'd'+48 {
		t.Fatalf("charAt/length combo = %d, want %d", got, 'd'+48)
	}
}

func TestStringEquals(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want uint32
	}{
		{"same", "same", 1},
		{"same", "Same", 0},
		{"short", "longer", 0},
		{"", "", 1},
	} {
		f := runApp(t, func(b *dalvik.Builder) {
			b.Statics("out")
			m := b.Method("Main.main", 6, 0)
			m.ConstString(0, tc.a)
			m.ConstString(1, tc.b)
			m.InvokeVirtual(MethodStringEquals, 0, 1)
			m.MoveResult(2)
			m.Sput(2, "out")
			m.ReturnVoid()
			b.Entry("Main.main")
		})
		if got := f.staticInt(); got != tc.want {
			t.Errorf("equals(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestParseInt(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.ConstString(0, "35693")
		m.InvokeStatic(MethodParseInt, 0)
		m.MoveResult(1)
		m.Sput(1, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticInt(); got != 35693 {
		t.Fatalf("parseInt = %d", got)
	}
}

func TestDivisionHelpers(t *testing.T) {
	for _, tc := range []struct {
		a, b int32
		div  uint32
		rem  uint32
	}{
		{100, 7, 14, 2},
		{35, 5, 7, 0},
		{3, 10, 0, 3},
		{123456, 1000, 123, 456},
	} {
		f := runApp(t, func(b *dalvik.Builder) {
			b.Statics("q", "r")
			m := b.Method("Main.main", 6, 0)
			m.Const(0, tc.a)
			m.Const(1, tc.b)
			m.Binop(dalvik.OpDivInt, 2, 0, 1)
			m.Binop(dalvik.OpRemInt, 3, 0, 1)
			m.Sput(2, "q")
			m.Sput(3, "r")
			m.ReturnVoid()
			b.Entry("Main.main")
		})
		if q := f.machine.Mem.Load32(dalvik.StaticAddr(0)); q != tc.div {
			t.Errorf("%d/%d = %d, want %d", tc.a, tc.b, q, tc.div)
		}
		if r := f.machine.Mem.Load32(dalvik.StaticAddr(1)); r != tc.rem {
			t.Errorf("%d%%%d = %d, want %d", tc.a, tc.b, r, tc.rem)
		}
	}
}

func TestArraycopyChar(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 8, 0)
		m.Const4(0, 4)
		m.NewCharArray(1, 0) // src
		m.NewCharArray(2, 0) // dst
		// Fill src with 'a'..'d'.
		m.Const4(3, 0)
		m.Label("fill")
		m.Const16(4, 'a')
		m.Binop(dalvik.OpAddInt, 4, 4, 3)
		m.AputChar(4, 1, 3)
		m.AddIntLit8(3, 3, 1)
		m.If(dalvik.OpIfLt, 3, 0, "fill")
		m.InvokeStatic(MethodArraycopyChar, 1, 2, 0)
		// Read dst[2] = 'c'.
		m.Const4(3, 2)
		m.AgetChar(5, 2, 3)
		m.Sput(5, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticInt(); got != 'c' {
		t.Fatalf("arraycopy dst[2] = %d, want %d", got, 'c')
	}
}

func TestSlowCopyPreservesContent(t *testing.T) {
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 6, 0)
		m.ConstString(0, "covert")
		m.InvokeStatic(MethodSlowCopy, 0)
		m.MoveResultObject(1)
		m.SputObject(1, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticString(t); got != "covert" {
		t.Fatalf("slowCopy = %q", got)
	}
}

func TestHeapAllocationAlignment(t *testing.T) {
	machine := cpu.NewMachine()
	rt := New(machine, arm.NewAssembler(dalvik.CodeBase))
	a := rt.Alloc(3)
	b := rt.Alloc(5)
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("allocations not 8-byte aligned: %#x %#x", a, b)
	}
	if b <= a {
		t.Fatal("bump allocator did not advance")
	}
}
