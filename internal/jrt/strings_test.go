package jrt

import (
	"testing"

	"repro/internal/dalvik"
)

func TestSubstring(t *testing.T) {
	for _, tc := range []struct {
		s          string
		begin, end int32
		want       string
	}{
		{"predictive", 0, 4, "pred"},
		{"predictive", 3, 10, "dictive"},
		{"predictive", 5, 5, ""},
		{"x", 0, 1, "x"},
	} {
		f := runApp(t, func(b *dalvik.Builder) {
			b.Statics("out")
			m := b.Method("Main.main", 6, 0)
			m.ConstString(0, tc.s)
			m.Const(1, tc.begin)
			m.Const(2, tc.end)
			m.InvokeVirtual(MethodSubstring, 0, 1, 2)
			m.MoveResultObject(3)
			m.SputObject(3, "out")
			m.ReturnVoid()
			b.Entry("Main.main")
		})
		ref := f.machine.Mem.Load32(dalvik.StaticAddr(0))
		if got := f.rt.ReadString(ref); got != tc.want {
			t.Errorf("substring(%q,%d,%d) = %q, want %q", tc.s, tc.begin, tc.end, got, tc.want)
		}
	}
}

func TestIndexOf(t *testing.T) {
	for _, tc := range []struct {
		s    string
		c    int32
		want int32
	}{
		{"hello", 'l', 2},
		{"hello", 'h', 0},
		{"hello", 'o', 4},
		{"hello", 'z', -1},
		{"", 'a', -1},
	} {
		f := runApp(t, func(b *dalvik.Builder) {
			b.Statics("out")
			m := b.Method("Main.main", 6, 0)
			m.ConstString(0, tc.s)
			m.Const(1, tc.c)
			m.InvokeVirtual(MethodIndexOf, 0, 1)
			m.MoveResult(2)
			m.Sput(2, "out")
			m.ReturnVoid()
			b.Entry("Main.main")
		})
		if got := int32(f.staticInt()); got != tc.want {
			t.Errorf("indexOf(%q,%q) = %d, want %d", tc.s, tc.c, got, tc.want)
		}
	}
}

// javaHash is the reference Java string hash.
func javaHash(s string) int32 {
	var h int32
	for _, c := range s {
		h = h*31 + int32(c)
	}
	return h
}

func TestHashCode(t *testing.T) {
	for _, s := range []string{"", "a", "hello", "356938035643809", "type=sms&imei="} {
		f := runApp(t, func(b *dalvik.Builder) {
			b.Statics("out")
			m := b.Method("Main.main", 6, 0)
			m.ConstString(0, s)
			m.InvokeVirtual(MethodHashCode, 0)
			m.MoveResult(1)
			m.Sput(1, "out")
			m.ReturnVoid()
			b.Entry("Main.main")
		})
		if got := int32(f.staticInt()); got != javaHash(s) {
			t.Errorf("hashCode(%q) = %d, want %d", s, got, javaHash(s))
		}
	}
}

func TestSubstringChainsTaintlessly(t *testing.T) {
	// Pipeline: substring of a substring, then indexOf on the result —
	// the intrinsics compose.
	f := runApp(t, func(b *dalvik.Builder) {
		b.Statics("out")
		m := b.Method("Main.main", 8, 0)
		m.ConstString(0, "information-flow")
		m.Const4(1, 0)
		m.Const16(2, 11)
		m.InvokeVirtual(MethodSubstring, 0, 1, 2) // "information"
		m.MoveResultObject(3)
		m.Const4(1, 2)
		m.Const4(2, 6)
		m.InvokeVirtual(MethodSubstring, 3, 1, 2) // "form"
		m.MoveResultObject(3)
		m.Const16(4, 'r')
		m.InvokeVirtual(MethodIndexOf, 3, 4)
		m.MoveResult(5)
		m.Sput(5, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
	})
	if got := f.staticInt(); got != 2 {
		t.Fatalf("chained substring/indexOf = %d, want 2", got)
	}
}
