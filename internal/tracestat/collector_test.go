package tracestat

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func ld(seq uint64) cpu.Event {
	return cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: seq, Range: mem.MakeRange(0x1000, 4)}
}

func st(seq uint64) cpu.Event {
	return cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: seq, Range: mem.MakeRange(0x2000, 4)}
}

func feed(c *Collector, evs ...cpu.Event) {
	for _, ev := range evs {
		c.Event(ev)
	}
	c.Finish()
}

func TestHistBasics(t *testing.T) {
	h := NewHist(10)
	for _, v := range []int{1, 2, 2, 3, 50} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Overflow() != 1 {
		t.Fatalf("count=%d overflow=%d", h.Count(), h.Overflow())
	}
	if p := h.P(2); math.Abs(p-0.4) > 1e-9 {
		t.Fatalf("P(2)=%f", p)
	}
	if cdf := h.CDF(3); math.Abs(cdf-0.8) > 1e-9 {
		t.Fatalf("CDF(3)=%f", cdf)
	}
	if m := h.Mean(); math.Abs(m-(1+2+2+3+50)/5.0) > 1e-9 {
		t.Fatalf("Mean=%f", m)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("Quantile(0.5)=%d", q)
	}
}

func TestStoreToLastLoad(t *testing.T) {
	c := NewCollector()
	feed(c, ld(10), st(12), st(15), ld(20), st(21))
	// Distances: 2, 5, 1.
	h := c.StoreToLastLoad
	if h.Count() != 3 {
		t.Fatalf("samples=%d", h.Count())
	}
	for _, d := range []int{1, 2, 5} {
		if h.P(d) == 0 {
			t.Errorf("distance %d missing", d)
		}
	}
}

func TestStoresBetweenLoads(t *testing.T) {
	c := NewCollector()
	feed(c, ld(10), st(11), st(12), ld(20), ld(30), st(31))
	// Interval 10→20: 2 stores; interval 20→30: 0 stores.
	h := c.StoresBetweenLoads
	if h.Count() != 2 {
		t.Fatalf("intervals=%d", h.Count())
	}
	if h.P(2) == 0 || h.P(0) == 0 {
		t.Error("expected intervals with 2 and 0 stores")
	}
}

func TestLoadToLoad(t *testing.T) {
	c := NewCollector()
	feed(c, ld(10), ld(13), ld(25))
	h := c.LoadToLoad
	if h.Count() != 2 {
		t.Fatalf("samples=%d", h.Count())
	}
	if h.P(3) == 0 || h.P(12) == 0 {
		t.Error("expected distances 3 and 12")
	}
}

func TestStoresInWindow(t *testing.T) {
	c := NewCollector()
	// One load; stores at distances 2, 7, 18, 90.
	feed(c, ld(100), st(102), st(107), st(118), st(190))
	for _, tc := range []struct {
		window int
		want   int
	}{
		{5, 1}, {10, 2}, {15, 2}, {20, 3}, {100, 4},
	} {
		h, ok := c.StoresInWindow(tc.window)
		if !ok {
			t.Fatalf("no histogram for window %d", tc.window)
		}
		if h.Count() != 1 {
			t.Fatalf("window %d: %d loads finalized", tc.window, h.Count())
		}
		if h.P(tc.want) != 1 {
			t.Errorf("window %d: expected exactly %d stores", tc.window, tc.want)
		}
	}
}

func TestKthStoreMean(t *testing.T) {
	c := NewCollector()
	// Two loads with stores at distances (2, 4) and (6,) respectively.
	feed(c, ld(100), st(102), st(104), ld(200), st(206))
	mean1, n1, ok := c.KthStoreMean(10, 1)
	if !ok || n1 != 2 {
		t.Fatalf("k=1: n=%d ok=%v", n1, ok)
	}
	if math.Abs(mean1-4) > 1e-9 { // (2+6)/2
		t.Fatalf("k=1 mean=%f", mean1)
	}
	mean2, n2, _ := c.KthStoreMean(10, 2)
	if n2 != 1 || math.Abs(mean2-4) > 1e-9 {
		t.Fatalf("k=2: mean=%f n=%d", mean2, n2)
	}
	// Window 5 should exclude the distance-6 store.
	_, n1w5, _ := c.KthStoreMean(5, 1)
	if n1w5 != 1 {
		t.Fatalf("k=1 window 5: n=%d", n1w5)
	}
}

func TestPerProcessSeparation(t *testing.T) {
	c := NewCollector()
	// Interleaved PIDs: distances must be computed per process.
	c.Event(cpu.Event{Kind: cpu.EvLoad, PID: 1, Seq: 10, Range: mem.MakeRange(0x1000, 4)})
	c.Event(cpu.Event{Kind: cpu.EvLoad, PID: 2, Seq: 100, Range: mem.MakeRange(0x1000, 4)})
	c.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: 13, Range: mem.MakeRange(0x2000, 4)})
	c.Event(cpu.Event{Kind: cpu.EvStore, PID: 2, Seq: 101, Range: mem.MakeRange(0x2000, 4)})
	c.Finish()
	if c.StoreToLastLoad.P(3) == 0 || c.StoreToLastLoad.P(1) == 0 {
		t.Error("per-process distances wrong")
	}
	if c.StoreToLastLoad.Count() != 2 {
		t.Errorf("samples=%d", c.StoreToLastLoad.Count())
	}
}

func TestFinishIdempotent(t *testing.T) {
	c := NewCollector()
	feed(c, ld(10), st(12))
	before := c.storesInWindow[0].Count()
	c.Finish()
	if c.storesInWindow[0].Count() != before {
		t.Error("double Finish changed counts")
	}
}

func TestCollectorIgnoresSoftwareEvents(t *testing.T) {
	c := NewCollector()
	c.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 1, Seq: 5, Range: mem.MakeRange(0, 4)})
	c.Event(cpu.Event{Kind: cpu.EvSinkCheck, PID: 1, Seq: 6, Range: mem.MakeRange(0, 4)})
	c.Finish()
	if c.StoreToLastLoad.Count() != 0 {
		t.Error("software events polluted the distributions")
	}
}
