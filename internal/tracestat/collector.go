package tracestat

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpu"
)

// DefaultWindowSizes are the Figure 12 window sizes.
var DefaultWindowSizes = []int{5, 10, 15, 20, 40, 60, 80, 100}

// DefaultKthWindowSizes are the Figure 13 window sizes.
var DefaultKthWindowSizes = []int{5, 10, 15, 20}

// kthStores is how many leading stores per window Figure 13 tracks.
const kthStores = 3

// meanAcc accumulates a mean.
type meanAcc struct {
	sum uint64
	n   uint64
}

func (m *meanAcc) add(v uint64) { m.sum += v; m.n++ }

// Mean returns the accumulated mean (0 when empty).
func (m meanAcc) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return float64(m.sum) / float64(m.n)
}

// pendingLoad tracks one load's forward window until maxWindow
// instructions have passed.
type pendingLoad struct {
	seq uint64
	// distIdx[i] counts stores whose distance first fits WindowSizes[i]
	// (cumulated at finalize time).
	distIdx []uint16
	dists   [kthStores]uint16
	nd      uint8
}

// procState is the per-process scan state.
type procState struct {
	haveLoad        bool
	lastLoadSeq     uint64
	storesSinceLoad int
	pending         []*pendingLoad
}

// Collector computes the memory-operation distributions over a front-end
// event stream. It implements cpu.EventSink; call Finish before reading
// results.
type Collector struct {
	// Figure 2a: distance from each store to the most recent load.
	StoreToLastLoad *Hist
	// Figure 2b: number of stores between consecutive loads.
	StoresBetweenLoads *Hist
	// Figure 2c: distance between consecutive loads.
	LoadToLoad *Hist

	windowSizes []int
	kthSizes    []int
	maxWindow   int

	// Figure 12: distribution of #stores within each window size.
	storesInWindow []*Hist
	// Figure 13: mean distance to the k-th store within each window size.
	kth [][]meanAcc // [kthSizeIdx][k]

	procs    map[uint32]*procState
	finished bool
}

// NewCollector builds a collector with the default window sets.
func NewCollector() *Collector {
	return NewCollectorWindows(DefaultWindowSizes, DefaultKthWindowSizes)
}

// NewCollectorWindows builds a collector over custom window sets; both must
// be ascending.
func NewCollectorWindows(windows, kthWindows []int) *Collector {
	if !sort.IntsAreSorted(windows) || !sort.IntsAreSorted(kthWindows) {
		panic("tracestat: window sizes must be ascending")
	}
	c := &Collector{
		StoreToLastLoad:    NewHist(100),
		StoresBetweenLoads: NewHist(50),
		LoadToLoad:         NewHist(100),
		windowSizes:        windows,
		kthSizes:           kthWindows,
		maxWindow:          windows[len(windows)-1],
		procs:              make(map[uint32]*procState),
	}
	c.storesInWindow = make([]*Hist, len(windows))
	for i := range c.storesInWindow {
		c.storesInWindow[i] = NewHist(60)
	}
	c.kth = make([][]meanAcc, len(kthWindows))
	for i := range c.kth {
		c.kth[i] = make([]meanAcc, kthStores)
	}
	return c
}

func (c *Collector) proc(pid uint32) *procState {
	p := c.procs[pid]
	if p == nil {
		p = &procState{}
		c.procs[pid] = p
	}
	return p
}

// Event implements cpu.EventSink.
func (c *Collector) Event(ev cpu.Event) {
	switch ev.Kind {
	case cpu.EvLoad:
		p := c.proc(ev.PID)
		c.expire(p, ev.Seq)
		if p.haveLoad {
			c.LoadToLoad.Add(int(ev.Seq - p.lastLoadSeq))
			c.StoresBetweenLoads.Add(p.storesSinceLoad)
		}
		p.haveLoad = true
		p.lastLoadSeq = ev.Seq
		p.storesSinceLoad = 0
		p.pending = append(p.pending, &pendingLoad{
			seq:     ev.Seq,
			distIdx: make([]uint16, len(c.windowSizes)),
		})
	case cpu.EvStore:
		p := c.proc(ev.PID)
		c.expire(p, ev.Seq)
		if p.haveLoad {
			c.StoreToLastLoad.Add(int(ev.Seq - p.lastLoadSeq))
			p.storesSinceLoad++
		}
		for _, l := range p.pending {
			d := ev.Seq - l.seq
			// Index of the smallest window that admits this store.
			i := sort.SearchInts(c.windowSizes, int(d))
			if i < len(c.windowSizes) {
				l.distIdx[i]++
			}
			if l.nd < kthStores && d <= uint64(c.maxWindow) {
				l.dists[l.nd] = uint16(d)
				l.nd++
			}
		}
	}
}

// expire finalizes pending loads whose windows have fully elapsed.
func (c *Collector) expire(p *procState, now uint64) {
	kept := p.pending[:0]
	for _, l := range p.pending {
		if now-l.seq > uint64(c.maxWindow) {
			c.finalize(l)
		} else {
			kept = append(kept, l)
		}
	}
	p.pending = kept
}

func (c *Collector) finalize(l *pendingLoad) {
	// Cumulate: stores within windowSizes[i] = sum of distIdx[0..i].
	acc := 0
	for i := range c.windowSizes {
		acc += int(l.distIdx[i])
		c.storesInWindow[i].Add(acc)
	}
	for wi, w := range c.kthSizes {
		for k := 0; k < int(l.nd); k++ {
			if int(l.dists[k]) <= w {
				c.kth[wi][k].add(uint64(l.dists[k]))
			}
		}
	}
}

// Finish flushes all pending windows; call once, after the stream ends.
func (c *Collector) Finish() {
	if c.finished {
		return
	}
	c.finished = true
	for _, p := range c.procs {
		for _, l := range p.pending {
			c.finalize(l)
		}
		p.pending = nil
	}
}

// StoresInWindow returns the Figure 12 distribution for a window size from
// the configured set.
func (c *Collector) StoresInWindow(window int) (*Hist, bool) {
	for i, w := range c.windowSizes {
		if w == window {
			return c.storesInWindow[i], true
		}
	}
	return nil, false
}

// KthStoreMean returns the Figure 13 mean distance to the k-th store
// (k = 1..3) within the given window size, with the sample count.
func (c *Collector) KthStoreMean(window, k int) (mean float64, samples uint64, ok bool) {
	if k < 1 || k > kthStores {
		return 0, 0, false
	}
	for i, w := range c.kthSizes {
		if w == window {
			acc := c.kth[i][k-1]
			return acc.Mean(), acc.n, true
		}
	}
	return 0, 0, false
}

// WindowSizes returns the configured Figure 12 window set.
func (c *Collector) WindowSizes() []int { return c.windowSizes }

// KthWindowSizes returns the configured Figure 13 window set.
func (c *Collector) KthWindowSizes() []int { return c.kthSizes }

// RenderFigure2 renders the three Figure 2 distributions.
func (c *Collector) RenderFigure2() string {
	var b strings.Builder
	b.WriteString(c.StoreToLastLoad.Render("Fig 2a: distance from store to last load", 31))
	fmt.Fprintf(&b, "  CDF(10) = %.4f\n\n", c.StoreToLastLoad.CDF(10))
	b.WriteString(c.StoresBetweenLoads.Render("Fig 2b: stores between consecutive loads", 11))
	b.WriteString("\n")
	b.WriteString(c.LoadToLoad.Render("Fig 2c: distance between consecutive loads", 31))
	return b.String()
}
