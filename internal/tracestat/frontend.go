package tracestat

import (
	"fmt"
	"strings"
)

// FrontendBreakdown maintains one Collector per guest front end, so the
// load→store distance distributions that justify the paper's NI=13/NT=3
// operating point can be compared across translation disciplines. The
// Dalvik register VM and the stack VM lower to the same event vocabulary
// but with different template shapes (register-file moves vs operand-stack
// push/pop traffic and spill groups), and the per-frontend histograms are
// the calibration data an adaptive NI/NT controller would start from.
type FrontendBreakdown struct {
	order []string
	cols  map[string]*Collector
}

// NewFrontendBreakdown builds an empty per-frontend collector set.
func NewFrontendBreakdown() *FrontendBreakdown {
	return &FrontendBreakdown{cols: make(map[string]*Collector)}
}

// Collector returns the named front end's collector, creating it (with the
// default window sets) on first use. Feed it events by replaying traces of
// that front end into it.
func (fb *FrontendBreakdown) Collector(name string) *Collector {
	if c, ok := fb.cols[name]; ok {
		return c
	}
	c := NewCollector()
	fb.cols[name] = c
	fb.order = append(fb.order, name)
	return c
}

// Frontends returns the front-end names in first-use order.
func (fb *FrontendBreakdown) Frontends() []string {
	return append([]string(nil), fb.order...)
}

// Get returns the named collector without creating it.
func (fb *FrontendBreakdown) Get(name string) (*Collector, bool) {
	c, ok := fb.cols[name]
	return c, ok
}

// Finish finalizes every collector; call once after all replays.
func (fb *FrontendBreakdown) Finish() {
	for _, c := range fb.cols {
		c.Finish()
	}
}

// RenderComparison prints the distance distributions side by side: one row
// per front end with the store→last-load population, its mean, the CDF at
// NI ∈ {5, 13, 20} (13 is the paper's choice), the NI that would cover 95%
// of carrying stores, and the mean store count between loads (the NT
// pressure).
func (fb *FrontendBreakdown) RenderComparison() string {
	var b strings.Builder
	b.WriteString("Per-frontend load->store distances (adaptive NI/NT calibration)\n")
	b.WriteString("  frontend    stores    mean  CDF@5  CDF@13  CDF@20  NI@95%  stores/load\n")
	for _, name := range fb.order {
		c := fb.cols[name]
		h := c.StoreToLastLoad
		fmt.Fprintf(&b, "  %-10s %7d  %6.2f  %.3f   %.3f   %.3f  %6d  %10.2f\n",
			name, h.Count(), h.Mean(),
			h.CDF(5), h.CDF(13), h.CDF(20),
			h.Quantile(0.95),
			c.StoresBetweenLoads.Mean())
	}
	return b.String()
}
