package tracestat

import (
	"strings"
	"testing"
)

func TestRenderContainsRows(t *testing.T) {
	h := NewHist(10)
	for i := 0; i < 50; i++ {
		h.Add(i % 5)
	}
	out := h.Render("test dist", 11)
	if !strings.Contains(out, "test dist (n=50") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bars rendered")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 12 { // header + 11 buckets
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestRenderOverflowRow(t *testing.T) {
	h := NewHist(3)
	h.Add(1)
	h.Add(99)
	out := h.Render("ovf", 4)
	if !strings.Contains(out, ">") {
		t.Fatalf("overflow row missing:\n%s", out)
	}
}

func TestRenderCapsRows(t *testing.T) {
	h := NewHist(100)
	h.Add(0)
	out := h.Render("cap", 5)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("maxRows ignored: %d lines", len(lines))
	}
}

func TestQuantileEdges(t *testing.T) {
	h := NewHist(10)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Add(7)
	}
	if q := h.Quantile(0.01); q != 7 {
		t.Errorf("Quantile(0.01) = %d", q)
	}
	if q := h.Quantile(1.0); q != 7 {
		t.Errorf("Quantile(1.0) = %d", q)
	}
	// All mass in overflow.
	h2 := NewHist(3)
	h2.Add(50)
	if q := h2.Quantile(0.9); q != 4 {
		t.Errorf("overflow quantile = %d, want bucket bound 4", q)
	}
}

func TestNegativeSamplesClampToZero(t *testing.T) {
	h := NewHist(5)
	h.Add(-3)
	if h.P(0) != 1 {
		t.Error("negative sample not clamped to bucket 0")
	}
}

func TestNewHistRejectsNegativeBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHist(-1) must panic")
		}
	}()
	NewHist(-1)
}

func TestCollectorWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending windows must panic")
		}
	}()
	NewCollectorWindows([]int{10, 5}, []int{5})
}

func TestRenderFigure2Smoke(t *testing.T) {
	c := NewCollector()
	feed(c, ld(10), st(12), ld(20), st(21))
	out := c.RenderFigure2()
	for _, want := range []string{"Fig 2a", "Fig 2b", "Fig 2c", "CDF(10)"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderFigure2 missing %q", want)
		}
	}
}

func TestKthStoreMeanInvalidArgs(t *testing.T) {
	c := NewCollector()
	if _, _, ok := c.KthStoreMean(10, 0); ok {
		t.Error("k=0 accepted")
	}
	if _, _, ok := c.KthStoreMean(10, 4); ok {
		t.Error("k=4 accepted")
	}
	if _, _, ok := c.KthStoreMean(99, 1); ok {
		t.Error("unknown window accepted")
	}
	if _, ok := c.StoresInWindow(99); ok {
		t.Error("unknown window histogram returned")
	}
}
