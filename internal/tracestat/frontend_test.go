package tracestat

import (
	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestFrontendBreakdown(t *testing.T) {
	fb := NewFrontendBreakdown()
	a := fb.Collector("dalvik")
	if fb.Collector("dalvik") != a {
		t.Fatal("Collector is not memoized per front end")
	}
	b := fb.Collector("stackvm")
	if a == b {
		t.Fatal("distinct front ends share a collector")
	}

	feedRaw(a, ld(1), st(3))
	feedRaw(b, ld(1), st(10))
	fb.Finish()

	if got := fb.Frontends(); len(got) != 2 || got[0] != "dalvik" || got[1] != "stackvm" {
		t.Fatalf("Frontends() = %v, want first-use order [dalvik stackvm]", got)
	}
	if _, ok := fb.Get("dalvik"); !ok {
		t.Fatal("Get(dalvik) missing")
	}
	if _, ok := fb.Get("riscv"); ok {
		t.Fatal("Get invented a front end")
	}
	if a.StoreToLastLoad.Count() != 1 || b.StoreToLastLoad.Count() != 1 {
		t.Fatalf("populations %d/%d, want 1/1",
			a.StoreToLastLoad.Count(), b.StoreToLastLoad.Count())
	}
	if am, bm := a.StoreToLastLoad.Mean(), b.StoreToLastLoad.Mean(); am >= bm {
		t.Fatalf("dalvik mean %f not below stackvm mean %f", am, bm)
	}
	if len(a.WindowSizes()) == 0 || len(a.KthWindowSizes()) == 0 {
		t.Fatalf("default window sets empty: %v / %v", a.WindowSizes(), a.KthWindowSizes())
	}

	out := fb.RenderComparison()
	for _, want := range []string{"Per-frontend", "dalvik", "stackvm", "NI@95%"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison lacks %q:\n%s", want, out)
		}
	}
}

// feedRaw delivers events without finalizing, so the breakdown's own
// Finish can be exercised.
func feedRaw(c *Collector, evs ...cpu.Event) {
	for _, ev := range evs {
		c.Event(ev)
	}
}
