// Package tracestat computes the instruction-stream statistics of the
// paper's empirical study: the load→store distance, stores-between-loads,
// and load→load distance distributions of Figure 2, the stores-in-window
// distributions of Figure 12, and the k-th-store distances of Figure 13.
package tracestat

import (
	"fmt"
	"strings"
)

// Hist is an integer histogram over buckets [0, max]; samples above max
// land in an overflow bucket.
type Hist struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
}

// NewHist builds a histogram with buckets 0..max.
func NewHist(max int) *Hist {
	if max < 0 {
		panic("tracestat: negative histogram bound")
	}
	return &Hist{buckets: make([]uint64, max+1)}
}

// Add records one sample.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.buckets) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += uint64(v)
}

// Count returns the number of samples.
func (h *Hist) Count() uint64 { return h.count }

// Overflow returns the number of samples above the bucket range.
func (h *Hist) Overflow() uint64 { return h.overflow }

// Mean returns the sample mean (0 for an empty histogram).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// P returns the probability mass of bucket v.
func (h *Hist) P(v int) float64 {
	if h.count == 0 || v < 0 || v >= len(h.buckets) {
		return 0
	}
	return float64(h.buckets[v]) / float64(h.count)
}

// CDF returns the cumulative probability of samples <= v.
func (h *Hist) CDF(v int) float64 {
	if h.count == 0 {
		return 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	var acc uint64
	for i := 0; i <= v; i++ {
		acc += h.buckets[i]
	}
	return float64(acc) / float64(h.count)
}

// Quantile returns the smallest v with CDF(v) >= q, or the bucket bound if
// the mass lives in overflow.
func (h *Hist) Quantile(q float64) int {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	var acc float64
	for i, b := range h.buckets {
		acc += float64(b)
		if acc >= target {
			return i
		}
	}
	return len(h.buckets)
}

// Render prints the distribution as aligned "value  probability  cdf" rows
// with an ASCII bar, capped at maxRows rows.
func (h *Hist) Render(label string, maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, mean=%.2f)\n", label, h.count, h.Mean())
	rows := len(h.buckets)
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	cum := 0.0
	for v := 0; v < rows; v++ {
		p := h.P(v)
		cum += p
		bar := strings.Repeat("#", int(p*60+0.5))
		fmt.Fprintf(&b, "%4d  %6.4f  %6.4f  %s\n", v, p, cum, bar)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "  >%d  %6.4f\n", rows-1,
			float64(h.overflow)/float64(h.count))
	}
	return b.String()
}
