// Package chaos is the deterministic fault injector behind the
// robustness CI matrix. Always-on tracking (the paper's deployment
// premise, §1) is only credible if the tracking layer survives the faults
// production throws at it — torn reads off a trace spool, bit-flipped
// records, analysis workers dying mid-shard, shards running slow — so
// every one of those faults is reproducible here from a single seed: the
// same seed yields the same fault schedule on every run and every
// machine, which is what lets a CI failure be replayed locally with one
// flag.
//
// The injector attacks the pipeline at its two trust boundaries:
//
//   - the byte stream feeding trace.Reader (Injector.Reader — torn reads,
//     bit flips, stalls, short reads), and
//   - the worker goroutines (Injector.Observer — scheduled panics and
//     slow shards, delivered through pipeline.Options.Observer).
//
// Schedules are derived from the seed via the stable math/rand generator,
// never from time or global state, so a fault plan is a pure function of
// (seed, stream shape).
package chaos

import (
	"fmt"
	"io"
	"math/rand"
)

// Injector derives every fault schedule from one seed.
type Injector struct {
	seed int64
	rng  *rand.Rand
}

// New returns an injector whose schedules are a pure function of seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the injector's seed, for fault reports and replay
// instructions.
func (in *Injector) Seed() int64 { return in.seed }

// Between draws a deterministic value in [lo, hi). Draws consume the
// injector's stream in call order, so a fault plan built by a fixed
// sequence of Between calls is reproducible from the seed alone.
func (in *Injector) Between(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + in.rng.Int63n(hi-lo)
}

// Torn read errors wrap io.ErrUnexpectedEOF, so consumers that classify
// truncations (trace.Reader's error taxonomy) treat an injected tear
// exactly like a real one.
var errTorn = fmt.Errorf("chaos: torn read: %w", io.ErrUnexpectedEOF)
