package chaos

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// ConnFaults schedules the connection-level faults of one wrapped
// net.Conn — the serving layer's trust boundary, where a phone on a bad
// radio link tears uploads mid-record, dribbles them out a few bytes per
// packet, or simply goes quiet. Offsets count bytes written through the
// connection (headers included); negative offsets disable a fault.
type ConnFaults struct {
	// CutAt tears the connection: once this many bytes have been
	// written, the underlying conn is closed and the write fails — a
	// client vanishing mid-stream. The peer sees an abrupt EOF/reset.
	CutAt int64
	// MaxChunk caps how many bytes any single Write pushes, drawn
	// uniformly from [1, MaxChunk] per chunk — the slow-loris body that
	// arrives a handful of bytes at a time. 0 leaves writes alone.
	MaxChunk int
	// ChunkDelay sleeps this long before each chunk — the pacing half
	// of slow-loris. Only meaningful with MaxChunk > 0.
	ChunkDelay time.Duration
}

// NoConnFaults is the identity schedule: all faults disabled.
func NoConnFaults() ConnFaults { return ConnFaults{CutAt: -1} }

// Cut connection errors are distinguishable in fault reports but look
// like any abrupt disconnect to the peer, which is the point.
var errCut = fmt.Errorf("chaos: connection cut")

// Fork derives an independent injector from this one's stream. Each
// forked schedule is still a pure function of the root seed, but forks
// own their generators, so concurrent connections stay deterministic
// per-connection and race-free across connections.
func (in *Injector) Fork() *Injector { return New(in.rng.Int63()) }

// Conn wraps c with the fault schedule. Chunk sizes come from the
// injector's seeded generator; use one injector (or Fork) per connection.
func (in *Injector) Conn(c net.Conn, f ConnFaults) net.Conn {
	return &faultConn{Conn: c, in: in, f: f}
}

// Dialer returns a DialContext function (drop-in for
// http.Transport.DialContext) whose every connection carries the fault
// schedule. Each connection gets a forked injector, so concurrent dials
// are race-free and the k-th connection's schedule depends only on the
// root seed and k.
func (in *Injector) Dialer(f ConnFaults) func(ctx context.Context, network, addr string) (net.Conn, error) {
	var mu sync.Mutex
	var d net.Dialer
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		fork := in.Fork()
		mu.Unlock()
		return fork.Conn(c, f), nil
	}
}

type faultConn struct {
	net.Conn
	in      *Injector
	f       ConnFaults
	written int64
}

func (fc *faultConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if fc.f.CutAt >= 0 && fc.written >= fc.f.CutAt {
			fc.Conn.Close()
			return total, errCut
		}
		limit := len(p)
		if fc.f.MaxChunk > 0 {
			max := fc.f.MaxChunk
			if max > limit {
				max = limit
			}
			limit = 1 + int(fc.in.Between(0, int64(max)))
		}
		// Land the cut exactly on its scheduled byte.
		if fc.f.CutAt >= 0 && fc.written+int64(limit) > fc.f.CutAt {
			limit = int(fc.f.CutAt - fc.written)
			if limit == 0 {
				continue // next iteration trips the cut
			}
		}
		if fc.f.ChunkDelay > 0 {
			time.Sleep(fc.f.ChunkDelay)
		}
		n, err := fc.Conn.Write(p[:limit])
		total += n
		fc.written += int64(n)
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}
