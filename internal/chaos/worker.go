package chaos

import (
	"fmt"
	"time"

	"repro/internal/cpu"
)

// WorkerFaults schedules the shard-level faults delivered through a
// pipeline observer. Event counts are per-shard: the observer sees each
// shard's events in their deterministic per-shard order regardless of
// batching, so a schedule keyed on "the Nth event this shard analyzes"
// reproduces exactly across runs.
type WorkerFaults struct {
	// PanicWorker is the shard to kill (-1 disables). After PanicAfter
	// events have been observed on that shard, each of the next
	// PanicCount events panics — PanicCount > the pipeline's restart
	// budget K forces the shard into permanent failure, PanicCount ≤ K
	// exercises recovery.
	PanicWorker int
	PanicAfter  uint64
	PanicCount  int
	// SlowWorker sleeps SlowSleep once per SlowEvery events on that
	// shard (-1 / 0 disable) — the slow-shard fault that turns into
	// dispatcher backpressure.
	SlowWorker int
	SlowEvery  uint64
	SlowSleep  time.Duration
}

// NoWorkerFaults is the identity schedule: all faults disabled.
func NoWorkerFaults() WorkerFaults {
	return WorkerFaults{PanicWorker: -1, SlowWorker: -1}
}

// Observer builds a pipeline observer enacting the schedule. Each
// counter is touched only by its target shard's goroutine, so the
// observer is race-free under concurrent workers; injected panics name
// the seed so any CI failure states its own reproduction recipe.
func (in *Injector) Observer(f WorkerFaults) func(worker int, ev cpu.Event) {
	var panicSeen uint64
	var panicsDone int
	var slowSeen uint64
	seed := in.seed
	return func(worker int, ev cpu.Event) {
		if worker == f.SlowWorker && f.SlowEvery > 0 {
			slowSeen++
			if slowSeen%f.SlowEvery == 0 {
				time.Sleep(f.SlowSleep)
			}
		}
		if worker == f.PanicWorker && f.PanicCount > 0 {
			panicSeen++
			if panicSeen > f.PanicAfter && panicsDone < f.PanicCount {
				panicsDone++
				panic(fmt.Sprintf("chaos: injected panic %d/%d on worker %d (seed %d)",
					panicsDone, f.PanicCount, worker, seed))
			}
		}
	}
}
