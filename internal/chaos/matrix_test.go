package chaos_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// The chaos CI matrix runs one (seed, mode) cell per job via these flags;
// with neither flag set, TestChaosMatrix runs the full matrix as
// subtests. Every cell attacks both ingest paths: the push path (one
// dispatcher goroutine behind a faulted sequential reader) and the
// shard-owned path (per-segment readers over a faulted ReaderAt).
var (
	flagSeed = flag.Int64("chaos.seed", 0, "run only this seed of the chaos matrix (0 = all)")
	flagMode = flag.String("chaos.mode", "", "run only this fault mode: torn-read, corrupt-record, worker-panic ('' = all)")
)

var matrixSeeds = []int64{11, 23, 37, 41, 53, 67, 79, 97}
var matrixModes = []string{"torn-read", "corrupt-record", "worker-panic"}

var matrixCfg = core.Config{NI: 13, NT: 3, Untaint: true}

const (
	matrixWorkers    = 4
	matrixBatch      = 64
	checkpointEvery  = 512
	matrixRestartCap = 1
)

// matrixWorkload serializes the multi-process DroidBench suite workload
// once; every cell attacks the same byte stream.
var matrixWorkload = sync.OnceValues(func() ([]byte, error) {
	wl, err := eval.NewHarness(1).SuiteWorkload(64)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := wl.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
})

// matrixWorkloadV2 is the same workload on the block-compressed wire,
// produced through the streaming transcoder so chaos also covers the
// v1→v2 path a migrating deployment runs.
var matrixWorkloadV2 = sync.OnceValues(func() ([]byte, error) {
	raw, err := matrixWorkload()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := trace.Transcode(&buf, bytes.NewReader(raw), trace.FormatV2); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
})

func resultKey(res pipeline.Result) string {
	return fmt.Sprintf("%#v|%#v|%d", res.Stats, res.Verdicts, res.Events)
}

// cleanRun drains the serialized workload through an unfaulted pipeline.
func cleanRun(t *testing.T, raw []byte) pipeline.Result {
	t.Helper()
	src, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.New(pipeline.Options{
		Workers: matrixWorkers, BatchSize: matrixBatch, Config: matrixCfg,
	}).Drain(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosMatrix is the resumed-equals-clean acceptance proof. Each cell
// derives a fault schedule from its seed, runs the workload with periodic
// checkpoints until the fault kills the run, then restores the last good
// checkpoint and drains the remainder with no faults. The resumed result
// must be byte-identical to an uninterrupted run — for every seed, every
// fault mode, and both ingest paths.
func TestChaosMatrix(t *testing.T) {
	raw, err := matrixWorkload()
	if err != nil {
		t.Fatal(err)
	}
	rawV2, err := matrixWorkloadV2()
	if err != nil {
		t.Fatal(err)
	}
	want := resultKey(cleanRun(t, raw))
	// The compressed encoding must not change results: the clean v2 run
	// is the baseline every v2 cell resumes toward, and it must be
	// byte-identical to the v1 one.
	if got := resultKey(cleanRun(t, rawV2)); got != want {
		t.Fatalf("clean v2 run diverges from clean v1 run\n got %.300s\nwant %.300s", got, want)
	}

	seeds, modes := matrixSeeds, matrixModes
	if *flagSeed != 0 {
		seeds = []int64{*flagSeed}
	}
	if *flagMode != "" {
		ok := false
		for _, m := range matrixModes {
			ok = ok || m == *flagMode
		}
		if !ok {
			t.Fatalf("unknown -chaos.mode %q (have %v)", *flagMode, matrixModes)
		}
		modes = []string{*flagMode}
	}
	for _, mode := range modes {
		for _, seed := range seeds {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed%d", mode, seed), func(t *testing.T) {
				// Every cell attacks both ingest paths on both wire
				// formats; the v2 cells corrupt arbitrary bytes (block
				// CRCs and chain checks catch everything), the v1 cells
				// target record kind bytes as before.
				for _, pf := range []struct {
					name string
					data []byte
				}{
					{"push", raw}, {"shard-owned", raw},
					{"push-v2", rawV2}, {"shard-owned-v2", rawV2},
				} {
					pf := pf
					t.Run(pf.name, func(t *testing.T) {
						runChaosCell(t, pf.data, want, mode, seed, pf.name)
					})
				}
			})
		}
	}
}

func runChaosCell(t *testing.T, raw []byte, want string, mode string, seed int64, path string) {
	// A fresh injector per path: the schedule derivation below draws in a
	// fixed order, so both paths of a cell attack the same logical
	// positions — same torn byte, same corrupt record, same panic event.
	in := chaos.New(seed)

	// The faulted run: checkpoint every checkpointEvery events, keep the
	// last checkpoint that succeeded. WriteCheckpoint refuses once a
	// shard has faulted, so lastGood can only hold states the clean
	// execution passes through.
	var lastGood []byte
	opts := pipeline.Options{
		Workers: matrixWorkers, BatchSize: matrixBatch, Config: matrixCfg,
		CheckpointEvery: checkpointEvery,
		OnCheckpoint: func(p *pipeline.Pipeline) error {
			var buf bytes.Buffer
			if _, err := p.WriteCheckpoint(&buf); err != nil {
				return err
			}
			lastGood = buf.Bytes()
			return nil
		},
	}

	v2 := bytes.HasPrefix(raw, []byte("PIFTTRC2"))
	rf := chaos.NoReaderFaults()
	switch mode {
	case "torn-read":
		// Tear anywhere past the header so the Reader constructs; on the
		// push path, also slice reads short so record boundaries never
		// align with read boundaries.
		rf.TornAt = in.Between(trace.HeaderSize+1, int64(len(raw)))
		rf.MaxRead = 4096
	case "corrupt-record":
		if v2 {
			// Any flipped body byte is detected: block headers are
			// validated against the chain and the declared total, and
			// payloads are CRC-checked.
			rf.CorruptAt = in.Between(trace.HeaderSize, int64(len(raw)))
		} else {
			nEvents := int64(len(raw)-trace.HeaderSize) / trace.EventSize
			// Flip the high bit of a record's kind byte: always an invalid
			// kind, so the corruption is always detected, never silently
			// analyzed.
			rf.CorruptAt = trace.HeaderSize + in.Between(0, nEvents)*trace.EventSize
		}
	case "worker-panic":
		wf := chaos.NoWorkerFaults()
		wf.PanicWorker = int(in.Between(0, matrixWorkers))
		wf.PanicAfter = uint64(in.Between(0, 500))
		wf.PanicCount = matrixRestartCap + 1 // exceed the budget: permanent shard failure
		opts.MaxRestarts = matrixRestartCap
		opts.Observer = in.Observer(wf)
	default:
		t.Fatalf("unknown mode %q", mode)
	}

	var err error
	switch strings.TrimSuffix(path, "-v2") {
	case "push":
		stream := io.Reader(bytes.NewReader(raw))
		if mode != "worker-panic" {
			stream = in.Reader(stream, rf)
		}
		src, rerr := trace.NewReader(stream)
		if rerr != nil {
			t.Fatal(rerr)
		}
		_, err = pipeline.New(opts).Drain(context.Background(), src)
	case "shard-owned":
		ra := io.ReaderAt(bytes.NewReader(raw))
		if mode != "worker-panic" {
			ra = in.ReaderAt(ra, rf)
		}
		_, err = pipeline.New(opts).DrainTrace(context.Background(), ra)
	default:
		t.Fatalf("unknown path %q", path)
	}
	if err == nil {
		t.Fatalf("seed %d: %s fault never fired — the cell proved nothing", seed, mode)
	}
	t.Logf("seed %d: faulted %s run died as scheduled: %v", seed, path, err)

	// The recovery: restore the last good checkpoint (or start from
	// scratch if the fault struck before the first boundary) and drain
	// the remainder with no faults, through the same ingest path.
	var resumed *pipeline.Pipeline
	if lastGood == nil {
		t.Logf("seed %d: fault preceded the first checkpoint; resuming from scratch", seed)
		resumed = pipeline.New(pipeline.Options{
			Workers: matrixWorkers, BatchSize: matrixBatch, Config: matrixCfg,
		})
	} else {
		resumed, err = pipeline.Restore(bytes.NewReader(lastGood), pipeline.Options{BatchSize: matrixBatch})
		if err != nil {
			t.Fatalf("seed %d: Restore: %v", seed, err)
		}
	}
	var res pipeline.Result
	if strings.TrimSuffix(path, "-v2") == "push" {
		cleanSrc, err := trace.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if err := cleanSrc.Skip(resumed.Offset()); err != nil {
			t.Fatalf("seed %d: Skip(%d): %v", seed, resumed.Offset(), err)
		}
		res, err = resumed.Drain(context.Background(), cleanSrc)
		if err != nil {
			t.Fatalf("seed %d: resumed drain: %v", seed, err)
		}
	} else {
		// The shard-owned planner starts at the restored offset itself.
		res, err = resumed.DrainTrace(context.Background(), bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("seed %d: resumed shard-owned drain: %v", seed, err)
		}
	}
	if got := resultKey(res); got != want {
		t.Fatalf("seed %d mode %s path %s: resumed result diverges from clean run\n got %.300s\nwant %.300s",
			seed, mode, path, got, want)
	}
}

// TestChaosDegradationParity pins the degradation accounting contract
// across ingest paths: a shard that fails permanently mid-run must yield
// the same merged Result — stats, verdicts, event count — and the same
// fault report (worker, restarts spent, failed flag, dropped events)
// whether the stream arrived through the dispatcher or through
// shard-owned readers. Only DroppedBatches may differ: batch geometry is
// a path implementation detail, while every dropped event is the same
// suffix of the failed shard's subsequence.
func TestChaosDegradationParity(t *testing.T) {
	raw, err := matrixWorkload()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range matrixSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			degradedRun := func(path string) pipeline.Result {
				in := chaos.New(seed)
				wf := chaos.NoWorkerFaults()
				wf.PanicWorker = int(in.Between(0, matrixWorkers))
				wf.PanicAfter = uint64(in.Between(0, 500))
				wf.PanicCount = matrixRestartCap + 1
				opts := pipeline.Options{
					Workers: matrixWorkers, BatchSize: matrixBatch, Config: matrixCfg,
					MaxRestarts: matrixRestartCap,
					Observer:    in.Observer(wf),
				}
				var res pipeline.Result
				var err error
				if path == "push" {
					src, rerr := trace.NewReader(bytes.NewReader(raw))
					if rerr != nil {
						t.Fatal(rerr)
					}
					res, err = pipeline.New(opts).Drain(context.Background(), src)
				} else {
					res, err = pipeline.New(opts).DrainTrace(context.Background(), bytes.NewReader(raw))
				}
				if err == nil || !res.Degraded {
					t.Fatalf("%s run not degraded (err=%v)", path, err)
				}
				return res
			}
			push := degradedRun("push")
			shard := degradedRun("shard-owned")

			if got, want := resultKey(shard), resultKey(push); got != want {
				t.Errorf("degraded results diverge between paths\n got %.300s\nwant %.300s", got, want)
			}
			if len(push.Faults) != 1 || len(shard.Faults) != 1 {
				t.Fatalf("fault reports: push %d, shard %d, want 1 each", len(push.Faults), len(shard.Faults))
			}
			pf, sf := push.Faults[0], shard.Faults[0]
			if pf.Worker != sf.Worker || pf.Restarts != sf.Restarts || pf.Failed != sf.Failed ||
				pf.DroppedEvents != sf.DroppedEvents {
				t.Errorf("fault accounting diverges:\npush  %+v\nshard %+v", pf, sf)
			}
			if (push.Err == nil) != (shard.Err == nil) {
				t.Errorf("Err presence diverges: push %v, shard %v", push.Err, shard.Err)
			}
		})
	}
}
