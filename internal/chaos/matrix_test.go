package chaos_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// The chaos CI matrix runs one (seed, mode) cell per job via these flags;
// with neither flag set, TestChaosMatrix runs the full matrix as
// subtests.
var (
	flagSeed = flag.Int64("chaos.seed", 0, "run only this seed of the chaos matrix (0 = all)")
	flagMode = flag.String("chaos.mode", "", "run only this fault mode: torn-read, corrupt-record, worker-panic ('' = all)")
)

var matrixSeeds = []int64{11, 23, 37, 41, 53, 67, 79, 97}
var matrixModes = []string{"torn-read", "corrupt-record", "worker-panic"}

var matrixCfg = core.Config{NI: 13, NT: 3, Untaint: true}

const (
	matrixWorkers    = 4
	matrixBatch      = 64
	checkpointEvery  = 512
	matrixRestartCap = 1
)

// matrixWorkload serializes the multi-process DroidBench suite workload
// once; every cell attacks the same byte stream.
var matrixWorkload = sync.OnceValues(func() ([]byte, error) {
	wl, err := eval.NewHarness(1).SuiteWorkload(64)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := wl.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
})

func resultKey(res pipeline.Result) string {
	return fmt.Sprintf("%#v|%#v|%d", res.Stats, res.Verdicts, res.Events)
}

// cleanRun drains the serialized workload through an unfaulted pipeline.
func cleanRun(t *testing.T, raw []byte) pipeline.Result {
	t.Helper()
	src, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.New(pipeline.Options{
		Workers: matrixWorkers, BatchSize: matrixBatch, Config: matrixCfg,
	}).Drain(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosMatrix is the resumed-equals-clean acceptance proof. Each cell
// derives a fault schedule from its seed, runs the workload with periodic
// checkpoints until the fault kills the run, then restores the last good
// checkpoint, skips a fresh reader to its offset, and drains the
// remainder with no faults. The resumed result must be byte-identical to
// an uninterrupted run — for every seed and every fault mode.
func TestChaosMatrix(t *testing.T) {
	raw, err := matrixWorkload()
	if err != nil {
		t.Fatal(err)
	}
	want := resultKey(cleanRun(t, raw))

	seeds, modes := matrixSeeds, matrixModes
	if *flagSeed != 0 {
		seeds = []int64{*flagSeed}
	}
	if *flagMode != "" {
		ok := false
		for _, m := range matrixModes {
			ok = ok || m == *flagMode
		}
		if !ok {
			t.Fatalf("unknown -chaos.mode %q (have %v)", *flagMode, matrixModes)
		}
		modes = []string{*flagMode}
	}
	for _, mode := range modes {
		for _, seed := range seeds {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed%d", mode, seed), func(t *testing.T) {
				runChaosCell(t, raw, want, mode, seed)
			})
		}
	}
}

func runChaosCell(t *testing.T, raw []byte, want string, mode string, seed int64) {
	in := chaos.New(seed)

	// The faulted run: checkpoint every checkpointEvery events, keep the
	// last checkpoint that succeeded. WriteCheckpoint refuses once a
	// shard has faulted, so lastGood can only hold states the clean
	// execution passes through.
	var lastGood []byte
	opts := pipeline.Options{
		Workers: matrixWorkers, BatchSize: matrixBatch, Config: matrixCfg,
		CheckpointEvery: checkpointEvery,
		OnCheckpoint: func(p *pipeline.Pipeline) error {
			var buf bytes.Buffer
			if _, err := p.WriteCheckpoint(&buf); err != nil {
				return err
			}
			lastGood = buf.Bytes()
			return nil
		},
	}

	stream := bytes.NewReader(raw)
	var faultSrc pipeline.EventSource
	switch mode {
	case "torn-read":
		f := chaos.NoReaderFaults()
		// Tear anywhere past the header so the Reader constructs, and
		// slice reads short so record boundaries never align with read
		// boundaries.
		f.TornAt = in.Between(trace.HeaderSize+1, int64(len(raw)))
		f.MaxRead = 4096
		r, err := trace.NewReader(in.Reader(stream, f))
		if err != nil {
			t.Fatal(err)
		}
		faultSrc = r
	case "corrupt-record":
		nEvents := int64(len(raw)-trace.HeaderSize) / trace.EventSize
		k := in.Between(0, nEvents)
		f := chaos.NoReaderFaults()
		// Flip the high bit of record k's kind byte: always an invalid
		// kind, so the corruption is always detected, never silently
		// analyzed.
		f.CorruptAt = trace.HeaderSize + k*trace.EventSize
		r, err := trace.NewReader(in.Reader(stream, f))
		if err != nil {
			t.Fatal(err)
		}
		faultSrc = r
	case "worker-panic":
		wf := chaos.NoWorkerFaults()
		wf.PanicWorker = int(in.Between(0, matrixWorkers))
		wf.PanicAfter = uint64(in.Between(0, 500))
		wf.PanicCount = matrixRestartCap + 1 // exceed the budget: permanent shard failure
		opts.MaxRestarts = matrixRestartCap
		opts.Observer = in.Observer(wf)
		r, err := trace.NewReader(stream)
		if err != nil {
			t.Fatal(err)
		}
		faultSrc = r
	default:
		t.Fatalf("unknown mode %q", mode)
	}

	_, err := pipeline.New(opts).Drain(context.Background(), faultSrc)
	if err == nil {
		t.Fatalf("seed %d: %s fault never fired — the cell proved nothing", seed, mode)
	}
	t.Logf("seed %d: faulted run died as scheduled: %v", seed, err)

	// The recovery: restore the last good checkpoint (or start from
	// scratch if the fault struck before the first boundary), skip a
	// clean reader to its offset, drain the tail with no faults.
	var resumed *pipeline.Pipeline
	if lastGood == nil {
		t.Logf("seed %d: fault preceded the first checkpoint; resuming from scratch", seed)
		resumed = pipeline.New(pipeline.Options{
			Workers: matrixWorkers, BatchSize: matrixBatch, Config: matrixCfg,
		})
	} else {
		resumed, err = pipeline.Restore(bytes.NewReader(lastGood), pipeline.Options{BatchSize: matrixBatch})
		if err != nil {
			t.Fatalf("seed %d: Restore: %v", seed, err)
		}
	}
	cleanSrc, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := cleanSrc.Skip(resumed.Offset()); err != nil {
		t.Fatalf("seed %d: Skip(%d): %v", seed, resumed.Offset(), err)
	}
	res, err := resumed.Drain(context.Background(), cleanSrc)
	if err != nil {
		t.Fatalf("seed %d: resumed drain: %v", seed, err)
	}
	if got := resultKey(res); got != want {
		t.Fatalf("seed %d mode %s: resumed result diverges from clean run\n got %.300s\nwant %.300s",
			seed, mode, got, want)
	}
}
