package chaos

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/cpu"
)

// TestInjectorDeterminism: the whole point of the package — two injectors
// with the same seed draw identical schedules; a different seed diverges.
func TestInjectorDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	var av, bv []int64
	for i := 0; i < 100; i++ {
		av = append(av, a.Between(0, 1_000_000))
		bv = append(bv, b.Between(0, 1_000_000))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("draw %d: %d vs %d from the same seed", i, av[i], bv[i])
		}
	}
	c := New(43)
	same := true
	for i := range av {
		if c.Between(0, 1_000_000) != av[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical 100-value schedules")
	}
	if got := New(7).Between(5, 5); got != 5 {
		t.Fatalf("Between on an empty interval = %d, want lo", got)
	}
}

// TestReaderTorn: a tear delivers every byte before the scheduled offset
// unmodified, then fails every read with an error that classifies as a
// truncation (io.ErrUnexpectedEOF), exactly like a real cut-off stream.
func TestReaderTorn(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	f := NoReaderFaults()
	f.TornAt = 1000
	r := New(1).Reader(bytes.NewReader(src), f)
	got, err := io.ReadAll(r)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn read error = %v, want io.ErrUnexpectedEOF", err)
	}
	if !bytes.Equal(got, src[:1000]) {
		t.Fatalf("delivered %d bytes before the tear, want exactly 1000 intact", len(got))
	}
}

// TestReaderCorrupt: exactly one byte is flipped, at exactly the
// scheduled offset, regardless of how the reads happen to be sliced.
func TestReaderCorrupt(t *testing.T) {
	src := make([]byte, 4096)
	f := NoReaderFaults()
	f.CorruptAt = 2049
	f.MaxRead = 7 // ragged reads must not move the flip
	r := New(3).Reader(bytes.NewReader(src), f)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) {
		t.Fatalf("read %d bytes, want %d", len(got), len(src))
	}
	for i, b := range got {
		want := byte(0)
		if int64(i) == f.CorruptAt {
			want = 0x80 // the default XOR
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

// TestReaderShortReads: MaxRead caps every read but loses nothing, and
// the read-size schedule is reproducible from the seed.
func TestReaderShortReads(t *testing.T) {
	src := make([]byte, 10_000)
	for i := range src {
		src[i] = byte(i * 31)
	}
	sizes := func(seed int64) ([]int, []byte) {
		f := NoReaderFaults()
		f.MaxRead = 13
		r := New(seed).Reader(bytes.NewReader(src), f)
		var ns []int
		var out []byte
		buf := make([]byte, 64)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				if n > 13 {
					t.Fatalf("read of %d bytes exceeds MaxRead", n)
				}
				ns = append(ns, n)
				out = append(out, buf[:n]...)
			}
			if err == io.EOF {
				return ns, out
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	ns1, out1 := sizes(99)
	ns2, out2 := sizes(99)
	if !bytes.Equal(out1, src) {
		t.Fatal("short reads lost or reordered bytes")
	}
	if !bytes.Equal(out2, src) || len(ns1) != len(ns2) {
		t.Fatal("same seed produced different read schedules")
	}
	for i := range ns1 {
		if ns1[i] != ns2[i] {
			t.Fatalf("read %d: size %d vs %d from the same seed", i, ns1[i], ns2[i])
		}
	}
}

// TestObserverPanicSchedule: the observer panics on exactly the scheduled
// per-shard events of the target worker and leaves every other shard
// alone.
func TestObserverPanicSchedule(t *testing.T) {
	obs := New(5).Observer(WorkerFaults{
		PanicWorker: 1, PanicAfter: 2, PanicCount: 2,
		SlowWorker: -1,
	})
	fire := func(worker int) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		obs(worker, cpu.Event{})
		return false
	}
	for i := 0; i < 10; i++ {
		if fire(0) {
			t.Fatalf("untargeted worker panicked on event %d", i)
		}
	}
	want := []bool{false, false, true, true, false, false}
	for i, w := range want {
		if got := fire(1); got != w {
			t.Fatalf("target worker event %d: panicked=%v, want %v", i+1, got, w)
		}
	}
}

// TestObserverDisabled: the zero-fault schedule is a no-op observer.
func TestObserverDisabled(t *testing.T) {
	obs := New(8).Observer(NoWorkerFaults())
	for i := 0; i < 100; i++ {
		obs(i%4, cpu.Event{})
	}
}
