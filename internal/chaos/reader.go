package chaos

import (
	"io"
	"time"
)

// ReaderFaults schedules the stream-level faults of one wrapped reader.
// Offsets are absolute byte positions in the wrapped stream; negative
// offsets disable the corresponding fault.
type ReaderFaults struct {
	// TornAt cuts the stream: every read at or past this byte offset
	// fails with an error wrapping io.ErrUnexpectedEOF — the torn
	// tail of a truncated spool file or a dropped connection.
	TornAt int64
	// CorruptAt XORs CorruptXOR into the byte at this offset — a
	// bit-flipped record. CorruptXOR zero defaults to 0x80, which is
	// guaranteed to invalidate a trace record's kind byte.
	CorruptAt  int64
	CorruptXOR byte
	// MaxRead caps how many bytes any single Read returns, drawn
	// uniformly from [1, MaxRead] per call — the short, ragged reads of
	// a slow pipe, which flush out callers that assume full buffers.
	// 0 leaves read sizes alone.
	MaxRead int
	// StallEvery sleeps Stall once per that many bytes delivered — a
	// slow producer. 0 disables stalls.
	StallEvery int64
	Stall      time.Duration
}

// NoReaderFaults is the identity schedule: all faults disabled.
func NoReaderFaults() ReaderFaults {
	return ReaderFaults{TornAt: -1, CorruptAt: -1}
}

// Reader wraps r with the fault schedule. The returned reader is
// deterministic given the injector's seed and the wrapped stream: fault
// positions are fixed byte offsets, and short-read sizes come from the
// injector's seeded generator.
func (in *Injector) Reader(r io.Reader, f ReaderFaults) io.Reader {
	if f.CorruptXOR == 0 {
		f.CorruptXOR = 0x80
	}
	return &faultReader{in: in, r: r, f: f}
}

// ReaderAt wraps ra with the positional faults of the schedule — TornAt
// and CorruptAt. Both are pure functions of absolute byte offset, so the
// wrapper is stateless: safe under the concurrent per-segment readers of
// the shard-owned ingest, and deterministic regardless of how their
// reads interleave. The pacing faults (MaxRead, StallEvery) model a
// sequential pipe and have no analogue for random access; they are
// ignored here.
func (in *Injector) ReaderAt(ra io.ReaderAt, f ReaderFaults) io.ReaderAt {
	if f.CorruptXOR == 0 {
		f.CorruptXOR = 0x80
	}
	return &faultReaderAt{ra: ra, f: f}
}

type faultReaderAt struct {
	ra io.ReaderAt
	f  ReaderFaults
}

func (fa *faultReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if fa.f.TornAt >= 0 && off >= fa.f.TornAt {
		return 0, errTorn
	}
	limit := len(p)
	// Land the tear exactly on its scheduled byte: deliver everything
	// before it, then fail the read.
	if fa.f.TornAt >= 0 && off+int64(limit) > fa.f.TornAt {
		limit = int(fa.f.TornAt - off)
	}
	n, err := fa.ra.ReadAt(p[:limit], off)
	if fa.f.CorruptAt >= 0 && fa.f.CorruptAt >= off && fa.f.CorruptAt < off+int64(n) {
		p[fa.f.CorruptAt-off] ^= fa.f.CorruptXOR
	}
	if err == nil && limit < len(p) {
		err = errTorn
	}
	return n, err
}

type faultReader struct {
	in  *Injector
	r   io.Reader
	f   ReaderFaults
	off int64
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if fr.f.TornAt >= 0 && fr.off >= fr.f.TornAt {
		return 0, errTorn
	}
	limit := len(p)
	if fr.f.MaxRead > 0 {
		max := fr.f.MaxRead
		if max > limit {
			max = limit
		}
		limit = 1 + int(fr.in.Between(0, int64(max)))
	}
	// Land the tear exactly on its scheduled byte.
	if fr.f.TornAt >= 0 && fr.off+int64(limit) > fr.f.TornAt {
		limit = int(fr.f.TornAt - fr.off)
	}
	n, err := fr.r.Read(p[:limit])
	if fr.f.CorruptAt >= 0 && fr.f.CorruptAt >= fr.off && fr.f.CorruptAt < fr.off+int64(n) {
		p[fr.f.CorruptAt-fr.off] ^= fr.f.CorruptXOR
	}
	if fr.f.StallEvery > 0 && fr.off/fr.f.StallEvery != (fr.off+int64(n))/fr.f.StallEvery {
		time.Sleep(fr.f.Stall)
	}
	fr.off += int64(n)
	return n, err
}
