package dalvik

import (
	"fmt"
	"strings"

	"repro/internal/arm"
	"repro/internal/frontend"
	"repro/internal/mem"
)

// Runtime is what the translator needs from the runtime layer (internal/jrt
// plus the framework): interned string objects and native entry labels for
// external methods (intrinsics, framework calls, ABI helpers, allocation).
// The runtime emits its routines into the same assembler before translation,
// so labels resolve at Finish time. The contract is shared with every front
// end (internal/frontend).
type Runtime = frontend.Runtime

// Extern names the translator itself depends on.
const (
	ExternAlloc      = "rt.alloc"      // r0=size → r0=address
	ExternAllocArray = "rt.allocArray" // r0=length, r1=elem size → r0=address
	ExternIDiv       = "__aeabi_idiv"  // r0/r1 → r0
	ExternIRem       = "__aeabi_irem"  // r0%r1 → r0
)

// InsnMeta records, for one translated bytecode instance, where its native
// template landed and which native instructions are the template's
// measured data load and data store. The Table 1 analysis and the template
// unit tests are built on this.
type InsnMeta struct {
	Method      string
	Index       int
	Op          Opcode
	NativeStart int // image instruction index of the template's first instruction
	NativeEnd   int // one past the template's last instruction
	MeasureLoad int // image index of the load of actual data, -1 if none
	DataStore   int // image index of the data store, -1 if none
	HelperCall  bool
}

// Distance returns the template's load→store distance in instructions, or
// false when the template has no such pair (or it spans a helper call,
// making the distance unknown).
func (m InsnMeta) Distance() (int, bool) {
	if m.MeasureLoad < 0 || m.DataStore < 0 || m.HelperCall {
		return 0, false
	}
	return m.DataStore - m.MeasureLoad, true
}

// Translated is the output of Translate: label names for entry points, the
// bytecode words and switch tables to materialize in data memory, and
// per-instruction metadata.
type Translated struct {
	Prog         *Program
	EntryLabel   string
	ExitLabel    string
	MethodLabels map[string]string
	Words        []uint16 // bytecode units, at BytecodeBase
	TableWords   []uint32 // packed-switch tables, at TableBase
	Meta         []InsnMeta

	unitBase map[string]int
}

// MethodUnitAddr returns the data-memory address of a method's first
// bytecode unit.
func (tr *Translated) MethodUnitAddr(method string) mem.Addr {
	return BytecodeBase + mem.Addr(2*tr.unitBase[method])
}

// Materialize writes the bytecode stream and switch tables into memory;
// the harness calls this before starting the process. These writes model
// the loader mapping the dex file, not program stores.
func (tr *Translated) Materialize(m interface {
	Store16(mem.Addr, uint16)
	Store32(mem.Addr, uint32)
}) {
	for i, w := range tr.Words {
		m.Store16(BytecodeBase+mem.Addr(2*i), w)
	}
	for i, w := range tr.TableWords {
		m.Store32(TableBase+mem.Addr(4*i), w)
	}
}

// Mode selects the translation strategy, mirroring the execution tiers of
// the paper's §4.1. The tiers are defined once for all front ends in
// internal/frontend; the aliases keep dalvik call sites readable.
type Mode = frontend.Mode

const (
	ModeInterp = frontend.ModeInterp
	ModeJIT    = frontend.ModeJIT
	ModeAOT    = frontend.ModeAOT
)

type translator struct {
	prog *Program
	asm  *arm.Assembler
	rt   Runtime
	out  *Translated
	mode Mode

	method *Method
	meta   *InsnMeta
	uniq   int
}

// Translate lowers every method of the program into native templates in the
// shared assembler and returns the linkage metadata. The caller finishes
// the assembler afterwards.
func Translate(prog *Program, asm *arm.Assembler, rt Runtime) (*Translated, error) {
	return TranslateMode(prog, asm, rt, ModeInterp)
}

// TranslateOptimized lowers with the Dalvik-JIT optimizations (ModeJIT).
// §4.1 of the paper reports JIT has no effect on the memory-operation
// patterns, which the JIT ablation experiment verifies.
func TranslateOptimized(prog *Program, asm *arm.Assembler, rt Runtime) (*Translated, error) {
	return TranslateMode(prog, asm, rt, ModeJIT)
}

// TranslateMode lowers with an explicit execution tier.
func TranslateMode(prog *Program, asm *arm.Assembler, rt Runtime, mode Mode) (*Translated, error) {
	t := &translator{
		prog: prog,
		asm:  asm,
		rt:   rt,
		mode: mode,
		out: &Translated{
			Prog:         prog,
			EntryLabel:   "boot",
			ExitLabel:    "exit",
			MethodLabels: make(map[string]string),
			unitBase:     make(map[string]int),
		},
	}

	// Layout pass: assign bytecode unit indices so invoke templates can
	// materialize callee rPC values.
	units := 0
	for _, name := range prog.MethodNames() {
		t.out.unitBase[name] = units
		units += len(prog.Methods[name].Insns)
	}
	t.out.Words = make([]uint16, units)

	if err := t.emitBootstrap(); err != nil {
		return nil, err
	}
	for _, name := range prog.MethodNames() {
		if err := t.emitMethod(prog.Methods[name]); err != nil {
			return nil, err
		}
	}
	return t.out, nil
}

func methodLabel(name string) string { return "m$" + name }

func insnLabel(method string, idx int) string {
	return fmt.Sprintf("m$%s$%d", method, idx)
}

func (t *translator) newLabel(hint string) string {
	t.uniq++
	return fmt.Sprintf("L$%s$%d", hint, t.uniq)
}

func voff(v int) int32 { return int32(4 * v) }

// addrImm reinterprets an address as the signed immediate MovImm carries;
// addresses above 0x7fffffff wrap, and the ALU's mod-2^32 arithmetic
// recovers them.
func addrImm(a mem.Addr) int32 { return int32(a) }

func (t *translator) emitBootstrap() error {
	entry := t.prog.Methods[t.prog.Entry]
	if entry == nil {
		return fmt.Errorf("dalvik: entry method %q missing", t.prog.Entry)
	}
	a := t.asm
	a.Label(t.out.EntryLabel)
	fp := addrImm(FrameTop - mem.Addr(frameBytes(entry.Registers)))
	save := fp + int32(4*entry.Registers)
	a.Emit(
		arm.MovImm(arm.SP, addrImm(StackTop)),
		arm.MovImm(RSELF, int32(SelfBase)),
		arm.MovImm(RIBASE, int32(CodeBase)),
		arm.MovImm(arm.R10, fp),
		arm.MovImm(arm.R0, 0),
		arm.Str(arm.R0, arm.R10, int32(4*entry.Registers)+saveCallerFP),
		arm.Str(arm.R0, arm.R10, int32(4*entry.Registers)+saveCallerPC),
	)
	a.MovLabel(arm.R2, t.out.ExitLabel)
	a.Emit(
		arm.Str(arm.R2, arm.R10, save-fp+saveReturnPC),
		arm.Mov(RFP, arm.R10),
	)
	if t.mode != ModeAOT {
		a.Emit(
			arm.MovImm(RPC, int32(t.out.MethodUnitAddr(t.prog.Entry))),
			arm.Ldrh(RINST, RPC, 0),
			arm.AndImm(arm.R12, RINST, 255),
		)
	}
	a.B(arm.AL, methodLabel(t.prog.Entry))
	a.Label(t.out.ExitLabel)
	a.Emit(arm.Svc(0))
	return nil
}

func (t *translator) emitMethod(m *Method) error {
	t.method = m
	t.out.MethodLabels[m.Name] = methodLabel(m.Name)
	t.asm.Label(methodLabel(m.Name))
	for i := range m.Insns {
		t.asm.Label(insnLabel(m.Name, i))
		t.out.Words[t.out.unitBase[m.Name]+i] = encodeUnit(&m.Insns[i])
		t.out.Meta = append(t.out.Meta, InsnMeta{
			Method:      m.Name,
			Index:       i,
			Op:          m.Insns[i].Op,
			NativeStart: t.asm.Len(),
			MeasureLoad: -1,
			DataStore:   -1,
		})
		t.meta = &t.out.Meta[len(t.out.Meta)-1]
		if err := t.emitInsn(m, i, &m.Insns[i]); err != nil {
			return fmt.Errorf("dalvik: %s insn %d (%v): %w", m.Name, i, m.Insns[i].Op, err)
		}
		t.meta.NativeEnd = t.asm.Len()
	}
	return nil
}

// encodeUnit packs a bytecode unit as the interpreter fetch sees it:
// opcode in the low byte, the A operand in the high byte.
func encodeUnit(in *Insn) uint16 {
	return uint16(in.Op) | uint16(in.A&0xff)<<8
}

// markMeasure tags the next emitted instruction as the template's measured
// data load.
func (t *translator) markMeasure() { t.meta.MeasureLoad = t.asm.Len() }

// markStore tags the next emitted instruction as the template's data store.
func (t *translator) markStore() { t.meta.DataStore = t.asm.Len() }

// fetch emits FETCH_ADVANCE_INST: "ldrh rINST, [rPC, #2]!". ART-compiled
// code has no bytecode stream to fetch.
func (t *translator) fetch() {
	if t.mode == ModeAOT {
		return
	}
	t.asm.Emit(arm.LdrhPre(RINST, RPC, 2))
}

// and12 emits the opcode-extraction "and r12, rINST, #255"; the optimizing
// tiers fuse it away.
func (t *translator) and12() {
	if t.mode != ModeInterp {
		return
	}
	t.asm.Emit(arm.AndImm(arm.R12, RINST, 255))
}

// goNext branches to the next bytecode's template — the stand-in for
// "add pc, rIBASE, r12, lsl #6". Straight-line templates are laid out
// consecutively, so the optimizing tiers fall through instead.
func (t *translator) goNext(idx int) {
	if t.mode != ModeInterp {
		return
	}
	t.asm.B(arm.AL, insnLabel(t.method.Name, idx+1))
}

// dispatch emits the standard template suffix: fetch, extract, branch to
// the next template (parts elided by the optimizing tiers).
func (t *translator) dispatch(idx int) {
	t.fetch()
	t.and12()
	t.goNext(idx)
}

// dispatchBranch is the dispatch used where fall-through is impossible
// (ahead of branch stubs): the jump to the next template is always emitted.
func (t *translator) dispatchBranch(idx int) {
	t.fetch()
	t.and12()
	t.asm.B(arm.AL, insnLabel(t.method.Name, idx+1))
}

// decodeA emits the mterp A-operand extraction "ubfx r9, rINST, #8, #8";
// AOT code has no instruction word to decode.
func (t *translator) decodeA() {
	if t.mode == ModeAOT {
		return
	}
	t.asm.Emit(arm.Ubfx(arm.R9, RINST, 8, 8))
}

// decodeB emits the mterp B-operand extraction "mov r3, rINST, lsr #12".
func (t *translator) decodeB() {
	if t.mode == ModeAOT {
		return
	}
	t.asm.Emit(arm.MovShift(arm.R3, RINST, arm.ShiftLSR, 12))
}

func (t *translator) emitInsn(m *Method, idx int, in *Insn) error {
	a := t.asm
	switch in.Op {
	case OpNop:
		t.dispatch(idx)

	case OpMove, OpMoveObject:
		// Table 1 distance 3: decode, decode, LOAD, fetch, extract, STORE.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R2, RFP, voff(in.B)))
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R2, RFP, voff(in.A)))
		t.goNext(idx)

	case OpMoveFrom16, OpMove16, OpMoveObjectFrom16:
		// Table 1 distance 2: shorter decode; store straight after fetch.
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R2, RFP, voff(in.B)))
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R2, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpMoveResult, OpMoveResultObject:
		// Table 1 distance 2: LOAD retval, fetch, STORE vreg.
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RSELF, RetvalOffset))
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpReturn, OpReturnObject:
		// Table 1 distance 1: LOAD vreg, STORE retval, then unwind.
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.A)))
		t.markStore()
		a.Emit(arm.Str(arm.R0, RSELF, RetvalOffset))
		t.emitUnwind(m)

	case OpReturnVoid:
		t.emitUnwind(m)

	case OpConst4, OpConst16, OpConst:
		t.decodeA()
		a.Emit(arm.MovImm(arm.R0, in.Lit))
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpConstString:
		addr := t.rt.InternString(in.Str)
		t.decodeA()
		a.Emit(arm.MovImm(arm.R0, int32(addr)))
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpGoto:
		t.emitTaken(m, idx, in.Target)

	case OpIfEqz, OpIfNez, OpIfLtz, OpIfGez, OpIfGtz, OpIfLez:
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.A)))
		a.Emit(arm.CmpImm(arm.R0, 0))
		t.emitCondBranch(m, idx, in, zCond(in.Op))

	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe:
		t.decodeA()
		t.decodeB()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.A)))
		a.Emit(arm.Ldr(arm.R1, RFP, voff(in.B)))
		a.Emit(arm.Cmp(arm.R0, arm.R1))
		t.emitCondBranch(m, idx, in, rrCond(in.Op))

	case OpPackedSwitch:
		t.emitPackedSwitch(m, idx, in)

	case OpAddInt, OpSubInt, OpMulInt, OpAndInt, OpOrInt, OpXorInt, OpShlInt, OpShrInt:
		// Table 1 distance 5 (Figure 9 shape): LOAD vB, LOAD vC, fetch,
		// op, extract, STORE vA.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R1, RFP, voff(in.B)))
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.C)))
		t.fetch()
		a.Emit(binopInstr(in.Op, arm.R0, arm.R1, arm.R0))
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.goNext(idx)

	case OpAddInt2Addr, OpSubInt2Addr, OpMulInt2Addr, OpAndInt2Addr,
		OpOrInt2Addr, OpXorInt2Addr, OpShlInt2Addr, OpShrInt2Addr:
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R1, RFP, voff(in.B)))
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.A)))
		t.fetch()
		a.Emit(binop2AddrInstr(in.Op))
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.goNext(idx)

	case OpAddIntLit8, OpMulIntLit8, OpAndIntLit8, OpRsubIntLit8, OpXorIntLit8:
		// Table 1 distance 5: the literal decode fills the vC load's slot
		// (our code units do not carry the literal, so it is materialized
		// as an immediate).
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		a.Emit(arm.MovImm(arm.R1, in.Lit)) // literal decode
		t.fetch()
		a.Emit(litInstr(in.Op))
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.goNext(idx)

	case OpDivInt, OpRemInt:
		return t.emitDiv(idx, in, false)
	case OpDivIntLit8, OpRemIntLit8:
		return t.emitDiv(idx, in, true)

	case OpNegInt, OpNotInt:
		// Table 1 distance 4.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		t.fetch()
		if in.Op == OpNegInt {
			a.Emit(arm.RsbImm(arm.R0, arm.R0, 0))
		} else {
			a.Emit(arm.Instr{Op: arm.OpMVN, Rd: arm.R0, Rm: arm.R0})
		}
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.goNext(idx)

	case OpIntToChar, OpIntToByte:
		// Table 1 distance 6: extension plus range normalization.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		t.fetch()
		if in.Op == OpIntToChar {
			a.Emit(arm.Uxth(arm.R0, arm.R0))
		} else {
			a.Emit(arm.Instr{Op: arm.OpSXTB, Rd: arm.R0, Rm: arm.R0})
		}
		a.Emit(arm.MovShift(arm.R9, arm.R0, arm.ShiftLSR, 16)) // range check pad
		a.Emit(arm.CmpImm(arm.R9, 0))
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.goNext(idx)

	case OpNewArray:
		elem := int32(4)
		if in.Str == "char" {
			elem = 2
		}
		label, ok := t.rt.ExternEntry(ExternAllocArray)
		if !ok {
			return fmt.Errorf("runtime provides no %s", ExternAllocArray)
		}
		t.decodeA()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B))) // length
		a.Emit(arm.MovImm(arm.R1, elem))
		a.BL(label)
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpArrayLength:
		// Table 1 distance 3 (from the array-ref load to the vreg store).
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		a.Emit(arm.Ldr(arm.R1, arm.R0, 0)) // length word
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R1, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpAget, OpAgetObject, OpAgetChar:
		t.emitAget(idx, in)
	case OpAput, OpAputChar:
		t.emitAput(idx, in)
	case OpAputObject:
		t.emitAputObject(idx, in)

	case OpIget, OpIgetObject:
		off, err := t.fieldOffset(in.Str)
		if err != nil {
			return err
		}
		// Table 1 distance 5: ref LOAD, null check, field LOAD, fetch,
		// extract, STORE.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		a.Emit(arm.CmpImm(arm.R0, 0))
		a.Emit(arm.Ldr(arm.R0, arm.R0, off))
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.goNext(idx)

	case OpIput:
		off, err := t.fieldOffset(in.Str)
		if err != nil {
			return err
		}
		// Table 1 distance 4: value LOAD, ref LOAD, null check, fetch, STORE.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R1, RFP, voff(in.A)))
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		a.Emit(arm.CmpImm(arm.R0, 0))
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R1, arm.R0, off))
		t.and12()
		t.goNext(idx)

	case OpIputObject:
		off, err := t.fieldOffset(in.Str)
		if err != nil {
			return err
		}
		// Distance 5: the reference write adds a card-mark stand-in.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R1, RFP, voff(in.A)))
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		a.Emit(arm.CmpImm(arm.R0, 0))
		a.Emit(arm.MovShift(arm.R9, arm.R0, arm.ShiftLSR, 12)) // card index
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R1, arm.R0, off))
		t.and12()
		t.goNext(idx)

	case OpSget, OpSgetObject:
		slot, err := t.prog.StaticIndex(in.Str)
		if err != nil {
			return err
		}
		// Table 1 distance 3.
		t.decodeA()
		a.Emit(arm.MovImm(arm.R0, int32(StaticAddr(slot))))
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R1, arm.R0, 0))
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R1, RFP, voff(in.A)))
		t.goNext(idx)

	case OpSput, OpSputObject:
		slot, err := t.prog.StaticIndex(in.Str)
		if err != nil {
			return err
		}
		// Table 1 distance 2.
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R1, RFP, voff(in.A)))
		a.Emit(arm.MovImm(arm.R0, int32(StaticAddr(slot))))
		t.markStore()
		a.Emit(arm.Str(arm.R1, arm.R0, 0))
		t.fetch()
		t.and12()
		t.goNext(idx)

	case OpNewInstance:
		cls := t.prog.Classes[in.Str]
		if cls == nil {
			return fmt.Errorf("unknown class %q", in.Str)
		}
		label, ok := t.rt.ExternEntry(ExternAlloc)
		if !ok {
			return fmt.Errorf("runtime provides no %s", ExternAlloc)
		}
		size := cls.Size()
		if size < 4 {
			size = 4
		}
		t.decodeA()
		a.Emit(arm.MovImm(arm.R0, size))
		a.BL(label)
		t.fetch()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpCheckCast:
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.A)))
		a.Emit(arm.CmpImm(arm.R0, 0))
		a.Emit(arm.MovShift(arm.R9, arm.R0, arm.ShiftLSR, 4))
		a.Emit(arm.CmpImm(arm.R9, 0))
		t.dispatch(idx)

	case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
		return t.emitInvoke(m, idx, in)

	default:
		if isWide(in.Op) {
			return t.emitWideInsn(m, idx, in)
		}
		return fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	return nil
}

func zCond(op Opcode) arm.Cond {
	switch op {
	case OpIfEqz:
		return arm.EQ
	case OpIfNez:
		return arm.NE
	case OpIfLtz:
		return arm.LT
	case OpIfGez:
		return arm.GE
	case OpIfGtz:
		return arm.GT
	case OpIfLez:
		return arm.LE
	}
	panic("not a zero-compare branch")
}

func rrCond(op Opcode) arm.Cond {
	switch op {
	case OpIfEq:
		return arm.EQ
	case OpIfNe:
		return arm.NE
	case OpIfLt:
		return arm.LT
	case OpIfGe:
		return arm.GE
	case OpIfGt:
		return arm.GT
	case OpIfLe:
		return arm.LE
	}
	panic("not a register-compare branch")
}

func binopInstr(op Opcode, rd, rn, rm arm.Reg) arm.Instr {
	switch op {
	case OpAddInt, OpAddInt2Addr:
		return arm.Add(rd, rn, rm)
	case OpSubInt, OpSubInt2Addr:
		// Dalvik semantics: vA = vB - vC; rn holds vB, rm holds vA/vC.
		return arm.Sub(rd, rn, rm)
	case OpMulInt, OpMulInt2Addr:
		return arm.Mul(rd, rn, rm)
	case OpAndInt, OpAndInt2Addr:
		return arm.And(rd, rn, rm)
	case OpOrInt, OpOrInt2Addr:
		return arm.Orr(rd, rn, rm)
	case OpXorInt, OpXorInt2Addr:
		return arm.Eor(rd, rn, rm)
	case OpShlInt, OpShlInt2Addr:
		return arm.Instr{Op: arm.OpLSL, Rd: rd, Rn: rn, Rm: rm}
	case OpShrInt, OpShrInt2Addr:
		return arm.Instr{Op: arm.OpASR, Rd: rd, Rn: rn, Rm: rm}
	}
	panic("not a binop")
}

// binop2AddrInstr computes vA op vB with vA in r0 and vB in r1; operand
// order matters for the non-commutative ops.
func binop2AddrInstr(op Opcode) arm.Instr {
	switch op {
	case OpAddInt2Addr:
		return arm.Add(arm.R0, arm.R0, arm.R1)
	case OpSubInt2Addr:
		return arm.Sub(arm.R0, arm.R0, arm.R1)
	case OpMulInt2Addr:
		return arm.Mul(arm.R0, arm.R1, arm.R0) // Figure 8: "mul r0, r1, r0"
	case OpAndInt2Addr:
		return arm.And(arm.R0, arm.R0, arm.R1)
	case OpOrInt2Addr:
		return arm.Orr(arm.R0, arm.R0, arm.R1)
	case OpXorInt2Addr:
		return arm.Eor(arm.R0, arm.R0, arm.R1)
	case OpShlInt2Addr:
		return arm.Instr{Op: arm.OpLSL, Rd: arm.R0, Rn: arm.R0, Rm: arm.R1}
	case OpShrInt2Addr:
		return arm.Instr{Op: arm.OpASR, Rd: arm.R0, Rn: arm.R0, Rm: arm.R1}
	}
	panic("not a 2addr binop")
}

// litInstr computes vB op literal with vB in r0 and the decoded literal in
// r1.
func litInstr(op Opcode) arm.Instr {
	switch op {
	case OpAddIntLit8:
		return arm.Add(arm.R0, arm.R0, arm.R1)
	case OpMulIntLit8:
		return arm.Mul(arm.R0, arm.R1, arm.R0)
	case OpAndIntLit8:
		return arm.And(arm.R0, arm.R0, arm.R1)
	case OpRsubIntLit8:
		return arm.Sub(arm.R0, arm.R1, arm.R0) // literal - vB
	case OpXorIntLit8:
		return arm.Eor(arm.R0, arm.R0, arm.R1)
	}
	panic("not a literal binop")
}

// emitTaken emits the taken-branch dispatch: adjust rPC so the fetch
// advance lands on the target unit, fetch, and jump to the target template.
// AOT code branches directly.
func (t *translator) emitTaken(m *Method, idx int, target string) {
	tIdx := m.Labels[target]
	if t.mode != ModeAOT {
		delta := int32(2*(tIdx-idx) - 2)
		if delta != 0 {
			t.asm.Emit(arm.AddImm(RPC, RPC, delta))
		}
	}
	t.fetch()
	t.and12()
	t.asm.B(arm.AL, insnLabel(m.Name, tIdx))
}

func (t *translator) emitCondBranch(m *Method, idx int, in *Insn, cond arm.Cond) {
	taken := t.newLabel("taken")
	t.asm.B(cond, taken)
	t.dispatchBranch(idx) // fallthrough: not taken (must jump over the stub)
	t.asm.Label(taken)
	t.emitTaken(m, idx, in.Target)
}

func (t *translator) emitPackedSwitch(m *Method, idx int, in *Insn) {
	a := t.asm
	tableStart := len(t.out.TableWords)
	for _, c := range in.Cases {
		t.out.TableWords = append(t.out.TableWords, uint32(c.Value))
	}
	tableAddr := TableBase + mem.Addr(4*tableStart)

	t.decodeA()
	t.markMeasure()
	a.Emit(arm.Ldr(arm.R0, RFP, voff(in.A)))
	a.Emit(arm.MovImm(arm.R9, int32(tableAddr)))
	stubs := make([]string, len(in.Cases))
	for i := range in.Cases {
		a.Emit(arm.Ldr(arm.R1, arm.R9, int32(4*i))) // case value from table
		a.Emit(arm.Cmp(arm.R1, arm.R0))
		stubs[i] = t.newLabel("case")
		a.B(arm.EQ, stubs[i])
	}
	t.dispatchBranch(idx) // default: must jump over the case stubs
	for i, c := range in.Cases {
		a.Label(stubs[i])
		t.emitTaken(m, idx, c.Target)
	}
}

func (t *translator) emitAget(idx int, in *Insn) {
	a := t.asm
	shift, ldOp := uint8(2), arm.OpLDR
	if in.Op == OpAgetChar {
		shift, ldOp = 1, arm.OpLDRH
	}
	t.decodeB()
	t.decodeA()
	a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B))) // array ref
	a.Emit(arm.Ldr(arm.R1, RFP, voff(in.C))) // index
	a.Emit(arm.AddImm(arm.R0, arm.R0, 4))    // element base
	t.markMeasure()
	a.Emit(arm.Instr{Op: ldOp, Rd: arm.R2, Rn: arm.R0, Rm: arm.R1,
		Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: shift}})
	t.fetch()
	t.markStore()
	a.Emit(arm.Str(arm.R2, RFP, voff(in.A)))
	t.and12()
	t.goNext(idx)
}

func (t *translator) emitAput(idx int, in *Insn) {
	a := t.asm
	shift, stOp := uint8(2), arm.OpSTR
	if in.Op == OpAputChar {
		shift, stOp = 1, arm.OpSTRH
	}
	t.decodeB()
	t.decodeA()
	a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
	a.Emit(arm.Ldr(arm.R1, RFP, voff(in.C)))
	a.Emit(arm.AddImm(arm.R0, arm.R0, 4))
	t.markMeasure()
	a.Emit(arm.Ldr(arm.R2, RFP, voff(in.A))) // value
	t.fetch()
	t.markStore()
	a.Emit(arm.Instr{Op: stOp, Rd: arm.R2, Rn: arm.R0, Rm: arm.R1,
		Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: shift}})
	t.and12()
	t.goNext(idx)
}

// emitAputObject reproduces the long template of aput-object (Table 1
// distance 10): the reference store is preceded by a bounds-and-type-check
// sequence.
func (t *translator) emitAputObject(idx int, in *Insn) {
	a := t.asm
	t.decodeB()
	t.decodeA()
	a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
	a.Emit(arm.Ldr(arm.R1, RFP, voff(in.C)))
	t.markMeasure()
	a.Emit(arm.Ldr(arm.R2, RFP, voff(in.A)))                // value ref
	a.Emit(arm.CmpImm(arm.R2, 0))                           // null short-circuit
	a.Emit(arm.Ldr(arm.R10, arm.R0, 0))                     // array length word
	a.Emit(arm.Cmp(arm.R1, arm.R10))                        // bounds check
	a.Emit(arm.MovShift(arm.R10, arm.R2, arm.ShiftLSR, 28)) // component type bits
	a.Emit(arm.CmpImm(arm.R10, 0))
	a.Emit(arm.MovShift(arm.R10, arm.R0, arm.ShiftLSR, 28)) // array type bits
	a.Emit(arm.CmpImm(arm.R10, 0))
	a.Emit(arm.AddImm(arm.R11, arm.R0, 4))
	t.fetch()
	t.markStore()
	a.Emit(arm.Instr{Op: arm.OpSTR, Rd: arm.R2, Rn: arm.R11, Rm: arm.R1,
		Shift: arm.Shift{Kind: arm.ShiftLSL, Amount: 2}})
	t.and12()
	t.goNext(idx)
}

func (t *translator) emitDiv(idx int, in *Insn, lit bool) error {
	helper := ExternIDiv
	if in.Op == OpRemInt || in.Op == OpRemIntLit8 {
		helper = ExternIRem
	}
	label, ok := t.rt.ExternEntry(helper)
	if !ok {
		return fmt.Errorf("runtime provides no %s", helper)
	}
	a := t.asm
	t.decodeB()
	t.decodeA()
	t.markMeasure()
	a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
	if lit {
		a.Emit(arm.MovImm(arm.R1, in.Lit))
	} else {
		a.Emit(arm.Ldr(arm.R1, RFP, voff(in.C)))
	}
	a.BL(label)
	t.meta.HelperCall = true
	t.fetch()
	t.markStore()
	a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
	t.and12()
	t.goNext(idx)
	return nil
}

func (t *translator) fieldOffset(ref string) (int32, error) {
	clsName, field, ok := strings.Cut(ref, ".")
	if !ok {
		return 0, fmt.Errorf("malformed field reference %q (want Class.field)", ref)
	}
	cls := t.prog.Classes[clsName]
	if cls == nil {
		return 0, fmt.Errorf("unresolved field reference %q: no class %q", ref, clsName)
	}
	return cls.FieldOffset(field)
}

// emitUnwind emits the frame teardown shared by the return templates.
// AOT frames carry no saved bytecode pointer.
func (t *translator) emitUnwind(m *Method) {
	a := t.asm
	a.Emit(
		arm.AddImm(arm.R9, RFP, int32(4*m.Registers)),
		arm.Ldr(arm.R1, arm.R9, saveReturnPC),
	)
	if t.mode != ModeAOT {
		a.Emit(arm.Ldr(RPC, arm.R9, saveCallerPC))
	}
	a.Emit(
		arm.Ldr(RFP, arm.R9, saveCallerFP),
		arm.Instr{Op: arm.OpBX, Rm: arm.R1},
	)
}

func (t *translator) emitInvoke(m *Method, idx int, in *Insn) error {
	if callee, ok := t.prog.Methods[in.Str]; ok {
		return t.emitAppInvoke(m, idx, in, callee)
	}
	label, ok := t.rt.ExternEntry(in.Str)
	if !ok {
		return fmt.Errorf("unresolved method %q", in.Str)
	}
	return t.emitExternInvoke(idx, in, label)
}

// emitAppInvoke is the frame-based call: copy arguments into the callee
// frame's trailing registers through memory (real load/store pairs, as the
// Dalvik interpreter does), save the caller state, and enter the callee's
// first template.
func (t *translator) emitAppInvoke(m *Method, idx int, in *Insn, callee *Method) error {
	if len(in.Args) != callee.InArgs {
		return fmt.Errorf("%s expects %d args, got %d", callee.Name, callee.InArgs, len(in.Args))
	}
	a := t.asm
	fb := frameBytes(callee.Registers)
	a.Emit(arm.SubImm(arm.R10, RFP, fb))
	for k, src := range in.Args {
		dst := callee.Registers - callee.InArgs + k
		a.Emit(arm.Ldr(arm.R2, RFP, voff(src)))
		a.Emit(arm.Str(arm.R2, arm.R10, voff(dst)))
	}
	save := int32(4 * callee.Registers)
	ret := t.newLabel("ret")
	a.Emit(arm.Str(RFP, arm.R10, save+saveCallerFP))
	if t.mode != ModeAOT {
		a.Emit(arm.Str(RPC, arm.R10, save+saveCallerPC))
	}
	a.MovLabel(arm.R2, ret)
	a.Emit(
		arm.Str(arm.R2, arm.R10, save+saveReturnPC),
		arm.Mov(RFP, arm.R10),
	)
	if t.mode != ModeAOT {
		a.Emit(
			arm.MovImm(RPC, int32(t.out.MethodUnitAddr(callee.Name))),
			arm.Ldrh(RINST, RPC, 0),
			arm.AndImm(arm.R12, RINST, 255),
		)
	}
	a.B(arm.AL, methodLabel(callee.Name))
	a.Label(ret)
	t.dispatch(idx)
	return nil
}

// emitExternInvoke is the JNI-style register-convention call used for
// runtime intrinsics and framework methods: up to four arguments are loaded
// into r0–r3 and the routine returns through the retval slot.
func (t *translator) emitExternInvoke(idx int, in *Insn, label string) error {
	if len(in.Args) > 4 {
		return fmt.Errorf("extern method %q: more than 4 args", in.Str)
	}
	a := t.asm
	for k, src := range in.Args {
		a.Emit(arm.Ldr(arm.Reg(k), RFP, voff(src)))
	}
	a.BL(label)
	t.meta.HelperCall = true
	t.dispatch(idx)
	return nil
}
