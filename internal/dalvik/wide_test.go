package dalvik

import (
	"fmt"
	"testing"

	"repro/internal/arm"
)

// runWide executes a program and reads the 64-bit result from statics 0/1.
func runWide(t *testing.T, build func(m *MethodBuilder)) int64 {
	t.Helper()
	b := NewProgram("wide")
	b.Statics("lo", "hi")
	m := b.Method("Main.main", 12, 0)
	build(m)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	machine := runProgram(t, prog)
	lo := uint64(machine.Mem.Load32(StaticAddr(0)))
	hi := uint64(machine.Mem.Load32(StaticAddr(1)))
	return int64(hi<<32 | lo)
}

// storePair sputs the pair (v, v+1) into statics lo/hi.
func storePair(m *MethodBuilder, v int) {
	m.Sput(v, "lo")
	// sput takes a single register; move the high half down first.
	m.Move(11, v+1)
	m.Sput(11, "hi")
}

// loadConst64 materializes a 64-bit constant into the pair (v, v+1) from
// two 32-bit halves.
func loadConst64(m *MethodBuilder, v int, val int64) {
	m.Const(v, int32(uint32(val)))
	m.Const(v+1, int32(uint32(uint64(val)>>32)))
}

func TestWideArithmetic(t *testing.T) {
	cases := []struct {
		name string
		op   Opcode
		a, b int64
		want int64
	}{
		{"add small", OpAddLong, 40, 2, 42},
		{"add carry", OpAddLong, 0xffffffff, 1, 0x100000000},
		{"add negative", OpAddLong, -5, 3, -2},
		{"sub small", OpSubLong, 50, 8, 42},
		{"sub borrow", OpSubLong, 0x100000000, 1, 0xffffffff},
		{"sub negative", OpSubLong, 3, 5, -2},
		{"mul small", OpMulLong, 6, 7, 42},
		{"mul wide", OpMulLong, 0x12345678, 0x1000, 0x12345678000},
		{"mul cross", OpMulLong, 0x100000001, 3, 0x300000003},
		{"mul negative", OpMulLong, -3, 7, -21},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runWide(t, func(m *MethodBuilder) {
				loadConst64(m, 0, tc.a)
				loadConst64(m, 2, tc.b)
				m.add(Insn{Op: tc.op, A: 4, B: 0, C: 2})
				storePair(m, 4)
			})
			if got != tc.want {
				t.Fatalf("got %d (%#x), want %d", got, uint64(got), tc.want)
			}
		})
	}
}

func TestWideShifts(t *testing.T) {
	for _, tc := range []struct {
		op    Opcode
		v     int64
		n     int32
		want  int64
		label string
	}{
		{OpShlLong, 1, 0, 1, "shl 0"},
		{OpShlLong, 1, 1, 2, "shl 1"},
		{OpShlLong, 1, 32, 1 << 32, "shl 32"},
		{OpShlLong, 1, 33, 1 << 33, "shl 33"},
		{OpShlLong, 0x80000000, 1, 0x100000000, "shl carry"},
		{OpShlLong, 3, 61, 3 << 61, "shl 61"},
		{OpShrLong, 4, 1, 2, "shr 1"},
		{OpShrLong, 1 << 33, 33, 1, "shr 33"},
		{OpShrLong, 1 << 32, 32, 1, "shr 32"},
		{OpShrLong, -8, 1, -4, "shr sign"},
		{OpShrLong, -1 << 40, 40, -1, "shr deep sign"},
		{OpShrLong, 42, 0, 42, "shr 0"},
	} {
		t.Run(tc.label, func(t *testing.T) {
			got := runWide(t, func(m *MethodBuilder) {
				loadConst64(m, 0, tc.v)
				m.Const(2, tc.n)
				m.add(Insn{Op: tc.op, A: 4, B: 0, C: 2})
				storePair(m, 4)
			})
			if got != tc.want {
				t.Fatalf("%s: got %d (%#x), want %d", tc.label, got, uint64(got), tc.want)
			}
		})
	}
}

func TestWideConversions(t *testing.T) {
	got := runWide(t, func(m *MethodBuilder) {
		m.Const(0, -7)
		m.IntToLong(2, 0)
		storePair(m, 2)
	})
	if got != -7 {
		t.Fatalf("int-to-long(-7) = %d", got)
	}
	got = runWide(t, func(m *MethodBuilder) {
		loadConst64(m, 0, 0x1122334455667788)
		m.LongToInt(2, 0)
		m.Sput(2, "lo")
		m.Const4(3, 0)
		m.Sput(3, "hi")
	})
	if uint32(got) != 0x55667788 {
		t.Fatalf("long-to-int = %#x", uint32(got))
	}
}

func TestWideMovesAndReturn(t *testing.T) {
	b := NewProgram("widecall")
	b.Statics("lo", "hi")
	callee := b.Method("Main.dbl", 8, 2) // long arg in (v6, v7)
	callee.AddLong(0, 6, 6)
	callee.ReturnWide(0)
	m := b.Method("Main.main", 12, 0)
	m.ConstWide16(0, 21)
	m.MoveWide(2, 0)
	m.MoveWideFrom16(4, 2)
	m.InvokeStatic("Main.dbl", 4, 5)
	m.MoveResultWide(6)
	m.Sput(6, "lo")
	m.Move(8, 7)
	m.Sput(8, "hi")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	machine := runProgram(t, prog)
	if got := machine.Mem.Load32(StaticAddr(0)); got != 42 {
		t.Fatalf("wide call chain = %d, want 42", got)
	}
}

func TestConstWideSignExtension(t *testing.T) {
	got := runWide(t, func(m *MethodBuilder) {
		m.ConstWide16(0, -2)
		storePair(m, 0)
	})
	if got != -2 {
		t.Fatalf("const-wide/16 -2 = %d", got)
	}
}

func TestCmpLong(t *testing.T) {
	for _, tc := range []struct {
		a, b int64
		want int32
	}{
		{5, 5, 0},
		{4, 5, -1},
		{6, 5, 1},
		{-1, 1, -1},
		{1 << 40, 1, 1},
		{-(1 << 40), 1, -1},
		// High words equal; low words differ (unsigned tiebreak).
		{0x100000002, 0x100000001, 1},
		{0x1_ffffffff, 0x1_00000001, 1},
		{0x100000001, 0x1ffffffff, -1},
	} {
		t.Run(fmt.Sprintf("%d_vs_%d", tc.a, tc.b), func(t *testing.T) {
			got := runWide(t, func(m *MethodBuilder) {
				loadConst64(m, 0, tc.a)
				loadConst64(m, 2, tc.b)
				m.CmpLong(4, 0, 2)
				m.Sput(4, "lo")
				m.Const4(5, 0)
				m.Sput(5, "hi")
			})
			if int32(got) != tc.want {
				t.Fatalf("cmp-long(%d,%d) = %d, want %d", tc.a, tc.b, int32(got), tc.want)
			}
		})
	}
}

// TestWideTemplateDistances locks the wide templates to their Table 1
// distances.
func TestWideTemplateDistances(t *testing.T) {
	b := NewProgram("widedist")
	b.Statics("lo", "hi")
	callee := b.Method("Callee.w", 6, 2)
	callee.ReturnWide(4)
	m := b.Method("Main.main", 12, 0)
	m.ConstWide16(0, 5)
	m.MoveWide(2, 0)
	m.MoveWideFrom16(4, 2)
	m.InvokeStatic("Callee.w", 0, 1)
	m.MoveResultWide(6)
	m.AddLong(2, 0, 4)
	m.SubLong(2, 0, 4)
	m.MulLong(2, 0, 4)
	m.Const(8, 3)
	m.ShlLong(2, 0, 8)
	m.ShrLong(2, 0, 8)
	m.IntToLong(2, 8)
	m.LongToInt(9, 0)
	m.CmpLong(9, 0, 4)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	tr, err := Translate(prog, asm, rt)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Opcode]bool{}
	for _, meta := range tr.Meta {
		want, ok := meta.Op.TableDistance()
		if !ok || seen[meta.Op] || !isWide(meta.Op) {
			continue
		}
		seen[meta.Op] = true
		got, measurable := meta.Distance()
		if !measurable {
			t.Errorf("%v: no measurable distance", meta.Op)
			continue
		}
		if got != want {
			t.Errorf("%v: distance %d, want %d", meta.Op, got, want)
		}
	}
	for _, op := range []Opcode{OpMoveWide, OpMoveWideFrom16, OpMoveResultWide,
		OpReturnWide, OpAddLong, OpSubLong, OpMulLong, OpShlLong, OpShrLong,
		OpIntToLong, OpLongToInt, OpCmpLong} {
		if !seen[op] {
			t.Errorf("%v not covered", op)
		}
	}
}
