package dalvik

import (
	"strings"
	"testing"
)

func dumpFixture(t *testing.T) *Program {
	t.Helper()
	b := NewProgram("dumpme")
	b.Class("Holder", "data", "count")
	b.Statics("out")
	m := b.Method("Main.main", 8, 0)
	m.Const4(0, 3)
	m.Label("loop")
	m.AddIntLit8(0, 0, -1)
	m.IfGtz(0, "loop")
	m.InvokeStatic("Main.helper", 0)
	m.MoveResult(1)
	m.Sput(1, "out")
	m.ReturnVoid()
	h := b.Method("Main.helper", 4, 1)
	h.Return(3)
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDumpListing(t *testing.T) {
	out := dumpFixture(t).Dump()
	for _, want := range []string{
		"program dumpme (entry Main.main)",
		"class Holder data@0 count@4",
		"static out -> slot 0",
		"method Main.main (registers=8, in=0)",
		":loop",
		"if-gtz v0, :loop",
		"invoke-static {v0}, Main.helper",
		"sput v1, out",
		"method Main.helper (registers=4, in=1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q\n%s", want, out)
		}
	}
}

func TestProgramStats(t *testing.T) {
	s := dumpFixture(t).Stats()
	if s.Methods != 2 {
		t.Errorf("methods = %d", s.Methods)
	}
	if s.Instructions != 8 {
		t.Errorf("instructions = %d", s.Instructions)
	}
	if s.Invokes != 1 {
		t.Errorf("invokes = %d", s.Invokes)
	}
	if s.Branches != 1 {
		t.Errorf("branches = %d", s.Branches)
	}
	if s.DataMovers == 0 {
		t.Error("no data movers counted")
	}
}
