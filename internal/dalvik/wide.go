package dalvik

import "repro/internal/arm"

// Wide-value templates. A long occupies the register pair (v, v+1) in the
// frame and moves through memory as one 8-byte ldrd/strd, exactly how the
// Dalvik interpreter's GET_VREG_WIDE/SET_VREG_WIDE macros behave. The
// 64-bit arithmetic is composed from 32-bit operations (adds/adc, umull,
// cross-word shifts), which is what produces the long within-template
// distances of Table 1's 9–12 group.

// isWide reports whether the opcode belongs to the wide family.
func isWide(op Opcode) bool {
	switch op {
	case OpMoveWide, OpMoveWideFrom16, OpMoveResultWide, OpReturnWide,
		OpConstWide16, OpAddLong, OpSubLong, OpMulLong, OpShlLong,
		OpShrLong, OpIntToLong, OpLongToInt, OpCmpLong:
		return true
	}
	return false
}

func (t *translator) emitWideInsn(m *Method, idx int, in *Insn) error {
	a := t.asm
	switch in.Op {
	case OpMoveWide:
		// Distance 3, like move.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.B)))
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.goNext(idx)

	case OpMoveWideFrom16:
		// Distance 2, like move/from16.
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.B)))
		t.fetch()
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpMoveResultWide:
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldrd(arm.R0, arm.R1, RSELF, RetvalOffset))
		t.fetch()
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpReturnWide:
		// Distance 1, like return.
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RSELF, RetvalOffset))
		t.emitUnwind(m)

	case OpConstWide16:
		hi := int32(0)
		if in.Lit < 0 {
			hi = -1
		}
		t.decodeA()
		a.Emit(arm.MovImm(arm.R0, in.Lit), arm.MovImm(arm.R1, hi))
		t.fetch()
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpAddLong, OpSubLong:
		// Distance 6 (Table 1: sub-long).
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(
			arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.B)),
			arm.Ldrd(arm.R2, arm.R3, RFP, voff(in.C)),
		)
		t.fetch()
		if in.Op == OpAddLong {
			a.Emit(
				arm.Instr{Op: arm.OpADD, Rd: arm.R0, Rn: arm.R0, Rm: arm.R2, SetFlags: true},
				arm.Instr{Op: arm.OpADC, Rd: arm.R1, Rn: arm.R1, Rm: arm.R3},
			)
		} else {
			a.Emit(
				arm.Subs(arm.R0, arm.R0, arm.R2),
				arm.Instr{Op: arm.OpSBC, Rd: arm.R1, Rn: arm.R1, Rm: arm.R3},
			)
		}
		t.and12()
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.goNext(idx)

	case OpMulLong:
		// Distance 10 (Table 1's 9–12 group): three partial products plus
		// an overflow probe.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(
			arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.B)),
			arm.Ldrd(arm.R2, arm.R3, RFP, voff(in.C)),
		)
		t.fetch()
		a.Emit(
			arm.Mul(arm.R9, arm.R0, arm.R3),           // b.lo * c.hi
			arm.Mla(arm.R9, arm.R1, arm.R2, arm.R9),   // + b.hi * c.lo
			arm.Umull(arm.R0, arm.R1, arm.R0, arm.R2), // full b.lo * c.lo
			arm.Add(arm.R1, arm.R1, arm.R9),
			arm.MovShift(arm.R10, arm.R1, arm.ShiftLSR, 31), // overflow probe
			arm.CmpImm(arm.R10, 0),
		)
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpShlLong:
		// Distance 12: cross-word shift with the >=32 fix-up.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(
			arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.B)),
			arm.Ldr(arm.R2, RFP, voff(in.C)),
		)
		t.fetch()
		a.Emit(
			arm.AndImm(arm.R2, arm.R2, 63),
			arm.RsbImm(arm.R3, arm.R2, 32),
			arm.Instr{Op: arm.OpLSL, Rd: arm.R1, Rn: arm.R1, Rm: arm.R2},
			arm.Instr{Op: arm.OpLSR, Rd: arm.R9, Rn: arm.R0, Rm: arm.R3},
			arm.Orr(arm.R1, arm.R1, arm.R9),
			arm.SubsImm(arm.R3, arm.R2, 32),
			cond(arm.Instr{Op: arm.OpLSL, Rd: arm.R1, Rn: arm.R0, Rm: arm.R3}, arm.PL),
			arm.Instr{Op: arm.OpLSL, Rd: arm.R0, Rn: arm.R0, Rm: arm.R2},
		)
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpShrLong:
		// Distance 12 (Table 1's 9–12 group), arithmetic.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(
			arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.B)),
			arm.Ldr(arm.R2, RFP, voff(in.C)),
		)
		t.fetch()
		a.Emit(
			arm.AndImm(arm.R2, arm.R2, 63),
			arm.RsbImm(arm.R3, arm.R2, 32),
			arm.Instr{Op: arm.OpLSR, Rd: arm.R0, Rn: arm.R0, Rm: arm.R2},
			arm.Instr{Op: arm.OpLSL, Rd: arm.R9, Rn: arm.R1, Rm: arm.R3},
			arm.Orr(arm.R0, arm.R0, arm.R9),
			arm.SubsImm(arm.R3, arm.R2, 32),
			cond(arm.Instr{Op: arm.OpASR, Rd: arm.R0, Rn: arm.R1, Rm: arm.R3}, arm.PL),
			arm.Instr{Op: arm.OpASR, Rd: arm.R1, Rn: arm.R1, Rm: arm.R2},
		)
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)

	case OpIntToLong:
		// Distance 5 (Table 1): sign extension into the pair.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B)))
		t.fetch()
		a.Emit(
			arm.MovShift(arm.R1, arm.R0, arm.ShiftASR, 31),
			arm.CmpImm(arm.R1, 0), // range probe
		)
		t.and12()
		t.markStore()
		a.Emit(arm.Strd(arm.R0, arm.R1, RFP, voff(in.A)))
		t.goNext(idx)

	case OpLongToInt:
		// Distance 3 (Table 1): truncation keeps the low word only.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(arm.Ldr(arm.R0, RFP, voff(in.B))) // low word of the pair
		t.fetch()
		t.and12()
		t.markStore()
		a.Emit(arm.Str(arm.R0, RFP, voff(in.A)))
		t.goNext(idx)

	case OpCmpLong:
		// Distance 12: signed high-word compare, then unsigned low-word
		// tiebreak.
		t.decodeB()
		t.decodeA()
		t.markMeasure()
		a.Emit(
			arm.Ldrd(arm.R0, arm.R1, RFP, voff(in.B)),
			arm.Ldrd(arm.R2, arm.R3, RFP, voff(in.C)),
		)
		t.fetch()
		done := t.newLabel("cmpl")
		a.Emit(
			arm.MovImm(arm.R9, 0),
			arm.Cmp(arm.R1, arm.R3),
			cond(arm.MovImm(arm.R9, -1), arm.LT),
			cond(arm.MovImm(arm.R9, 1), arm.GT),
		)
		a.B(arm.NE, done)
		a.Emit(
			arm.Cmp(arm.R0, arm.R2),
			cond(arm.MovImm(arm.R9, -1), arm.CC),
			cond(arm.MovImm(arm.R9, 1), arm.HI),
		)
		a.Label(done)
		t.markStore()
		a.Emit(arm.Str(arm.R9, RFP, voff(in.A)))
		t.and12()
		t.goNext(idx)
	}
	return nil
}

// cond attaches a condition code to an instruction.
func cond(in arm.Instr, c arm.Cond) arm.Instr {
	in.Cond = c
	return in
}
