package dalvik

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/cpu"
)

// runProgramMode is runProgram with an explicit translation tier.
func runProgramMode(t *testing.T, prog *Program, mode Mode) *cpu.Machine {
	t.Helper()
	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	tr, err := TranslateMode(prog, asm, rt, mode)
	if err != nil {
		t.Fatal(err)
	}
	code, err := asm.Finish()
	if err != nil {
		t.Fatal(err)
	}
	machine := cpu.NewMachine()
	tr.Materialize(machine.Mem)
	entry, _ := asm.LabelAddr(tr.EntryLabel)
	proc := cpu.NewProc(1, &cpu.Image{Base: CodeBase, Code: code}, entry)
	if _, err := machine.Run(proc, 10_000_000); err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	return machine
}

// modePrograms are semantic smoke programs whose static-0 result must be
// identical under every translation tier.
func modePrograms(t *testing.T) map[string]*Program {
	t.Helper()
	progs := map[string]*Program{}

	// Iterative loop with branches.
	b := NewProgram("loop")
	b.Statics("out")
	m := b.Method("Main.main", 8, 0)
	m.Const4(0, 0)
	m.Const16(1, 25)
	m.Label("loop")
	m.IfLez(1, "done")
	m.Binop(OpAddInt, 0, 0, 1)
	m.AddIntLit8(1, 1, -1)
	m.Goto("loop")
	m.Label("done")
	m.Sput(0, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	progs["loop"] = prog

	// Recursion through frames.
	b = NewProgram("rec")
	b.Statics("out")
	f := b.Method("Main.fact", 6, 1)
	f.Const4(0, 1)
	f.If(OpIfLe, 5, 0, "base")
	f.AddIntLit8(1, 5, -1)
	f.InvokeStatic("Main.fact", 1)
	f.MoveResult(2)
	f.Binop(OpMulInt, 0, 5, 2)
	f.Return(0)
	f.Label("base")
	f.Const4(0, 1)
	f.Return(0)
	m = b.Method("Main.main", 4, 0)
	m.Const4(0, 7)
	m.InvokeStatic("Main.fact", 0)
	m.MoveResult(1)
	m.Sput(1, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	if progs["rec"], err = b.Build(nil); err != nil {
		t.Fatal(err)
	}

	// Switch dispatch.
	b = NewProgram("sw")
	b.Statics("out")
	m = b.Method("Main.main", 4, 0)
	m.Const4(0, 1)
	m.PackedSwitch(0,
		SwitchCase{Value: 0, Target: "a"},
		SwitchCase{Value: 1, Target: "b"},
	)
	m.Const16(1, 0)
	m.Goto("end")
	m.Label("a")
	m.Const16(1, 10)
	m.Goto("end")
	m.Label("b")
	m.Const16(1, 20)
	m.Goto("end")
	m.Label("end")
	m.Sput(1, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	if progs["sw"], err = b.Build(nil); err != nil {
		t.Fatal(err)
	}

	// Wide arithmetic.
	b = NewProgram("wide")
	b.Statics("out")
	m = b.Method("Main.main", 10, 0)
	m.ConstWide16(0, 1000)
	m.ConstWide16(2, 999)
	m.MulLong(4, 0, 2)
	m.LongToInt(6, 4)
	m.Sput(6, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	if progs["wide"], err = b.Build(nil); err != nil {
		t.Fatal(err)
	}

	return progs
}

// TestModesAreSemanticallyEquivalent runs each smoke program under all
// three tiers and requires identical results — the JIT and AOT transforms
// must never change program behaviour.
func TestModesAreSemanticallyEquivalent(t *testing.T) {
	want := map[string]uint32{"loop": 325, "rec": 5040, "sw": 20, "wide": 999000}
	for name, prog := range modePrograms(t) {
		for _, mode := range []Mode{ModeInterp, ModeJIT, ModeAOT} {
			machine := runProgramMode(t, prog, mode)
			if got := machine.Mem.Load32(StaticAddr(0)); got != want[name] {
				t.Errorf("%s under %v = %d, want %d", name, mode, got, want[name])
			}
		}
	}
}

// TestAOTHasNoBytecodeFetches verifies the defining property of the AOT
// tier: no loads from the bytecode region appear in the event stream.
func TestAOTHasNoBytecodeFetches(t *testing.T) {
	prog := modePrograms(t)["loop"]
	for _, tc := range []struct {
		mode    Mode
		fetches bool
	}{
		{ModeInterp, true},
		{ModeJIT, true},
		{ModeAOT, false},
	} {
		asm := arm.NewAssembler(CodeBase)
		rt := newStubRuntime(asm)
		tr, err := TranslateMode(prog, asm, rt, tc.mode)
		if err != nil {
			t.Fatal(err)
		}
		code, err := asm.Finish()
		if err != nil {
			t.Fatal(err)
		}
		machine := cpu.NewMachine()
		log := &eventCollector{}
		machine.AttachSink(log)
		tr.Materialize(machine.Mem)
		entry, _ := asm.LabelAddr(tr.EntryLabel)
		proc := cpu.NewProc(1, &cpu.Image{Base: CodeBase, Code: code}, entry)
		if _, err := machine.Run(proc, 1_000_000); err != nil {
			t.Fatal(err)
		}
		fetches := 0
		for _, ev := range log.events {
			if ev.Kind == cpu.EvLoad && ev.Range.Start >= BytecodeBase && ev.Range.Start < CodeBase {
				fetches++
			}
		}
		if tc.fetches && fetches == 0 {
			t.Errorf("%v: expected bytecode fetches", tc.mode)
		}
		if !tc.fetches && fetches != 0 {
			t.Errorf("%v: %d bytecode fetches in compiled code", tc.mode, fetches)
		}
	}
}

// TestModeShortensInstructionStream checks the tier ordering on dynamic
// instruction count: interp > jit > aot.
func TestModeShortensInstructionStream(t *testing.T) {
	prog := modePrograms(t)["loop"]
	counts := map[Mode]uint64{}
	for _, mode := range []Mode{ModeInterp, ModeJIT, ModeAOT} {
		asm := arm.NewAssembler(CodeBase)
		rt := newStubRuntime(asm)
		tr, err := TranslateMode(prog, asm, rt, mode)
		if err != nil {
			t.Fatal(err)
		}
		code, err := asm.Finish()
		if err != nil {
			t.Fatal(err)
		}
		machine := cpu.NewMachine()
		tr.Materialize(machine.Mem)
		entry, _ := asm.LabelAddr(tr.EntryLabel)
		proc := cpu.NewProc(1, &cpu.Image{Base: CodeBase, Code: code}, entry)
		n, err := machine.Run(proc, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		counts[mode] = n
	}
	if !(counts[ModeInterp] > counts[ModeJIT] && counts[ModeJIT] > counts[ModeAOT]) {
		t.Fatalf("tier instruction counts not descending: %v", counts)
	}
}
