package dalvik

import (
	"repro/internal/arm"
	"repro/internal/frontend"
	"repro/internal/mem"
)

// This file adapts the Dalvik-like VM to the front-end-agnostic surface of
// internal/frontend: *Program implements frontend.Program, and Front is
// the frontend.Frontend descriptor used by flags and the static-coverage
// experiments.

var _ frontend.Program = (*Program)(nil)

// ProgramName implements frontend.Program.
func (p *Program) ProgramName() string { return p.Name }

// Instructions implements frontend.Program: the static bytecode count.
func (p *Program) Instructions() int { return p.Stats().Instructions }

// OpCounts implements frontend.Program: opcode tallies by mnemonic.
func (p *Program) OpCounts() map[string]int {
	out := map[string]int{}
	for _, name := range p.MethodNames() {
		for _, in := range p.Methods[name].Insns {
			out[in.Op.String()]++
		}
	}
	return out
}

// Translate implements frontend.Program.
func (p *Program) Translate(asm *arm.Assembler, rt frontend.Runtime, mode frontend.Mode) (frontend.Image, error) {
	tr, err := TranslateMode(p, asm, rt, mode)
	if err != nil {
		return nil, err
	}
	return translatedImage{tr}, nil
}

// translatedImage adapts *Translated (whose EntryLabel is a field) to the
// frontend.Image interface.
type translatedImage struct{ tr *Translated }

func (im translatedImage) EntryLabel() string         { return im.tr.EntryLabel }
func (im translatedImage) Materialize(m frontend.Mem) { im.tr.Materialize(m) }

// Front is the Dalvik front end descriptor.
type Front struct{}

var _ frontend.Frontend = Front{}

// Name implements frontend.Frontend.
func (Front) Name() string { return "dalvik" }

// Templates implements frontend.Frontend: it translates a program
// exercising every opcode and reports each template's measured data
// load/store positions. The measurement is live — a template regression
// changes the result.
func (Front) Templates() ([]frontend.TemplateInfo, error) {
	metas, err := translateAllOps()
	if err != nil {
		return nil, err
	}
	out := make([]frontend.TemplateInfo, 0, len(metas))
	for _, m := range metas {
		info := frontend.TemplateInfo{
			Op:         m.Op.String(),
			MovesData:  m.Op.MovesData(),
			HelperCall: m.HelperCall,
		}
		info.Distance, info.HasDistance = m.Distance()
		out = append(out, info)
	}
	return out, nil
}

// translateAllOps builds a program exercising every opcode and returns the
// translation metadata.
func translateAllOps() ([]InsnMeta, error) {
	b := NewProgram("table1")
	b.Class("C", "f")
	b.Statics("s")
	b.Method("Callee.m", 4, 1).Return(0)
	m := b.Method("Main.main", 6, 0)
	m.Move(0, 1)
	m.MoveFrom16(0, 1)
	m.Move16(0, 1)
	m.MoveObject(0, 1)
	m.MoveObjectFrom16(0, 1)
	m.InvokeStatic("Callee.m", 1)
	m.MoveResult(0)
	m.InvokeStatic("Callee.m", 1)
	m.MoveResultObject(0)
	for _, op := range []Opcode{
		OpAddInt, OpSubInt, OpMulInt, OpAndInt,
		OpOrInt, OpXorInt, OpShlInt, OpShrInt,
	} {
		m.Binop(op, 0, 1, 2)
	}
	for _, op := range []Opcode{
		OpAddInt2Addr, OpSubInt2Addr, OpMulInt2Addr,
		OpAndInt2Addr, OpOrInt2Addr, OpXorInt2Addr,
		OpShlInt2Addr, OpShrInt2Addr,
	} {
		m.Binop2Addr(op, 0, 1)
	}
	for _, op := range []Opcode{
		OpAddIntLit8, OpMulIntLit8, OpAndIntLit8,
		OpRsubIntLit8, OpXorIntLit8, OpDivIntLit8,
		OpRemIntLit8,
	} {
		m.BinopLit8(op, 0, 1, 3)
	}
	m.Binop(OpDivInt, 0, 1, 2)
	m.Binop(OpRemInt, 0, 1, 2)
	m.NegInt(0, 1)
	m.Binop2Addr(OpNotInt, 0, 1)
	m.IntToChar(0, 1)
	m.Binop2Addr(OpIntToByte, 0, 1)
	m.ArrayLength(0, 1)
	m.Aget(0, 1, 2)
	m.Aput(0, 1, 2)
	m.AgetChar(0, 1, 2)
	m.AputChar(0, 1, 2)
	m.AgetObject(0, 1, 2)
	m.AputObject(0, 1, 2)
	m.Iget(0, 1, "C.f")
	m.Iput(0, 1, "C.f")
	m.IgetObject(0, 1, "C.f")
	m.IputObject(0, 1, "C.f")
	m.Sget(0, "s")
	m.Sput(0, "s")
	m.SgetObject(0, "s")
	m.SputObject(0, "s")
	m.Return(0)
	b.Entry("Main.main")
	prog, err := b.Build(map[string]bool{})
	if err != nil {
		return nil, err
	}

	asm := arm.NewAssembler(CodeBase)
	rt := &measureRuntime{}
	asm.Label("measure$extern")
	asm.Emit(arm.BxLR())
	tr, err := Translate(prog, asm, rt)
	if err != nil {
		return nil, err
	}
	return tr.Meta, nil
}

// measureRuntime is the minimal Runtime needed to translate for
// measurement: no real heap, every extern resolves to a stub.
type measureRuntime struct {
	next mem.Addr
}

func (m *measureRuntime) InternString(string) mem.Addr {
	m.next += 0x40
	return HeapBase + m.next
}

func (m *measureRuntime) ExternEntry(string) (string, bool) {
	return "measure$extern", true
}
