package dalvik

import (
	"repro/internal/arm"
	"repro/internal/mem"
)

// Memory map of a translated application. The exact values are arbitrary;
// what matters is that the regions are disjoint so taint ranges never alias
// across them.
const (
	// CodeBase is where the native image starts (instruction fetch only;
	// never appears in data-memory events).
	CodeBase mem.Addr = 0x4000_0000
	// BytecodeBase holds the Dalvik code units the interpreter templates
	// fetch with "ldrh rINST, [rPC, #2]!" — real data loads, as on the
	// paper's platform.
	BytecodeBase mem.Addr = 0x3000_0000
	// TableBase holds packed-switch tables (4-byte case values).
	TableBase mem.Addr = 0x2c00_0000
	// StaticsBase holds static fields, one 4-byte slot each.
	StaticsBase mem.Addr = 0x2000_0000
	// SelfBase is the per-thread interpreter state block; the return-value
	// slot lives at offset RetvalOffset.
	SelfBase mem.Addr = 0x1000_0000
	// HeapBase is where the runtime's bump allocator starts.
	HeapBase mem.Addr = 0x0800_0000
	// FrameTop is the top of the interpreter frame stack; frames grow
	// down from here.
	FrameTop mem.Addr = 0xbef0_0000
	// StackTop is the native SP used by intrinsics that push.
	StackTop mem.Addr = 0xbf00_0000
)

// RetvalOffset is the byte offset of the method return-value slot within
// the self block.
const RetvalOffset = 0

// Interpreter register conventions, following the Android mterp assignments
// the paper's Figures 8 and 9 show.
const (
	RPC    = arm.R4 // rPC: points at the current bytecode unit
	RFP    = arm.R5 // rFP: base of the current frame's virtual registers
	RSELF  = arm.R6 // rSELF: per-thread state block (retval slot)
	RINST  = arm.R7 // rINST: current instruction unit
	RIBASE = arm.R8 // rIBASE: handler table base (kept constant)
)

// saveAreaBytes is the per-frame bookkeeping area above the virtual
// registers: caller FP, caller rPC, native return address, and padding.
const saveAreaBytes = 16

const (
	saveCallerFP = 0
	saveCallerPC = 4
	saveReturnPC = 8
)

// frameBytes returns the full extent of a frame for a method with the
// given register count.
func frameBytes(registers int) int32 {
	return int32(4*registers) + saveAreaBytes
}

// StaticAddr returns the address of static slot i.
func StaticAddr(i int) mem.Addr { return StaticsBase + mem.Addr(4*i) }
