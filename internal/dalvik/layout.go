package dalvik

import (
	"repro/internal/arm"
	"repro/internal/frontend"
	"repro/internal/mem"
)

// The memory map is the cross-frontend ABI (internal/frontend); the names
// below are kept so dalvik code and its callers read naturally.
const (
	CodeBase     = frontend.CodeBase
	BytecodeBase = frontend.BytecodeBase
	TableBase    = frontend.TableBase
	StaticsBase  = frontend.StaticsBase
	SelfBase     = frontend.SelfBase
	HeapBase     = frontend.HeapBase
	FrameTop     = frontend.FrameTop
	StackTop     = frontend.StackTop
)

// RetvalOffset is the byte offset of the method return-value slot within
// the self block.
const RetvalOffset = frontend.RetvalOffset

// Interpreter register conventions, following the Android mterp assignments
// the paper's Figures 8 and 9 show. RSELF is fixed by the extern calling
// convention shared with every other front end.
const (
	RPC    = arm.R4         // rPC: points at the current bytecode unit
	RFP    = arm.R5         // rFP: base of the current frame's virtual registers
	RSELF  = frontend.RSelf // rSELF: per-thread state block (retval slot)
	RINST  = arm.R7         // rINST: current instruction unit
	RIBASE = arm.R8         // rIBASE: handler table base (kept constant)
)

// saveAreaBytes is the per-frame bookkeeping area above the virtual
// registers: caller FP, caller rPC, native return address, and padding.
const saveAreaBytes = 16

const (
	saveCallerFP = 0
	saveCallerPC = 4
	saveReturnPC = 8
)

// frameBytes returns the full extent of a frame for a method with the
// given register count.
func frameBytes(registers int) int32 {
	return int32(4*registers) + saveAreaBytes
}

// StaticAddr returns the address of static slot i.
func StaticAddr(i int) mem.Addr { return StaticsBase + mem.Addr(4*i) }
