package dalvik

import (
	"fmt"
	"sort"
	"strings"
)

// SwitchCase is one arm of a packed-switch.
type SwitchCase struct {
	Value  int32
	Target string
}

// Insn is one bytecode instruction. Operands are virtual-register indices;
// Str carries symbol references (string literals, "Class.field" field
// references, static-field names, method names); Target is a branch label.
type Insn struct {
	Op     Opcode
	A      int
	B      int
	C      int
	Lit    int32
	Str    string
	Target string
	Cases  []SwitchCase
	Args   []int // invoke argument registers
}

func (in Insn) String() string {
	switch in.Op {
	case OpNop, OpReturnVoid:
		return in.Op.String()
	case OpGoto:
		return fmt.Sprintf("goto :%s", in.Target)
	case OpPackedSwitch:
		return fmt.Sprintf("packed-switch v%d (%d cases)", in.A, len(in.Cases))
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe:
		return fmt.Sprintf("%v v%d, v%d, :%s", in.Op, in.A, in.B, in.Target)
	case OpIfEqz, OpIfNez, OpIfLtz, OpIfGez, OpIfGtz, OpIfLez:
		return fmt.Sprintf("%v v%d, :%s", in.Op, in.A, in.Target)
	case OpConstString:
		return fmt.Sprintf("const-string v%d, %q", in.A, in.Str)
	case OpConst4, OpConst16, OpConst, OpConstWide16:
		return fmt.Sprintf("%v v%d, #%d", in.Op, in.A, in.Lit)
	case OpIget, OpIput, OpIgetObject, OpIputObject:
		return fmt.Sprintf("%v v%d, v%d, %s", in.Op, in.A, in.B, in.Str)
	case OpSget, OpSput, OpSgetObject, OpSputObject:
		return fmt.Sprintf("%v v%d, %s", in.Op, in.A, in.Str)
	case OpNewInstance, OpCheckCast:
		return fmt.Sprintf("%v v%d, %s", in.Op, in.A, in.Str)
	case OpNewArray:
		elem := "int"
		if in.Str == "char" {
			elem = "char"
		}
		return fmt.Sprintf("new-array v%d, v%d, %s[]", in.A, in.B, elem)
	case OpMoveResult, OpMoveResultObject, OpMoveResultWide,
		OpReturn, OpReturnObject, OpReturnWide:
		return fmt.Sprintf("%v v%d", in.Op, in.A)
	case OpMove, OpMoveFrom16, OpMove16, OpMoveObject, OpMoveObjectFrom16,
		OpMoveWide, OpMoveWideFrom16, OpNegInt, OpNotInt, OpIntToChar,
		OpIntToByte, OpIntToLong, OpLongToInt, OpArrayLength:
		return fmt.Sprintf("%v v%d, v%d", in.Op, in.A, in.B)
	case OpAddIntLit8, OpMulIntLit8, OpAndIntLit8, OpRsubIntLit8,
		OpXorIntLit8, OpDivIntLit8, OpRemIntLit8:
		return fmt.Sprintf("%v v%d, v%d, #%d", in.Op, in.A, in.B, in.Lit)
	case OpAddInt2Addr, OpSubInt2Addr, OpMulInt2Addr, OpAndInt2Addr,
		OpOrInt2Addr, OpXorInt2Addr, OpShlInt2Addr, OpShrInt2Addr:
		return fmt.Sprintf("%v v%d, v%d", in.Op, in.A, in.B)
	}
	switch {
	case in.Op.IsInvoke():
		return fmt.Sprintf("%v {%s}, %s", in.Op, regList(in.Args), in.Str)
	default:
		return fmt.Sprintf("%v v%d, v%d, v%d", in.Op, in.A, in.B, in.C)
	}
}

func regList(regs []int) string {
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = fmt.Sprintf("v%d", r)
	}
	return strings.Join(parts, ", ")
}

// Method is one bytecode method. Arguments arrive in the last InArgs
// virtual registers, as in Dalvik.
type Method struct {
	Name      string
	Registers int
	InArgs    int
	Insns     []Insn
	Labels    map[string]int // label → instruction index
}

// Class declares instance fields; field i lives at byte offset 4*i in the
// object.
type Class struct {
	Name   string
	Fields []string
}

// FieldOffset returns the byte offset of a field, or an error for an
// unknown field.
func (c *Class) FieldOffset(field string) (int32, error) {
	for i, f := range c.Fields {
		if f == field {
			return int32(4 * i), nil
		}
	}
	return 0, fmt.Errorf("dalvik: class %s has no field %q", c.Name, field)
}

// Size returns the object size in bytes.
func (c *Class) Size() int32 { return int32(4 * len(c.Fields)) }

// Program is a complete application: classes, methods, static fields, and
// an entry method.
type Program struct {
	Name    string
	Classes map[string]*Class
	Methods map[string]*Method
	Statics []string
	Entry   string
}

// MethodNames returns method names in sorted order for deterministic
// layout and output.
func (p *Program) MethodNames() []string {
	names := make([]string, 0, len(p.Methods))
	for n := range p.Methods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StaticIndex returns the slot index of a static field.
func (p *Program) StaticIndex(name string) (int, error) {
	for i, s := range p.Statics {
		if s == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dalvik: unknown static field %q", name)
}

// Builder assembles a Program with validation deferred to Build.
type Builder struct {
	prog *Program
	errs []error
}

// NewProgram starts a program named name.
func NewProgram(name string) *Builder {
	return &Builder{prog: &Program{
		Name:    name,
		Classes: make(map[string]*Class),
		Methods: make(map[string]*Method),
	}}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("dalvik: "+format, args...))
}

// Class declares a class with instance fields.
func (b *Builder) Class(name string, fields ...string) *Builder {
	if _, dup := b.prog.Classes[name]; dup {
		b.errf("duplicate class %q", name)
		return b
	}
	b.prog.Classes[name] = &Class{Name: name, Fields: fields}
	return b
}

// Statics declares program-level static fields.
func (b *Builder) Statics(names ...string) *Builder {
	b.prog.Statics = append(b.prog.Statics, names...)
	return b
}

// Entry names the entry method.
func (b *Builder) Entry(method string) *Builder {
	b.prog.Entry = method
	return b
}

// Method opens a method body with the given total register count and
// trailing argument count.
func (b *Builder) Method(name string, registers, inArgs int) *MethodBuilder {
	if _, dup := b.prog.Methods[name]; dup {
		b.errf("duplicate method %q", name)
	}
	m := &Method{
		Name:      name,
		Registers: registers,
		InArgs:    inArgs,
		Labels:    make(map[string]int),
	}
	b.prog.Methods[name] = m
	return &MethodBuilder{b: b, m: m}
}

// Build validates and returns the program: the entry must exist, every
// branch target must be a defined label, every register index must be in
// range, and every invoked app method must exist unless declared external
// (resolved by the runtime at link time).
func (b *Builder) Build(externs map[string]bool) (*Program, error) {
	p := b.prog
	if p.Entry == "" {
		b.errf("no entry method")
	} else if _, ok := p.Methods[p.Entry]; !ok {
		b.errf("entry method %q not defined", p.Entry)
	}
	for _, name := range p.MethodNames() {
		m := p.Methods[name]
		b.validateMethod(p, m, externs)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return p, nil
}

func (b *Builder) validateMethod(p *Program, m *Method, externs map[string]bool) {
	checkReg := func(i int, v int) {
		if v < 0 || v >= m.Registers {
			b.errf("%s insn %d: register v%d out of range (method has %d)",
				m.Name, i, v, m.Registers)
		}
	}
	if len(m.Insns) == 0 {
		b.errf("method %q has no instructions", m.Name)
		return
	}
	for i, in := range m.Insns {
		switch {
		case in.Op.IsInvoke():
			for _, a := range in.Args {
				checkReg(i, a)
			}
			if _, app := p.Methods[in.Str]; !app && !externs[in.Str] {
				b.errf("%s insn %d: unresolved method %q", m.Name, i, in.Str)
			}
		case in.Op == OpPackedSwitch:
			checkReg(i, in.A)
			for _, c := range in.Cases {
				if _, ok := m.Labels[c.Target]; !ok {
					b.errf("%s insn %d: undefined switch target %q", m.Name, i, c.Target)
				}
			}
		case in.Op.IsBranch():
			if in.Op != OpGoto {
				checkReg(i, in.A)
			}
			switch in.Op {
			case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe:
				checkReg(i, in.B)
			}
			if _, ok := m.Labels[in.Target]; !ok {
				b.errf("%s insn %d: undefined label %q", m.Name, i, in.Target)
			}
		case in.Op == OpReturnVoid, in.Op == OpNop:
		default:
			checkReg(i, in.A)
			for _, v := range widePairRegs(in) {
				checkReg(i, v)
			}
		}
	}
	last := m.Insns[len(m.Insns)-1].Op
	switch last {
	case OpReturnVoid, OpReturn, OpReturnObject, OpReturnWide, OpGoto:
	default:
		b.errf("method %q does not end in a return or goto", m.Name)
	}
}

// widePairRegs returns the extra registers a wide instruction touches
// beyond vA (the pair high halves and non-wide side operands), so
// validation can range-check them.
func widePairRegs(in Insn) []int {
	switch in.Op {
	case OpMoveWide, OpMoveWideFrom16:
		return []int{in.A + 1, in.B, in.B + 1}
	case OpMoveResultWide, OpReturnWide, OpConstWide16:
		return []int{in.A + 1}
	case OpAddLong, OpSubLong, OpMulLong:
		return []int{in.A + 1, in.B, in.B + 1, in.C, in.C + 1}
	case OpCmpLong: // vA holds the int result
		return []int{in.B, in.B + 1, in.C, in.C + 1}
	case OpShlLong, OpShrLong:
		return []int{in.A + 1, in.B, in.B + 1, in.C}
	case OpIntToLong:
		return []int{in.A + 1, in.B}
	case OpLongToInt:
		return []int{in.B, in.B + 1}
	}
	return nil
}

// MethodBuilder appends instructions to one method. Each call mirrors the
// Dalvik mnemonic it emits.
type MethodBuilder struct {
	b *Builder
	m *Method
}

func (mb *MethodBuilder) add(in Insn) *MethodBuilder {
	mb.m.Insns = append(mb.m.Insns, in)
	return mb
}

// Label defines a branch target at the next instruction.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	if _, dup := mb.m.Labels[name]; dup {
		mb.b.errf("%s: duplicate label %q", mb.m.Name, name)
	}
	mb.m.Labels[name] = len(mb.m.Insns)
	return mb
}

// Nop emits nop.
func (mb *MethodBuilder) Nop() *MethodBuilder { return mb.add(Insn{Op: OpNop}) }

// Move emits move vA, vB.
func (mb *MethodBuilder) Move(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpMove, A: vA, B: vB})
}

// MoveFrom16 emits move/from16 vA, vB.
func (mb *MethodBuilder) MoveFrom16(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveFrom16, A: vA, B: vB})
}

// Move16 emits move/16 vA, vB.
func (mb *MethodBuilder) Move16(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpMove16, A: vA, B: vB})
}

// MoveObject emits move-object vA, vB.
func (mb *MethodBuilder) MoveObject(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveObject, A: vA, B: vB})
}

// MoveObjectFrom16 emits move-object/from16 vA, vB.
func (mb *MethodBuilder) MoveObjectFrom16(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveObjectFrom16, A: vA, B: vB})
}

// MoveResult emits move-result vA.
func (mb *MethodBuilder) MoveResult(vA int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveResult, A: vA})
}

// MoveResultObject emits move-result-object vA.
func (mb *MethodBuilder) MoveResultObject(vA int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveResultObject, A: vA})
}

// ReturnVoid emits return-void.
func (mb *MethodBuilder) ReturnVoid() *MethodBuilder { return mb.add(Insn{Op: OpReturnVoid}) }

// Return emits return vA.
func (mb *MethodBuilder) Return(vA int) *MethodBuilder {
	return mb.add(Insn{Op: OpReturn, A: vA})
}

// ReturnObject emits return-object vA.
func (mb *MethodBuilder) ReturnObject(vA int) *MethodBuilder {
	return mb.add(Insn{Op: OpReturnObject, A: vA})
}

// Const4 emits const/4 vA, #lit.
func (mb *MethodBuilder) Const4(vA int, lit int32) *MethodBuilder {
	return mb.add(Insn{Op: OpConst4, A: vA, Lit: lit})
}

// Const16 emits const/16 vA, #lit.
func (mb *MethodBuilder) Const16(vA int, lit int32) *MethodBuilder {
	return mb.add(Insn{Op: OpConst16, A: vA, Lit: lit})
}

// Const emits const vA, #lit.
func (mb *MethodBuilder) Const(vA int, lit int32) *MethodBuilder {
	return mb.add(Insn{Op: OpConst, A: vA, Lit: lit})
}

// ConstString emits const-string vA, "s".
func (mb *MethodBuilder) ConstString(vA int, s string) *MethodBuilder {
	return mb.add(Insn{Op: OpConstString, A: vA, Str: s})
}

// Goto emits goto :label.
func (mb *MethodBuilder) Goto(label string) *MethodBuilder {
	return mb.add(Insn{Op: OpGoto, Target: label})
}

// If emits the two-register conditional branch for the given opcode.
func (mb *MethodBuilder) If(op Opcode, vA, vB int, label string) *MethodBuilder {
	return mb.add(Insn{Op: op, A: vA, B: vB, Target: label})
}

// IfEqz emits if-eqz vA, :label.
func (mb *MethodBuilder) IfEqz(vA int, label string) *MethodBuilder {
	return mb.add(Insn{Op: OpIfEqz, A: vA, Target: label})
}

// IfNez emits if-nez vA, :label.
func (mb *MethodBuilder) IfNez(vA int, label string) *MethodBuilder {
	return mb.add(Insn{Op: OpIfNez, A: vA, Target: label})
}

// IfLtz emits if-ltz vA, :label.
func (mb *MethodBuilder) IfLtz(vA int, label string) *MethodBuilder {
	return mb.add(Insn{Op: OpIfLtz, A: vA, Target: label})
}

// IfGez emits if-gez vA, :label.
func (mb *MethodBuilder) IfGez(vA int, label string) *MethodBuilder {
	return mb.add(Insn{Op: OpIfGez, A: vA, Target: label})
}

// IfGtz emits if-gtz vA, :label.
func (mb *MethodBuilder) IfGtz(vA int, label string) *MethodBuilder {
	return mb.add(Insn{Op: OpIfGtz, A: vA, Target: label})
}

// IfLez emits if-lez vA, :label.
func (mb *MethodBuilder) IfLez(vA int, label string) *MethodBuilder {
	return mb.add(Insn{Op: OpIfLez, A: vA, Target: label})
}

// PackedSwitch emits packed-switch vA with the given cases.
func (mb *MethodBuilder) PackedSwitch(vA int, cases ...SwitchCase) *MethodBuilder {
	return mb.add(Insn{Op: OpPackedSwitch, A: vA, Cases: cases})
}

// Binop emits a three-address integer op: op vA, vB, vC.
func (mb *MethodBuilder) Binop(op Opcode, vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: op, A: vA, B: vB, C: vC})
}

// Binop2Addr emits a two-address integer op: op vA, vB.
func (mb *MethodBuilder) Binop2Addr(op Opcode, vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: op, A: vA, B: vB})
}

// BinopLit8 emits a literal-operand op: op vA, vB, #lit.
func (mb *MethodBuilder) BinopLit8(op Opcode, vA, vB int, lit int32) *MethodBuilder {
	return mb.add(Insn{Op: op, A: vA, B: vB, Lit: lit})
}

// AddInt2Addr emits add-int/2addr vA, vB.
func (mb *MethodBuilder) AddInt2Addr(vA, vB int) *MethodBuilder {
	return mb.Binop2Addr(OpAddInt2Addr, vA, vB)
}

// MulInt2Addr emits mul-int/2addr vA, vB.
func (mb *MethodBuilder) MulInt2Addr(vA, vB int) *MethodBuilder {
	return mb.Binop2Addr(OpMulInt2Addr, vA, vB)
}

// AddIntLit8 emits add-int/lit8 vA, vB, #lit.
func (mb *MethodBuilder) AddIntLit8(vA, vB int, lit int32) *MethodBuilder {
	return mb.BinopLit8(OpAddIntLit8, vA, vB, lit)
}

// XorIntLit8 emits xor-int/lit8 vA, vB, #lit.
func (mb *MethodBuilder) XorIntLit8(vA, vB int, lit int32) *MethodBuilder {
	return mb.BinopLit8(OpXorIntLit8, vA, vB, lit)
}

// DivIntLit8 emits div-int/lit8 vA, vB, #lit.
func (mb *MethodBuilder) DivIntLit8(vA, vB int, lit int32) *MethodBuilder {
	return mb.BinopLit8(OpDivIntLit8, vA, vB, lit)
}

// RemIntLit8 emits rem-int/lit8 vA, vB, #lit.
func (mb *MethodBuilder) RemIntLit8(vA, vB int, lit int32) *MethodBuilder {
	return mb.BinopLit8(OpRemIntLit8, vA, vB, lit)
}

// NegInt emits neg-int vA, vB.
func (mb *MethodBuilder) NegInt(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpNegInt, A: vA, B: vB})
}

// IntToChar emits int-to-char vA, vB.
func (mb *MethodBuilder) IntToChar(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpIntToChar, A: vA, B: vB})
}

// NewArray emits new-array vA, vB (length in vB) with 4-byte elements.
func (mb *MethodBuilder) NewArray(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpNewArray, A: vA, B: vB})
}

// NewCharArray emits new-array vA, vB with 2-byte char elements.
func (mb *MethodBuilder) NewCharArray(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpNewArray, A: vA, B: vB, Str: "char"})
}

// ArrayLength emits array-length vA, vB.
func (mb *MethodBuilder) ArrayLength(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpArrayLength, A: vA, B: vB})
}

// Aget emits aget vA, vB, vC.
func (mb *MethodBuilder) Aget(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpAget, A: vA, B: vB, C: vC})
}

// Aput emits aput vA, vB, vC (value vA into array vB at index vC).
func (mb *MethodBuilder) Aput(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpAput, A: vA, B: vB, C: vC})
}

// AgetChar emits aget-char vA, vB, vC.
func (mb *MethodBuilder) AgetChar(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpAgetChar, A: vA, B: vB, C: vC})
}

// AputChar emits aput-char vA, vB, vC.
func (mb *MethodBuilder) AputChar(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpAputChar, A: vA, B: vB, C: vC})
}

// AgetObject emits aget-object vA, vB, vC.
func (mb *MethodBuilder) AgetObject(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpAgetObject, A: vA, B: vB, C: vC})
}

// AputObject emits aput-object vA, vB, vC.
func (mb *MethodBuilder) AputObject(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpAputObject, A: vA, B: vB, C: vC})
}

// Iget emits iget vA, vB, Class.field.
func (mb *MethodBuilder) Iget(vA, vB int, field string) *MethodBuilder {
	return mb.add(Insn{Op: OpIget, A: vA, B: vB, Str: field})
}

// Iput emits iput vA, vB, Class.field.
func (mb *MethodBuilder) Iput(vA, vB int, field string) *MethodBuilder {
	return mb.add(Insn{Op: OpIput, A: vA, B: vB, Str: field})
}

// IgetObject emits iget-object vA, vB, Class.field.
func (mb *MethodBuilder) IgetObject(vA, vB int, field string) *MethodBuilder {
	return mb.add(Insn{Op: OpIgetObject, A: vA, B: vB, Str: field})
}

// IputObject emits iput-object vA, vB, Class.field.
func (mb *MethodBuilder) IputObject(vA, vB int, field string) *MethodBuilder {
	return mb.add(Insn{Op: OpIputObject, A: vA, B: vB, Str: field})
}

// Sget emits sget vA, static.
func (mb *MethodBuilder) Sget(vA int, static string) *MethodBuilder {
	return mb.add(Insn{Op: OpSget, A: vA, Str: static})
}

// Sput emits sput vA, static.
func (mb *MethodBuilder) Sput(vA int, static string) *MethodBuilder {
	return mb.add(Insn{Op: OpSput, A: vA, Str: static})
}

// SgetObject emits sget-object vA, static.
func (mb *MethodBuilder) SgetObject(vA int, static string) *MethodBuilder {
	return mb.add(Insn{Op: OpSgetObject, A: vA, Str: static})
}

// SputObject emits sput-object vA, static.
func (mb *MethodBuilder) SputObject(vA int, static string) *MethodBuilder {
	return mb.add(Insn{Op: OpSputObject, A: vA, Str: static})
}

// NewInstance emits new-instance vA, Class.
func (mb *MethodBuilder) NewInstance(vA int, class string) *MethodBuilder {
	return mb.add(Insn{Op: OpNewInstance, A: vA, Str: class})
}

// CheckCast emits check-cast vA, Class.
func (mb *MethodBuilder) CheckCast(vA int, class string) *MethodBuilder {
	return mb.add(Insn{Op: OpCheckCast, A: vA, Str: class})
}

// MoveWide emits move-wide vA, vB (register pairs).
func (mb *MethodBuilder) MoveWide(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveWide, A: vA, B: vB})
}

// MoveWideFrom16 emits move-wide/from16 vA, vB.
func (mb *MethodBuilder) MoveWideFrom16(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveWideFrom16, A: vA, B: vB})
}

// MoveResultWide emits move-result-wide vA.
func (mb *MethodBuilder) MoveResultWide(vA int) *MethodBuilder {
	return mb.add(Insn{Op: OpMoveResultWide, A: vA})
}

// ReturnWide emits return-wide vA.
func (mb *MethodBuilder) ReturnWide(vA int) *MethodBuilder {
	return mb.add(Insn{Op: OpReturnWide, A: vA})
}

// ConstWide16 emits const-wide/16 vA, #lit (sign-extended to 64 bits).
func (mb *MethodBuilder) ConstWide16(vA int, lit int32) *MethodBuilder {
	return mb.add(Insn{Op: OpConstWide16, A: vA, Lit: lit})
}

// AddLong emits add-long vA, vB, vC.
func (mb *MethodBuilder) AddLong(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpAddLong, A: vA, B: vB, C: vC})
}

// SubLong emits sub-long vA, vB, vC.
func (mb *MethodBuilder) SubLong(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpSubLong, A: vA, B: vB, C: vC})
}

// MulLong emits mul-long vA, vB, vC.
func (mb *MethodBuilder) MulLong(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpMulLong, A: vA, B: vB, C: vC})
}

// ShlLong emits shl-long vA, vB, vC (shift count is the int in vC).
func (mb *MethodBuilder) ShlLong(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpShlLong, A: vA, B: vB, C: vC})
}

// ShrLong emits shr-long vA, vB, vC (arithmetic).
func (mb *MethodBuilder) ShrLong(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpShrLong, A: vA, B: vB, C: vC})
}

// IntToLong emits int-to-long vA, vB.
func (mb *MethodBuilder) IntToLong(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpIntToLong, A: vA, B: vB})
}

// LongToInt emits long-to-int vA, vB.
func (mb *MethodBuilder) LongToInt(vA, vB int) *MethodBuilder {
	return mb.add(Insn{Op: OpLongToInt, A: vA, B: vB})
}

// CmpLong emits cmp-long vA, vB, vC (vA gets -1, 0, or 1).
func (mb *MethodBuilder) CmpLong(vA, vB, vC int) *MethodBuilder {
	return mb.add(Insn{Op: OpCmpLong, A: vA, B: vB, C: vC})
}

// Invoke emits the given invoke opcode for method with argument registers.
func (mb *MethodBuilder) Invoke(op Opcode, method string, args ...int) *MethodBuilder {
	return mb.add(Insn{Op: op, Str: method, Args: args})
}

// InvokeVirtual emits invoke-virtual {args}, method.
func (mb *MethodBuilder) InvokeVirtual(method string, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeVirtual, method, args...)
}

// InvokeStatic emits invoke-static {args}, method.
func (mb *MethodBuilder) InvokeStatic(method string, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeStatic, method, args...)
}

// InvokeDirect emits invoke-direct {args}, method.
func (mb *MethodBuilder) InvokeDirect(method string, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeDirect, method, args...)
}

// InvokeInterface emits invoke-interface {args}, method.
func (mb *MethodBuilder) InvokeInterface(method string, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeInterface, method, args...)
}
