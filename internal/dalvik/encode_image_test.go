package dalvik

import (
	"errors"
	"testing"

	"repro/internal/arm"
	"repro/internal/mem"
)

// TestTranslatedImageEncodability encodes a full translated application
// image into real A32 words and checks the coverage: the unencodable
// remainder must consist solely of known subset gaps (movw/movt-class
// immediates and shifted halfword offsets), never silent failures.
func TestTranslatedImageEncodability(t *testing.T) {
	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	if _, err := Translate(buildAllOps(t), asm, rt); err != nil {
		t.Fatal(err)
	}
	code, err := asm.Finish()
	if err != nil {
		t.Fatal(err)
	}
	encoded, skipped := 0, 0
	for i := range code {
		addr := CodeBase + mem.Addr(4*i)
		w, err := arm.Encode(code[i], addr)
		if err != nil {
			var ee *arm.EncodeError
			if !errors.As(err, &ee) {
				t.Fatalf("unexpected error type at %#x (%v): %v", addr, code[i], err)
			}
			skipped++
			continue
		}
		// Whatever encodes must decode to the same rendering.
		back, err := arm.Decode(w, addr)
		if err != nil {
			t.Fatalf("decode of own encoding failed at %#x: %v", addr, err)
		}
		if back.String() != code[i].String() {
			// The explicit shift ops round-trip as mov-with-shift;
			// accept semantic aliases by re-encoding.
			w2, err := arm.Encode(back, addr)
			if err != nil || w2 != w {
				t.Fatalf("round trip at %#x: %q vs %q", addr, code[i], back)
			}
		}
		encoded++
	}
	total := encoded + skipped
	if total == 0 {
		t.Fatal("empty image")
	}
	frac := float64(encoded) / float64(total)
	t.Logf("encodable: %d/%d (%.1f%%)", encoded, total, 100*frac)
	if frac < 0.80 {
		t.Errorf("only %.1f%% of the translated image is encodable", 100*frac)
	}
}
