// Package dalvik models the register-based bytecode virtual machine the
// paper's analysis targets (§4): a Dalvik-like instruction set whose
// bytecodes are translated into fixed native-code templates in the style of
// the Android mterp interpreter. Virtual registers live in a memory frame
// addressed through rFP, so every data movement between them is a native
// load/store pair at a template-determined distance — the structural
// property PIFT's tainting window exploits (Table 1 of the paper).
package dalvik

// Opcode enumerates the implemented Dalvik-like bytecodes.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Moves between virtual registers.
	OpMove             // vA ← vB (distance 3)
	OpMoveFrom16       // vA ← vB, 16-bit B form (distance 2)
	OpMove16           // vA ← vB, 16/16 form (distance 2)
	OpMoveObject       // object ref move (distance 3)
	OpMoveObjectFrom16 // (distance 2)

	// Result/return plumbing through the thread's retval slot.
	OpMoveResult       // vA ← retval (distance 2)
	OpMoveResultObject // vA ← retval ref (distance 2)
	OpReturnVoid
	OpReturn       // retval ← vA (distance 1)
	OpReturnObject // (distance 1)

	// Constants.
	OpConst4
	OpConst16
	OpConst
	OpConstString // vA ← interned string reference

	// Control flow.
	OpGoto
	OpIfEq
	OpIfNe
	OpIfLt
	OpIfGe
	OpIfGt
	OpIfLe
	OpIfEqz
	OpIfNez
	OpIfLtz
	OpIfGez
	OpIfGtz
	OpIfLez
	OpPackedSwitch

	// Integer arithmetic, three-address form (distance 5).
	OpAddInt
	OpSubInt
	OpMulInt
	OpAndInt
	OpOrInt
	OpXorInt
	OpShlInt
	OpShrInt

	// Two-address form, "/2addr" (distance 5).
	OpAddInt2Addr
	OpSubInt2Addr
	OpMulInt2Addr
	OpAndInt2Addr
	OpOrInt2Addr
	OpXorInt2Addr
	OpShlInt2Addr
	OpShrInt2Addr

	// Literal forms (distance 5).
	OpAddIntLit8
	OpMulIntLit8
	OpAndIntLit8
	OpRsubIntLit8
	OpXorIntLit8

	// Division family: translated to calls of ARM ABI helper routines
	// (__aeabi_idiv and friends), so the within-template distance is
	// "unknown" in Table 1's sense.
	OpDivInt
	OpRemInt
	OpDivIntLit8
	OpRemIntLit8

	// Unary ops.
	OpNegInt    // distance 4
	OpNotInt    // distance 4
	OpIntToChar // distance 6
	OpIntToByte // distance 6

	// Arrays.
	OpNewArray
	OpArrayLength // distance 3
	OpAget        // distance 2
	OpAput        // distance 2
	OpAgetChar    // distance 2
	OpAputChar    // distance 2
	OpAgetObject  // distance 2
	OpAputObject  // distance 10 (type check before the store)

	// Instance fields.
	OpIget       // distance 5
	OpIput       // distance 4
	OpIgetObject // distance 5
	OpIputObject // distance 5

	// Static fields.
	OpSget       // distance 3
	OpSput       // distance 2
	OpSgetObject // distance 3
	OpSputObject // distance 2

	// Objects and calls.
	OpNewInstance
	OpCheckCast
	OpInvokeVirtual
	OpInvokeStatic
	OpInvokeDirect
	OpInvokeInterface

	// Wide (64-bit long) operations: values occupy register pairs
	// (vA, vA+1) and move through memory as 8-byte ldrd/strd accesses.
	// These fill Table 1's long rows: return-wide (1), int-to-long (5),
	// sub-long (6), and the 9–12 group (mul-long, shr-long).
	OpMoveWide       // distance 3
	OpMoveWideFrom16 // distance 2
	OpMoveResultWide // distance 2
	OpReturnWide     // distance 1
	OpConstWide16
	OpAddLong   // distance 6
	OpSubLong   // distance 6
	OpMulLong   // distance 9
	OpShlLong   // distance 11
	OpShrLong   // distance 11
	OpIntToLong // distance 5
	OpLongToInt // distance 3
	OpCmpLong   // distance 11

	opcodeCount // must be last
)

// opInfo carries the static properties the translator and the analyses
// need per opcode.
type opInfo struct {
	name string
	// movesData marks the bytecodes that can move data, "irrespective of
	// being a real data or a reference to it" — the highlighted rows of
	// the paper's Figure 10.
	movesData bool
	// distance is the within-template native load→store distance the
	// translation rules produce (paper Table 1): the instruction count
	// from the first load of actual data to the store of the result.
	// 0 = not applicable (no load→store pair); -1 = unknown (the
	// template calls an ABI helper routine).
	distance int
}

var opTable = [opcodeCount]opInfo{
	OpNop:              {name: "nop"},
	OpMove:             {name: "move", movesData: true, distance: 3},
	OpMoveFrom16:       {name: "move/from16", movesData: true, distance: 2},
	OpMove16:           {name: "move/16", movesData: true, distance: 2},
	OpMoveObject:       {name: "move-object", movesData: true, distance: 3},
	OpMoveObjectFrom16: {name: "move-object/from16", movesData: true, distance: 2},
	OpMoveResult:       {name: "move-result", movesData: true, distance: 2},
	OpMoveResultObject: {name: "move-result-object", movesData: true, distance: 2},
	OpReturnVoid:       {name: "return-void"},
	OpReturn:           {name: "return", movesData: true, distance: 1},
	OpReturnObject:     {name: "return-object", movesData: true, distance: 1},
	OpConst4:           {name: "const/4"},
	OpConst16:          {name: "const/16"},
	OpConst:            {name: "const"},
	OpConstString:      {name: "const-string"},
	OpGoto:             {name: "goto"},
	OpIfEq:             {name: "if-eq"},
	OpIfNe:             {name: "if-ne"},
	OpIfLt:             {name: "if-lt"},
	OpIfGe:             {name: "if-ge"},
	OpIfGt:             {name: "if-gt"},
	OpIfLe:             {name: "if-le"},
	OpIfEqz:            {name: "if-eqz"},
	OpIfNez:            {name: "if-nez"},
	OpIfLtz:            {name: "if-ltz"},
	OpIfGez:            {name: "if-gez"},
	OpIfGtz:            {name: "if-gtz"},
	OpIfLez:            {name: "if-lez"},
	OpPackedSwitch:     {name: "packed-switch"},
	OpAddInt:           {name: "add-int", movesData: true, distance: 5},
	OpSubInt:           {name: "sub-int", movesData: true, distance: 5},
	OpMulInt:           {name: "mul-int", movesData: true, distance: 5},
	OpAndInt:           {name: "and-int", movesData: true, distance: 5},
	OpOrInt:            {name: "or-int", movesData: true, distance: 5},
	OpXorInt:           {name: "xor-int", movesData: true, distance: 5},
	OpShlInt:           {name: "shl-int", movesData: true, distance: 5},
	OpShrInt:           {name: "shr-int", movesData: true, distance: 5},
	OpAddInt2Addr:      {name: "add-int/2addr", movesData: true, distance: 5},
	OpSubInt2Addr:      {name: "sub-int/2addr", movesData: true, distance: 5},
	OpMulInt2Addr:      {name: "mul-int/2addr", movesData: true, distance: 5},
	OpAndInt2Addr:      {name: "and-int/2addr", movesData: true, distance: 5},
	OpOrInt2Addr:       {name: "or-int/2addr", movesData: true, distance: 5},
	OpXorInt2Addr:      {name: "xor-int/2addr", movesData: true, distance: 5},
	OpShlInt2Addr:      {name: "shl-int/2addr", movesData: true, distance: 5},
	OpShrInt2Addr:      {name: "shr-int/2addr", movesData: true, distance: 5},
	OpAddIntLit8:       {name: "add-int/lit8", movesData: true, distance: 5},
	OpMulIntLit8:       {name: "mul-int/lit8", movesData: true, distance: 5},
	OpAndIntLit8:       {name: "and-int/lit8", movesData: true, distance: 5},
	OpRsubIntLit8:      {name: "rsub-int/lit8", movesData: true, distance: 5},
	OpXorIntLit8:       {name: "xor-int/lit8", movesData: true, distance: 5},
	OpDivInt:           {name: "div-int", movesData: true, distance: -1},
	OpRemInt:           {name: "rem-int", movesData: true, distance: -1},
	OpDivIntLit8:       {name: "div-int/lit8", movesData: true, distance: -1},
	OpRemIntLit8:       {name: "rem-int/lit8", movesData: true, distance: -1},
	OpNegInt:           {name: "neg-int", movesData: true, distance: 4},
	OpNotInt:           {name: "not-int", movesData: true, distance: 4},
	OpIntToChar:        {name: "int-to-char", movesData: true, distance: 6},
	OpIntToByte:        {name: "int-to-byte", movesData: true, distance: 6},
	OpNewArray:         {name: "new-array"},
	OpArrayLength:      {name: "array-length", movesData: true, distance: 3},
	OpAget:             {name: "aget", movesData: true, distance: 2},
	OpAput:             {name: "aput", movesData: true, distance: 2},
	OpAgetChar:         {name: "aget-char", movesData: true, distance: 2},
	OpAputChar:         {name: "aput-char", movesData: true, distance: 2},
	OpAgetObject:       {name: "aget-object", movesData: true, distance: 2},
	OpAputObject:       {name: "aput-object", movesData: true, distance: 10},
	OpIget:             {name: "iget", movesData: true, distance: 5},
	OpIput:             {name: "iput", movesData: true, distance: 4},
	OpIgetObject:       {name: "iget-object", movesData: true, distance: 5},
	OpIputObject:       {name: "iput-object", movesData: true, distance: 5},
	OpSget:             {name: "sget", movesData: true, distance: 3},
	OpSput:             {name: "sput", movesData: true, distance: 2},
	OpSgetObject:       {name: "sget-object", movesData: true, distance: 3},
	OpSputObject:       {name: "sput-object", movesData: true, distance: 2},
	OpNewInstance:      {name: "new-instance"},
	OpCheckCast:        {name: "check-cast"},
	OpInvokeVirtual:    {name: "invoke-virtual"},
	OpInvokeStatic:     {name: "invoke-static"},
	OpInvokeDirect:     {name: "invoke-direct"},
	OpInvokeInterface:  {name: "invoke-interface"},
	OpMoveWide:         {name: "move-wide", movesData: true, distance: 3},
	OpMoveWideFrom16:   {name: "move-wide/from16", movesData: true, distance: 2},
	OpMoveResultWide:   {name: "move-result-wide", movesData: true, distance: 2},
	OpReturnWide:       {name: "return-wide", movesData: true, distance: 1},
	OpConstWide16:      {name: "const-wide/16"},
	OpAddLong:          {name: "add-long", movesData: true, distance: 6},
	OpSubLong:          {name: "sub-long", movesData: true, distance: 6},
	OpMulLong:          {name: "mul-long", movesData: true, distance: 9},
	OpShlLong:          {name: "shl-long", movesData: true, distance: 11},
	OpShrLong:          {name: "shr-long", movesData: true, distance: 11},
	OpIntToLong:        {name: "int-to-long", movesData: true, distance: 5},
	OpLongToInt:        {name: "long-to-int", movesData: true, distance: 3},
	OpCmpLong:          {name: "cmp-long", movesData: true, distance: 11},
}

func (o Opcode) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return "op?"
}

// MovesData reports whether the bytecode can move data between memory
// locations (the highlighted bytecodes of Figure 10).
func (o Opcode) MovesData() bool {
	return int(o) < len(opTable) && opTable[o].movesData
}

// TableDistance returns the paper-documented native load–store distance for
// the bytecode: the Table 1 value our translation templates are built to
// reproduce. ok is false for bytecodes with no load→store pair;
// distance -1 means "unknown" (ABI helper call).
func (o Opcode) TableDistance() (distance int, ok bool) {
	if int(o) >= len(opTable) {
		return 0, false
	}
	d := opTable[o].distance
	return d, d != 0
}

// Opcodes returns all defined opcodes in order; analyses iterate this.
func Opcodes() []Opcode {
	out := make([]Opcode, 0, opcodeCount)
	for o := Opcode(0); o < opcodeCount; o++ {
		out = append(out, o)
	}
	return out
}

// IsInvoke reports whether the opcode is a method invocation.
func (o Opcode) IsInvoke() bool {
	switch o {
	case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
		return true
	}
	return false
}

// IsBranch reports whether the opcode transfers control.
func (o Opcode) IsBranch() bool {
	switch o {
	case OpGoto, OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe,
		OpIfEqz, OpIfNez, OpIfLtz, OpIfGez, OpIfGtz, OpIfLez, OpPackedSwitch:
		return true
	}
	return false
}
