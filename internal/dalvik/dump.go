package dalvik

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the program as a dexdump-style listing: classes with field
// offsets, statics with slots, and each method's numbered bytecode with
// label annotations.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (entry %s)\n", p.Name, p.Entry)

	if len(p.Classes) > 0 {
		var names []string
		for n := range p.Classes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			cls := p.Classes[n]
			fmt.Fprintf(&b, "  class %s", n)
			for i, f := range cls.Fields {
				fmt.Fprintf(&b, " %s@%d", f, 4*i)
			}
			b.WriteString("\n")
		}
	}
	for i, s := range p.Statics {
		fmt.Fprintf(&b, "  static %s -> slot %d (0x%08x)\n", s, i, StaticAddr(i))
	}

	for _, name := range p.MethodNames() {
		m := p.Methods[name]
		fmt.Fprintf(&b, "  method %s (registers=%d, in=%d)\n",
			name, m.Registers, m.InArgs)
		// Invert the label map for annotation.
		labels := map[int][]string{}
		for l, idx := range m.Labels {
			labels[idx] = append(labels[idx], l)
		}
		for idx := range labels {
			sort.Strings(labels[idx])
		}
		for i, in := range m.Insns {
			for _, l := range labels[i] {
				fmt.Fprintf(&b, "    :%s\n", l)
			}
			fmt.Fprintf(&b, "    %04d  %v\n", i, in)
		}
	}
	return b.String()
}

// Stats summarizes a program's static structure.
type ProgramStats struct {
	Methods      int
	Instructions int
	DataMovers   int // instructions whose opcode can move data (Figure 10)
	Invokes      int
	Branches     int
}

// Stats computes the static summary.
func (p *Program) Stats() ProgramStats {
	var s ProgramStats
	for _, name := range p.MethodNames() {
		s.Methods++
		for _, in := range p.Methods[name].Insns {
			s.Instructions++
			if in.Op.MovesData() {
				s.DataMovers++
			}
			if in.Op.IsInvoke() {
				s.Invokes++
			}
			if in.Op.IsBranch() {
				s.Branches++
			}
		}
	}
	return s
}
