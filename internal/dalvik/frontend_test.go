package dalvik

import (
	"strings"
	"testing"

	"repro/internal/arm"
	"repro/internal/frontend"
	"repro/internal/mem"
)

// TestFrontendDescriptor exercises the frontend.Frontend/Program/Image
// surface the harness and the CLIs consume: the live template
// measurements and the interface adapters over the translator.
func TestFrontendDescriptor(t *testing.T) {
	if got := (Front{}).Name(); got != "dalvik" {
		t.Fatalf("front end name %q, want dalvik", got)
	}
	infos, err := Front{}.Templates()
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]frontend.TemplateInfo{}
	for _, info := range infos {
		byOp[info.Op] = info
	}
	mv, ok := byOp["move"]
	if !ok || !mv.HasDistance || mv.Distance != 3 {
		t.Errorf("move template: %+v, want distance 3", mv)
	}
	if div, ok := byOp["div-int"]; !ok || !div.HelperCall || div.HasDistance {
		t.Errorf("div-int template: %+v, want opaque helper call", byOp["div-int"])
	}
	if ret, ok := byOp["return"]; !ok || !ret.HasDistance || ret.Distance != 1 {
		t.Errorf("return template: %+v, want distance 1", byOp["return"])
	}

	var prog frontend.Program = buildAllOps(t)
	if prog.ProgramName() != "allops" {
		t.Errorf("ProgramName %q", prog.ProgramName())
	}
	if prog.Instructions() == 0 {
		t.Error("Instructions() = 0")
	}
	counts := prog.OpCounts()
	if counts["move"] == 0 {
		t.Errorf("OpCounts lacks move: %v", counts)
	}
	if !strings.Contains(prog.Dump(), "move") {
		t.Error("Dump lacks the move mnemonic")
	}

	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	img, err := prog.Translate(asm, rt, frontend.ModeInterp)
	if err != nil {
		t.Fatal(err)
	}
	if img.EntryLabel() == "" {
		t.Error("empty entry label")
	}
	m := mem.NewMemory()
	img.Materialize(m)
	if m.Load16(frontend.BytecodeBase) == 0 {
		t.Error("Materialize wrote no bytecode at BytecodeBase")
	}

	asm2 := arm.NewAssembler(CodeBase)
	img2, err := frontend.Translate(prog, asm2, newStubRuntime(asm2))
	if err != nil {
		t.Fatal(err)
	}
	if img2.EntryLabel() != img.EntryLabel() {
		t.Errorf("frontend.Translate entry %q vs %q", img2.EntryLabel(), img.EntryLabel())
	}
}
