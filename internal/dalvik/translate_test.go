package dalvik

import (
	"fmt"
	"testing"

	"repro/internal/arm"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// stubRuntime satisfies Runtime without a real heap: interned strings get
// fake addresses and every requested extern resolves to a shared stub.
type stubRuntime struct {
	asm  *arm.Assembler
	next mem.Addr
	pool map[string]mem.Addr
}

func newStubRuntime(asm *arm.Assembler) *stubRuntime {
	rt := &stubRuntime{asm: asm, next: HeapBase, pool: map[string]mem.Addr{}}
	asm.Label("stub$extern")
	asm.Emit(arm.BxLR())
	return rt
}

func (rt *stubRuntime) InternString(s string) mem.Addr {
	if a, ok := rt.pool[s]; ok {
		return a
	}
	a := rt.next
	rt.next += 0x100
	rt.pool[s] = a
	return a
}

func (rt *stubRuntime) ExternEntry(string) (string, bool) { return "stub$extern", true }

// buildAllOps constructs one instance of every opcode that has a defined
// Table 1 distance, plus supporting context.
func buildAllOps(t *testing.T) *Program {
	t.Helper()
	b := NewProgram("allops")
	b.Class("C", "f")
	b.Statics("s")
	b.Method("Callee.m", 4, 1).Return(0)
	m := b.Method("Main.main", 6, 0)
	m.Move(0, 1)
	m.MoveFrom16(0, 1)
	m.Move16(0, 1)
	m.MoveObject(0, 1)
	m.MoveObjectFrom16(0, 1)
	m.InvokeStatic("Callee.m", 1)
	m.MoveResult(0)
	m.InvokeStatic("Callee.m", 1)
	m.MoveResultObject(0)
	m.Const4(0, 1)
	m.Const16(0, 100)
	m.Const(0, 1000)
	m.ConstString(0, "hi")
	for _, op := range []Opcode{OpAddInt, OpSubInt, OpMulInt, OpAndInt, OpOrInt, OpXorInt, OpShlInt, OpShrInt} {
		m.Binop(op, 0, 1, 2)
	}
	for _, op := range []Opcode{OpAddInt2Addr, OpSubInt2Addr, OpMulInt2Addr, OpAndInt2Addr, OpOrInt2Addr, OpXorInt2Addr, OpShlInt2Addr, OpShrInt2Addr} {
		m.Binop2Addr(op, 0, 1)
	}
	for _, op := range []Opcode{OpAddIntLit8, OpMulIntLit8, OpAndIntLit8, OpRsubIntLit8, OpXorIntLit8} {
		m.BinopLit8(op, 0, 1, 3)
	}
	m.BinopLit8(OpDivIntLit8, 0, 1, 3)
	m.BinopLit8(OpRemIntLit8, 0, 1, 3)
	m.Binop(OpDivInt, 0, 1, 2)
	m.Binop(OpRemInt, 0, 1, 2)
	m.NegInt(0, 1)
	m.add(Insn{Op: OpNotInt, A: 0, B: 1})
	m.IntToChar(0, 1)
	m.add(Insn{Op: OpIntToByte, A: 0, B: 1})
	m.ArrayLength(0, 1)
	m.Aget(0, 1, 2)
	m.Aput(0, 1, 2)
	m.AgetChar(0, 1, 2)
	m.AputChar(0, 1, 2)
	m.AgetObject(0, 1, 2)
	m.AputObject(0, 1, 2)
	m.Iget(0, 1, "C.f")
	m.Iput(0, 1, "C.f")
	m.IgetObject(0, 1, "C.f")
	m.IputObject(0, 1, "C.f")
	m.Sget(0, "s")
	m.Sput(0, "s")
	m.SgetObject(0, "s")
	m.SputObject(0, "s")
	m.Return(0)
	ro := b.Method("Main.obj", 4, 0)
	ro.Const4(0, 0)
	ro.ReturnObject(0)
	b.Entry("Main.main")
	prog, err := b.Build(map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestTemplateDistancesMatchTable1 verifies that every translation template
// produces exactly the within-bytecode native load→store distance the
// paper's Table 1 documents.
func TestTemplateDistancesMatchTable1(t *testing.T) {
	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	tr, err := Translate(buildAllOps(t), asm, rt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Finish(); err != nil {
		t.Fatal(err)
	}
	seen := map[Opcode]bool{}
	for _, meta := range tr.Meta {
		want, hasTable := meta.Op.TableDistance()
		if !hasTable || seen[meta.Op] {
			continue
		}
		seen[meta.Op] = true
		if want == -1 {
			// "Unknown": the template must route through a helper.
			if _, measurable := meta.Distance(); measurable {
				t.Errorf("%v: distance should be unknown (helper call)", meta.Op)
			}
			continue
		}
		got, ok := meta.Distance()
		if !ok {
			t.Errorf("%v: no measurable load→store pair, want distance %d", meta.Op, want)
			continue
		}
		if got != want {
			t.Errorf("%v: template distance %d, want %d (Table 1)", meta.Op, got, want)
		}
	}
	// Every non-wide opcode with a table entry must have been exercised
	// (the wide family has its own coverage test in wide_test.go).
	for _, op := range Opcodes() {
		if _, ok := op.TableDistance(); ok && !seen[op] && !isWide(op) {
			t.Errorf("opcode %v not covered by the all-ops program", op)
		}
	}
}

func TestReturnTemplateDistance(t *testing.T) {
	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	tr, err := Translate(buildAllOps(t), asm, rt)
	if err != nil {
		t.Fatal(err)
	}
	for _, meta := range tr.Meta {
		if meta.Op != OpReturn {
			continue
		}
		if d, ok := meta.Distance(); !ok || d != 1 {
			t.Fatalf("return distance = %d (ok=%v), want 1", d, ok)
		}
		return
	}
	t.Fatal("no return instruction found")
}

func TestBuildValidation(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := NewProgram("p")
		b.Method("M.m", 2, 0).Goto("nowhere")
		b.Entry("M.m")
		if _, err := b.Build(nil); err == nil {
			t.Error("expected error for undefined label")
		}
	})
	t.Run("register out of range", func(t *testing.T) {
		b := NewProgram("p")
		b.Method("M.m", 2, 0).Const4(5, 0).ReturnVoid()
		b.Entry("M.m")
		if _, err := b.Build(nil); err == nil {
			t.Error("expected error for out-of-range register")
		}
	})
	t.Run("missing return", func(t *testing.T) {
		b := NewProgram("p")
		b.Method("M.m", 2, 0).Const4(0, 0)
		b.Entry("M.m")
		if _, err := b.Build(nil); err == nil {
			t.Error("expected error for missing return")
		}
	})
	t.Run("unresolved method", func(t *testing.T) {
		b := NewProgram("p")
		b.Method("M.m", 2, 0).InvokeStatic("No.such").ReturnVoid()
		b.Entry("M.m")
		if _, err := b.Build(map[string]bool{}); err == nil {
			t.Error("expected error for unresolved method")
		}
	})
	t.Run("extern resolves", func(t *testing.T) {
		b := NewProgram("p")
		b.Method("M.m", 2, 0).InvokeStatic("Ext.fn").ReturnVoid()
		b.Entry("M.m")
		if _, err := b.Build(map[string]bool{"Ext.fn": true}); err != nil {
			t.Errorf("extern method rejected: %v", err)
		}
	})
	t.Run("no entry", func(t *testing.T) {
		b := NewProgram("p")
		b.Method("M.m", 2, 0).ReturnVoid()
		if _, err := b.Build(nil); err == nil {
			t.Error("expected error for missing entry")
		}
	})
}

// runProgram translates and executes a program on a bare machine with the
// stub runtime (no heap intrinsics needed).
func runProgram(t *testing.T, prog *Program) *cpu.Machine {
	t.Helper()
	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	tr, err := Translate(prog, asm, rt)
	if err != nil {
		t.Fatal(err)
	}
	code, err := asm.Finish()
	if err != nil {
		t.Fatal(err)
	}
	machine := cpu.NewMachine()
	tr.Materialize(machine.Mem)
	entry, _ := asm.LabelAddr(tr.EntryLabel)
	proc := cpu.NewProc(1, &cpu.Image{Base: CodeBase, Code: code}, entry)
	if _, err := machine.Run(proc, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return machine
}

func static0(m *cpu.Machine) uint32 { return m.Mem.Load32(StaticAddr(0)) }

func TestExecArithmeticLoop(t *testing.T) {
	// Iterative Fibonacci(10) = 55, via a loop with compares.
	b := NewProgram("fib")
	b.Statics("out")
	m := b.Method("Main.main", 8, 0)
	m.Const4(0, 0)  // a
	m.Const4(1, 1)  // b
	m.Const4(2, 10) // n
	m.Label("loop")
	m.IfLez(2, "done")
	m.Move(3, 1)
	m.Binop(OpAddInt, 1, 0, 1)
	m.Move(0, 3)
	m.AddIntLit8(2, 2, -1)
	m.Goto("loop")
	m.Label("done")
	m.Sput(0, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := static0(runProgram(t, prog)); got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestExecRecursion(t *testing.T) {
	// Recursive factorial(6) = 720 exercises frame push/pop, argument
	// copying through memory, and retval plumbing.
	b := NewProgram("fact")
	b.Statics("out")
	f := b.Method("Main.fact", 6, 1) // arg in v5
	f.Const4(0, 1)
	f.If(OpIfLe, 5, 0, "base") // n <= 1
	f.AddIntLit8(1, 5, -1)
	f.InvokeStatic("Main.fact", 1)
	f.MoveResult(2)
	f.Binop(OpMulInt, 0, 5, 2)
	f.Return(0)
	f.Label("base")
	f.Const4(0, 1)
	f.Return(0)
	m := b.Method("Main.main", 4, 0)
	m.Const4(0, 6)
	m.InvokeStatic("Main.fact", 0)
	m.MoveResult(1)
	m.Sput(1, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := static0(runProgram(t, prog)); got != 720 {
		t.Fatalf("fact(6) = %d, want 720", got)
	}
}

func TestExecPackedSwitch(t *testing.T) {
	b := NewProgram("switch")
	b.Statics("out")
	m := b.Method("Main.main", 4, 0)
	m.Const4(0, 2)
	m.PackedSwitch(0,
		SwitchCase{Value: 0, Target: "zero"},
		SwitchCase{Value: 1, Target: "one"},
		SwitchCase{Value: 2, Target: "two"},
	)
	m.Const16(1, 99) // default
	m.Goto("store")
	m.Label("zero")
	m.Const16(1, 100)
	m.Goto("store")
	m.Label("one")
	m.Const16(1, 101)
	m.Goto("store")
	m.Label("two")
	m.Const16(1, 102)
	m.Goto("store")
	m.Label("store")
	m.Sput(1, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := static0(runProgram(t, prog)); got != 102 {
		t.Fatalf("switch picked %d, want 102", got)
	}
}

func TestExecDivisionHelpers(t *testing.T) {
	// div/rem route through the shift-subtract ABI helpers; the stub
	// runtime routes them to a no-op, so use a real division program via
	// the literal ops only when the helper exists. Here we check the
	// translator wires the call and marks the distance unknown.
	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	b := NewProgram("div")
	b.Statics("out")
	m := b.Method("Main.main", 4, 0)
	m.Const16(0, 100)
	m.DivIntLit8(1, 0, 7)
	m.Sput(1, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(prog, asm, rt)
	if err != nil {
		t.Fatal(err)
	}
	for _, meta := range tr.Meta {
		if meta.Op == OpDivIntLit8 {
			if !meta.HelperCall {
				t.Error("div-int/lit8 must be marked as a helper call")
			}
			if _, ok := meta.Distance(); ok {
				t.Error("div-int/lit8 distance must be unknown")
			}
			return
		}
	}
	t.Fatal("div-int/lit8 not translated")
}

func TestExecConditionals(t *testing.T) {
	for _, tc := range []struct {
		op   Opcode
		a, b int32
		want uint32 // 1 if branch taken
	}{
		{OpIfEq, 5, 5, 1}, {OpIfEq, 5, 6, 0},
		{OpIfNe, 5, 6, 1}, {OpIfNe, 5, 5, 0},
		{OpIfLt, -1, 0, 1}, {OpIfLt, 0, 0, 0},
		{OpIfGe, 0, 0, 1}, {OpIfGe, -1, 0, 0},
		{OpIfGt, 1, 0, 1}, {OpIfGt, 0, 0, 0},
		{OpIfLe, 0, 0, 1}, {OpIfLe, 1, 0, 0},
	} {
		b := NewProgram("cond")
		b.Statics("out")
		m := b.Method("Main.main", 4, 0)
		m.Const(0, tc.a)
		m.Const(1, tc.b)
		m.If(tc.op, 0, 1, "taken")
		m.Const4(2, 0)
		m.Goto("store")
		m.Label("taken")
		m.Const4(2, 1)
		m.Goto("store")
		m.Label("store")
		m.Sput(2, "out")
		m.ReturnVoid()
		b.Entry("Main.main")
		prog, err := b.Build(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := static0(runProgram(t, prog)); got != tc.want {
			t.Errorf("%v %d,%d: taken=%d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestExecBitOps(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int32
		want uint32
	}{
		{OpAddInt, 40, 2, 42},
		{OpSubInt, 50, 8, 42},
		{OpMulInt, 6, 7, 42},
		{OpAndInt, 0xff, 0x2a, 42},
		{OpOrInt, 0x28, 0x02, 42},
		{OpXorInt, 0x6a, 0x40, 42},
		{OpShlInt, 21, 1, 42},
		{OpShrInt, 84, 1, 42},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.op), func(t *testing.T) {
			b := NewProgram("bits")
			b.Statics("out")
			m := b.Method("Main.main", 4, 0)
			m.Const(0, tc.a)
			m.Const(1, tc.b)
			m.Binop(tc.op, 2, 0, 1)
			m.Sput(2, "out")
			m.ReturnVoid()
			b.Entry("Main.main")
			prog, err := b.Build(nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := static0(runProgram(t, prog)); got != tc.want {
				t.Fatalf("got %d, want %d", got, tc.want)
			}
		})
	}
}

func TestExec2AddrNonCommutative(t *testing.T) {
	b := NewProgram("sub2")
	b.Statics("out")
	m := b.Method("Main.main", 4, 0)
	m.Const(0, 50)
	m.Const(1, 8)
	m.Binop2Addr(OpSubInt2Addr, 0, 1) // v0 = v0 - v1
	m.Sput(0, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := static0(runProgram(t, prog)); got != 42 {
		t.Fatalf("sub/2addr = %d, want 42", got)
	}
}

func TestExecFieldsAndStatics(t *testing.T) {
	// new-instance requires the alloc extern; the stub routine returns
	// r0 unchanged, so preload v0 with a writable heap address instead:
	// use statics as a poor man's object. Simpler: exercise statics only.
	b := NewProgram("statics")
	b.Statics("a", "b")
	m := b.Method("Main.main", 4, 0)
	m.Const(0, 7)
	m.Sput(0, "a")
	m.Sget(1, "a")
	m.AddIntLit8(1, 1, 35)
	m.Sput(1, "b")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	machine := runProgram(t, prog)
	if got := machine.Mem.Load32(StaticAddr(1)); got != 42 {
		t.Fatalf("static b = %d, want 42", got)
	}
}

func TestBytecodeFetchLoadsAppearInStream(t *testing.T) {
	// The interpreter's FETCH_ADVANCE loads from the bytecode region must
	// show up as front-end load events — they shape Figure 2's
	// distributions on the real platform.
	b := NewProgram("fetch")
	b.Statics("out")
	m := b.Method("Main.main", 4, 0)
	m.Const4(0, 1)
	m.Const4(1, 2)
	m.Binop(OpAddInt, 2, 0, 1)
	m.Sput(2, "out")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}

	asm := arm.NewAssembler(CodeBase)
	rt := newStubRuntime(asm)
	tr, err := Translate(prog, asm, rt)
	if err != nil {
		t.Fatal(err)
	}
	code, err := asm.Finish()
	if err != nil {
		t.Fatal(err)
	}
	machine := cpu.NewMachine()
	log := &eventCollector{}
	machine.AttachSink(log)
	tr.Materialize(machine.Mem)
	entry, _ := asm.LabelAddr(tr.EntryLabel)
	proc := cpu.NewProc(1, &cpu.Image{Base: CodeBase, Code: code}, entry)
	if _, err := machine.Run(proc, 100000); err != nil {
		t.Fatal(err)
	}
	fetches := 0
	for _, ev := range log.events {
		if ev.Kind == cpu.EvLoad && ev.Range.Start >= BytecodeBase && ev.Range.Start < CodeBase {
			fetches++
		}
	}
	if fetches < len(prog.Methods["Main.main"].Insns)-1 {
		t.Fatalf("only %d bytecode fetch loads observed", fetches)
	}
}

type eventCollector struct{ events []cpu.Event }

func (c *eventCollector) Event(ev cpu.Event) { c.events = append(c.events, ev) }
