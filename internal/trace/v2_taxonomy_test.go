package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// taxonomyTraceV2 serializes a small multi-block v2 trace (blockEvents=8,
// so block structure shows up in a few hundred bytes) for mutation.
func taxonomyTraceV2(t *testing.T, n int) ([]byte, *Recorder) {
	t.Helper()
	rec := NewRecorder(n)
	for i := 0; i < n; i++ {
		rec.Event(cpu.Event{
			Kind:  cpu.EventKind(i % 4),
			PID:   uint32(1 + i/8),
			Seq:   uint64(i * 2),
			Range: mem.Range{Start: uint32(64 + i*4), End: uint32(64 + i*4 + 4)},
			Tag:   i % 3,
		})
	}
	var buf bytes.Buffer
	bw := NewBlockWriter(&buf, uint64(n), 8)
	for _, ev := range rec.Events {
		if err := bw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rec
}

// isSentinel reports whether err carries exactly one of the four typed
// sentinels the ingestion layer keys its HTTP status mapping on.
func isSentinel(err error) bool {
	n := 0
	for _, s := range []error{ErrTruncated, ErrCorrupt, ErrBadMagic, ErrTooLarge} {
		if errors.Is(err, s) {
			n++
		}
	}
	return n == 1
}

// TestV2TruncationSweep cuts a valid v2 trace at every byte boundary:
// each cut must fail as ErrTruncated ∧ io.ErrUnexpectedEOF, never a bare
// io.EOF, and the events delivered before the failure must be a prefix
// of the original stream.
func TestV2TruncationSweep(t *testing.T) {
	full, rec := taxonomyTraceV2(t, 30)
	for cut := 0; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			if !errors.Is(err, ErrTruncated) || !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: header err = %v, want ErrTruncated ∧ ErrUnexpectedEOF", cut, err)
			}
			continue
		}
		got, err := drainBatch(r, 5)
		if err == nil {
			t.Fatalf("cut %d: drain succeeded on truncated trace", cut)
		}
		if !errors.Is(err, ErrTruncated) || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated ∧ ErrUnexpectedEOF", cut, err)
		}
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTooLarge) {
			t.Fatalf("cut %d: truncation misclassified: %v", cut, err)
		}
		for i := range got {
			if got[i] != rec.Events[i] {
				t.Fatalf("cut %d: delivered event %d differs from the original", cut, i)
			}
		}
	}
}

// TestV2CorruptionSweep flips every byte of a valid v2 trace, one at a
// time: each flip must be caught — by the magic check, the header sanity
// bounds, the block chain validation, or the payload CRC — and must
// classify into exactly one taxonomy sentinel. Nothing may decode
// successfully and nothing may read as a clean end.
func TestV2CorruptionSweep(t *testing.T) {
	full, _ := taxonomyTraceV2(t, 30)
	for off := 0; off < len(full); off++ {
		bad := append([]byte(nil), full...)
		bad[off] ^= 0x80
		r, err := NewReader(bytes.NewReader(bad))
		if err == nil {
			_, err = drainBatch(r, 7)
		}
		if err == nil {
			t.Fatalf("flip at %d: corrupted trace decoded cleanly", off)
		}
		if !isSentinel(err) {
			t.Fatalf("flip at %d: err = %v, want exactly one taxonomy sentinel", off, err)
		}
	}
}

// reCRC rewrites block 0's clen and CRC after its payload was mutated,
// producing a stream that is checksum-clean but structurally wrong —
// the class of damage only the decoder's validation can catch.
func reCRC(raw []byte, payload []byte) []byte {
	out := append([]byte(nil), raw[:HeaderSize+blockHeaderSize]...)
	binary.LittleEndian.PutUint32(out[HeaderSize+12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[HeaderSize+16:], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// TestV2ErrorTaxonomy is the targeted classification matrix: each damage
// class must map onto the sentinel classifyIngest keys 400/422/413 on.
func TestV2ErrorTaxonomy(t *testing.T) {
	// A single-block stream whose payload layout is pinned by
	// TestV2GoldenBytes; payload spans [36, 36+35).
	rec := NewRecorder(6)
	rec.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 7, Seq: 100, Range: mem.Range{Start: 4096, End: 4100}, Tag: 1})
	rec.Event(cpu.Event{Kind: cpu.EvLoad, PID: 7, Seq: 101, Range: mem.Range{Start: 4096, End: 4100}})
	rec.Event(cpu.Event{Kind: cpu.EvStore, PID: 7, Seq: 103, Range: mem.Range{Start: 4104, End: 4112}})
	rec.Event(cpu.Event{Kind: cpu.EvLoad, PID: 9, Seq: 50, Range: mem.Range{Start: 4104, End: 4112}})
	rec.Event(cpu.Event{Kind: cpu.EvSinkCheck, PID: 9, Seq: 52, Range: mem.Range{Start: 4104, End: 4108}, Tag: -3})
	rec.Event(cpu.Event{Kind: cpu.EvStore, PID: 7, Seq: 104, Range: mem.Range{Start: 4096, End: 4100}})
	var buf bytes.Buffer
	if _, err := rec.WriteToFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	payload := func() []byte {
		return append([]byte(nil), raw[HeaderSize+blockHeaderSize:]...)
	}

	t.Run("clean", func(t *testing.T) {
		if err := drain(raw); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[7] = '3' // "PIFTTRC3"
		if err := drain(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
		if _, err := LoadIndex(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("LoadIndex err = %v, want ErrBadMagic", err)
		}
	})

	t.Run("too-large-count", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint64(bad[8:], 1<<40)
		if err := drain(bad); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
		if _, err := LoadIndex(bytes.NewReader(bad)); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("LoadIndex err = %v, want ErrTooLarge", err)
		}
	})

	t.Run("too-large-block", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(bad[HeaderSize+12:], maxBlockBytes+1)
		if err := drain(bad); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
		if _, err := LoadIndex(bytes.NewReader(bad)); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("LoadIndex err = %v, want ErrTooLarge", err)
		}
	})

	t.Run("corrupt-crc", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[HeaderSize+16] ^= 0xff
		err := drain(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		if errors.Is(err, ErrTruncated) || errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("corruption misclassified as truncation: %v", err)
		}
	})

	t.Run("corrupt-block-chain", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint64(bad[HeaderSize:], 3) // first ≠ 0
		if err := drain(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		if _, err := LoadIndex(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("LoadIndex err = %v, want ErrCorrupt", err)
		}
	})

	// CRC-clean structural damage: the checksum is recomputed over the
	// mutated payload, so only the decoder's own validation stands.
	t.Run("corrupt-dict-size", func(t *testing.T) {
		p := payload()
		p[0] = 0 // empty PID dictionary in a 6-event block
		if err := drain(reCRC(raw, p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("corrupt-dict-index", func(t *testing.T) {
		p := payload()
		p[3] = 0x75 // first run's dictionary index, far out of range
		if err := drain(reCRC(raw, p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("corrupt-run-overflow", func(t *testing.T) {
		p := payload()
		p[4] = 0x40 // first run claims 64 events in a 6-event block
		if err := drain(reCRC(raw, p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("corrupt-trailing-bytes", func(t *testing.T) {
		p := append(payload(), 0x00)
		if err := drain(reCRC(raw, p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("corrupt-short-columns", func(t *testing.T) {
		p := payload()
		p = p[:len(p)-2]
		if err := drain(reCRC(raw, p)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("batch-parity", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[HeaderSize+16] ^= 0xff
		r, err := NewReader(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		if _, berr := r.NextBatch(make([]cpu.Event, 64)); !errors.Is(berr, ErrCorrupt) {
			t.Fatalf("NextBatch corrupt err = %v, want ErrCorrupt", berr)
		}
		r2, err := NewReader(bytes.NewReader(raw[:len(raw)-1]))
		if err != nil {
			t.Fatal(err)
		}
		if _, berr := r2.NextBatch(make([]cpu.Event, 64)); !errors.Is(berr, ErrTruncated) {
			t.Fatalf("NextBatch truncation err = %v, want ErrTruncated", berr)
		}
	})

	t.Run("skip-into-cut", func(t *testing.T) {
		multi, _ := taxonomyTraceV2(t, 30)
		r, err := NewReader(bytes.NewReader(multi[:len(multi)-3]))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Skip(30); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Skip into cut err = %v, want ErrTruncated", err)
		}
	})

	t.Run("index-truncated", func(t *testing.T) {
		// The index walk reads only block headers, so the cut must land
		// inside one (payload truncation is the decoder's to catch).
		multi, _ := taxonomyTraceV2(t, 30)
		idx, err := LoadIndex(bytes.NewReader(multi))
		if err != nil {
			t.Fatal(err)
		}
		cut := idx.blocks[len(idx.blocks)-1].off + 5
		if _, err := LoadIndex(bytes.NewReader(multi[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("LoadIndex err = %v, want ErrTruncated", err)
		}
	})
}
