package trace

import (
	"bufio"
	"encoding/binary"
	"io"

	"repro/internal/cpu"
)

// Binary trace format — the stand-in for the gem5 trace files the paper's
// authors fed to "the PIFT analysis code". Layout (little-endian):
//
//	magic   [8]byte  "PIFTTRC1"
//	count   uint64
//	events  count × { kind u8, pid u32, seq u64, start u32, end u32, tag i32 }
//
// Traces round-trip exactly; ReadFrom validates the magic and bounds.

var traceMagic = [8]byte{'P', 'I', 'F', 'T', 'T', 'R', 'C', '1'}

// eventWireSize is the per-event record size.
const eventWireSize = 1 + 4 + 8 + 4 + 4 + 4

// HeaderSize and EventSize expose the wire layout for offset arithmetic:
// event i of a serialized trace begins at byte HeaderSize + i*EventSize.
// Checkpoint/resume tooling and fault injectors use these to map an event
// index to a byte position without decoding.
const (
	HeaderSize = 8 + 8 // magic + declared count
	EventSize  = eventWireSize
)

// WriteTo serializes the recorded trace. It implements io.WriterTo.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return written, err
	}
	written += 8
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(r.Events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 8
	var rec [eventWireSize]byte
	for _, ev := range r.Events {
		putEventV1(rec[:], ev)
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written += eventWireSize
	}
	return written, bw.Flush()
}

// putEventV1 encodes one fixed-stride PIFTTRC1 record into rec, which
// must be at least eventWireSize bytes.
func putEventV1(rec []byte, ev cpu.Event) {
	rec[0] = byte(ev.Kind)
	binary.LittleEndian.PutUint32(rec[1:], ev.PID)
	binary.LittleEndian.PutUint64(rec[5:], ev.Seq)
	binary.LittleEndian.PutUint32(rec[13:], ev.Range.Start)
	binary.LittleEndian.PutUint32(rec[17:], ev.Range.End)
	binary.LittleEndian.PutUint32(rec[21:], uint32(int32(ev.Tag)))
}

// ReadFrom deserializes a trace written by WriteTo, materializing the full
// event slice. It is a thin wrapper over the streaming Reader; pipelines
// that should not hold whole traces in memory use NewReader directly.
func ReadFrom(r io.Reader) (*Recorder, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := NewRecorder(int(sr.Len()))
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Events = append(out.Events, ev)
	}
}
