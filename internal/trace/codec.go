package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Binary trace format — the stand-in for the gem5 trace files the paper's
// authors fed to "the PIFT analysis code". Layout (little-endian):
//
//	magic   [8]byte  "PIFTTRC1"
//	count   uint64
//	events  count × { kind u8, pid u32, seq u64, start u32, end u32, tag i32 }
//
// Traces round-trip exactly; ReadFrom validates the magic and bounds.

var traceMagic = [8]byte{'P', 'I', 'F', 'T', 'T', 'R', 'C', '1'}

// eventWireSize is the per-event record size.
const eventWireSize = 1 + 4 + 8 + 4 + 4 + 4

// WriteTo serializes the recorded trace. It implements io.WriterTo.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return written, err
	}
	written += 8
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(r.Events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 8
	var rec [eventWireSize]byte
	for _, ev := range r.Events {
		rec[0] = byte(ev.Kind)
		binary.LittleEndian.PutUint32(rec[1:], ev.PID)
		binary.LittleEndian.PutUint64(rec[5:], ev.Seq)
		binary.LittleEndian.PutUint32(rec[13:], ev.Range.Start)
		binary.LittleEndian.PutUint32(rec[17:], ev.Range.End)
		binary.LittleEndian.PutUint32(rec[21:], uint32(int32(ev.Tag)))
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written += eventWireSize
	}
	return written, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo.
func ReadFrom(r io.Reader) (*Recorder, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const sanityCap = 1 << 31
	if count > sanityCap {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	out := NewRecorder(int(count))
	var rec [eventWireSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		kind := cpu.EventKind(rec[0])
		if kind > cpu.EvSinkCheck {
			return nil, fmt.Errorf("trace: event %d: unknown kind %d", i, kind)
		}
		start := binary.LittleEndian.Uint32(rec[13:])
		end := binary.LittleEndian.Uint32(rec[17:])
		if end < start {
			return nil, fmt.Errorf("trace: event %d: inverted range", i)
		}
		out.Events = append(out.Events, cpu.Event{
			Kind:  kind,
			PID:   binary.LittleEndian.Uint32(rec[1:]),
			Seq:   binary.LittleEndian.Uint64(rec[5:]),
			Range: mem.Range{Start: start, End: end},
			Tag:   int(int32(binary.LittleEndian.Uint32(rec[21:]))),
		})
	}
	return out, nil
}
