package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func randomTrace(n int, seed int64) *Recorder {
	rng := rand.New(rand.NewSource(seed))
	r := NewRecorder(n)
	seq := uint64(0)
	for i := 0; i < n; i++ {
		seq += uint64(rng.Intn(5) + 1)
		r.Event(cpu.Event{
			Kind:  cpu.EventKind(rng.Intn(4)),
			PID:   uint32(rng.Intn(3) + 1),
			Seq:   seq,
			Range: mem.MakeRange(mem.Addr(rng.Uint32()>>4), uint32(rng.Intn(64)+1)),
			Tag:   rng.Intn(100) - 50,
		})
	}
	return r
}

func TestCodecRoundTrip(t *testing.T) {
	orig := randomTrace(5000, 17)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(orig.Events) {
		t.Fatalf("event count %d, want %d", len(back.Events), len(orig.Events))
	}
	for i := range orig.Events {
		if back.Events[i] != orig.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, back.Events[i], orig.Events[i])
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewRecorder(0).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatal("empty trace gained events")
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOTATRCE\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	orig := randomTrace(10, 3)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 12, buf.Len() - 3} {
		if _, err := ReadFrom(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCodecRejectsCorruptEvent(t *testing.T) {
	orig := randomTrace(3, 5)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[16] = 0xff // kind byte of the first event
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt kind accepted")
	}
}
