package tracegen

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/trace"
)

func TestDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Events: 50_000, PIDs: 16}
	var a, b bytes.Buffer
	if _, err := Generate(spec).WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(spec).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same spec generated different byte streams")
	}
	spec.Seed = 43
	var c bytes.Buffer
	if _, err := Generate(spec).WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds generated identical byte streams")
	}
}

func TestShape(t *testing.T) {
	spec := Spec{Seed: 7, Events: 100_000, PIDs: 32, Quantum: 64}
	rec := Generate(spec)
	if rec.Len() != spec.Events {
		t.Fatalf("generated %d events, want %d", rec.Len(), spec.Events)
	}
	seqs := map[uint32]uint64{}
	kinds := map[cpu.EventKind]int{}
	for i, ev := range rec.Events {
		if ev.PID < 1 || ev.PID > uint32(spec.PIDs) {
			t.Fatalf("event %d: PID %d outside 1..%d", i, ev.PID, spec.PIDs)
		}
		if ev.Seq <= seqs[ev.PID] {
			t.Fatalf("event %d: PID %d Seq %d not increasing (last %d)", i, ev.PID, ev.Seq, seqs[ev.PID])
		}
		seqs[ev.PID] = ev.Seq
		if ev.Range.End < ev.Range.Start {
			t.Fatalf("event %d: inverted range", i)
		}
		kinds[ev.Kind]++
	}
	if len(seqs) != spec.PIDs {
		t.Fatalf("stream uses %d PIDs, want %d", len(seqs), spec.PIDs)
	}
	for _, k := range []cpu.EventKind{cpu.EvLoad, cpu.EvStore, cpu.EvSourceRegister, cpu.EvSinkCheck} {
		if kinds[k] == 0 {
			t.Fatalf("no %v events generated", k)
		}
	}
}

// TestTaintActuallyFlows guards against a generator drift that would turn
// the scaling corpus into a no-op workload: the sequential tracker must
// find tainted sink verdicts in a generated trace, or the benchmark
// would be measuring an idle analyzer.
func TestTaintActuallyFlows(t *testing.T) {
	rec := Generate(Spec{Seed: 1, Events: 200_000, PIDs: 8, SourceEvery: 512, SinkEvery: 256})
	tr := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	rec.Replay(tr)
	tainted := 0
	for _, v := range tr.Verdicts() {
		if v.Tainted {
			tainted++
		}
	}
	if tainted == 0 {
		t.Fatal("no tainted sink verdicts in the synthetic workload")
	}
	t.Logf("%d of %d sink verdicts tainted", tainted, len(tr.Verdicts()))
}

// TestRoundTrip pins the generated stream to the wire codec: serialize,
// re-read, byte-compare the event slices.
func TestRoundTrip(t *testing.T) {
	rec := Generate(Spec{Seed: 99, Events: 10_000, PIDs: 5})
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(rec.Events) {
		t.Fatalf("round-trip length %d, want %d", len(back.Events), len(rec.Events))
	}
	for i := range back.Events {
		if back.Events[i] != rec.Events[i] {
			t.Fatalf("event %d differs after round trip: %+v vs %+v", i, back.Events[i], rec.Events[i])
		}
	}
}
