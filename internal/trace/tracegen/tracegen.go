// Package tracegen generates seeded synthetic PIFTTRC1 workloads at
// pipeline scale. The DroidBench corpus tops out at ~22k events per
// trace — three orders of magnitude too small to amortize per-run costs
// or to expose dispatch bottlenecks — so the scaling experiments and the
// shard-owned ingest tests run on these traces instead: multi-million
// events, many concurrent PIDs, and real taint flow (sources feeding
// load→store chains feeding sinks), all a pure function of the Spec.
//
// Determinism is the load-bearing property: the same Spec yields the
// same byte stream on every run and platform (math/rand's stable
// generator, no time, no global state), so a scaling assertion, a chaos
// schedule, or a CI failure built on a spec reproduces exactly.
package tracegen

import (
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Spec describes one synthetic workload.
type Spec struct {
	// Seed drives every random choice; equal specs generate equal traces.
	Seed int64
	// Events is the total event count (default 1<<20).
	Events int
	// PIDs is the number of concurrent processes interleaved in the
	// stream (default 64). PIDs are 1..PIDs, so every shard of any
	// reasonable worker count sees traffic.
	PIDs int
	// Quantum is the context-switch quantum: how many consecutive events
	// one process emits before the stream switches to the next (default
	// 64, matching the suite workload's interleave).
	Quantum int
	// SourceEvery is the mean distance (in a process's own events)
	// between taint-source registrations (default 4096). Smaller means
	// more live taint.
	SourceEvery int
	// SinkEvery is the mean distance between sink checks (default 512).
	SinkEvery int
}

func (s Spec) withDefaults() Spec {
	if s.Events <= 0 {
		s.Events = 1 << 20
	}
	if s.PIDs <= 0 {
		s.PIDs = 64
	}
	if s.Quantum <= 0 {
		s.Quantum = 64
	}
	if s.SourceEvery <= 0 {
		s.SourceEvery = 4096
	}
	if s.SinkEvery <= 0 {
		s.SinkEvery = 512
	}
	return s
}

// proc is one synthetic process's generator state. Each process walks a
// private address arena: sources taint buffers, loads read recently
// touched (often tainted) addresses, stores copy them forward — the
// load→store locality the PIFT window heuristic keys on — and sinks
// probe the region the stores land in.
type proc struct {
	pid     uint32
	seq     uint64
	base    uint32 // arena base address; arenas are disjoint per process
	cursor  uint32 // rolling store position within the arena
	lastloc uint32 // last loaded/tainted address, biases the next store's source
	sink    int    // per-process sink tag counter
}

const (
	arenaSize = 1 << 16 // bytes of address space per process
	spanMax   = 16      // max bytes per load/store/source/sink access
)

// Generate materializes the workload as a Recorder, ready for WriteTo or
// Replay. Memory is ~32 bytes/event; multi-million-event specs fit
// comfortably, and the pipeline tests serialize the result once and then
// feed every run from the same bytes.
func Generate(spec Spec) *trace.Recorder {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	procs := make([]*proc, spec.PIDs)
	for i := range procs {
		procs[i] = &proc{
			pid:  uint32(i + 1),
			base: uint32(i) * arenaSize,
		}
	}
	rec := trace.NewRecorder(spec.Events)
	emitted := 0
	for turn := 0; emitted < spec.Events; turn++ {
		p := procs[turn%len(procs)]
		q := spec.Quantum
		if left := spec.Events - emitted; q > left {
			q = left
		}
		for i := 0; i < q; i++ {
			rec.Event(p.next(rng, spec))
		}
		emitted += q
	}
	return rec
}

// next emits one event of p's stream, advancing its instruction counter
// the way a real front end would: a couple of non-memory instructions
// between memory operations, so load→store distances cluster inside
// realistic tainting windows.
func (p *proc) next(rng *rand.Rand, spec Spec) cpu.Event {
	p.seq += 1 + uint64(rng.Intn(3))
	span := uint32(1 + rng.Intn(spanMax))
	ev := cpu.Event{PID: p.pid, Seq: p.seq}
	switch {
	case rng.Intn(spec.SourceEvery) == 0:
		// Register a fresh taint source somewhere in the arena.
		start := p.base + uint32(rng.Intn(arenaSize-spanMax))
		ev.Kind = cpu.EvSourceRegister
		ev.Range = mem.Range{Start: start, End: start + span}
		p.lastloc = start
	case rng.Intn(spec.SinkEvery) == 0:
		// Probe near the store cursor, where propagated taint lands.
		start := p.base + (p.cursor+uint32(rng.Intn(256)))%(arenaSize-spanMax)
		p.sink++
		ev.Kind = cpu.EvSinkCheck
		ev.Range = mem.Range{Start: start, End: start + span}
		ev.Tag = p.sink
	case rng.Intn(2) == 0:
		// Load: mostly re-read near the last interesting address (the
		// temporal locality the paper measures), sometimes roam.
		start := p.lastloc
		if rng.Intn(4) == 0 {
			start = p.base + uint32(rng.Intn(arenaSize-spanMax))
		} else {
			start = p.base + (start-p.base+uint32(rng.Intn(64)))%(arenaSize-spanMax)
		}
		ev.Kind = cpu.EvLoad
		ev.Range = mem.Range{Start: start, End: start + span}
		p.lastloc = start
	default:
		// Store: walk the cursor forward — the destination a following
		// sink may probe.
		start := p.base + p.cursor%(arenaSize-spanMax)
		p.cursor += span + uint32(rng.Intn(32))
		ev.Kind = cpu.EvStore
		ev.Range = mem.Range{Start: start, End: start + span}
	}
	return ev
}
