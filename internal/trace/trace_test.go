package trace

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func ev(kind cpu.EventKind, pid uint32, seq uint64) cpu.Event {
	return cpu.Event{Kind: kind, PID: pid, Seq: seq, Range: mem.MakeRange(0x1000, 4)}
}

type counter struct{ n int }

func (c *counter) Event(cpu.Event) { c.n++ }

func TestRecordAndReplay(t *testing.T) {
	r := NewRecorder(8)
	events := []cpu.Event{
		ev(cpu.EvLoad, 1, 1),
		ev(cpu.EvStore, 1, 2),
		ev(cpu.EvSourceRegister, 1, 2),
		ev(cpu.EvSinkCheck, 1, 3),
	}
	for _, e := range events {
		r.Event(e)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	var got []cpu.Event
	r.Replay(eventFunc(func(e cpu.Event) { got = append(got, e) }))
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

type eventFunc func(cpu.Event)

func (f eventFunc) Event(e cpu.Event) { f(e) }

func TestSummarize(t *testing.T) {
	r := NewRecorder(0)
	r.Event(ev(cpu.EvLoad, 1, 10))
	r.Event(ev(cpu.EvLoad, 1, 11))
	r.Event(ev(cpu.EvStore, 1, 12))
	r.Event(ev(cpu.EvSourceRegister, 1, 12))
	r.Event(ev(cpu.EvSinkCheck, 1, 99))
	c := r.Summarize()
	if c.Loads != 2 || c.Stores != 1 || c.Sources != 1 || c.Sinks != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.LastSeq != 99 {
		t.Fatalf("last seq = %d", c.LastSeq)
	}
}

func TestReplaySampled(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 10; i++ {
		r.Event(ev(cpu.EvLoad, 1, uint64(i)))
	}
	var samples []int
	c := &counter{}
	r.ReplaySampled(c, 3, func(delivered int) { samples = append(samples, delivered) })
	if c.n != 10 {
		t.Fatalf("delivered %d events", c.n)
	}
	want := []int{3, 6, 9, 10}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v", samples)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := []cpu.Event{ev(cpu.EvLoad, 1, 1), ev(cpu.EvLoad, 1, 2), ev(cpu.EvLoad, 1, 3)}
	b := []cpu.Event{ev(cpu.EvStore, 2, 1), ev(cpu.EvStore, 2, 2)}
	out := Interleave(2, a, b)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	wantPIDs := []uint32{1, 1, 2, 2, 1}
	for i, e := range out {
		if e.PID != wantPIDs[i] {
			t.Fatalf("pids = %v at %d, want %v", e.PID, i, wantPIDs)
		}
	}
	// Per-stream order preserved.
	var seqs1 []uint64
	for _, e := range out {
		if e.PID == 1 {
			seqs1 = append(seqs1, e.Seq)
		}
	}
	for i := 1; i < len(seqs1); i++ {
		if seqs1[i] <= seqs1[i-1] {
			t.Fatal("stream 1 order violated")
		}
	}
}

func TestInterleaveDegenerate(t *testing.T) {
	if got := Interleave(0, nil, nil); len(got) != 0 {
		t.Fatal("empty interleave should be empty")
	}
	a := []cpu.Event{ev(cpu.EvLoad, 1, 1)}
	if got := Interleave(1, a); len(got) != 1 {
		t.Fatal("single-stream interleave lost events")
	}
}
