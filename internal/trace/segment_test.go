package trace_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/trace/tracegen"
)

// TestSegmentPlannerProperties is the planner's invariant sweep: for 100
// seeded synthetic traces with random sizes, reader counts, and batch
// sizes, the planned segments must (1) concatenate to cover every event
// exactly once in order, (2) place every interior boundary on a batch
// boundary — which, the format being fixed-stride, is also a record
// boundary in bytes — and (3) yield per-segment Readers whose Offset
// reports the same absolute positions a whole-trace Reader reports, event
// for event.
func TestSegmentPlannerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 100; i++ {
		events := 1 + rng.Intn(5000)
		readers := 1 + rng.Intn(12)
		batch := 1 + rng.Intn(300)
		spec := tracegen.Spec{Seed: int64(i), Events: events, PIDs: 1 + rng.Intn(16), Quantum: 1 + rng.Intn(128)}
		rec := tracegen.Generate(spec)
		var wire bytes.Buffer
		if _, err := rec.WriteTo(&wire); err != nil {
			t.Fatal(err)
		}
		ra := bytes.NewReader(wire.Bytes())

		total, err := trace.ReadHeader(ra)
		if err != nil {
			t.Fatalf("case %d: ReadHeader: %v", i, err)
		}
		if total != uint64(events) {
			t.Fatalf("case %d: header count %d, want %d", i, total, events)
		}
		segs := trace.PlanSegments(total, readers, batch)
		if len(segs) == 0 || len(segs) > readers {
			t.Fatalf("case %d: planned %d segments for %d readers", i, len(segs), readers)
		}

		// (1) exact cover: contiguous, in order, no gaps or overlaps.
		at := uint64(0)
		for s, seg := range segs {
			if seg.First != at {
				t.Fatalf("case %d: segment %d starts at %d, want %d (gap or overlap)", i, s, seg.First, at)
			}
			if seg.Count == 0 {
				t.Fatalf("case %d: segment %d is empty", i, s)
			}
			// (2) interior boundaries on batch granularity.
			if s > 0 && seg.First%uint64(batch) != 0 {
				t.Fatalf("case %d: segment %d boundary %d not a multiple of batch %d", i, s, seg.First, batch)
			}
			at = seg.End()
		}
		if at != total {
			t.Fatalf("case %d: segments cover %d events, trace has %d", i, at, total)
		}

		// (3) per-segment readers report absolute offsets and decode the
		// same events as the unsplit stream.
		whole, err := trace.NewReader(bytes.NewReader(wire.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for s, seg := range segs {
			r := trace.NewSegmentReader(ra, seg)
			if got := r.Offset(); got != seg.First {
				t.Fatalf("case %d: segment %d initial Offset %d, want %d", i, s, got, seg.First)
			}
			if got := r.Remaining(); got != seg.Count {
				t.Fatalf("case %d: segment %d Remaining %d, want %d", i, s, got, seg.Count)
			}
			for {
				if whole.Offset() != r.Offset() {
					t.Fatalf("case %d: segment %d offset %d diverges from whole-trace offset %d",
						i, s, r.Offset(), whole.Offset())
				}
				ev, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("case %d: segment %d at offset %d: %v", i, s, r.Offset(), err)
				}
				want, werr := whole.Next()
				if werr != nil {
					t.Fatalf("case %d: whole-trace reader failed at %d: %v", i, whole.Offset(), werr)
				}
				if ev != want {
					t.Fatalf("case %d: segment %d event %d differs from unsplit trace", i, s, r.Offset()-1)
				}
			}
			if got := r.Offset(); got != seg.End() {
				t.Fatalf("case %d: segment %d final Offset %d, want %d", i, s, got, seg.End())
			}
		}
		if _, err := whole.Next(); err != io.EOF {
			t.Fatalf("case %d: whole-trace reader not exhausted after all segments", i)
		}
	}
}

// TestSegmentReaderBatchParity pins NextBatch over a segment to the
// per-event path: same events, same absolute offsets.
func TestSegmentReaderBatchParity(t *testing.T) {
	rec := tracegen.Generate(tracegen.Spec{Seed: 5, Events: 3000, PIDs: 7})
	var wire bytes.Buffer
	if _, err := rec.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	ra := bytes.NewReader(wire.Bytes())
	total, err := trace.ReadHeader(ra)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range trace.PlanSegments(total, 4, 128) {
		r := trace.NewSegmentReader(ra, seg)
		buf := make([]cpu.Event, 100)
		var got []cpu.Event
		for {
			n, err := r.NextBatch(buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("segment %+v: %v", seg, err)
			}
		}
		if uint64(len(got)) != seg.Count {
			t.Fatalf("segment %+v: NextBatch yielded %d events", seg, len(got))
		}
		for j, ev := range got {
			if ev != rec.Events[seg.First+uint64(j)] {
				t.Fatalf("segment %+v: event %d differs", seg, j)
			}
		}
		if r.Offset() != seg.End() {
			t.Fatalf("segment %+v: final offset %d", seg, r.Offset())
		}
	}
}

// TestSegmentReaderTruncation: a segment reaching beyond the physical end
// of the stream must classify as a truncation with an absolute event
// index, exactly like a whole-trace reader.
func TestSegmentReaderTruncation(t *testing.T) {
	rec := tracegen.Generate(tracegen.Spec{Seed: 6, Events: 1000, PIDs: 3})
	var wire bytes.Buffer
	if _, err := rec.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	cut := wire.Bytes()[:trace.HeaderSize+700*trace.EventSize+5] // mid-record of event 700
	ra := bytes.NewReader(cut)
	r := trace.NewSegmentReader(ra, trace.Segment{First: 500, Count: 500})
	n := 0
	var err error
	var ev cpu.Event
	for {
		ev, err = r.Next()
		if err != nil {
			break
		}
		_ = ev
		n++
	}
	if n != 200 {
		t.Fatalf("decoded %d events before the cut, want 200", n)
	}
	if err == io.EOF {
		t.Fatal("truncated segment reported clean EOF")
	}
	if !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("truncated segment error not classified: %v", err)
	}
}
