package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/cpu"
)

// drainBatch pulls the whole stream through NextBatch with the given
// buffer size, returning the events delivered before any error.
func drainBatch(r *Reader, batch int) ([]cpu.Event, error) {
	var out []cpu.Event
	buf := make([]cpu.Event, batch)
	for {
		n, err := r.NextBatch(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

// TestNextBatchEquivalence proves NextBatch is observationally identical
// to a Next loop across batch sizes, including sizes that do not divide
// the event count.
func TestNextBatchEquivalence(t *testing.T) {
	orig := randomTrace(5000, 31)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 256, 4096, 8192} {
		sr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := drainBatch(sr, batch)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if len(got) != orig.Len() {
			t.Fatalf("batch=%d: %d events, want %d", batch, len(got), orig.Len())
		}
		for i := range got {
			if got[i] != orig.Events[i] {
				t.Fatalf("batch=%d: event %d differs: %+v vs %+v", batch, i, got[i], orig.Events[i])
			}
		}
		if sr.Offset() != uint64(orig.Len()) {
			t.Fatalf("batch=%d: offset %d after drain", batch, sr.Offset())
		}
		// io.EOF must be sticky and carry no events.
		if n, err := sr.NextBatch(make([]cpu.Event, 4)); n != 0 || err != io.EOF {
			t.Fatalf("batch=%d: NextBatch after drain = (%d, %v)", batch, n, err)
		}
	}
}

// TestNextBatchTruncationParity cuts the stream at every byte boundary and
// checks the batch path delivers exactly the events a Next loop delivers,
// then fails with io.ErrUnexpectedEOF just as Next does — the pipeline's
// chaos matrix relies on the two drain paths being indistinguishable.
func TestNextBatchTruncationParity(t *testing.T) {
	orig := randomTrace(40, 7)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := HeaderSize; cut < len(full); cut += 5 {
		data := full[:cut]
		nr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("cut=%d: header rejected: %v", cut, err)
		}
		var nextEvents []cpu.Event
		var nextErr error
		for {
			ev, err := nr.Next()
			if err != nil {
				nextErr = err
				break
			}
			nextEvents = append(nextEvents, ev)
		}

		br, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		batchEvents, batchErr := drainBatch(br, 16)

		if len(batchEvents) != len(nextEvents) {
			t.Fatalf("cut=%d: batch delivered %d events, Next %d", cut, len(batchEvents), len(nextEvents))
		}
		if nextErr == io.EOF {
			if batchErr != nil {
				t.Fatalf("cut=%d: Next drained cleanly, batch failed: %v", cut, batchErr)
			}
			continue
		}
		if batchErr == nil {
			t.Fatalf("cut=%d: Next failed (%v), batch drained cleanly", cut, nextErr)
		}
		if !errors.Is(batchErr, io.ErrUnexpectedEOF) || !errors.Is(nextErr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: errors diverge: next=%v batch=%v", cut, nextErr, batchErr)
		}
		if batchErr.Error() != nextErr.Error() {
			t.Fatalf("cut=%d: error text diverges: next=%q batch=%q", cut, nextErr, batchErr)
		}
	}
}

// TestNextBatchCorruptRecord checks a corrupt record surfaces at the same
// index with the prior events intact.
func TestNextBatchCorruptRecord(t *testing.T) {
	orig := randomTrace(20, 13)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[HeaderSize+7*EventSize] = 0xff // kind byte of event 7
	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainBatch(sr, 5)
	if err == nil {
		t.Fatal("corrupt kind accepted")
	}
	if len(got) != 7 {
		t.Fatalf("delivered %d events before the corrupt record, want 7", len(got))
	}
	if sr.Offset() != 7 {
		t.Fatalf("offset %d after corrupt record, want 7", sr.Offset())
	}
}

// TestNextBatchZeroAndOversized covers the degenerate buffer shapes: an
// empty dst is a no-op, and a dst larger than the remaining stream (or the
// per-call cap) returns a short count, not an error.
func TestNextBatchZeroAndOversized(t *testing.T) {
	orig := randomTrace(10, 3)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sr.NextBatch(nil); n != 0 || err != nil {
		t.Fatalf("NextBatch(nil) = (%d, %v)", n, err)
	}
	big := make([]cpu.Event, 64)
	n, err := sr.NextBatch(big)
	if err != nil || n != 10 {
		t.Fatalf("oversized NextBatch = (%d, %v), want (10, nil)", n, err)
	}
	if n, err := sr.NextBatch(big); n != 0 || err != io.EOF {
		t.Fatalf("NextBatch at end = (%d, %v), want (0, io.EOF)", n, err)
	}
}

// TestSkipChunked drives Skip across a stream long enough to need several
// bounded Discard chunks (the 32-bit overflow fix), checking the resume
// position still lands exactly.
func TestSkipChunked(t *testing.T) {
	const total = 3*(1<<16) + 123 // > 3 Discard chunks
	rec := NewRecorder(total)
	for i := 0; i < total; i++ {
		rec.Event(cpu.Event{Kind: cpu.EvStore, PID: 1, Seq: uint64(i + 1), Tag: i})
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	const skip = total - 2
	if err := sr.Skip(skip); err != nil {
		t.Fatal(err)
	}
	if sr.Offset() != skip {
		t.Fatalf("offset %d after skip, want %d", sr.Offset(), skip)
	}
	ev, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Tag != skip {
		t.Fatalf("event after skip has tag %d, want %d", ev.Tag, skip)
	}
	// Skipping into a physically short stream is still a truncation.
	short, err := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-40]))
	if err != nil {
		t.Fatal(err)
	}
	if err := short.Skip(total); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Skip past a cut = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestNextBatchAllocationFree is the alloc gate for the batch decoder:
// after the first call sizes the scratch buffer, steady-state batch
// decoding must not allocate.
func TestNextBatchAllocationFree(t *testing.T) {
	orig := randomTrace(120000, 43)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]cpu.Event, 256)
	if _, err := sr.NextBatch(dst); err != nil { // sizes the scratch buffer
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(300, func() {
		if _, err := sr.NextBatch(dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("NextBatch allocates %v times per call", n)
	}
}

// BenchmarkReaderNextBatch measures batched decode throughput against the
// one-record-per-call Next loop on the same serialized trace.
func BenchmarkReaderNextBatch(b *testing.B) {
	orig := randomTrace(100000, 47)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("next", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sr, err := NewReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := sr.Next(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, batch := range []int{64, 256, 4096} {
		b.Run("batch="+itoa(batch), func(b *testing.B) {
			dst := make([]cpu.Event, batch)
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				sr, err := NewReader(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, err := sr.NextBatch(dst); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d [8]byte
	i := len(d)
	for n > 0 {
		i--
		d[i] = byte('0' + n%10)
		n /= 10
	}
	return string(d[i:])
}
