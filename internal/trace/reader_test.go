package trace

import (
	"bytes"
	"io"
	"testing"
)

// TestReaderRoundTrip drains a serialized trace through the streaming
// Reader and checks it yields exactly the events ReadFrom materializes.
func TestReaderRoundTrip(t *testing.T) {
	orig := randomTrace(5000, 29)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Len() != uint64(orig.Len()) {
		t.Fatalf("header count %d, want %d", sr.Len(), orig.Len())
	}
	for i, want := range orig.Events {
		ev, err := sr.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != want {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev, want)
		}
	}
	if sr.Remaining() != 0 {
		t.Fatalf("remaining %d after drain", sr.Remaining())
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next after drain = %v, want io.EOF", err)
	}
	// io.EOF must be sticky.
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("second Next after drain = %v, want io.EOF", err)
	}
}

func TestReaderEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewRecorder(0).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next on empty trace = %v, want io.EOF", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRCE\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	orig := randomTrace(10, 11)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 12, buf.Len() - 3} {
		data := buf.Bytes()[:cut]
		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue // truncated inside the header: rejected eagerly
		}
		streamErr := error(nil)
		for {
			_, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				streamErr = err
				break
			}
		}
		if streamErr == nil {
			t.Errorf("truncation at %d drained cleanly", cut)
		}
	}
}

func TestReaderRejectsCorruptEvent(t *testing.T) {
	orig := randomTrace(3, 13)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[16] = 0xff // kind byte of the first event
	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil {
		t.Fatal("corrupt kind accepted")
	}
}
