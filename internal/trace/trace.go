// Package trace records front-end event streams so the paper's parameter
// sweeps can replay one execution under many tracker configurations —
// exactly how the authors fed gem5 traces into "the PIFT analysis code".
package trace

import "repro/internal/cpu"

// Recorder captures every front-end event in order. It implements
// cpu.EventSink and can be attached alongside live trackers.
type Recorder struct {
	Events []cpu.Event
}

// NewRecorder returns an empty recorder, optionally pre-sizing the buffer.
func NewRecorder(capacityHint int) *Recorder {
	return &Recorder{Events: make([]cpu.Event, 0, capacityHint)}
}

// Event implements cpu.EventSink.
func (r *Recorder) Event(ev cpu.Event) { r.Events = append(r.Events, ev) }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.Events) }

// Replay feeds the recorded events to a sink in order.
func (r *Recorder) Replay(sink cpu.EventSink) {
	for _, ev := range r.Events {
		sink.Event(ev)
	}
}

// ReplaySampled replays the events, invoking sample after every
// sampleEvery events with the count of events delivered so far; samplers
// read tracker metrics to build the paper's time-series figures.
func (r *Recorder) ReplaySampled(sink cpu.EventSink, sampleEvery int, sample func(delivered int)) {
	for i, ev := range r.Events {
		sink.Event(ev)
		if sampleEvery > 0 && (i+1)%sampleEvery == 0 {
			sample(i + 1)
		}
	}
	if len(r.Events) > 0 {
		sample(len(r.Events))
	}
}

// Counts summarizes the recorded stream.
type Counts struct {
	Loads, Stores, Sources, Sinks int
	LastSeq                       uint64
}

// Summarize tallies the stream.
func (r *Recorder) Summarize() Counts {
	var c Counts
	for _, ev := range r.Events {
		switch ev.Kind {
		case cpu.EvLoad:
			c.Loads++
		case cpu.EvStore:
			c.Stores++
		case cpu.EvSourceRegister:
			c.Sources++
		case cpu.EvSinkCheck:
			c.Sinks++
		}
		if ev.Seq > c.LastSeq {
			c.LastSeq = ev.Seq
		}
	}
	return c
}

// Interleave merges several streams into one, alternating quantum events
// from each in round-robin order — a synthetic context-switch schedule used
// to exercise the per-process tagging of the taint storage (Figure 6).
// Events keep their original PIDs and per-process sequence numbers, as the
// hardware sees them.
func Interleave(quantum int, streams ...[]cpu.Event) []cpu.Event {
	if quantum < 1 {
		quantum = 1
	}
	total := 0
	idx := make([]int, len(streams))
	for _, s := range streams {
		total += len(s)
	}
	out := make([]cpu.Event, 0, total)
	for len(out) < total {
		progressed := false
		for i, s := range streams {
			n := 0
			for idx[i] < len(s) && n < quantum {
				out = append(out, s[idx[i]])
				idx[i]++
				n++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return out
}
