package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func resumeTrace(t *testing.T, n int) (*Recorder, []byte) {
	t.Helper()
	rec := NewRecorder(n)
	for i := 0; i < n; i++ {
		rec.Event(cpu.Event{
			Kind:  cpu.EventKind(i % 4),
			PID:   uint32(i % 3),
			Seq:   uint64(i),
			Range: mem.MakeRange(mem.Addr(i*8), 8),
			Tag:   i,
		})
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return rec, buf.Bytes()
}

// TestReaderSkip: Skip(n) must land exactly on event n, keep the offset
// bookkeeping consistent, and stream the remainder identically to a
// reader that decoded its way there.
func TestReaderSkip(t *testing.T) {
	const n = 1000
	rec, raw := resumeTrace(t, n)
	for _, skip := range []uint64{0, 1, 999, 1000, 515} {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Skip(skip); err != nil {
			t.Fatalf("Skip(%d): %v", skip, err)
		}
		if r.Offset() != skip {
			t.Fatalf("Offset after Skip(%d) = %d", skip, r.Offset())
		}
		if r.Remaining() != n-skip {
			t.Fatalf("Remaining after Skip(%d) = %d", skip, r.Remaining())
		}
		for i := skip; ; i++ {
			ev, err := r.Next()
			if err == io.EOF {
				if i != n {
					t.Fatalf("EOF after %d events, want %d", i, n)
				}
				break
			}
			if err != nil {
				t.Fatalf("Next at %d: %v", i, err)
			}
			if ev != rec.Events[i] {
				t.Fatalf("Skip(%d): event %d = %+v, want %+v", skip, i, ev, rec.Events[i])
			}
		}
	}
}

// TestReaderSkipInterleaved: alternating Next and Skip keeps the stream
// position exact.
func TestReaderSkipInterleaved(t *testing.T) {
	rec, raw := resumeTrace(t, 100)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil { // event 0
		t.Fatal(err)
	}
	if err := r.Skip(10); err != nil { // events 1..10
		t.Fatal(err)
	}
	ev, err := r.Next() // event 11
	if err != nil {
		t.Fatal(err)
	}
	if ev != rec.Events[11] {
		t.Fatalf("got %+v, want event 11 %+v", ev, rec.Events[11])
	}
	if r.Offset() != 12 {
		t.Fatalf("Offset = %d, want 12", r.Offset())
	}
}

// TestReaderSkipBounds: skipping past the declared count is an error, and
// skipping into a physically truncated stream is a truncation, not a
// clean end.
func TestReaderSkipBounds(t *testing.T) {
	_, raw := resumeTrace(t, 50)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Skip(51); err == nil {
		t.Fatal("Skip beyond declared count accepted")
	}
	if err := r.Skip(50); err != nil {
		t.Fatalf("Skip to exact end: %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next after full skip = %v, want io.EOF", err)
	}

	cut, err := NewReader(bytes.NewReader(raw[:HeaderSize+10*EventSize+3]))
	if err != nil {
		t.Fatal(err)
	}
	if err := cut.Skip(20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Skip into truncation = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestWireSizeConstants pins the exported layout constants to the actual
// encoding, so offset arithmetic elsewhere cannot drift.
func TestWireSizeConstants(t *testing.T) {
	_, raw := resumeTrace(t, 7)
	if got, want := len(raw), HeaderSize+7*EventSize; got != want {
		t.Fatalf("7-event trace is %d bytes, constants say %d", got, want)
	}
}
