package trace

import "errors"

// Decode-failure taxonomy. Every error Reader (and therefore ReadFrom,
// NextBatch, and Skip) returns for a damaged stream wraps exactly one of
// these sentinels, so consumers can classify a failure with errors.Is
// instead of string matching — the HTTP ingestion layer maps each class
// to a distinct status code, and retry logic can distinguish "the client
// stopped sending" from "the bytes are garbage".
//
//	ErrTruncated  the stream ended before the header's declared event
//	              count was satisfied — a cut spool file, a dropped
//	              connection mid-record, or a body shorter than promised.
//	              Truncation errors also wrap io.ErrUnexpectedEOF, so the
//	              pre-existing errors.Is(err, io.ErrUnexpectedEOF) checks
//	              keep working unchanged.
//	ErrCorrupt    a record decoded but is semantically impossible: an
//	              unknown event kind or an inverted range. The bytes
//	              arrived intact-length but cannot be trusted.
//	ErrBadMagic   the stream does not start with the trace magic — it is
//	              not a PIFTTRC1 trace at all.
//	ErrTooLarge   the header's declared event count fails the sanity cap;
//	              honoring it would provoke a giant allocation.
var (
	ErrTruncated = errors.New("truncated stream")
	ErrCorrupt   = errors.New("corrupt record")
	ErrBadMagic  = errors.New("not a trace stream")
	ErrTooLarge  = errors.New("implausible event count")
)
