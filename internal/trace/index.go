package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Block index — what keeps segment-planned ingestion arithmetic on the
// compressed format. PIFTTRC1 needs no index at all (event i lives at
// HeaderSize + i*EventSize); PIFTTRC2 blocks are variable-length, so the
// planner instead walks the block headers once with O(#blocks) tiny
// ReadAts — no payload is read, checksummed, or decoded — and records
// (first event, count, byte offset, payload length) per block. With that
// table, planning a range and positioning a per-segment reader are again
// pure arithmetic: boundaries snap to block firsts and a reader's byte
// range is a lookup. The walk also validates the chain (contiguous first
// indexes, bounded counts and lengths, coverage of the declared total),
// so a spliced or reordered file fails at plan time with the same error
// taxonomy decode would produce.

type blockMeta struct {
	first uint64 // absolute index of the block's first event
	off   int64  // byte offset of the block header in the stream
	count uint32 // events in the block
	clen  uint32 // payload bytes
}

// Index describes the physical layout of one serialized trace: its
// format, declared event count, and (for v2) the block table. It is the
// entry point for shard-owned ingestion — build it once per trace, then
// plan segments and open per-segment readers against the same io.ReaderAt.
type Index struct {
	format Format
	count  uint64
	blocks []blockMeta // nil for v1
}

// Format reports the trace's wire format.
func (idx *Index) Format() Format { return idx.format }

// Count returns the declared event count from the trace header.
func (idx *Index) Count() uint64 { return idx.count }

// Blocks reports how many blocks the trace has (0 for v1).
func (idx *Index) Blocks() int { return len(idx.blocks) }

// BlockInfo describes one v2 block's physical layout, for tools that
// reason about block boundaries (tracestat, tests).
type BlockInfo struct {
	First   uint64 // absolute index of the block's first event
	Offset  int64  // byte offset of the block header in the stream
	Count   uint32 // events in the block
	Payload uint32 // compressed payload bytes
}

// Block returns block i's layout; i must be in [0, Blocks()).
func (idx *Index) Block(i int) BlockInfo {
	b := idx.blocks[i]
	return BlockInfo{First: b.first, Offset: b.off, Count: b.count, Payload: b.clen}
}

// LoadIndex sniffs the trace header in ra and builds the Index. For a v1
// trace this is exactly ReadHeader; for v2 it additionally walks and
// validates the block headers. The error taxonomy matches NewReader:
// ErrBadMagic, ErrTooLarge, ErrTruncated on a stream cut short,
// ErrCorrupt on an impossible block chain.
func LoadIndex(ra io.ReaderAt) (*Index, error) {
	var hdr [HeaderSize]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", truncated(err))
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	const sanityCap = 1 << 31
	switch [8]byte(hdr[:8]) {
	case traceMagic:
		if count > sanityCap {
			return nil, fmt.Errorf("trace: %w: %d", ErrTooLarge, count)
		}
		return &Index{format: FormatV1, count: count}, nil
	case traceMagicV2:
		if count > sanityCap {
			return nil, fmt.Errorf("trace: %w: %d", ErrTooLarge, count)
		}
		idx := &Index{format: FormatV2, count: count}
		off := int64(HeaderSize)
		var next uint64
		for next < count {
			var bh [blockHeaderSize]byte
			if _, err := ra.ReadAt(bh[:], off); err != nil {
				return nil, fmt.Errorf("trace: event %d: block header: %w", next, truncated(err))
			}
			first := binary.LittleEndian.Uint64(bh[0:])
			bcount := binary.LittleEndian.Uint32(bh[8:])
			clen := binary.LittleEndian.Uint32(bh[12:])
			if first != next {
				return nil, fmt.Errorf("trace: event %d: %w: block claims first event %d, want %d", next, ErrCorrupt, first, next)
			}
			if bcount == 0 || bcount > maxBlockEvents || first+uint64(bcount) > count {
				return nil, fmt.Errorf("trace: event %d: %w: block claims %d events at %d of %d", next, ErrCorrupt, bcount, first, count)
			}
			if clen > maxBlockBytes {
				return nil, fmt.Errorf("trace: event %d: %w: block claims %d payload bytes", next, ErrTooLarge, clen)
			}
			idx.blocks = append(idx.blocks, blockMeta{first: first, off: off, count: bcount, clen: clen})
			off += blockHeaderSize + int64(clen)
			next = first + uint64(bcount)
		}
		return idx, nil
	}
	return nil, fmt.Errorf("trace: %w: bad magic %q", ErrBadMagic, hdr[:8])
}

// PlanRange splits [first, first+count) into at most `readers` contiguous
// segments, exactly like the package-level PlanRange but aware of the
// trace's physical layout. For v1 it defers to the batch-aligned
// arithmetic unchanged. For v2, interior boundaries snap to block firsts
// (the smallest block start at or after the balanced ideal split), so
// every reader but the first starts on a block boundary and never decodes
// a discarded prefix; `batch` does not constrain v2 boundaries.
func (idx *Index) PlanRange(first, count uint64, readers, batch int) []Segment {
	if idx.format == FormatV1 {
		return PlanRange(first, count, readers, batch)
	}
	if count == 0 {
		return nil
	}
	if readers < 1 {
		readers = 1
	}
	end := first + count
	segs := make([]Segment, 0, readers)
	at := first
	for i := 1; i < readers; i++ {
		ideal := first + count*uint64(i)/uint64(readers)
		j := sort.Search(len(idx.blocks), func(j int) bool { return idx.blocks[j].first >= ideal })
		var boundary uint64
		if j < len(idx.blocks) {
			boundary = idx.blocks[j].first
		} else {
			boundary = end
		}
		if boundary <= at {
			continue
		}
		if boundary >= end {
			break
		}
		segs = append(segs, Segment{First: at, Count: boundary - at})
		at = boundary
	}
	return append(segs, Segment{First: at, Count: end - at})
}

// PlanSegments plans the whole trace: PlanRange from event 0.
func (idx *Index) PlanSegments(readers, batch int) []Segment {
	return idx.PlanRange(0, idx.count, readers, batch)
}

// SegmentReader opens a Reader over one planned segment of the trace in
// ra, positioned at seg.First and reporting absolute offsets, exactly
// like NewSegmentReader does for v1. For v2 the reader's section spans
// the block containing seg.First through the block containing the
// segment's last event; a segment starting mid-block decodes that block
// and discards the prefix, one ending mid-block stops at its logical end.
func (idx *Index) SegmentReader(ra io.ReaderAt, seg Segment) *Reader {
	if idx.format == FormatV1 {
		return NewSegmentReader(ra, seg)
	}
	if seg.Count == 0 {
		return &Reader{
			br:    bufio.NewReader(io.NewSectionReader(ra, 0, 0)),
			v2:    true,
			count: seg.First,
			read:  seg.First,
			total: idx.count,
		}
	}
	bi := sort.Search(len(idx.blocks), func(j int) bool { return idx.blocks[j].first > seg.First }) - 1
	li := sort.Search(len(idx.blocks), func(j int) bool { return idx.blocks[j].first > seg.End()-1 }) - 1
	fb, lb := idx.blocks[bi], idx.blocks[li]
	endOff := lb.off + blockHeaderSize + int64(lb.clen)
	return &Reader{
		br:        bufio.NewReader(io.NewSectionReader(ra, fb.off, endOff-fb.off)),
		v2:        true,
		count:     seg.End(),
		read:      seg.First,
		total:     idx.count,
		nextBlock: fb.first,
	}
}
