package trace

import (
	"bytes"
	"encoding/hex"
	"io"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// uniformTrace builds a deterministic, highly regular trace: PIDs switch
// in runs of 64, Seq steps by a constant, ranges cycle through a small
// window. Full 4096-event blocks of it encode to byte-identical sizes,
// which the strict zero-alloc gate relies on.
func uniformTrace(n int) *Recorder {
	r := NewRecorder(n)
	for i := 0; i < n; i++ {
		r.Event(cpu.Event{
			Kind:  cpu.EventKind(i % 4),
			PID:   uint32(1 + (i/64)%8),
			Seq:   uint64(i) * 3,
			Range: mem.Range{Start: uint32(4096 + (i%32)*8), End: uint32(4096 + (i%32)*8 + 8)},
			Tag:   i%5 - 2,
		})
	}
	return r
}

// encodeFormat serializes rec in the given format, failing the test on
// any error.
func encodeFormat(t testing.TB, rec *Recorder, f Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := rec.WriteToFormat(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteToFormat reported %d bytes, buffer has %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestV2RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, DefaultBlockEvents - 1, DefaultBlockEvents, DefaultBlockEvents + 1, 3*DefaultBlockEvents + 17} {
		orig := randomTrace(n, int64(n)+7)
		data := encodeFormat(t, orig, FormatV2)
		back, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(back.Events) != n {
			t.Fatalf("n=%d: decoded %d events", n, len(back.Events))
		}
		for i := range orig.Events {
			if back.Events[i] != orig.Events[i] {
				t.Fatalf("n=%d: event %d differs: %+v vs %+v", n, i, back.Events[i], orig.Events[i])
			}
		}
	}
}

func TestV2FormatSniffing(t *testing.T) {
	orig := randomTrace(100, 11)
	for _, f := range []Format{FormatV1, FormatV2} {
		r, err := NewReader(bytes.NewReader(encodeFormat(t, orig, f)))
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if r.Format() != f {
			t.Fatalf("sniffed %v, want %v", r.Format(), f)
		}
		if r.Len() != 100 {
			t.Fatalf("%v: Len %d", f, r.Len())
		}
	}
}

// TestV2WriteToFormatV1 pins WriteToFormat(FormatV1) to the legacy
// serializer byte for byte.
func TestV2WriteToFormatV1(t *testing.T) {
	orig := randomTrace(500, 13)
	var legacy bytes.Buffer
	if _, err := orig.WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeFormat(t, orig, FormatV1), legacy.Bytes()) {
		t.Fatal("WriteToFormat(FormatV1) differs from WriteTo")
	}
}

// TestV2NextNextBatchParity proves the three consumption styles agree on
// a v2 stream across batch sizes straddling block boundaries.
func TestV2NextNextBatchParity(t *testing.T) {
	orig := randomTrace(2*DefaultBlockEvents+123, 19)
	data := encodeFormat(t, orig, FormatV2)
	for _, batch := range []int{1, 7, 256, DefaultBlockEvents, DefaultBlockEvents + 1, 1 << 16} {
		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		got, err := drainBatch(sr, batch)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if len(got) != orig.Len() {
			t.Fatalf("batch=%d: %d events, want %d", batch, len(got), orig.Len())
		}
		for i := range got {
			if got[i] != orig.Events[i] {
				t.Fatalf("batch=%d: event %d differs", batch, i)
			}
		}
		if n, err := sr.NextBatch(make([]cpu.Event, 4)); n != 0 || err != io.EOF {
			t.Fatalf("batch=%d: NextBatch after drain = (%d, %v)", batch, n, err)
		}
	}
}

// TestV2Skip checks resume positioning across block-aligned, mid-block,
// and multi-block skips.
func TestV2Skip(t *testing.T) {
	total := 2*DefaultBlockEvents + 500
	orig := randomTrace(total, 23)
	data := encodeFormat(t, orig, FormatV2)
	for _, skip := range []uint64{0, 1, 63, DefaultBlockEvents - 1, DefaultBlockEvents, DefaultBlockEvents + 1, 2*DefaultBlockEvents + 499, uint64(total)} {
		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Skip(skip); err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		if sr.Offset() != skip {
			t.Fatalf("skip %d: offset %d", skip, sr.Offset())
		}
		got, err := drainBatch(sr, 300)
		if err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		want := orig.Events[skip:]
		if len(got) != len(want) {
			t.Fatalf("skip %d: %d events, want %d", skip, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("skip %d: event %d differs", skip, i)
			}
		}
	}
	// Skipping beyond the declared count is an error, same as v1.
	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Skip(uint64(total) + 1); err == nil {
		t.Fatal("skip past the end accepted")
	}
}

// TestV2IndexPlanCover is the segment-planning property test: for every
// (readers, range) combination the planned segments are contiguous,
// non-overlapping, cover the range exactly, and each SegmentReader
// delivers exactly its slice of the original events with absolute
// offsets.
func TestV2IndexPlanCover(t *testing.T) {
	total := 3*DefaultBlockEvents + 700
	orig := randomTrace(total, 29)
	data := encodeFormat(t, orig, FormatV2)
	ra := bytes.NewReader(data)
	idx, err := LoadIndex(ra)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Format() != FormatV2 || idx.Count() != uint64(total) {
		t.Fatalf("index: format %v count %d", idx.Format(), idx.Count())
	}
	if want := (total + DefaultBlockEvents - 1) / DefaultBlockEvents; idx.Blocks() != want {
		t.Fatalf("index has %d blocks, want %d", idx.Blocks(), want)
	}
	ranges := [][2]uint64{
		{0, uint64(total)},
		{0, 100},
		{1000, 9000},
		{DefaultBlockEvents, DefaultBlockEvents},
		{uint64(total) - 1, 1},
		{137, uint64(total) - 137},
	}
	for _, readers := range []int{1, 2, 3, 4, 8, 64} {
		for _, rg := range ranges {
			first, count := rg[0], rg[1]
			segs := idx.PlanRange(first, count, readers, 512)
			if count == 0 {
				if segs != nil {
					t.Fatalf("empty range planned %d segments", len(segs))
				}
				continue
			}
			if len(segs) > readers {
				t.Fatalf("readers=%d range=%v: planned %d segments", readers, rg, len(segs))
			}
			at := first
			for _, seg := range segs {
				if seg.First != at || seg.Count == 0 {
					t.Fatalf("readers=%d range=%v: segment %+v breaks cover at %d", readers, rg, seg, at)
				}
				at = seg.End()
			}
			if at != first+count {
				t.Fatalf("readers=%d range=%v: cover ends at %d", readers, rg, at)
			}
			for _, seg := range segs {
				sr := idx.SegmentReader(ra, seg)
				if sr.Offset() != seg.First {
					t.Fatalf("segment %+v: starts at offset %d", seg, sr.Offset())
				}
				got, err := drainBatch(sr, 512)
				if err != nil {
					t.Fatalf("segment %+v: %v", seg, err)
				}
				want := orig.Events[seg.First:seg.End()]
				if len(got) != len(want) {
					t.Fatalf("segment %+v: %d events, want %d", seg, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("segment %+v: event %d differs", seg, i)
					}
				}
				if sr.Offset() != seg.End() {
					t.Fatalf("segment %+v: ends at offset %d", seg, sr.Offset())
				}
			}
		}
	}
}

// TestV2IndexV1 checks the index is format-agnostic: over a v1 trace it
// defers to the fixed-stride planner and readers.
func TestV2IndexV1(t *testing.T) {
	orig := randomTrace(10000, 31)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ra := bytes.NewReader(buf.Bytes())
	idx, err := LoadIndex(ra)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Format() != FormatV1 || idx.Count() != 10000 || idx.Blocks() != 0 {
		t.Fatalf("v1 index: %v %d %d", idx.Format(), idx.Count(), idx.Blocks())
	}
	segs := idx.PlanRange(100, 8000, 4, 512)
	if want := PlanRange(100, 8000, 4, 512); len(segs) != len(want) {
		t.Fatalf("v1 plan diverged: %v vs %v", segs, want)
	}
	for _, seg := range segs {
		sr := idx.SegmentReader(ra, seg)
		got, err := drainBatch(sr, 512)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != orig.Events[seg.First+uint64(i)] {
				t.Fatalf("segment %+v: event %d differs", seg, i)
			}
		}
	}
}

// TestV2EmptyTrace: zero events serialize to a bare header in both
// formats and decode cleanly.
func TestV2EmptyTrace(t *testing.T) {
	data := encodeFormat(t, NewRecorder(0), FormatV2)
	if len(data) != HeaderSize {
		t.Fatalf("empty v2 trace is %d bytes", len(data))
	}
	back, err := ReadFrom(bytes.NewReader(data))
	if err != nil || back.Len() != 0 {
		t.Fatalf("empty v2 trace: %v, %d events", err, back.Len())
	}
	idx, err := LoadIndex(bytes.NewReader(data))
	if err != nil || idx.Blocks() != 0 || idx.PlanSegments(4, 512) != nil {
		t.Fatalf("empty v2 index: %v", err)
	}
}

// TestV2BlockWriterMisuse pins the writer's contract errors: appending
// past the declared count, and closing short of it.
func TestV2BlockWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBlockWriter(&buf, 1, 0)
	if err := bw.Append(cpu.Event{}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(cpu.Event{}); err == nil {
		t.Fatal("append past the declared count accepted")
	}
	bw = NewBlockWriter(&buf, 2, 0)
	if err := bw.Append(cpu.Event{}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err == nil {
		t.Fatal("short close accepted")
	}
	// Unencodable events are rejected like the v1 decoder would reject
	// their records: unknown kind, inverted range.
	bw = NewBlockWriter(&buf, 1, 1)
	if err := bw.Append(cpu.Event{Kind: 200}); err == nil {
		t.Fatal("unknown kind encoded")
	}
	bw = NewBlockWriter(&buf, 1, 1)
	if err := bw.Append(cpu.Event{Range: mem.Range{Start: 10, End: 3}}); err == nil {
		t.Fatal("inverted range encoded")
	}
}

// TestV2Transcode round-trips a trace v1→v2→v1 through the streaming
// transcoder and requires the final bytes to be identical to the
// original serialization.
func TestV2Transcode(t *testing.T) {
	orig := randomTrace(2*DefaultBlockEvents+99, 37)
	v1 := encodeFormat(t, orig, FormatV1)
	var v2 bytes.Buffer
	n, err := Transcode(&v2, bytes.NewReader(v1), FormatV2)
	if err != nil || n != uint64(orig.Len()) {
		t.Fatalf("v1→v2: %d events, %v", n, err)
	}
	if !bytes.Equal(v2.Bytes(), encodeFormat(t, orig, FormatV2)) {
		t.Fatal("transcoded v2 differs from direct v2 encoding")
	}
	var back bytes.Buffer
	n, err = Transcode(&back, bytes.NewReader(v2.Bytes()), FormatV1)
	if err != nil || n != uint64(orig.Len()) {
		t.Fatalf("v2→v1: %d events, %v", n, err)
	}
	if !bytes.Equal(back.Bytes(), v1) {
		t.Fatal("v1→v2→v1 is not byte-identical")
	}
}

// TestV2GoldenBytes pins the exact wire bytes of a small fixed trace, so
// any change to the encoding — varint order, zigzag convention, CRC
// polynomial, header layout — fails loudly instead of silently forking
// the format.
func TestV2GoldenBytes(t *testing.T) {
	rec := NewRecorder(6)
	rec.Event(cpu.Event{Kind: cpu.EvSourceRegister, PID: 7, Seq: 100, Range: mem.Range{Start: 4096, End: 4100}, Tag: 1})
	rec.Event(cpu.Event{Kind: cpu.EvLoad, PID: 7, Seq: 101, Range: mem.Range{Start: 4096, End: 4100}})
	rec.Event(cpu.Event{Kind: cpu.EvStore, PID: 7, Seq: 103, Range: mem.Range{Start: 4104, End: 4112}})
	rec.Event(cpu.Event{Kind: cpu.EvLoad, PID: 9, Seq: 50, Range: mem.Range{Start: 4104, End: 4112}})
	rec.Event(cpu.Event{Kind: cpu.EvSinkCheck, PID: 9, Seq: 52, Range: mem.Range{Start: 4104, End: 4108}, Tag: -3})
	rec.Event(cpu.Event{Kind: cpu.EvStore, PID: 7, Seq: 104, Range: mem.Range{Start: 4096, End: 4100}})
	got := encodeFormat(t, rec, FormatV2)
	const golden = "" +
		"5049465454524332" + // magic "PIFTTRC2"
		"0600000000000000" + // count = 6
		"0000000000000000" + // block 0: first = 0
		"06000000" + // block 0: count = 6
		"24000000" + // block 0: clen = 36
		"b66df30f" + // block 0: CRC-32C of the payload
		"020709" + // pid dict: 2 entries, PIDs 7 and 9
		"000301020001" + // pid runs: dict[0]×3, dict[1]×2, dict[0]×1
		"0a0001001701" + // kind/tag: kind | zigzag(tag)<<2
		"c8010204640402" + // seq deltas: zigzag, chained per PID from 0
		"804000109040000f" + // range-start deltas: zigzag, chained per PID from 0
		"040408080404" // range lengths
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch:\n got %x\nwant %x", got, want)
	}
}

// TestV2NextBatchAllocationFree is the v2 steady-state gate: after the
// first blocks size the scratch buffers, batched decode of a uniform
// stream allocates nothing — including across block boundaries.
func TestV2NextBatchAllocationFree(t *testing.T) {
	orig := uniformTrace(40 * DefaultBlockEvents)
	data := encodeFormat(t, orig, FormatV2)
	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]cpu.Event, 256)
	// Warm through two full blocks so every scratch is at steady size.
	for sr.Offset() < 2*DefaultBlockEvents {
		if _, err := sr.NextBatch(dst); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(300, func() {
		if _, err := sr.NextBatch(dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("v2 NextBatch allocates %v times per call", n)
	}
}

// BenchmarkReaderV2NextBatch measures v2 batched decode against the same
// uniform corpus serialized as v1, for a like-for-like events/sec
// comparison (`go test -bench V2NextBatch -benchtime ...`).
func BenchmarkReaderV2NextBatch(b *testing.B) {
	orig := uniformTrace(100000)
	for _, f := range []Format{FormatV1, FormatV2} {
		var buf bytes.Buffer
		if _, err := orig.WriteToFormat(&buf, f); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.Run(f.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			dst := make([]cpu.Event, 1024)
			for i := 0; i < b.N; i++ {
				sr, err := NewReader(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				for {
					_, err := sr.NextBatch(dst)
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
