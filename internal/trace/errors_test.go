package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// taxonomyTrace serializes a small valid trace for mutation.
func taxonomyTrace(t *testing.T, n int) []byte {
	t.Helper()
	rec := NewRecorder(n)
	for i := 0; i < n; i++ {
		rec.Event(cpu.Event{
			Kind:  cpu.EvStore,
			PID:   7,
			Seq:   uint64(i + 1),
			Range: mem.Range{Start: uint32(i * 4), End: uint32(i*4 + 4)},
		})
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drain(raw []byte) error {
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestErrorTaxonomy proves every decode failure carries exactly the typed
// sentinel the ingestion layer keys its HTTP status mapping on — and that
// truncations still satisfy the historical io.ErrUnexpectedEOF contract.
func TestErrorTaxonomy(t *testing.T) {
	raw := taxonomyTrace(t, 8)

	t.Run("clean", func(t *testing.T) {
		if err := drain(raw); err != nil {
			t.Fatalf("clean trace: %v", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		err := drain(raw[:len(raw)-5])
		if !errors.Is(err, ErrTruncated) || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut trace err = %v, want ErrTruncated ∧ ErrUnexpectedEOF", err)
		}
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadMagic) {
			t.Fatalf("cut trace misclassified: %v", err)
		}
	})

	t.Run("truncated-header", func(t *testing.T) {
		for _, cut := range []int{0, 3, 8, 12} {
			if err := drain(raw[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("header cut %d err = %v, want ErrTruncated", cut, err)
			}
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if err := drain(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("bad magic err = %v, want ErrBadMagic", err)
		}
	})

	t.Run("too-large", func(t *testing.T) {
		big := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint64(big[8:], 1<<40)
		if err := drain(big); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("giant count err = %v, want ErrTooLarge", err)
		}
	})

	t.Run("corrupt-kind", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[HeaderSize+2*EventSize] = 0xee // record 2's kind byte
		err := drain(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad kind err = %v, want ErrCorrupt", err)
		}
		if errors.Is(err, ErrTruncated) || errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("corruption misclassified as truncation: %v", err)
		}
	})

	t.Run("corrupt-range", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		// Swap record 1's start/end words so End < Start.
		off := HeaderSize + 1*EventSize
		start := binary.LittleEndian.Uint32(bad[off+13:])
		end := binary.LittleEndian.Uint32(bad[off+17:])
		binary.LittleEndian.PutUint32(bad[off+13:], end+1)
		binary.LittleEndian.PutUint32(bad[off+17:], start)
		if err := drain(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("inverted range err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("batch-parity", func(t *testing.T) {
		// NextBatch must classify identically to Next.
		bad := append([]byte(nil), raw...)
		bad[HeaderSize+3*EventSize] = 0xee
		r, err := NewReader(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]cpu.Event, 64)
		_, berr := r.NextBatch(dst)
		if !errors.Is(berr, ErrCorrupt) {
			t.Fatalf("NextBatch corrupt err = %v, want ErrCorrupt", berr)
		}
		r2, err := NewReader(bytes.NewReader(raw[:len(raw)-1]))
		if err != nil {
			t.Fatal(err)
		}
		_, berr = r2.NextBatch(dst)
		if !errors.Is(berr, ErrTruncated) {
			t.Fatalf("NextBatch truncation err = %v, want ErrTruncated", berr)
		}
	})

	t.Run("skip", func(t *testing.T) {
		r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Skip(8); !errors.Is(err, ErrTruncated) {
			t.Fatalf("Skip into cut err = %v, want ErrTruncated", err)
		}
	})
}
