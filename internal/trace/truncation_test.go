package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestReaderErrorTaxonomy cuts a valid trace at every byte boundary and
// checks the contract: a complete trace drains to exactly io.EOF; any
// truncation — in the header, between records, or mid-record — reports
// io.ErrUnexpectedEOF and never a bare (or wrapped) io.EOF.
func TestReaderErrorTaxonomy(t *testing.T) {
	rec := randomTrace(7, 42)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	drain := func(data []byte) (events int, err error) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return 0, err
		}
		for {
			_, err := r.Next()
			if err != nil {
				return events, err
			}
			events++
		}
	}

	// Complete trace: all events, then exactly io.EOF (not just
	// errors.Is-EOF — replay loops compare with ==).
	n, err := drain(full)
	if n != len(rec.Events) || err != io.EOF {
		t.Fatalf("full trace: %d events, err %v; want %d events, io.EOF", n, err, len(rec.Events))
	}

	for cut := 0; cut < len(full); cut++ {
		n, err := drain(full[:cut])
		if err == nil {
			t.Fatalf("cut %d: drain succeeded on truncated trace", cut)
		}
		if cut < 16 {
			// Header truncation: magic (ReadFull) or count must already
			// report unexpected EOF.
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d (header): err %v, want ErrUnexpectedEOF", cut, err)
			}
			continue
		}
		if err == io.EOF {
			t.Fatalf("cut %d: bare io.EOF after %d events — truncation read as clean end", cut, n)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err %v, want ErrUnexpectedEOF", cut, err)
		}
		if errors.Is(err, io.EOF) {
			t.Fatalf("cut %d: truncation error %v wraps io.EOF", cut, err)
		}
		if want := (cut - 16) / eventWireSize; n != want {
			t.Fatalf("cut %d: decoded %d whole events, want %d", cut, n, want)
		}
	}
}

// TestReadFromRejectsTruncation: the materializing wrapper must surface
// the truncation error rather than silently returning a short trace.
func TestReadFromRejectsTruncation(t *testing.T) {
	rec := randomTrace(4, 7)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadFrom(bytes.NewReader(data)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadFrom(truncated) err = %v, want ErrUnexpectedEOF", err)
	}
}
