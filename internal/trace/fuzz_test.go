package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrom feeds arbitrary bytes to the trace decoder: it must never
// panic, and anything it accepts must re-encode to an equivalent trace.
func FuzzReadFrom(f *testing.F) {
	good := randomTrace(5, 1)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PIFTTRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := rec.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(back.Events) != len(rec.Events) {
			t.Fatalf("round trip changed event count")
		}
		for i := range rec.Events {
			if back.Events[i] != rec.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}

// FuzzReader drives the streaming decoder over arbitrary bytes and checks
// the error taxonomy: no panic; bare io.EOF if and only if every declared
// event was decoded; a stream that runs dry early always reports
// io.ErrUnexpectedEOF and never satisfies errors.Is(err, io.EOF); and the
// streaming path agrees event-for-event with the materializing ReadFrom.
func FuzzReader(f *testing.F) {
	good := randomTrace(5, 2)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-3]) // mid-record truncation
	f.Add(buf.Bytes()[:12])          // header truncation
	f.Add([]byte("PIFTTRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("NewReader leaked bare io.EOF: %v", err)
			}
			// The two paths must agree on rejection.
			if _, err2 := ReadFrom(bytes.NewReader(data)); err2 == nil {
				t.Fatalf("ReadFrom accepted what NewReader rejected: %v", err)
			}
			return
		}
		var events int
		var lastErr error
		for {
			_, err := r.Next()
			if err != nil {
				lastErr = err
				break
			}
			events++
		}
		clean := uint64(events) == r.Len()
		if clean {
			if lastErr != io.EOF {
				t.Fatalf("clean drain of %d events ended with %v, want io.EOF", events, lastErr)
			}
		} else if errors.Is(lastErr, io.EOF) {
			t.Fatalf("stream died after %d of %d events with an EOF-flavored error: %v",
				events, r.Len(), lastErr)
		}
		// Truncation (as opposed to corruption) must carry ErrUnexpectedEOF.
		if !clean && uint64(len(data)) < 16+r.Len()*eventWireSize &&
			!errors.Is(lastErr, io.ErrUnexpectedEOF) {
			// Short input can still fail on a corrupt record before running
			// dry; only flag errors produced at the point of exhaustion.
			if 16+uint64(events+1)*eventWireSize > uint64(len(data)) {
				t.Fatalf("ran dry after %d events but error is %v, not ErrUnexpectedEOF",
					events, lastErr)
			}
		}
		// Streaming and materializing decoders agree.
		rec, err2 := ReadFrom(bytes.NewReader(data))
		if clean != (err2 == nil) {
			t.Fatalf("Reader clean=%v but ReadFrom err=%v", clean, err2)
		}
		if clean && len(rec.Events) != events {
			t.Fatalf("Reader decoded %d events, ReadFrom %d", events, len(rec.Events))
		}
	})
}
