package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/cpu"
)

// FuzzReadFrom feeds arbitrary bytes to the trace decoder: it must never
// panic, and anything it accepts must re-encode to an equivalent trace.
func FuzzReadFrom(f *testing.F) {
	good := randomTrace(5, 1)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PIFTTRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := rec.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(back.Events) != len(rec.Events) {
			t.Fatalf("round trip changed event count")
		}
		for i := range rec.Events {
			if back.Events[i] != rec.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}

// FuzzDecodeV2 drives the block decoder over arbitrary bytes: it must
// never panic, every failure must classify into exactly one taxonomy
// sentinel (so the server can map it to a 4xx and never a 5xx), a clean
// drain must deliver exactly the declared count, and anything accepted
// must round-trip through the v2 encoder byte-for-byte.
func FuzzDecodeV2(f *testing.F) {
	good := randomTrace(300, 3)
	var buf bytes.Buffer
	if _, err := good.WriteToFormat(&buf, FormatV2); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-3]) // mid-payload truncation
	f.Add(buf.Bytes()[:HeaderSize+blockHeaderSize-2])
	f.Add([]byte("PIFTTRC2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !isSentinelF(err) {
				t.Fatalf("NewReader error outside the taxonomy: %v", err)
			}
			return
		}
		var events uint64
		var lastErr error
		dst := make([]cpu.Event, 37)
		rec := NewRecorder(0)
		for {
			n, err := r.NextBatch(dst)
			rec.Events = append(rec.Events, dst[:n]...)
			events += uint64(n)
			if err != nil {
				lastErr = err
				break
			}
		}
		if lastErr == io.EOF {
			if events != r.Len() {
				t.Fatalf("clean EOF after %d of %d events", events, r.Len())
			}
			if r.Format() != FormatV2 {
				return // v1 bytes are FuzzReader's concern
			}
			var out bytes.Buffer
			if _, err := rec.WriteToFormat(&out, FormatV2); err != nil {
				t.Fatalf("re-encode of accepted v2 trace failed: %v", err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				// The encoder is canonical (fixed block size, greedy
				// runs), so accepted-but-noncanonical inputs can differ;
				// they must still decode to the same events.
				back, err := ReadFrom(bytes.NewReader(out.Bytes()))
				if err != nil || len(back.Events) != len(rec.Events) {
					t.Fatalf("v2 round trip failed: %v", err)
				}
				for i := range rec.Events {
					if back.Events[i] != rec.Events[i] {
						t.Fatalf("v2 round trip changed event %d", i)
					}
				}
			}
			return
		}
		if errors.Is(lastErr, io.EOF) {
			t.Fatalf("stream died after %d of %d events with an EOF-flavored error: %v", events, r.Len(), lastErr)
		}
		if !isSentinelF(lastErr) {
			t.Fatalf("decode error outside the taxonomy: %v", lastErr)
		}
	})
}

// isSentinelF mirrors the taxonomy test helper for fuzzing: exactly one
// of the four sentinels.
func isSentinelF(err error) bool {
	n := 0
	for _, s := range []error{ErrTruncated, ErrCorrupt, ErrBadMagic, ErrTooLarge} {
		if errors.Is(err, s) {
			n++
		}
	}
	return n == 1
}

// FuzzReader drives the streaming decoder over arbitrary bytes and checks
// the error taxonomy: no panic; bare io.EOF if and only if every declared
// event was decoded; a stream that runs dry early always reports
// io.ErrUnexpectedEOF and never satisfies errors.Is(err, io.EOF); and the
// streaming path agrees event-for-event with the materializing ReadFrom.
func FuzzReader(f *testing.F) {
	good := randomTrace(5, 2)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-3]) // mid-record truncation
	f.Add(buf.Bytes()[:12])          // header truncation
	f.Add([]byte("PIFTTRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("NewReader leaked bare io.EOF: %v", err)
			}
			// The two paths must agree on rejection.
			if _, err2 := ReadFrom(bytes.NewReader(data)); err2 == nil {
				t.Fatalf("ReadFrom accepted what NewReader rejected: %v", err)
			}
			return
		}
		var events int
		var lastErr error
		for {
			_, err := r.Next()
			if err != nil {
				lastErr = err
				break
			}
			events++
		}
		clean := uint64(events) == r.Len()
		if clean {
			if lastErr != io.EOF {
				t.Fatalf("clean drain of %d events ended with %v, want io.EOF", events, lastErr)
			}
		} else if errors.Is(lastErr, io.EOF) {
			t.Fatalf("stream died after %d of %d events with an EOF-flavored error: %v",
				events, r.Len(), lastErr)
		}
		// Truncation (as opposed to corruption) must carry ErrUnexpectedEOF.
		if !clean && uint64(len(data)) < 16+r.Len()*eventWireSize &&
			!errors.Is(lastErr, io.ErrUnexpectedEOF) {
			// Short input can still fail on a corrupt record before running
			// dry; only flag errors produced at the point of exhaustion.
			if 16+uint64(events+1)*eventWireSize > uint64(len(data)) {
				t.Fatalf("ran dry after %d events but error is %v, not ErrUnexpectedEOF",
					events, lastErr)
			}
		}
		// Streaming and materializing decoders agree.
		rec, err2 := ReadFrom(bytes.NewReader(data))
		if clean != (err2 == nil) {
			t.Fatalf("Reader clean=%v but ReadFrom err=%v", clean, err2)
		}
		if clean && len(rec.Events) != events {
			t.Fatalf("Reader decoded %d events, ReadFrom %d", events, len(rec.Events))
		}
	})
}
