package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFrom feeds arbitrary bytes to the trace decoder: it must never
// panic, and anything it accepts must re-encode to an equivalent trace.
func FuzzReadFrom(f *testing.F) {
	good := randomTrace(5, 1)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PIFTTRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := rec.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(back.Events) != len(rec.Events) {
			t.Fatalf("round trip changed event count")
		}
		for i := range rec.Events {
			if back.Events[i] != rec.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}
