package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Segment planning — the ingest side of the shard-owned pipeline. The
// PIFTTRC1 format is fixed-stride (HeaderSize + i*EventSize locates event
// i without decoding), so a trace can be pre-split into contiguous event
// ranges by pure arithmetic: no indexing pass, no scan. Each pipeline
// reader then owns one segment end-to-end — its own *Reader, its own
// decode buffer, its own byte range of the backing file — which is what
// removes the single shared dispatcher from the hot path.

// Segment is a half-open range of events [First, First+Count) of a
// serialized trace. Segments produced by PlanRange are contiguous and
// non-overlapping: concatenated in order they cover the planned range
// exactly once.
type Segment struct {
	First uint64 // absolute index of the segment's first event
	Count uint64 // number of events in the segment
}

// End returns the absolute index one past the segment's last event.
func (s Segment) End() uint64 { return s.First + s.Count }

// PlanRange splits the event range [first, first+count) into at most
// `readers` contiguous segments. Interior boundaries land on multiples of
// `batch` events from `first`, so every segment but the last holds whole
// batches — a reader never decodes a partial batch except at the end of
// the range. Counts are balanced to within one batch. Fewer than
// `readers` segments come back when the range has fewer batches than
// readers; an empty range plans to nil.
func PlanRange(first, count uint64, readers, batch int) []Segment {
	if count == 0 {
		return nil
	}
	if readers < 1 {
		readers = 1
	}
	if batch < 1 {
		batch = 1
	}
	b := uint64(batch)
	batches := (count + b - 1) / b
	n := uint64(readers)
	if n > batches {
		n = batches
	}
	per, extra := batches/n, batches%n
	segs := make([]Segment, 0, n)
	at := first
	for i := uint64(0); i < n; i++ {
		take := per
		if i < extra {
			take++
		}
		c := take * b
		if at+c > first+count { // last segment: the trace's ragged tail
			c = first + count - at
		}
		segs = append(segs, Segment{First: at, Count: c})
		at += c
	}
	return segs
}

// PlanSegments plans the whole trace: PlanRange from event 0.
func PlanSegments(total uint64, readers, batch int) []Segment {
	return PlanRange(0, total, readers, batch)
}

// ReadHeader validates the trace header in ra and returns the declared
// event count. Both wire formats share the same 16-byte header shape, so
// this sniffs the magic like NewReader does; segment-planned ingestion
// over a v2 trace additionally needs the block table and should use
// LoadIndex (which subsumes this check) instead. The error taxonomy
// matches NewReader: ErrBadMagic, ErrTooLarge, and ErrTruncated-wrapped
// io.ErrUnexpectedEOF on a header cut short.
func ReadHeader(ra io.ReaderAt) (uint64, error) {
	var hdr [HeaderSize]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", truncated(err))
	}
	if magic := [8]byte(hdr[:8]); magic != traceMagic && magic != traceMagicV2 {
		return 0, fmt.Errorf("trace: %w: bad magic %q", ErrBadMagic, hdr[:8])
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	const sanityCap = 1 << 31
	if count > sanityCap {
		return 0, fmt.Errorf("trace: %w: %d", ErrTooLarge, count)
	}
	return count, nil
}

// NewSegmentReader returns a Reader over one planned segment of the
// serialized trace in ra. The reader is positioned at the segment's first
// event and reports absolute positions: Offset() starts at seg.First,
// event indices in errors are absolute, and io.EOF arrives exactly at
// seg.End() — so per-segment readers compose with checkpoint offsets and
// fault reports exactly like a whole-trace Reader that was Skip()ed to
// seg.First. The segment is trusted to come from PlanRange over a
// validated header (ReadHeader); a segment beyond the physical end of ra
// surfaces as a truncation at the first short read.
func NewSegmentReader(ra io.ReaderAt, seg Segment) *Reader {
	sec := io.NewSectionReader(ra, int64(HeaderSize)+int64(seg.First)*EventSize, int64(seg.Count)*EventSize)
	return &Reader{
		br:    bufio.NewReader(sec),
		count: seg.End(),
		read:  seg.First,
	}
}
