package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Reader streams events out of a serialized trace one at a time, so
// multi-gigabyte traces can feed an analysis pipeline without ever
// materializing the full []Event slice. It validates the header eagerly
// (in NewReader) and each record lazily (in Next).
//
// Error taxonomy: Next returns exactly io.EOF only at the clean end of
// the stream (all declared events decoded). A stream that ends early —
// mid-record or between records — is a truncation and reports
// io.ErrUnexpectedEOF (wrapped with the failing event index), never a
// bare io.EOF, so `err == io.EOF` loops cannot mistake a cut-off trace
// for a complete one.
type Reader struct {
	br    *bufio.Reader
	count uint64 // declared event count from the header
	read  uint64 // events decoded so far
}

// NewReader wraps r, reading and validating the trace header. The stream
// must then be drained with Next; the first call after the last event
// returns io.EOF.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		// There is no such thing as a valid empty trace: even zero events
		// serialize to a 16-byte header, so running dry here — including on
		// a zero-byte stream — is a truncation, not a clean end.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// The magic was present, so a missing count is a truncated
		// header, not a clean end of anything.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const sanityCap = 1 << 31
	if count > sanityCap {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	return &Reader{br: br, count: count}, nil
}

// Len returns the total event count declared by the trace header.
func (d *Reader) Len() uint64 { return d.count }

// Remaining returns how many events have not been decoded yet.
func (d *Reader) Remaining() uint64 { return d.count - d.read }

// Offset returns the resumable stream position: the number of events
// consumed so far (by Next or Skip). A pipeline checkpoint taken after
// event n pairs with Offset()==n; a fresh Reader over the same bytes plus
// Skip(n) continues the stream exactly where the checkpoint left it.
func (d *Reader) Offset() uint64 { return d.read }

// Skip discards the next n events without decoding them, advancing the
// stream to a checkpoint's resume offset in one buffered seek. Records
// skipped this way are not validated — resume trusts the pass that wrote
// the checkpoint to have decoded them already. Skipping past the declared
// event count, or into a stream physically shorter than its header
// promises, is a truncation error.
func (d *Reader) Skip(n uint64) error {
	if n > d.Remaining() {
		return fmt.Errorf("trace: skip %d events beyond remaining %d", n, d.Remaining())
	}
	if n == 0 {
		return nil
	}
	if _, err := d.br.Discard(int(n) * eventWireSize); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("trace: skipping to event %d: %w", d.read+n, err)
	}
	d.read += n
	return nil
}

// Next decodes and returns the next event. It returns io.EOF once all
// declared events have been read, and a descriptive error on truncated or
// corrupt records.
func (d *Reader) Next() (cpu.Event, error) {
	if d.read >= d.count {
		return cpu.Event{}, io.EOF
	}
	var rec [eventWireSize]byte
	if _, err := io.ReadFull(d.br, rec[:]); err != nil {
		// The header declared more events, so running dry here — whether
		// on a record boundary (ReadFull's io.EOF) or inside a record
		// (its io.ErrUnexpectedEOF) — is a truncated trace.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return cpu.Event{}, fmt.Errorf("trace: event %d: %w", d.read, err)
	}
	kind := cpu.EventKind(rec[0])
	if kind > cpu.EvSinkCheck {
		return cpu.Event{}, fmt.Errorf("trace: event %d: unknown kind %d", d.read, kind)
	}
	start := binary.LittleEndian.Uint32(rec[13:])
	end := binary.LittleEndian.Uint32(rec[17:])
	if end < start {
		return cpu.Event{}, fmt.Errorf("trace: event %d: inverted range", d.read)
	}
	d.read++
	return cpu.Event{
		Kind:  kind,
		PID:   binary.LittleEndian.Uint32(rec[1:]),
		Seq:   binary.LittleEndian.Uint64(rec[5:]),
		Range: mem.Range{Start: start, End: end},
		Tag:   int(int32(binary.LittleEndian.Uint32(rec[21:]))),
	}, nil
}
