package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// truncated lifts an end-of-source error into the ErrTruncated class.
// A bare io.EOF from the source is promoted to io.ErrUnexpectedEOF first
// (the header promised more bytes), and any unexpected-EOF-shaped error is
// additionally wrapped with ErrTruncated so callers can classify it; other
// source errors (a network reset, an injected fault) pass through intact.
func truncated(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	return err
}

// Reader streams events out of a serialized trace one at a time, so
// multi-gigabyte traces can feed an analysis pipeline without ever
// materializing the full []Event slice. It validates the header eagerly
// (in NewReader) and each record lazily (in Next).
//
// Error taxonomy: Next returns exactly io.EOF only at the clean end of
// the stream (all declared events decoded). A stream that ends early —
// mid-record or between records — is a truncation and reports
// io.ErrUnexpectedEOF (wrapped with the failing event index), never a
// bare io.EOF, so `err == io.EOF` loops cannot mistake a cut-off trace
// for a complete one.
type Reader struct {
	br    *bufio.Reader
	count uint64 // declared event count (a segment reader's logical end)
	read  uint64 // events decoded so far
	buf   []byte // block-read scratch, grown once and reused

	// PIFTTRC2 state; zero for a v1 stream.
	v2        bool
	total     uint64      // physical declared count (count can stop short of it)
	nextBlock uint64      // first event index of the next block on the stream
	pending   []cpu.Event // decoded events of the current block, reused
	pendPos   int         // cursor into pending
	sc        decScratch  // dictionary/index/delta-chain scratch, reused
}

// NewReader wraps r, reading and validating the trace header. The wire
// format — PIFTTRC1 or PIFTTRC2 — is sniffed from the magic; everything
// after that (Next/NextBatch/Skip/Offset, the error taxonomy) behaves
// identically for both. The stream must then be drained with Next; the
// first call after the last event returns io.EOF.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		// There is no such thing as a valid empty trace: even zero events
		// serialize to a 16-byte header, so running dry here — including on
		// a zero-byte stream — is a truncation, not a clean end.
		return nil, fmt.Errorf("trace: reading magic: %w", truncated(err))
	}
	var v2 bool
	switch magic {
	case traceMagic:
	case traceMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("trace: %w: bad magic %q", ErrBadMagic, magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// The magic was present, so a missing count is a truncated
		// header, not a clean end of anything.
		return nil, fmt.Errorf("trace: reading count: %w", truncated(err))
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const sanityCap = 1 << 31
	if count > sanityCap {
		return nil, fmt.Errorf("trace: %w: %d", ErrTooLarge, count)
	}
	return &Reader{br: br, count: count, v2: v2, total: count}, nil
}

// Format reports which wire format the stream carries.
func (d *Reader) Format() Format {
	if d.v2 {
		return FormatV2
	}
	return FormatV1
}

// Len returns the total event count declared by the trace header.
func (d *Reader) Len() uint64 { return d.count }

// Remaining returns how many events have not been decoded yet.
func (d *Reader) Remaining() uint64 { return d.count - d.read }

// Offset returns the resumable stream position: the number of events
// consumed so far (by Next or Skip). A pipeline checkpoint taken after
// event n pairs with Offset()==n; a fresh Reader over the same bytes plus
// Skip(n) continues the stream exactly where the checkpoint left it.
func (d *Reader) Offset() uint64 { return d.read }

// Skip discards the next n events without decoding them, advancing the
// stream to a checkpoint's resume offset in one buffered seek. Records
// skipped this way are not validated — resume trusts the pass that wrote
// the checkpoint to have decoded them already. Skipping past the declared
// event count, or into a stream physically shorter than its header
// promises, is a truncation error.
func (d *Reader) Skip(n uint64) error {
	if n > d.Remaining() {
		return fmt.Errorf("trace: skip %d events beyond remaining %d", n, d.Remaining())
	}
	if d.v2 {
		return d.skipV2(n)
	}
	// Discard in bounded chunks: int(n)*eventWireSize would overflow int
	// on 32-bit platforms for large n, and bufio.Discard takes an int.
	const skipChunk = 1 << 16 // events per Discard call
	target := d.read + n
	for n > 0 {
		c := n
		if c > skipChunk {
			c = skipChunk
		}
		if _, err := d.br.Discard(int(c) * eventWireSize); err != nil {
			return fmt.Errorf("trace: skipping to event %d: %w", target, truncated(err))
		}
		d.read += c
		n -= c
	}
	return nil
}

// maxDecodeBatch caps how many records one NextBatch call block-reads, so
// the scratch buffer stays modest (1.6 MiB) and the byte math can never
// overflow int even on 32-bit platforms.
const maxDecodeBatch = 1 << 16

// NextBatch decodes up to len(dst) events into dst with one block read and
// a tight decode loop, returning how many were produced. It is Next
// amortized: one io.ReadFull per batch instead of per record, with no
// allocations after the first call grows the reader's scratch buffer.
//
// The error taxonomy matches Next exactly. A clean end of stream returns
// (0, io.EOF) — never events alongside io.EOF. A truncated or corrupt
// stream returns every event decoded before the failure point together
// with the same error Next would have produced for the failing record, so
// callers that feed n events and then inspect err behave identically to a
// per-event Next loop.
func (d *Reader) NextBatch(dst []cpu.Event) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if d.read >= d.count {
		return 0, io.EOF
	}
	if d.v2 {
		return d.nextBatchV2(dst)
	}
	n := uint64(len(dst))
	if n > maxDecodeBatch {
		n = maxDecodeBatch
	}
	if rem := d.count - d.read; n > rem {
		n = rem
	}
	need := int(n) * eventWireSize
	if cap(d.buf) < need {
		d.buf = make([]byte, need)
	}
	buf := d.buf[:need]
	m, rerr := io.ReadFull(d.br, buf)
	decoded := 0
	for i := 0; i < m/eventWireSize; i++ {
		rec := buf[i*eventWireSize : (i+1)*eventWireSize]
		kind := cpu.EventKind(rec[0])
		if kind > cpu.EvSinkCheck {
			return decoded, fmt.Errorf("trace: event %d: %w: unknown kind %d", d.read, ErrCorrupt, kind)
		}
		start := binary.LittleEndian.Uint32(rec[13:])
		end := binary.LittleEndian.Uint32(rec[17:])
		if end < start {
			return decoded, fmt.Errorf("trace: event %d: %w: inverted range", d.read, ErrCorrupt)
		}
		dst[decoded] = cpu.Event{
			Kind:  kind,
			PID:   binary.LittleEndian.Uint32(rec[1:]),
			Seq:   binary.LittleEndian.Uint64(rec[5:]),
			Range: mem.Range{Start: start, End: end},
			Tag:   int(int32(binary.LittleEndian.Uint32(rec[21:]))),
		}
		decoded++
		d.read++
	}
	if rerr != nil {
		// The header declared more events, so running dry mid-batch —
		// on a record boundary or inside a record — is a truncation;
		// other source errors pass through as Next would surface them.
		return decoded, fmt.Errorf("trace: event %d: %w", d.read, truncated(rerr))
	}
	return decoded, nil
}

// Next decodes and returns the next event. It returns io.EOF once all
// declared events have been read, and a descriptive error on truncated or
// corrupt records.
func (d *Reader) Next() (cpu.Event, error) {
	if d.read >= d.count {
		return cpu.Event{}, io.EOF
	}
	if d.v2 {
		return d.nextV2()
	}
	var rec [eventWireSize]byte
	if _, err := io.ReadFull(d.br, rec[:]); err != nil {
		// The header declared more events, so running dry here — whether
		// on a record boundary (ReadFull's io.EOF) or inside a record
		// (its io.ErrUnexpectedEOF) — is a truncated trace.
		return cpu.Event{}, fmt.Errorf("trace: event %d: %w", d.read, truncated(err))
	}
	kind := cpu.EventKind(rec[0])
	if kind > cpu.EvSinkCheck {
		return cpu.Event{}, fmt.Errorf("trace: event %d: %w: unknown kind %d", d.read, ErrCorrupt, kind)
	}
	start := binary.LittleEndian.Uint32(rec[13:])
	end := binary.LittleEndian.Uint32(rec[17:])
	if end < start {
		return cpu.Event{}, fmt.Errorf("trace: event %d: %w: inverted range", d.read, ErrCorrupt)
	}
	d.read++
	return cpu.Event{
		Kind:  kind,
		PID:   binary.LittleEndian.Uint32(rec[1:]),
		Seq:   binary.LittleEndian.Uint64(rec[5:]),
		Range: mem.Range{Start: start, End: end},
		Tag:   int(int32(binary.LittleEndian.Uint32(rec[21:]))),
	}, nil
}
