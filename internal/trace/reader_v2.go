package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/cpu"
)

// The PIFTTRC2 decode path. A v2 Reader decodes one block at a time into
// a reused scratch slice (d.pending) and serves Next/NextBatch out of it,
// so after the first block grows the scratch the steady state allocates
// nothing — the same contract the v1 batch path has. Because blocks are
// self-contained, a reader positioned mid-block (a segment reader, or a
// resume Skip landing inside a block) decodes its containing block and
// discards the prefix; the extra work is bounded by one block per
// segment boundary.

// readBlockHeader reads and validates the next 20-byte block header.
// Contiguity (the block's first event index must be exactly where the
// stream stands) is what turns any reordered, duplicated, or spliced
// block into ErrCorrupt instead of silently misattributed events.
func (d *Reader) readBlockHeader() (first uint64, bcount, clen int, crc uint32, err error) {
	var hdr [blockHeaderSize]byte
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		// The file header declared more events, so running dry between
		// blocks or inside a block header is a truncation.
		return 0, 0, 0, 0, fmt.Errorf("trace: event %d: block header: %w", d.read, truncated(err))
	}
	first = binary.LittleEndian.Uint64(hdr[0:])
	count := binary.LittleEndian.Uint32(hdr[8:])
	length := binary.LittleEndian.Uint32(hdr[12:])
	crc = binary.LittleEndian.Uint32(hdr[16:])
	if first != d.nextBlock {
		return 0, 0, 0, 0, fmt.Errorf("trace: event %d: %w: block claims first event %d, want %d", d.read, ErrCorrupt, first, d.nextBlock)
	}
	if count == 0 || count > maxBlockEvents || first+uint64(count) > d.total {
		return 0, 0, 0, 0, fmt.Errorf("trace: event %d: %w: block claims %d events at %d of %d", d.read, ErrCorrupt, count, first, d.total)
	}
	if length > maxBlockBytes {
		return 0, 0, 0, 0, fmt.Errorf("trace: event %d: %w: block claims %d payload bytes", d.read, ErrTooLarge, length)
	}
	return first, int(count), int(length), crc, nil
}

// loadBlock reads, checksums, and decodes one block's payload into
// d.pending, leaving the cursor on the event the stream stands at (which
// can be mid-block for segment readers).
func (d *Reader) loadBlock(first uint64, bcount, clen int, crc uint32) error {
	if cap(d.buf) < clen {
		d.buf = make([]byte, clen)
	}
	payload := d.buf[:clen]
	if _, err := io.ReadFull(d.br, payload); err != nil {
		return fmt.Errorf("trace: event %d: block payload: %w", d.read, truncated(err))
	}
	if got := crc32.Checksum(payload, castagnoli); got != crc {
		return fmt.Errorf("trace: block at event %d: %w: checksum mismatch", first, ErrCorrupt)
	}
	if cap(d.pending) < bcount {
		d.pending = make([]cpu.Event, bcount)
	}
	d.pending = d.pending[:bcount]
	if err := decodeBlockPayload(payload, d.pending, first, &d.sc); err != nil {
		d.pending = d.pending[:0]
		d.pendPos = 0
		return err
	}
	if d.read < first || d.read-first >= uint64(bcount) {
		d.pending = d.pending[:0]
		d.pendPos = 0
		return fmt.Errorf("trace: block at event %d: %w: does not contain event %d", first, ErrCorrupt, d.read)
	}
	d.pendPos = int(d.read - first)
	d.nextBlock = first + uint64(bcount)
	return nil
}

// decodeBlock advances the stream to the next block and decodes it.
func (d *Reader) decodeBlock() error {
	first, bcount, clen, crc, err := d.readBlockHeader()
	if err != nil {
		return err
	}
	return d.loadBlock(first, bcount, clen, crc)
}

func (d *Reader) nextV2() (cpu.Event, error) {
	if d.pendPos >= len(d.pending) {
		if err := d.decodeBlock(); err != nil {
			return cpu.Event{}, err
		}
	}
	ev := d.pending[d.pendPos]
	d.pendPos++
	d.read++
	return ev, nil
}

func (d *Reader) nextBatchV2(dst []cpu.Event) (int, error) {
	if d.pendPos >= len(d.pending) {
		if err := d.decodeBlock(); err != nil {
			return 0, err
		}
	}
	n := copy(dst, d.pending[d.pendPos:])
	// A segment reader's logical end can land mid-block: serve only up
	// to it, like a v1 reader whose section ran out of records.
	if rem := d.count - d.read; uint64(n) > rem {
		n = int(rem)
	}
	d.pendPos += n
	d.read += uint64(n)
	return n, nil
}

// skipV2 advances past n events. Whole blocks inside the skip are
// discarded by their declared payload length without checksum or decode —
// the same "resume trusts the checkpointing pass" contract v1's Skip has —
// and only a final partially-skipped block is actually decoded.
func (d *Reader) skipV2(n uint64) error {
	target := d.read + n
	for n > 0 {
		if d.pendPos < len(d.pending) {
			c := uint64(len(d.pending) - d.pendPos)
			if c > n {
				c = n
			}
			d.pendPos += int(c)
			d.read += c
			n -= c
			continue
		}
		first, bcount, clen, crc, err := d.readBlockHeader()
		if err != nil {
			return fmt.Errorf("trace: skipping to event %d: %w", target, err)
		}
		if uint64(bcount) <= n {
			if _, err := d.br.Discard(clen); err != nil {
				return fmt.Errorf("trace: skipping to event %d: %w", target, truncated(err))
			}
			d.read += uint64(bcount)
			n -= uint64(bcount)
			d.nextBlock = first + uint64(bcount)
			continue
		}
		if err := d.loadBlock(first, bcount, clen, crc); err != nil {
			return fmt.Errorf("trace: skipping to event %d: %w", target, err)
		}
	}
	return nil
}
