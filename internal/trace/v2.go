package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/cpu"
)

// PIFTTRC2 — the block-compressed wire format. PIFTTRC1 spends a fixed
// 25 bytes on every event even though the stream is massively redundant:
// Seq is near-monotonic (front ends emit a per-process instruction
// counter that mostly steps by small increments), PIDs arrive in long
// context-switch runs, ranges are small and local, and kinds fit in two
// bits. At serving scale the tracker is no longer the binding resource —
// the bytes moved over HTTP and spilled to disk are — so v2 trades a
// little encode/decode arithmetic for a ~5x smaller stream.
//
// Layout (little-endian throughout):
//
//	magic   [8]byte  "PIFTTRC2"
//	count   uint64   total event count (same 16-byte header as v1)
//	blocks  until count events are covered, each:
//	  first uint64   absolute index of the block's first event
//	  count uint32   events in the block (1..65536)
//	  clen  uint32   payload length in bytes
//	  crc   uint32   CRC-32C (Castagnoli) of the payload
//	  payload clen bytes
//
// Each block payload is self-contained (every delta chain restarts at
// the block boundary) and column-oriented:
//
//	pid dictionary   uvarint n; n × uvarint pid        (first-appearance order)
//	pid runs         (uvarint dictIndex, uvarint runLen)… summing to count
//	kind/tag         count × uvarint(kind | zigzag(tag)<<2)
//	seq              count × uvarint(zigzag(seq delta)), chained per PID
//	range start      count × uvarint(zigzag(start delta)), chained per PID
//	range length     count × uvarint(end-start)
//
// The seq and range-start columns delta against the previous event of
// the *same PID* (every chain starting at 0 at the block boundary):
// Seq is a per-process instruction counter and range locality is
// per-process too, so chaining per PID keeps deltas single-byte even
// when the stream interleaves processes finely — which is both where
// the compression comes from and why decode stays on the single-byte
// varint fast path.
//
// Self-contained blocks are what keep the shard-owned ingest working at
// block granularity: an Index built from one cheap header walk locates
// any block by event index, so PlanRange still pre-splits a trace into
// per-reader segments by arithmetic — over block boundaries instead of a
// fixed record stride — and a segment reader starting mid-block decodes
// its containing block and discards the prefix. The per-block CRC plus
// the contiguity checks on block headers map every damaged stream onto
// the same taxonomy v1 uses: ErrTruncated, ErrCorrupt, ErrBadMagic,
// ErrTooLarge.

var traceMagicV2 = [8]byte{'P', 'I', 'F', 'T', 'T', 'R', 'C', '2'}

// Format names a trace wire format.
type Format uint8

const (
	// FormatV1 is the fixed-stride PIFTTRC1 format (25 bytes/event).
	FormatV1 Format = 1
	// FormatV2 is the block-compressed PIFTTRC2 format.
	FormatV2 Format = 2
)

func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// ParseFormat maps the CLI spelling of a wire format onto the constant.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "V1", "PIFTTRC1":
		return FormatV1, nil
	case "v2", "V2", "PIFTTRC2":
		return FormatV2, nil
	}
	return 0, fmt.Errorf("trace: unknown wire format %q (want v1 or v2)", s)
}

const (
	// blockHeaderSize is the fixed framing in front of every block.
	blockHeaderSize = 8 + 4 + 4 + 4

	// DefaultBlockEvents is the block size writers use unless told
	// otherwise: big enough to amortize the header and the delta-chain
	// restart, small enough that a block decodes into cache and a
	// resumable upload acks at fine granularity.
	DefaultBlockEvents = 4096

	// maxBlockEvents bounds a block's declared event count; a header
	// promising more is corrupt by construction (no writer emits it).
	maxBlockEvents = 1 << 16

	// maxBlockBytes bounds a block's declared payload length. Even a
	// pathological 65536-event block encodes far below this; honoring a
	// bigger claim would provoke a giant allocation, so it is classified
	// like the v1 header sanity cap.
	maxBlockBytes = 1 << 23
)

// castagnoli is the CRC-32C table; the Castagnoli polynomial has
// hardware support on every platform this runs on.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// zigzag folds a signed delta into an unsigned varint-friendly value:
// small magnitudes of either sign stay small.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encScratch is a block encoder's reusable working state: the PID
// dictionary, each event's dictionary index, and the per-PID delta
// chains. Cleared per block, allocation-free once warm.
type encScratch struct {
	dict  map[uint32]uint64
	order []uint32
	idx   []uint16 // per-event dictionary index
	seq   []uint64 // per-dict-entry seq chain
	start []int64  // per-dict-entry range-start chain
}

// resetU64 sizes s to n with every entry zero, reusing capacity.
func resetU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resetI64 sizes s to n with every entry zero, reusing capacity.
func resetI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// appendBlockPayload encodes evs as one self-contained block payload
// into sc-owned scratch, so a streaming writer allocates nothing per
// block once warm.
func appendBlockPayload(dst []byte, evs []cpu.Event, sc *encScratch) ([]byte, error) {
	for _, ev := range evs {
		if ev.Kind > cpu.EvSinkCheck {
			return dst, fmt.Errorf("trace: cannot encode unknown event kind %d", ev.Kind)
		}
		if ev.Range.End < ev.Range.Start {
			return dst, fmt.Errorf("trace: cannot encode inverted range [%d,%d)", ev.Range.Start, ev.Range.End)
		}
	}
	// PID dictionary in first-appearance order, plus each event's
	// dictionary index — the per-PID delta chains below key on it.
	clear(sc.dict)
	sc.order = sc.order[:0]
	sc.idx = sc.idx[:0]
	for _, ev := range evs {
		id, ok := sc.dict[ev.PID]
		if !ok {
			id = uint64(len(sc.order))
			sc.dict[ev.PID] = id
			sc.order = append(sc.order, ev.PID)
		}
		sc.idx = append(sc.idx, uint16(id))
	}
	dst = binary.AppendUvarint(dst, uint64(len(sc.order)))
	for _, pid := range sc.order {
		dst = binary.AppendUvarint(dst, uint64(pid))
	}
	// PID runs.
	for i := 0; i < len(evs); {
		j := i + 1
		for j < len(evs) && evs[j].PID == evs[i].PID {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(sc.idx[i]))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	// Kind/tag, packed: the two kind bits below the zigzagged tag.
	for _, ev := range evs {
		dst = binary.AppendUvarint(dst, uint64(ev.Kind)|zigzag(int64(ev.Tag))<<2)
	}
	// Seq deltas, chained per PID: Seq is a per-process counter, so the
	// previous event of the same PID is the one a small step away.
	// uint64 subtraction wraps, so every (prev, seq) pair is
	// representable.
	sc.seq = resetU64(sc.seq, len(sc.order))
	for k, ev := range evs {
		d := sc.idx[k]
		dst = binary.AppendUvarint(dst, zigzag(int64(ev.Seq-sc.seq[d])))
		sc.seq[d] = ev.Seq
	}
	// Range-start deltas, chained per PID for the same locality reason
	// (signed: small magnitudes either way).
	sc.start = resetI64(sc.start, len(sc.order))
	for k, ev := range evs {
		d := sc.idx[k]
		dst = binary.AppendUvarint(dst, zigzag(int64(ev.Range.Start)-sc.start[d]))
		sc.start[d] = int64(ev.Range.Start)
	}
	// Range lengths.
	for _, ev := range evs {
		dst = binary.AppendUvarint(dst, uint64(ev.Range.End-ev.Range.Start))
	}
	return dst, nil
}

// getUvarint decodes one uvarint of b at index i, returning the value
// and the next index; a negative index reports a malformed or truncated
// varint. The single-byte fast path carries the hot decode loops.
func getUvarint(b []byte, i int) (uint64, int) {
	if i >= 0 && i < len(b) && b[i] < 0x80 {
		return uint64(b[i]), i + 1
	}
	if i < 0 || i > len(b) {
		return 0, -1
	}
	v, n := binary.Uvarint(b[i:])
	if n <= 0 {
		return 0, -1
	}
	return v, i + n
}

// decScratch is a block decoder's reusable working state, mirroring
// encScratch: the decoded PID dictionary, each event's dictionary index
// (recovered from the run column), and the per-PID delta chains.
type decScratch struct {
	pids  []uint32
	idx   []uint16
	seq   []uint64
	start []int64
}

// decodeBlockPayload decodes a verified (CRC-checked) block payload into
// dst, whose length is the block's declared event count. first is the
// block's absolute first event index, used only for error reporting.
// Every structural impossibility — dictionary indexes out of range, runs
// not summing to the count, accumulated ranges leaving uint32, trailing
// or missing bytes — is ErrCorrupt: the bytes arrived intact-length and
// CRC-clean but cannot be a block this package wrote.
func decodeBlockPayload(payload []byte, dst []cpu.Event, first uint64, sc *decScratch) error {
	corrupt := func(what string) error {
		return fmt.Errorf("trace: block at event %d: %w: %s", first, ErrCorrupt, what)
	}
	ndict, i := getUvarint(payload, 0)
	if i < 0 || ndict == 0 || ndict > uint64(len(dst)) {
		return corrupt("bad PID dictionary size")
	}
	if cap(sc.pids) < int(ndict) {
		sc.pids = make([]uint32, ndict)
	}
	pids := sc.pids[:ndict]
	sc.pids = pids
	for k := range pids {
		var v uint64
		v, i = getUvarint(payload, i)
		if i < 0 || v > 1<<32-1 {
			return corrupt("bad PID dictionary entry")
		}
		pids[k] = uint32(v)
	}
	if cap(sc.idx) < len(dst) {
		sc.idx = make([]uint16, len(dst))
	}
	idx := sc.idx[:len(dst)]
	sc.idx = idx
	// The column loops below decode one uvarint per event each. getUvarint
	// is too big for the inliner (cost ~127 vs the 80 budget), and a
	// non-inlined call per column per event is most of the decode cost,
	// so each loop carries 1/2/3-byte fast paths inline — the
	// uint(i)+k < uint(len) compares both guard the loads and eliminate
	// the bounds checks, and three bytes cover every varint the per-PID
	// delta chains produce in practice (a 64 KiB-arena start delta
	// zigzags into 17 bits) — with only longer or payload-end varints
	// taking the call. Each later branch is only reached with the
	// previous bytes' continuation bits set, so the masks are exact.
	for filled := 0; filled < len(dst); {
		var id, n uint64
		id, i = getUvarint(payload, i)
		n, i = getUvarint(payload, i)
		if i < 0 || id >= ndict || n == 0 || n > uint64(len(dst)-filled) {
			return corrupt("bad PID run")
		}
		pid := pids[id]
		for k := 0; k < int(n); k++ {
			dst[filled+k].PID = pid
			idx[filled+k] = uint16(id)
		}
		filled += int(n)
	}
	for k := range dst {
		var v uint64
		if uint(i) < uint(len(payload)) && payload[i] < 0x80 {
			v = uint64(payload[i])
			i++
		} else if uint(i)+1 < uint(len(payload)) && payload[i+1] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1])<<7
			i += 2
		} else if uint(i)+2 < uint(len(payload)) && payload[i+2] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1]&0x7f)<<7 | uint64(payload[i+2])<<14
			i += 3
		} else if v, i = getUvarint(payload, i); i < 0 {
			return corrupt("bad kind/tag column")
		}
		dst[k].Kind = cpu.EventKind(v & 3)
		dst[k].Tag = int(unzigzag(v >> 2))
	}
	sc.seq = resetU64(sc.seq, int(ndict))
	lastSeq := sc.seq
	for k := range dst {
		var v uint64
		if uint(i) < uint(len(payload)) && payload[i] < 0x80 {
			v = uint64(payload[i])
			i++
		} else if uint(i)+1 < uint(len(payload)) && payload[i+1] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1])<<7
			i += 2
		} else if uint(i)+2 < uint(len(payload)) && payload[i+2] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1]&0x7f)<<7 | uint64(payload[i+2])<<14
			i += 3
		} else if v, i = getUvarint(payload, i); i < 0 {
			return corrupt("bad seq column")
		}
		d := idx[k]
		s := lastSeq[d] + uint64(unzigzag(v))
		lastSeq[d] = s
		dst[k].Seq = s
	}
	sc.start = resetI64(sc.start, int(ndict))
	lastStart := sc.start
	for k := range dst {
		var v uint64
		if uint(i) < uint(len(payload)) && payload[i] < 0x80 {
			v = uint64(payload[i])
			i++
		} else if uint(i)+1 < uint(len(payload)) && payload[i+1] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1])<<7
			i += 2
		} else if uint(i)+2 < uint(len(payload)) && payload[i+2] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1]&0x7f)<<7 | uint64(payload[i+2])<<14
			i += 3
		} else if v, i = getUvarint(payload, i); i < 0 {
			return corrupt("bad range-start column")
		}
		d := idx[k]
		start := lastStart[d] + unzigzag(v)
		if start < 0 || start > 1<<32-1 {
			return corrupt("range start outside the address space")
		}
		lastStart[d] = start
		dst[k].Range.Start = uint32(start)
	}
	for k := range dst {
		var v uint64
		if uint(i) < uint(len(payload)) && payload[i] < 0x80 {
			v = uint64(payload[i])
			i++
		} else if uint(i)+1 < uint(len(payload)) && payload[i+1] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1])<<7
			i += 2
		} else if uint(i)+2 < uint(len(payload)) && payload[i+2] < 0x80 {
			v = uint64(payload[i]&0x7f) | uint64(payload[i+1]&0x7f)<<7 | uint64(payload[i+2])<<14
			i += 3
		} else if v, i = getUvarint(payload, i); i < 0 {
			return corrupt("bad range-length column")
		}
		end := int64(dst[k].Range.Start) + int64(v)
		if v > 1<<32-1 || end > 1<<32-1 {
			return corrupt("range end outside the address space")
		}
		dst[k].Range.End = uint32(end)
	}
	if i != len(payload) {
		return corrupt("trailing bytes after the last column")
	}
	return nil
}

// BlockWriter streams a PIFTTRC2 trace: events appended one at a time
// are framed into blocks and written through as each fills. The total
// event count must be known up front — it lives in the 16-byte header,
// exactly like v1 — and Close fails if the appended count disagrees.
type BlockWriter struct {
	w           *bufio.Writer
	total       uint64
	written     uint64 // events appended so far
	flushed     uint64 // events already framed into blocks
	blockEvents int
	evs         []cpu.Event
	payload     []byte
	sc          encScratch
	n           int64 // wire bytes emitted
	err         error
}

// NewBlockWriter starts a v2 stream of exactly total events on w.
// blockEvents <= 0 selects DefaultBlockEvents; values above the format's
// block cap are clamped to it.
func NewBlockWriter(w io.Writer, total uint64, blockEvents int) *BlockWriter {
	if blockEvents <= 0 {
		blockEvents = DefaultBlockEvents
	}
	if blockEvents > maxBlockEvents {
		blockEvents = maxBlockEvents
	}
	bw := &BlockWriter{
		w:           bufio.NewWriter(w),
		total:       total,
		blockEvents: blockEvents,
		evs:         make([]cpu.Event, 0, blockEvents),
		sc:          encScratch{dict: make(map[uint32]uint64)},
	}
	var hdr [HeaderSize]byte
	copy(hdr[:], traceMagicV2[:])
	binary.LittleEndian.PutUint64(hdr[8:], total)
	if _, err := bw.w.Write(hdr[:]); err != nil {
		bw.err = err
	}
	bw.n += HeaderSize
	return bw
}

// Append adds one event to the stream.
func (bw *BlockWriter) Append(ev cpu.Event) error {
	if bw.err != nil {
		return bw.err
	}
	if bw.written >= bw.total {
		bw.err = fmt.Errorf("trace: appending event %d beyond the declared count %d", bw.written, bw.total)
		return bw.err
	}
	bw.evs = append(bw.evs, ev)
	bw.written++
	if len(bw.evs) >= bw.blockEvents {
		bw.err = bw.flushBlock()
	}
	return bw.err
}

func (bw *BlockWriter) flushBlock() error {
	if len(bw.evs) == 0 {
		return nil
	}
	var err error
	bw.payload, err = appendBlockPayload(bw.payload[:0], bw.evs, &bw.sc)
	if err != nil {
		return err
	}
	var hdr [blockHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], bw.flushed)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(bw.evs)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(bw.payload)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(bw.payload, castagnoli))
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.w.Write(bw.payload); err != nil {
		return err
	}
	bw.n += int64(blockHeaderSize + len(bw.payload))
	bw.flushed += uint64(len(bw.evs))
	bw.evs = bw.evs[:0]
	return nil
}

// Written returns the wire bytes emitted so far.
func (bw *BlockWriter) Written() int64 { return bw.n }

// Close frames any partial final block and flushes the stream. It is an
// error to close before exactly the declared event count was appended —
// the header already promised it.
func (bw *BlockWriter) Close() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.written != bw.total {
		bw.err = fmt.Errorf("trace: stream closed after %d of %d declared events", bw.written, bw.total)
		return bw.err
	}
	if err := bw.flushBlock(); err != nil {
		bw.err = err
		return err
	}
	if err := bw.w.Flush(); err != nil {
		bw.err = err
		return err
	}
	return nil
}

// WriteToFormat serializes the recorded trace in the chosen wire format;
// WriteToFormat(w, FormatV1) is exactly WriteTo.
func (r *Recorder) WriteToFormat(w io.Writer, f Format) (int64, error) {
	switch f {
	case FormatV1:
		return r.WriteTo(w)
	case FormatV2:
		bw := NewBlockWriter(w, uint64(len(r.Events)), DefaultBlockEvents)
		for _, ev := range r.Events {
			if err := bw.Append(ev); err != nil {
				return bw.Written(), err
			}
		}
		err := bw.Close()
		return bw.Written(), err
	}
	return 0, fmt.Errorf("trace: unknown wire format %v", f)
}

// Transcode re-encodes the trace stream in src into dst using the target
// format, streaming block by block — it never materializes the full
// event slice. The source format is sniffed from the magic, so both
// v1→v2 and v2→v1 (and identity) round trips work. Returns the event
// count transcoded.
func Transcode(dst io.Writer, src io.Reader, f Format) (uint64, error) {
	r, err := NewReader(src)
	if err != nil {
		return 0, err
	}
	buf := make([]cpu.Event, DefaultBlockEvents)
	var done uint64
	switch f {
	case FormatV2:
		bw := NewBlockWriter(dst, r.Len(), DefaultBlockEvents)
		for {
			n, rerr := r.NextBatch(buf)
			for _, ev := range buf[:n] {
				if err := bw.Append(ev); err != nil {
					return done, err
				}
			}
			done += uint64(n)
			if rerr == io.EOF {
				return done, bw.Close()
			}
			if rerr != nil {
				return done, rerr
			}
		}
	case FormatV1:
		w := bufio.NewWriter(dst)
		var hdr [HeaderSize]byte
		copy(hdr[:], traceMagic[:])
		binary.LittleEndian.PutUint64(hdr[8:], r.Len())
		if _, err := w.Write(hdr[:]); err != nil {
			return done, err
		}
		var rec [eventWireSize]byte
		for {
			n, rerr := r.NextBatch(buf)
			for _, ev := range buf[:n] {
				putEventV1(rec[:], ev)
				if _, err := w.Write(rec[:]); err != nil {
					return done, err
				}
			}
			done += uint64(n)
			if rerr == io.EOF {
				return done, w.Flush()
			}
			if rerr != nil {
				return done, rerr
			}
		}
	}
	return 0, fmt.Errorf("trace: unknown wire format %v", f)
}
