package android_test

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/jrt"
)

// ExampleRun builds a minimal leaky application in the bytecode DSL and
// runs it on the simulated platform with a PIFT tracker attached.
func ExampleRun() {
	b := dalvik.NewProgram("example")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(android.MethodGetDeviceID) // taint source
	m.MoveResultObject(0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodAppend, 1, 0)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodToString, 1)
	m.MoveResultObject(2)
	m.ConstString(3, "555")
	m.InvokeStatic(android.MethodSendSMS, 3, 2) // taint sink
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(android.KnownExterns())
	if err != nil {
		log.Fatal(err)
	}

	tracker := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	res, err := android.Run(prog, android.RunOptions{
		Sinks: []cpu.EventSink{tracker},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("payload:", res.Sinks[0].Payload)
	fmt.Println("leaked (ground truth):", res.Sinks[0].ContainsSecret)
	fmt.Println("PIFT verdict:", tracker.Verdicts()[0].Tainted)
	// Output:
	// payload: 356938035643809
	// leaked (ground truth): true
	// PIFT verdict: true
}
