package android

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/jrt"
)

// buildFetchAndSend returns an app that fetches via srcMethod (object
// result appended directly) and sends through snkMethod.
func buildFetchAndSend(t *testing.T, srcMethod, snkMethod string) *dalvik.Program {
	t.Helper()
	b := dalvik.NewProgram("fetchsend")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(srcMethod)
	m.MoveResultObject(0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodAppend, 1, 0)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodToString, 1)
	m.MoveResultObject(2)
	m.ConstString(3, "dest")
	m.InvokeStatic(snkMethod, 3, 2)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestEverySensitiveSourceDetected crosses all string sources with all
// sinks: every combination must carry the right payload, be flagged by
// content, and be caught by PIFT.
func TestEverySensitiveSourceDetected(t *testing.T) {
	id := DefaultIdentity()
	sources := map[string]string{
		MethodGetDeviceID:       id.IMEI,
		MethodGetSerial:         id.Serial,
		MethodGetLine1:          id.PhoneNumber,
		MethodGetLocationString: id.LocationString(),
	}
	sinkKinds := map[string]SinkKind{
		MethodSendSMS:  SinkSMS,
		MethodSendHTTP: SinkHTTP,
		MethodLog:      SinkLog,
	}
	for srcMethod, want := range sources {
		for snkMethod, kind := range sinkKinds {
			prog := buildFetchAndSend(t, srcMethod, snkMethod)
			detected, res, _ := runWithTracker(t, prog, core.Config{NI: 13, NT: 3, Untaint: true})
			s := res.Sinks[0]
			if s.Payload != want {
				t.Errorf("%s→%s: payload %q, want %q", srcMethod, snkMethod, s.Payload, want)
			}
			if s.Kind != kind {
				t.Errorf("%s→%s: kind %v, want %v", srcMethod, snkMethod, s.Kind, kind)
			}
			if !s.ContainsSecret {
				t.Errorf("%s→%s: content ground truth missed", srcMethod, snkMethod)
			}
			if !detected {
				t.Errorf("%s→%s: PIFT missed the flow", srcMethod, snkMethod)
			}
		}
	}
}

func TestNonSensitiveSourcesClean(t *testing.T) {
	prog := buildFetchAndSend(t, MethodGetModel, MethodSendHTTP)
	detected, res, _ := runWithTracker(t, prog, core.Config{NI: 20, NT: 10, Untaint: true})
	if res.Sinks[0].ContainsSecret {
		t.Error("model string flagged as secret")
	}
	if detected {
		t.Error("non-sensitive source tainted the sink")
	}
	if res.Sinks[0].Payload == "" {
		t.Error("model payload empty")
	}
}

func TestCustomIdentity(t *testing.T) {
	id := Identity{
		IMEI:        "490154203237518",
		Serial:      "ZX1G427",
		PhoneNumber: "15550001111",
		LatMilli:    48858,
		LonMilli:    2294,
	}
	tracker := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	res, err := Run(buildFetchAndSend(t, MethodGetDeviceID, MethodSendSMS), RunOptions{
		Identity: &id,
		Sinks:    []cpu.EventSink{tracker},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sinks[0].Payload != id.IMEI {
		t.Fatalf("payload = %q", res.Sinks[0].Payload)
	}
	if res.Framework.Identity().IMEI != id.IMEI {
		t.Fatal("identity not propagated")
	}
}

func TestLocationString(t *testing.T) {
	id := DefaultIdentity()
	if got := id.LocationString(); got != "37421,122084" {
		t.Fatalf("LocationString = %q", got)
	}
	if !strings.Contains(id.LocationString(), "37421") {
		t.Fatal("location string lost the latitude")
	}
}

func TestMultipleSinkCallsGetDistinctTags(t *testing.T) {
	b := dalvik.NewProgram("twice")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(MethodGetDeviceID)
	m.MoveResultObject(0)
	m.ConstString(1, "first")
	m.ConstString(2, "d")
	m.InvokeStatic(MethodSendSMS, 2, 1)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodAppend, 3, 0)
	m.MoveResultObject(3)
	m.InvokeVirtual(jrt.MethodToString, 3)
	m.MoveResultObject(4)
	m.InvokeStatic(MethodSendSMS, 2, 4)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	tracker := core.NewTracker(core.Config{NI: 13, NT: 3, Untaint: true}, nil)
	res, err := Run(prog, RunOptions{Sinks: []cpu.EventSink{tracker}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks) != 2 || res.Sinks[0].Tag == res.Sinks[1].Tag {
		t.Fatalf("sink tags: %+v", res.Sinks)
	}
	// Only the second message is tainted; verdicts must match by tag.
	byTag := map[int]bool{}
	for _, v := range tracker.Verdicts() {
		byTag[v.Tag] = v.Tainted
	}
	if byTag[res.Sinks[0].Tag] {
		t.Error("constant first message flagged")
	}
	if !byTag[res.Sinks[1].Tag] {
		t.Error("leaky second message missed")
	}
}

func TestSinkKindStrings(t *testing.T) {
	cases := map[SinkKind]string{
		SinkSMS:      "sms",
		SinkHTTP:     "http",
		SinkLog:      "log",
		SinkKind(99): "sink?",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("SinkKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestLeakedByContent(t *testing.T) {
	prog := buildFetchAndSend(t, MethodGetDeviceID, MethodSendSMS)
	_, res, _ := runWithTracker(t, prog, core.Config{NI: 13, NT: 3, Untaint: true})
	if !res.Framework.LeakedByContent() {
		t.Error("leaky run not flagged by content ground truth")
	}
	clean := buildFetchAndSend(t, MethodGetModel, MethodSendSMS)
	_, cres, _ := runWithTracker(t, clean, core.Config{NI: 13, NT: 3, Untaint: true})
	if cres.Framework.LeakedByContent() {
		t.Error("benign run flagged by content ground truth")
	}
}
