package android

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/cpu"
	"repro/internal/frontend"
	"repro/internal/jrt"
	"repro/internal/metrics"
)

// RunOptions configures one application execution.
type RunOptions struct {
	// PID tags the process's front-end events; defaults to 1.
	PID uint32
	// Budget bounds the executed instructions; defaults to 200 million.
	Budget uint64
	// Identity overrides the device identity; zero value → DefaultIdentity.
	Identity *Identity
	// Sinks are attached to the machine's front end (taint trackers,
	// trace recorders).
	Sinks []cpu.EventSink
	// Hooks are attached as full-detail instruction observers (the DIFT
	// baseline).
	Hooks []cpu.InstrHook
	// Optimize translates with the JIT-style fused templates (§4.1
	// ablation); shorthand for Mode = frontend.ModeJIT.
	Optimize bool
	// Mode selects the execution tier explicitly (interp, jit, aot).
	Mode frontend.Mode
	// Metrics, when non-nil, instruments the machine's front end
	// (instructions/loads/stores retired) against this registry.
	Metrics *metrics.Registry
}

// RunResult is the outcome of one application execution.
type RunResult struct {
	Instructions uint64
	ExitCode     int32
	Sinks        []SinkCall
	Framework    *Framework
	Runtime      *jrt.Runtime
	Machine      *cpu.Machine
	Image        frontend.Image
}

// Run links a program of any front end against a fresh machine, runtime,
// and framework, then executes it to completion. The same program can be
// Run any number of times; each run is fully isolated.
func Run(prog frontend.Program, opts RunOptions) (*RunResult, error) {
	pid := opts.PID
	if pid == 0 {
		pid = 1
	}
	budget := opts.Budget
	if budget == 0 {
		budget = 200_000_000
	}
	identity := DefaultIdentity()
	if opts.Identity != nil {
		identity = *opts.Identity
	}

	machine := cpu.NewMachine()
	if opts.Metrics != nil {
		machine.SetMetrics(cpu.NewMachineMetrics(opts.Metrics))
	}
	for _, s := range opts.Sinks {
		machine.AttachSink(s)
	}
	for _, h := range opts.Hooks {
		machine.AttachHook(h)
	}

	asm := arm.NewAssembler(frontend.CodeBase)
	rt := jrt.New(machine, asm)
	fw := NewFramework(rt, identity)

	mode := opts.Mode
	if opts.Optimize && mode == frontend.ModeInterp {
		mode = frontend.ModeJIT
	}
	translated, err := prog.Translate(asm, rt, mode)
	if err != nil {
		return nil, fmt.Errorf("android: translate %s: %w", prog.ProgramName(), err)
	}
	code, err := asm.Finish()
	if err != nil {
		return nil, fmt.Errorf("android: link %s: %w", prog.ProgramName(), err)
	}
	image := &cpu.Image{Base: frontend.CodeBase, Code: code}
	translated.Materialize(machine.Mem)

	entry, ok := asm.LabelAddr(translated.EntryLabel())
	if !ok {
		return nil, fmt.Errorf("android: no entry label for %s", prog.ProgramName())
	}
	proc := cpu.NewProc(pid, image, entry)
	n, err := machine.Run(proc, budget)
	if err != nil {
		return nil, fmt.Errorf("android: run %s: %w", prog.ProgramName(), err)
	}
	return &RunResult{
		Instructions: n,
		ExitCode:     proc.ExitCode,
		Sinks:        fw.Sinks(),
		Framework:    fw,
		Runtime:      rt,
		Machine:      machine,
		Image:        translated,
	}, nil
}
