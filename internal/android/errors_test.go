package android

import (
	"strings"
	"testing"

	"repro/internal/dalvik"
	"repro/internal/jrt"
)

func TestRunSurfacesTranslateErrors(t *testing.T) {
	// A field reference to an undeclared class passes Build only if we
	// bypass validation; construct the method directly to hit the
	// translator's error path.
	b := dalvik.NewProgram("bad")
	m := b.Method("Main.main", 8, 0)
	m.Iget(0, 1, "NoSuchClass.field")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatalf("build should defer field resolution to the translator: %v", err)
	}
	if _, err := Run(prog, RunOptions{}); err == nil {
		t.Fatal("Run must surface the unresolved field")
	} else if !strings.Contains(err.Error(), "NoSuchClass") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	b := dalvik.NewProgram("spin")
	m := b.Method("Main.main", 4, 0)
	m.Label("spin")
	m.Goto("spin")
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, RunOptions{Budget: 10_000}); err == nil {
		t.Fatal("runaway program must exhaust the budget")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRunUnknownStaticError(t *testing.T) {
	b := dalvik.NewProgram("badstatic")
	m := b.Method("Main.main", 4, 0)
	m.Sput(0, "undeclared")
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, RunOptions{}); err == nil {
		t.Fatal("Run must surface the unknown static field")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	b := dalvik.NewProgram("tiny")
	m := b.Method("Main.main", 4, 0)
	m.ConstString(0, "m")
	m.ConstString(1, "d")
	m.InvokeStatic(MethodLog, 1, 0)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, RunOptions{}) // zero options: defaults kick in
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 || res.Instructions == 0 {
		t.Fatalf("defaults run: %+v", res)
	}
	if res.Framework.Identity().IMEI != DefaultIdentity().IMEI {
		t.Fatal("default identity not applied")
	}
}

func TestSinkWithEmptyPayloadRecordsNoQuery(t *testing.T) {
	b := dalvik.NewProgram("empty")
	m := b.Method("Main.main", 6, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0) // empty string
	m.MoveResultObject(1)
	m.ConstString(2, "d")
	m.InvokeStatic(MethodSendSMS, 2, 1)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks) != 1 {
		t.Fatalf("sinks: %+v", res.Sinks)
	}
	if res.Sinks[0].Tag != 0 || res.Sinks[0].Payload != "" {
		t.Fatalf("empty payload handling: %+v", res.Sinks[0])
	}
}
