package android

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/trace"
)

// TestProbeDetectionRegions prints each sample app's detection grid over
// NI=[1,20] × NT=[1,5]. It is a development aid: run with
// PIFT_PROBE=1 go test ./internal/android -run TestProbeDetectionRegions -v
func TestProbeDetectionRegions(t *testing.T) {
	if os.Getenv("PIFT_PROBE") == "" {
		t.Skip("set PIFT_PROBE=1 to print detection regions")
	}
	apps := map[string]*dalvik.Program{
		"imei":     imeiLeakApp(t),
		"location": locationLeakApp(t),
	}
	for name, prog := range apps {
		rec := trace.NewRecorder(1 << 16)
		if _, err := Run(prog, RunOptions{Sinks: []cpu.EventSink{rec}}); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString(name + ":\n      ")
		for ni := 1; ni <= 20; ni++ {
			b.WriteByte("0123456789*"[ni%10])
		}
		b.WriteString("\n")
		for nt := 1; nt <= 5; nt++ {
			b.WriteString("NT=")
			b.WriteByte(byte('0' + nt))
			b.WriteString("  ")
			for ni := 1; ni <= 20; ni++ {
				tr := core.NewTracker(core.Config{NI: uint64(ni), NT: nt, Untaint: true}, nil)
				rec.Replay(tr)
				hit := false
				for _, v := range tr.Verdicts() {
					hit = hit || v.Tainted
				}
				if hit {
					b.WriteByte('X')
				} else {
					b.WriteByte('.')
				}
			}
			b.WriteString("\n")
		}
		t.Log("\n" + b.String())
	}
}
