package android

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/jrt"
)

// imeiLeakApp is the paper's §2 example: msgZ = "type=sms" + "&imei=" +
// getDeviceId() + "&dummy", sent over SMS.
func imeiLeakApp(t *testing.T) *dalvik.Program {
	t.Helper()
	b := dalvik.NewProgram("ImeiLeak")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(0)
	m.ConstString(1, "type=sms")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.ConstString(1, "&imei=")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeStatic(MethodGetDeviceID)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppend, 0, 2)
	m.MoveResultObject(0)
	m.ConstString(1, "&dummy")
	m.InvokeVirtual(jrt.MethodAppend, 0, 1)
	m.MoveResultObject(0)
	m.InvokeVirtual(jrt.MethodToString, 0)
	m.MoveResultObject(3)
	m.ConstString(4, "5551234")
	m.InvokeStatic(MethodSendSMS, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// locationLeakApp formats the latitude with the numeric intrinsic and
// sends it over HTTP — the flow the paper says needs NI >= 10.
func locationLeakApp(t *testing.T) *dalvik.Program {
	t.Helper()
	b := dalvik.NewProgram("LocationLeak")
	b.Class(LocationClass, "lat", "lon")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(MethodGetLocation)
	m.MoveResultObject(0)
	m.Iget(1, 0, "Location.lat")
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(2)
	m.ConstString(3, "lat=")
	m.InvokeVirtual(jrt.MethodAppend, 2, 3)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodAppendInt, 2, 1)
	m.MoveResultObject(2)
	m.InvokeVirtual(jrt.MethodToString, 2)
	m.MoveResultObject(3)
	m.ConstString(4, "http://collect.example/up")
	m.InvokeStatic(MethodSendHTTP, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// benignApp reads the IMEI but sends an unrelated constant message.
func benignApp(t *testing.T) *dalvik.Program {
	t.Helper()
	b := dalvik.NewProgram("Benign")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(MethodGetDeviceID)
	m.MoveResultObject(0) // fetched but never sent
	m.InvokeStatic(jrt.MethodBuilderNew)
	m.MoveResultObject(1)
	m.ConstString(2, "hello world")
	m.InvokeVirtual(jrt.MethodAppend, 1, 2)
	m.MoveResultObject(1)
	m.InvokeVirtual(jrt.MethodToString, 1)
	m.MoveResultObject(3)
	m.ConstString(4, "5550000")
	m.InvokeStatic(MethodSendSMS, 4, 3)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// evasionApp copies the IMEI through the JNI slow-copy attack of §4.2.
func evasionApp(t *testing.T) *dalvik.Program {
	t.Helper()
	b := dalvik.NewProgram("Evasion")
	m := b.Method("Main.main", 8, 0)
	m.InvokeStatic(MethodGetDeviceID)
	m.MoveResultObject(0)
	m.InvokeStatic(jrt.MethodSlowCopy, 0)
	m.MoveResultObject(1)
	m.ConstString(2, "5559999")
	m.InvokeStatic(MethodSendSMS, 2, 1)
	m.ReturnVoid()
	b.Entry("Main.main")
	prog, err := b.Build(KnownExterns())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runWithTracker executes the program under a fresh PIFT tracker and
// reports whether any sink query came back tainted, plus the result.
func runWithTracker(t *testing.T, prog *dalvik.Program, cfg core.Config) (bool, *RunResult, *core.Tracker) {
	t.Helper()
	tracker := core.NewTracker(cfg, nil)
	res, err := Run(prog, RunOptions{Sinks: []cpu.EventSink{tracker}})
	if err != nil {
		t.Fatalf("run %s: %v", prog.Name, err)
	}
	detected := false
	for _, v := range tracker.Verdicts() {
		if v.Tainted {
			detected = true
		}
	}
	return detected, res, tracker
}

func TestImeiExampleExecutesCorrectly(t *testing.T) {
	_, res, _ := runWithTracker(t, imeiLeakApp(t), core.Config{NI: 13, NT: 3, Untaint: true})
	if len(res.Sinks) != 1 {
		t.Fatalf("sink calls = %+v", res.Sinks)
	}
	got := res.Sinks[0].Payload
	want := "type=sms&imei=356938035643809&dummy"
	if got != want {
		t.Fatalf("payload = %q, want %q", got, want)
	}
	if !res.Sinks[0].ContainsSecret {
		t.Fatal("ground truth should mark the payload as containing a secret")
	}
	if res.Sinks[0].Dest != "5551234" {
		t.Fatalf("dest = %q", res.Sinks[0].Dest)
	}
}

func TestPIFTDetectsImeiLeak(t *testing.T) {
	for _, cfg := range []core.Config{
		{NI: 2, NT: 1, Untaint: true},
		{NI: 5, NT: 2, Untaint: true},
		{NI: 13, NT: 3, Untaint: true},
		{NI: 13, NT: 3, Untaint: false},
	} {
		detected, _, _ := runWithTracker(t, imeiLeakApp(t), cfg)
		if !detected {
			t.Errorf("IMEI leak undetected at %v", cfg)
		}
	}
	// A window of 1 cannot span the Figure 1 copy distance of 2.
	detected, _, _ := runWithTracker(t, imeiLeakApp(t), core.Config{NI: 1, NT: 1, Untaint: true})
	if detected {
		t.Error("IMEI leak should be invisible at NI=1")
	}
}

func TestLocationLeakNeedsWideWindow(t *testing.T) {
	// The paper: "NI had to be at least 10 for PIFT to detect such a
	// case" (float-to-string through the ARM runtime ABI).
	_, res, _ := runWithTracker(t, locationLeakApp(t), core.Config{NI: 10, NT: 3, Untaint: true})
	if want := "lat=37421"; res.Sinks[0].Payload != want {
		t.Fatalf("payload = %q, want %q", res.Sinks[0].Payload, want)
	}
	for ni := uint64(2); ni <= 20; ni++ {
		detected, _, _ := runWithTracker(t, locationLeakApp(t),
			core.Config{NI: ni, NT: 3, Untaint: true})
		want := ni >= jrt.AppendIntLeadDistance
		if detected != want {
			t.Errorf("NI=%d: detected=%v, want %v", ni, detected, want)
		}
	}
	// The digit window performs two bookkeeping stores before the digit,
	// so the direct numeric path needs NT >= 3; at NT=2 only a longer
	// over-tainting cascade (through the retval and vreg slots) reaches
	// the payload, from NI >= 13; at NT=1 the flow is invisible entirely.
	for ni := uint64(1); ni <= 20; ni++ {
		if detected, _, _ := runWithTracker(t, locationLeakApp(t),
			core.Config{NI: ni, NT: 1, Untaint: true}); detected {
			t.Errorf("NT=1 NI=%d: numeric leak should be invisible", ni)
		}
		detected, _, _ := runWithTracker(t, locationLeakApp(t),
			core.Config{NI: ni, NT: 2, Untaint: true})
		if want := ni >= 13; detected != want {
			t.Errorf("NT=2 NI=%d: detected=%v, want %v", ni, detected, want)
		}
	}
}

func TestInsertCharThresholds(t *testing.T) {
	// Build a leak char-by-char through insertChar: the bounds spill
	// consumes a propagation slot, so detection needs NI>=6 and NT>=2.
	build := func() *dalvik.Program {
		b := dalvik.NewProgram("InsertChar")
		m := b.Method("Main.main", 8, 0)
		m.InvokeStatic(MethodGetDeviceID)
		m.MoveResultObject(0)
		m.InvokeStatic(jrt.MethodBuilderNew)
		m.MoveResultObject(1)
		m.InvokeVirtual(jrt.MethodStringLength, 0)
		m.MoveResult(2) // len
		m.Const4(3, 0)  // i
		m.Label("loop")
		m.If(dalvik.OpIfGe, 3, 2, "done")
		m.InvokeVirtual(jrt.MethodCharAt, 0, 3)
		m.MoveResult(4)
		m.InvokeVirtual(jrt.MethodInsertChar, 1, 4)
		m.MoveResultObject(1)
		m.AddIntLit8(3, 3, 1)
		m.Goto("loop")
		m.Label("done")
		m.InvokeVirtual(jrt.MethodToString, 1)
		m.MoveResultObject(5)
		m.ConstString(6, "5551212")
		m.InvokeStatic(MethodSendSMS, 6, 5)
		m.ReturnVoid()
		b.Entry("Main.main")
		prog, err := b.Build(KnownExterns())
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	prog := build()
	_, res, _ := runWithTracker(t, prog, core.Config{NI: 13, NT: 3, Untaint: true})
	if res.Sinks[0].Payload != DefaultIdentity().IMEI {
		t.Fatalf("payload = %q", res.Sinks[0].Payload)
	}
	for _, tc := range []struct {
		cfg  core.Config
		want bool
	}{
		{core.Config{NI: 7, NT: 2, Untaint: true}, false},  // NI too small
		{core.Config{NI: 20, NT: 1, Untaint: true}, false}, // NT too small
		{core.Config{NI: 8, NT: 2, Untaint: true}, true},
		{core.Config{NI: 13, NT: 3, Untaint: true}, true},
	} {
		detected, _, _ := runWithTracker(t, prog, tc.cfg)
		if detected != tc.want {
			t.Errorf("%v: detected=%v, want %v", tc.cfg, detected, tc.want)
		}
	}
}

func TestBenignAppNoFalsePositive(t *testing.T) {
	// Even with the most aggressive windows evaluated, a benign app must
	// not trip the sink check.
	for _, cfg := range []core.Config{
		{NI: 13, NT: 3, Untaint: true},
		{NI: 20, NT: 10, Untaint: true},
		{NI: 20, NT: 10, Untaint: false},
	} {
		detected, res, _ := runWithTracker(t, benignApp(t), cfg)
		if res.Sinks[0].ContainsSecret {
			t.Fatal("benign payload must not contain a secret")
		}
		if detected {
			t.Errorf("false positive at %v", cfg)
		}
	}
}

func TestEvasionDefeatsPIFT(t *testing.T) {
	// §4.2: a long dummy native gap between load and store evades PIFT
	// even at the widest evaluated window — the payload really leaks.
	detected, res, _ := runWithTracker(t, evasionApp(t), core.Config{NI: 20, NT: 10, Untaint: true})
	if !strings.Contains(res.Sinks[0].Payload, "356938035643809") {
		t.Fatalf("evasion app failed to copy the IMEI: %q", res.Sinks[0].Payload)
	}
	if !res.Sinks[0].ContainsSecret {
		t.Fatal("ground truth must flag the evasion payload")
	}
	if detected {
		t.Error("PIFT should miss the slow-copy evasion (documented limitation)")
	}
}

func TestRunIsolation(t *testing.T) {
	// Two runs of the same program must not share heap or taint state.
	prog := imeiLeakApp(t)
	_, res1, _ := runWithTracker(t, prog, core.Config{NI: 13, NT: 3, Untaint: true})
	_, res2, _ := runWithTracker(t, prog, core.Config{NI: 13, NT: 3, Untaint: true})
	if res1.Instructions != res2.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", res1.Instructions, res2.Instructions)
	}
	if res1.Sinks[0].Payload != res2.Sinks[0].Payload {
		t.Error("payloads differ across isolated runs")
	}
}
