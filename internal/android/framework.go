// Package android models the layers of the paper's Figure 3 above the
// hardware: the framework sources and sinks (TelephonyManager,
// LocationManager, SmsManager, HTTP, logging), the PIFT Manager that
// registers source data and checks sink data, and the PIFT Native address
// translation (string payload → byte range). It also provides the harness
// that links an application against the runtime and executes it.
package android

import (
	"strings"

	"repro/internal/arm"
	"repro/internal/cpu"
	"repro/internal/dalvik"
	"repro/internal/jrt"
	"repro/internal/mem"
)

// Framework method names applications can invoke.
const (
	MethodGetDeviceID = "TelephonyManager.getDeviceId"         // () → String (sensitive)
	MethodGetSerial   = "Build.getSerial"                      // () → String (sensitive)
	MethodGetLine1    = "TelephonyManager.getLine1Number"      // () → String (sensitive)
	MethodGetLocation = "LocationManager.getLastKnownLocation" // () → Location (sensitive fields)
	// MethodGetLocationString returns the last fix pre-formatted as
	// "lat,lon" in milli-degrees — the cached string representation many
	// real malware samples read instead of the raw fix.
	MethodGetLocationString = "LocationManager.getLastKnownLocationString" // () → String (sensitive)
	MethodGetModel          = "Build.getModel"                             // () → String (not sensitive)
	MethodUptimeMillis      = "SystemClock.uptimeMillis"                   // () → int (not sensitive)
	MethodSendSMS           = "SmsManager.sendTextMessage"                 // (dest, msg) — sink
	MethodSendHTTP          = "HttpURLConnection.send"                     // (url, body) — sink
	MethodLog               = "Log.d"                                      // (tag, msg) — sink
)

// LocationClass is the class applications must declare to read location
// fields: `Class("Location", "lat", "lon")` — lat at offset 0, lon at 4,
// both in positive milli-degrees.
const LocationClass = "Location"

// Bridge IDs used by the framework (jrt owns 1–31).
const (
	bridgeGetDeviceID = 100 + iota
	bridgeGetSerial
	bridgeGetLine1
	bridgeGetLocation
	bridgeGetLocationString
	bridgeGetModel
	bridgeUptime
	bridgeSendSMS
	bridgeSendHTTP
	bridgeLog
)

// SinkKind identifies the exfiltration channel of a sink call.
type SinkKind uint8

const (
	SinkSMS SinkKind = iota
	SinkHTTP
	SinkLog
)

func (k SinkKind) String() string {
	switch k {
	case SinkSMS:
		return "sms"
	case SinkHTTP:
		return "http"
	case SinkLog:
		return "log"
	}
	return "sink?"
}

// SinkCall records one sink invocation: the taint query tag (to join with
// tracker verdicts), the host-decoded payload, and the ground truth —
// whether the payload actually contains sensitive data, judged by content,
// independent of any tracker.
type SinkCall struct {
	Tag            int // 0 when the payload was empty (no query issued)
	Kind           SinkKind
	Dest           string
	Payload        string
	ContainsSecret bool
}

// Identity is the device's sensitive data. Location values are positive
// milli-degrees (the division-free formatting intrinsic is unsigned).
type Identity struct {
	IMEI        string
	Serial      string
	PhoneNumber string
	LatMilli    uint32
	LonMilli    uint32
}

// DefaultIdentity returns the identity used across the evaluation; the
// IMEI is the GSM standard test value.
func DefaultIdentity() Identity {
	return Identity{
		IMEI:        "356938035643809",
		Serial:      "RF8M33XQ1ZT",
		PhoneNumber: "15557734982",
		LatMilli:    37421,
		LonMilli:    122084,
	}
}

// LocationString returns the cached formatted fix "lat,lon".
func (id Identity) LocationString() string {
	return uitoa(id.LatMilli) + "," + uitoa(id.LonMilli)
}

// secrets returns the strings whose appearance in a sink payload counts as
// a real leak.
func (id Identity) secrets() []string {
	return []string{
		id.IMEI,
		id.Serial,
		id.PhoneNumber,
		uitoa(id.LatMilli),
		uitoa(id.LonMilli),
	}
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Framework is the PIFT Manager + PIFT Native of Figure 3: it registers
// source payload ranges with the tracking layers and issues sink taint
// queries, while recording ground truth on the host side.
type Framework struct {
	machine  *cpu.Machine
	rt       *jrt.Runtime
	identity Identity
	sinks    []SinkCall
}

// NewFramework emits the framework method stubs into the runtime's
// assembler and registers their bridges.
func NewFramework(rt *jrt.Runtime, identity Identity) *Framework {
	fw := &Framework{machine: rt.Machine(), rt: rt, identity: identity}
	fw.registerAll()
	return fw
}

// Identity returns the device identity in use.
func (fw *Framework) Identity() Identity { return fw.identity }

// Sinks returns every sink call recorded so far, in order.
func (fw *Framework) Sinks() []SinkCall { return fw.sinks }

// LeakedByContent reports whether any sink payload actually contained a
// secret — the ground truth an accuracy experiment scores against.
func (fw *Framework) LeakedByContent() bool {
	for _, s := range fw.sinks {
		if s.ContainsSecret {
			return true
		}
	}
	return false
}

// stub emits a framework method as "bridge; store retval ref; return". The
// retval store is a real (tracked) store of the object *reference* — the
// sensitive payload itself enters memory via host pokes and is registered
// by range, as in the paper.
func (fw *Framework) stub(name string, bridgeID int32, fn cpu.BridgeFunc) {
	a := fw.rt.Asm()
	label := "fw$" + name
	a.Label(label)
	fw.rt.RegisterExtern(name, label)
	fw.machine.RegisterBridge(bridgeID, fn)
	a.Emit(
		arm.Bridge(bridgeID),
		arm.Str(arm.R0, dalvik.RSELF, dalvik.RetvalOffset),
		arm.BxLR(),
	)
}

// sinkStub emits a sink method: the bridge performs the taint query and
// ground-truth recording; there is no result.
func (fw *Framework) sinkStub(name string, bridgeID int32, kind SinkKind) {
	a := fw.rt.Asm()
	label := "fw$" + name
	a.Label(label)
	fw.rt.RegisterExtern(name, label)
	fw.machine.RegisterBridge(bridgeID, func(m *cpu.Machine, p *cpu.Proc) {
		fw.recordSink(p, kind)
	})
	a.Emit(arm.Bridge(bridgeID), arm.BxLR())
}

func (fw *Framework) registerAll() {
	fw.stub(MethodGetDeviceID, bridgeGetDeviceID, func(m *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = fw.newSourceString(p, fw.identity.IMEI)
	})
	fw.stub(MethodGetSerial, bridgeGetSerial, func(m *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = fw.newSourceString(p, fw.identity.Serial)
	})
	fw.stub(MethodGetLine1, bridgeGetLine1, func(m *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = fw.newSourceString(p, fw.identity.PhoneNumber)
	})
	fw.stub(MethodGetLocation, bridgeGetLocation, func(m *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = fw.newLocation(p)
	})
	fw.stub(MethodGetLocationString, bridgeGetLocationString, func(m *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = fw.newSourceString(p, fw.identity.LocationString())
	})
	fw.stub(MethodGetModel, bridgeGetModel, func(m *cpu.Machine, p *cpu.Proc) {
		// Not sensitive: no source registration.
		p.State.R[arm.R0] = fw.rt.NewString("PIFT-SIM-1")
	})
	fw.stub(MethodUptimeMillis, bridgeUptime, func(m *cpu.Machine, p *cpu.Proc) {
		p.State.R[arm.R0] = uint32(p.InstrCount / 1000)
	})
	fw.sinkStub(MethodSendSMS, bridgeSendSMS, SinkSMS)
	fw.sinkStub(MethodSendHTTP, bridgeSendHTTP, SinkHTTP)
	fw.sinkStub(MethodLog, bridgeLog, SinkLog)
}

// newSourceString allocates the payload (host poke, untracked — the kernel
// copies the data in) and registers its character range as a taint source:
// the PIFT Manager "Register(data)" path of Figure 3.
func (fw *Framework) newSourceString(p *cpu.Proc, s string) mem.Addr {
	addr := fw.rt.NewString(s)
	if r, ok := fw.rt.StringChars(addr); ok {
		fw.machine.RegisterSource(p, r)
	}
	return addr
}

// newLocation allocates a Location object and registers its two primitive
// fields — the paper's "for a primitive data type ... PIFT Native finds
// the byte offset of the field in the object instance".
func (fw *Framework) newLocation(p *cpu.Proc) mem.Addr {
	addr := fw.rt.Alloc(8)
	fw.machine.Mem.Store32(addr, fw.identity.LatMilli)
	fw.machine.Mem.Store32(addr+4, fw.identity.LonMilli)
	fw.machine.RegisterSource(p, mem.MakeRange(addr, 4))
	fw.machine.RegisterSource(p, mem.MakeRange(addr+4, 4))
	return addr
}

// recordSink is the PIFT Manager "Check(data)" path: translate the payload
// to its byte range, query the tracking hardware, and record ground truth.
func (fw *Framework) recordSink(p *cpu.Proc, kind SinkKind) {
	destRef := p.State.R[arm.R0]
	msgRef := p.State.R[arm.R1]
	payload := fw.rt.ReadString(msgRef)
	call := SinkCall{
		Kind:    kind,
		Dest:    fw.rt.ReadString(destRef),
		Payload: payload,
	}
	for _, secret := range fw.identity.secrets() {
		if secret != "" && strings.Contains(payload, secret) {
			call.ContainsSecret = true
			break
		}
	}
	if r, ok := fw.rt.StringChars(msgRef); ok {
		call.Tag = fw.machine.CheckSink(p, r)
	}
	fw.sinks = append(fw.sinks, call)
}

// KnownExterns returns the full extern set (runtime intrinsics plus
// framework methods) for validating programs before any machine exists.
func KnownExterns() map[string]bool {
	return map[string]bool{
		jrt.MethodBuilderNew:    true,
		jrt.MethodAppend:        true,
		jrt.MethodAppendChar:    true,
		jrt.MethodAppendInt:     true,
		jrt.MethodToString:      true,
		jrt.MethodCharAt:        true,
		jrt.MethodStringLength:  true,
		jrt.MethodStringEquals:  true,
		jrt.MethodParseInt:      true,
		jrt.MethodArraycopyChar: true,
		jrt.MethodSlowCopy:      true,
		jrt.MethodInsertChar:    true,
		MethodGetDeviceID:       true,
		MethodGetSerial:         true,
		MethodGetLine1:          true,
		MethodGetLocation:       true,
		MethodGetLocationString: true,
		jrt.MethodReset:         true,
		jrt.MethodSubstring:     true,
		jrt.MethodIndexOf:       true,
		jrt.MethodHashCode:      true,
		MethodGetModel:          true,
		MethodUptimeMillis:      true,
		MethodSendSMS:           true,
		MethodSendHTTP:          true,
		MethodLog:               true,
	}
}
