package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/mem"
)

// Tracker snapshot format — the per-shard unit of the pipeline's
// checkpoint/restore machinery. A snapshot captures the complete analysis
// state of one tracker: the window configuration, the per-PID tainting
// windows of Algorithm 1, the per-PID range sets of the ideal taint store,
// the overhead statistics, and the sink verdicts recorded so far. Layout
// (little-endian, magic/length-prefix style matching the trace codec):
//
//	magic    [8]byte  "PIFTSNP1"
//	config   NI u64, NT u32, untaint u8
//	stats    Loads, Stores, TaintedLoads, TaintOps, UntaintOps,
//	         SourceRegs, SinkChecks, TaintedSinks, MaxBytes u64, MaxRanges u32
//	windows  count u32, count × { pid u32, open u8, ltlt u64, nt u32 }   (pid-ascending)
//	taint    count u32, count × { pid u32, nranges u32,
//	                              nranges × { start u32, end u32 } }     (pid-ascending)
//	verdicts count u32, count × { tag u32, pid u32, seq u64, tainted u8 } (stream order)
//
// Maps are emitted in ascending PID order and empty range sets are elided,
// so the encoding is a deterministic, canonical function of the tracker's
// semantic state: two trackers that would answer every future query
// identically serialize to identical bytes. Restoring a snapshot and
// feeding the remaining event stream therefore produces byte-identical
// stats and verdicts to an uninterrupted run.

var snapshotMagic = [8]byte{'P', 'I', 'F', 'T', 'S', 'N', 'P', '1'}

// Per-section sanity caps, in the spirit of the trace reader's: a corrupt
// count must fail fast instead of provoking a giant allocation.
const (
	snapMaxWindows  = 1 << 24
	snapMaxPIDs     = 1 << 24
	snapMaxRanges   = 1 << 26
	snapMaxVerdicts = 1 << 26
)

// WriteSnapshot serializes the tracker's complete analysis state. It
// requires the tracker to run on the unbounded IdealStore — bounded stores
// evict, so their content is not a pure function of the event stream and
// cannot honor the resume-equals-uninterrupted guarantee.
func (t *Tracker) WriteSnapshot(w io.Writer) (int64, error) {
	ideal, ok := t.store.(*IdealStore)
	if !ok {
		return 0, fmt.Errorf("core: snapshot requires *IdealStore, tracker has %T", t.store)
	}
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	cw.write(snapshotMagic[:])

	cw.u64(t.cfg.NI)
	cw.u32(uint32(t.cfg.NT))
	cw.bool8(t.cfg.Untaint)

	s := t.stats
	for _, v := range []uint64{
		s.Loads, s.Stores, s.TaintedLoads, s.TaintOps, s.UntaintOps,
		s.SourceRegs, s.SinkChecks, s.TaintedSinks, s.MaxBytes,
	} {
		cw.u64(v)
	}
	cw.u32(uint32(s.MaxRanges))

	pids := make([]uint32, 0, len(t.windows))
	for pid := range t.windows {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	cw.u32(uint32(len(pids)))
	for _, pid := range pids {
		win := t.windows[pid]
		cw.u32(pid)
		cw.bool8(win.open)
		cw.u64(win.ltlt)
		cw.u32(uint32(win.nt))
	}

	tainted := ideal.PIDs()
	cw.u32(uint32(len(tainted)))
	var scratch []mem.Range
	for _, pid := range tainted {
		scratch = ideal.AppendRanges(pid, scratch[:0])
		cw.u32(pid)
		cw.u32(uint32(len(scratch)))
		for _, r := range scratch {
			cw.u32(r.Start)
			cw.u32(r.End)
		}
	}

	cw.u32(uint32(len(t.verdicts)))
	for _, v := range t.verdicts {
		cw.u32(uint32(int32(v.Tag)))
		cw.u32(v.PID)
		cw.u64(v.Seq)
		cw.bool8(v.Tainted)
	}
	if cw.err == nil {
		cw.err = bw.Flush()
	}
	return cw.n, cw.err
}

// ReadSnapshot rebuilds a tracker from a snapshot written by
// WriteSnapshot. The restored tracker runs on a fresh IdealStore and
// carries the snapshot's configuration, windows, statistics, and verdicts;
// metrics instrumentation is not part of the state and must be reattached
// with SetMetrics.
func ReadSnapshot(r io.Reader) (*Tracker, error) {
	cr := &countingReader{r: bufio.NewReader(r)}
	var magic [8]byte
	cr.read(magic[:])
	if cr.err != nil {
		return nil, fmt.Errorf("core: snapshot magic: %w", cr.err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %q", magic[:])
	}

	var cfg Config
	cfg.NI = cr.u64()
	cfg.NT = int(cr.u32())
	cfg.Untaint = cr.bool8()
	if cr.err == nil {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("core: snapshot config: %w", err)
		}
	}

	var s Stats
	for _, p := range []*uint64{
		&s.Loads, &s.Stores, &s.TaintedLoads, &s.TaintOps, &s.UntaintOps,
		&s.SourceRegs, &s.SinkChecks, &s.TaintedSinks, &s.MaxBytes,
	} {
		*p = cr.u64()
	}
	s.MaxRanges = int(cr.u32())

	nwin := cr.u32()
	if cr.err == nil && nwin > snapMaxWindows {
		return nil, fmt.Errorf("core: snapshot declares %d windows", nwin)
	}
	windows := make(map[uint32]*window, nwin)
	var prevPID uint32
	for i := uint32(0); i < nwin && cr.err == nil; i++ {
		pid := cr.u32()
		if i > 0 && pid <= prevPID {
			return nil, fmt.Errorf("core: snapshot windows out of order at pid %d", pid)
		}
		prevPID = pid
		windows[pid] = &window{open: cr.bool8(), ltlt: cr.u64(), nt: int(cr.u32())}
	}

	npids := cr.u32()
	if cr.err == nil && npids > snapMaxPIDs {
		return nil, fmt.Errorf("core: snapshot declares %d tainted processes", npids)
	}
	store := NewIdealStore()
	prevPID = 0
	for i := uint32(0); i < npids && cr.err == nil; i++ {
		pid := cr.u32()
		if i > 0 && pid <= prevPID {
			return nil, fmt.Errorf("core: snapshot taint sets out of order at pid %d", pid)
		}
		prevPID = pid
		nr := cr.u32()
		if cr.err == nil && nr > snapMaxRanges {
			return nil, fmt.Errorf("core: snapshot declares %d ranges for pid %d", nr, pid)
		}
		for j := uint32(0); j < nr && cr.err == nil; j++ {
			start, end := cr.u32(), cr.u32()
			if cr.err == nil && end < start {
				return nil, fmt.Errorf("core: snapshot pid %d range %d inverted", pid, j)
			}
			store.Add(pid, mem.Range{Start: start, End: end})
		}
	}

	nv := cr.u32()
	if cr.err == nil && nv > snapMaxVerdicts {
		return nil, fmt.Errorf("core: snapshot declares %d verdicts", nv)
	}
	var verdicts []SinkVerdict
	if cr.err == nil && nv > 0 {
		verdicts = make([]SinkVerdict, 0, nv)
	}
	for i := uint32(0); i < nv && cr.err == nil; i++ {
		verdicts = append(verdicts, SinkVerdict{
			Tag:     int(int32(cr.u32())),
			PID:     cr.u32(),
			Seq:     cr.u64(),
			Tainted: cr.bool8(),
		})
	}
	if cr.err != nil {
		return nil, fmt.Errorf("core: reading snapshot: %w", cr.err)
	}
	return &Tracker{
		cfg:      cfg,
		store:    store,
		windows:  windows,
		stats:    s,
		verdicts: verdicts,
	}, nil
}

// countingWriter accumulates little-endian primitives, remembering the
// first error so call sites stay linear.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

func (c *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.write(b[:])
}

func (c *countingWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.write(b[:])
}

func (c *countingWriter) bool8(v bool) {
	b := [1]byte{0}
	if v {
		b[0] = 1
	}
	c.write(b[:])
}

// countingReader mirrors countingWriter for decoding; any short read is a
// truncation and surfaces as io.ErrUnexpectedEOF.
type countingReader struct {
	r   io.Reader
	err error
}

func (c *countingReader) read(b []byte) {
	if c.err != nil {
		return
	}
	if _, err := io.ReadFull(c.r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		c.err = err
	}
}

func (c *countingReader) u32() uint32 {
	var b [4]byte
	c.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (c *countingReader) u64() uint64 {
	var b [8]byte
	c.read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (c *countingReader) bool8() bool {
	var b [1]byte
	c.read(b[:])
	return b[0] != 0
}
