package core

import "repro/internal/metrics"

// TrackerMetrics wires the tracker's hot-path transitions into live
// counters. All fields are optional: the zero value disables
// instrumentation, and every mutation below is nil-receiver-safe, so the
// uninstrumented hot path pays one predicted branch per site.
//
// One TrackerMetrics value is typically shared by many trackers (the
// pipeline gives each worker the same set), so counters aggregate across
// shards and the high-water gauges track the maximum any shard reached.
type TrackerMetrics struct {
	// WindowOpens counts tainted loads that opened or restarted a
	// tainting window (Algorithm 1 lines 10–15).
	WindowOpens *metrics.Counter
	// WindowExpirations counts windows first observed expired: a store
	// arrived more than NI instructions after the window's last tainted
	// load. Each open window is counted at most once.
	WindowExpirations *metrics.Counter
	// TaintAdds counts store targets tainted inside a window (line 18).
	TaintAdds *metrics.Counter
	// Untaints counts stores that actually removed taint (line 21).
	Untaints *metrics.Counter
	// SinkChecks counts sink taint queries; TaintedSinks those that hit.
	SinkChecks   *metrics.Counter
	TaintedSinks *metrics.Counter
	// TaintedBytesHigh and TaintedRangesHigh are high-water gauges of
	// store occupancy (bytes and distinct ranges).
	TaintedBytesHigh  *metrics.Gauge
	TaintedRangesHigh *metrics.Gauge
}

// NewTrackerMetrics registers the tracker metric set under its canonical
// names. Registration is idempotent, so calling this repeatedly against
// the same registry (one call per pipeline worker, say) shares one set of
// counters.
func NewTrackerMetrics(r *metrics.Registry) TrackerMetrics {
	return TrackerMetrics{
		WindowOpens: r.Counter("pift_tracker_window_opens_total",
			"Tainting windows opened or restarted by a tainted load."),
		WindowExpirations: r.Counter("pift_tracker_window_expirations_total",
			"Tainting windows that expired (first store past NI instructions)."),
		TaintAdds: r.Counter("pift_tracker_taint_adds_total",
			"Store targets tainted inside a tainting window."),
		Untaints: r.Counter("pift_tracker_untaints_total",
			"Stores that removed taint under the untainting rule."),
		SinkChecks: r.Counter("pift_tracker_sink_checks_total",
			"Sink taint queries answered."),
		TaintedSinks: r.Counter("pift_tracker_tainted_sinks_total",
			"Sink taint queries that found taint."),
		TaintedBytesHigh: r.Gauge("pift_tracker_tainted_bytes_highwater",
			"High-water mark of tainted bytes in the store."),
		TaintedRangesHigh: r.Gauge("pift_tracker_tainted_ranges_highwater",
			"High-water mark of distinct tainted ranges in the store."),
	}
}

// SetMetrics attaches (or, with the zero value, detaches) live metrics.
// Reset does not clear metrics: registry counters are cumulative across a
// process's whole run, unlike per-trace Stats.
func (t *Tracker) SetMetrics(m TrackerMetrics) { t.m = m }
