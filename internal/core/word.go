package core

import (
	"fmt"

	"repro/internal/mem"
)

// WordStore is the fixed-granularity alternative of §3.3: instead of
// arbitrary ranges it taints whole 2^Shift-byte blocks ("we can taint a
// block as a whole if any part of the block is being tainted"), storing
// only the (32−r) most significant address bits per entry. Entries are
// 4 bytes (8 with a process ID), queries are cheaper, but tainting
// overshoots block boundaries — the over-tainting trade-off the paper
// describes — and untainting a partially-covered block clears the whole
// block, which can also under-taint.
type WordStore struct {
	shift  uint8
	blocks map[uint32]map[mem.Addr]struct{} // pid → set of block indices
}

// NewWordStore builds a store with 2^shift-byte granularity; shift=2 gives
// the word granularity the paper discusses.
func NewWordStore(shift uint8) *WordStore {
	if shift > 12 {
		panic(fmt.Sprintf("core: word store shift %d out of range", shift))
	}
	return &WordStore{
		shift:  shift,
		blocks: make(map[uint32]map[mem.Addr]struct{}),
	}
}

// Granularity returns the block size in bytes.
func (s *WordStore) Granularity() uint32 { return 1 << s.shift }

func (s *WordStore) pidBlocks(pid uint32, create bool) map[mem.Addr]struct{} {
	b := s.blocks[pid]
	if b == nil && create {
		b = make(map[mem.Addr]struct{})
		s.blocks[pid] = b
	}
	return b
}

func (s *WordStore) blockSpan(r mem.Range) (first, last mem.Addr) {
	return r.Start >> s.shift, r.End >> s.shift
}

// Add implements Store, tainting every block the range touches.
func (s *WordStore) Add(pid uint32, r mem.Range) {
	b := s.pidBlocks(pid, true)
	first, last := s.blockSpan(r)
	for blk := first; ; blk++ {
		b[blk] = struct{}{}
		if blk == last {
			break
		}
	}
}

// Remove implements Store, clearing every block the range touches (whole
// blocks: fixed granularity cannot split).
func (s *WordStore) Remove(pid uint32, r mem.Range) bool {
	b := s.pidBlocks(pid, false)
	if b == nil {
		return false
	}
	removed := false
	first, last := s.blockSpan(r)
	for blk := first; ; blk++ {
		if _, ok := b[blk]; ok {
			delete(b, blk)
			removed = true
		}
		if blk == last {
			break
		}
	}
	return removed
}

// Overlaps implements Store.
func (s *WordStore) Overlaps(pid uint32, r mem.Range) bool {
	b := s.pidBlocks(pid, false)
	if b == nil {
		return false
	}
	first, last := s.blockSpan(r)
	for blk := first; ; blk++ {
		if _, ok := b[blk]; ok {
			return true
		}
		if blk == last {
			break
		}
	}
	return false
}

// RangeCount implements Store; each tainted block is one entry.
func (s *WordStore) RangeCount() int {
	n := 0
	for _, b := range s.blocks {
		n += len(b)
	}
	return n
}

// TaintedBytes implements Store; whole blocks count, reflecting the
// over-tainting of fixed granularity.
func (s *WordStore) TaintedBytes() uint64 {
	return uint64(s.RangeCount()) << s.shift
}

// Reset implements Store.
func (s *WordStore) Reset() {
	s.blocks = make(map[uint32]map[mem.Addr]struct{})
}
