package core

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

var snapCfg = Config{NI: 13, NT: 3, Untaint: true}

// snapStream drives a tracker into a nontrivial state: several PIDs, open
// and expired windows, taint adds, removals, and recorded verdicts.
func snapStream(n int, seed int64) []cpu.Event {
	rng := rand.New(rand.NewSource(seed))
	seqs := map[uint32]uint64{}
	evs := make([]cpu.Event, 0, n)
	for i := 0; i < n; i++ {
		pid := uint32(1 + rng.Intn(5))
		seqs[pid] += uint64(1 + rng.Intn(3))
		ev := cpu.Event{PID: pid, Seq: seqs[pid]}
		addr := mem.Addr(rng.Intn(4096))
		ev.Range = mem.MakeRange(addr, uint32(1+rng.Intn(8)))
		switch k := rng.Intn(100); {
		case k < 2:
			ev.Kind = cpu.EvSourceRegister
		case k < 5:
			ev.Kind = cpu.EvSinkCheck
			ev.Tag = i
		case k < 55:
			ev.Kind = cpu.EvLoad
		default:
			ev.Kind = cpu.EvStore
		}
		evs = append(evs, ev)
	}
	return evs
}

// feed pumps events through a tracker.
func feed(t *Tracker, evs []cpu.Event) {
	for _, ev := range evs {
		t.Event(ev)
	}
}

// TestSnapshotRoundTripEquivalence is the core of the resume guarantee:
// snapshot a tracker mid-stream, restore it, feed both the restored and
// the original tracker the remaining events, and demand byte-identical
// stats, verdicts, and taint state at the end — plus identical re-encoded
// snapshots, since the encoding is canonical.
func TestSnapshotRoundTripEquivalence(t *testing.T) {
	evs := snapStream(20_000, 7)
	for _, cut := range []int{0, 1, 137, 9_999, 20_000} {
		orig := NewTracker(snapCfg, nil)
		feed(orig, evs[:cut])

		var buf bytes.Buffer
		n, err := orig.WriteSnapshot(&buf)
		if err != nil {
			t.Fatalf("cut %d: WriteSnapshot: %v", cut, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("cut %d: WriteSnapshot reported %d bytes, wrote %d", cut, n, buf.Len())
		}
		restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("cut %d: ReadSnapshot: %v", cut, err)
		}
		if restored.Config() != snapCfg {
			t.Fatalf("cut %d: config %v, want %v", cut, restored.Config(), snapCfg)
		}

		feed(orig, evs[cut:])
		feed(restored, evs[cut:])
		if orig.Stats() != restored.Stats() {
			t.Fatalf("cut %d: stats diverge:\n orig %+v\n rest %+v", cut, orig.Stats(), restored.Stats())
		}
		if !reflect.DeepEqual(orig.Verdicts(), restored.Verdicts()) {
			t.Fatalf("cut %d: verdicts diverge (%d vs %d)", cut, len(orig.Verdicts()), len(restored.Verdicts()))
		}
		var a, b bytes.Buffer
		if _, err := orig.WriteSnapshot(&a); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.WriteSnapshot(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("cut %d: final snapshots not byte-identical", cut)
		}
	}
}

// TestSnapshotDeterministic: the same semantic state must always encode
// to the same bytes, independent of map iteration order.
func TestSnapshotDeterministic(t *testing.T) {
	evs := snapStream(5_000, 11)
	var want []byte
	for trial := 0; trial < 5; trial++ {
		tr := NewTracker(snapCfg, nil)
		feed(tr, evs)
		var buf bytes.Buffer
		if _, err := tr.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("trial %d: snapshot bytes differ from trial 0", trial)
		}
	}
}

// TestSnapshotRejectsCorruption walks the failure modes: bad magic,
// truncation at every prefix length, and an implausible section count.
func TestSnapshotRejectsCorruption(t *testing.T) {
	tr := NewTracker(snapCfg, nil)
	feed(tr, snapStream(2_000, 3))
	var buf bytes.Buffer
	if _, err := tr.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	bad := append([]byte(nil), full...)
	bad[0] ^= 0xff
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}

	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}

	if _, err := ReadSnapshot(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("one-byte truncation accepted")
	}
}

// TestSnapshotRequiresIdealStore: bounded stores evict, so they cannot be
// checkpointed; the codec must refuse rather than silently capture a
// state that is not a function of the stream.
func TestSnapshotRequiresIdealStore(t *testing.T) {
	tr := NewTracker(snapCfg, NewMondrianStore())
	if _, err := tr.WriteSnapshot(io.Discard); err == nil {
		t.Fatal("snapshot of a bounded store accepted")
	}
}
