package core

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func TestMondrianBasics(t *testing.T) {
	s := NewMondrianStore()
	s.Add(1, mem.MakeRange(0x1000, 256))
	if !s.Overlaps(1, mem.MakeRange(0x10ff, 1)) {
		t.Error("last byte missed")
	}
	if s.Overlaps(1, mem.MakeRange(0x1100, 1)) {
		t.Error("byte past end hit")
	}
	if s.Overlaps(2, mem.MakeRange(0x1000, 4)) {
		t.Error("cross-pid hit")
	}
	if got := s.TaintedBytes(); got != 256 {
		t.Errorf("bytes = %d", got)
	}
	if !s.Remove(1, mem.MakeRange(0x1000, 256)) {
		t.Error("remove returned false")
	}
	if s.TaintedBytes() != 0 {
		t.Error("bytes remain after remove")
	}
	if s.Remove(1, mem.MakeRange(0x9000, 4)) {
		t.Error("remove of clean range returned true")
	}
}

func TestMondrianExactByteBoundaries(t *testing.T) {
	s := NewMondrianStore()
	// An unaligned 3-byte range: the trie must be byte-exact, unlike the
	// word store.
	s.Add(1, mem.MakeRange(0x1001, 3))
	if s.Overlaps(1, mem.MakeRange(0x1000, 1)) {
		t.Error("byte before start tainted")
	}
	if !s.Overlaps(1, mem.MakeRange(0x1001, 1)) || !s.Overlaps(1, mem.MakeRange(0x1003, 1)) {
		t.Error("interior bytes missed")
	}
	if s.Overlaps(1, mem.MakeRange(0x1004, 1)) {
		t.Error("byte after end tainted")
	}
}

func TestMondrianCoalescing(t *testing.T) {
	s := NewMondrianStore()
	// Fill a 64-byte aligned block byte by byte: the subtree must
	// collapse back to one node per PID once uniform.
	for i := uint32(0); i < 64; i++ {
		s.Add(1, mem.MakeRange(0x2000+i, 1))
	}
	if s.TaintedBytes() != 64 {
		t.Fatalf("bytes = %d", s.TaintedBytes())
	}
	nodes := s.RangeCount()
	// A collapsed aligned 64-byte block costs the root path only: 13
	// mixed levels × 4 children + the tainted leaf = 53 nodes. Without
	// coalescing the block's own subtree would add another ~80.
	if nodes != 53 {
		t.Errorf("coalescing suboptimal: %d nodes for one aligned block, want 53", nodes)
	}
}

func TestMondrianHole(t *testing.T) {
	s := NewMondrianStore()
	s.Add(1, mem.MakeRange(0x4000, 0x100))
	s.Remove(1, mem.MakeRange(0x4040, 0x10))
	if s.TaintedBytes() != 0x100-0x10 {
		t.Fatalf("bytes after hole = %d", s.TaintedBytes())
	}
	if s.Overlaps(1, mem.MakeRange(0x4045, 2)) {
		t.Error("hole still tainted")
	}
	if !s.Overlaps(1, mem.MakeRange(0x403f, 1)) || !s.Overlaps(1, mem.MakeRange(0x4050, 1)) {
		t.Error("edges of hole lost")
	}
}

// TestMondrianMatchesRangeSet drives identical random workloads through
// the trie and the interval set: queries and byte counts must agree.
func TestMondrianMatchesRangeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	mond := NewMondrianStore()
	ideal := NewIdealStore()
	for i := 0; i < 5000; i++ {
		pid := uint32(rng.Intn(2) + 1)
		r := mem.MakeRange(mem.Addr(rng.Intn(1<<16)), uint32(rng.Intn(64)+1))
		switch rng.Intn(3) {
		case 0:
			mond.Add(pid, r)
			ideal.Add(pid, r)
		case 1:
			mr := mond.Remove(pid, r)
			ir := ideal.Remove(pid, r)
			if mr != ir {
				t.Fatalf("step %d: Remove disagreement on %v", i, r)
			}
		case 2:
			if mond.Overlaps(pid, r) != ideal.Overlaps(pid, r) {
				t.Fatalf("step %d: Overlaps disagreement on %v", i, r)
			}
		}
		if mond.TaintedBytes() != ideal.TaintedBytes() {
			t.Fatalf("step %d: bytes %d vs %d", i, mond.TaintedBytes(), ideal.TaintedBytes())
		}
	}
}

func TestMondrianAsTrackerStore(t *testing.T) {
	tr := NewTracker(Config{NI: 5, NT: 2, Untaint: true}, NewMondrianStore())
	tr.Event(source(1, 0x1000, 16))
	tr.Event(load(1, 10, 0x1000, 2))
	tr.Event(store(1, 12, 0x2000, 2))
	if !tr.Check(1, mem.MakeRange(0x2000, 2)) {
		t.Error("propagation through the trie store failed")
	}
	tr.Event(store(1, 100, 0x2000, 2))
	if tr.Check(1, mem.MakeRange(0x2000, 2)) {
		t.Error("untainting through the trie store failed")
	}
	tr.Reset()
	if tr.TaintedBytes() != 0 {
		t.Error("reset failed")
	}
}

func TestMondrianFullAddressSpaceEdges(t *testing.T) {
	s := NewMondrianStore()
	top := mem.Range{Start: 0xfffffff0, End: 0xffffffff}
	s.Add(1, top)
	if !s.Overlaps(1, mem.MakeRange(0xffffffff, 1)) {
		t.Error("top byte of address space missed")
	}
	if s.TaintedBytes() != 16 {
		t.Errorf("bytes = %d", s.TaintedBytes())
	}
	s.Add(1, mem.MakeRange(0, 8))
	if !s.Overlaps(1, mem.MakeRange(0, 1)) {
		t.Error("address zero missed")
	}
}
